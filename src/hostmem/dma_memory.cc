#include "hostmem/dma_memory.h"

#include <cstring>

namespace bx {

DmaBuffer& DmaBuffer::operator=(DmaBuffer&& other) noexcept {
  if (this != &other) {
    if (memory_ != nullptr) {
      memory_->free_pages(addr_, size_ / kHostPageSize);
    }
    memory_ = other.memory_;
    addr_ = other.addr_;
    size_ = other.size_;
    other.memory_ = nullptr;
    other.addr_ = 0;
    other.size_ = 0;
  }
  return *this;
}

DmaBuffer::~DmaBuffer() {
  if (memory_ != nullptr) {
    memory_->free_pages(addr_, size_ / kHostPageSize);
  }
}

void DmaBuffer::write(std::uint64_t offset, ConstByteSpan data) noexcept {
  BX_ASSERT(valid());
  BX_ASSERT(offset + data.size() <= size_);
  memory_->write(addr_ + offset, data);
}

void DmaBuffer::read(std::uint64_t offset, ByteSpan out) const noexcept {
  BX_ASSERT(valid());
  BX_ASSERT(offset + out.size() <= size_);
  memory_->read(addr_ + offset, out);
}

DmaBuffer DmaMemory::allocate_pages(std::uint64_t pages) {
  BX_ASSERT(pages > 0);
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t first_page = 0;
  // First-fit over the free list; exact or split.
  for (std::size_t i = 0; i < free_runs_.size(); ++i) {
    auto& [run_start, run_len] = free_runs_[i];
    if (run_len >= pages) {
      first_page = run_start;
      run_start += pages;
      run_len -= pages;
      if (run_len == 0) {
        free_runs_.erase(free_runs_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      break;
    }
  }
  if (first_page == 0) {
    first_page = next_page_no_;
    next_page_no_ += pages;
  }
  allocated_pages_ += pages;
  return {this, first_page * kHostPageSize, pages * kHostPageSize};
}

void DmaMemory::free_pages(std::uint64_t addr, std::uint64_t pages) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  BX_ASSERT(is_aligned(addr, kHostPageSize));
  BX_ASSERT(allocated_pages_ >= pages);
  allocated_pages_ -= pages;
  free_runs_.emplace_back(addr / kHostPageSize, pages);
}

Byte* DmaMemory::page_for(std::uint64_t addr) noexcept {
  const std::uint64_t page_no = addr / kHostPageSize;
  auto it = pages_.find(page_no);
  if (it == pages_.end()) {
    auto page = std::make_unique<Byte[]>(kHostPageSize);
    std::memset(page.get(), 0, kHostPageSize);
    it = pages_.emplace(page_no, std::move(page)).first;
  }
  return it->second.get();
}

void DmaMemory::write(std::uint64_t addr, ConstByteSpan data) noexcept {
  BX_ASSERT_MSG(addr != 0 || data.empty(), "write to null DMA address");
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t current = addr + done;
    const std::uint64_t in_page = current % kHostPageSize;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kHostPageSize - in_page, data.size() - done));
    std::memcpy(page_for(current) + in_page, data.data() + done, chunk);
    done += chunk;
  }
}

void DmaMemory::read(std::uint64_t addr, ByteSpan out) noexcept {
  BX_ASSERT_MSG(addr != 0 || out.empty(), "read from null DMA address");
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t current = addr + done;
    const std::uint64_t in_page = current % kHostPageSize;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kHostPageSize - in_page, out.size() - done));
    std::memcpy(out.data() + done, page_for(current) + in_page, chunk);
    done += chunk;
  }
}

std::size_t DmaMemory::resident_pages() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return pages_.size();
}

std::uint64_t DmaMemory::allocated_pages() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocated_pages_;
}

}  // namespace bx
