// Simulated host DRAM.
//
// Everything the device can DMA — SQ/CQ rings, PRP data pages, PRP list
// pages, SGL segments — lives in one DmaMemory instance addressed by 64-bit
// "host physical" addresses. Pages are materialized lazily on first touch so
// a sparse multi-gigabyte address space costs only what is used.
//
// DmaBuffer is the RAII handle for page-aligned allocations; it returns its
// pages to the free list on destruction, mirroring the kernel DMA pool the
// real driver draws PRP pages from.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace bx {

inline constexpr std::uint64_t kHostPageSize = 4096;

class DmaMemory;

/// RAII page-aligned host-memory allocation.
class DmaBuffer {
 public:
  DmaBuffer() noexcept = default;
  DmaBuffer(DmaMemory* memory, std::uint64_t addr,
            std::uint64_t size) noexcept
      : memory_(memory), addr_(addr), size_(size) {}
  DmaBuffer(DmaBuffer&& other) noexcept { *this = std::move(other); }
  DmaBuffer& operator=(DmaBuffer&& other) noexcept;
  DmaBuffer(const DmaBuffer&) = delete;
  DmaBuffer& operator=(const DmaBuffer&) = delete;
  ~DmaBuffer();

  [[nodiscard]] std::uint64_t addr() const noexcept { return addr_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool valid() const noexcept { return memory_ != nullptr; }

  /// Copies `data` into the buffer at `offset`.
  void write(std::uint64_t offset, ConstByteSpan data) noexcept;
  /// Copies bytes out of the buffer.
  void read(std::uint64_t offset, ByteSpan out) const noexcept;

 private:
  DmaMemory* memory_ = nullptr;
  std::uint64_t addr_ = 0;
  std::uint64_t size_ = 0;
};

class DmaMemory {
 public:
  DmaMemory() = default;
  DmaMemory(const DmaMemory&) = delete;
  DmaMemory& operator=(const DmaMemory&) = delete;

  /// Allocates `pages` contiguous 4 KB pages; returns the RAII handle.
  [[nodiscard]] DmaBuffer allocate_pages(std::uint64_t pages);

  /// Allocates the smallest page-aligned buffer holding `bytes`.
  [[nodiscard]] DmaBuffer allocate(std::uint64_t bytes) {
    return allocate_pages(div_ceil(bytes == 0 ? 1 : bytes, kHostPageSize));
  }

  /// Raw physical access, any alignment, may cross page boundaries.
  void write(std::uint64_t addr, ConstByteSpan data) noexcept;
  void read(std::uint64_t addr, ByteSpan out) noexcept;

  /// Typed helpers for ring entries and registers.
  template <typename T>
  void write_object(std::uint64_t addr, const T& object) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    write(addr, {reinterpret_cast<const Byte*>(&object), sizeof(T)});
  }
  template <typename T>
  [[nodiscard]] T read_object(std::uint64_t addr) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    T object{};
    read(addr, {reinterpret_cast<Byte*>(&object), sizeof(T)});
    return object;
  }

  /// Pages currently materialized (for footprint assertions in tests).
  [[nodiscard]] std::size_t resident_pages() const noexcept;

  /// Pages handed out and not yet freed.
  [[nodiscard]] std::uint64_t allocated_pages() const noexcept;

 private:
  friend class DmaBuffer;
  void free_pages(std::uint64_t addr, std::uint64_t pages) noexcept;

  Byte* page_for(std::uint64_t addr) noexcept;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Byte[]>> pages_;
  // Free list of {first_page_no, page_count} runs, kept coalesced enough for
  // this workload by best-effort front reuse.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> free_runs_;
  std::uint64_t next_page_no_ = 1;  // page 0 reserved: address 0 stays invalid
  std::uint64_t allocated_pages_ = 0;
};

}  // namespace bx
