#include "workload/trace.h"

#include <cstring>
#include <fstream>

#include "workload/mixgraph.h"

namespace bx::workload {

namespace {
constexpr char kMagic[8] = {'B', 'X', 'T', 'R', 'A', 'C', 'E', '1'};

template <typename T>
void append(ByteVec& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
bool read_at(ConstByteSpan data, std::size_t& offset, T& out) {
  if (offset + sizeof(T) > data.size()) return false;
  std::memcpy(&out, data.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}
}  // namespace

ByteVec serialize_trace(const std::vector<TraceOp>& ops) {
  ByteVec out(sizeof(kMagic));
  std::memcpy(out.data(), kMagic, sizeof(kMagic));
  append(out, static_cast<std::uint32_t>(ops.size()));
  for (const TraceOp& op : ops) {
    BX_ASSERT_MSG(op.key.size() <= 255, "trace key too long");
    append(out, static_cast<std::uint8_t>(op.kind));
    append(out, static_cast<std::uint8_t>(op.key.size()));
    append(out, static_cast<std::uint32_t>(op.value.size()));
    append(out, op.aux);
    out.insert(out.end(), op.key.begin(), op.key.end());
    out.insert(out.end(), op.value.begin(), op.value.end());
  }
  return out;
}

StatusOr<std::vector<TraceOp>> parse_trace(ConstByteSpan data) {
  if (data.size() < sizeof(kMagic) + 4 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return invalid_argument("not a BXTRACE1 file");
  }
  std::size_t offset = sizeof(kMagic);
  std::uint32_t count = 0;
  if (!read_at(data, offset, count)) return data_loss("truncated header");

  std::vector<TraceOp> ops;
  ops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t kind = 0;
    std::uint8_t key_len = 0;
    std::uint32_t value_len = 0;
    std::uint32_t aux = 0;
    if (!read_at(data, offset, kind) || !read_at(data, offset, key_len) ||
        !read_at(data, offset, value_len) || !read_at(data, offset, aux)) {
      return data_loss("truncated record header at op " + std::to_string(i));
    }
    if (kind > static_cast<std::uint8_t>(TraceOp::Kind::kScan)) {
      return invalid_argument("unknown op kind at op " + std::to_string(i));
    }
    if (offset + key_len + value_len > data.size()) {
      return data_loss("truncated record body at op " + std::to_string(i));
    }
    TraceOp op;
    op.kind = static_cast<TraceOp::Kind>(kind);
    op.key.assign(reinterpret_cast<const char*>(data.data()) + offset,
                  key_len);
    offset += key_len;
    op.value.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                    data.begin() +
                        static_cast<std::ptrdiff_t>(offset + value_len));
    offset += value_len;
    op.aux = aux;
    ops.push_back(std::move(op));
  }
  if (offset != data.size()) {
    return invalid_argument("trailing bytes after last record");
  }
  return ops;
}

Status save_trace(const std::string& path, const std::vector<TraceOp>& ops) {
  const ByteVec data = serialize_trace(ops);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return internal_error("cannot open '" + path + "' for write");
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  if (!file.good()) return internal_error("short write to '" + path + "'");
  return Status::ok();
}

StatusOr<std::vector<TraceOp>> load_trace(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return not_found("cannot open '" + path + "'");
  const std::streamsize size = file.tellg();
  file.seekg(0);
  ByteVec data(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(data.data()), size);
  if (!file.good()) return data_loss("short read from '" + path + "'");
  return parse_trace(data);
}

std::vector<TraceOp> generate_mixgraph_trace(std::size_t operations,
                                             double get_fraction,
                                             std::uint64_t seed) {
  MixGraphWorkload puts({.key_space = 10'000, .seed = seed});
  Rng rng(seed ^ 0x7ace);
  std::vector<TraceOp> ops;
  ops.reserve(operations);
  std::vector<std::string> written;

  for (std::size_t i = 0; i < operations; ++i) {
    const double dice = rng.next_double();
    if (written.empty() || dice >= get_fraction) {
      const KvOp put = puts.next_put();
      TraceOp op;
      op.kind = TraceOp::Kind::kPut;
      op.key = put.key;
      op.value = put.value;
      written.push_back(op.key);
      ops.push_back(std::move(op));
    } else {
      TraceOp op;
      op.key = written[rng.next_below(written.size())];
      const double flavor = rng.next_double();
      if (flavor < 0.70) {
        op.kind = TraceOp::Kind::kGet;
      } else if (flavor < 0.85) {
        op.kind = TraceOp::Kind::kExist;
      } else if (flavor < 0.95) {
        op.kind = TraceOp::Kind::kScan;
        op.aux = 1 + static_cast<std::uint32_t>(rng.next_below(16));
      } else {
        op.kind = TraceOp::Kind::kDelete;
      }
      ops.push_back(std::move(op));
    }
  }
  return ops;
}

}  // namespace bx::workload
