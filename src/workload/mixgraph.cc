#include "workload/mixgraph.h"

#include <cstdio>

namespace bx::workload {

std::string make_key(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "k%015llx",
                static_cast<unsigned long long>(id));
  return buf;  // exactly 16 bytes
}

MixGraphWorkload::MixGraphWorkload(MixGraphConfig config)
    : config_(config),
      key_rng_(config.seed),
      fill_rng_(config.seed ^ 0x5deece66dULL),
      value_size_(config.value_theta, config.value_sigma, config.value_k,
                  config.value_min, config.value_max, config.seed + 1) {}

std::uint64_t MixGraphWorkload::next_value_size() {
  return value_size_.next();
}

KvOp MixGraphWorkload::next_put() {
  KvOp op;
  op.key = make_key(key_rng_.next_below(config_.key_space));
  op.value.resize(next_value_size());
  fill_rng_.fill(op.value.data(), op.value.size());
  return op;
}

FillRandomWorkload::FillRandomWorkload(FillRandomConfig config)
    : config_(config),
      key_rng_(config.seed),
      fill_rng_(config.seed ^ 0xa5a5a5a5ULL) {}

KvOp FillRandomWorkload::next_put() {
  KvOp op;
  op.key = make_key(key_rng_.next_below(config_.key_space));
  op.value.resize(config_.value_size);
  fill_rng_.fill(op.value.data(), op.value.size());
  return op;
}

}  // namespace bx::workload
