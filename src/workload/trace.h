// Key-value operation traces: a compact binary format for recording
// workloads and replaying them bit-identically — the workflow behind
// production-trace-driven studies like the Meta analysis (FAST '20) the
// paper's motivation builds on.
//
// File layout: 8-byte magic "BXTRACE1", u32 record count, then per record:
//   [u8 kind][u8 key_len][u32 value_len][u32 aux][key bytes][value bytes]
// All integers little-endian. GET/DELETE/EXIST records carry no value;
// SCAN uses aux as its limit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace bx::workload {

struct TraceOp {
  enum class Kind : std::uint8_t {
    kPut = 0,
    kGet = 1,
    kDelete = 2,
    kExist = 3,
    kScan = 4,
  };

  Kind kind = Kind::kPut;
  std::string key;
  ByteVec value;       // kPut only
  std::uint32_t aux = 0;  // kScan: limit

  bool operator==(const TraceOp& other) const = default;
};

/// Serializes a trace to its binary form.
ByteVec serialize_trace(const std::vector<TraceOp>& ops);

/// Parses a binary trace; rejects bad magic, truncation, or corrupt
/// lengths.
StatusOr<std::vector<TraceOp>> parse_trace(ConstByteSpan data);

/// Convenience file I/O.
Status save_trace(const std::string& path, const std::vector<TraceOp>& ops);
StatusOr<std::vector<TraceOp>> load_trace(const std::string& path);

/// Generates a MixGraph-flavoured trace: `puts` PUTs (MixGraph value
/// sizes) interleaved with GETs of previously written keys at
/// `get_fraction`, plus occasional deletes and scans.
std::vector<TraceOp> generate_mixgraph_trace(std::size_t operations,
                                             double get_fraction = 0.3,
                                             std::uint64_t seed = 42);

}  // namespace bx::workload
