#include "workload/query_set.h"

#include <cstdio>

#include "common/status.h"

namespace bx::workload {

using csd::Column;
using csd::ColumnType;
using csd::RowBuilder;
using csd::TableSchema;

ByteVec QueryCase::make_row(Rng& rng) const {
  RowBuilder builder(schema);
  if (name == "VPIC") {
    // energy ~ U[0,2): "energy > 1.5" selects ~25 %.
    builder.set_double("energy", rng.next_double() * 2.0)
        .set_double("x", rng.next_double())
        .set_double("y", rng.next_double())
        .set_double("z", rng.next_double())
        .set_int("id", static_cast<std::int64_t>(rng.next_below(1 << 30)));
  } else if (name == "Laghos") {
    // e ~ U[0,400): "e > 346.75" selects ~13 %.
    builder.set_double("e", rng.next_double() * 400.0)
        .set_double("rho", rng.next_double() * 10.0)
        .set_double("v", rng.next_double() * 5.0)
        .set_int("id", static_cast<std::int64_t>(rng.next_below(1 << 30)));
  } else if (name == "Asteroid") {
    // v02 ~ U[0,1): "v02 > 0.844" selects ~15.6 %.
    builder.set_double("v02", rng.next_double())
        .set_double("v03", rng.next_double())
        .set_double("prs", rng.next_double() * 100.0)
        .set_double("tev", rng.next_double() * 10.0)
        .set_int("id", static_cast<std::int64_t>(rng.next_below(1 << 30)));
  } else if (name == "TPC-H Q1") {
    // Dates uniform across 1992..1998; the Q1 cutoff selects ~97 %.
    const int year = 1992 + static_cast<int>(rng.next_below(7));
    const int month = 1 + static_cast<int>(rng.next_below(12));
    const int day = 1 + static_cast<int>(rng.next_below(28));
    char date[32];
    std::snprintf(date, sizeof(date), "%04u-%02u-%02u",
                  static_cast<unsigned>(year), static_cast<unsigned>(month),
                  static_cast<unsigned>(day));
    builder.set_string("l_shipdate", date)
        .set_double("l_quantity", 1.0 + rng.next_double() * 49.0)
        .set_double("l_extendedprice", rng.next_double() * 100'000.0)
        .set_double("l_discount", rng.next_double() * 0.1)
        .set_double("l_tax", rng.next_double() * 0.08)
        .set_string("l_returnflag", rng.next_bool(0.5) ? "N" : "R")
        .set_string("l_linestatus", rng.next_bool(0.5) ? "O" : "F");
  } else if (name == "TPC-H Q2") {
    static const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};
    const auto pick = rng.next_below(5);
    builder.set_int("r_regionkey", static_cast<std::int64_t>(pick))
        .set_string("r_name", kRegions[pick])
        .set_string("r_comment", "synthetic region row for pushdown bench");
  } else {
    BX_ASSERT_MSG(false, "unknown query case");
  }
  return builder.take();
}

const std::vector<QueryCase>& fig4_query_set() {
  static const std::vector<QueryCase>* kCases = [] {
    auto* cases = new std::vector<QueryCase>();

    cases->push_back(QueryCase{
        "VPIC",
        "SELECT * FROM particles WHERE energy > 1.5",
        "particles energy > 1.5",
        TableSchema("particles",
                    {Column{"energy", ColumnType::kFloat64, 8},
                     Column{"x", ColumnType::kFloat64, 8},
                     Column{"y", ColumnType::kFloat64, 8},
                     Column{"z", ColumnType::kFloat64, 8},
                     Column{"id", ColumnType::kInt64, 8}}),
        0.25});

    cases->push_back(QueryCase{
        "Laghos",
        "SELECT * FROM zones WHERE e > 346.75",
        "zones e > 346.75",
        TableSchema("zones", {Column{"e", ColumnType::kFloat64, 8},
                              Column{"rho", ColumnType::kFloat64, 8},
                              Column{"v", ColumnType::kFloat64, 8},
                              Column{"id", ColumnType::kInt64, 8}}),
        0.133});

    cases->push_back(QueryCase{
        "Asteroid",
        "SELECT * FROM asteroid WHERE v02 > 0.844 AND prs < 50.0",
        "asteroid v02 > 0.844 AND prs < 50.0",
        TableSchema("asteroid",
                    {Column{"v02", ColumnType::kFloat64, 8},
                     Column{"v03", ColumnType::kFloat64, 8},
                     Column{"prs", ColumnType::kFloat64, 8},
                     Column{"tev", ColumnType::kFloat64, 8},
                     Column{"id", ColumnType::kInt64, 8}}),
        0.078});

    cases->push_back(QueryCase{
        "TPC-H Q1",
        "SELECT l_returnflag, l_linestatus, l_quantity, l_extendedprice, "
        "l_discount, l_tax FROM lineitem WHERE l_shipdate <= date "
        "'1998-09-02'",
        "lineitem l_shipdate <= date '1998-09-02'",
        TableSchema("lineitem",
                    {Column{"l_shipdate", ColumnType::kString, 10},
                     Column{"l_quantity", ColumnType::kFloat64, 8},
                     Column{"l_extendedprice", ColumnType::kFloat64, 8},
                     Column{"l_discount", ColumnType::kFloat64, 8},
                     Column{"l_tax", ColumnType::kFloat64, 8},
                     Column{"l_returnflag", ColumnType::kString, 1},
                     Column{"l_linestatus", ColumnType::kString, 1}}),
        0.953});

    cases->push_back(QueryCase{
        "TPC-H Q2",
        "SELECT r_regionkey, r_name FROM region WHERE r_name = 'EUROPE'",
        "region r_name = 'EUROPE'",
        TableSchema("region",
                    {Column{"r_regionkey", ColumnType::kInt64, 8},
                     Column{"r_name", ColumnType::kString, 25},
                     Column{"r_comment", ColumnType::kString, 100}}),
        0.2});

    return cases;
  }();
  return *kCases;
}

}  // namespace bx::workload
