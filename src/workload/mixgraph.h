// Key-value workload generators.
//
// MixGraphWorkload reproduces the *value-size* behaviour of RocksDB
// db_bench's MixGraph benchmark with its default settings (Cao et al.,
// FAST '20 — the generalized Pareto fit of Meta's production traces:
// k = 0.2615, sigma = 25.45), which is what the paper's Figure 1(a)
// heatmap and Figure 6(a) KV experiment use. With these parameters over
// 60 % of values are under 32 bytes, matching §4.3's observation.
//
// FillRandomWorkload is db_bench fillrandom with a fixed value size
// (128 B in Figure 6(b)) over uniformly random keys.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"

namespace bx::workload {

struct KvOp {
  std::string key;     // <= 16 bytes (SQE-resident keys)
  ByteVec value;
};

struct MixGraphConfig {
  std::uint64_t key_space = 1'000'000;
  double value_k = 0.2615;     // GP shape (db_bench default)
  double value_sigma = 25.45;  // GP scale (db_bench default)
  double value_theta = 0.0;    // GP location
  std::uint64_t value_min = 1;
  std::uint64_t value_max = 4000;  // device record cap (one NAND page)
  std::uint64_t seed = 2025;
};

class MixGraphWorkload {
 public:
  explicit MixGraphWorkload(MixGraphConfig config = {});

  /// Next PUT of the All_random access pattern (uniform keys).
  KvOp next_put();

  /// Draws only a value size (for distribution plots like Figure 1(a)).
  std::uint64_t next_value_size();

 private:
  MixGraphConfig config_;
  Rng key_rng_;
  Rng fill_rng_;
  ParetoGenerator value_size_;
};

struct FillRandomConfig {
  std::uint64_t key_space = 1'000'000;
  std::uint32_t value_size = 128;
  std::uint64_t seed = 7;
};

class FillRandomWorkload {
 public:
  explicit FillRandomWorkload(FillRandomConfig config = {});
  KvOp next_put();

 private:
  FillRandomConfig config_;
  Rng key_rng_;
  Rng fill_rng_;
};

/// 16-byte fixed-width key from an id ("k%015llx" style).
std::string make_key(std::uint64_t id);

}  // namespace bx::workload
