// The five pushdown workloads of the paper's Figure 4 / Figure 7: three
// scientific datasets (VPIC particles, Laghos zones, the LANL Asteroid
// deep-water-impact set) and TPC-H Q1/Q2 filter extracts.
//
// For each case we carry the *full SQL string* and the *table + predicate
// segment* (the two payload variants Figure 7 transfers), the table schema
// the device holds, and a row generator so the filters actually execute
// against data with a known selectivity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "csd/row.h"
#include "csd/schema.h"

namespace bx::workload {

struct QueryCase {
  std::string name;      // e.g. "VPIC"
  std::string full_sql;  // complete SELECT-WHERE string
  std::string segment;   // table name + predicate extract
  csd::TableSchema schema;
  /// Approximate fraction of generated rows the predicate selects.
  double expected_selectivity = 0.0;

  /// Generates one random row of this case's table.
  ByteVec make_row(Rng& rng) const;
};

/// The Figure 4 query set, in paper order: VPIC, Laghos, Asteroid,
/// TPC-H Q1, TPC-H Q2.
const std::vector<QueryCase>& fig4_query_set();

}  // namespace bx::workload
