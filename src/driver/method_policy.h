// The driver's seam for online transfer-method selection.
//
// A request submitted with TransferMethod::kAuto delegates the
// ByteExpress-vs-PRP choice (and the decision to shed load outright) to
// the MethodPolicy attached via NvmeDriver::set_method_policy(). The
// driver consults the policy once per resolve_method() call — every
// submit path (submit/execute/batch/pipeline/retries) goes through that
// seam — and feeds completed commands back through on_outcome() so the
// policy can learn from the PR 8 wait/service breakdown.
//
// Layering mirrors SubmissionGate: the interface lives in the driver, the
// concrete engine (policy::AdaptivePolicy, src/policy/) lives above it,
// so bx_driver never depends on bx_policy.
//
// Threading contract (same rules as SubmissionGate):
//   * decide() is called with NO driver locks held and may be called from
//     any submitter thread; the policy synchronizes internally.
//   * on_outcome() is called with the queue's pending_mutex held — the
//     policy's own mutex is innermost and the policy must NOT call back
//     into the driver or telemetry from it.
//   * register_queue() is assembly-time only (init_io_queues()); the
//     gauge pointers are driver-owned and outlive the policy's reads.
#pragma once

#include <cstdint>

#include "common/sim_clock.h"
#include "driver/request.h"
#include "obs/metrics.h"

namespace bx::driver {

/// One kAuto resolution. When `shed` is set the driver rejects the
/// command with kResourceExhausted instead of queueing it (overload
/// backpressure); `method` is then meaningless.
struct PolicyDecision {
  TransferMethod method = TransferMethod::kPrp;
  bool shed = false;
};

class MethodPolicy {
 public:
  virtual ~MethodPolicy() = default;

  /// Resolves one kAuto request on `qid` at sim-time `now`. Must return a
  /// concrete, feasible method (never kHybrid/kAuto); infeasible choices
  /// would re-route through the driver's fallback machinery and pollute
  /// its fallback accounting.
  [[nodiscard]] virtual PolicyDecision decide(const IoRequest& request,
                                              std::uint16_t qid,
                                              Nanoseconds now) = 0;

  /// One completed command's measured outcome (any resolution path:
  /// reaped, timed out, retried). `method` is the resolved method the
  /// attempt actually used. Called under pending_mutex — keep it cheap
  /// and never call back into the driver.
  virtual void on_outcome(std::uint16_t qid, TransferMethod method,
                          const Completion& completion) = 0;

  /// Assembly-time registration of a queue's live occupancy gauges
  /// (driver-owned, sampled by decide() for instantaneous saturation).
  virtual void register_queue(std::uint16_t qid, std::uint32_t queue_depth,
                              const obs::Gauge* sq_occupancy,
                              const obs::Gauge* inflight) = 0;
};

}  // namespace bx::driver
