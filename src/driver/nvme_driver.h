// Host-side NVMe driver model.
//
// This is the analog of the Linux kernel PCIe NVMe driver the paper patched:
// queue management, the nvme_queue_rq() submission path with its per-SQ
// lock, PRP/SGL construction, and the passthrough execute() entry point.
// The ByteExpress host-side change lives in submit_inline_locked(): while
// holding the SQ lock it pushes the command (with the payload length
// re-encoded into the reserved CDW2) and then the payload itself as
// consecutive 64-byte SQ slots, then rings the doorbell once (§3.3).
//
// The driver is transport only — it never interprets vendor command
// semantics; that is the device's job.
//
// Thread safety (see docs/CONCURRENCY.md for the full model): after
// init_io_queues() returns, any number of submitter threads may call
// submit()/wait()/execute()/poll_completions()/execute_ooo_striped()
// concurrently, on the same or different queues. Three locks exist per
// queue pair and are acquired in this order, never the reverse:
//
//   cq_mutex  ->  SqRing::lock()  ->  pending_mutex
//
// (Most paths hold only one of them at a time; poll_completions() is the
// one path that nests all three.) execute_ooo_striped() is the only path
// holding several queues' SQ locks at once; it acquires them in ascending
// qid order. Doorbells are rung while the ring lock is held, so BAR tail
// values never regress when two submitters race.
// Command/stream/payload identifiers come from atomic allocators.
//
// Reactor ownership (sharded per-core model, see driver/reactor.h): a
// queue claimed with claim_exclusive(qid) elides the SQ submit lock —
// the owner thread is then the only thread allowed to submit, poll or
// wait on that queue; cross-core work reaches it through the reactor's
// MPSC ring. execute_ooo_striped() must never include a claimed queue
// in its stripe set.
//
// Batched submission (§3.3 doorbell coalescing): submit_batch() prepares
// every request of a batch, then lays the SQEs and their inline chunk
// runs back-to-back in the ring under a single lock hold and rings ONE
// doorbell MWr covering all of them. write_pipeline() slices a large
// payload into inline commands and keeps `depth` of them per doorbell,
// the npu-nvme write_pipeline(depth 4-8) shape.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "driver/method_policy.h"
#include "driver/request.h"
#include "driver/submission_gate.h"
#include "hostmem/dma_memory.h"
#include "nvme/prp.h"
#include "nvme/queue.h"
#include "nvme/spec.h"
#include "nvme/timing.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "pcie/bar.h"
#include "pcie/link.h"

namespace bx::driver {

class NvmeDriver {
 public:
  struct Config {
    std::uint16_t io_queue_count = 1;
    std::uint32_t io_queue_depth = 256;
    std::uint32_t admin_queue_depth = 32;
    nvme::HostTimingModel timing{};
    /// kHybrid: payloads at or below this go inline, above go PRP (§4.2).
    std::uint32_t hybrid_threshold_bytes = 256;
    /// The driver refuses to inline payloads above this (SQ depth bound).
    std::uint32_t max_inline_bytes = 8192;
    /// Fall back to PRP instead of failing when a payload cannot go inline
    /// (read-direction command, too large, queue too shallow).
    bool auto_fallback_to_prp = true;

    // ---- ByteExpress-R inline read completions (docs/READPATH.md) ----

    /// Master switch: allocate a per-queue host completion ring next to
    /// the CQ, advertise it via kVendorReadRing at queue creation, and
    /// request inline return for small reads. If the controller rejects
    /// the advertisement (firmware support off), inline reads are
    /// disabled for the session and every read goes PRP/SGL.
    bool inline_read_enabled = true;
    /// Reads at or below this many bytes return inline when ring slots
    /// are available; larger reads use the native PRP/SGL return.
    std::uint32_t max_inline_read_bytes = 4096;
    /// Completion-ring slots per I/O queue (64 B each). Bounds the
    /// inline-read data in flight per queue; reservation failure falls
    /// back to PRP. Capped at 2^15 by the CQE DW1 slot encoding.
    std::uint32_t read_ring_slots = 256;

    // ---- error recovery (see docs/FAULTS.md) ----

    /// Sim-time an I/O command may stay in flight before wait() declares
    /// it timed out, sends an Abort, and synthesizes an Abort Requested
    /// completion. 0 disables timeouts (pre-recovery behaviour). Keep it
    /// above Controller::Config::deferred_ttl_ns and the reassembly TTL
    /// so the device fails a stuck command before the host abandons it.
    Nanoseconds command_timeout_ns = 50'000'000;  // 50 ms
    /// Sim-time wait() advances the clock per idle poll iteration while a
    /// deadline is armed — the simulation's stand-in for host wall-clock
    /// passing while the device is silent. Healthy commands complete
    /// without ever hitting an idle iteration, so this never perturbs
    /// fault-free timing.
    Nanoseconds poll_idle_advance_ns = 1'000;  // 1 µs
    /// Retries execute() performs on a retryable error completion
    /// (Data Transfer Error, Namespace Not Ready, Abort Requested).
    std::uint32_t max_retries = 4;
    /// Exponential backoff before each retry: base << attempt, capped.
    /// Advanced on the sim clock, so retry schedules are deterministic.
    Nanoseconds retry_backoff_base_ns = 20'000;  // 20 µs
    Nanoseconds retry_backoff_cap_ns = 1'000'000;  // 1 ms
    /// Graceful degradation: after this many consecutive failed inline
    /// attempts on a queue, route that queue's inline requests through
    /// PRP until degrade_reprobe_ns of sim-time passes, then re-probe
    /// inline. 0 disables degradation.
    std::uint32_t degrade_threshold = 8;
    Nanoseconds degrade_reprobe_ns = 10'000'000;  // 10 ms
  };

  /// Advances the device model; returns true if it made progress. The
  /// driver pumps this while waiting for completions (the simulation's
  /// stand-in for the device running concurrently). Called from any
  /// submitter thread — the owner of the device model must serialize
  /// internally (the Testbed wraps it in the firmware mutex).
  using Pump = std::function<bool()>;

  struct QueueInfo {
    std::uint16_t qid = 0;
    std::uint64_t sq_addr = 0;
    std::uint32_t sq_depth = 0;
    std::uint64_t cq_addr = 0;
    std::uint32_t cq_depth = 0;
  };

  NvmeDriver(DmaMemory& memory, pcie::PcieLink& link, pcie::BarSpace& bar,
             Config config);
  ~NvmeDriver();
  NvmeDriver(const NvmeDriver&) = delete;
  NvmeDriver& operator=(const NvmeDriver&) = delete;

  void set_pump(Pump pump) { pump_ = std::move(pump); }

  /// The simulation clock the driver advances (the link's). Posting layers
  /// (Reactor) stamp IoRequest::origin_ns from it so queueing ahead of the
  /// driver is measured, not lost.
  [[nodiscard]] SimClock& clock() noexcept { return link_.clock(); }

  /// Admin queue ring addresses, for controller registration at attach.
  [[nodiscard]] QueueInfo admin_queue_info() const;

  /// Creates the configured I/O queues via CreateIoCq/CreateIoSq admin
  /// commands (the controller must already be attached and pumping).
  /// NOT thread-safe: must complete before concurrent submissions start.
  Status init_io_queues();

  // ---- admin command helpers ----

  struct IdentifyControllerData {
    std::string serial;
    std::string model;
    std::string firmware;
    std::uint32_t namespace_count = 0;
    bool sgl_supported = false;
  };
  struct IdentifyNamespaceData {
    std::uint64_t size_blocks = 0;
    std::uint64_t capacity_blocks = 0;
  };

  StatusOr<IdentifyControllerData> identify_controller();
  StatusOr<IdentifyNamespaceData> identify_namespace(std::uint32_t nsid = 1);
  /// Vendor log page 0xC0: the device's transfer-path statistics.
  StatusOr<nvme::TransferStatsLog> get_transfer_stats();
  /// Vendor log page 0xC1: the device's always-on per-stage timing.
  StatusOr<nvme::StageStatsLog> get_stage_stats();
  /// Set Features 0x07 (number of queues); returns granted (sq, cq).
  StatusOr<std::pair<std::uint16_t, std::uint16_t>> set_queue_count(
      std::uint16_t sqs, std::uint16_t cqs);

  [[nodiscard]] std::uint16_t io_queue_count() const noexcept {
    return static_cast<std::uint16_t>(io_queues_.size());
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Synchronous passthrough: submit, pump the device, reap, return the
  /// completion with its simulated end-to-end latency.
  StatusOr<Completion> execute(const IoRequest& request,
                               std::uint16_t qid = 1);

  /// Asynchronous submission; pair with wait().
  StatusOr<Submitted> submit(const IoRequest& request, std::uint16_t qid);
  StatusOr<Completion> wait(const Submitted& handle);

  /// Waits for `handle` and then runs the same retry/degradation tail as
  /// execute() — fault classification included — so async callers that
  /// stack many submissions before reaping (the tenant virtual queues)
  /// keep the faults.injected == recovered + degraded + failed equality
  /// exact. `request` must be the request passed to submit(), with its
  /// payload spans still valid (retries resubmit it; each resubmission
  /// is re-admitted through the submission gate). The transfer method is
  /// re-resolved per attempt, same as the execute() tail.
  StatusOr<Completion> wait_resolved(const IoRequest& request,
                                     const Submitted& handle);

  // ---- batched submission (doorbell coalescing) ----

  /// How resolve_method() arrived at the transfer method actually used.
  struct ResolvedMethod {
    TransferMethod method = TransferMethod::kPrp;
    /// The inline request could not go inline (read direction, too large,
    /// ring too shallow) and fell back to PRP.
    bool feasibility_fallback = false;
    /// The queue is in degraded mode, so the inline request went PRP.
    bool degraded = false;
    /// ByteExpress-R: the read returns inline through the queue's
    /// completion ring (no PRP/SGL staging; `method` is what the read
    /// would fall back to). Cleared at submit time when the ring-slot
    /// reservation fails (ring full -> PRP fallback).
    bool inline_read = false;
    /// The method was chosen by the attached MethodPolicy (the request
    /// came in as kAuto) — sets kFlagAutoPolicy on the kSubmit event.
    bool auto_decided = false;
  };

  struct BatchResult {
    /// One handle per request, in request order; pair each with wait().
    std::vector<Submitted> handles;
    /// How each request's method was resolved (execute_batch's retry
    /// classification needs the first-attempt view).
    std::vector<ResolvedMethod> resolved;
    /// SQ doorbell MWr writes this batch rang. 1 when the whole batch
    /// coalesced under one bell; more when ring backpressure split it or
    /// a BandSlim request forced its serialized per-command path.
    std::uint64_t doorbells = 0;
    /// Ring slots published (SQEs + inline chunks) by the batch.
    std::uint64_t entries = 0;
  };

  /// Prepares every request (method resolution, PRP/SGL staging, CID
  /// registration) outside the ring lock, then pushes all SQEs plus
  /// their inline chunk runs contiguously under one SQ lock hold and
  /// rings a single doorbell covering the whole batch. Preparation is
  /// all-or-nothing: a request that fails validation fails the batch
  /// before anything is pushed. BandSlim requests cannot coalesce (their
  /// fragments are serialized commands by construction); they flush the
  /// current run and ring their own doorbells.
  StatusOr<BatchResult> submit_batch(std::span<const IoRequest> requests,
                                     std::uint16_t qid);

  /// Synchronous batch: submit_batch(), then wait for each command and
  /// run the same retry/degradation tail as execute() — a fault on
  /// command k of the batch recovers (or degrades, or fails) per the
  /// fault-accounting invariant without disturbing the other commands.
  StatusOr<std::vector<Completion>> execute_batch(
      std::span<const IoRequest> requests, std::uint16_t qid);

  struct PipelineResult {
    std::uint64_t commands = 0;
    /// SQ doorbell MWr writes over the whole pipeline (BAR delta, so
    /// retries are included) — doorbells/op = doorbells / commands.
    std::uint64_t doorbells = 0;
    std::uint64_t payload_bytes = 0;
    /// Commands whose final device status was an error.
    std::uint64_t errors = 0;
  };

  /// npu-nvme-style pipelined write: slices `payload` into
  /// `chunk_bytes`-sized commands and issues them `depth` at a time,
  /// each group coalesced under one doorbell via execute_batch().
  StatusOr<PipelineResult> write_pipeline(
      ConstByteSpan payload, std::uint32_t chunk_bytes, std::uint32_t depth,
      std::uint16_t qid = 1,
      TransferMethod method = TransferMethod::kByteExpress);

  // ---- reactor queue ownership ----

  /// Marks `qid`'s SQ as exclusively owned: submit paths skip the SQ
  /// lock. From claim until release, only the owning thread may submit,
  /// poll or wait on this queue (the reactor contract); other threads
  /// must hand requests to the owner via its MPSC ring.
  void claim_exclusive(std::uint16_t qid);
  void release_exclusive(std::uint16_t qid);
  [[nodiscard]] bool is_exclusive(std::uint16_t qid);

  /// Reaps any ready completions on `qid`; returns how many were reaped.
  std::size_t poll_completions(std::uint16_t qid);

  /// §3.3.2 OOO extension: the command goes to `qids.front()` and the
  /// self-describing chunks are striped round-robin across all of `qids`.
  /// Fails with kFailedPrecondition (checked under the stripe locks) when
  /// any stripe queue is exclusively owned by a reactor, and with
  /// kResourceExhausted when a stripe queue lacks ring space.
  StatusOr<Completion> execute_ooo_striped(
      const IoRequest& request, const std::vector<std::uint16_t>& qids);

  /// Cost of the most recent SQ-submit section (Table 1, driver column):
  /// time spent inserting the SQE plus any inline chunks, lock held.
  /// Under concurrent submitters this is "a recent" submit cost — the
  /// single-threaded benchmarks that consume it stay exact.
  [[nodiscard]] Nanoseconds last_submit_cost() const noexcept {
    return last_submit_cost_ns_.load(std::memory_order_relaxed);
  }

  /// Attaches the trace recorder; host-side stage events (kSubmit,
  /// kDoorbell, kCqDoorbell) flow into it.
  void set_tracer(obs::TraceRecorder* tracer) noexcept { tracer_ = tracer; }

  /// Attaches the admission gate (null detaches). Every I/O submission
  /// path then consults it once per command before claiming ring slots
  /// and pairs each successful admit() with one release() when the
  /// command resolves (see driver/submission_gate.h for the contract).
  /// Assembly-time only: must not change while commands are in flight.
  void set_submission_gate(SubmissionGate* gate) noexcept { gate_ = gate; }

  /// Attaches the transfer-method policy (null detaches). Requests
  /// submitted with TransferMethod::kAuto are then resolved by the policy
  /// in resolve_method() — including the overload-shedding decision — and
  /// completed commands are fed back through MethodPolicy::on_outcome().
  /// Attach BEFORE init_io_queues() so the policy receives every queue's
  /// register_queue() call. Assembly-time only, like the gate.
  void set_method_policy(MethodPolicy* policy) noexcept { policy_ = policy; }

  /// Publishes the driver's counters into `metrics` as `driver.*`. The
  /// registry is remembered so init_io_queues() can expose per-queue
  /// occupancy gauges as they are created.
  void bind_metrics(obs::MetricsRegistry& metrics);

  /// Attaches the telemetry sampler: payload bytes, doorbell counts and
  /// the per-queue gauges registered by init_io_queues() flow into it.
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  /// Direct ring access for white-box tests (ordering invariants).
  [[nodiscard]] nvme::SqRing& sq_for_test(std::uint16_t qid);
  /// Direct CQ access for trace-reconciliation tests.
  [[nodiscard]] nvme::CqRing& cq_for_test(std::uint16_t qid);
  /// Direct completion-ring access for white-box read-path tests
  /// (ordering-violation injection pokes stale bytes into slots).
  [[nodiscard]] DmaBuffer& read_ring_for_test(std::uint16_t qid);
  /// Whether the controller accepted the ring advertisements (false when
  /// firmware support is off or inline reads are disabled by config).
  [[nodiscard]] bool inline_read_supported() const noexcept {
    return inline_read_supported_;
  }

  // ---- concurrency test hooks ----

  /// In-flight (submitted, not yet reaped-and-waited) commands on `qid`.
  [[nodiscard]] std::size_t pending_count_for_test(std::uint16_t qid);
  /// The atomic BandSlim stream-id allocator, exposed so regression tests
  /// can hammer it from many threads and assert uniqueness.
  [[nodiscard]] std::uint16_t allocate_stream_id_for_test() {
    return allocate_stream_id();
  }
  /// The atomic OOO payload-id allocator (same purpose).
  [[nodiscard]] std::uint32_t allocate_payload_id_for_test() {
    return allocate_payload_id();
  }

 private:
  struct Pending {
    bool done = false;
    nvme::CompletionQueueEntry cqe{};
    Nanoseconds submit_time_ns = 0;
    /// Sim-time after which wait() times the command out (0 = never; the
    /// admin queue and timeout-disabled configs).
    Nanoseconds deadline_ns = 0;
    // Keep the DMA buffer and PRP list pages alive until completion.
    DmaBuffer data;
    nvme::PrpChain chain;
    ByteSpan read_target{};
    std::uint32_t read_length = 0;
    /// Gate bookkeeping: set when the submission gate admitted this
    /// command; the driver then owes exactly one release(tenant,
    /// gated_slots) when the pending resolves (completion, timeout, or
    /// abandoned submission).
    bool gated = false;
    std::uint16_t tenant = 0;
    std::uint32_t gated_slots = 0;
    /// ByteExpress-R bookkeeping: the command was submitted as an inline
    /// read holding `read_slots_reserved` completion-ring slots, released
    /// exactly once when the pending resolves (after the payload is
    /// copied out of the ring, or on any failure path).
    bool inline_read = false;
    std::uint32_t read_slots_reserved = 0;
    /// Latency-attribution marks (obs/attribution.h). The resolved
    /// transfer method keys the per-method wait histograms; the wait
    /// durations are measured by the submit path and bell_end_ns anchors
    /// the host->device handoff (0 = never rung, e.g. admin commands).
    TransferMethod method = TransferMethod::kPrp;
    std::uint64_t gate_wait_ns = 0;
    std::uint64_t ring_wait_ns = 0;
    std::uint64_t slot_wait_ns = 0;
    Nanoseconds push_end_ns = 0;
    Nanoseconds bell_end_ns = 0;
  };

  /// Sim-time marks a submission primitive reports back so the caller can
  /// fill the Pending's attribution fields: backpressure wait spent
  /// inside the call (accumulates across calls — BandSlim fragments), the
  /// instant ring space was secured, the instant the SQE (+ chunk run)
  /// was fully pushed, and the instant its doorbell was rung.
  struct SubmitMarks {
    std::uint64_t slot_wait_ns = 0;
    Nanoseconds acquire_ns = 0;
    Nanoseconds push_end_ns = 0;
    Nanoseconds bell_end_ns = 0;
  };

  struct QueuePair {
    std::unique_ptr<nvme::SqRing> sq;
    std::unique_ptr<nvme::CqRing> cq;
    /// CID allocator. Atomic so the counter itself never races; the
    /// allocation loop still checks uniqueness against `pending` under
    /// pending_mutex (CIDs recycle once a command is reaped).
    std::atomic<std::uint16_t> next_cid{0};
    /// Serializes CQ consumption (peek/pop/head doorbell) across the many
    /// threads that may poll the same queue while waiting.
    std::mutex cq_mutex;
    /// Guards `pending` (and the CID-uniqueness check).
    std::mutex pending_mutex;
    std::unordered_map<std::uint16_t, Pending> pending;
    /// Component-owned occupancy gauges, published via expose_gauge() and
    /// sampled by Telemetry at window close. sq_occupancy mirrors
    /// SqRing::occupancy() (updated under the SQ lock); inflight mirrors
    /// pending.size() (updated under pending_mutex).
    obs::Gauge sq_occupancy;
    obs::Gauge inflight;
    /// Consecutive failed inline attempts on this queue (graceful
    /// degradation bookkeeping; reset by any inline success).
    std::atomic<std::uint32_t> inline_failures{0};
    /// Sim-time until which inline requests on this queue are routed
    /// through PRP (0 = healthy).
    std::atomic<Nanoseconds> degraded_until{0};
    /// ByteExpress-R: the host completion ring adjacent to the CQ
    /// (read_ring_slots x 64 B), its slot count, and the outstanding
    /// slot reservation. Reservations are claimed by CAS at submit and
    /// released after copy-out, so the sum of in-flight reservations
    /// never exceeds the ring — which (with the per-queue FIFO
    /// completion order) keeps the controller's cursor from overwriting
    /// unconsumed slots; see docs/READPATH.md.
    DmaBuffer read_ring;
    std::uint32_t read_ring_slots = 0;
    std::atomic<std::uint32_t> read_ring_reserved{0};
    /// Mirror of read_ring_reserved published as the
    /// driver.q<id>.read_ring_occupancy gauge (bxmon's inline-read
    /// section and telemetry sample it; the atomic itself stays the
    /// source of truth for the CAS reservation protocol).
    obs::Gauge read_ring_occupancy;
    /// Read-path degradation mirrors the write-inline trio above.
    std::atomic<std::uint32_t> read_inline_failures{0};
    std::atomic<Nanoseconds> read_degraded_until{0};
    /// Per-queue doorbell accounting (exposed as driver.qN.* by
    /// init_io_queues). sq_doorbells counts BAR MWr writes — one per
    /// ring, NOT one per command, so coalesced batches keep
    /// sq_entries / sq_doorbells > 1 and doorbells/op = sq_doorbells /
    /// commands < 1.
    obs::Counter sq_doorbells;
    obs::Counter sq_entries;
    obs::Counter commands;
  };

  [[nodiscard]] QueuePair& queue(std::uint16_t qid);
  /// Resolves hybrid switching, inline-feasibility fallbacks and queue
  /// degradation (all reported in the result); fails with
  /// kFailedPrecondition when the payload cannot go inline and
  /// auto_fallback_to_prp is disabled.
  [[nodiscard]] StatusOr<ResolvedMethod> resolve_method(
      const IoRequest& request, std::uint16_t qid) const;
  static bool is_write_direction(nvme::IoOpcode opcode) noexcept;
  static bool is_read_direction(nvme::IoOpcode opcode) noexcept;
  /// True for statuses the NVMe "do not retry" logic treats as transient:
  /// Data Transfer Error, Namespace Not Ready, Abort Requested.
  static bool is_retryable(nvme::StatusField status) noexcept;
  static bool is_inline_method(TransferMethod method) noexcept;

  /// Builds the opcode/nsid/cdw fields common to every method.
  nvme::SubmissionQueueEntry build_base_sqe(const IoRequest& request) const;

  Status attach_data_prp(QueuePair& qp, nvme::SubmissionQueueEntry& sqe,
                         Pending& pending, const IoRequest& request);
  Status attach_data_sgl(QueuePair& qp, nvme::SubmissionQueueEntry& sqe,
                         Pending& pending, const IoRequest& request);

  /// Atomically allocates a CID unique among `qp`'s in-flight commands and
  /// registers `pending` under it — one pending_mutex hold, so two racing
  /// submitters can never be handed the same CID.
  std::uint16_t register_pending(QueuePair& qp, Pending pending);
  /// Records the kDoorbell point event *before* the BAR write (so trace
  /// order matches device-visible publish order) and rings the SQ tail.
  /// `entries` is how many ring slots this doorbell publishes. Call with
  /// the SQ lock held, like a bare ring_sq_tail().
  void ring_sq_traced(std::uint16_t qid, std::uint32_t tail,
                      std::uint64_t entries, std::uint16_t cid,
                      std::uint8_t flags);

  /// Atomic BandSlim stream-id allocation (never returns 0).
  std::uint16_t allocate_stream_id() noexcept;
  /// Atomic OOO payload-id allocation (returns 1..0x7fffffff).
  std::uint32_t allocate_payload_id() noexcept;

  /// Pushes `sqe` (and nothing else) under the SQ lock and rings the bell
  /// before releasing it. Applies backpressure when the ring is full:
  /// reaps/pumps until a slot frees, failing with kResourceExhausted only
  /// if the device stops making progress. `marks`, when given, receives
  /// the attribution marks (slot wait accumulates across calls).
  Status submit_plain(QueuePair& qp, const nvme::SubmissionQueueEntry& sqe,
                      SubmitMarks* marks = nullptr);

  /// The ByteExpress host path: SQE + raw chunks under one lock hold, one
  /// doorbell (rung before the lock is released). Returns false if the
  /// ring lacks space; on success fills `marks` (push/bell instants).
  bool submit_inline_locked(QueuePair& qp,
                            const nvme::SubmissionQueueEntry& sqe,
                            ConstByteSpan payload,
                            SubmitMarks* marks = nullptr);

  /// Pushes one SQE and (when `inline_payload` is non-empty) its inline
  /// chunk run at the tail; returns slots pushed. Requires the SQ lock
  /// (or exclusive ownership) and prior free_slots() headroom.
  std::uint32_t push_command_locked(QueuePair& qp,
                                    const nvme::SubmissionQueueEntry& sqe,
                                    ConstByteSpan inline_payload);

  /// The shared retry/degradation tail of execute()/execute_batch():
  /// classifies `completion` (and every later attempt) into the
  /// faults.{recovered,degraded,failed} trio, resubmitting with backoff
  /// while the status is retryable.
  StatusOr<Completion> finish_with_retries(const IoRequest& request,
                                           std::uint16_t qid,
                                           Completion completion,
                                           ResolvedMethod resolved);

  /// BandSlim: header command + serialized fragment commands. `marks`
  /// accumulates the slot wait across the whole serialized sequence; the
  /// final fragment's push/bell instants win (the command is only fully
  /// handed off once its last fragment is published).
  Status submit_bandslim(QueuePair& qp, nvme::SubmissionQueueEntry sqe,
                         const IoRequest& request,
                         SubmitMarks* marks = nullptr);

  /// `submit_flags` is OR-ed into the kSubmit trace event's flags
  /// (kFlagMethodFallback when the method was changed by the driver).
  /// `resolved.inline_read` may be cleared here (ring-full fallback).
  StatusOr<Submitted> submit_with_method(const IoRequest& request,
                                         std::uint16_t qid,
                                         ResolvedMethod resolved,
                                         std::uint8_t submit_flags = 0);

  /// ByteExpress-R: read length a request declares (read_buffer size, or
  /// the block length for LBA reads).
  static std::uint64_t read_length_of(const IoRequest& request) noexcept;
  /// Claims `slots` completion-ring slots on `qp` (CAS loop); false when
  /// the ring lacks space.
  static bool reserve_read_slots(QueuePair& qp, std::uint32_t slots) noexcept;
  /// Pays back `pending`'s completion-ring reservation, if any. Idempotent:
  /// clears read_slots_reserved so every resolution path can call it.
  static void release_read_slots(QueuePair& qp, Pending& pending) noexcept;
  /// Copies an inline-read payload out of the ring and validates framing
  /// + CRC via ReadReassembler. On any violation rewrites the pending's
  /// completion status to a retryable Data Transfer Error. Call with
  /// pending_mutex held (ring reads are plain host-DRAM loads).
  void consume_inline_read_locked(QueuePair& qp, Pending& pending);

  /// Runs one admin command synchronously.
  StatusOr<Completion> execute_admin(nvme::SubmissionQueueEntry sqe);

  void reap_one(QueuePair& qp, const nvme::CompletionQueueEntry& cqe);
  bool pump_once();

  /// Builds the Completion for a done Pending and erases it. Call with
  /// qp.pending_mutex held; `it` must be valid and done.
  Completion finish_pending_locked(
      QueuePair& qp, std::unordered_map<std::uint16_t, Pending>::iterator it);

  /// Closes the command's attribution entry (device report), builds the
  /// exact wait/service breakdown for `completion` (segments sum to
  /// latency_ns by construction) and publishes it to the per-method /
  /// per-tenant wait histograms and telemetry. Called once on every
  /// resolution path — reaped completions and synthesized timeouts alike.
  void attribute_completion(std::uint16_t qid, std::uint16_t cid,
                            const Pending& pending, Completion& completion);

  /// Timeout path of wait(): sends an Abort admin command for the stuck
  /// (qid, cid), reaps any completion that raced the abort, and otherwise
  /// synthesizes a retryable Abort Requested completion.
  StatusOr<Completion> recover_timed_out(QueuePair& qp,
                                         const Submitted& handle);

  DmaMemory& memory_;
  pcie::PcieLink& link_;
  pcie::BarSpace& bar_;
  pcie::DoorbellWriter doorbell_;
  Config config_;
  Pump pump_;

  QueuePair admin_;
  /// Index 0 == qid 1. Written only by init_io_queues(); immutable while
  /// submitter threads run.
  std::vector<std::unique_ptr<QueuePair>> io_queues_;

  std::atomic<std::uint16_t> next_stream_id_{1};   // BandSlim stream ids
  std::atomic<std::uint32_t> next_payload_id_{1};  // OOO payload ids
  std::atomic<Nanoseconds> last_submit_cost_ns_{0};

  /// Inline-chunk slots a command of `method` occupies beyond its SQE —
  /// what the submission gate charges against the inline budget.
  static std::uint32_t inline_slots_for(TransferMethod method,
                                        std::uint64_t payload_len) noexcept;
  /// Consults the gate (when attached) for one command about to claim
  /// ring slots; fills `pending`'s gate bookkeeping on admission. Inline
  /// reads are charged their completion-ring slot count against the same
  /// per-tenant inline budget as write chunks (docs/TENANCY.md).
  Status gate_admit(const IoRequest& request, std::uint16_t qid,
                    const ResolvedMethod& resolved, Pending& pending);
  /// Pays the release owed by `pending`'s admission, if any (idempotent:
  /// clears the gated flag).
  void gate_release(Pending& pending, bool completed) noexcept;

  obs::TraceRecorder* tracer_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  SubmissionGate* gate_ = nullptr;
  MethodPolicy* policy_ = nullptr;
  /// Set by init_io_queues() once every queue's kVendorReadRing
  /// advertisement succeeded; immutable while submitters run.
  bool inline_read_supported_ = false;
  /// Kept from bind_metrics() so init_io_queues() can expose the
  /// per-queue gauges (queue pairs do not exist yet at bind time).
  obs::MetricsRegistry* metrics_ = nullptr;
  // Registry-owned metrics, cached by bind_metrics(); null when unbound.
  obs::Counter* submissions_metric_ = nullptr;
  obs::Histogram* submit_cost_metric_ = nullptr;

  // Component-owned recovery counters (always live; exposed as driver.*
  // and faults.* by bind_metrics). The faults_* trio classifies every
  // failed attempt of an execute() command at resolution:
  //   recovered — the command eventually succeeded with its own method,
  //   degraded  — the command succeeded only after degrading to PRP,
  //   failed    — the command's final status is an error.
  // Under the one-fault-per-command injection scheme this makes
  //   faults.injected == faults.recovered + faults.degraded + faults.failed
  // an exact invariant (asserted by the fault-sweep tests).
  obs::Counter timeouts_;
  obs::Counter aborts_sent_;
  obs::Counter retries_;
  obs::Counter inline_fallbacks_;
  obs::Counter degradations_;
  obs::Counter faults_recovered_;
  obs::Counter faults_degraded_;
  obs::Counter faults_failed_;

  // ByteExpress-R read-path counters (exposed as driver.inline_read.*).
  obs::Counter inline_read_attempts_;
  obs::Counter inline_read_completions_;
  obs::Counter inline_read_chunks_;
  obs::Counter inline_read_bytes_;
  obs::Counter inline_read_crc_errors_;
  obs::Counter inline_read_fallbacks_;
  obs::Counter inline_read_degradations_;

  // Batched-submission accounting (exposed as driver.* by bind_metrics).
  // total_sq_doorbells_/total_commands_ cover the I/O queues only, so
  // doorbells_per_kop_ = 1000 * doorbells / commands is the I/O-path
  // coalescing figure (1000 = one bell per command; < 1000 = coalesced;
  // > 1000 = BandSlim-style serialized fragments).
  obs::Counter batches_;
  obs::Counter batched_commands_;
  obs::Counter total_sq_doorbells_;
  obs::Counter total_commands_;
  obs::Gauge doorbells_per_kop_;
  obs::Histogram* batch_size_metric_ = nullptr;  // registry-owned

  /// Per-method x per-segment wait-breakdown histograms
  /// ("driver.wait.<method>.<segment>", registry-owned, cached by
  /// bind_metrics; null when unbound). Indexed [TransferMethod][segment];
  /// kHybrid and kAuto resolve before submission so their rows stay
  /// empty (commands land in their resolved method's row).
  std::array<std::array<obs::Histogram*, obs::kWaitSegmentCount>, 7>
      wait_hists_{};
};

}  // namespace bx::driver
