// Admission-control hook point of the host driver.
//
// The driver is transport only — it knows nothing about tenants, rate
// limits or QoS policy. SubmissionGate is the seam where such policy
// plugs in: when a gate is attached (NvmeDriver::set_submission_gate),
// every I/O submission path consults it exactly once per command BEFORE
// claiming any ring slot, and pairs every successful admit() with
// exactly one release() when the command resolves (completion, timeout
// recovery, or abandoned submission). tenant::AdmissionController is
// the production implementation (token-bucket rate limits plus an
// inline-chunk-budget cap, see docs/TENANCY.md); tests substitute
// counting fakes.
//
// Locking contract: admit() is called from submitter threads with no
// driver locks held; release() may be called with a queue's
// pending_mutex held (the completion path resolves pendings under it).
// A gate implementation must therefore never call back into the driver
// and must not acquire locks that can be held while calling the driver
// — its internal mutex is the innermost lock in the order documented in
// docs/CONCURRENCY.md.
#pragma once

#include <cstdint>

#include "common/sim_clock.h"
#include "common/status.h"
#include "driver/request.h"

namespace bx::driver {

class SubmissionGate {
 public:
  virtual ~SubmissionGate() = default;

  /// One admission decision for one command, taken before any ring slot
  /// is claimed. `inline_slots` is the number of inline-chunk SQ slots
  /// the command will occupy beyond its SQE (0 for PRP/SGL/BandSlim).
  /// A non-OK return rejects the command — the driver surfaces the
  /// status unchanged and charges nothing; kResourceExhausted is the
  /// conventional rejection code (budget or rate exceeded). An OK
  /// return charges the tenant's budgets and obliges the driver to call
  /// release() exactly once for this command.
  [[nodiscard]] virtual Status admit(const IoRequest& request,
                                     std::uint16_t qid,
                                     std::uint32_t inline_slots,
                                     Nanoseconds now) = 0;

  /// Returns the budget charged by one successful admit(). `completed`
  /// is true when the command reached the device and resolved (any
  /// final status, including synthesized timeout completions), false
  /// when the submission was abandoned before publish.
  virtual void release(std::uint16_t tenant, std::uint32_t inline_slots,
                       bool completed) noexcept = 0;
};

}  // namespace bx::driver
