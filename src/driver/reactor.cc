#include "driver/reactor.h"

#include <span>
#include <thread>

namespace bx::driver {

Reactor::Reactor(NvmeDriver& driver, ReactorConfig config)
    : driver_(driver), config_(config), ring_(config.ring_capacity) {
  if (config_.claim_queue) driver_.claim_exclusive(config_.qid);
}

Reactor::~Reactor() {
  stop();
  // Detach from the registry first: the registry may already be gone by
  // the time the reactor unwinds, and the drain below only needs the
  // reactor's own atomics.
  ring_gauge_ = nullptr;
  posted_metric_ = nullptr;
  rejected_metric_ = nullptr;
  completed_metric_ = nullptr;
  batches_metric_ = nullptr;
  errors_metric_ = nullptr;
  // Late posts after this drain are rejected (stop_ is set), so the ring
  // cannot refill behind us.
  while (poll_once() > 0) {
  }
  if (config_.claim_queue) driver_.release_exclusive(config_.qid);
}

void Reactor::bind_metrics(obs::MetricsRegistry& metrics,
                           const std::string& prefix) {
  ring_gauge_ = &metrics.gauge(prefix + ".ring_occupancy");
  posted_metric_ = &metrics.counter(prefix + ".posted");
  rejected_metric_ = &metrics.counter(prefix + ".rejected");
  completed_metric_ = &metrics.counter(prefix + ".completed");
  batches_metric_ = &metrics.counter(prefix + ".batches");
  errors_metric_ = &metrics.counter(prefix + ".errors");
}

bool Reactor::post(IoRequest request, CompletionCallback on_complete) {
  if (stopped()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (rejected_metric_ != nullptr) rejected_metric_->increment();
    return false;
  }
  Posted posted;
  posted.request = request;
  // Stamp the MPSC-ring entry time: the driver backdates the command's
  // latency window to it, so ring residency is measured and attributed as
  // obs::WaitSegment::kRingWait instead of silently vanishing.
  if (posted.request.origin_ns == 0) {
    posted.request.origin_ns = driver_.clock().now();
  }
  posted.on_complete = std::move(on_complete);
  if (!ring_.try_push(std::move(posted))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (rejected_metric_ != nullptr) rejected_metric_->increment();
    return false;
  }
  posted_.fetch_add(1, std::memory_order_relaxed);
  if (posted_metric_ != nullptr) posted_metric_->increment();
  if (ring_gauge_ != nullptr) {
    ring_gauge_->set(static_cast<std::int64_t>(ring_.occupancy()));
  }
  return true;
}

std::size_t Reactor::poll_once() {
  std::vector<Posted> drained;
  drained.reserve(config_.batch_depth);
  Posted posted;
  while (drained.size() < config_.batch_depth && ring_.try_pop(posted)) {
    drained.push_back(std::move(posted));
  }
  if (ring_gauge_ != nullptr) {
    ring_gauge_->set(static_cast<std::int64_t>(ring_.occupancy()));
  }
  if (drained.empty()) return 0;

  std::vector<IoRequest> requests;
  requests.reserve(drained.size());
  for (const Posted& entry : drained) requests.push_back(entry.request);

  batches_.fetch_add(1, std::memory_order_relaxed);
  if (batches_metric_ != nullptr) batches_metric_->increment();
  auto completions = driver_.execute_batch(
      std::span<const IoRequest>(requests.data(), requests.size()),
      config_.qid);
  if (!completions.is_ok()) {
    // Batch-level failure (validation, wedged device): every poster of
    // this batch learns the same error.
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (errors_metric_ != nullptr) errors_metric_->increment();
    const StatusOr<Completion> error(completions.status());
    for (const Posted& entry : drained) {
      if (entry.on_complete) entry.on_complete(error);
    }
  } else {
    for (std::size_t i = 0; i < drained.size(); ++i) {
      if (drained[i].on_complete) {
        drained[i].on_complete(StatusOr<Completion>((*completions)[i]));
      }
    }
  }
  completed_.fetch_add(drained.size(), std::memory_order_relaxed);
  if (completed_metric_ != nullptr) {
    completed_metric_->add(drained.size());
  }
  return drained.size();
}

void Reactor::run() {
  for (;;) {
    if (poll_once() > 0) continue;
    // Empty poll: exit only once stop() is visible AND nothing is left in
    // the ring (occupancy counts claimed-but-unpublished cells, so a
    // preempted producer's element is still waited for, not dropped).
    if (stopped() && ring_.occupancy() == 0) return;
    std::this_thread::yield();
  }
}

ReactorStats Reactor::stats() const noexcept {
  ReactorStats stats;
  stats.posted = posted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace bx::driver
