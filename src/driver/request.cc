#include "driver/request.h"

namespace bx::driver {

std::string_view transfer_method_name(TransferMethod method) noexcept {
  switch (method) {
    case TransferMethod::kPrp: return "prp";
    case TransferMethod::kSgl: return "sgl";
    case TransferMethod::kByteExpress: return "byteexpress";
    case TransferMethod::kByteExpressOoo: return "byteexpress_ooo";
    case TransferMethod::kBandSlim: return "bandslim";
    case TransferMethod::kHybrid: return "hybrid";
    case TransferMethod::kAuto: return "auto";
  }
  return "?";
}

}  // namespace bx::driver
