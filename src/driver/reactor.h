// Sharded per-core reactor: the shared-nothing host path.
//
// SPDK-style ownership model: one Reactor exclusively owns one SQ/CQ pair
// and is the only thread that touches its cursors — the per-SQ mutex is
// elided on this path (SqRing::set_exclusive_owner). Other cores never
// submit directly; they hand requests to the owner through a bounded
// lock-free MPSC ring (mpsc_ring.h) and get their completion delivered by
// callback from the owner thread.
//
// The reactor is deliberately threadless: the owner drives it either with
// poll_once() (deterministic tests, manual event loops) or run() (a
// worker-thread body that loops until stop() and then drains the ring
// before returning — no posted request is dropped by shutdown). post()
// after stop() is rejected; a post() racing stop() may be processed or
// rejected, so producers that need the drain guarantee must finish
// posting before calling stop().
//
// Each poll_once() drains up to `batch_depth` requests from the ring and
// issues them through NvmeDriver::execute_batch(), so cross-core traffic
// is what *creates* the coalesced doorbell batches: N posts from N cores
// become one SQE run under one doorbell MWr on the owner's queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "driver/mpsc_ring.h"
#include "driver/nvme_driver.h"
#include "driver/request.h"
#include "obs/metrics.h"

namespace bx::driver {

struct ReactorConfig {
  /// The I/O queue pair this reactor owns.
  std::uint16_t qid = 1;
  /// MPSC ring capacity (power of two >= 2).
  std::size_t ring_capacity = 256;
  /// Max requests drained per poll_once() — the execute_batch size cap,
  /// i.e. the doorbell coalescing window.
  std::uint32_t batch_depth = 8;
  /// Claim exclusive SQ ownership (elide the per-SQ lock). Leave false
  /// only if non-reactor threads still submit to this qid directly.
  bool claim_queue = true;
};

/// Completion delivery: invoked on the reactor (owner) thread. Receives
/// the per-command Completion, or the batch-level error Status if the
/// whole submission failed before this command completed.
using CompletionCallback = std::function<void(const StatusOr<Completion>&)>;

struct ReactorStats {
  std::uint64_t posted = 0;
  std::uint64_t rejected = 0;   // ring full or reactor stopped
  std::uint64_t completed = 0;  // callbacks delivered
  std::uint64_t batches = 0;    // execute_batch calls issued
  std::uint64_t errors = 0;     // batch-level failures
};

class Reactor {
 public:
  Reactor(NvmeDriver& driver, ReactorConfig config = {});
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;
  ~Reactor();

  [[nodiscard]] const ReactorConfig& config() const noexcept {
    return config_;
  }

  /// Exposes per-reactor telemetry under `prefix` (e.g. "reactor.q1"):
  /// .posted/.rejected/.completed/.batches/.errors counters and the
  /// .ring_occupancy gauge. Call during single-threaded assembly. The
  /// registry must stay alive while post()/poll_once()/run() execute;
  /// destruction detaches, so it need not outlive the reactor itself.
  void bind_metrics(obs::MetricsRegistry& metrics, const std::string& prefix);

  /// Producer side — safe from any thread. Returns false (and counts a
  /// rejection) when the ring is full or the reactor has been stopped;
  /// the callback is NOT invoked in that case.
  bool post(IoRequest request, CompletionCallback on_complete);

  /// Owner side: drain up to batch_depth requests, submit them as one
  /// batch, deliver callbacks in pop (FIFO-per-producer) order. Returns
  /// the number of requests processed (0 = ring was empty).
  std::size_t poll_once();

  /// Owner-thread loop: poll until stop() is observed AND the ring has
  /// drained. Suitable as a std::thread body.
  void run();

  /// Requests shutdown — safe from any thread. run() exits after the
  /// drain; subsequent post() calls are rejected.
  void stop() noexcept { stop_.store(true, std::memory_order_release); }
  [[nodiscard]] bool stopped() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t ring_occupancy() const noexcept {
    return ring_.occupancy();
  }
  [[nodiscard]] ReactorStats stats() const noexcept;

 private:
  struct Posted {
    IoRequest request{};
    CompletionCallback on_complete{};
  };

  NvmeDriver& driver_;
  ReactorConfig config_;
  MpscRing<Posted> ring_;
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> posted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> errors_{0};

  obs::Gauge* ring_gauge_ = nullptr;
  obs::Counter* posted_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
  obs::Counter* completed_metric_ = nullptr;
  obs::Counter* batches_metric_ = nullptr;
  obs::Counter* errors_metric_ = nullptr;
};

}  // namespace bx::driver
