// I/O request and completion types of the host driver's public API
// (the passthrough-facing surface, §2.1).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "nvme/spec.h"
#include "obs/attribution.h"

namespace bx::driver {

/// How the payload crosses PCIe. kPrp/kSgl are the NVMe-native mechanisms;
/// kBandSlim is the CMD-based prior work; kByteExpress is the paper's
/// queue-local inline transfer; kByteExpressOoo is the §3.3.2 future-work
/// identifier-based variant; kHybrid switches ByteExpress<->PRP at a
/// static threshold (§4.2's suggested optimization); kAuto delegates the
/// choice per command to the attached driver::MethodPolicy (live
/// congestion signals + overload backpressure, docs/POLICY.md) and
/// behaves like kHybrid when no policy is attached. kHybrid and kAuto
/// always resolve to a concrete method before submission.
enum class TransferMethod : std::uint8_t {
  kPrp,
  kSgl,
  kByteExpress,
  kByteExpressOoo,
  kBandSlim,
  kHybrid,
  kAuto,
};

std::string_view transfer_method_name(TransferMethod method) noexcept;

struct IoRequest {
  nvme::IoOpcode opcode = nvme::IoOpcode::kVendorRawWrite;
  std::uint32_t nsid = 1;

  // Block I/O commands (kWrite / kRead).
  std::uint64_t slba = 0;
  std::uint32_t block_count = 0;

  // Host-to-device payload (writes, KV store values, CSD tasks).
  ConstByteSpan write_data{};
  // Device-to-host destination (reads, KV retrieve).
  ByteSpan read_buffer{};

  // Vendor command auxiliary field (CDW13 bits 31:8).
  std::uint32_t aux = 0;

  /// Read-direction commands with kSgl only: describe the destination as a
  /// bit-bucket descriptor, so the command completes without the data ever
  /// crossing the link (§5: "bitbucket descriptors can act as placeholders
  /// for unused segments"). CQE DW0 still reports the data size.
  bool discard_read_data = false;

  // KV commands: key rides inside the SQE (<= 16 bytes).
  nvme::KvKeyFields key{};

  TransferMethod method = TransferMethod::kPrp;

  /// Owning tenant (0 = untenanted). Tags trace events, routes the
  /// request through the driver's SubmissionGate (admission control and
  /// rate limiting), and attributes completions in per-tenant telemetry.
  std::uint16_t tenant = 0;

  /// Sim-time the request was handed to a posting layer (0 = submitted
  /// directly). The reactor stamps this when the request enters its MPSC
  /// ring; the driver then backdates the command's latency window to it,
  /// so ring residency is measured and attributed as
  /// obs::WaitSegment::kRingWait instead of silently vanishing.
  Nanoseconds origin_ns = 0;
};

struct Completion {
  nvme::StatusField status{};
  std::uint32_t dw0 = 0;
  /// Bytes copied into read_buffer (read-direction commands).
  std::uint32_t bytes_returned = 0;
  /// Simulated submit-to-reap latency of the whole command. For a
  /// reactor-posted request this starts at IoRequest::origin_ns, so ring
  /// residency is part of the measured window.
  Nanoseconds latency_ns = 0;
  /// Wait/service decomposition of latency_ns, valid at any queue depth:
  /// the segments sum EXACTLY to latency_ns for every completed command
  /// (obs::check_breakdown_additivity; the retry tail reports the final
  /// attempt, matching latency_ns).
  obs::LatencyBreakdown breakdown{};

  [[nodiscard]] bool ok() const noexcept { return status.is_success(); }
};

/// Handle for an in-flight asynchronous command.
struct Submitted {
  std::uint16_t qid = 0;
  std::uint16_t cid = 0;
  Nanoseconds submit_time_ns = 0;
};

}  // namespace bx::driver
