#include "driver/nvme_driver.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "controller/reassembly.h"
#include "nvme/bandslim_wire.h"
#include "nvme/inline_read_wire.h"
#include "nvme/inline_wire.h"
#include "nvme/sgl.h"

namespace bx::driver {

namespace inr = nvme::inline_read;

namespace {

constexpr std::uint32_t kBlockSize = 4096;  // device LBA format (Cosmos+)

ConstByteSpan sqe_bytes(const nvme::SubmissionQueueEntry& sqe) {
  return {reinterpret_cast<const Byte*>(&sqe), sizeof(sqe)};
}

/// Takes the SQ submit lock unless the ring is exclusively owned
/// (reactor mode, where the owner thread is the only submitter and the
/// lock would be pure overhead on the hot path).
class SqGuard {
 public:
  explicit SqGuard(nvme::SqRing& sq) {
    if (!sq.exclusive_owner()) {
      lock_ = std::unique_lock<std::mutex>(sq.lock());
    }
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace

NvmeDriver::NvmeDriver(DmaMemory& memory, pcie::PcieLink& link,
                       pcie::BarSpace& bar, Config config)
    : memory_(memory),
      link_(link),
      bar_(bar),
      doorbell_(bar, link),
      config_(config) {
  BX_ASSERT(config_.io_queue_count >= 1);
  BX_ASSERT(config_.io_queue_count < bar.max_queues());
  admin_.sq = std::make_unique<nvme::SqRing>(memory_, 0,
                                             config_.admin_queue_depth);
  admin_.cq = std::make_unique<nvme::CqRing>(memory_, 0,
                                             config_.admin_queue_depth);
}

NvmeDriver::~NvmeDriver() = default;

NvmeDriver::QueueInfo NvmeDriver::admin_queue_info() const {
  QueueInfo info;
  info.qid = 0;
  info.sq_addr = admin_.sq->base_addr();
  info.sq_depth = admin_.sq->depth();
  info.cq_addr = admin_.cq->base_addr();
  info.cq_depth = admin_.cq->depth();
  return info;
}

Status NvmeDriver::init_io_queues() {
  if (!pump_) return failed_precondition("no device attached (pump unset)");
  io_queues_.clear();
  inline_read_supported_ = false;
  // Flips false at the first rejected ring advertisement: a controller
  // without inline-read firmware support downgrades the whole session to
  // PRP/SGL reads instead of failing initialization.
  bool read_rings_accepted = config_.inline_read_enabled &&
                             config_.read_ring_slots >= 2 &&
                             config_.read_ring_slots <= (1u << 15);
  for (std::uint16_t i = 1; i <= config_.io_queue_count; ++i) {
    auto qp = std::make_unique<QueuePair>();
    qp->sq = std::make_unique<nvme::SqRing>(memory_, i,
                                            config_.io_queue_depth);
    qp->cq = std::make_unique<nvme::CqRing>(memory_, i,
                                            config_.io_queue_depth);

    // Create the completion queue first, as the spec requires.
    nvme::SubmissionQueueEntry create_cq;
    create_cq.opcode = static_cast<std::uint8_t>(
        nvme::AdminOpcode::kCreateIoCq);
    create_cq.dptr1 = qp->cq->base_addr();
    create_cq.cdw10 = (std::uint32_t{qp->cq->depth() - 1} << 16) | i;
    create_cq.cdw11 = 0x3;  // physically contiguous + interrupts enabled
    auto cq_done = execute_admin(create_cq);
    BX_RETURN_IF_ERROR(cq_done.status());
    if (!cq_done->ok()) {
      return internal_error("CreateIoCq failed for qid " + std::to_string(i));
    }

    nvme::SubmissionQueueEntry create_sq;
    create_sq.opcode = static_cast<std::uint8_t>(
        nvme::AdminOpcode::kCreateIoSq);
    create_sq.dptr1 = qp->sq->base_addr();
    create_sq.cdw10 = (std::uint32_t{qp->sq->depth() - 1} << 16) | i;
    create_sq.cdw11 = (std::uint32_t{i} << 16) | 0x1;  // cqid | contiguous
    auto sq_done = execute_admin(create_sq);
    BX_RETURN_IF_ERROR(sq_done.status());
    if (!sq_done->ok()) {
      return internal_error("CreateIoSq failed for qid " + std::to_string(i));
    }

    io_queues_.push_back(std::move(qp));

    // ByteExpress-R: allocate the host completion ring adjacent to the CQ
    // and advertise it so the controller can return small read payloads
    // inline (docs/READPATH.md). Advertised after CreateIoSq — the
    // controller validates the target SQ exists.
    if (read_rings_accepted) {
      QueuePair& ring_owner = *io_queues_.back();
      ring_owner.read_ring = memory_.allocate(
          std::uint64_t{config_.read_ring_slots} * nvme::kChunkSize);
      ring_owner.read_ring_slots = config_.read_ring_slots;
      nvme::SubmissionQueueEntry advertise;
      advertise.opcode =
          static_cast<std::uint8_t>(nvme::AdminOpcode::kVendorReadRing);
      advertise.dptr1 = ring_owner.read_ring.addr();
      advertise.cdw10 = std::uint32_t{i} | (config_.read_ring_slots << 16);
      auto advertised = execute_admin(advertise);
      BX_RETURN_IF_ERROR(advertised.status());
      if (!advertised->ok()) {
        read_rings_accepted = false;
        ring_owner.read_ring = DmaBuffer();
        ring_owner.read_ring_slots = 0;
      }
    }

    // Publish the queue's occupancy gauges now that the pair exists (the
    // registry/telemetry pointers were stored by bind_metrics() /
    // set_telemetry() during testbed assembly, which precedes this call).
    QueuePair& created = *io_queues_.back();
    if (metrics_ != nullptr) {
      const std::string prefix = "driver.q" + std::to_string(i);
      metrics_->expose_gauge(prefix + ".sq_occupancy",
                             &created.sq_occupancy);
      metrics_->expose_gauge(prefix + ".inflight", &created.inflight);
      metrics_->expose_counter(prefix + ".sq_doorbells",
                               &created.sq_doorbells);
      metrics_->expose_counter(prefix + ".sq_entries", &created.sq_entries);
      metrics_->expose_counter(prefix + ".commands", &created.commands);
      metrics_->expose_gauge(prefix + ".read_ring_occupancy",
                             &created.read_ring_occupancy);
    }
    if (telemetry_ != nullptr) {
      telemetry_->register_queue(i, &created.sq_occupancy,
                                 &created.inflight);
    }
    if (policy_ != nullptr) {
      policy_->register_queue(i, config_.io_queue_depth,
                              &created.sq_occupancy, &created.inflight);
    }
  }
  inline_read_supported_ = read_rings_accepted;
  return Status::ok();
}

NvmeDriver::QueuePair& NvmeDriver::queue(std::uint16_t qid) {
  if (qid == 0) return admin_;
  BX_ASSERT_MSG(qid <= io_queues_.size(), "bad qid");
  return *io_queues_[qid - 1];
}

nvme::SqRing& NvmeDriver::sq_for_test(std::uint16_t qid) {
  return *queue(qid).sq;
}

nvme::CqRing& NvmeDriver::cq_for_test(std::uint16_t qid) {
  return *queue(qid).cq;
}

DmaBuffer& NvmeDriver::read_ring_for_test(std::uint16_t qid) {
  return queue(qid).read_ring;
}

void NvmeDriver::bind_metrics(obs::MetricsRegistry& metrics) {
  metrics_ = &metrics;
  submissions_metric_ = &metrics.counter("driver.submissions");
  submit_cost_metric_ = &metrics.histogram("driver.submit_cost_ns");
  metrics.expose_counter("driver.timeouts", &timeouts_);
  metrics.expose_counter("driver.aborts_sent", &aborts_sent_);
  metrics.expose_counter("driver.retries", &retries_);
  metrics.expose_counter("driver.inline_fallback_prp", &inline_fallbacks_);
  metrics.expose_counter("driver.degradations", &degradations_);
  metrics.expose_counter("driver.inline_read.attempts",
                         &inline_read_attempts_);
  metrics.expose_counter("driver.inline_read.completions",
                         &inline_read_completions_);
  metrics.expose_counter("driver.inline_read.chunks", &inline_read_chunks_);
  metrics.expose_counter("driver.inline_read.bytes", &inline_read_bytes_);
  metrics.expose_counter("driver.inline_read.crc_errors",
                         &inline_read_crc_errors_);
  metrics.expose_counter("driver.inline_read.fallback_prp",
                         &inline_read_fallbacks_);
  metrics.expose_counter("driver.inline_read.degradations",
                         &inline_read_degradations_);
  metrics.expose_counter("faults.recovered", &faults_recovered_);
  metrics.expose_counter("faults.degraded", &faults_degraded_);
  metrics.expose_counter("faults.failed", &faults_failed_);
  metrics.expose_counter("driver.batches", &batches_);
  metrics.expose_counter("driver.batched_commands", &batched_commands_);
  metrics.expose_counter("driver.sq_doorbells", &total_sq_doorbells_);
  metrics.expose_counter("driver.commands", &total_commands_);
  metrics.expose_gauge("driver.doorbells_per_kop", &doorbells_per_kop_);
  batch_size_metric_ = &metrics.histogram("driver.batch_size");
  // Per-method wait-breakdown histograms, "driver.wait.<method>.<segment>".
  // kHybrid and kAuto resolve before submission so their rows stay
  // unbound — completed commands land in their resolved method's row.
  for (std::size_t m = 0; m < wait_hists_.size(); ++m) {
    const auto method = static_cast<TransferMethod>(m);
    if (method == TransferMethod::kHybrid ||
        method == TransferMethod::kAuto) {
      continue;
    }
    const std::string prefix =
        "driver.wait." + std::string(transfer_method_name(method)) + ".";
    for (std::size_t s = 0; s < obs::kWaitSegmentCount; ++s) {
      wait_hists_[m][s] = &metrics.histogram(
          prefix + std::string(obs::wait_segment_name(
                       static_cast<obs::WaitSegment>(s))));
    }
  }
}

void NvmeDriver::ring_sq_traced(std::uint16_t qid, std::uint32_t tail,
                                std::uint64_t entries, std::uint16_t cid,
                                std::uint8_t flags) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    // Recorded *before* the BAR write: once the device can see the tail,
    // the publish event is already in the trace, so a fetch recorded by
    // the firmware always carries a later seq than the doorbell that
    // published the entry (the invariant checker relies on this under
    // OS-thread schedules).
    obs::TraceEvent event;
    event.stage = obs::TraceStage::kDoorbell;
    event.start = event.end = link_.clock().now();
    event.flags = flags;
    event.qid = qid;
    event.cid = cid;
    event.slot = tail;
    event.aux = entries;
    tracer_->record(event);
  }
  doorbell_.ring_sq_tail(qid, tail);
  // Doorbell accounting counts BAR writes, not commands: a coalesced
  // batch bumps sq_doorbells once while sq_entries advances by the whole
  // run (the PR 1 counters assumed one ring per submit; batching broke
  // that assumption, so the books are kept here, at the single place
  // every SQ ring goes through).
  QueuePair& qp = queue(qid);
  qp.sq_doorbells.increment();
  qp.sq_entries.add(entries);
  if (qid != 0) {
    total_sq_doorbells_.increment();
    const std::uint64_t commands = total_commands_.value();
    if (commands > 0) {
      doorbells_per_kop_.set(static_cast<std::int64_t>(
          total_sq_doorbells_.value() * 1000 / commands));
    }
  }
  if (telemetry_ != nullptr) telemetry_->on_sq_doorbell(qid, entries);
}

std::size_t NvmeDriver::pending_count_for_test(std::uint16_t qid) {
  QueuePair& qp = queue(qid);
  std::lock_guard<std::mutex> lock(qp.pending_mutex);
  return qp.pending.size();
}

bool NvmeDriver::is_write_direction(nvme::IoOpcode opcode) noexcept {
  switch (opcode) {
    case nvme::IoOpcode::kWrite:
    case nvme::IoOpcode::kVendorRawWrite:
    case nvme::IoOpcode::kVendorKvStore:
    case nvme::IoOpcode::kVendorCsdFilter:
    case nvme::IoOpcode::kVendorPartialWrite:
      return true;
    default:
      return false;
  }
}

bool NvmeDriver::is_read_direction(nvme::IoOpcode opcode) noexcept {
  switch (opcode) {
    case nvme::IoOpcode::kRead:
    case nvme::IoOpcode::kVendorRawRead:
    case nvme::IoOpcode::kVendorKvRetrieve:
    case nvme::IoOpcode::kVendorKvIterate:
      return true;
    default:
      return false;
  }
}

bool NvmeDriver::is_retryable(nvme::StatusField status) noexcept {
  if (status.type != nvme::StatusCodeType::kGeneric) return false;
  switch (static_cast<nvme::GenericStatus>(status.code)) {
    case nvme::GenericStatus::kDataTransferError:
    case nvme::GenericStatus::kNamespaceNotReady:
    case nvme::GenericStatus::kAbortRequested:
      return true;
    default:
      return false;
  }
}

bool NvmeDriver::is_inline_method(TransferMethod method) noexcept {
  return method == TransferMethod::kByteExpress ||
         method == TransferMethod::kByteExpressOoo ||
         method == TransferMethod::kBandSlim;
}

std::uint32_t NvmeDriver::inline_slots_for(
    TransferMethod method, std::uint64_t payload_len) noexcept {
  switch (method) {
    case TransferMethod::kByteExpress:
      return nvme::inline_chunk::raw_chunks_for(payload_len);
    case TransferMethod::kByteExpressOoo:
      return nvme::inline_chunk::ooo_chunks_for(payload_len);
    default:
      // PRP/SGL carry no chunks; BandSlim fragments recycle slot by slot
      // and never hold a run of the ring.
      return 0;
  }
}

std::uint64_t NvmeDriver::read_length_of(const IoRequest& request) noexcept {
  if (request.opcode == nvme::IoOpcode::kRead) {
    return std::uint64_t{request.block_count} * kBlockSize;
  }
  return request.read_buffer.size();
}

bool NvmeDriver::reserve_read_slots(QueuePair& qp,
                                    std::uint32_t slots) noexcept {
  std::uint32_t reserved =
      qp.read_ring_reserved.load(std::memory_order_relaxed);
  for (;;) {
    if (reserved + slots > qp.read_ring_slots) return false;
    if (qp.read_ring_reserved.compare_exchange_weak(
            reserved, reserved + slots, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      qp.read_ring_occupancy.set(
          static_cast<std::int64_t>(reserved + slots));
      return true;
    }
  }
}

void NvmeDriver::release_read_slots(QueuePair& qp,
                                    Pending& pending) noexcept {
  if (pending.read_slots_reserved == 0) return;
  const std::uint32_t before = qp.read_ring_reserved.fetch_sub(
      pending.read_slots_reserved, std::memory_order_acq_rel);
  qp.read_ring_occupancy.set(
      static_cast<std::int64_t>(before - pending.read_slots_reserved));
  pending.read_slots_reserved = 0;
}

Status NvmeDriver::gate_admit(const IoRequest& request, std::uint16_t qid,
                              const ResolvedMethod& resolved,
                              Pending& pending) {
  if (gate_ == nullptr) return Status::ok();
  std::uint32_t slots =
      inline_slots_for(resolved.method, request.write_data.size());
  // An inline read claims completion-ring slots instead of SQ chunk
  // slots; both draw on the same per-tenant inline budget.
  if (resolved.inline_read) {
    slots += inr::read_chunks_for(read_length_of(request));
  }
  BX_RETURN_IF_ERROR(gate_->admit(request, qid, slots, link_.clock().now()));
  pending.gated = true;
  pending.tenant = request.tenant;
  pending.gated_slots = slots;
  return Status::ok();
}

void NvmeDriver::gate_release(Pending& pending, bool completed) noexcept {
  if (!pending.gated) return;
  pending.gated = false;
  if (gate_ != nullptr) {
    gate_->release(pending.tenant, pending.gated_slots, completed);
  }
}

StatusOr<NvmeDriver::ResolvedMethod> NvmeDriver::resolve_method(
    const IoRequest& request, std::uint16_t qid) const {
  ResolvedMethod resolved;
  TransferMethod method = request.method;
  const std::uint64_t len = request.write_data.size();

  // The largest payload that can actually go inline on this queue: the
  // config cap AND the ring-capacity bound (command + chunks must fit the
  // depth - 1 usable slots).
  const std::uint64_t inline_cap = std::min<std::uint64_t>(
      config_.max_inline_bytes,
      std::uint64_t{config_.io_queue_depth - 2} * nvme::kChunkSize);

  if (method == TransferMethod::kAuto) {
    if (policy_ != nullptr) {
      // Keep the policy's window-driven signals fresh at decision time:
      // close any telemetry windows the clock has moved past (one relaxed
      // load when still inside the current window).
      const Nanoseconds now = link_.clock().now();
      if (telemetry_ != nullptr) telemetry_->advance_to(now);
      const PolicyDecision decision = policy_->decide(request, qid, now);
      if (decision.shed) {
        return resource_exhausted(
            "adaptive policy sheds load on qid " + std::to_string(qid) +
            " (overload watermark crossed; retry after drain)");
      }
      method = decision.method;
      resolved.auto_decided = true;
    } else {
      // No policy attached: kAuto degrades to the static hybrid rule.
      method = TransferMethod::kHybrid;
    }
  }

  if (method == TransferMethod::kHybrid) {
    // Clamp the hybrid cut to what can actually go inline: a threshold
    // configured above max_inline_bytes (or the ring bound) must classify
    // oversized payloads as PRP outright, not as ByteExpress commands
    // that immediately take the feasibility-fallback branch and inflate
    // driver.inline_fallback_prp.
    const std::uint64_t cut =
        std::min<std::uint64_t>(config_.hybrid_threshold_bytes, inline_cap);
    method = (is_write_direction(request.opcode) && len > 0 && len <= cut)
                 ? TransferMethod::kByteExpress
                 : TransferMethod::kPrp;
  }

  bool inline_like = is_inline_method(method);
  if (inline_like) {
    // Inline transfer only exists host->device; reads and zero-length
    // commands use the native path. A payload whose command + chunks can
    // never fit the ring (depth - 1 usable slots) must also fall back —
    // waiting would deadlock.
    const std::uint32_t max_ring_payload =
        method == TransferMethod::kBandSlim
            ? UINT32_MAX  // BandSlim commands recycle slot by slot
            : (config_.io_queue_depth - 2) * nvme::kChunkSize;
    if (!is_write_direction(request.opcode) || len == 0 ||
        len > config_.max_inline_bytes || len > max_ring_payload) {
      if (!config_.auto_fallback_to_prp) {
        return failed_precondition(
            "payload cannot go inline and PRP fallback is disabled");
      }
      method = TransferMethod::kPrp;
      resolved.feasibility_fallback = true;
      inline_like = false;
    }
  }

  // Graceful degradation: a queue that keeps failing inline commands
  // routes them through PRP until its re-probe time passes.
  if (inline_like && config_.degrade_threshold > 0 && qid >= 1 &&
      qid <= io_queues_.size()) {
    const QueuePair& qp = *io_queues_[qid - 1];
    if (link_.clock().now() <
        qp.degraded_until.load(std::memory_order_relaxed)) {
      method = TransferMethod::kPrp;
      resolved.degraded = true;
    }
  }

  // ByteExpress-R: a small read additionally requests inline return
  // through the queue's completion ring. `method` keeps the PRP/SGL
  // resolution it would otherwise use — that is the fallback if the
  // ring-slot reservation fails at submit time, and the return path if
  // the queue's read side is degraded.
  if (config_.inline_read_enabled && inline_read_supported_ &&
      is_read_direction(request.opcode) && !request.discard_read_data &&
      qid >= 1 && qid <= io_queues_.size()) {
    const std::uint64_t read_len = read_length_of(request);
    const QueuePair& qp = *io_queues_[qid - 1];
    if (read_len > 0 && read_len <= config_.max_inline_read_bytes &&
        inr::read_chunks_for(read_len) <= qp.read_ring_slots) {
      if (config_.degrade_threshold > 0 &&
          link_.clock().now() <
              qp.read_degraded_until.load(std::memory_order_relaxed)) {
        resolved.degraded = true;
      } else {
        resolved.inline_read = true;
      }
    }
  }

  resolved.method = method;
  return resolved;
}

nvme::SubmissionQueueEntry NvmeDriver::build_base_sqe(
    const IoRequest& request) const {
  nvme::SubmissionQueueEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(request.opcode);
  sqe.nsid = request.nsid;
  if (request.opcode == nvme::IoOpcode::kWrite ||
      request.opcode == nvme::IoOpcode::kRead) {
    nvme::BlockIoFields fields;
    fields.slba = request.slba;
    fields.block_count = request.block_count;
    fields.apply(sqe);
  } else {
    nvme::VendorFields fields;
    fields.data_length = static_cast<std::uint32_t>(
        is_read_direction(request.opcode) ? request.read_buffer.size()
                                          : request.write_data.size());
    fields.aux = request.aux << 8;
    fields.apply(sqe);
    if (request.key.key_len > 0) request.key.apply(sqe);
    if (request.opcode == nvme::IoOpcode::kVendorPartialWrite) {
      // Target block address rides in CDW10/11 (aux carries the byte
      // offset within the block).
      sqe.cdw10 = static_cast<std::uint32_t>(request.slba);
      sqe.cdw11 = static_cast<std::uint32_t>(request.slba >> 32);
    }
  }
  return sqe;
}

Status NvmeDriver::attach_data_prp(QueuePair& qp,
                                   nvme::SubmissionQueueEntry& sqe,
                                   Pending& pending,
                                   const IoRequest& request) {
  (void)qp;
  const bool read_dir = is_read_direction(request.opcode);
  const std::uint64_t len =
      read_dir ? request.read_buffer.size() : request.write_data.size();
  if (len == 0) return Status::ok();  // e.g. flush, delete, exist

  pending.data = memory_.allocate(len);
  if (!read_dir) pending.data.write(0, request.write_data);
  auto chain = nvme::build_prp_chain(memory_, pending.data.addr(), len);
  BX_RETURN_IF_ERROR(chain.status());
  pending.chain = std::move(chain).value();
  sqe.dptr1 = pending.chain.prp1;
  sqe.dptr2 = pending.chain.prp2;
  sqe.set_transfer_mode(nvme::DataTransferMode::kPrp);
  link_.clock().advance(config_.timing.prp_build_ns);
  if (read_dir) {
    pending.read_target = request.read_buffer;
    pending.read_length = static_cast<std::uint32_t>(len);
  }
  return Status::ok();
}

Status NvmeDriver::attach_data_sgl(QueuePair& qp,
                                   nvme::SubmissionQueueEntry& sqe,
                                   Pending& pending,
                                   const IoRequest& request) {
  (void)qp;
  const bool read_dir = is_read_direction(request.opcode);

  if (read_dir && request.discard_read_data) {
    // §5: a bit bucket absorbs the read data on the device side; no host
    // buffer, no data transfer, the CQE alone reports the outcome.
    const auto bucket_len = static_cast<std::uint32_t>(
        request.read_buffer.empty() ? UINT32_MAX
                                    : request.read_buffer.size());
    const auto [low, high] = nvme::make_bit_bucket(bucket_len).pack();
    sqe.dptr1 = low;
    sqe.dptr2 = high;
    sqe.set_transfer_mode(nvme::DataTransferMode::kSglData);
    // The data length field still declares what the host asked about.
    if (sqe.cdw12 == 0) sqe.cdw12 = bucket_len;
    link_.clock().advance(config_.timing.sgl_build_ns);
    return Status::ok();
  }

  const std::uint64_t len =
      read_dir ? request.read_buffer.size() : request.write_data.size();
  if (len == 0) return Status::ok();

  pending.data = memory_.allocate(len);
  if (!read_dir) pending.data.write(0, request.write_data);
  auto descriptor = nvme::build_sgl_data_block(pending.data.addr(), len);
  BX_RETURN_IF_ERROR(descriptor.status());
  const auto [low, high] = descriptor->pack();
  sqe.dptr1 = low;
  sqe.dptr2 = high;
  sqe.set_transfer_mode(nvme::DataTransferMode::kSglData);
  link_.clock().advance(config_.timing.sgl_build_ns);
  if (read_dir) {
    pending.read_target = request.read_buffer;
    pending.read_length = static_cast<std::uint32_t>(len);
  }
  return Status::ok();
}

std::uint16_t NvmeDriver::register_pending(QueuePair& qp, Pending pending) {
  const std::uint16_t tenant = pending.tenant;
  std::lock_guard<std::mutex> lock(qp.pending_mutex);
  std::uint16_t cid;
  do {
    cid = qp.next_cid.fetch_add(1, std::memory_order_relaxed);
  } while (qp.pending.count(cid) != 0);
  qp.pending.emplace(cid, std::move(pending));
  qp.inflight.set(static_cast<std::int64_t>(qp.pending.size()));
  // Open the command's attribution entry before any slot is published, so
  // every device-side stage event lands inside its window. Lock order:
  // pending_mutex -> TraceRecorder table mutex (never the reverse).
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->begin_command(qp.sq->qid(), cid, tenant);
  }
  return cid;
}

std::uint16_t NvmeDriver::allocate_stream_id() noexcept {
  // Stream id 0 is reserved (fragment commands carry cid 0); skip it when
  // the 16-bit counter wraps.
  for (;;) {
    const std::uint16_t id =
        next_stream_id_.fetch_add(1, std::memory_order_relaxed);
    if (id != 0) return id;
  }
}

std::uint32_t NvmeDriver::allocate_payload_id() noexcept {
  // Payload ids live in the low 31 bits of the OOO marker; masking the
  // monotone counter keeps the value in range across wraparound without a
  // read-modify-write race window.
  for (;;) {
    const std::uint32_t id =
        next_payload_id_.fetch_add(1, std::memory_order_relaxed) & 0x7fffffffu;
    if (id != 0) return id;
  }
}

Status NvmeDriver::submit_plain(QueuePair& qp,
                                const nvme::SubmissionQueueEntry& sqe,
                                SubmitMarks* marks) {
  const Nanoseconds entry_time = link_.clock().now();
  int idle_spins = 0;
  for (;;) {
    {
      SqGuard lock(*qp.sq);
      if (qp.sq->free_slots() >= 1) {
        const Nanoseconds start = link_.clock().now();
        link_.clock().advance(config_.timing.sqe_insert_ns);
        qp.sq->push_slot(sqe_bytes(sqe));
        qp.sq_occupancy.set(qp.sq->occupancy());
        last_submit_cost_ns_.store(link_.clock().now() - start,
                                   std::memory_order_relaxed);
        if (marks != nullptr) {
          marks->acquire_ns = start;
          marks->slot_wait_ns +=
              static_cast<std::uint64_t>(start - entry_time);
          marks->push_end_ns = link_.clock().now();
        }
        // Ring while still holding the ring lock: if the doorbell moved
        // outside, a submitter that pushed a later tail could ring first
        // and a stale earlier tail would then regress the BAR register,
        // hiding entries from the device.
        const bool aux = sqe.opcode == static_cast<std::uint8_t>(
                             nvme::IoOpcode::kVendorBandSlimFragment);
        ring_sq_traced(qp.sq->qid(), qp.sq->tail(), /*entries=*/1, sqe.cid,
                       aux ? obs::kFlagAuxCommand : 0);
        if (marks != nullptr) marks->bell_end_ns = link_.clock().now();
        return Status::ok();
      }
    }
    // Ring full: reap and let the device drain, bounded so a wedged
    // device surfaces as an error instead of a hang.
    poll_completions(qp.sq->qid());
    if (pump_once()) {
      idle_spins = 0;
    } else if (++idle_spins > 10000) {
      return resource_exhausted("SQ full and device made no progress");
    }
  }
}

std::uint32_t NvmeDriver::push_command_locked(
    QueuePair& qp, const nvme::SubmissionQueueEntry& sqe,
    ConstByteSpan inline_payload) {
  link_.clock().advance(config_.timing.sqe_insert_ns);
  qp.sq->push_slot(sqe_bytes(sqe));
  if (inline_payload.empty()) return 1;
  const bool ooo = nvme::inline_chunk::sqe_is_ooo(sqe);
  const std::uint32_t chunks =
      ooo ? nvme::inline_chunk::ooo_chunks_for(inline_payload.size())
          : nvme::inline_chunk::raw_chunks_for(inline_payload.size());
  std::size_t offset = 0;
  for (std::uint32_t i = 0; i < chunks; ++i) {
    link_.clock().advance(config_.timing.chunk_insert_ns);
    if (ooo) {
      const std::size_t take =
          std::min<std::size_t>(nvme::inline_chunk::kOooChunkCapacity,
                                inline_payload.size() - offset);
      const auto slot = nvme::inline_chunk::encode_ooo_chunk(
          nvme::inline_chunk::sqe_ooo_payload_id(sqe),
          static_cast<std::uint16_t>(i), static_cast<std::uint16_t>(chunks),
          inline_payload.subspan(offset, take));
      qp.sq->push_slot({slot.raw, sizeof(slot.raw)});
      offset += take;
    } else {
      const std::size_t take = std::min<std::size_t>(
          nvme::inline_chunk::kRawChunkCapacity,
          inline_payload.size() - offset);
      const auto slot = nvme::inline_chunk::encode_raw_chunk(
          inline_payload.subspan(offset, take));
      qp.sq->push_slot({slot.raw, sizeof(slot.raw)});
      offset += take;
    }
  }
  return 1 + chunks;
}

bool NvmeDriver::submit_inline_locked(QueuePair& qp,
                                      const nvme::SubmissionQueueEntry& sqe,
                                      ConstByteSpan payload,
                                      SubmitMarks* marks) {
  const bool ooo = nvme::inline_chunk::sqe_is_ooo(sqe);
  const std::uint32_t chunks =
      ooo ? nvme::inline_chunk::ooo_chunks_for(payload.size())
          : nvme::inline_chunk::raw_chunks_for(payload.size());
  {
    // §3.3.2: command + chunks inserted under one hold of the SQ lock, so
    // the entries are consecutive and in order.
    SqGuard lock(*qp.sq);
    if (qp.sq->free_slots() < 1 + chunks) return false;
    const Nanoseconds start = link_.clock().now();
    const std::uint32_t pushed = push_command_locked(qp, sqe, payload);
    qp.sq_occupancy.set(qp.sq->occupancy());
    last_submit_cost_ns_.store(link_.clock().now() - start,
                               std::memory_order_relaxed);
    if (marks != nullptr) {
      marks->acquire_ns = start;
      marks->push_end_ns = link_.clock().now();
    }
    // One doorbell for the command and all of its chunks, rung before the
    // lock drops so racing submitters cannot regress the tail register.
    ring_sq_traced(qp.sq->qid(), qp.sq->tail(),
                   /*entries=*/pushed, sqe.cid,
                   ooo ? obs::kFlagOooCommand : 0);
    if (marks != nullptr) marks->bell_end_ns = link_.clock().now();
  }
  return true;
}

Status NvmeDriver::submit_bandslim(QueuePair& qp,
                                   nvme::SubmissionQueueEntry sqe,
                                   const IoRequest& request,
                                   SubmitMarks* marks) {
  const ConstByteSpan payload = request.write_data;
  const std::uint16_t stream = allocate_stream_id();

  const std::uint32_t embedded =
      nvme::bandslim::encode_header(sqe, stream, payload);
  BX_RETURN_IF_ERROR(submit_plain(qp, sqe, marks));

  // Dedicated fragment commands, serialized by the host ordering layer
  // (§3.2: "payload fragments must be sent through serialized CMDs").
  std::uint32_t offset = embedded;
  std::uint16_t index = 0;
  while (offset < payload.size()) {
    link_.clock().advance(config_.timing.bandslim_gap_ns);
    nvme::bandslim::Fragment fragment;
    fragment.stream_id = stream;
    fragment.index = index++;
    fragment.offset = offset;
    fragment.length = static_cast<std::uint32_t>(
        std::min<std::size_t>(nvme::bandslim::kFragmentCapacity,
                              payload.size() - offset));
    fragment.last = offset + fragment.length == payload.size();
    const auto frag_sqe = nvme::bandslim::encode_fragment(
        fragment, /*cid=*/0, payload.subspan(offset, fragment.length));
    BX_RETURN_IF_ERROR(submit_plain(qp, frag_sqe, marks));
    offset += fragment.length;
  }
  return Status::ok();
}

StatusOr<Submitted> NvmeDriver::submit_with_method(const IoRequest& request,
                                                   std::uint16_t qid,
                                                   ResolvedMethod resolved,
                                                   std::uint8_t submit_flags) {
  QueuePair& qp = queue(qid);
  const TransferMethod method = resolved.method;

  // Validate block I/O geometry up front.
  if (request.opcode == nvme::IoOpcode::kWrite) {
    if (request.write_data.size() !=
        std::uint64_t{request.block_count} * kBlockSize) {
      return invalid_argument("write_data must be block_count * 4096 bytes");
    }
  }
  if (request.opcode == nvme::IoOpcode::kRead) {
    if (request.read_buffer.size() !=
        std::uint64_t{request.block_count} * kBlockSize) {
      return invalid_argument("read_buffer must be block_count * 4096 bytes");
    }
  }

  nvme::SubmissionQueueEntry sqe = build_base_sqe(request);

  Pending pending;
  const Nanoseconds entry_time = link_.clock().now();
  // Reactor-posted requests backdate the latency window to the instant the
  // request entered the MPSC ring (IoRequest::origin_ns), so ring residency
  // is measured and attributed as kRingWait instead of silently vanishing.
  // The timeout deadline still runs from driver entry: queueing ahead of
  // the driver must not consume the command's execution budget.
  const Nanoseconds submit_time =
      request.origin_ns != 0 && request.origin_ns <= entry_time
          ? request.origin_ns
          : entry_time;
  pending.submit_time_ns = submit_time;
  pending.ring_wait_ns =
      static_cast<std::uint64_t>(entry_time - submit_time);
  pending.method = method;
  pending.tenant = request.tenant;
  if (config_.command_timeout_ns > 0) {
    pending.deadline_ns = entry_time + config_.command_timeout_ns;
  }

  // ByteExpress-R: claim the completion-ring slots before staging. A
  // full ring is not an error — the read falls back to the PRP/SGL
  // method resolve_method() kept as the fallback.
  if (resolved.inline_read) {
    const std::uint32_t chunks =
        inr::read_chunks_for(read_length_of(request));
    if (reserve_read_slots(qp, chunks)) {
      pending.inline_read = true;
      pending.read_slots_reserved = chunks;
      inline_read_attempts_.increment();
    } else {
      resolved.inline_read = false;
      inline_read_fallbacks_.increment();
      submit_flags |= obs::kFlagMethodFallback;
    }
  }

  if (pending.inline_read) {
    // No PRP/SGL staging: the payload arrives through the completion
    // ring, so the command crosses the link bare.
    inr::mark_sqe_inline_read(sqe);
    pending.read_target = request.read_buffer;
    pending.read_length =
        static_cast<std::uint32_t>(read_length_of(request));
  } else {
    switch (method) {
      case TransferMethod::kPrp: {
        BX_RETURN_IF_ERROR(attach_data_prp(qp, sqe, pending, request));
        break;
      }
      case TransferMethod::kSgl: {
        BX_RETURN_IF_ERROR(attach_data_sgl(qp, sqe, pending, request));
        break;
      }
      case TransferMethod::kByteExpress:
      case TransferMethod::kByteExpressOoo: {
        sqe.set_inline_length(
            static_cast<std::uint32_t>(request.write_data.size()));
        if (method == TransferMethod::kByteExpressOoo) {
          nvme::inline_chunk::mark_sqe_ooo(sqe, allocate_payload_id());
        }
        break;
      }
      case TransferMethod::kBandSlim:
        break;
      case TransferMethod::kHybrid:
      case TransferMethod::kAuto:
        return internal_error(
            "hybrid/auto must be resolved before submission");
    }
  }

  // One admission decision per command, taken before any ring slot is
  // claimed; a rejection surfaces the gate's status unchanged (staging is
  // undone by Pending's RAII — nothing was published).
  {
    const Nanoseconds gate_start = link_.clock().now();
    const Status admitted = gate_admit(request, qid, resolved, pending);
    if (!admitted.is_ok()) {
      release_read_slots(qp, pending);
      return admitted;
    }
    pending.gate_wait_ns =
        static_cast<std::uint64_t>(link_.clock().now() - gate_start);
  }

  const std::uint16_t cid = register_pending(qp, std::move(pending));
  sqe.cid = cid;

  const auto abandon = [this, &qp, cid] {
    std::lock_guard<std::mutex> lock(qp.pending_mutex);
    auto it = qp.pending.find(cid);
    if (it != qp.pending.end()) {
      gate_release(it->second, /*completed=*/false);
      release_read_slots(qp, it->second);
      qp.pending.erase(it);
    }
    qp.inflight.set(static_cast<std::int64_t>(qp.pending.size()));
  };

  SubmitMarks marks;
  const Nanoseconds publish_start = link_.clock().now();
  switch (method) {
    case TransferMethod::kPrp:
    case TransferMethod::kSgl: {
      const Status status = submit_plain(qp, sqe, &marks);
      if (!status.is_ok()) {
        abandon();
        return status;
      }
      break;
    }
    case TransferMethod::kByteExpress:
    case TransferMethod::kByteExpressOoo: {
      // Wait for ring space if the queue is saturated with inline chunks.
      int idle_spins = 0;
      while (!submit_inline_locked(qp, sqe, request.write_data, &marks)) {
        poll_completions(qid);
        if (pump_once()) {
          idle_spins = 0;
        } else if (++idle_spins > 10000) {
          abandon();
          return resource_exhausted("SQ too shallow for inline payload");
        }
      }
      // Backpressure spent in the retry loop above = time from the first
      // attempt until ring space was finally secured.
      marks.slot_wait_ns = marks.acquire_ns >= publish_start
                               ? static_cast<std::uint64_t>(
                                     marks.acquire_ns - publish_start)
                               : 0;
      break;
    }
    case TransferMethod::kBandSlim: {
      const Status status = submit_bandslim(qp, sqe, request, &marks);
      if (!status.is_ok()) {
        abandon();
        return status;
      }
      break;
    }
    case TransferMethod::kHybrid:
    case TransferMethod::kAuto:
      return internal_error("unreachable");
  }
  {
    // Publish the attribution marks into the registered pending. The
    // device may already have completed the command (reap sets done but
    // never erases; only the waiter erases, and the handle has not been
    // returned yet), so the entry is still present.
    std::lock_guard<std::mutex> lock(qp.pending_mutex);
    auto it = qp.pending.find(cid);
    if (it != qp.pending.end()) {
      it->second.slot_wait_ns = marks.slot_wait_ns;
      it->second.push_end_ns = marks.push_end_ns;
      it->second.bell_end_ns = marks.bell_end_ns;
    }
  }

  if (telemetry_ != nullptr && is_write_direction(request.opcode)) {
    telemetry_->on_payload(request.write_data.size());
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceEvent event;
    event.stage = obs::TraceStage::kSubmit;
    event.start = submit_time;
    event.end = link_.clock().now();
    event.qid = qid;
    event.cid = cid;
    event.tenant = request.tenant;
    event.aux = static_cast<std::uint64_t>(method);
    event.bytes = request.write_data.size();
    event.flags = submit_flags;
    if (method == TransferMethod::kByteExpressOoo) {
      event.flags |= obs::kFlagOooCommand;
    }
    tracer_->record(event);
  }
  if (submissions_metric_ != nullptr) {
    submissions_metric_->increment();
    submit_cost_metric_->record(
        static_cast<std::uint64_t>(last_submit_cost()));
  }
  qp.commands.increment();
  total_commands_.increment();

  Submitted handle;
  handle.qid = qid;
  handle.cid = cid;
  handle.submit_time_ns = submit_time;
  return handle;
}

StatusOr<Submitted> NvmeDriver::submit(const IoRequest& request,
                                       std::uint16_t qid) {
  if (qid == 0 || qid > io_queues_.size()) {
    return invalid_argument("bad I/O qid " + std::to_string(qid));
  }
  auto resolved = resolve_method(request, qid);
  BX_RETURN_IF_ERROR(resolved.status());
  std::uint8_t flags = 0;
  if (resolved->feasibility_fallback || resolved->degraded) {
    flags = obs::kFlagMethodFallback;
  }
  if (resolved->auto_decided) flags |= obs::kFlagAutoPolicy;
  if (resolved->feasibility_fallback) inline_fallbacks_.increment();
  return submit_with_method(request, qid, *resolved, flags);
}

void NvmeDriver::consume_inline_read_locked(QueuePair& qp,
                                            Pending& pending) {
  const nvme::CompletionQueueEntry& cqe = pending.cqe;
  // DW0 may report more than was transferred (a KV value larger than the
  // destination buffer); the controller clamps the inline emission to the
  // declared length, so the reassembled payload is the min of the two.
  const std::uint32_t length =
      std::min<std::uint32_t>(cqe.dw0, pending.read_length);
  const std::uint32_t chunks = inr::cqe_read_chunks(cqe);
  const std::uint32_t first = inr::cqe_read_first_slot(cqe);
  // Any violation rewrites the completion to a retryable Data Transfer
  // Error: the retry tail resubmits (and, past the degradation
  // threshold, routes the queue's reads back through PRP).
  const auto fail = [&pending] {
    pending.cqe.set_status(nvme::StatusField::generic(
        nvme::GenericStatus::kDataTransferError));
  };
  if (length == 0 || chunks != inr::read_chunks_for(length) ||
      qp.read_ring_slots == 0) {
    fail();
    return;
  }
  controller::ReadReassembler reassembler(cqe.sq_id, cqe.cid, length);
  nvme::SqSlot slot;
  for (std::uint32_t i = 0; i < chunks; ++i) {
    const std::uint64_t offset =
        std::uint64_t{(first + i) % qp.read_ring_slots} *
        inr::kReadSlotBytes;
    qp.read_ring.read(offset, {slot.raw, sizeof(slot.raw)});
    const Status accepted = reassembler.accept(slot);
    if (!accepted.is_ok()) {
      if (accepted.code() == StatusCode::kDataLoss) {
        inline_read_crc_errors_.increment();
      }
      fail();
      return;
    }
  }
  auto payload = reassembler.take();
  if (!payload.is_ok() || payload->size() > pending.read_target.size()) {
    fail();
    return;
  }
  std::memcpy(pending.read_target.data(), payload->data(),
              payload->size());
  inline_read_completions_.increment();
  inline_read_chunks_.add(chunks);
  inline_read_bytes_.add(length);
}

Completion NvmeDriver::finish_pending_locked(
    QueuePair& qp, std::unordered_map<std::uint16_t, Pending>::iterator it) {
  const std::uint16_t cid = it->first;
  Pending pending = std::move(it->second);
  gate_release(pending, /*completed=*/true);
  qp.pending.erase(it);
  qp.inflight.set(static_cast<std::int64_t>(qp.pending.size()));
  if (pending.inline_read) {
    if (pending.cqe.status().is_success()) {
      if (inr::cqe_is_inline_read(pending.cqe)) {
        // Ring reads below are plain host-DRAM loads — the point of the
        // design: the payload already crossed the link as MWr chunks.
        consume_inline_read_locked(qp, pending);
      } else if (pending.cqe.dw0 != 0) {
        // The command was marked inline but the controller neither
        // emitted chunks nor failed it; with no PRP buffer staged the
        // data went nowhere. Retryable — the retry re-resolves.
        pending.cqe.set_status(nvme::StatusField::generic(
            nvme::GenericStatus::kDataTransferError));
      }
    }
    release_read_slots(qp, pending);
  }
  Completion completion;
  completion.status = pending.cqe.status();
  completion.dw0 = pending.cqe.dw0;
  completion.latency_ns = link_.clock().now() - pending.submit_time_ns;
  if (!pending.read_target.empty() && completion.status.is_success()) {
    const std::uint32_t returned =
        std::min<std::uint32_t>(pending.cqe.dw0, pending.read_length);
    // Inline reads were copied out of the completion ring above; the
    // PRP/SGL path copies out of the staging DMA buffer here.
    if (!pending.inline_read && returned > 0 && pending.data.valid()) {
      ByteVec staging(returned);
      pending.data.read(0, {staging.data(), returned});
      std::memcpy(pending.read_target.data(), staging.data(), returned);
    }
    completion.bytes_returned = returned;
  }
  attribute_completion(qp.sq->qid(), cid, pending, completion);
  return completion;
}

void NvmeDriver::attribute_completion(std::uint16_t qid, std::uint16_t cid,
                                      const Pending& pending,
                                      Completion& completion) {
  const auto total = static_cast<std::uint64_t>(completion.latency_ns);
  // Close the attribution entry: the recorder derives the device report
  // passively from the stage events the firmware already recorded, and
  // applies the tail-sampling keep/drop decision for the buffered events.
  obs::DeviceReport report;
  if (tracer_ != nullptr && tracer_->enabled()) {
    report = tracer_->finish_command(qid, cid, link_.clock().now(),
                                     completion.latency_ns);
  }

  std::array<std::uint64_t, obs::kWaitSegmentCount> want{};
  const auto seg = [](obs::WaitSegment s) {
    return static_cast<std::size_t>(s);
  };
  want[seg(obs::WaitSegment::kGateWait)] = pending.gate_wait_ns;
  want[seg(obs::WaitSegment::kRingWait)] = pending.ring_wait_ns;
  want[seg(obs::WaitSegment::kSlotWait)] = pending.slot_wait_ns;
  const Nanoseconds bell_end = pending.bell_end_ns;
  const std::uint64_t hold =
      pending.push_end_ns != 0 && bell_end > pending.push_end_ns
          ? static_cast<std::uint64_t>(bell_end - pending.push_end_ns)
          : 0;
  want[seg(obs::WaitSegment::kBellHold)] = hold;
  // Host-side build cost between entering the driver and the doorbell,
  // net of the measured waits: SQE build, PRP/SGL staging, chunk pushes.
  std::uint64_t host_build = 0;
  if (bell_end > pending.submit_time_ns) {
    const auto host_span =
        static_cast<std::uint64_t>(bell_end - pending.submit_time_ns);
    const std::uint64_t waits = want[seg(obs::WaitSegment::kGateWait)] +
                                want[seg(obs::WaitSegment::kRingWait)] +
                                want[seg(obs::WaitSegment::kSlotWait)] + hold;
    host_build = host_span > waits ? host_span - waits : 0;
  }
  const Nanoseconds reap_end =
      pending.submit_time_ns + static_cast<Nanoseconds>(total);
  if (bell_end == 0) {
    // No doorbell mark (defensive: a path that never published) — the
    // whole window is host-side service.
    want[seg(obs::WaitSegment::kService)] = total;
  } else if (report.valid && report.cqe_end != 0) {
    want[seg(obs::WaitSegment::kService)] = host_build + report.service_ns;
    want[seg(obs::WaitSegment::kReassembly)] = report.wait_ns;
    if (reap_end > report.cqe_end) {
      want[seg(obs::WaitSegment::kDelivery)] =
          static_cast<std::uint64_t>(reap_end - report.cqe_end);
    }
    // Device residency between the stages (arbitration, injected delays)
    // is the remainder -> kArbWait via make_additive.
  } else {
    // No CQE ever arrived (timeout -> synthesized Abort, tracing off):
    // the command left the host and never came back, so everything after
    // the doorbell books as controller residency (kArbWait).
    want[seg(obs::WaitSegment::kService)] = host_build;
  }
  completion.breakdown = obs::make_additive(total, want);

  if (qid == 0) return;  // admin: attributed but not published
  const auto method_index = static_cast<std::size_t>(pending.method);
  if (method_index < wait_hists_.size()) {
    for (std::size_t s = 0; s < obs::kWaitSegmentCount; ++s) {
      if (wait_hists_[method_index][s] != nullptr) {
        wait_hists_[method_index][s]->record(completion.breakdown.ns[s]);
      }
    }
  }
  if (pending.tenant != 0 && metrics_ != nullptr) {
    const std::string prefix =
        "tenant.t" + std::to_string(pending.tenant) + ".wait.";
    for (std::size_t s = 0; s < obs::kWaitSegmentCount; ++s) {
      metrics_
          ->histogram(prefix + std::string(obs::wait_segment_name(
                                   static_cast<obs::WaitSegment>(s))))
          .record(completion.breakdown.ns[s]);
    }
  }
  if (telemetry_ != nullptr) telemetry_->on_wait(completion.breakdown);
  // Feed the adaptive policy's per-queue signal EWMAs. Called under
  // pending_mutex, which is why MethodPolicy::on_outcome must stay
  // innermost and never call back into the driver.
  if (policy_ != nullptr) {
    policy_->on_outcome(qid, pending.method, completion);
  }
}

StatusOr<Completion> NvmeDriver::wait(const Submitted& handle) {
  QueuePair& qp = queue(handle.qid);
  // With a deadline armed, each idle iteration advances the sim clock by
  // poll_idle_advance_ns, so the timeout is reached after a bounded number
  // of spins; size the no-progress bound accordingly.
  const std::uint64_t idle_spin_limit =
      config_.command_timeout_ns > 0 && config_.poll_idle_advance_ns > 0
          ? std::max<std::uint64_t>(
                10000, 2 * (config_.command_timeout_ns /
                            config_.poll_idle_advance_ns) +
                           10000)
          : 10000;
  std::uint64_t idle_spins = 0;
  for (;;) {
    Nanoseconds deadline = 0;
    {
      std::lock_guard<std::mutex> lock(qp.pending_mutex);
      auto it = qp.pending.find(handle.cid);
      if (it == qp.pending.end()) {
        return internal_error("waiting on unknown cid");
      }
      if (it->second.done) return finish_pending_locked(qp, it);
      deadline = it->second.deadline_ns;
    }
    if (deadline != 0 && link_.clock().now() >= deadline) {
      return recover_timed_out(qp, handle);
    }
    const bool progressed = pump_once();
    poll_completions(handle.qid);
    if (!progressed) {
      if (deadline != 0) {
        // Device silent while a deadline is armed: move sim-time forward
        // so the timeout can fire (the clock only advances with work).
        link_.clock().advance(config_.poll_idle_advance_ns);
      }
      if (++idle_spins > idle_spin_limit) {
        return internal_error("device made no progress while waiting");
      }
    } else {
      idle_spins = 0;
    }
  }
}

StatusOr<Completion> NvmeDriver::wait_resolved(const IoRequest& request,
                                               const Submitted& handle) {
  if (handle.qid == 0 || handle.qid > io_queues_.size()) {
    return invalid_argument("bad I/O qid " + std::to_string(handle.qid));
  }
  auto completion = wait(handle);
  BX_RETURN_IF_ERROR(completion.status());
  // Re-resolve for the retry tail: if the queue degraded while this
  // command was in flight, retries route through PRP and their failed
  // attempts classify as degraded — the same view execute() would take
  // for a command submitted now.
  auto resolved = resolve_method(request, handle.qid);
  BX_RETURN_IF_ERROR(resolved.status());
  return finish_with_retries(request, handle.qid, *std::move(completion),
                             *resolved);
}

StatusOr<Completion> NvmeDriver::recover_timed_out(QueuePair& qp,
                                                   const Submitted& handle) {
  timeouts_.increment();
  // NVMe timeout recovery: Abort the stuck command (CDW10 = SQID | CID<<16)
  // before giving up on it, so the controller scrubs any late completion
  // that could otherwise land on a recycled CID.
  nvme::SubmissionQueueEntry abort;
  abort.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kAbort);
  abort.cdw10 =
      std::uint32_t{handle.qid} | (std::uint32_t{handle.cid} << 16);
  aborts_sent_.increment();
  auto aborted = execute_admin(abort);
  if (!aborted.status().is_ok()) {
    BX_LOG_WARN << "Abort admin command failed: "
                << aborted.status().to_string();
  }
  // The real completion may have raced the abort — honor it if so.
  poll_completions(handle.qid);
  std::lock_guard<std::mutex> lock(qp.pending_mutex);
  auto it = qp.pending.find(handle.cid);
  if (it == qp.pending.end()) {
    return internal_error("timed-out command vanished while aborting");
  }
  if (it->second.done) return finish_pending_locked(qp, it);
  // The synthesized Abort Requested completion resolves the command, so
  // its gate charge is paid here, exactly once, like any completion. An
  // inline read's ring-slot reservation is paid back the same way — the
  // abandoned slots may be overwritten by later commands, which is safe
  // because nothing will ever read them (docs/READPATH.md).
  gate_release(it->second, /*completed=*/true);
  release_read_slots(qp, it->second);
  const Pending pending = std::move(it->second);
  qp.pending.erase(it);
  qp.inflight.set(static_cast<std::int64_t>(qp.pending.size()));
  Completion completion;
  completion.status =
      nvme::StatusField::generic(nvme::GenericStatus::kAbortRequested);
  completion.dw0 = 0;
  completion.latency_ns = link_.clock().now() - pending.submit_time_ns;
  // The command never produced a CQE: everything after the doorbell is
  // controller residency, so the breakdown books it as kArbWait (the
  // attribution entry is closed without a device report).
  attribute_completion(qp.sq->qid(), handle.cid, pending, completion);
  return completion;
}

std::size_t NvmeDriver::poll_completions(std::uint16_t qid) {
  QueuePair& qp = queue(qid);
  // Serialize CQ consumption: wait() callers on the same queue all poll
  // while spinning, and peek/pop/head-doorbell must be one atomic step.
  std::lock_guard<std::mutex> cq_lock(qp.cq_mutex);
  std::size_t reaped = 0;
  nvme::CompletionQueueEntry cqe;
  while (qp.cq->peek(cqe)) {
    const Nanoseconds handle_start = link_.clock().now();
    qp.cq->pop();
    link_.clock().advance(config_.timing.completion_handle_ns);
    doorbell_.ring_cq_head(qid, qp.cq->head());
    if (telemetry_ != nullptr) telemetry_->on_cq_doorbell(qid);
    if (tracer_ != nullptr && tracer_->enabled()) {
      obs::TraceEvent event;
      event.stage = obs::TraceStage::kCqDoorbell;
      event.start = handle_start;
      event.end = link_.clock().now();
      event.qid = qid;
      event.cid = cqe.cid;
      event.slot = qp.cq->head();
      tracer_->record(event);
    }
    reap_one(qp, cqe);
    ++reaped;
  }
  return reaped;
}

void NvmeDriver::reap_one(QueuePair& qp,
                          const nvme::CompletionQueueEntry& cqe) {
  {
    SqGuard lock(*qp.sq);
    qp.sq->note_head(cqe.sq_head);
    qp.sq_occupancy.set(qp.sq->occupancy());
  }
  std::lock_guard<std::mutex> lock(qp.pending_mutex);
  auto it = qp.pending.find(cqe.cid);
  if (it == qp.pending.end()) {
    BX_LOG_WARN << "completion for unknown cid " << cqe.cid;
    return;
  }
  it->second.cqe = cqe;
  it->second.done = true;
}

StatusOr<Completion> NvmeDriver::execute(const IoRequest& request,
                                         std::uint16_t qid) {
  if (qid == 0 || qid > io_queues_.size()) {
    return invalid_argument("bad I/O qid " + std::to_string(qid));
  }
  auto resolved = resolve_method(request, qid);
  BX_RETURN_IF_ERROR(resolved.status());
  std::uint8_t flags = 0;
  if (resolved->feasibility_fallback || resolved->degraded) {
    flags = obs::kFlagMethodFallback;
  }
  if (resolved->auto_decided) flags |= obs::kFlagAutoPolicy;
  if (resolved->feasibility_fallback) inline_fallbacks_.increment();
  auto handle = submit_with_method(request, qid, *resolved, flags);
  BX_RETURN_IF_ERROR(handle.status());
  auto completion = wait(*handle);
  BX_RETURN_IF_ERROR(completion.status());
  return finish_with_retries(request, qid, *std::move(completion), *resolved);
}

StatusOr<Completion> NvmeDriver::finish_with_retries(const IoRequest& request,
                                                     std::uint16_t qid,
                                                     Completion completion,
                                                     ResolvedMethod resolved) {
  QueuePair& qp = queue(qid);
  std::uint32_t failed_attempts = 0;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const bool inline_attempt = is_inline_method(resolved.method);
    if (completion.status.is_success()) {
      if (inline_attempt) {
        qp.inline_failures.store(0, std::memory_order_relaxed);
      }
      if (resolved.inline_read) {
        qp.read_inline_failures.store(0, std::memory_order_relaxed);
      }
      // Every failed attempt that this success redeems was one injected
      // fault; classify it so injected == recovered + degraded + failed.
      if (failed_attempts > 0) {
        if (resolved.degraded) {
          faults_degraded_.add(failed_attempts);
        } else {
          faults_recovered_.add(failed_attempts);
        }
      }
      return completion;
    }
    ++failed_attempts;
    if (inline_attempt && config_.degrade_threshold > 0) {
      const std::uint32_t fails =
          qp.inline_failures.fetch_add(1, std::memory_order_relaxed) + 1;
      if (fails >= config_.degrade_threshold) {
        qp.degraded_until.store(
            link_.clock().now() + config_.degrade_reprobe_ns,
            std::memory_order_relaxed);
        qp.inline_failures.store(0, std::memory_order_relaxed);
        degradations_.increment();
      }
    }
    // Read-side degradation mirrors the write-inline path: N consecutive
    // failed inline-read attempts route the queue's reads through PRP
    // until the re-probe time passes.
    if (resolved.inline_read && config_.degrade_threshold > 0) {
      const std::uint32_t fails =
          qp.read_inline_failures.fetch_add(1, std::memory_order_relaxed) +
          1;
      if (fails >= config_.degrade_threshold) {
        qp.read_degraded_until.store(
            link_.clock().now() + config_.degrade_reprobe_ns,
            std::memory_order_relaxed);
        qp.read_inline_failures.store(0, std::memory_order_relaxed);
        inline_read_degradations_.increment();
      }
    }
    if (!is_retryable(completion.status) || attempt >= config_.max_retries) {
      faults_failed_.add(failed_attempts);
      return completion;
    }
    retries_.increment();
    // Deterministic sim-clock exponential backoff before the next attempt.
    // Saturate BEFORE shifting: base << shift can wrap 64 bits when the
    // configured base is large, and a wrapped product slips under the cap
    // comparison (a 2^62 base at attempt 2 used to back off by 0 ns). The
    // shift is safe exactly when base <= cap >> shift; otherwise the true
    // product exceeds the cap and the cap wins without ever computing it.
    const std::uint32_t shift = std::min<std::uint32_t>(attempt, 20);
    const Nanoseconds backoff =
        config_.retry_backoff_base_ns > (config_.retry_backoff_cap_ns >> shift)
            ? config_.retry_backoff_cap_ns
            : config_.retry_backoff_base_ns << shift;
    link_.clock().advance(backoff);

    // A retry that cannot even be submitted (method resolution failure,
    // gate rejection, wedged device) still ends the command — classify
    // the accumulated failed attempts before surfacing the error, or the
    // injected == recovered + degraded + failed invariant would leak.
    const auto fail_with = [&](const Status& status) {
      faults_failed_.add(failed_attempts);
      return status;
    };
    auto next_resolved = resolve_method(request, qid);
    if (!next_resolved.is_ok()) return fail_with(next_resolved.status());
    resolved = *next_resolved;
    std::uint8_t flags = 0;
    if (resolved.feasibility_fallback || resolved.degraded) {
      flags = obs::kFlagMethodFallback;
    }
    if (resolved.auto_decided) flags |= obs::kFlagAutoPolicy;
    if (resolved.feasibility_fallback) inline_fallbacks_.increment();
    auto handle = submit_with_method(request, qid, resolved, flags);
    if (!handle.is_ok()) return fail_with(handle.status());
    auto next = wait(*handle);
    if (!next.is_ok()) return fail_with(next.status());
    completion = *std::move(next);
  }
}

StatusOr<NvmeDriver::BatchResult> NvmeDriver::submit_batch(
    std::span<const IoRequest> requests, std::uint16_t qid) {
  if (qid == 0 || qid > io_queues_.size()) {
    return invalid_argument("bad I/O qid " + std::to_string(qid));
  }
  if (requests.empty()) return invalid_argument("empty batch");
  QueuePair& qp = queue(qid);
  const std::uint64_t bar_db_before = bar_.sq_doorbell_writes(qid);

  // ---- phase 1: prepare every request outside the ring lock — method
  // resolution, geometry validation, PRP/SGL staging, CID registration.
  struct Prepared {
    nvme::SubmissionQueueEntry sqe{};
    const IoRequest* request = nullptr;
    ResolvedMethod resolved{};
    std::uint8_t submit_flags = 0;
    /// Ring slots (SQE + inline chunks); 0 marks a BandSlim request,
    /// which cannot coalesce and goes through its serialized path.
    std::uint32_t slots = 0;
    ConstByteSpan inline_payload{};
    Nanoseconds submit_time = 0;
    std::uint16_t cid = 0;
    /// Attribution marks gathered during phase 2 and published into the
    /// registered Pending once the whole batch is on the ring.
    std::uint64_t slot_wait_ns = 0;
    Nanoseconds push_end_ns = 0;
    Nanoseconds bell_end_ns = 0;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(requests.size());

  // Registered-but-unsubmitted pendings must not leak on an error exit
  // (and their gate admissions must be paid back).
  const auto abandon_from = [&](std::size_t first_unsubmitted) {
    std::lock_guard<std::mutex> lock(qp.pending_mutex);
    for (std::size_t j = first_unsubmitted; j < prepared.size(); ++j) {
      auto it = qp.pending.find(prepared[j].cid);
      if (it == qp.pending.end()) continue;
      gate_release(it->second, /*completed=*/false);
      release_read_slots(qp, it->second);
      qp.pending.erase(it);
    }
    qp.inflight.set(static_cast<std::int64_t>(qp.pending.size()));
  };

  for (const IoRequest& request : requests) {
    Prepared prep;
    prep.request = &request;
    auto resolved = resolve_method(request, qid);
    if (!resolved.is_ok()) {
      abandon_from(0);
      return resolved.status();
    }
    prep.resolved = *resolved;
    if (prep.resolved.feasibility_fallback || prep.resolved.degraded) {
      prep.submit_flags = obs::kFlagMethodFallback;
    }
    if (prep.resolved.auto_decided) {
      prep.submit_flags |= obs::kFlagAutoPolicy;
    }
    if (prep.resolved.feasibility_fallback) inline_fallbacks_.increment();

    if (request.opcode == nvme::IoOpcode::kWrite &&
        request.write_data.size() !=
            std::uint64_t{request.block_count} * kBlockSize) {
      abandon_from(0);
      return invalid_argument("write_data must be block_count * 4096 bytes");
    }
    if (request.opcode == nvme::IoOpcode::kRead &&
        request.read_buffer.size() !=
            std::uint64_t{request.block_count} * kBlockSize) {
      abandon_from(0);
      return invalid_argument("read_buffer must be block_count * 4096 bytes");
    }

    prep.sqe = build_base_sqe(request);
    Pending pending;
    // Same backdating rule as the unbatched path: a reactor-posted request
    // measures (and attributes) its MPSC-ring residency as kRingWait.
    const Nanoseconds entry_time = link_.clock().now();
    prep.submit_time =
        request.origin_ns != 0 && request.origin_ns <= entry_time
            ? request.origin_ns
            : entry_time;
    pending.submit_time_ns = prep.submit_time;
    pending.ring_wait_ns =
        static_cast<std::uint64_t>(entry_time - prep.submit_time);
    pending.method = prep.resolved.method;
    pending.tenant = request.tenant;
    if (config_.command_timeout_ns > 0) {
      pending.deadline_ns = entry_time + config_.command_timeout_ns;
    }

    // ByteExpress-R reservation, same point in the lifecycle as the
    // unbatched path; a full ring falls back to the resolved PRP/SGL
    // staging below.
    if (prep.resolved.inline_read) {
      const std::uint32_t chunks =
          inr::read_chunks_for(read_length_of(request));
      if (reserve_read_slots(qp, chunks)) {
        pending.inline_read = true;
        pending.read_slots_reserved = chunks;
        inline_read_attempts_.increment();
        inr::mark_sqe_inline_read(prep.sqe);
        pending.read_target = request.read_buffer;
        pending.read_length =
            static_cast<std::uint32_t>(read_length_of(request));
      } else {
        prep.resolved.inline_read = false;
        inline_read_fallbacks_.increment();
        prep.submit_flags |= obs::kFlagMethodFallback;
      }
    }

    if (pending.inline_read) {
      // Bare SQE; the payload returns through the completion ring.
      prep.slots = 1;
    } else {
      switch (prep.resolved.method) {
        case TransferMethod::kPrp: {
          const Status status =
              attach_data_prp(qp, prep.sqe, pending, request);
          if (!status.is_ok()) {
            abandon_from(0);
            return status;
          }
          prep.slots = 1;
          break;
        }
        case TransferMethod::kSgl: {
          const Status status =
              attach_data_sgl(qp, prep.sqe, pending, request);
          if (!status.is_ok()) {
            abandon_from(0);
            return status;
          }
          prep.slots = 1;
          break;
        }
        case TransferMethod::kByteExpress:
        case TransferMethod::kByteExpressOoo: {
          prep.sqe.set_inline_length(
              static_cast<std::uint32_t>(request.write_data.size()));
          std::uint32_t chunks;
          if (prep.resolved.method == TransferMethod::kByteExpressOoo) {
            nvme::inline_chunk::mark_sqe_ooo(prep.sqe,
                                             allocate_payload_id());
            chunks = nvme::inline_chunk::ooo_chunks_for(
                request.write_data.size());
          } else {
            chunks = nvme::inline_chunk::raw_chunks_for(
                request.write_data.size());
          }
          prep.inline_payload = request.write_data;
          prep.slots = 1 + chunks;
          break;
        }
        case TransferMethod::kBandSlim:
          prep.slots = 0;
          break;
        case TransferMethod::kHybrid:
        case TransferMethod::kAuto:
          abandon_from(0);
          return internal_error(
              "hybrid/auto must be resolved before submission");
      }
    }

    // Per-command admission, same point in the lifecycle as the unbatched
    // path: after staging, before the command can claim ring slots. A
    // rejection fails the whole batch before anything is published
    // (preparation is all-or-nothing), releasing the earlier commands'
    // admissions.
    const Nanoseconds gate_start = link_.clock().now();
    const Status admitted = gate_admit(request, qid, prep.resolved, pending);
    if (!admitted.is_ok()) {
      release_read_slots(qp, pending);
      abandon_from(0);
      return admitted;
    }
    pending.gate_wait_ns =
        static_cast<std::uint64_t>(link_.clock().now() - gate_start);

    prep.cid = register_pending(qp, std::move(pending));
    prep.sqe.cid = prep.cid;
    prepared.push_back(prep);
  }

  // Per-command bookkeeping (trace, telemetry, counters) happens once per
  // command regardless of how many doorbells the batch ends up needing.
  for (const Prepared& prep : prepared) {
    const IoRequest& request = *prep.request;
    if (telemetry_ != nullptr && is_write_direction(request.opcode)) {
      telemetry_->on_payload(request.write_data.size());
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      obs::TraceEvent event;
      event.stage = obs::TraceStage::kSubmit;
      event.start = prep.submit_time;
      event.end = link_.clock().now();
      event.qid = qid;
      event.cid = prep.cid;
      event.tenant = request.tenant;
      event.aux = static_cast<std::uint64_t>(prep.resolved.method);
      event.bytes = request.write_data.size();
      event.flags = prep.submit_flags;
      if (prep.resolved.method == TransferMethod::kByteExpressOoo) {
        event.flags |= obs::kFlagOooCommand;
      }
      tracer_->record(event);
    }
    if (submissions_metric_ != nullptr) submissions_metric_->increment();
    qp.commands.increment();
    total_commands_.increment();
    batched_commands_.increment();
  }

  // ---- phase 2: lay the SQEs plus their inline chunk runs back-to-back
  // under one lock hold and publish each contiguous run with a single
  // doorbell MWr. Ring backpressure (or a BandSlim request) ends a run;
  // the remainder coalesces under the next bell.
  BatchResult result;
  result.handles.reserve(requests.size());
  result.resolved.reserve(requests.size());
  std::size_t i = 0;
  int idle_spins = 0;
  const Nanoseconds phase2_start = link_.clock().now();
  while (i < prepared.size()) {
    if (prepared[i].slots == 0) {
      // BandSlim: header + serialized fragment commands, one doorbell
      // each by construction (§3.2) — it can never share a bell.
      SubmitMarks marks;
      const Status status =
          submit_bandslim(qp, prepared[i].sqe, *prepared[i].request, &marks);
      if (!status.is_ok()) {
        abandon_from(i);
        return status;
      }
      prepared[i].slot_wait_ns = marks.slot_wait_ns;
      prepared[i].push_end_ns = marks.push_end_ns;
      prepared[i].bell_end_ns = marks.bell_end_ns;
      ++i;
      continue;
    }
    std::uint64_t run_entries = 0;
    std::uint64_t run_commands = 0;
    {
      SqGuard guard(*qp.sq);
      const Nanoseconds start = link_.clock().now();
      const std::size_t run_first = i;
      std::uint16_t last_cid = 0;
      std::uint8_t bell_flags = 0;
      while (i < prepared.size() && prepared[i].slots > 0 &&
             qp.sq->free_slots() >= prepared[i].slots) {
        Prepared& prep = prepared[i];
        // Every command of the run secured its slots when the run's lock
        // hold began; time since phase-2 start is ring backpressure (the
        // reap/pump drains between runs).
        prep.slot_wait_ns =
            static_cast<std::uint64_t>(start - phase2_start);
        push_command_locked(qp, prep.sqe, prep.inline_payload);
        prep.push_end_ns = link_.clock().now();
        run_entries += prep.slots;
        ++run_commands;
        last_cid = prep.cid;
        if (prep.resolved.method == TransferMethod::kByteExpressOoo) {
          bell_flags |= obs::kFlagOooCommand;
        }
        ++i;
      }
      if (run_commands > 0) {
        qp.sq_occupancy.set(qp.sq->occupancy());
        last_submit_cost_ns_.store(link_.clock().now() - start,
                                   std::memory_order_relaxed);
        // ONE doorbell covers every command and chunk of the run, rung
        // before the lock drops (tail-regression rule unchanged).
        ring_sq_traced(qid, qp.sq->tail(), run_entries, last_cid,
                       bell_flags);
        // The shared bell closes every command's coalescing hold: a
        // command pushed early in the run waited under the bell while the
        // rest of the run was laid down (kBellHold).
        const Nanoseconds bell_end = link_.clock().now();
        for (std::size_t j = run_first; j < i; ++j) {
          prepared[j].bell_end_ns = bell_end;
        }
      }
    }
    if (run_commands > 0) {
      idle_spins = 0;
      batches_.increment();
      if (batch_size_metric_ != nullptr) {
        batch_size_metric_->record(run_commands);
      }
      if (submit_cost_metric_ != nullptr) {
        submit_cost_metric_->record(
            static_cast<std::uint64_t>(last_submit_cost()));
      }
      result.entries += run_entries;
    } else if (i < prepared.size() && prepared[i].slots > 0) {
      // The next command does not fit: reap and let the device drain,
      // bounded so a wedged device surfaces as an error, not a hang.
      poll_completions(qid);
      if (pump_once()) {
        idle_spins = 0;
      } else if (++idle_spins > 10000) {
        abandon_from(i);
        return resource_exhausted(
            "SQ full and device made no progress during batch");
      }
    }
  }

  {
    // Publish the attribution marks into the registered pendings under one
    // lock hold. Completions may already be reaped (done set) but never
    // erased — only the waiter erases, and no handle has been returned.
    std::lock_guard<std::mutex> lock(qp.pending_mutex);
    for (const Prepared& prep : prepared) {
      auto it = qp.pending.find(prep.cid);
      if (it == qp.pending.end()) continue;
      it->second.slot_wait_ns = prep.slot_wait_ns;
      it->second.push_end_ns = prep.push_end_ns;
      it->second.bell_end_ns = prep.bell_end_ns;
    }
  }

  for (const Prepared& prep : prepared) {
    Submitted handle;
    handle.qid = qid;
    handle.cid = prep.cid;
    handle.submit_time_ns = prep.submit_time;
    result.handles.push_back(handle);
    result.resolved.push_back(prep.resolved);
  }
  result.doorbells = bar_.sq_doorbell_writes(qid) - bar_db_before;
  return result;
}

StatusOr<std::vector<Completion>> NvmeDriver::execute_batch(
    std::span<const IoRequest> requests, std::uint16_t qid) {
  auto batch = submit_batch(requests, qid);
  BX_RETURN_IF_ERROR(batch.status());
  std::vector<Completion> completions;
  completions.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto first = wait(batch->handles[i]);
    BX_RETURN_IF_ERROR(first.status());
    // The shared retry tail: a fault on command i recovers (or degrades,
    // or fails) exactly as execute() would, without touching the other
    // commands of the batch.
    auto final_completion = finish_with_retries(
        requests[i], qid, *std::move(first), batch->resolved[i]);
    BX_RETURN_IF_ERROR(final_completion.status());
    completions.push_back(*std::move(final_completion));
  }
  return completions;
}

StatusOr<NvmeDriver::PipelineResult> NvmeDriver::write_pipeline(
    ConstByteSpan payload, std::uint32_t chunk_bytes, std::uint32_t depth,
    std::uint16_t qid, TransferMethod method) {
  if (qid == 0 || qid > io_queues_.size()) {
    return invalid_argument("bad I/O qid " + std::to_string(qid));
  }
  if (payload.empty()) {
    return invalid_argument("write_pipeline needs a payload");
  }
  if (chunk_bytes == 0 || depth == 0) {
    return invalid_argument("chunk_bytes and depth must be positive");
  }

  const std::uint64_t db_before = bar_.sq_doorbell_writes(qid);
  PipelineResult result;
  std::vector<IoRequest> group;
  group.reserve(depth);
  std::size_t offset = 0;
  while (offset < payload.size()) {
    group.clear();
    while (group.size() < depth && offset < payload.size()) {
      const std::size_t take =
          std::min<std::size_t>(chunk_bytes, payload.size() - offset);
      IoRequest request;
      request.opcode = nvme::IoOpcode::kVendorRawWrite;
      request.method = method;
      request.write_data = payload.subspan(offset, take);
      group.push_back(request);
      offset += take;
    }
    auto completions =
        execute_batch({group.data(), group.size()}, qid);
    BX_RETURN_IF_ERROR(completions.status());
    result.commands += completions->size();
    for (const Completion& completion : *completions) {
      if (!completion.status.is_success()) ++result.errors;
    }
  }
  result.payload_bytes = payload.size();
  result.doorbells = bar_.sq_doorbell_writes(qid) - db_before;
  return result;
}

void NvmeDriver::claim_exclusive(std::uint16_t qid) {
  queue(qid).sq->set_exclusive_owner(true);
}

void NvmeDriver::release_exclusive(std::uint16_t qid) {
  queue(qid).sq->set_exclusive_owner(false);
}

bool NvmeDriver::is_exclusive(std::uint16_t qid) {
  return queue(qid).sq->exclusive_owner();
}

StatusOr<Completion> NvmeDriver::execute_ooo_striped(
    const IoRequest& request, const std::vector<std::uint16_t>& qids) {
  if (qids.empty()) return invalid_argument("no queues given");
  for (const std::uint16_t qid : qids) {
    if (qid == 0 || qid > io_queues_.size()) {
      return invalid_argument("bad qid in stripe set");
    }
  }
  if (!is_write_direction(request.opcode) || request.write_data.empty()) {
    return invalid_argument("OOO striping requires a write-direction payload");
  }
  if (request.write_data.size() > config_.max_inline_bytes) {
    return invalid_argument("payload too large for inline transfer");
  }
  // Striping is an explicit caller choice, so a kAuto request keeps its
  // OOO method — but the policy's overload backpressure still applies:
  // the home queue sheds before the stripe set claims any slots.
  if (request.method == TransferMethod::kAuto && policy_ != nullptr) {
    const Nanoseconds now = link_.clock().now();
    if (telemetry_ != nullptr) telemetry_->advance_to(now);
    if (policy_->decide(request, qids.front(), now).shed) {
      return resource_exhausted(
          "adaptive policy sheds load on qid " +
          std::to_string(qids.front()) +
          " (overload watermark crossed; retry after drain)");
    }
  }

  QueuePair& home = queue(qids.front());
  nvme::SubmissionQueueEntry sqe = build_base_sqe(request);
  sqe.set_inline_length(static_cast<std::uint32_t>(request.write_data.size()));
  const std::uint32_t payload_id = allocate_payload_id();
  nvme::inline_chunk::mark_sqe_ooo(sqe, payload_id);

  Pending initial;
  initial.submit_time_ns = link_.clock().now();
  initial.method = TransferMethod::kByteExpressOoo;
  initial.tenant = request.tenant;
  if (config_.command_timeout_ns > 0) {
    initial.deadline_ns = initial.submit_time_ns + config_.command_timeout_ns;
  }
  ResolvedMethod striped;
  striped.method = TransferMethod::kByteExpressOoo;
  const Nanoseconds gate_start = link_.clock().now();
  BX_RETURN_IF_ERROR(gate_admit(request, qids.front(), striped, initial));
  initial.gate_wait_ns =
      static_cast<std::uint64_t>(link_.clock().now() - gate_start);
  const std::uint16_t cid = register_pending(home, std::move(initial));
  sqe.cid = cid;

  // Undoes the registration (and pays back the gate admission) on the
  // refusal paths below, before anything was published.
  const auto abandon = [this, &home, cid] {
    std::lock_guard<std::mutex> plock(home.pending_mutex);
    auto it = home.pending.find(cid);
    if (it != home.pending.end()) {
      gate_release(it->second, /*completed=*/false);
      home.pending.erase(it);
    }
    home.inflight.set(static_cast<std::int64_t>(home.pending.size()));
  };

  const Nanoseconds submit_time = link_.clock().now();
  const std::uint32_t chunks =
      nvme::inline_chunk::ooo_chunks_for(request.write_data.size());

  Nanoseconds stripe_push_end = 0;
  Nanoseconds stripe_bell_end = 0;
  {
    // Hold every stripe queue's SQ lock for the whole capacity check +
    // push + doorbell sequence, acquired in ascending qid order (the one
    // place multiple SQ locks nest — see the lock-order comment in the
    // header). This keeps the capacity check atomic with the pushes under
    // concurrent submitters, and rings each doorbell before its lock
    // drops.
    std::vector<std::uint16_t> ordered(qids);
    std::sort(ordered.begin(), ordered.end());
    ordered.erase(std::unique(ordered.begin(), ordered.end()), ordered.end());
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(ordered.size());
    for (const std::uint16_t qid : ordered) {
      locks.emplace_back(queue(qid).sq->lock());
    }
    // Exclusively-owned queues elide their SQ lock on the owner path, so
    // holding the mutex does not exclude a reactor — refuse, with a typed
    // status the caller can branch on. Checked UNDER the locks so a
    // claim_exclusive() that raced the acquisition above is still seen;
    // claiming a queue after this point while the stripe submit is in
    // flight violates the reactor ownership contract (see the header).
    for (const std::uint16_t qid : ordered) {
      if (queue(qid).sq->exclusive_owner()) {
        abandon();
        return failed_precondition(
            "stripe queue " + std::to_string(qid) +
            " is exclusively owned by a reactor");
      }
    }

    // Capacity check: the command occupies one slot on the home queue, and
    // the chunks round-robin across the stripe set. Unlike the queue-local
    // path, striped queues that carry only chunks never receive CQEs, so
    // the host's head cache can lag — surface that as backpressure instead
    // of overrunning a ring.
    for (std::size_t j = 0; j < qids.size(); ++j) {
      std::uint32_t need = chunks / qids.size() +
                           (j < chunks % qids.size() ? 1 : 0);
      if (j == 0) ++need;  // the command itself
      if (queue(qids[j]).sq->free_slots() < need) {
        abandon();
        return resource_exhausted("stripe queue " +
                                  std::to_string(qids[j]) + " lacks space");
      }
    }

    // Command into the home queue.
    link_.clock().advance(config_.timing.sqe_insert_ns);
    home.sq->push_slot(sqe_bytes(sqe));

    // Chunks striped round-robin across the whole queue set.
    std::size_t offset = 0;
    for (std::uint32_t i = 0; i < chunks; ++i) {
      QueuePair& target = queue(qids[i % qids.size()]);
      const std::size_t take =
          std::min<std::size_t>(nvme::inline_chunk::kOooChunkCapacity,
                                request.write_data.size() - offset);
      const auto slot = nvme::inline_chunk::encode_ooo_chunk(
          payload_id, static_cast<std::uint16_t>(i),
          static_cast<std::uint16_t>(chunks),
          request.write_data.subspan(offset, take));
      link_.clock().advance(config_.timing.chunk_insert_ns);
      target.sq->push_slot({slot.raw, sizeof(slot.raw)});
      offset += take;
    }
    last_submit_cost_ns_.store(link_.clock().now() - submit_time,
                               std::memory_order_relaxed);
    stripe_push_end = link_.clock().now();

    // Entries published per queue by this submission: the command on the
    // home queue, chunks round-robin over the (possibly repeating) stripe
    // list.
    std::unordered_map<std::uint16_t, std::uint64_t> published;
    published[qids.front()] += 1;
    for (std::uint32_t i = 0; i < chunks; ++i) {
      published[qids[i % qids.size()]] += 1;
    }

    // One doorbell per touched queue, rung while the locks are held.
    for (const std::uint16_t qid : ordered) {
      QueuePair& touched = queue(qid);
      touched.sq_occupancy.set(touched.sq->occupancy());
      ring_sq_traced(qid, touched.sq->tail(), published[qid], cid,
                     obs::kFlagOooCommand);
    }
    // The command is only fully handed off once every stripe queue's bell
    // has rung; until then the earlier bells coalesce under the lock hold.
    stripe_bell_end = link_.clock().now();
  }
  {
    std::lock_guard<std::mutex> plock(home.pending_mutex);
    auto it = home.pending.find(cid);
    if (it != home.pending.end()) {
      it->second.push_end_ns = stripe_push_end;
      it->second.bell_end_ns = stripe_bell_end;
    }
  }

  if (telemetry_ != nullptr) {
    telemetry_->on_payload(request.write_data.size());
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceEvent event;
    event.stage = obs::TraceStage::kSubmit;
    event.start = submit_time;
    event.end = link_.clock().now();
    event.flags = obs::kFlagOooCommand;
    event.qid = qids.front();
    event.cid = cid;
    event.tenant = request.tenant;
    event.aux = static_cast<std::uint64_t>(TransferMethod::kByteExpressOoo);
    event.bytes = request.write_data.size();
    tracer_->record(event);
  }
  if (submissions_metric_ != nullptr) {
    submissions_metric_->increment();
    submit_cost_metric_->record(
        static_cast<std::uint64_t>(last_submit_cost()));
  }
  home.commands.increment();
  total_commands_.increment();

  Submitted handle;
  handle.qid = qids.front();
  handle.cid = cid;
  handle.submit_time_ns = submit_time;
  return wait(handle);
}

StatusOr<Completion> NvmeDriver::execute_admin(
    nvme::SubmissionQueueEntry sqe) {
  if (!pump_) return failed_precondition("no device attached");
  const Nanoseconds submit_time = link_.clock().now();
  Pending initial;
  initial.submit_time_ns = submit_time;
  const std::uint16_t cid = register_pending(admin_, std::move(initial));
  sqe.cid = cid;
  SubmitMarks marks;
  const Status status = submit_plain(admin_, sqe, &marks);
  if (!status.is_ok()) {
    std::lock_guard<std::mutex> lock(admin_.pending_mutex);
    admin_.pending.erase(cid);
    admin_.inflight.set(static_cast<std::int64_t>(admin_.pending.size()));
    return status;
  }
  {
    std::lock_guard<std::mutex> lock(admin_.pending_mutex);
    auto it = admin_.pending.find(cid);
    if (it != admin_.pending.end()) {
      it->second.slot_wait_ns = marks.slot_wait_ns;
      it->second.push_end_ns = marks.push_end_ns;
      it->second.bell_end_ns = marks.bell_end_ns;
    }
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceEvent event;
    event.stage = obs::TraceStage::kSubmit;
    event.start = submit_time;
    event.end = link_.clock().now();
    event.qid = 0;
    event.cid = cid;
    tracer_->record(event);
  }

  Submitted handle;
  handle.qid = 0;
  handle.cid = cid;
  return wait(handle);
}

bool NvmeDriver::pump_once() { return pump_ ? pump_() : false; }

namespace {

std::string trimmed_field(const ByteVec& page, std::size_t offset,
                          std::size_t width) {
  std::string out(reinterpret_cast<const char*>(page.data()) + offset,
                  width);
  while (!out.empty() && (out.back() == '\0' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

}  // namespace

StatusOr<NvmeDriver::IdentifyControllerData>
NvmeDriver::identify_controller() {
  DmaBuffer buffer = memory_.allocate_pages(1);
  nvme::SubmissionQueueEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kIdentify);
  sqe.dptr1 = buffer.addr();
  sqe.cdw10 = static_cast<std::uint32_t>(nvme::IdentifyCns::kController);
  auto completion = execute_admin(sqe);
  BX_RETURN_IF_ERROR(completion.status());
  if (!completion->ok()) return internal_error("identify controller failed");

  ByteVec page(kHostPageSize);
  buffer.read(0, page);
  IdentifyControllerData data;
  data.serial = trimmed_field(page, 4, 20);
  data.model = trimmed_field(page, 24, 40);
  data.firmware = trimmed_field(page, 64, 8);
  std::memcpy(&data.namespace_count, page.data() + 516, 4);
  std::uint32_t sgls = 0;
  std::memcpy(&sgls, page.data() + 536, 4);
  data.sgl_supported = (sgls & 1) != 0;
  return data;
}

StatusOr<NvmeDriver::IdentifyNamespaceData> NvmeDriver::identify_namespace(
    std::uint32_t nsid) {
  DmaBuffer buffer = memory_.allocate_pages(1);
  nvme::SubmissionQueueEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kIdentify);
  sqe.nsid = nsid;
  sqe.dptr1 = buffer.addr();
  sqe.cdw10 = static_cast<std::uint32_t>(nvme::IdentifyCns::kNamespace);
  auto completion = execute_admin(sqe);
  BX_RETURN_IF_ERROR(completion.status());
  if (!completion->ok()) {
    return not_found("identify namespace rejected (bad nsid?)");
  }
  ByteVec page(kHostPageSize);
  buffer.read(0, page);
  IdentifyNamespaceData data;
  std::memcpy(&data.size_blocks, page.data() + 0, 8);
  std::memcpy(&data.capacity_blocks, page.data() + 8, 8);
  return data;
}

StatusOr<nvme::TransferStatsLog> NvmeDriver::get_transfer_stats() {
  DmaBuffer buffer = memory_.allocate_pages(1);
  nvme::SubmissionQueueEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kGetLogPage);
  sqe.dptr1 = buffer.addr();
  sqe.cdw10 =
      static_cast<std::uint32_t>(nvme::LogPageId::kVendorTransferStats) |
      ((sizeof(nvme::TransferStatsLog) / 4 - 1) << 16);  // NUMDL, 0's based
  auto completion = execute_admin(sqe);
  BX_RETURN_IF_ERROR(completion.status());
  if (!completion->ok()) return internal_error("get log page failed");
  nvme::TransferStatsLog log;
  buffer.read(0, {reinterpret_cast<Byte*>(&log), sizeof(log)});
  return log;
}

StatusOr<nvme::StageStatsLog> NvmeDriver::get_stage_stats() {
  DmaBuffer buffer = memory_.allocate_pages(1);
  nvme::SubmissionQueueEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kGetLogPage);
  sqe.dptr1 = buffer.addr();
  sqe.cdw10 =
      static_cast<std::uint32_t>(nvme::LogPageId::kVendorStageStats) |
      ((sizeof(nvme::StageStatsLog) / 4 - 1) << 16);  // NUMDL, 0's based
  auto completion = execute_admin(sqe);
  BX_RETURN_IF_ERROR(completion.status());
  if (!completion->ok()) return internal_error("get log page failed");
  nvme::StageStatsLog log;
  buffer.read(0, {reinterpret_cast<Byte*>(&log), sizeof(log)});
  return log;
}

StatusOr<std::pair<std::uint16_t, std::uint16_t>>
NvmeDriver::set_queue_count(std::uint16_t sqs, std::uint16_t cqs) {
  nvme::SubmissionQueueEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(nvme::AdminOpcode::kSetFeatures);
  sqe.cdw10 = 0x07;
  sqe.cdw11 = (std::uint32_t{cqs} << 16) | sqs;
  auto completion = execute_admin(sqe);
  BX_RETURN_IF_ERROR(completion.status());
  if (!completion->ok()) return internal_error("set features failed");
  return std::pair<std::uint16_t, std::uint16_t>{
      static_cast<std::uint16_t>(completion->dw0 & 0xffff),
      static_cast<std::uint16_t>(completion->dw0 >> 16)};
}

}  // namespace bx::driver
