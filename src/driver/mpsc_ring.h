// Bounded lock-free MPSC ring for cross-core request handoff.
//
// This is the reactor model's mailbox (SPDK calls it the thread "ring"):
// any producer core may post work with try_push(), but exactly one
// consumer — the reactor that owns the target queue pair — drains it with
// try_pop(). The implementation is the classic bounded sequence-number
// queue (Vyukov): each cell carries a ticket whose value tells producers
// and the consumer whether the cell is free, full, or still being filled,
// so no slot is ever read before its payload store is published.
//
// Ordering guarantees relied on by tests/reactor_test.cc:
//   * per-producer FIFO — one thread's pushes are popped in push order,
//     because a producer claims strictly increasing cell positions in
//     program order;
//   * no loss, no duplication — each successful try_push() is matched by
//     exactly one try_pop() observing that element;
//   * try_pop() never blocks on a claimed-but-unfilled cell: it returns
//     false and the consumer retries, so a preempted producer cannot
//     deadlock the reactor.
//
// All synchronization is acquire/release on the cell sequence numbers —
// no mutexes — so the ring is safe (and TSan-clean) with any number of
// producers against the single consumer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace bx::driver {

template <typename T>
class MpscRing {
 public:
  /// `capacity` must be a power of two (ring index arithmetic is a mask).
  explicit MpscRing(std::size_t capacity)
      : capacity_(capacity),
        mask_(capacity - 1),
        cells_(std::make_unique<Cell[]>(capacity)) {
    BX_ASSERT_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                  "MpscRing capacity must be a power of two >= 2");
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Producer side (any thread). Returns false when the ring is full.
  bool try_push(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        // Cell is free for this ticket; claim it.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          // Publish: the consumer's acquire load of sequence sees the
          // value store above.
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: pos was reloaded; retry with the new ticket.
      } else if (dif < 0) {
        // The cell still holds an element from `capacity` tickets ago:
        // the ring is full.
        return false;
      } else {
        // Another producer claimed this ticket; advance.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side (single thread only). Returns false when the ring is
  /// empty *or* the next cell's producer has claimed but not yet filled
  /// it (retry later — never spins on another thread).
  bool try_pop(T& out) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
    const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                              static_cast<std::intptr_t>(pos + 1);
    if (dif != 0) return false;  // empty, or producer mid-fill
    out = std::move(cell.value);
    cell.value = T{};
    // Release the cell for the producer `capacity` tickets later.
    cell.sequence.store(pos + capacity_, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Approximate occupancy (exact when quiesced); feeds the reactor's
  /// ring-occupancy gauge. Safe from any thread.
  [[nodiscard]] std::size_t occupancy() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  /// Producers race on tail_ with CAS; head_ is advanced only by the
  /// single consumer but stays atomic (relaxed) so occupancy() can be
  /// sampled from any thread.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace bx::driver
