// Online adaptive transfer-method selection with overload control.
//
// AdaptivePolicy is the concrete engine behind TransferMethod::kAuto
// (driver::MethodPolicy). Per queue it tracks exponentially weighted
// moving averages of the saturation signals ByteExpress cares about —
// SQ occupancy, per-direction link utilization (from telemetry windows)
// and the slot-wait share of the PR 8 latency breakdown — and derives:
//
//   * a two-state hysteresis machine (Relaxed / Congested) with a
//     minimum dwell time that selects the inline-size cutoff: small
//     payloads ride ByteExpress while the link is cheap, larger writes
//     ride SGL (byte-granular descriptors — the measured winner over
//     page-granular PRP at every size, bench/ablation_sgl), and the
//     cutoff tightens under congestion so bulky inline bursts stop
//     competing with DMA traffic for SQ slots;
//   * explicit overload control: when effective occupancy crosses the
//     shed high-watermark the queue rejects kAuto submissions with
//     kResourceExhausted until it drains below the low-watermark
//     (classic hysteresis so backpressure does not flap).
//
// EWMA/hysteresis updates run on the telemetry window grid
// (obs::Telemetry::WindowObserver::on_window); decide() additionally
// blends the instantaneous occupancy gauges registered by the driver so
// shedding reacts within a burst rather than a window later.
//
// Threading: one internal mutex, always innermost (see the contract in
// driver/method_policy.h). decide() is called lock-free from submitters,
// on_outcome() under the queue's pending_mutex, on_window() under the
// telemetry mutex — none of them call back out of the policy.
//
// Observability (docs/POLICY.md): policy.* counters/gauges via
// bind_metrics(), per-window decision deltas via attach_telemetry()
// (TelemetrySample::policy_*), and kFlagAutoPolicy on kSubmit traces.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/sim_clock.h"
#include "driver/method_policy.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace bx::policy {

struct AdaptivePolicyConfig {
  /// Inline-size cutoff while Relaxed: writes at or below ride
  /// ByteExpress, larger go SGL. Clamped to max_inline_bytes. The
  /// default sits at the measured ByteExpress/SGL latency crossover
  /// (between 128 B and 256 B in this testbed's calibration).
  std::uint64_t inline_cutoff_bytes = 128;
  /// Tighter cutoff while Congested (inline chunks hold SQ slots).
  std::uint64_t loaded_cutoff_bytes = 64;
  /// EWMA smoothing factor in (0, 1]; higher reacts faster.
  double ewma_alpha = 0.30;
  /// Hysteresis thresholds on the congestion score (max of the EWMAs).
  double congest_high = 0.70;
  double congest_low = 0.40;
  /// Minimum time in a mode before the hysteresis machine may leave it.
  Nanoseconds min_dwell_ns = 200'000;
  /// Overload watermarks on effective occupancy (EWMA blended with the
  /// instantaneous gauges): shed at/above high, reopen at/below low.
  double shed_high = 0.90;
  double shed_low = 0.50;
  /// Driver feasibility mirror so decide() never picks an infeasible
  /// inline transfer (DriverConfig::max_inline_bytes).
  std::uint64_t max_inline_bytes = 8192;
  /// Link serialization rate for window utilization (pcie config).
  double link_bytes_per_ns = 1.0;
};

class AdaptivePolicy final : public driver::MethodPolicy,
                             public obs::Telemetry::WindowObserver {
 public:
  explicit AdaptivePolicy(AdaptivePolicyConfig config = {});

  // driver::MethodPolicy
  [[nodiscard]] driver::PolicyDecision decide(const driver::IoRequest& request,
                                              std::uint16_t qid,
                                              Nanoseconds now) override;
  void on_outcome(std::uint16_t qid, driver::TransferMethod method,
                  const driver::Completion& completion) override;
  void register_queue(std::uint16_t qid, std::uint32_t queue_depth,
                      const obs::Gauge* sq_occupancy,
                      const obs::Gauge* inflight) override;

  // obs::Telemetry::WindowObserver — EWMA + hysteresis updates on the
  // window grid. Called under the telemetry mutex; touches only policy
  // state.
  void on_window(const obs::TelemetrySample& sample) override;

  /// Exposes policy.decisions.inline/.dma, policy.rejects,
  /// policy.mode_switches, policy.shed_enters/.exits and the
  /// policy.shedding_queues gauge; keeps the registry pointer so
  /// register_queue() can expose per-queue policy.qN.congested gauges.
  /// Assembly-time only, before register_queue().
  void bind_metrics(obs::MetricsRegistry& metrics);

  /// Registers the decision counters for per-window delta sampling
  /// (TelemetrySample::policy_*) and attaches this policy as the window
  /// observer. Assembly-time only.
  void attach_telemetry(obs::Telemetry& telemetry);

  /// Test/monitor introspection (point-in-time, under the policy mutex).
  struct QueueStatus {
    bool known = false;
    double occupancy_ewma = 0.0;
    double slot_share_ewma = 0.0;
    double congestion = 0.0;
    bool congested = false;
    bool shedding = false;
  };
  [[nodiscard]] QueueStatus queue_status(std::uint16_t qid) const;
  [[nodiscard]] double downstream_util_ewma() const;
  [[nodiscard]] double upstream_util_ewma() const;
  [[nodiscard]] const AdaptivePolicyConfig& config() const noexcept {
    return config_;
  }

 private:
  enum class Mode { kRelaxed, kCongested };

  struct QueueState {
    std::uint16_t qid = 0;
    std::uint32_t depth = 1;
    const obs::Gauge* sq_occupancy = nullptr;
    const obs::Gauge* inflight = nullptr;
    double occ_ewma = 0.0;
    double slot_share_ewma = 0.0;
    Mode mode = Mode::kRelaxed;
    Nanoseconds mode_since_ns = 0;
    bool shedding = false;
    /// 1 while Congested — exposed as policy.qN.congested.
    obs::Gauge congested;
  };

  [[nodiscard]] QueueState* state_locked(std::uint16_t qid) noexcept;
  [[nodiscard]] const QueueState* state_locked(
      std::uint16_t qid) const noexcept;
  [[nodiscard]] double congestion_locked(const QueueState& q) const noexcept;
  [[nodiscard]] double mix(double ewma, double sample) const noexcept {
    return ewma + config_.ewma_alpha * (sample - ewma);
  }

  AdaptivePolicyConfig config_;
  obs::MetricsRegistry* metrics_ = nullptr;

  mutable std::mutex mutex_;  // innermost — never call out while held
  std::vector<std::unique_ptr<QueueState>> queues_;
  double down_util_ewma_ = 0.0;
  double up_util_ewma_ = 0.0;

  obs::Counter decisions_inline_;
  obs::Counter decisions_dma_;
  obs::Counter rejects_;
  obs::Counter mode_switches_;
  obs::Counter shed_enters_;
  obs::Counter shed_exits_;
  obs::Gauge shedding_queues_;
};

}  // namespace bx::policy
