#include "policy/adaptive_policy.h"

#include <algorithm>
#include <string>

namespace bx::policy {

namespace {

/// Mirrors NvmeDriver::is_write_direction — the policy only needs the
/// write/non-write split to spot inline candidates (reads resolve to
/// kPrp here; inline read delivery is method-agnostic in the driver).
bool is_write_opcode(nvme::IoOpcode opcode) noexcept {
  switch (opcode) {
    case nvme::IoOpcode::kWrite:
    case nvme::IoOpcode::kVendorRawWrite:
    case nvme::IoOpcode::kVendorKvStore:
    case nvme::IoOpcode::kVendorCsdFilter:
    case nvme::IoOpcode::kVendorPartialWrite:
      return true;
    default:
      return false;
  }
}

}  // namespace

AdaptivePolicy::AdaptivePolicy(AdaptivePolicyConfig config)
    : config_(config) {
  config_.inline_cutoff_bytes =
      std::min(config_.inline_cutoff_bytes, config_.max_inline_bytes);
  config_.loaded_cutoff_bytes =
      std::min(config_.loaded_cutoff_bytes, config_.max_inline_bytes);
  config_.ewma_alpha = std::clamp(config_.ewma_alpha, 0.01, 1.0);
}

void AdaptivePolicy::bind_metrics(obs::MetricsRegistry& metrics) {
  metrics_ = &metrics;
  metrics.expose_counter("policy.decisions.inline", &decisions_inline_);
  metrics.expose_counter("policy.decisions.dma", &decisions_dma_);
  metrics.expose_counter("policy.rejects", &rejects_);
  metrics.expose_counter("policy.mode_switches", &mode_switches_);
  metrics.expose_counter("policy.shed_enters", &shed_enters_);
  metrics.expose_counter("policy.shed_exits", &shed_exits_);
  metrics.expose_gauge("policy.shedding_queues", &shedding_queues_);
}

void AdaptivePolicy::attach_telemetry(obs::Telemetry& telemetry) {
  telemetry.register_policy(&decisions_inline_, &decisions_dma_, &rejects_,
                            &shedding_queues_);
  telemetry.set_window_observer(this);
}

void AdaptivePolicy::register_queue(std::uint16_t qid,
                                    std::uint32_t queue_depth,
                                    const obs::Gauge* sq_occupancy,
                                    const obs::Gauge* inflight) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queues_.size() <= qid) queues_.resize(qid + 1u);
  if (queues_[qid] == nullptr) {
    queues_[qid] = std::make_unique<QueueState>();
    // Re-registration (init_io_queues rebuilding the pairs) keeps the
    // learned EWMAs and mode; only the sources are refreshed below.
  }
  QueueState& q = *queues_[qid];
  q.qid = qid;
  q.depth = std::max<std::uint32_t>(queue_depth, 1);
  q.sq_occupancy = sq_occupancy;
  q.inflight = inflight;
  if (metrics_ != nullptr) {
    metrics_->expose_gauge(
        "policy.q" + std::to_string(qid) + ".congested", &q.congested);
  }
}

driver::PolicyDecision AdaptivePolicy::decide(
    const driver::IoRequest& request, std::uint16_t qid,
    Nanoseconds /*now*/) {
  const std::uint64_t len = request.write_data.size();
  const bool inline_candidate =
      is_write_opcode(request.opcode) && len > 0;

  std::lock_guard<std::mutex> lock(mutex_);
  QueueState* q = state_locked(qid);
  std::uint64_t cutoff = config_.inline_cutoff_bytes;
  if (q != nullptr) {
    // Blend the window EWMA with the live gauges: a burst that fills the
    // SQ inside one telemetry window must trip the watermark now, not a
    // window later. The EWMA keeps the signal from collapsing to zero
    // the moment a doorbell drains.
    const std::int64_t occ_now =
        q->sq_occupancy != nullptr ? q->sq_occupancy->value() : 0;
    const std::int64_t inflight_now =
        q->inflight != nullptr ? q->inflight->value() : 0;
    const double inst =
        double(std::max<std::int64_t>(std::max(occ_now, inflight_now), 0)) /
        double(q->depth);
    const double eff_occ = std::max(q->occ_ewma, inst);
    if (!q->shedding && eff_occ >= config_.shed_high) {
      q->shedding = true;
      shed_enters_.increment();
      shedding_queues_.add(1);
    } else if (q->shedding && eff_occ <= config_.shed_low) {
      q->shedding = false;
      shed_exits_.increment();
      shedding_queues_.add(-1);
    }
    if (q->shedding) {
      rejects_.increment();
      return {driver::TransferMethod::kPrp, /*shed=*/true};
    }
    if (q->mode == Mode::kCongested) cutoff = config_.loaded_cutoff_bytes;
  }

  driver::PolicyDecision decision;
  if (inline_candidate && len <= cutoff) {
    decision.method = driver::TransferMethod::kByteExpress;
    decisions_inline_.increment();
  } else if (inline_candidate) {
    // Oversized writes ride SGL: byte-granular descriptors move only the
    // payload where page-granular PRP moves a full 4 KB page, and in
    // this testbed's calibration that wire saving beats PRP's cheaper
    // setup at every payload size (bench/ablation_sgl).
    decision.method = driver::TransferMethod::kSgl;
    decisions_dma_.increment();
  } else {
    // Reads and zero-length commands: the native PRP path (inline read
    // delivery is method-agnostic — the completion ring is negotiated
    // independently, docs/READPATH.md).
    decision.method = driver::TransferMethod::kPrp;
    decisions_dma_.increment();
  }
  return decision;
}

void AdaptivePolicy::on_outcome(std::uint16_t qid,
                                driver::TransferMethod /*method*/,
                                const driver::Completion& completion) {
  const std::uint64_t total = completion.breakdown.total_ns();
  if (total == 0) return;
  const double share =
      double(completion.breakdown.of(obs::WaitSegment::kSlotWait)) /
      double(total);
  std::lock_guard<std::mutex> lock(mutex_);
  QueueState* q = state_locked(qid);
  if (q != nullptr) q->slot_share_ewma = mix(q->slot_share_ewma, share);
}

void AdaptivePolicy::on_window(const obs::TelemetrySample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  down_util_ewma_ =
      mix(down_util_ewma_,
          sample.utilization(obs::LinkDir::kDownstream,
                             config_.link_bytes_per_ns));
  up_util_ewma_ = mix(
      up_util_ewma_,
      sample.utilization(obs::LinkDir::kUpstream, config_.link_bytes_per_ns));
  for (const obs::QueueWindow& qw : sample.queues) {
    QueueState* q = state_locked(qw.qid);
    if (q == nullptr) continue;
    const double occ =
        double(std::max<std::int64_t>(
            std::max<std::int64_t>(qw.sq_occupancy, qw.inflight), 0)) /
        double(q->depth);
    q->occ_ewma = mix(q->occ_ewma, occ);
    const double congestion = congestion_locked(*q);
    const bool dwelled =
        sample.end_ns >= q->mode_since_ns &&
        sample.end_ns - q->mode_since_ns >= config_.min_dwell_ns;
    if (q->mode == Mode::kRelaxed && congestion >= config_.congest_high &&
        dwelled) {
      q->mode = Mode::kCongested;
      q->mode_since_ns = sample.end_ns;
      q->congested.set(1);
      mode_switches_.increment();
    } else if (q->mode == Mode::kCongested &&
               congestion <= config_.congest_low && dwelled) {
      q->mode = Mode::kRelaxed;
      q->mode_since_ns = sample.end_ns;
      q->congested.set(0);
      mode_switches_.increment();
    }
  }
}

AdaptivePolicy::QueueStatus AdaptivePolicy::queue_status(
    std::uint16_t qid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  QueueStatus status;
  const QueueState* q = state_locked(qid);
  if (q == nullptr) return status;
  status.known = true;
  status.occupancy_ewma = q->occ_ewma;
  status.slot_share_ewma = q->slot_share_ewma;
  status.congestion = congestion_locked(*q);
  status.congested = q->mode == Mode::kCongested;
  status.shedding = q->shedding;
  return status;
}

double AdaptivePolicy::downstream_util_ewma() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return down_util_ewma_;
}

double AdaptivePolicy::upstream_util_ewma() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return up_util_ewma_;
}

AdaptivePolicy::QueueState* AdaptivePolicy::state_locked(
    std::uint16_t qid) noexcept {
  return qid < queues_.size() ? queues_[qid].get() : nullptr;
}

const AdaptivePolicy::QueueState* AdaptivePolicy::state_locked(
    std::uint16_t qid) const noexcept {
  return qid < queues_.size() ? queues_[qid].get() : nullptr;
}

double AdaptivePolicy::congestion_locked(const QueueState& q) const noexcept {
  return std::max({q.occ_ewma, q.slot_share_ewma,
                   std::max(down_util_ewma_, up_util_ewma_)});
}

}  // namespace bx::policy
