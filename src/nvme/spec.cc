#include "nvme/spec.h"

namespace bx::nvme {

std::string_view io_opcode_name(IoOpcode op) noexcept {
  switch (op) {
    case IoOpcode::kFlush: return "flush";
    case IoOpcode::kWrite: return "write";
    case IoOpcode::kRead: return "read";
    case IoOpcode::kVendorKvStore: return "kv_store";
    case IoOpcode::kVendorKvRetrieve: return "kv_retrieve";
    case IoOpcode::kVendorKvDelete: return "kv_delete";
    case IoOpcode::kVendorKvExist: return "kv_exist";
    case IoOpcode::kVendorKvIterate: return "kv_iterate";
    case IoOpcode::kVendorCsdFilter: return "csd_filter";
    case IoOpcode::kVendorBandSlimFragment: return "bandslim_fragment";
    case IoOpcode::kVendorRawWrite: return "raw_write";
    case IoOpcode::kVendorRawRead: return "raw_read";
    case IoOpcode::kVendorPartialWrite: return "partial_write";
  }
  return "unknown";
}

}  // namespace bx::nvme
