// ByteExpress-R inline read-completion wire format.
//
// The write direction inlines payloads into SQ slots; the read direction
// has no symmetric container, so ByteExpress-R gives each I/O queue a
// host-side *completion ring* adjacent to the CQ. The controller returns a
// small read payload as chunked MWr TLPs into that ring — one 64-byte slot
// per chunk, each self-describing and CRC32-C protected — and only then
// posts the CQE, which carries an inline-read flag, the first ring slot,
// and the chunk count in DW1. The driver validates framing and CRC per
// chunk (a corrupted chunk surfaces as a retryable Data Transfer Error,
// mirroring the write path's device-side CRC check) and reassembles the
// payload without any PRP/SGL DMA.
//
// Slot layout mirrors the OOO write chunk: a 16-byte header followed by up
// to 48 bytes of payload. The magic byte differs (0xfe vs the OOO 0xff) so
// a misdirected write chunk can never masquerade as a read chunk, and the
// header identifies the command by (qid, cid) instead of a payload ID —
// the ring is per-queue and CIDs are unique among in-flight commands.
#pragma once

#include <cstring>

#include "common/crc32c.h"
#include "common/status.h"
#include "nvme/spec.h"

namespace bx::nvme::inline_read {

/// First byte of a read chunk slot. Distinct from the OOO write-chunk
/// magic (0xff) and from every defined opcode.
inline constexpr std::uint8_t kReadChunkMagic = 0xfe;
inline constexpr std::uint32_t kReadHeaderBytes = 16;
/// Payload bytes per ring slot: 64-byte slot minus the header.
inline constexpr std::uint32_t kReadChunkCapacity =
    kChunkSize - kReadHeaderBytes;  // 48
/// Ring slot size (one chunk per slot).
inline constexpr std::uint32_t kReadSlotBytes = kChunkSize;  // 64

constexpr std::uint32_t read_chunks_for(std::uint64_t len) noexcept {
  return static_cast<std::uint32_t>(div_ceil(len, kReadChunkCapacity));
}

struct ReadChunkHeader {
  std::uint8_t magic = kReadChunkMagic;
  std::uint8_t version = 1;
  std::uint16_t chunk_no = 0;      // 0-based
  std::uint16_t cid = 0;           // command this chunk answers
  std::uint16_t qid = 0;           // queue that owns the ring
  std::uint16_t total_chunks = 0;
  std::uint16_t data_len = 0;      // bytes of payload in this chunk
  std::uint32_t crc = 0;           // CRC32-C of the chunk data
};
static_assert(sizeof(ReadChunkHeader) == kReadHeaderBytes);

inline SqSlot encode_read_chunk(std::uint16_t qid, std::uint16_t cid,
                                std::uint16_t chunk_no,
                                std::uint16_t total_chunks,
                                ConstByteSpan data) noexcept {
  BX_ASSERT(data.size() <= kReadChunkCapacity);
  ReadChunkHeader header;
  header.chunk_no = chunk_no;
  header.cid = cid;
  header.qid = qid;
  header.total_chunks = total_chunks;
  header.data_len = static_cast<std::uint16_t>(data.size());
  header.crc = crc32c(data);
  SqSlot slot;
  std::memcpy(slot.raw, &header, sizeof(header));
  std::memcpy(slot.raw + kReadHeaderBytes, data.data(), data.size());
  return slot;
}

inline bool is_read_chunk(const SqSlot& slot) noexcept {
  return slot.raw[0] == kReadChunkMagic;
}

inline ReadChunkHeader decode_read_header(const SqSlot& slot) noexcept {
  ReadChunkHeader header;
  std::memcpy(&header, slot.raw, sizeof(header));
  return header;
}

inline ConstByteSpan read_chunk_data(const SqSlot& slot,
                                     const ReadChunkHeader& header) noexcept {
  return {slot.raw + kReadHeaderBytes, header.data_len};
}

// -------------------------------------------------------- SQE/CQE marking

/// SQE marking for inline-read requests: CDW3 bit 30. Disjoint from the
/// OOO write marker (bit 31 + inline_length > 0); read commands carry
/// inline_length == 0, so the two can never collide.
inline constexpr std::uint32_t kSqeInlineReadFlag = 0x40000000u;

inline void mark_sqe_inline_read(SubmissionQueueEntry& sqe) noexcept {
  sqe.cdw3 |= kSqeInlineReadFlag;
}
inline bool sqe_wants_inline_read(const SubmissionQueueEntry& sqe) noexcept {
  return (sqe.cdw3 & kSqeInlineReadFlag) != 0;
}

/// CQE DW1 encoding for inline-read completions:
///   bit  31    — inline-read flag (DW1 == 0 for every other completion)
///   bits 30:16 — ring slot index of the first chunk
///   bits 15:0  — chunk count
inline constexpr std::uint32_t kCqeInlineReadFlag = 0x80000000u;

inline std::uint32_t encode_read_cqe_dw1(std::uint32_t first_slot,
                                         std::uint32_t chunks) noexcept {
  BX_ASSERT(first_slot < (1u << 15));
  BX_ASSERT(chunks < (1u << 16));
  return kCqeInlineReadFlag | (first_slot << 16) | chunks;
}
inline bool cqe_is_inline_read(const CompletionQueueEntry& cqe) noexcept {
  return (cqe.dw1 & kCqeInlineReadFlag) != 0;
}
inline std::uint32_t cqe_read_first_slot(
    const CompletionQueueEntry& cqe) noexcept {
  return (cqe.dw1 >> 16) & 0x7fffu;
}
inline std::uint32_t cqe_read_chunks(
    const CompletionQueueEntry& cqe) noexcept {
  return cqe.dw1 & 0xffffu;
}

}  // namespace bx::nvme::inline_read
