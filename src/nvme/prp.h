// Physical Region Page construction and traversal (NVMe 1.4 §4.3).
//
// Rules implemented exactly as the spec defines them, since the paper's
// whole premise is PRP's page-granular behaviour:
//   * PRP1 points at the first page and may carry a page offset,
//   * if the transfer fits two pages, PRP2 is the second page address,
//   * otherwise PRP2 points to a PRP *list* page of 8-byte entries; when a
//     list page fills, its final entry chains to the next list page.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "hostmem/dma_memory.h"

namespace bx::nvme {

/// Result of building PRPs for one host buffer.
struct PrpChain {
  std::uint64_t prp1 = 0;
  std::uint64_t prp2 = 0;
  /// List pages allocated from the DMA pool; must outlive the command.
  std::vector<DmaBuffer> list_pages;
  /// Number of data pages the transfer touches.
  std::uint64_t page_count = 0;
};

/// Builds the PRP1/PRP2 (+ list pages) describing `length` bytes starting at
/// host address `addr`. `addr` may be unaligned; all later pages must start
/// page-aligned, which holds for any contiguous buffer.
StatusOr<PrpChain> build_prp_chain(DmaMemory& memory, std::uint64_t addr,
                                   std::uint64_t length);

/// Controller-side traversal: expands a PRP chain back into the list of data
/// page addresses. `read_list_page` is charged by the caller (it is a DMA);
/// this function only decodes, taking the raw list page contents via the
/// callback so the DMA cost can be accounted where it occurs.
class PrpWalker {
 public:
  /// Page addresses for a transfer of `length` bytes. `fetch_list` is
  /// invoked once per PRP list page the walk needs, with the list page
  /// address, and must return its 4096-byte contents.
  using ListFetch = std::function<std::vector<std::uint64_t>(
      std::uint64_t list_addr, std::size_t entries)>;

  static StatusOr<std::vector<std::uint64_t>> data_pages(
      std::uint64_t prp1, std::uint64_t prp2, std::uint64_t length,
      const ListFetch& fetch_list);
};

/// Helper the controller uses to read one PRP list page out of host memory.
std::vector<std::uint64_t> read_prp_list_page(DmaMemory& memory,
                                              std::uint64_t addr,
                                              std::size_t entries);

}  // namespace bx::nvme
