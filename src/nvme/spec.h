// NVMe on-the-wire structures (subset of NVMe 1.4 + vendor extensions).
//
// The layouts are bit-exact where the paper's mechanism depends on them:
//   * SubmissionQueueEntry is exactly 64 bytes — one SQ slot, which is also
//     the ByteExpress chunk granularity,
//   * CompletionQueueEntry is exactly 16 bytes,
//   * ByteExpress re-purposes CDW2 (reserved for the NVM command set) to
//     carry the inline payload length, exactly as §3.3.1 describes
//     ("repurposes a reserved field within the CMD to store the payload
//     length again").
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/bytes.h"

namespace bx::nvme {

inline constexpr std::uint32_t kSqeSize = 64;
inline constexpr std::uint32_t kCqeSize = 16;
/// ByteExpress chunk granularity == SQ entry size.
inline constexpr std::uint32_t kChunkSize = kSqeSize;

// ---------------------------------------------------------------- opcodes

enum class AdminOpcode : std::uint8_t {
  kDeleteIoSq = 0x00,
  kCreateIoSq = 0x01,
  kGetLogPage = 0x02,
  kDeleteIoCq = 0x04,
  kCreateIoCq = 0x05,
  kIdentify = 0x06,
  /// CDW10 = SQID | (CID << 16); completion DW0 bit 0 clear = aborted.
  kAbort = 0x08,
  kSetFeatures = 0x09,
  kGetFeatures = 0x0a,
  /// Vendor: advertise a host-side inline-read completion ring for one
  /// I/O queue (ByteExpress-R). CDW10 = QID | (slot count << 16); DPTR1 =
  /// ring base address. Rejected with Invalid Field when the controller
  /// has inline reads disabled — the driver then falls back to PRP reads.
  kVendorReadRing = 0xc1,
};

/// Identify CNS values (CDW10 bits 7:0).
enum class IdentifyCns : std::uint8_t {
  kNamespace = 0x00,
  kController = 0x01,
};

/// Log page identifiers (CDW10 bits 7:0 of Get Log Page).
enum class LogPageId : std::uint8_t {
  kErrorInfo = 0x01,
  kSmart = 0x02,
  /// Vendor log: transfer-path statistics (ByteExpress instrumentation).
  kVendorTransferStats = 0xc0,
  /// Vendor log: per-stage firmware timing statistics (observability).
  kVendorStageStats = 0xc1,
};

/// Layout of the vendor transfer-stats log page (LID 0xC0) — the
/// device-side counters behind the paper's traffic/overhead analysis.
struct TransferStatsLog {
  std::uint64_t commands_processed = 0;
  std::uint64_t inline_chunks_fetched = 0;
  std::uint64_t bandslim_fragments = 0;
  std::uint64_t prp_transactions = 0;
  std::uint64_t sgl_transactions = 0;
  std::uint64_t completions_posted = 0;
  std::uint64_t ooo_payloads_reassembled = 0;
  std::uint64_t fetch_stage_total_ns = 0;
};
static_assert(sizeof(TransferStatsLog) == 64);

/// Layout of the vendor stage-stats log page (LID 0xC1): cumulative
/// {count, total_ns} per device-side pipeline stage for I/O queues
/// (admin-queue work is excluded). Accumulated always-on in firmware,
/// independently of the host-side trace recorder.
struct StageStatsLog {
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  Entry sqe_fetch;
  Entry chunk_fetch;
  Entry prp_dma;
  Entry sgl_dma;
  Entry exec;
  Entry completion;
  /// ByteExpress-R: device->host inline read-chunk emission.
  Entry read_chunk;
  std::uint64_t reserved[2] = {};
};
static_assert(sizeof(StageStatsLog) == 128);

enum class IoOpcode : std::uint8_t {
  kFlush = 0x00,
  kWrite = 0x01,
  kRead = 0x02,

  // Vendor-specific opcodes, delivered via NVMe passthrough (§2.1).
  kVendorKvStore = 0x81,
  kVendorKvRetrieve = 0x82,
  kVendorKvDelete = 0x83,
  kVendorKvExist = 0x84,
  kVendorKvIterate = 0x85,
  kVendorCsdFilter = 0x91,       // SQL predicate pushdown task
  kVendorBandSlimFragment = 0x95,  // BandSlim payload fragment carrier
  kVendorRawWrite = 0x96,  // microbenchmark write into device buffer
  kVendorRawRead = 0x97,
  /// Sub-block update: patch `cdw12` payload bytes into block `cdw10/11`
  /// at byte offset `cdw13[31:8]` — the device performs the
  /// read-modify-write in its NAND page buffer (§3.3.1's "NAND page
  /// buffer entry of normal block SSDs"). With ByteExpress the host ships
  /// only the changed bytes instead of the whole 4 KB block.
  kVendorPartialWrite = 0x98,
};

std::string_view io_opcode_name(IoOpcode op) noexcept;

// ------------------------------------------------------------ status codes

enum class StatusCodeType : std::uint8_t {
  kGeneric = 0x0,
  kCommandSpecific = 0x1,
  kMediaError = 0x2,
  kVendor = 0x7,
};

enum class GenericStatus : std::uint8_t {
  kSuccess = 0x00,
  kInvalidOpcode = 0x01,
  kInvalidField = 0x02,
  kDataTransferError = 0x04,
  kInternalError = 0x06,
  /// The command was cancelled by a host Abort (retryable: the host
  /// itself asked for the cancellation, usually after a timeout).
  kAbortRequested = 0x07,
  kInvalidNamespace = 0x0b,
  kLbaOutOfRange = 0x80,
  kCapacityExceeded = 0x81,
  /// Transient device-side condition; the host should retry (the NVMe
  /// "Namespace Not Ready, retry possible" semantics).
  kNamespaceNotReady = 0x82,
};

enum class VendorStatus : std::uint8_t {
  kKvKeyNotFound = 0x01,
  kKvKeyTooLarge = 0x02,
  kKvValueTooLarge = 0x03,
  kKvStoreFull = 0x04,
  kCsdParseError = 0x10,
  kCsdUnknownTable = 0x11,
  kCsdTypeMismatch = 0x12,
  kFragmentProtocolError = 0x20,
  kInlineLengthMismatch = 0x21,
};

/// The 15-bit status field of a CQE (phase bit excluded).
struct StatusField {
  StatusCodeType type = StatusCodeType::kGeneric;
  std::uint8_t code = 0;

  [[nodiscard]] bool is_success() const noexcept {
    return type == StatusCodeType::kGeneric &&
           code == static_cast<std::uint8_t>(GenericStatus::kSuccess);
  }
  [[nodiscard]] std::uint16_t encode() const noexcept {
    return static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(type) << 9) |
        (static_cast<std::uint16_t>(code) << 1));
  }
  static StatusField decode(std::uint16_t raw) noexcept {
    StatusField f;
    f.type = static_cast<StatusCodeType>((raw >> 9) & 0x7);
    f.code = static_cast<std::uint8_t>((raw >> 1) & 0xff);
    return f;
  }
  static StatusField success() noexcept { return {}; }
  static StatusField generic(GenericStatus code) noexcept {
    return {StatusCodeType::kGeneric, static_cast<std::uint8_t>(code)};
  }
  static StatusField vendor(VendorStatus code) noexcept {
    return {StatusCodeType::kVendor, static_cast<std::uint8_t>(code)};
  }
};

// -------------------------------------------------------------------- SQE

/// PRP or SGL selection, SQE bits 15:14 of DWORD0 (PSDT) in the spec.
enum class DataTransferMode : std::uint8_t {
  kPrp = 0b00,
  kSglData = 0b01,
};

/// One 64-byte submission queue entry.
struct SubmissionQueueEntry {
  std::uint8_t opcode = 0;       // DW0 [7:0]
  std::uint8_t flags = 0;        // DW0 [15:8]: FUSE + PSDT
  std::uint16_t cid = 0;         // DW0 [31:16] command identifier
  std::uint32_t nsid = 0;        // DW1
  std::uint32_t cdw2 = 0;        // DW2  (reserved in NVM set: ByteExpress len)
  std::uint32_t cdw3 = 0;        // DW3  (reserved)
  std::uint64_t mptr = 0;        // DW4-5 metadata pointer
  std::uint64_t dptr1 = 0;       // DW6-7  PRP1 / SGL descriptor low half
  std::uint64_t dptr2 = 0;       // DW8-9  PRP2 / SGL descriptor high half
  std::uint32_t cdw10 = 0;
  std::uint32_t cdw11 = 0;
  std::uint32_t cdw12 = 0;
  std::uint32_t cdw13 = 0;
  std::uint32_t cdw14 = 0;
  std::uint32_t cdw15 = 0;

  [[nodiscard]] DataTransferMode transfer_mode() const noexcept {
    return static_cast<DataTransferMode>((flags >> 6) & 0x3);
  }
  void set_transfer_mode(DataTransferMode mode) noexcept {
    flags = static_cast<std::uint8_t>(
        (flags & 0x3f) | (static_cast<std::uint8_t>(mode) << 6));
  }

  /// ByteExpress: inline payload length lives in the reserved CDW2. Zero
  /// means "not a ByteExpress command" — the controller's fetch engine
  /// branches on exactly this (§3.3.1).
  [[nodiscard]] std::uint32_t inline_length() const noexcept { return cdw2; }
  void set_inline_length(std::uint32_t bytes) noexcept { cdw2 = bytes; }

  [[nodiscard]] IoOpcode io_opcode() const noexcept {
    return static_cast<IoOpcode>(opcode);
  }
};
static_assert(sizeof(SubmissionQueueEntry) == kSqeSize,
              "SQE must be exactly 64 bytes");

/// A raw 64-byte SQ slot holding payload bytes instead of a command — what
/// the ByteExpress driver appends after the SQE.
struct SqSlot {
  Byte raw[kSqeSize] = {};
};
static_assert(sizeof(SqSlot) == kSqeSize);

// -------------------------------------------------------------------- CQE

struct CompletionQueueEntry {
  std::uint32_t dw0 = 0;      // command-specific result
  std::uint32_t dw1 = 0;
  std::uint16_t sq_head = 0;  // SQ head pointer after this command
  std::uint16_t sq_id = 0;
  std::uint16_t cid = 0;
  std::uint16_t status_phase = 0;  // [15:1] status, [0] phase tag

  [[nodiscard]] bool phase() const noexcept {
    return (status_phase & 1) != 0;
  }
  void set_phase(bool p) noexcept {
    status_phase = static_cast<std::uint16_t>((status_phase & ~1u) |
                                              (p ? 1u : 0u));
  }
  [[nodiscard]] StatusField status() const noexcept {
    return StatusField::decode(status_phase);
  }
  void set_status(StatusField status) noexcept {
    status_phase = static_cast<std::uint16_t>(status.encode() |
                                              (status_phase & 1u));
  }
};
static_assert(sizeof(CompletionQueueEntry) == kCqeSize,
              "CQE must be exactly 16 bytes");

// ----------------------------------------------------- command field views

/// Block I/O commands: starting LBA in CDW10-11, block count in CDW12[15:0]
/// (0's based), per the NVM command set.
struct BlockIoFields {
  std::uint64_t slba = 0;
  std::uint32_t block_count = 0;  // actual count, not 0's based

  static BlockIoFields from(const SubmissionQueueEntry& sqe) noexcept {
    BlockIoFields f;
    f.slba = (static_cast<std::uint64_t>(sqe.cdw11) << 32) | sqe.cdw10;
    f.block_count = (sqe.cdw12 & 0xffff) + 1;
    return f;
  }
  void apply(SubmissionQueueEntry& sqe) const noexcept {
    sqe.cdw10 = static_cast<std::uint32_t>(slba);
    sqe.cdw11 = static_cast<std::uint32_t>(slba >> 32);
    sqe.cdw12 = (sqe.cdw12 & 0xffff0000) | ((block_count - 1) & 0xffff);
  }
};

/// Vendor data commands (KV/CSD/raw): the host-buffer byte length travels in
/// CDW12, and an opcode-specific sub-field in CDW13.
struct VendorFields {
  std::uint32_t data_length = 0;  // bytes
  std::uint32_t aux = 0;

  static VendorFields from(const SubmissionQueueEntry& sqe) noexcept {
    return {sqe.cdw12, sqe.cdw13};
  }
  void apply(SubmissionQueueEntry& sqe) const noexcept {
    sqe.cdw12 = data_length;
    sqe.cdw13 = aux;
  }
};

/// KV command-set key placement, NVMe-KV style: the key (up to 16 bytes)
/// rides inside the SQE itself — CDW10, CDW11, CDW14, CDW15 — and its
/// length occupies the low byte of CDW13. This deliberately avoids CDW2/3
/// (ByteExpress length / OOO id), MPTR/DPTR (PRP or BandSlim inline head)
/// and CDW12 (value length), so every transfer method composes with KV
/// commands.
struct KvKeyFields {
  static constexpr std::size_t kMaxKeyBytes = 16;

  Byte key[kMaxKeyBytes] = {};
  std::uint8_t key_len = 0;

  static KvKeyFields from(const SubmissionQueueEntry& sqe) noexcept {
    KvKeyFields f;
    f.key_len = static_cast<std::uint8_t>(sqe.cdw13 & 0xff);
    std::memcpy(f.key + 0, &sqe.cdw10, 4);
    std::memcpy(f.key + 4, &sqe.cdw11, 4);
    std::memcpy(f.key + 8, &sqe.cdw14, 4);
    std::memcpy(f.key + 12, &sqe.cdw15, 4);
    return f;
  }
  void apply(SubmissionQueueEntry& sqe) const noexcept {
    sqe.cdw13 = (sqe.cdw13 & ~0xffu) | key_len;
    std::memcpy(&sqe.cdw10, key + 0, 4);
    std::memcpy(&sqe.cdw11, key + 4, 4);
    std::memcpy(&sqe.cdw14, key + 8, 4);
    std::memcpy(&sqe.cdw15, key + 12, 4);
  }
  [[nodiscard]] ConstByteSpan view() const noexcept {
    return {key, key_len};
  }
};

}  // namespace bx::nvme
