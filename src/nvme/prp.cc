#include "nvme/prp.h"

#include <functional>

#include "common/bytes.h"

namespace bx::nvme {

namespace {
constexpr std::uint64_t kPage = kHostPageSize;
constexpr std::size_t kEntriesPerListPage = kPage / sizeof(std::uint64_t);
}  // namespace

StatusOr<PrpChain> build_prp_chain(DmaMemory& memory, std::uint64_t addr,
                                   std::uint64_t length) {
  if (addr == 0) return invalid_argument("PRP buffer address is null");
  if (length == 0) return invalid_argument("PRP transfer length is zero");

  PrpChain chain;
  chain.prp1 = addr;

  // Pages touched: first page holds (kPage - offset) bytes.
  const std::uint64_t first_offset = addr % kPage;
  const std::uint64_t after_first =
      length > (kPage - first_offset) ? length - (kPage - first_offset) : 0;
  chain.page_count = 1 + div_ceil(after_first, kPage);

  if (chain.page_count == 1) {
    chain.prp2 = 0;
    return chain;
  }

  const std::uint64_t second_page = align_down(addr, kPage) + kPage;
  if (chain.page_count == 2) {
    chain.prp2 = second_page;
    return chain;
  }

  // Three or more pages: PRP2 points at a chained list of page addresses
  // covering pages [1, page_count).
  std::vector<std::uint64_t> entries;
  entries.reserve(chain.page_count - 1);
  for (std::uint64_t i = 1; i < chain.page_count; ++i) {
    entries.push_back(align_down(addr, kPage) + i * kPage);
  }

  // Chunk entries into list pages. A full page whose entries do not finish
  // the chain uses its last slot as a chain pointer, so it holds
  // kEntriesPerListPage-1 data entries.
  std::vector<DmaBuffer> pages;
  std::size_t cursor = 0;
  while (cursor < entries.size()) {
    pages.push_back(memory.allocate_pages(1));
    const std::size_t remaining = entries.size() - cursor;
    const std::size_t in_this_page = remaining <= kEntriesPerListPage
                                         ? remaining
                                         : kEntriesPerListPage - 1;
    DmaBuffer& page = pages.back();
    for (std::size_t i = 0; i < in_this_page; ++i) {
      const std::uint64_t entry = entries[cursor + i];
      page.write(i * sizeof(std::uint64_t),
                 {reinterpret_cast<const Byte*>(&entry), sizeof(entry)});
    }
    cursor += in_this_page;
    if (cursor < entries.size()) {
      // Chain pointer will be patched once the next page exists.
    }
  }
  // Patch chain pointers now that all list pages have addresses.
  for (std::size_t i = 0; i + 1 < pages.size(); ++i) {
    const std::uint64_t next = pages[i + 1].addr();
    pages[i].write((kEntriesPerListPage - 1) * sizeof(std::uint64_t),
                   {reinterpret_cast<const Byte*>(&next), sizeof(next)});
  }

  chain.prp2 = pages.front().addr();
  chain.list_pages = std::move(pages);
  return chain;
}

StatusOr<std::vector<std::uint64_t>> PrpWalker::data_pages(
    std::uint64_t prp1, std::uint64_t prp2, std::uint64_t length,
    const ListFetch& fetch_list) {
  if (prp1 == 0) return invalid_argument("PRP1 is null");
  if (length == 0) return invalid_argument("length is zero");

  const std::uint64_t first_offset = prp1 % kPage;
  const std::uint64_t after_first =
      length > (kPage - first_offset) ? length - (kPage - first_offset) : 0;
  const std::uint64_t page_count = 1 + div_ceil(after_first, kPage);

  std::vector<std::uint64_t> pages;
  pages.reserve(page_count);
  pages.push_back(prp1);
  if (page_count == 1) return pages;

  if (page_count == 2) {
    if (prp2 == 0) return invalid_argument("PRP2 required but null");
    pages.push_back(prp2);
    return pages;
  }

  // Walk the chained list.
  std::uint64_t list_addr = prp2;
  std::uint64_t remaining = page_count - 1;
  while (remaining > 0) {
    if (list_addr == 0) return invalid_argument("PRP list chain truncated");
    const bool chained = remaining > kEntriesPerListPage;
    const std::size_t take = chained
                                 ? kEntriesPerListPage - 1
                                 : static_cast<std::size_t>(remaining);
    const std::size_t fetch_entries = chained ? kEntriesPerListPage : take;
    const std::vector<std::uint64_t> list =
        fetch_list(list_addr, fetch_entries);
    if (list.size() < fetch_entries) {
      return internal_error("PRP list fetch returned short page");
    }
    for (std::size_t i = 0; i < take; ++i) {
      if (list[i] == 0) return invalid_argument("null PRP list entry");
      if (!is_aligned(list[i], kPage)) {
        return invalid_argument("misaligned PRP list entry");
      }
      pages.push_back(list[i]);
    }
    remaining -= take;
    list_addr = chained ? list[kEntriesPerListPage - 1] : 0;
  }
  return pages;
}

std::vector<std::uint64_t> read_prp_list_page(DmaMemory& memory,
                                              std::uint64_t addr,
                                              std::size_t entries) {
  std::vector<std::uint64_t> out(entries, 0);
  memory.read(addr, {reinterpret_cast<Byte*>(out.data()),
                     out.size() * sizeof(std::uint64_t)});
  return out;
}

}  // namespace bx::nvme
