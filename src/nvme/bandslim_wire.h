// BandSlim (ICPP '24) wire format — the state-of-the-art NVMe CMD-based
// baseline the paper compares against (§3.2, Figure 3(c)).
//
// BandSlim moves a payload through a *sequence of commands*:
//   * the header command is the real vendor command (KV store, CSD filter,
//     raw write ...). Its unused MPTR/DPTR region (SQE bytes 16..39) can
//     embed the first kFirstCmdCapacity bytes of payload, which is how
//     BandSlim ships sub-24 B values in a single command;
//   * each following *fragment* command (opcode kVendorBandSlimFragment)
//     carries up to kFragmentCapacity bytes in SQE bytes 16..63.
// Fragments of one payload are serialized by the host ordering layer; only
// the header command's CID completes (one CQE per payload, not per CMD).
#pragma once

#include <cstring>

#include "common/status.h"
#include "nvme/spec.h"

namespace bx::nvme::bandslim {

/// Payload bytes embeddable in the header command (MPTR + DPTR region).
inline constexpr std::uint32_t kFirstCmdCapacity = 24;
/// Payload bytes per dedicated fragment command (SQE bytes 16..63).
inline constexpr std::uint32_t kFragmentCapacity = 48;
inline constexpr std::uint32_t kHeaderBytes = 16;  // fragment SQE header

/// Commands needed for a payload of `len` bytes (header command included).
constexpr std::uint32_t commands_for(std::uint64_t len) noexcept {
  if (len <= kFirstCmdCapacity) return 1;
  return 1 + static_cast<std::uint32_t>(
                 div_ceil(len - kFirstCmdCapacity, kFragmentCapacity));
}

/// Marks `sqe` as a fragmented-transfer header and embeds the payload head
/// into the (unused) MPTR/DPTR region. The marker lives in the reserved
/// CDW3: high bit set, embedded byte count in bits [21:16], stream id in
/// bits [15:0]. A BandSlim header never carries an inline_length (CDW2), so
/// it cannot be confused with a ByteExpress OOO command, which also uses
/// the CDW3 high bit but always has CDW2 > 0.
/// Returns how many payload bytes were embedded.
inline std::uint32_t encode_header(SubmissionQueueEntry& sqe,
                                   std::uint16_t stream_id,
                                   ConstByteSpan payload) noexcept {
  const auto embedded = static_cast<std::uint32_t>(
      payload.size() < kFirstCmdCapacity ? payload.size()
                                         : kFirstCmdCapacity);
  sqe.cdw3 = 0x80000000u | (embedded << 16) | stream_id;
  if (embedded > 0) {
    auto* raw = reinterpret_cast<Byte*>(&sqe);
    std::memcpy(raw + 16, payload.data(), embedded);  // MPTR/DPTR region
  }
  return embedded;
}

/// True if `sqe` announces a fragmented BandSlim transfer.
inline bool is_fragmented_header(const SubmissionQueueEntry& sqe) noexcept {
  return sqe.inline_length() == 0 && (sqe.cdw3 & 0x80000000u) != 0;
}
inline std::uint16_t header_stream_id(
    const SubmissionQueueEntry& sqe) noexcept {
  return static_cast<std::uint16_t>(sqe.cdw3 & 0xffff);
}
inline std::uint32_t header_embedded_bytes(
    const SubmissionQueueEntry& sqe) noexcept {
  return (sqe.cdw3 >> 16) & 0x1f;
}
inline ConstByteSpan header_embedded_payload(
    const SubmissionQueueEntry& sqe) noexcept {
  const auto* raw = reinterpret_cast<const Byte*>(&sqe);
  return {raw + 16, header_embedded_bytes(sqe)};
}

/// One dedicated fragment command.
struct Fragment {
  std::uint16_t stream_id = 0;
  std::uint16_t index = 0;        // 0-based among dedicated fragments
  bool last = false;
  std::uint32_t offset = 0;       // byte offset within the payload
  std::uint32_t length = 0;       // <= kFragmentCapacity
};

/// Builds a fragment SQE carrying `data` (data.size() <= kFragmentCapacity).
inline SubmissionQueueEntry encode_fragment(const Fragment& fragment,
                                            std::uint16_t cid,
                                            ConstByteSpan data) noexcept {
  BX_ASSERT(data.size() <= kFragmentCapacity);
  BX_ASSERT(data.size() == fragment.length);
  SubmissionQueueEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(IoOpcode::kVendorBandSlimFragment);
  sqe.cid = cid;
  sqe.cdw2 = std::uint32_t{fragment.stream_id} |
             (std::uint32_t{fragment.index} << 16) |
             (fragment.last ? 0x80000000u : 0u);
  // Fragment length rides in the top bits of cdw3 alongside the offset
  // (offsets stay far below 2^26 for inline-scale payloads).
  sqe.cdw3 = (fragment.offset & 0x03ffffffu) |
             (std::uint32_t{fragment.length} << 26);
  auto* raw = reinterpret_cast<Byte*>(&sqe);
  std::memcpy(raw + kHeaderBytes, data.data(), data.size());
  return sqe;
}

inline Fragment decode_fragment(const SubmissionQueueEntry& sqe) noexcept {
  Fragment f;
  f.stream_id = static_cast<std::uint16_t>(sqe.cdw2 & 0xffff);
  f.index = static_cast<std::uint16_t>((sqe.cdw2 >> 16) & 0x7fff);
  f.last = (sqe.cdw2 & 0x80000000u) != 0;
  f.offset = sqe.cdw3 & 0x03ffffffu;
  f.length = (sqe.cdw3 >> 26) & 0x3f;
  return f;
}

inline ConstByteSpan fragment_payload(const SubmissionQueueEntry& sqe,
                                      const Fragment& fragment) noexcept {
  const auto* raw = reinterpret_cast<const Byte*>(&sqe);
  return {raw + kHeaderBytes, fragment.length};
}

}  // namespace bx::nvme::bandslim
