#include "nvme/sgl.h"

namespace bx::nvme {

std::pair<std::uint64_t, std::uint64_t> SglDescriptor::pack() const noexcept {
  const std::uint64_t low = address;
  const std::uint64_t high =
      static_cast<std::uint64_t>(length) |
      (static_cast<std::uint64_t>(type) << 60);
  return {low, high};
}

SglDescriptor SglDescriptor::unpack(std::uint64_t dptr1,
                                    std::uint64_t dptr2) noexcept {
  SglDescriptor d;
  d.address = dptr1;
  d.length = static_cast<std::uint32_t>(dptr2 & 0xffffffffu);
  d.type = static_cast<SglDescriptorType>((dptr2 >> 60) & 0xf);
  return d;
}

StatusOr<SglDescriptor> build_sgl_data_block(std::uint64_t addr,
                                             std::uint64_t length) {
  if (addr == 0) return invalid_argument("SGL buffer address is null");
  if (length == 0) return invalid_argument("SGL transfer length is zero");
  if (length > UINT32_MAX) return invalid_argument("SGL length overflow");
  SglDescriptor d;
  d.address = addr;
  d.length = static_cast<std::uint32_t>(length);
  d.type = SglDescriptorType::kDataBlock;
  return d;
}

SglDescriptor make_bit_bucket(std::uint32_t length) noexcept {
  SglDescriptor d;
  d.address = 0;
  d.length = length;
  d.type = SglDescriptorType::kBitBucket;
  return d;
}

}  // namespace bx::nvme
