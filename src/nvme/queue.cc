#include "nvme/queue.h"

namespace bx::nvme {

SqRing::SqRing(DmaMemory& memory, std::uint16_t qid, std::uint32_t depth)
    : memory_(memory),
      qid_(qid),
      depth_(depth),
      ring_(memory.allocate(std::uint64_t{depth} * kSqeSize)) {
  BX_ASSERT_MSG(depth >= 2, "SQ depth must be at least 2");
}

std::uint32_t SqRing::free_slots() const noexcept {
  // Ring with one reserved gap: when tail is just behind head, it is full.
  const std::uint32_t used = (tail_ + depth_ - head_cache_) % depth_;
  return depth_ - 1 - used;
}

void SqRing::push_slot(ConstByteSpan slot64) noexcept {
  BX_ASSERT(slot64.size() == kSqeSize);
  BX_ASSERT_MSG(free_slots() > 0, "SQ overflow");
  memory_.write(slot_addr(tail_), slot64);
  tail_ = (tail_ + 1) % depth_;
  ++slots_pushed_;
}

CqRing::CqRing(DmaMemory& memory, std::uint16_t qid, std::uint32_t depth)
    : memory_(memory),
      qid_(qid),
      depth_(depth),
      ring_(memory.allocate(std::uint64_t{depth} * kCqeSize)) {
  BX_ASSERT_MSG(depth >= 2, "CQ depth must be at least 2");
}

bool CqRing::peek(CompletionQueueEntry& out) noexcept {
  const auto cqe =
      memory_.read_object<CompletionQueueEntry>(slot_addr(head_));
  if (cqe.phase() != expected_phase_) return false;
  out = cqe;
  return true;
}

CompletionQueueEntry CqRing::pop() noexcept {
  const auto cqe =
      memory_.read_object<CompletionQueueEntry>(slot_addr(head_));
  BX_ASSERT_MSG(cqe.phase() == expected_phase_, "pop without available CQE");
  head_ = (head_ + 1) % depth_;
  if (head_ == 0) expected_phase_ = !expected_phase_;
  ++cqes_popped_;
  return cqe;
}

}  // namespace bx::nvme
