// Calibrated cost model for the host driver and the device firmware.
//
// Anchors come from the paper's Table 1 (measured on a Xeon host and the
// Cosmos+ OpenSSD FPGA over PCIe Gen2 x8):
//   * driver SQ submit:   PRP ~60 ns, +~30-40 ns per inline 64 B chunk,
//   * controller SQ fetch: ~2400 ns for one command, +~400 ns per chunk
//     entry (the +400 here decomposes into ~350 ns firmware + ~330 ns link
//     round-trip already charged by PcieLink — the split is documented in
//     EXPERIMENTS.md).
// The remaining constants (PRP DMA setup, completion handling, BandSlim
// fragment processing) are tuned so the published shapes hold: ~40 % latency
// win for 32-128 B payloads, ByteExpress/PRP crossover near 256 B, BandSlim
// collapse past 64 B (~70 % ByteExpress win at 128 B).
//
// Everything is a plain struct field so ablation benchmarks can sweep any
// cost.
#pragma once

#include "common/sim_clock.h"

namespace bx::nvme {

/// Costs paid by host software inside / around nvme_queue_rq().
struct HostTimingModel {
  /// Writing one 64 B SQE into the SQ (Table 1: PRP row, driver side).
  Nanoseconds sqe_insert_ns = 60;
  /// Writing one ByteExpress payload chunk into the next SQ slot
  /// (Table 1: ~+30-40 ns per chunk).
  Nanoseconds chunk_insert_ns = 35;
  /// Building PRP entries (page pinning, list setup) for one command.
  Nanoseconds prp_build_ns = 120;
  /// Building a single SGL data block descriptor.
  Nanoseconds sgl_build_ns = 80;
  /// Reaping one CQE (status decode, request lookup, callback).
  Nanoseconds completion_handle_ns = 100;
  /// BandSlim's ordering layer: gap between serialized fragment commands
  /// (completion observation + next-fragment construction).
  Nanoseconds bandslim_gap_ns = 1800;
};

/// Costs paid by device firmware (the get_nvme_cmd() side).
struct DeviceTimingModel {
  /// Firmware share of fetching + decoding one SQE (doorbell compare, DMA
  /// descriptor setup, opcode decode). The PCIe round trip for the 64 B
  /// read is charged separately by the link model (~330 ns on Gen2 x8),
  /// summing to the ~2400 ns Table 1 reports for the fetch stage.
  Nanoseconds cmd_fetch_fw_ns = 1800;
  /// Firmware share of fetching one ByteExpress chunk entry (~+400 ns per
  /// entry in Table 1, of which ~330 ns is the link round trip).
  Nanoseconds chunk_fetch_fw_ns = 350;
  /// Copying one 64 B chunk from the fetch buffer into the designated
  /// device DRAM buffer.
  Nanoseconds chunk_copy_ns = 5;
  /// Extra firmware work per BandSlim fragment command beyond a plain
  /// fetch: fragment header parsing, reassembly state update.
  Nanoseconds bandslim_fragment_fw_ns = 800;
  /// Programming the DMA engine for a PRP data transaction.
  Nanoseconds prp_dma_setup_ns = 1800;
  /// Parsing an SGL descriptor + programming the DMA engine. Cheaper than
  /// the PRP path's page juggling but not free (§5: descriptor handling).
  Nanoseconds sgl_dma_setup_ns = 900;
  /// Composing and posting one CQE (the MWr itself is charged by the link).
  Nanoseconds cqe_post_fw_ns = 150;
  /// Out-of-order reassembly bookkeeping per chunk (extension, §3.3.2).
  Nanoseconds reassembly_track_ns = 60;
};

}  // namespace bx::nvme
