// ByteExpress inline-chunk wire formats.
//
// Queue-local mode (the paper's implemented design, §3.3): payload chunks
// are *raw* 64-byte slices of the payload placed in the SQ slots following
// the command. No per-chunk metadata is needed because position
// disambiguates — the SQ lock on the host and queue-local fetching on the
// device guarantee command-then-chunks ordering.
//
// Out-of-order mode (the paper's §3.3.2 future-work extension, implemented
// here): chunks may be interleaved across SQs, so each chunk is
// self-describing: a 16-byte header (whose first byte is an intentionally
// invalid opcode, letting the fetch engine recognize a chunk wherever it
// appears) followed by up to 48 bytes of payload. The controller reassembles
// by payload ID with only a receive bitmap in SRAM (§3.3.2: "Only
// light-weight metadata, such as the payload ID and a receive bitmap, is
// needed").
#pragma once

#include <cstring>

#include "common/crc32c.h"
#include "common/status.h"
#include "nvme/spec.h"

namespace bx::nvme::inline_chunk {

/// Payload bytes per raw queue-local chunk: the full SQ slot.
inline constexpr std::uint32_t kRawChunkCapacity = kChunkSize;  // 64

/// Queue-local chunk count for a payload of `len` bytes.
constexpr std::uint32_t raw_chunks_for(std::uint64_t len) noexcept {
  return static_cast<std::uint32_t>(div_ceil(len, kRawChunkCapacity));
}

/// Builds one raw queue-local chunk slot (zero-padded past the payload).
inline SqSlot encode_raw_chunk(ConstByteSpan slice) noexcept {
  BX_ASSERT(slice.size() <= kRawChunkCapacity);
  SqSlot slot;
  std::memcpy(slot.raw, slice.data(), slice.size());
  return slot;
}

// ------------------------------------------------------ out-of-order mode

/// First byte of an OOO chunk slot: an opcode value no command set uses, so
/// the fetch engine can classify a slot without positional context.
inline constexpr std::uint8_t kOooChunkMagic = 0xff;
inline constexpr std::uint32_t kOooHeaderBytes = 16;
inline constexpr std::uint32_t kOooChunkCapacity =
    kChunkSize - kOooHeaderBytes;  // 48

constexpr std::uint32_t ooo_chunks_for(std::uint64_t len) noexcept {
  return static_cast<std::uint32_t>(div_ceil(len, kOooChunkCapacity));
}

struct OooChunkHeader {
  std::uint8_t magic = kOooChunkMagic;
  std::uint8_t version = 1;
  std::uint16_t chunk_no = 0;      // 0-based
  std::uint32_t payload_id = 0;
  std::uint16_t total_chunks = 0;
  std::uint16_t data_len = 0;      // bytes of payload in this chunk
  std::uint32_t crc = 0;           // CRC32-C of the chunk data
};
static_assert(sizeof(OooChunkHeader) == kOooHeaderBytes);

inline SqSlot encode_ooo_chunk(std::uint32_t payload_id,
                               std::uint16_t chunk_no,
                               std::uint16_t total_chunks,
                               ConstByteSpan data) noexcept {
  BX_ASSERT(data.size() <= kOooChunkCapacity);
  OooChunkHeader header;
  header.chunk_no = chunk_no;
  header.payload_id = payload_id;
  header.total_chunks = total_chunks;
  header.data_len = static_cast<std::uint16_t>(data.size());
  header.crc = crc32c(data);
  SqSlot slot;
  std::memcpy(slot.raw, &header, sizeof(header));
  std::memcpy(slot.raw + kOooHeaderBytes, data.data(), data.size());
  return slot;
}

inline bool is_ooo_chunk(const SqSlot& slot) noexcept {
  return slot.raw[0] == kOooChunkMagic;
}

inline OooChunkHeader decode_ooo_header(const SqSlot& slot) noexcept {
  OooChunkHeader header;
  std::memcpy(&header, slot.raw, sizeof(header));
  return header;
}

inline ConstByteSpan ooo_chunk_data(const SqSlot& slot,
                                    const OooChunkHeader& header) noexcept {
  return {slot.raw + kOooHeaderBytes, header.data_len};
}

/// SQE marking for OOO transfers: inline_length (CDW2) still holds the
/// payload byte count; CDW3 holds the payload ID with the high bit set to
/// distinguish OOO from queue-local inline transfers.
inline void mark_sqe_ooo(SubmissionQueueEntry& sqe,
                         std::uint32_t payload_id) noexcept {
  sqe.cdw3 = 0x80000000u | payload_id;
}
inline bool sqe_is_ooo(const SubmissionQueueEntry& sqe) noexcept {
  return sqe.inline_length() > 0 && (sqe.cdw3 & 0x80000000u) != 0;
}
inline std::uint32_t sqe_ooo_payload_id(
    const SubmissionQueueEntry& sqe) noexcept {
  return sqe.cdw3 & 0x7fffffffu;
}

}  // namespace bx::nvme::inline_chunk
