// Submission / completion queue rings.
//
// The rings live in simulated host DRAM (the device DMAs entries out of /
// into them). SqRing also carries the host-side cursors and — critically
// for ByteExpress §3.3.2 — the per-SQ spinlock: the driver inserts the
// command *and* its payload chunks while holding this lock, which is what
// guarantees the chunks land contiguously after the SQE.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "hostmem/dma_memory.h"
#include "nvme/spec.h"

namespace bx::nvme {

class SqRing {
 public:
  SqRing(DmaMemory& memory, std::uint16_t qid, std::uint32_t depth);

  [[nodiscard]] std::uint16_t qid() const noexcept { return qid_; }
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t base_addr() const noexcept {
    return ring_.addr();
  }
  [[nodiscard]] std::uint64_t slot_addr(std::uint32_t index) const noexcept {
    BX_ASSERT(index < depth_);
    return ring_.addr() + std::uint64_t{index} * kSqeSize;
  }

  // --- host-side cursor management (call with the lock held) ---

  [[nodiscard]] std::uint32_t tail() const noexcept { return tail_; }

  /// Slots available before the ring is full, honoring the "one slot gap"
  /// full/empty disambiguation rule.
  [[nodiscard]] std::uint32_t free_slots() const noexcept;

  /// Occupied slots from the host's view: pushed entries the device has
  /// not yet consumed per the cached head (SQEs + inline chunks). Feeds
  /// the per-queue telemetry gauge.
  [[nodiscard]] std::uint32_t occupancy() const noexcept {
    return (tail_ + depth_ - head_cache_) % depth_;
  }

  /// Writes one 64-byte slot at the tail and advances it.
  void push_slot(ConstByteSpan slot64) noexcept;

  /// Host learns the device's SQ head from CQE.sq_head.
  void note_head(std::uint32_t head) noexcept { head_cache_ = head; }
  [[nodiscard]] std::uint32_t head_cache() const noexcept {
    return head_cache_;
  }

  /// Lifetime count of slots pushed (SQEs + inline chunks); the trace
  /// invariant tests reconcile this against doorbell-published entries.
  [[nodiscard]] std::uint64_t slots_pushed() const noexcept {
    return slots_pushed_;
  }

  /// The per-SQ driver spinlock (std::mutex here; the kernel uses a
  /// spinlock, but the mutual-exclusion semantics are what matters).
  [[nodiscard]] std::mutex& lock() noexcept { return mutex_; }

  // --- exclusive ownership (reactor model) ---
  //
  // In the sharded reactor model exactly one thread owns a queue pair, so
  // the per-submit mutex above is pure overhead on the owner path. A
  // claimed ring skips the lock in the driver's submit/reap paths; the
  // contract is that while claimed, *all* cursor-touching calls on this
  // ring (push_slot/free_slots/tail/note_head/occupancy) come from the
  // owning thread. Cross-core submitters must hand their requests to the
  // owner via the reactor's MPSC ring instead of touching the SQ.
  // Claim/release are release/acquire so cursor state written before a
  // hand-over is visible to the thread that observes the new mode.
  void set_exclusive_owner(bool owner) noexcept {
    exclusive_owner_.store(owner, std::memory_order_release);
  }
  [[nodiscard]] bool exclusive_owner() const noexcept {
    return exclusive_owner_.load(std::memory_order_acquire);
  }

 private:
  DmaMemory& memory_;
  std::uint16_t qid_;
  std::uint32_t depth_;
  DmaBuffer ring_;
  std::mutex mutex_;
  std::atomic<bool> exclusive_owner_{false};
  std::uint32_t tail_ = 0;        // host writes here
  std::uint32_t head_cache_ = 0;  // last head reported by the device
  std::uint64_t slots_pushed_ = 0;
};

class CqRing {
 public:
  CqRing(DmaMemory& memory, std::uint16_t qid, std::uint32_t depth);

  [[nodiscard]] std::uint16_t qid() const noexcept { return qid_; }
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t base_addr() const noexcept {
    return ring_.addr();
  }
  [[nodiscard]] std::uint64_t slot_addr(std::uint32_t index) const noexcept {
    BX_ASSERT(index < depth_);
    return ring_.addr() + std::uint64_t{index} * kCqeSize;
  }

  // --- host-side consumption ---

  /// Non-destructively checks whether a new CQE is available at the head
  /// (phase tag matches the expected phase).
  [[nodiscard]] bool peek(CompletionQueueEntry& out) noexcept;

  /// Consumes the CQE at the head; caller must have seen peek() == true.
  CompletionQueueEntry pop() noexcept;

  [[nodiscard]] std::uint32_t head() const noexcept { return head_; }

  /// Lifetime count of CQEs consumed; reconciled against kCqDoorbell
  /// trace events by the invariant tests.
  [[nodiscard]] std::uint64_t cqes_popped() const noexcept {
    return cqes_popped_;
  }

 private:
  DmaMemory& memory_;
  std::uint16_t qid_;
  std::uint32_t depth_;
  DmaBuffer ring_;
  std::uint32_t head_ = 0;
  bool expected_phase_ = true;  // device starts writing with phase=1
  std::uint64_t cqes_popped_ = 0;
};

}  // namespace bx::nvme
