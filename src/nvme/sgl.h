// Scatter-Gather List descriptors (NVMe 1.4 §4.4), implemented for the §5
// discussion experiments: a single Data Block descriptor can reference a
// small contiguous region (fine-grained writes) and a Bit Bucket descriptor
// can absorb unwanted read data.
//
// Only the subset the discussion needs is modeled: Data Block, Bit Bucket,
// and (Last) Segment descriptors for chains longer than one descriptor.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hostmem/dma_memory.h"

namespace bx::nvme {

enum class SglDescriptorType : std::uint8_t {
  kDataBlock = 0x0,
  kBitBucket = 0x1,
  kSegment = 0x2,
  kLastSegment = 0x3,
};

/// One 16-byte SGL descriptor: address (8B), length (4B), rsvd (3B),
/// type in the high nibble of the final byte.
struct SglDescriptor {
  std::uint64_t address = 0;
  std::uint32_t length = 0;

  SglDescriptorType type = SglDescriptorType::kDataBlock;

  /// Packs into the SQE dptr pair (dptr1 = address, dptr2 = length + type).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> pack() const noexcept;
  static SglDescriptor unpack(std::uint64_t dptr1,
                              std::uint64_t dptr2) noexcept;
};

/// Builds the in-SQE descriptor for a contiguous buffer: a single Data
/// Block descriptor — the exact case §5 contrasts with ByteExpress.
StatusOr<SglDescriptor> build_sgl_data_block(std::uint64_t addr,
                                             std::uint64_t length);

/// A bit-bucket descriptor for discarding `length` bytes of read data.
SglDescriptor make_bit_bucket(std::uint32_t length) noexcept;

}  // namespace bx::nvme
