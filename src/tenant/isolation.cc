#include "tenant/isolation.h"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/testbed.h"
#include "tenant/scheduler.h"

namespace bx::tenant {

namespace {

constexpr std::uint16_t kVictimId = 1;
constexpr std::uint16_t kAggressorId = 2;
constexpr std::uint16_t kVictimQid = 1;
constexpr std::uint16_t kAggressorQid = 2;

/// One planned submission of the seeded schedule.
struct PlannedOp {
  std::uint16_t tenant = 0;
  std::uint32_t len = 0;
};

core::TestbedConfig make_config(const IsolationOptions& options) {
  // Two hardware queues (one per tenant) under WRR arbitration, with the
  // fault-sweep recovery clocks: device-side TTLs expire well before the
  // driver deadline so every storm fault resolves within the run.
  core::TestbedConfig config;
  config.driver.io_queue_count = 2;
  config.driver.io_queue_depth = options.queue_depth;
  config.driver.command_timeout_ns = 2'000'000;
  config.driver.poll_idle_advance_ns = 1'000;
  config.driver.max_retries = 6;
  config.driver.retry_backoff_base_ns = 10'000;
  config.driver.retry_backoff_cap_ns = 200'000;
  config.driver.degrade_threshold = 4;
  config.driver.degrade_reprobe_ns = 1'000'000;
  config.controller.deferred_ttl_ns = 500'000;
  config.controller.reassembly.ttl_ns = 500'000;
  config.controller.wrr_arbitration = true;
  config.controller.urgent_burst_limit = options.urgent_burst_limit;
  config.ssd.geometry.channels = 2;
  config.ssd.geometry.ways = 2;
  config.ssd.geometry.blocks_per_die = 64;
  config.ssd.geometry.pages_per_block = 64;
  config.ssd.geometry.page_size = 4096;
  config.ssd.nand_timing.read_ns = 5'000;
  config.ssd.nand_timing.program_ns = 20'000;
  config.ssd.nand_timing.erase_ns = 100'000;
  config.ssd.nand_timing.channel_transfer_ns = 500;
  config.trace_enabled = false;
  config.faults = options.storm;
  // The storm is the aggressor's problem by construction: confine the
  // command-fault plane to its hardware queue (see fault/fault.h).
  config.faults.qid_filter = kAggressorQid;
  config.fault_seed = options.seed ^ 0xfa017;
  return config;
}

SchedulerConfig make_tenants(const IsolationOptions& options) {
  TenantConfig victim;
  victim.id = kVictimId;
  victim.name = "victim";
  victim.hw_qid = kVictimQid;
  victim.weight = options.victim_weight;
  victim.urgent = options.victim_urgent;

  TenantConfig aggressor;
  aggressor.id = kAggressorId;
  aggressor.name = "aggressor";
  aggressor.hw_qid = kAggressorQid;
  aggressor.weight = options.aggressor_weight;
  aggressor.rate_bytes_per_sec = options.aggressor_rate_bytes_per_sec;
  aggressor.burst_bytes = options.aggressor_burst_bytes;
  aggressor.inline_slot_budget = options.aggressor_inline_slot_budget;
  aggressor.max_payload_bytes = options.aggressor_payload_cap;

  SchedulerConfig sched;
  sched.tenants = {victim, aggressor};
  sched.vqueue_depth = options.vqueue_depth;
  return sched;
}

struct PhaseOutcome {
  Status status = Status::ok();
  std::string failure;
  IsolationTenantStats victim;
  IsolationTenantStats aggressor;
  std::uint64_t io_grants_total = 0;
  double saturated_share = 0.0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_recovered = 0;
  std::uint64_t faults_degraded = 0;
  std::uint64_t faults_failed = 0;
  std::uint64_t inline_read_completions = 0;
  std::uint64_t inline_read_crc_errors = 0;
};

void fill_payload(Rng& rng, ByteVec& payload, std::uint32_t len) {
  payload.resize(len);
  const auto fill = static_cast<Byte>(rng.next());
  for (std::uint32_t b = 0; b < len; ++b) {
    payload[b] = static_cast<Byte>(fill + b * 7);
  }
}

/// Runs one phase (the aggressor submits only when `with_aggressor`) on
/// a freshly built testbed. The Rng consumption is identical in both
/// phases for the victim's draws: the schedule plans every op first.
PhaseOutcome run_phase(const IsolationOptions& options, bool with_aggressor) {
  PhaseOutcome out;
  const auto fail = [&out](std::string message) {
    if (!out.status.is_ok()) return;  // keep the first violation
    out.status = internal_error(message);
    out.failure = std::move(message);
  };

  core::Testbed bed(make_config(options));
  TenantScheduler sched(bed, make_tenants(options));
  Rng rng(options.seed);
  ByteVec payload;

  std::uint64_t attempted[2] = {0, 0};  // [victim, aggressor]

  // Read-mode destination buffers. VirtualQueue does not own read
  // buffers, so each one must stay at a stable address until its
  // completion drains; a deque never relocates elements and is cleared
  // only after drain_all() returns.
  std::deque<ByteVec> read_buffers;

  // Submits one victim op: a write of the prepared payload, or — in
  // reader-victim mode — an inline read of `len` bytes.
  const auto submit_victim = [&](std::uint32_t len) {
    VirtualQueue& vq = sched.vqueue(kVictimId);
    if (!options.victim_reads) {
      return vq.submit_write(ConstByteSpan(payload), options.method);
    }
    read_buffers.emplace_back(len);
    driver::IoRequest request;
    request.opcode = nvme::IoOpcode::kVendorRawRead;
    request.read_buffer = ByteSpan(read_buffers.back());
    request.method = options.method;
    return vq.submit(std::move(request));
  };

  if (options.victim_reads) {
    // Seed the device scratch so victim reads have data to return. The
    // write is untenanted (bypasses the gate) and happens before the
    // probe, so it perturbs neither phase's schedule nor its counters.
    Rng seed_rng(options.seed ^ 0x5eed);
    fill_payload(seed_rng, payload,
                 std::max(options.victim_payload_bytes,
                          options.probe_victim_payload_bytes));
    const auto seeded =
        bed.raw_write(ConstByteSpan(payload), options.method, kVictimQid);
    if (!seeded.is_ok()) {
      fail("reader-victim scratch seed failed: " +
           seeded.status().to_string());
    }
  }

  // Retires every in-flight command of both tenants, recording latencies
  // only when `record` is set (the probe is excluded from percentiles).
  // Only the aggressor may resolve to a surfaced kResourceExhausted (a
  // retry starved by its own budgets); anything else is a violation.
  const auto drain_all = [&](bool record) {
    for (std::uint16_t tenant : {kVictimId, kAggressorId}) {
      VirtualQueue& vq = sched.vqueue(tenant);
      std::vector<driver::Completion> completions;
      while (vq.in_flight() > 0) {
        const Status drained = vq.drain(&completions);
        if (drained.is_ok()) break;
        // Keep draining — the remaining commands still owe their gate
        // releases.
        if (tenant == kVictimId ||
            drained.code() != StatusCode::kResourceExhausted) {
          fail("tenant " + std::to_string(tenant) +
               " drain failed: " + drained.to_string());
          break;
        }
      }
      if (record) {
        for (const driver::Completion& completion : completions) {
          sched.record(tenant, completion);
        }
      }
    }
  };

  // ---- saturation probe (see IsolationOptions) -------------------------
  double saturated_share = 0.0;
  if (options.probe_polls > 0 && options.probe_ops > 0) {
    Rng probe_rng(options.seed ^ 0x9906);
    for (std::uint32_t i = 0;
         i < options.probe_ops && out.status.is_ok(); ++i) {
      fill_payload(probe_rng, payload, options.probe_victim_payload_bytes);
      ++attempted[kVictimId - 1];
      auto victim_op = submit_victim(options.probe_victim_payload_bytes);
      if (!victim_op.is_ok()) {
        fail("victim probe submit failed: " + victim_op.status().to_string());
      }
      // Drawn in both phases (identical victim schedule), submitted only
      // when the aggressor is present.
      fill_payload(probe_rng, payload, options.probe_aggressor_payload_bytes);
      if (!with_aggressor) continue;
      ++attempted[kAggressorId - 1];
      auto aggressor_op = sched.vqueue(kAggressorId).submit_write(
          ConstByteSpan(payload), options.method);
      if (!aggressor_op.is_ok() &&
          aggressor_op.status().code() != StatusCode::kResourceExhausted) {
        fail("aggressor probe submit failed: " +
             aggressor_op.status().to_string());
      }
    }
    // Step the arbiter while both backlogs are provably non-empty: the
    // grant split over these polls IS the enforced WRR share. Direct
    // poll_once() is safe here — the phase is single-threaded, so no
    // other thread contends for the firmware.
    const std::uint64_t victim_before = bed.controller().grants(kVictimQid);
    const std::uint64_t aggressor_before =
        bed.controller().grants(kAggressorQid);
    for (std::uint32_t poll = 0; poll < options.probe_polls; ++poll) {
      (void)bed.controller().poll_once();
    }
    const std::uint64_t victim_grants =
        bed.controller().grants(kVictimQid) - victim_before;
    const std::uint64_t aggressor_grants =
        bed.controller().grants(kAggressorQid) - aggressor_before;
    if (victim_grants + aggressor_grants > 0) {
      saturated_share = static_cast<double>(victim_grants) /
                        static_cast<double>(victim_grants + aggressor_grants);
    }
    drain_all(/*record=*/false);
    read_buffers.clear();
  }
  for (std::uint32_t round = 0;
       round < options.rounds && out.status.is_ok(); ++round) {
    // Plan the round: victim ops, then the aggressor flood, then one
    // deterministic shuffle so submission order interleaves.
    std::vector<PlannedOp> ops;
    for (std::uint32_t i = 0; i < options.victim_ops_per_round; ++i) {
      ops.push_back({kVictimId, options.victim_payload_bytes});
    }
    for (std::uint32_t i = 0; i < options.aggressor_ops_per_round; ++i) {
      const bool oversized = rng.next_bool(options.oversize_probability);
      const std::uint32_t len =
          oversized ? options.oversize_bytes
                    : static_cast<std::uint32_t>(rng.next_in(
                          64, std::max<std::uint32_t>(
                                  64, options.aggressor_payload_bytes)));
      // Planned (and drawn) in both phases so the victim's schedule is
      // identical; only submitted in the contended one.
      ops.push_back({kAggressorId, len});
    }
    for (std::size_t i = ops.size(); i > 1; --i) {  // Fisher-Yates
      std::swap(ops[i - 1], ops[rng.next_below(i)]);
    }

    for (const PlannedOp& op : ops) {
      if (op.tenant == kAggressorId && !with_aggressor) continue;
      fill_payload(rng, payload, op.len);
      ++attempted[op.tenant - 1];
      auto vcid = op.tenant == kVictimId
                      ? submit_victim(op.len)
                      : sched.vqueue(op.tenant).submit_write(
                            ConstByteSpan(payload), options.method);
      if (vcid.is_ok()) continue;
      if (vcid.status().code() != StatusCode::kResourceExhausted) {
        fail("tenant " + std::to_string(op.tenant) +
             " submit failed unexpectedly: " + vcid.status().to_string());
        break;
      }
      // Gate or virtual-queue rejection: the defense working as designed.
    }

    // Reap the round in submission order, victim first (the controller
    // keeps arbitrating over both backlogs regardless of which handle
    // is being waited on).
    drain_all(/*record=*/true);
    read_buffers.clear();
  }

  bed.telemetry().flush(bed.clock().now());

  // ---- per-tenant statistics ------------------------------------------
  const auto collect = [&](std::uint16_t tenant) {
    IsolationTenantStats stats;
    stats.tenant = tenant;
    stats.ops_attempted = attempted[tenant - 1];
    stats.rejected_local = sched.vqueue(tenant).rejected_local();
    const AdmissionController::TenantCounters* counters =
        sched.admission().counters(tenant);
    stats.admitted = counters->admitted.value();
    stats.rejected = counters->rejected.value();
    stats.completions = counters->completions.value();
    stats.payload_bytes = counters->payload_bytes.value();
    stats.errors = sched.errors(tenant);
    stats.hw_grants = sched.hw_grants(tenant);
    const LatencyHistogram latency = sched.latency(tenant);
    stats.p50_ns = latency.percentile(50.0);
    stats.p99_ns = latency.percentile(99.0);
    stats.mean_ns = static_cast<std::uint64_t>(latency.mean());
    return stats;
  };
  out.victim = collect(kVictimId);
  out.aggressor = collect(kAggressorId);
  out.io_grants_total = out.victim.hw_grants + out.aggressor.hw_grants;
  out.saturated_share = saturated_share;

  const obs::MetricsRegistry& metrics = bed.metrics();
  out.faults_injected = metrics.counter_value("faults.injected");
  out.faults_recovered = metrics.counter_value("faults.recovered");
  out.faults_degraded = metrics.counter_value("faults.degraded");
  out.faults_failed = metrics.counter_value("faults.failed");
  out.inline_read_completions =
      metrics.counter_value("driver.inline_read.completions");
  out.inline_read_crc_errors =
      metrics.counter_value("driver.inline_read.crc_errors");

  // ---- structural invariants ------------------------------------------
  for (const IsolationTenantStats* stats : {&out.victim, &out.aggressor}) {
    const std::string who = "tenant " + std::to_string(stats->tenant);
    // 1. Admission conservation. Without a storm every gate consult is
    // one harness op that passed the virtual queue; retries under a
    // storm add consults, never remove them.
    const std::uint64_t reached_gate =
        stats->ops_attempted - stats->rejected_local;
    if (options.storm.any()) {
      if (stats->admitted + stats->rejected < reached_gate) {
        fail(who + ": admitted + rejected < ops that reached the gate");
      }
    } else if (stats->admitted + stats->rejected != reached_gate) {
      fail(who + ": admitted " + std::to_string(stats->admitted) +
           " + rejected " + std::to_string(stats->rejected) +
           " != " + std::to_string(reached_gate) + " gate consults");
    }
    // 2. Gate pairing: every admission released exactly once as a
    // completion, and no inline-slot budget leaked.
    if (stats->completions != stats->admitted) {
      fail(who + ": completions " + std::to_string(stats->completions) +
           " != admitted " + std::to_string(stats->admitted));
    }
    const AdmissionController::TenantCounters* counters =
        sched.admission().counters(stats->tenant);
    if (counters->inflight_slots.value() != 0) {
      fail(who + ": inline-slot gauge leaked " +
           std::to_string(counters->inflight_slots.value()));
    }
  }
  // 3. Fault confinement: the storm is filtered to the aggressor's
  // queue, so the victim must retire every command successfully.
  if (out.victim.errors != 0) {
    fail("victim recorded " + std::to_string(out.victim.errors) +
         " error completions despite the storm being confined to the "
         "aggressor queue");
  }
  // 4. Fault accounting (docs/FAULTS.md equality).
  if (out.faults_injected != out.faults_recovered + out.faults_degraded +
                                 out.faults_failed) {
    fail("fault accounting leak: injected " +
         std::to_string(out.faults_injected) + " != recovered " +
         std::to_string(out.faults_recovered) + " + degraded " +
         std::to_string(out.faults_degraded) + " + failed " +
         std::to_string(out.faults_failed));
  }
  // 5. Telemetry reconciliation: per-tenant window deltas telescope, so
  // after flush() they sum exactly to the cumulative counters.
  std::uint64_t window_admitted[2] = {0, 0};
  std::uint64_t window_completions[2] = {0, 0};
  for (const obs::TelemetrySample& sample : bed.telemetry().samples()) {
    for (const obs::TenantWindow& window : sample.tenants) {
      if (window.tenant < 1 || window.tenant > 2) continue;
      window_admitted[window.tenant - 1] += window.admitted;
      window_completions[window.tenant - 1] += window.completions;
    }
  }
  for (const IsolationTenantStats* stats : {&out.victim, &out.aggressor}) {
    if (window_admitted[stats->tenant - 1] != stats->admitted ||
        window_completions[stats->tenant - 1] != stats->completions) {
      fail("tenant " + std::to_string(stats->tenant) +
           ": telemetry windows do not reconcile with admission counters");
    }
  }
  return out;
}

}  // namespace

IsolationResult run_isolation_sweep(const IsolationOptions& options) {
  IsolationResult result;
  if (options.rounds == 0 || options.victim_ops_per_round == 0 ||
      options.victim_payload_bytes == 0) {
    result.status = invalid_argument("bad isolation options");
    result.failure = "bad isolation options";
    return result;
  }
  if (options.victim_weight < 1 || options.aggressor_weight < 1) {
    result.status = invalid_argument("WRR weights must be >= 1");
    result.failure = "WRR weights must be >= 1";
    return result;
  }

  PhaseOutcome solo = run_phase(options, /*with_aggressor=*/false);
  if (!solo.status.is_ok()) {
    result.status = solo.status;
    result.failure = "solo phase: " + solo.failure;
    return result;
  }
  PhaseOutcome contended = run_phase(options, /*with_aggressor=*/true);
  if (!contended.status.is_ok()) {
    result.status = contended.status;
    result.failure = "contended phase: " + contended.failure;
    return result;
  }

  result.victim_solo = solo.victim;
  result.victim = contended.victim;
  result.aggressor = contended.aggressor;
  result.faults_injected = contended.faults_injected;
  result.faults_recovered = contended.faults_recovered;
  result.faults_degraded = contended.faults_degraded;
  result.faults_failed = contended.faults_failed;
  result.inline_read_completions = contended.inline_read_completions;
  result.inline_read_crc_errors = contended.inline_read_crc_errors;
  if (solo.victim.p99_ns > 0) {
    result.p99_interference = static_cast<double>(contended.victim.p99_ns) /
                              static_cast<double>(solo.victim.p99_ns);
  }
  if (contended.io_grants_total > 0) {
    result.victim_grant_share =
        static_cast<double>(contended.victim.hw_grants) /
        static_cast<double>(contended.io_grants_total);
  }
  result.victim_saturated_share = contended.saturated_share;
  result.expected_grant_share =
      static_cast<double>(options.victim_weight) /
      static_cast<double>(options.victim_weight + options.aggressor_weight);
  return result;
}

}  // namespace bx::tenant
