// Per-tenant virtual submission/completion queue.
//
// A VirtualQueue is the tenant-facing half of queue virtualization: the
// tenant submits into a bounded virtual SQ and reaps from a virtual CQ,
// never naming a hardware queue. The queue owns every in-flight payload
// (the driver requires spans to stay valid until completion), tags each
// request with the tenant id (IoRequest::tenant — the key the
// SubmissionGate, trace events and per-tenant telemetry all attribute
// by), and forwards onto the ONE hardware queue the TenantScheduler
// mapped this tenant to. Virtual CIDs are allocated monotonically and
// never recycle, so a tenant can hold completions out of order without
// ambiguity even though the hardware CID space recycles underneath.
//
// Depth is the tenant's virtual ring bound: submissions beyond `depth`
// in-flight commands fail with kResourceExhausted locally, before the
// driver or the gate is consulted — a flooding tenant first fills its
// OWN virtual queue, not the shared rings.
//
// Threading: one VirtualQueue belongs to one tenant driver thread
// (the same rule as a reactor-owned hardware queue). Different tenants'
// VirtualQueues may run on different threads concurrently — the driver
// and gate below are thread-safe.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "driver/nvme_driver.h"
#include "driver/request.h"

namespace bx::tenant {

class VirtualQueue {
 public:
  /// `depth` bounds in-flight commands on this virtual queue (>= 1).
  VirtualQueue(driver::NvmeDriver& driver, std::uint16_t tenant,
               std::uint16_t hw_qid, std::uint32_t depth);
  VirtualQueue(const VirtualQueue&) = delete;
  VirtualQueue& operator=(const VirtualQueue&) = delete;

  /// Copies `payload` into queue-owned storage, tags the tenant and
  /// submits a vendor raw write on the mapped hardware queue. Returns
  /// the virtual CID. Fails with kResourceExhausted when the virtual
  /// queue is full, and surfaces gate rejections (also
  /// kResourceExhausted) unchanged — both count in `rejected_local` /
  /// the tenant's gate counters respectively.
  StatusOr<std::uint64_t> submit_write(ConstByteSpan payload,
                                       driver::TransferMethod method);

  /// As submit_write but for a fully-specified request (KV/CSD/read
  /// commands). Write payloads are still copied and owned; the caller
  /// keeps ownership of read buffers (valid until the command retires —
  /// retries resubmit the stored request).
  StatusOr<std::uint64_t> submit(driver::IoRequest request);

  /// Waits for one virtual CID (any order) and retires it, running the
  /// driver's retry/degradation tail (NvmeDriver::wait_resolved) so
  /// injected faults on tenant commands classify into the
  /// faults.{recovered,degraded,failed} trio exactly as execute()'s do.
  StatusOr<driver::Completion> wait(std::uint64_t vcid);

  /// Retires every in-flight command in submission order, appending each
  /// completion to `out` (when non-null). Returns the first wait error.
  Status drain(std::vector<driver::Completion>* out = nullptr);

  [[nodiscard]] std::uint16_t tenant() const noexcept { return tenant_; }
  [[nodiscard]] std::uint16_t hw_qid() const noexcept { return hw_qid_; }
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return inflight_.size();
  }
  /// Commands accepted into the virtual queue (whether or not they have
  /// completed yet).
  [[nodiscard]] std::uint64_t submitted() const noexcept { return submitted_; }
  /// Submissions refused because the virtual queue was full (local
  /// backpressure — these never reached the driver or the gate).
  [[nodiscard]] std::uint64_t rejected_local() const noexcept {
    return rejected_local_;
  }

 private:
  struct Slot {
    std::uint64_t vcid = 0;
    driver::Submitted handle{};
    /// Kept for the retry tail (wait_resolved resubmits it); its
    /// write_data span points into `payload`.
    driver::IoRequest request{};
    ByteVec payload;  // owned until completion
  };

  driver::NvmeDriver& driver_;
  std::uint16_t tenant_;
  std::uint16_t hw_qid_;
  std::uint32_t depth_;
  std::uint64_t next_vcid_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_local_ = 0;
  std::deque<Slot> inflight_;
};

}  // namespace bx::tenant
