// Multi-tenant queue virtualization: tenant identity, rate limiting and
// admission control (see docs/TENANCY.md).
//
// A tenant is a logical client of the testbed that owns a virtual SQ/CQ
// pair (tenant/vqueue.h) mapped onto one hardware queue, an arbitration
// class (weight + urgent flag, enforced by the controller's WRR poll
// loop), and an admission budget enforced host-side before any ring slot
// is claimed. AdmissionController is the production implementation of
// driver::SubmissionGate: one instance guards the whole driver and holds
// the per-tenant budgets —
//
//   * a token-bucket byte-rate limit refilled on SIMULATED time (so a
//     seeded run admits and rejects identically on every machine),
//   * an inline-chunk-slot budget: the number of 64-byte SQ slots a
//     tenant's in-flight ByteExpress/OOO payloads may occupy at once
//     (the resource the paper's inline transfer actually contends on),
//   * a per-command payload cap (the oversized-payload adversary is
//     rejected here, before it can monopolize ring space).
//
// Every admit()/release() outcome is counted in component-owned counters
// (admitted / rejected / payload_bytes / completions / inflight_slots)
// that the TenantScheduler registers with obs::Telemetry for per-window
// sampling and with the MetricsRegistry for bxmon and the exporters.
//
// Locking: the controller's mutex is the INNERMOST lock in the system
// (driver/submission_gate.h contract) — admit() and release() take it
// and call nothing outside this class.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "driver/submission_gate.h"
#include "obs/metrics.h"

namespace bx::tenant {

/// Static description of one tenant, fixed at scheduler assembly.
struct TenantConfig {
  /// Tenant identity carried in IoRequest::tenant. Must be non-zero
  /// (0 means untenanted and bypasses admission).
  std::uint16_t id = 1;
  /// Metric name fragment; defaults to "t<id>" when empty.
  std::string name;
  /// Hardware queue this tenant's virtual queue maps onto.
  std::uint16_t hw_qid = 1;
  /// WRR weight of the hardware queue in the controller's arbiter
  /// (Controller::set_queue_arbitration). Must be >= 1.
  std::uint32_t weight = 1;
  /// Urgent arbitration class: preempts normal-class queues up to the
  /// controller's urgent_burst_limit.
  bool urgent = false;
  /// Token-bucket byte rate in payload bytes per simulated second
  /// (0 = unlimited).
  std::uint64_t rate_bytes_per_sec = 0;
  /// Token-bucket burst capacity in bytes (the bucket starts full).
  std::uint64_t burst_bytes = 64 * 1024;
  /// Max inline-chunk SQ slots this tenant's in-flight commands may hold
  /// at once (0 = unlimited). PRP/SGL commands occupy zero such slots.
  std::uint32_t inline_slot_budget = 0;
  /// Per-command payload cap in bytes (0 = unlimited); larger requests
  /// are rejected at admission with kResourceExhausted.
  std::uint32_t max_payload_bytes = 0;

  [[nodiscard]] std::string metric_name() const {
    return name.empty() ? "t" + std::to_string(id) : name;
  }
};

/// Deterministic token bucket refilled on simulated time. Starts full.
/// Integer arithmetic throughout (tokens are kept scaled by 1e9 so one
/// byte-per-second refills exactly one scaled token per nanosecond) —
/// two runs with the same submission times make identical decisions.
class TokenBucket {
 public:
  /// rate 0 disables the limit: try_consume() always succeeds.
  TokenBucket(std::uint64_t rate_bytes_per_sec, std::uint64_t burst_bytes);

  /// Refills for the time since the last call, then atomically consumes
  /// `bytes` if available. `now` must be monotone across calls.
  [[nodiscard]] bool try_consume(std::uint64_t bytes, Nanoseconds now);

  /// Whole bytes available after refilling to `now` (consumes nothing).
  [[nodiscard]] std::uint64_t available(Nanoseconds now);

  [[nodiscard]] std::uint64_t rate() const noexcept { return rate_; }
  [[nodiscard]] std::uint64_t burst() const noexcept { return burst_; }

 private:
  void refill(Nanoseconds now);

  std::uint64_t rate_ = 0;   // bytes per simulated second
  std::uint64_t burst_ = 0;  // bytes
  /// Current tokens, scaled by kScale (bytes * 1e9).
  unsigned __int128 tokens_scaled_ = 0;
  Nanoseconds last_ns_ = 0;
};

/// The production driver::SubmissionGate: per-tenant token-bucket rate
/// limiting plus the inline-chunk-slot budget. Thread-safe; see header
/// comment for the locking contract.
class AdmissionController final : public driver::SubmissionGate {
 public:
  /// Component-owned service counters, one set per tenant. Address-stable
  /// for the controller's lifetime: Telemetry and the MetricsRegistry
  /// hold pointers into this struct.
  struct TenantCounters {
    obs::Counter admitted;
    obs::Counter rejected;
    obs::Counter payload_bytes;
    obs::Counter completions;
    /// In-flight inline SQ slots currently charged against the budget.
    obs::Gauge inflight_slots;
  };

  explicit AdmissionController(const std::vector<TenantConfig>& tenants);

  // driver::SubmissionGate -------------------------------------------------

  /// Untenanted requests (tenant 0) are admitted without accounting;
  /// unknown tenant ids are rejected with kFailedPrecondition (a wiring
  /// bug, not backpressure). Checks, in order: payload cap, inline-slot
  /// budget, byte rate — so an oversized or over-budget command never
  /// consumes rate tokens. Rejections are kResourceExhausted and count
  /// in `rejected`; admissions charge every budget atomically.
  [[nodiscard]] Status admit(const driver::IoRequest& request,
                             std::uint16_t qid, std::uint32_t inline_slots,
                             Nanoseconds now) override;

  void release(std::uint16_t tenant, std::uint32_t inline_slots,
               bool completed) noexcept override;

  // Introspection ----------------------------------------------------------

  /// Non-consuming preview of admit() for schedulers that want to back
  /// off instead of burning a rejection (refills the bucket but takes
  /// no tokens).
  [[nodiscard]] bool would_admit(std::uint16_t tenant,
                                 std::uint64_t payload_bytes,
                                 std::uint32_t inline_slots, Nanoseconds now);

  /// The tenant's counters, or nullptr for an unknown id. The pointer is
  /// stable for the controller's lifetime.
  [[nodiscard]] const TenantCounters* counters(std::uint16_t tenant) const;

  /// The tenant's static config, or nullptr for an unknown id.
  [[nodiscard]] const TenantConfig* config(std::uint16_t tenant) const;

  /// Tenant ids in registration order (deterministic iteration for
  /// reports and metric registration).
  [[nodiscard]] const std::vector<std::uint16_t>& tenant_ids() const noexcept {
    return ids_;
  }

  /// In-flight inline slots currently charged to `tenant` (0 if unknown).
  [[nodiscard]] std::uint32_t inflight_slots(std::uint16_t tenant) const;

 private:
  struct State {
    TenantConfig config;
    TokenBucket bucket;
    std::uint32_t inflight_slots = 0;
    /// unique_ptr so counter addresses survive map rehashes.
    std::unique_ptr<TenantCounters> counters;
  };

  /// Innermost lock (see driver/submission_gate.h).
  mutable std::mutex mutex_;
  std::unordered_map<std::uint16_t, State> states_;
  std::vector<std::uint16_t> ids_;
};

}  // namespace bx::tenant
