// TenantScheduler: assembles the multi-tenant view of one Testbed.
//
// Construction wires the whole tenancy stack in one place:
//   * builds the AdmissionController from the tenant configs and
//     attaches it as the driver's SubmissionGate,
//   * maps each tenant onto its hardware queue and programs the
//     controller's WRR arbiter (weight + urgent class) for that queue —
//     the testbed must have been built with
//     controller.wrr_arbitration = true for the weights to matter,
//   * registers every tenant's service counters with obs::Telemetry
//     (per-window TenantWindow sampling) and publishes them in the
//     MetricsRegistry as tenant.<name>.{admitted,rejected,payload_bytes,
//     completions,inflight_slots}, plus a registry-owned per-tenant
//     latency histogram tenant.<name>.latency_ns and error counter
//     tenant.<name>.errors,
//   * creates one VirtualQueue per tenant.
//
// After construction the per-tenant data path is: tenant thread ->
// VirtualQueue::submit (tags tenant id) -> driver submit path ->
// AdmissionController::admit (budgets) -> hardware queue -> controller
// WRR arbiter (weights) -> completion -> record() (latency histogram +
// fault accounting). See docs/TENANCY.md for the full picture.
//
// Lifetime: the scheduler must outlive every in-flight tenant command
// (it owns the gate the driver points at); it detaches the gate on
// destruction. One scheduler per testbed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/testbed.h"
#include "tenant/tenant.h"
#include "tenant/vqueue.h"

namespace bx::tenant {

struct SchedulerConfig {
  std::vector<TenantConfig> tenants;
  /// Virtual SQ depth per tenant (bounds in-flight commands locally).
  std::uint32_t vqueue_depth = 64;
};

class TenantScheduler {
 public:
  /// Wires tenants into `bed` (see header comment). Aborts on config
  /// errors (duplicate ids, hw_qid out of range) — a scheduler that
  /// failed to assemble is a programming error, same rule as Testbed.
  TenantScheduler(core::Testbed& bed, SchedulerConfig config);
  ~TenantScheduler();
  TenantScheduler(const TenantScheduler&) = delete;
  TenantScheduler& operator=(const TenantScheduler&) = delete;

  [[nodiscard]] VirtualQueue& vqueue(std::uint16_t tenant);
  [[nodiscard]] AdmissionController& admission() noexcept { return gate_; }
  [[nodiscard]] const std::vector<std::uint16_t>& tenant_ids() const noexcept {
    return gate_.tenant_ids();
  }

  /// Records one resolved completion into the tenant's latency histogram
  /// and error counter (per-tenant fault accounting: a completion whose
  /// device status is an error counts in tenant.<name>.errors).
  void record(std::uint16_t tenant, const driver::Completion& completion);

  /// Convenience synchronous write: virtual-queue submit, wait, record.
  /// Gate and virtual-queue rejections surface as the submit status and
  /// are NOT recorded as completions.
  StatusOr<driver::Completion> execute_write(std::uint16_t tenant,
                                             ConstByteSpan payload,
                                             driver::TransferMethod method);

  /// Non-consuming admission preview for `payload_bytes` sent with
  /// `method` (computes the inline-slot charge the gate would apply).
  [[nodiscard]] bool would_admit(std::uint16_t tenant,
                                 std::uint64_t payload_bytes,
                                 driver::TransferMethod method);

  /// Exact snapshot of the tenant's recorded latencies.
  [[nodiscard]] LatencyHistogram latency(std::uint16_t tenant) const;
  /// Error completions recorded for the tenant.
  [[nodiscard]] std::uint64_t errors(std::uint16_t tenant) const;
  /// Controller grants observed on the tenant's hardware queue (the WRR
  /// conformance figure; see Controller::grants()).
  [[nodiscard]] std::uint64_t hw_grants(std::uint16_t tenant) const;

 private:
  struct PerTenant {
    TenantConfig config;
    std::unique_ptr<VirtualQueue> vqueue;
    obs::Histogram* latency = nullptr;  // registry-owned
    obs::Counter* errors = nullptr;     // registry-owned
  };

  [[nodiscard]] PerTenant& entry(std::uint16_t tenant);
  [[nodiscard]] const PerTenant& entry(std::uint16_t tenant) const;

  core::Testbed& bed_;
  AdmissionController gate_;
  std::map<std::uint16_t, PerTenant> tenants_;
};

}  // namespace bx::tenant
