#include "tenant/tenant.h"

#include <utility>

#include "common/status.h"

namespace bx::tenant {

namespace {

/// Token scale: one byte of budget is kScale scaled tokens, so a rate of
/// R bytes/second refills exactly R scaled tokens per nanosecond.
constexpr unsigned __int128 kScale = 1'000'000'000;

}  // namespace

TokenBucket::TokenBucket(std::uint64_t rate_bytes_per_sec,
                         std::uint64_t burst_bytes)
    : rate_(rate_bytes_per_sec), burst_(burst_bytes) {
  tokens_scaled_ = static_cast<unsigned __int128>(burst_) * kScale;
}

void TokenBucket::refill(Nanoseconds now) {
  if (now <= last_ns_) return;  // monotone guard; sim-time never regresses
  const auto elapsed = static_cast<unsigned __int128>(now - last_ns_);
  last_ns_ = now;
  const unsigned __int128 cap = static_cast<unsigned __int128>(burst_) * kScale;
  tokens_scaled_ += elapsed * rate_;
  if (tokens_scaled_ > cap) tokens_scaled_ = cap;
}

bool TokenBucket::try_consume(std::uint64_t bytes, Nanoseconds now) {
  if (rate_ == 0) return true;  // unlimited
  refill(now);
  const unsigned __int128 need = static_cast<unsigned __int128>(bytes) * kScale;
  if (tokens_scaled_ < need) return false;
  tokens_scaled_ -= need;
  return true;
}

std::uint64_t TokenBucket::available(Nanoseconds now) {
  if (rate_ == 0) return UINT64_MAX;
  refill(now);
  return static_cast<std::uint64_t>(tokens_scaled_ / kScale);
}

AdmissionController::AdmissionController(
    const std::vector<TenantConfig>& tenants) {
  for (const TenantConfig& config : tenants) {
    BX_ASSERT_MSG(config.id != 0, "tenant id 0 is reserved for untenanted");
    BX_ASSERT_MSG(config.weight >= 1, "tenant WRR weight must be >= 1");
    BX_ASSERT_MSG(states_.find(config.id) == states_.end(),
                  "duplicate tenant id");
    State state{config,
                TokenBucket(config.rate_bytes_per_sec, config.burst_bytes),
                0,
                std::make_unique<TenantCounters>()};
    states_.emplace(config.id, std::move(state));
    ids_.push_back(config.id);
  }
}

Status AdmissionController::admit(const driver::IoRequest& request,
                                  std::uint16_t /*qid*/,
                                  std::uint32_t inline_slots, Nanoseconds now) {
  if (request.tenant == 0) return Status::ok();  // untenanted bypasses
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = states_.find(request.tenant);
  if (it == states_.end()) {
    // A tenant id the scheduler never registered is a wiring bug, not
    // backpressure — do not count it as a rejection.
    return failed_precondition("unknown tenant " +
                               std::to_string(request.tenant));
  }
  State& state = it->second;
  const std::uint64_t payload =
      request.write_data.size() + request.read_buffer.size();
  if (state.config.max_payload_bytes != 0 &&
      payload > state.config.max_payload_bytes) {
    state.counters->rejected.increment();
    return resource_exhausted("tenant " + std::to_string(request.tenant) +
                              " payload " + std::to_string(payload) +
                              " exceeds per-command cap " +
                              std::to_string(state.config.max_payload_bytes));
  }
  if (state.config.inline_slot_budget != 0 &&
      state.inflight_slots + inline_slots > state.config.inline_slot_budget) {
    state.counters->rejected.increment();
    return resource_exhausted("tenant " + std::to_string(request.tenant) +
                              " inline-slot budget exhausted (" +
                              std::to_string(state.inflight_slots) + "+" +
                              std::to_string(inline_slots) + " > " +
                              std::to_string(state.config.inline_slot_budget) +
                              ")");
  }
  if (!state.bucket.try_consume(payload, now)) {
    state.counters->rejected.increment();
    return resource_exhausted("tenant " + std::to_string(request.tenant) +
                              " rate limit exceeded");
  }
  state.inflight_slots += inline_slots;
  state.counters->inflight_slots.set(state.inflight_slots);
  state.counters->admitted.increment();
  state.counters->payload_bytes.add(payload);
  return Status::ok();
}

void AdmissionController::release(std::uint16_t tenant,
                                  std::uint32_t inline_slots,
                                  bool completed) noexcept {
  if (tenant == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = states_.find(tenant);
  if (it == states_.end()) return;
  State& state = it->second;
  BX_ASSERT_MSG(state.inflight_slots >= inline_slots,
                "gate release exceeds charged inline slots");
  state.inflight_slots -= inline_slots;
  state.counters->inflight_slots.set(state.inflight_slots);
  if (completed) state.counters->completions.increment();
}

bool AdmissionController::would_admit(std::uint16_t tenant,
                                      std::uint64_t payload_bytes,
                                      std::uint32_t inline_slots,
                                      Nanoseconds now) {
  if (tenant == 0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = states_.find(tenant);
  if (it == states_.end()) return false;
  State& state = it->second;
  if (state.config.max_payload_bytes != 0 &&
      payload_bytes > state.config.max_payload_bytes) {
    return false;
  }
  if (state.config.inline_slot_budget != 0 &&
      state.inflight_slots + inline_slots > state.config.inline_slot_budget) {
    return false;
  }
  return state.bucket.available(now) >= payload_bytes;
}

const AdmissionController::TenantCounters* AdmissionController::counters(
    std::uint16_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = states_.find(tenant);
  return it == states_.end() ? nullptr : it->second.counters.get();
}

const TenantConfig* AdmissionController::config(std::uint16_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = states_.find(tenant);
  return it == states_.end() ? nullptr : &it->second.config;
}

std::uint32_t AdmissionController::inflight_slots(std::uint16_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = states_.find(tenant);
  return it == states_.end() ? 0 : it->second.inflight_slots;
}

}  // namespace bx::tenant
