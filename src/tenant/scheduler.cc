#include "tenant/scheduler.h"

#include <string>
#include <utility>

#include "nvme/inline_wire.h"

namespace bx::tenant {

namespace {

/// Inline-chunk SQ slots the gate will charge for `method` — mirrors the
/// driver's charge so would_admit() previews the real decision.
std::uint32_t inline_slots_for(driver::TransferMethod method,
                               std::uint64_t payload_len) {
  switch (method) {
    case driver::TransferMethod::kByteExpress:
      return nvme::inline_chunk::raw_chunks_for(payload_len);
    case driver::TransferMethod::kByteExpressOoo:
      return nvme::inline_chunk::ooo_chunks_for(payload_len);
    default:
      return 0;
  }
}

}  // namespace

TenantScheduler::TenantScheduler(core::Testbed& bed, SchedulerConfig config)
    : bed_(bed), gate_(config.tenants) {
  bed_.driver().set_submission_gate(&gate_);
  for (const TenantConfig& tenant : config.tenants) {
    BX_ASSERT_MSG(tenant.hw_qid >= 1 &&
                      tenant.hw_qid <= bed_.driver().io_queue_count(),
                  "tenant hardware queue out of range");
    bed_.controller().set_queue_arbitration(tenant.hw_qid, tenant.weight,
                                            tenant.urgent);
    const AdmissionController::TenantCounters* counters =
        gate_.counters(tenant.id);
    bed_.telemetry().register_tenant(
        tenant.id, &counters->admitted, &counters->rejected,
        &counters->payload_bytes, &counters->completions,
        &counters->inflight_slots);
    const std::string prefix = "tenant." + tenant.metric_name() + ".";
    obs::MetricsRegistry& metrics = bed_.metrics();
    metrics.expose_counter(prefix + "admitted", &counters->admitted);
    metrics.expose_counter(prefix + "rejected", &counters->rejected);
    metrics.expose_counter(prefix + "payload_bytes", &counters->payload_bytes);
    metrics.expose_counter(prefix + "completions", &counters->completions);
    metrics.expose_gauge(prefix + "inflight_slots", &counters->inflight_slots);

    PerTenant per;
    per.config = tenant;
    per.vqueue = std::make_unique<VirtualQueue>(
        bed_.driver(), tenant.id, tenant.hw_qid, config.vqueue_depth);
    per.latency = &metrics.histogram(prefix + "latency_ns");
    per.errors = &metrics.counter(prefix + "errors");
    tenants_.emplace(tenant.id, std::move(per));
  }
}

TenantScheduler::~TenantScheduler() {
  // The scheduler owns the gate; commands must have drained by now
  // (set_submission_gate is assembly-time only).
  bed_.driver().set_submission_gate(nullptr);
}

TenantScheduler::PerTenant& TenantScheduler::entry(std::uint16_t tenant) {
  auto it = tenants_.find(tenant);
  BX_ASSERT_MSG(it != tenants_.end(), "unknown tenant");
  return it->second;
}

const TenantScheduler::PerTenant& TenantScheduler::entry(
    std::uint16_t tenant) const {
  auto it = tenants_.find(tenant);
  BX_ASSERT_MSG(it != tenants_.end(), "unknown tenant");
  return it->second;
}

VirtualQueue& TenantScheduler::vqueue(std::uint16_t tenant) {
  return *entry(tenant).vqueue;
}

void TenantScheduler::record(std::uint16_t tenant,
                             const driver::Completion& completion) {
  PerTenant& per = entry(tenant);
  per.latency->record(static_cast<std::uint64_t>(completion.latency_ns));
  if (!completion.ok()) per.errors->increment();
}

StatusOr<driver::Completion> TenantScheduler::execute_write(
    std::uint16_t tenant, ConstByteSpan payload,
    driver::TransferMethod method) {
  VirtualQueue& vq = vqueue(tenant);
  auto vcid = vq.submit_write(payload, method);
  if (!vcid.is_ok()) return vcid.status();
  auto completion = vq.wait(vcid.value());
  if (!completion.is_ok()) return completion.status();
  record(tenant, completion.value());
  return completion;
}

bool TenantScheduler::would_admit(std::uint16_t tenant,
                                  std::uint64_t payload_bytes,
                                  driver::TransferMethod method) {
  return gate_.would_admit(tenant, payload_bytes,
                           inline_slots_for(method, payload_bytes),
                           bed_.clock().now());
}

LatencyHistogram TenantScheduler::latency(std::uint16_t tenant) const {
  return entry(tenant).latency->snapshot();
}

std::uint64_t TenantScheduler::errors(std::uint16_t tenant) const {
  return entry(tenant).errors->value();
}

std::uint64_t TenantScheduler::hw_grants(std::uint16_t tenant) const {
  return bed_.controller().grants(entry(tenant).config.hw_qid);
}

}  // namespace bx::tenant
