#include "tenant/vqueue.h"

#include <algorithm>
#include <utility>

namespace bx::tenant {

VirtualQueue::VirtualQueue(driver::NvmeDriver& driver, std::uint16_t tenant,
                           std::uint16_t hw_qid, std::uint32_t depth)
    : driver_(driver), tenant_(tenant), hw_qid_(hw_qid), depth_(depth) {
  BX_ASSERT_MSG(depth_ >= 1, "virtual queue depth must be >= 1");
  BX_ASSERT_MSG(tenant_ != 0, "virtual queues belong to real tenants");
}

StatusOr<std::uint64_t> VirtualQueue::submit_write(
    ConstByteSpan payload, driver::TransferMethod method) {
  driver::IoRequest request;
  request.opcode = nvme::IoOpcode::kVendorRawWrite;
  request.write_data = payload;
  request.method = method;
  return submit(std::move(request));
}

StatusOr<std::uint64_t> VirtualQueue::submit(driver::IoRequest request) {
  if (inflight_.size() >= depth_) {
    ++rejected_local_;
    return resource_exhausted("virtual queue of tenant " +
                              std::to_string(tenant_) + " is full (depth " +
                              std::to_string(depth_) + ")");
  }
  Slot slot;
  slot.vcid = next_vcid_++;
  if (!request.write_data.empty()) {
    // Own the payload until completion; the driver keeps the span.
    slot.payload.assign(request.write_data.begin(), request.write_data.end());
    request.write_data = ConstByteSpan(slot.payload);
  }
  request.tenant = tenant_;
  auto submitted = driver_.submit(request, hw_qid_);
  if (!submitted.is_ok()) return submitted.status();
  slot.handle = submitted.value();
  slot.request = request;
  ++submitted_;
  inflight_.push_back(std::move(slot));
  // The span must reference the slot's own storage (the deque never
  // invalidates other elements, and this slot just moved in).
  Slot& stored = inflight_.back();
  if (!stored.payload.empty()) {
    stored.request.write_data = ConstByteSpan(stored.payload);
  }
  return stored.vcid;
}

StatusOr<driver::Completion> VirtualQueue::wait(std::uint64_t vcid) {
  auto it = std::find_if(inflight_.begin(), inflight_.end(),
                         [vcid](const Slot& s) { return s.vcid == vcid; });
  if (it == inflight_.end()) {
    return not_found("virtual CID " + std::to_string(vcid) +
                     " is not in flight on tenant " + std::to_string(tenant_));
  }
  auto completion = driver_.wait_resolved(it->request, it->handle);
  inflight_.erase(it);
  return completion;
}

Status VirtualQueue::drain(std::vector<driver::Completion>* out) {
  while (!inflight_.empty()) {
    auto completion = driver_.wait_resolved(inflight_.front().request,
                                            inflight_.front().handle);
    inflight_.pop_front();
    if (!completion.is_ok()) return completion.status();
    if (out != nullptr) out->push_back(completion.value());
  }
  return Status::ok();
}

}  // namespace bx::tenant
