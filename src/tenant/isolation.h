// Adversarial tenant-isolation harness.
//
// run_isolation_sweep() measures how much a deliberately misbehaving
// tenant can hurt a well-behaved one when both are virtualized onto the
// same testbed. Two tenants share one controller:
//
//   * the VICTIM: modest fixed-size inline writes on its own hardware
//     queue, no budgets exceeded — the tenant whose latency the QoS
//     stack promises to protect;
//   * the AGGRESSOR: a submission flood of randomized writes on a second
//     hardware queue, a fraction of them oversized past its per-command
//     admission cap, optionally under a seeded command-fault storm
//     confined to its queue (FaultPolicy::qid_filter), with an
//     inline-slot budget and token-bucket rate limit standing between
//     it and the shared rings.
//
// The sweep runs the same seeded victim schedule twice — solo (the
// aggressor registered but silent) and contended — on two freshly built
// testbeds with identical configuration, then reports per-tenant
// latency percentiles, admission counters, controller WRR grants and
// the p99 interference ratio (contended p99 / solo p99). The isolation
// acceptance bounds (p99 within 2x solo, throughput within 20% of the
// WRR share) are asserted by tests/tenant_isolation_test.cc; the
// harness itself enforces only structural invariants:
//
//   1. Admission conservation — per tenant, gate admissions + gate
//      rejections account for every request that reached the gate, and
//      every admitted command completes (completions == admitted).
//   2. No budget leaks — both tenants' in-flight inline-slot gauges
//      read zero once the sweep drains.
//   3. Fault confinement — with the storm aimed at the aggressor's
//      queue, the victim sees zero error completions.
//   4. Fault accounting — faults.injected == faults.recovered +
//      faults.degraded + faults.failed (the docs/FAULTS.md equality).
//   5. Telemetry reconciliation — per-tenant window deltas sum exactly
//      to the cumulative admission counters after flush().
//
// Everything is driven from one OS thread with one seeded Rng, so a
// fixed seed reproduces byte-identical results (asserted across seeds
// by the determinism test).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "driver/request.h"
#include "fault/fault.h"

namespace bx::tenant {

struct IsolationOptions {
  std::uint64_t seed = 0x7e2a47;
  std::uint32_t rounds = 12;
  /// Victim ops submitted per round (fixed-size writes).
  std::uint32_t victim_ops_per_round = 8;
  /// Aggressor ops submitted per round (the submission flood).
  std::uint32_t aggressor_ops_per_round = 32;
  std::uint32_t victim_payload_bytes = 512;
  /// Aggressor in-cap payloads are drawn uniformly in [64, this].
  std::uint32_t aggressor_payload_bytes = 1024;
  /// Probability an aggressor op is oversized (oversize_bytes, above the
  /// admission cap — rejected at the gate, never touching the rings).
  double oversize_probability = 0.25;
  std::uint32_t oversize_bytes = 8192;
  driver::TransferMethod method = driver::TransferMethod::kByteExpress;
  /// When set, every victim op (probe and rounds) is an inline READ of
  /// victim_payload_bytes instead of a write — the ByteExpress-R
  /// reader-tenant scenario: the victim's payloads travel device-to-host
  /// through the CRC-protected completion ring while the aggressor
  /// floods the host-to-device inline path. The device scratch is
  /// seeded once, untenanted, before the probe.
  bool victim_reads = false;

  // Queueing geometry.
  std::uint32_t queue_depth = 256;
  std::uint32_t vqueue_depth = 64;

  // Arbitration (controller WRR; wrr_arbitration is always on here).
  std::uint32_t victim_weight = 3;
  std::uint32_t aggressor_weight = 1;
  bool victim_urgent = false;
  std::uint32_t urgent_burst_limit = 8;

  // Aggressor budgets (the defenses under test).
  std::uint64_t aggressor_rate_bytes_per_sec = 0;  // 0 = unlimited
  std::uint64_t aggressor_burst_bytes = 256 * 1024;
  std::uint32_t aggressor_inline_slot_budget = 64;
  std::uint32_t aggressor_payload_cap = 4096;

  /// Command-fault storm; qid_filter is forced to the aggressor's
  /// hardware queue regardless of what the caller sets. All-zero means
  /// no injector (flood-only adversary).
  fault::FaultPolicy storm{};

  // Saturation probe (0 polls disables): before the rounds, both tenants
  // stack probe_ops each and the harness steps the controller poll loop
  // exactly probe_polls times while both backlogs are non-empty — the
  // only regime in which WRR shares are observable (each queue's total
  // grants otherwise just equal its op count). The grant split over
  // those polls is reported as victim_saturated_share. Probe completions
  // are not recorded into the latency histograms, and the victim's probe
  // runs in the solo phase too so both phases see identical schedules.
  std::uint32_t probe_ops = 12;
  std::uint32_t probe_polls = 12;
  std::uint32_t probe_victim_payload_bytes = 512;
  std::uint32_t probe_aggressor_payload_bytes = 256;
};

struct IsolationTenantStats {
  std::uint16_t tenant = 0;
  /// Ops the harness attempted on the tenant's virtual queue.
  std::uint64_t ops_attempted = 0;
  /// Refused locally because the virtual queue was full.
  std::uint64_t rejected_local = 0;
  // Gate counters (cumulative over the phase).
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completions = 0;
  std::uint64_t payload_bytes = 0;
  /// Error completions recorded (per-tenant fault accounting).
  std::uint64_t errors = 0;
  /// Controller scheduling grants on the tenant's hardware queue.
  std::uint64_t hw_grants = 0;
  // Latency of recorded completions, simulated nanoseconds.
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t mean_ns = 0;
};

struct IsolationResult {
  /// First structural-invariant violation (internal error), or OK.
  Status status = Status::ok();
  std::string failure;

  /// Victim statistics from the solo phase (aggressor silent).
  IsolationTenantStats victim_solo;
  /// Contended-phase statistics.
  IsolationTenantStats victim;
  IsolationTenantStats aggressor;

  /// Contended victim p99 divided by solo victim p99 (1.0 = unharmed).
  double p99_interference = 0.0;
  /// Victim share of I/O-queue grants in the contended phase, and the
  /// share its WRR weight promises while both queues are backlogged.
  double victim_grant_share = 0.0;
  double expected_grant_share = 0.0;
  /// Victim share of the probe_polls grants taken while BOTH queues were
  /// provably backlogged (0 when the probe is disabled) — the figure the
  /// 20%-of-WRR-share acceptance bound applies to.
  double victim_saturated_share = 0.0;

  // Contended-phase fault accounting (all zero without a storm).
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_recovered = 0;
  std::uint64_t faults_degraded = 0;
  std::uint64_t faults_failed = 0;

  // Contended-phase read-path counters (driver.inline_read.*); only the
  // victim issues reads, so with victim_reads these attribute to it.
  std::uint64_t inline_read_completions = 0;
  std::uint64_t inline_read_crc_errors = 0;

  [[nodiscard]] bool ok() const noexcept { return status.is_ok(); }
};

/// Builds the two testbeds and runs both phases. Never throws; invariant
/// violations come back in the result.
IsolationResult run_isolation_sweep(const IsolationOptions& options);

}  // namespace bx::tenant
