#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace bx::obs {

namespace {

/// Maps a dotted metric name onto the Prometheus charset with the project
/// prefix: "driver.submit_cost_ns" -> "bx_driver_submit_cost_ns".
std::string sanitize(std::string_view name) {
  std::string out = "bx_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void emit_header(std::string& out, const std::string& name,
                 const char* type, const std::string& help) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " ";
  out += type;
  out += "\n";
}

void emit_u64(std::string& out, const std::string& name,
              const std::string& labels, std::uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %llu\n",
                static_cast<unsigned long long>(value));
  out += name + labels + buffer;
}

void emit_i64(std::string& out, const std::string& name,
              const std::string& labels, std::int64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %lld\n",
                static_cast<long long>(value));
  out += name + labels + buffer;
}

void emit_f64(std::string& out, const std::string& name,
              const std::string& labels, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %.6f\n", value);
  out += name + labels + buffer;
}

}  // namespace

std::string to_prometheus_text(const MetricsSnapshot& snapshot,
                               const Telemetry* telemetry) {
  std::string out;

  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = sanitize(name) + "_total";
    emit_header(out, prom, "counter", "Counter " + name);
    emit_u64(out, prom, "", value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = sanitize(name);
    emit_header(out, prom, "gauge", "Gauge " + name);
    emit_i64(out, prom, "", value);
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string prom = sanitize(name);
    emit_header(out, prom, "summary", "Latency histogram " + name);
    emit_u64(out, prom, "{quantile=\"0.5\"}", histogram.percentile(50));
    emit_u64(out, prom, "{quantile=\"0.9\"}", histogram.percentile(90));
    emit_u64(out, prom, "{quantile=\"0.99\"}", histogram.percentile(99));
    emit_u64(out, prom, "{quantile=\"1\"}", histogram.max());
    emit_u64(out, prom + "_sum", "",
             static_cast<std::uint64_t>(
                 std::llround(histogram.mean() * double(histogram.count()))));
    emit_u64(out, prom + "_count", "", histogram.count());
  }

  if (telemetry == nullptr) return out;

  const std::vector<TelemetrySample> samples = telemetry->samples();
  const auto totals = Telemetry::sum_flows(samples);

  emit_header(out, "bx_telemetry_windows_total", "counter",
              "Telemetry windows closed");
  emit_u64(out, "bx_telemetry_windows_total", "",
           telemetry->windows_closed());
  emit_header(out, "bx_telemetry_windows_dropped_total", "counter",
              "Telemetry windows dropped by the ring bound");
  emit_u64(out, "bx_telemetry_windows_dropped_total", "",
           telemetry->windows_dropped());

  const auto label = [](LinkDir dir, TlpKind kind) {
    return std::string("{direction=\"") + std::string(link_dir_name(dir)) +
           "\",tlp=\"" + std::string(tlp_kind_name(kind)) + "\"}";
  };
  emit_header(out, "bx_link_tlps_total", "counter",
              "TLPs over the retained telemetry windows");
  for (std::size_t dir = 0; dir < kLinkDirs; ++dir) {
    for (std::size_t kind = 0; kind < kTlpKinds; ++kind) {
      emit_u64(out, "bx_link_tlps_total",
               label(LinkDir(dir), TlpKind(kind)), totals[dir][kind].tlps);
    }
  }
  emit_header(out, "bx_link_data_bytes_total", "counter",
              "TLP data bytes over the retained telemetry windows");
  for (std::size_t dir = 0; dir < kLinkDirs; ++dir) {
    for (std::size_t kind = 0; kind < kTlpKinds; ++kind) {
      emit_u64(out, "bx_link_data_bytes_total",
               label(LinkDir(dir), TlpKind(kind)),
               totals[dir][kind].data_bytes);
    }
  }
  emit_header(out, "bx_link_wire_bytes_total", "counter",
              "TLP wire bytes over the retained telemetry windows");
  for (std::size_t dir = 0; dir < kLinkDirs; ++dir) {
    for (std::size_t kind = 0; kind < kTlpKinds; ++kind) {
      emit_u64(out, "bx_link_wire_bytes_total",
               label(LinkDir(dir), TlpKind(kind)),
               totals[dir][kind].wire_bytes);
    }
  }

  std::uint64_t payload = 0;
  for (const TelemetrySample& sample : samples) {
    payload += sample.payload_bytes;
  }
  emit_header(out, "bx_payload_bytes_total", "counter",
              "Application payload bytes over the retained windows");
  emit_u64(out, "bx_payload_bytes_total", "", payload);

  if (!samples.empty()) {
    const TelemetrySample& last = samples.back();
    emit_header(out, "bx_link_utilization_ratio", "gauge",
                "Link utilization in the last telemetry window");
    for (std::size_t dir = 0; dir < kLinkDirs; ++dir) {
      emit_f64(out, "bx_link_utilization_ratio",
               "{direction=\"" + std::string(link_dir_name(LinkDir(dir))) +
                   "\"}",
               last.utilization(LinkDir(dir), telemetry->link_rate()));
    }
    emit_header(out, "bx_queue_sq_occupancy", "gauge",
                "SQ occupancy at the last window close");
    for (const QueueWindow& qw : last.queues) {
      emit_i64(out, "bx_queue_sq_occupancy",
               "{queue=\"" + std::to_string(qw.qid) + "\"}",
               qw.sq_occupancy);
    }
    emit_header(out, "bx_queue_inflight", "gauge",
                "In-flight commands at the last window close");
    for (const QueueWindow& qw : last.queues) {
      emit_i64(out, "bx_queue_inflight",
               "{queue=\"" + std::to_string(qw.qid) + "\"}", qw.inflight);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exposition lint
// ---------------------------------------------------------------------------

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Family a sample belongs to: summaries/histograms attach _sum/_count
/// (and _bucket) samples to their base family name.
std::string_view family_of(std::string_view name,
                           const std::set<std::string, std::less<>>& typed) {
  for (const std::string_view suffix : {"_sum", "_count", "_bucket"}) {
    if (name.size() > suffix.size() && name.ends_with(suffix)) {
      const std::string_view base =
          name.substr(0, name.size() - suffix.size());
      if (typed.count(base) != 0) return base;
    }
  }
  return name;
}

}  // namespace

PrometheusLint lint_prometheus(std::string_view text) {
  PrometheusLint result;
  const auto fail = [&result](std::string message) {
    if (result.error.empty()) result.error = std::move(message);
    return result;
  };

  std::set<std::string, std::less<>> helped;
  std::set<std::string, std::less<>> typed;
  std::set<std::string> seen_samples;

  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, (eol == std::string_view::npos ? text.size() : eol) -
                             pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;
    const std::string where = " (line " + std::to_string(line_no) + ")";

    if (line.starts_with("# HELP ")) {
      const std::string_view rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      const std::string_view name =
          space == std::string_view::npos ? rest : rest.substr(0, space);
      if (!valid_metric_name(name)) return fail("bad HELP name" + where);
      if (!helped.insert(std::string(name)).second) {
        return fail("duplicate HELP for " + std::string(name) + where);
      }
      if (typed.count(name) != 0) {
        return fail("HELP after TYPE for " + std::string(name) + where);
      }
      continue;
    }
    if (line.starts_with("# TYPE ")) {
      const std::string_view rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) {
        return fail("TYPE without a type" + where);
      }
      const std::string_view name = rest.substr(0, space);
      const std::string_view type = rest.substr(space + 1);
      if (!valid_metric_name(name)) return fail("bad TYPE name" + where);
      if (type != "counter" && type != "gauge" && type != "summary" &&
          type != "histogram" && type != "untyped") {
        return fail("unknown type '" + std::string(type) + "'" + where);
      }
      if (!typed.insert(std::string(name)).second) {
        return fail("duplicate TYPE for " + std::string(name) + where);
      }
      ++result.families;
      continue;
    }
    if (line.starts_with("#")) continue;  // plain comment

    // Sample line: name[{labels}] value [timestamp]
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' &&
           line[name_end] != ' ') {
      ++name_end;
    }
    const std::string_view name = line.substr(0, name_end);
    if (!valid_metric_name(name)) {
      return fail("bad sample name '" + std::string(name) + "'" + where);
    }
    std::size_t cursor = name_end;
    std::string labels;
    if (cursor < line.size() && line[cursor] == '{') {
      const std::size_t close = line.find('}', cursor);
      if (close == std::string_view::npos) {
        return fail("unterminated label set" + where);
      }
      labels = std::string(line.substr(cursor, close - cursor + 1));
      // Each label must be name="value".
      std::string_view body = line.substr(cursor + 1, close - cursor - 1);
      while (!body.empty()) {
        const std::size_t eq = body.find('=');
        if (eq == std::string_view::npos || eq == 0) {
          return fail("malformed label pair" + where);
        }
        if (!valid_metric_name(body.substr(0, eq))) {
          return fail("bad label name" + where);
        }
        if (eq + 1 >= body.size() || body[eq + 1] != '"') {
          return fail("unquoted label value" + where);
        }
        const std::size_t value_end = body.find('"', eq + 2);
        if (value_end == std::string_view::npos) {
          return fail("unterminated label value" + where);
        }
        body.remove_prefix(value_end + 1);
        if (!body.empty()) {
          if (body.front() != ',') return fail("malformed label set" + where);
          body.remove_prefix(1);
        }
      }
      cursor = close + 1;
    }
    if (cursor >= line.size() || line[cursor] != ' ') {
      return fail("sample without value" + where);
    }
    const std::string value_text(line.substr(cursor + 1));
    char* end = nullptr;
    (void)std::strtod(value_text.c_str(), &end);
    bool numeric = end != value_text.c_str();
    if (numeric) {
      // Optional timestamp after the value; nothing else.
      while (*end == ' ' || (*end >= '0' && *end <= '9') || *end == '-') {
        ++end;
      }
      numeric = *end == '\0' || *end == '\r';
    }
    if (!numeric && value_text != "+Inf" && value_text != "-Inf" &&
        value_text != "NaN") {
      return fail("non-numeric sample value" + where);
    }
    if (typed.count(family_of(name, typed)) == 0) {
      return fail("sample '" + std::string(name) +
                  "' without a preceding TYPE" + where);
    }
    if (!seen_samples.insert(std::string(name) + labels).second) {
      return fail("duplicate sample " + std::string(name) + labels + where);
    }
    ++result.samples;
  }
  return result;
}

}  // namespace bx::obs
