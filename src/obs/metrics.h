// Named metrics registry: counters, gauges and latency histograms with a
// deterministic JSON export.
//
// Two ownership modes:
//   * registry-owned — counter()/gauge()/histogram() create (or look up)
//     a metric and hand back a reference that stays valid for the
//     registry's lifetime, so hot paths cache the pointer once and then
//     update lock-free;
//   * borrowed — expose_counter() publishes a component-owned Counter
//     (e.g. the controller's transfer-path counters, which also feed the
//     0xC0 log page) under a name, without copying or double counting.
//
// Counters and gauges are relaxed atomics: safe from any thread, exact
// once the system quiesces — the same contract as pcie::TrafficCounter.
// Histograms take a mutex per record; keep them off per-TLP paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace bx::obs {

class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  void record(std::uint64_t value) noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.record(value);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_.count();
  }
  [[nodiscard]] LatencyHistogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_;
  }
  void reset() noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.reset();
  }

 private:
  mutable std::mutex mutex_;
  LatencyHistogram histogram_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Creates or looks up a registry-owned metric. References stay valid
  /// for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Publishes a component-owned counter under `name`. The component must
  /// outlive any read of the registry (in the Testbed both live and die
  /// together).
  void expose_counter(std::string_view name, const Counter* counter);

  /// Value of a named counter (owned or exposed); 0 if unknown.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Deterministic JSON object, keys sorted: counters and gauges as
  /// numbers, histograms as {count, mean_ns, p50_ns, p99_ns, max_ns}.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, const Counter*, std::less<>> exposed_counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The `bx::obs::to_json` export entry point for metrics.
[[nodiscard]] std::string to_json(const MetricsRegistry& registry);

}  // namespace bx::obs
