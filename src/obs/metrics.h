// Named metrics registry: counters, gauges and latency histograms with a
// deterministic JSON export.
//
// Two ownership modes:
//   * registry-owned — counter()/gauge()/histogram() create (or look up)
//     a metric and hand back a reference that stays valid for the
//     registry's lifetime, so hot paths cache the pointer once and then
//     update lock-free;
//   * borrowed — expose_counter() publishes a component-owned Counter
//     (e.g. the controller's transfer-path counters, which also feed the
//     0xC0 log page) under a name, without copying or double counting.
//
// Counters and gauges are relaxed atomics: safe from any thread, exact
// once the system quiesces — the same contract as pcie::TrafficCounter.
// Histograms are lock-striped (one mutex + LatencyHistogram per stripe,
// hashed by thread), so concurrent recorders on hot per-command paths
// contend only when they share a stripe; snapshot() merges the stripes
// into one exact LatencyHistogram.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace bx::obs {

class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  void record(std::uint64_t value) noexcept {
    Stripe& stripe = stripes_[stripe_index()];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.histogram.record(value);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mutex);
      total += stripe.histogram.count();
    }
    return total;
  }
  /// Exact merge of all stripes — identical distribution to the former
  /// single-mutex histogram (stripes share the bucket layout).
  [[nodiscard]] LatencyHistogram snapshot() const {
    LatencyHistogram merged;
    for (const Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mutex);
      merged.merge(stripe.histogram);
    }
    return merged;
  }
  void reset() noexcept {
    for (Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mutex);
      stripe.histogram.reset();
    }
  }

 private:
  static constexpr std::size_t kStripes = 8;
  struct alignas(64) Stripe {  // one cache line each, no false sharing
    mutable std::mutex mutex;
    LatencyHistogram histogram;
  };

  [[nodiscard]] static std::size_t stripe_index() noexcept {
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
           kStripes;
  }

  std::array<Stripe, kStripes> stripes_;
};

/// A name-sorted point-in-time copy of a registry's metrics (owned and
/// exposed merged) — the input to the Prometheus exporter and anything
/// else that needs to iterate without holding registry locks.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, LatencyHistogram>> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Creates or looks up a registry-owned metric. References stay valid
  /// for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Publishes a component-owned counter under `name`. The component must
  /// outlive any read of the registry (in the Testbed both live and die
  /// together).
  void expose_counter(std::string_view name, const Counter* counter);

  /// Publishes a component-owned gauge under `name` — the Gauge analog of
  /// expose_counter, used for occupancy/backlog gauges that live in the
  /// driver's queue pairs and the controller. Re-exposing a name replaces
  /// the pointer (queue pairs are rebuilt by init_io_queues()).
  void expose_gauge(std::string_view name, const Gauge* gauge);

  /// Value of a named counter (owned or exposed); 0 if unknown.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Value of a named gauge (owned or exposed); 0 if unknown.
  [[nodiscard]] std::int64_t gauge_value(std::string_view name) const;

  /// Name-sorted copy of every metric (owned and exposed merged).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Deterministic JSON object, keys sorted: counters and gauges as
  /// numbers, histograms as {count, mean_ns, p50_ns, p99_ns, max_ns}.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, const Counter*, std::less<>> exposed_counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, const Gauge*, std::less<>> exposed_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The `bx::obs::to_json` export entry point for metrics.
[[nodiscard]] std::string to_json(const MetricsRegistry& registry);

}  // namespace bx::obs
