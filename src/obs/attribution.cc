#include "obs/attribution.h"

#include <cstdio>

namespace bx::obs {

std::string_view wait_segment_name(WaitSegment segment) noexcept {
  switch (segment) {
    case WaitSegment::kGateWait: return "gate";
    case WaitSegment::kRingWait: return "ring";
    case WaitSegment::kSlotWait: return "slot";
    case WaitSegment::kBellHold: return "bell";
    case WaitSegment::kArbWait: return "arb";
    case WaitSegment::kService: return "service";
    case WaitSegment::kReassembly: return "reassembly";
    case WaitSegment::kDelivery: return "delivery";
    case WaitSegment::kCount_: break;
  }
  return "?";
}

LatencyBreakdown make_additive(
    std::uint64_t total_ns,
    const std::array<std::uint64_t, kWaitSegmentCount>& want) noexcept {
  LatencyBreakdown breakdown;
  std::uint64_t remaining = total_ns;
  const auto grant = [&remaining](std::uint64_t wanted) noexcept {
    const std::uint64_t granted = wanted < remaining ? wanted : remaining;
    remaining -= granted;
    return granted;
  };
  // Waits first (they are measured directly and cannot legitimately
  // overshoot), then delivery and reassembly, then service — the one
  // segment an unrelated aux command's events could inflate.
  for (const WaitSegment segment :
       {WaitSegment::kGateWait, WaitSegment::kRingWait, WaitSegment::kSlotWait,
        WaitSegment::kBellHold, WaitSegment::kDelivery,
        WaitSegment::kReassembly, WaitSegment::kService}) {
    breakdown.of(segment) = grant(want[static_cast<std::size_t>(segment)]);
  }
  breakdown.of(WaitSegment::kArbWait) = remaining;
  return breakdown;
}

std::string check_breakdown_additivity(const LatencyBreakdown& breakdown,
                                       std::uint64_t latency_ns) {
  const std::uint64_t total = breakdown.total_ns();
  if (total == latency_ns) return {};
  char message[160];
  std::snprintf(message, sizeof(message),
                "breakdown residual: segments sum to %llu ns but latency_ns "
                "is %llu (residual %lld)",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(latency_ns),
                static_cast<long long>(latency_ns) -
                    static_cast<long long>(total));
  return message;
}

std::string to_json(const LatencyBreakdown& breakdown) {
  std::string out = "{";
  for (std::size_t i = 0; i < kWaitSegmentCount; ++i) {
    char entry[64];
    std::snprintf(
        entry, sizeof(entry), "%s\"%s\": %llu", i == 0 ? "" : ", ",
        std::string(wait_segment_name(static_cast<WaitSegment>(i))).c_str(),
        static_cast<unsigned long long>(breakdown.ns[i]));
    out += entry;
  }
  out += "}";
  return out;
}

}  // namespace bx::obs
