// PCM-style time-series telemetry for the simulated PCIe link.
//
// The paper's headline evidence is an Intel PCM trace: PCIe MWr/MRd/Cpl
// traffic sampled over time while a workload runs. Telemetry reproduces
// that view for the modeled link: simulated time is divided into fixed
// windows (Config::window_ns, default 10 us) and at every window boundary
// the sampler snapshots
//   * per-direction, per-TLP-kind link counters (TLPs, data bytes, wire
//     bytes) as deltas over the window,
//   * the payload bytes the host handed to the driver (for the
//     amplification ratio),
//   * controller stage-duration deltas (same taxonomy as TraceStage),
//   * per-queue gauges (SQ occupancy, in-flight commands) and doorbell
//     deltas, plus the controller's inline-chunk backlog gauge,
// into an in-memory ring of TelemetrySample records.
//
// Hot-path hooks (on_tlps / on_payload / on_stage / on_*_doorbell) only
// bump relaxed cumulative atomics — no locks, no allocation — so they are
// safe from any submitter thread and cheap enough for per-TLP call sites.
// Window rolling happens in advance_to(now): a relaxed fast path returns
// while `now` is inside the current window; the slow path takes a mutex
// and closes every expired window by delta-ing the cumulative counters
// against the previous snapshot. Because every sample is a telescoping
// difference of the same cumulative counters, the sum of per-window
// deltas equals the counter totals *exactly* once flush() has closed the
// final partial window (tests/traffic_conservation_test.cc asserts this
// against pcie::TrafficCounter for every transfer method).
//
// Layering: bx_obs sits below bx_pcie, so this header cannot name
// pcie::Direction. LinkDir mirrors its numeric values (kDownstream=0,
// kUpstream=1); PcieLink casts when calling on_tlps().
//
// Consumers: obs::to_perfetto_json() (counter tracks), obs::
// to_prometheus_text() (exposition snapshot), the bxmon CLI (per-window
// table), and bench_common (the `timeseries` section of BENCH_*.json).
// See docs/TELEMETRY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_clock.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bx::obs {

/// Link direction, numerically identical to pcie::Direction (bx_obs cannot
/// include pcie headers — the dependency points the other way).
enum class LinkDir : std::uint8_t { kDownstream = 0, kUpstream = 1 };
inline constexpr std::size_t kLinkDirs = 2;

/// TLP kind, matching how PCM attributes PCIe bandwidth.
enum class TlpKind : std::uint8_t { kMWr = 0, kMRd = 1, kCpl = 2 };
inline constexpr std::size_t kTlpKinds = 3;

[[nodiscard]] std::string_view link_dir_name(LinkDir dir) noexcept;
[[nodiscard]] std::string_view tlp_kind_name(TlpKind kind) noexcept;

struct TelemetryConfig {
  bool enabled = true;
  /// Window length in simulated nanoseconds (PCM-style sampling period).
  Nanoseconds window_ns = 10'000;
  /// Samples kept before the oldest are dropped (memory bound for long
  /// runs); drops are counted, never silent.
  std::size_t max_windows = 1u << 16;
};

/// One (TLPs, data bytes, wire bytes) cell — the per-window analog of
/// pcie::TrafficCell.
struct FlowCell {
  std::uint64_t tlps = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t wire_bytes = 0;

  FlowCell& operator+=(const FlowCell& other) noexcept {
    tlps += other.tlps;
    data_bytes += other.data_bytes;
    wire_bytes += other.wire_bytes;
    return *this;
  }
};

/// Per-queue state captured at a window boundary: gauges are sampled
/// (point-in-time), doorbells are deltas over the window.
struct QueueWindow {
  std::uint16_t qid = 0;
  std::int64_t sq_occupancy = 0;
  std::int64_t inflight = 0;
  std::uint64_t sq_doorbells = 0;
  /// SQ slots (SQEs + inline chunks) published by those doorbells; with
  /// batched submission sq_entries / sq_doorbells is the per-window
  /// coalescing factor (1.0 = no coalescing).
  std::uint64_t sq_entries = 0;
  std::uint64_t cq_doorbells = 0;
};

/// Per-tenant state captured at a window boundary: service counters are
/// deltas over the window (sampled from the admission controller's and
/// scheduler's component-owned counters), inflight_slots is a gauge.
struct TenantWindow {
  std::uint16_t tenant = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t completions = 0;
  /// In-flight inline SQ slots charged against the tenant's budget.
  std::int64_t inflight_slots = 0;
};

/// One closed telemetry window.
struct TelemetrySample {
  std::uint64_t index = 0;
  Nanoseconds start_ns = 0;
  Nanoseconds end_ns = 0;

  /// flow[LinkDir][TlpKind], deltas over the window.
  std::array<std::array<FlowCell, kTlpKinds>, kLinkDirs> flow{};
  /// Application payload bytes submitted during the window.
  std::uint64_t payload_bytes = 0;
  /// Controller stage-duration deltas (TraceStage taxonomy).
  std::array<std::uint64_t, kStageCount> stage_count{};
  std::array<std::uint64_t, kStageCount> stage_ns{};
  /// Controller inline backlog gauge at window close (BandSlim streams +
  /// deferred OOO commands + in-flight reassemblies).
  std::int64_t backlog = 0;
  /// Wait/service attribution over the window: commands whose breakdown
  /// was reported, and the per-segment nanosecond sums (LatencyBreakdown
  /// taxonomy — obs/attribution.h). wait_ns summed over all segments
  /// equals the total latency of those commands, exactly (additivity).
  std::uint64_t wait_count = 0;
  std::array<std::uint64_t, kWaitSegmentCount> wait_ns{};
  std::vector<QueueWindow> queues;
  /// Per-tenant service deltas (empty when no tenants are registered).
  std::vector<TenantWindow> tenants;
  /// Adaptive-policy activity over the window (all zero until
  /// register_policy() is called — see docs/POLICY.md): kAuto decisions
  /// resolved inline / descriptor-DMA (SGL or PRP) and shed rejections
  /// are deltas; shedding queues is a gauge sampled at window close.
  std::uint64_t policy_inline = 0;
  std::uint64_t policy_dma = 0;
  std::uint64_t policy_rejects = 0;
  std::int64_t policy_shedding = 0;

  [[nodiscard]] const FlowCell& of(LinkDir dir, TlpKind kind) const noexcept {
    return flow[static_cast<std::size_t>(dir)][static_cast<std::size_t>(kind)];
  }
  /// Sum over TLP kinds for one direction.
  [[nodiscard]] FlowCell dir_total(LinkDir dir) const noexcept;
  /// Wire bytes over both directions and all kinds.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept;
  /// Fraction of the window the link spent serializing `dir` traffic at
  /// `bytes_per_ns` (PcieLink's effective rate). 0 for an empty window.
  [[nodiscard]] double utilization(LinkDir dir, double bytes_per_ns)
      const noexcept;
  /// Wire bytes per payload byte within the window (0 when no payload).
  [[nodiscard]] double amplification() const noexcept;
};

class Telemetry {
 public:
  /// Consumer of every closed window, invoked synchronously from
  /// close_window_locked() with the telemetry mutex held. The observer
  /// must only update its own (innermost-locked) state: calling back into
  /// Telemetry, the driver or the link from on_window() deadlocks. The
  /// adaptive policy (policy::AdaptivePolicy) uses this to run its EWMA
  /// updates and hysteresis transitions on the window grid.
  class WindowObserver {
   public:
    virtual ~WindowObserver() = default;
    virtual void on_window(const TelemetrySample& sample) = 0;
  };

  explicit Telemetry(TelemetryConfig config = {});
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Reconfigures the sampler. Call during testbed assembly, before
  /// traffic flows.
  void configure(const TelemetryConfig& config);
  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

  /// The link's effective data rate, for utilization percentages. Set by
  /// the Testbed from LinkConfig::bytes_per_ns().
  void set_link_rate(double bytes_per_ns) noexcept {
    bytes_per_ns_ = bytes_per_ns;
  }
  [[nodiscard]] double link_rate() const noexcept { return bytes_per_ns_; }

  // ---- registration (single-threaded testbed assembly) ----

  /// Registers queue `qid`'s occupancy gauges for sampling at window
  /// close. The gauges are component-owned (the driver's QueuePair) and
  /// must outlive the Telemetry reads; re-registering a qid replaces the
  /// previous pointers. NOT thread-safe against concurrent hooks: call
  /// before submitter threads start (same rule as init_io_queues()).
  void register_queue(std::uint16_t qid, const Gauge* sq_occupancy,
                      const Gauge* inflight);
  /// Registers the controller's inline-backlog gauge.
  void set_backlog_gauge(const Gauge* backlog) noexcept { backlog_ = backlog; }

  /// Registers tenant `tenant`'s service counters for delta sampling at
  /// window close (and its in-flight-slots gauge for point sampling).
  /// The counters are component-owned (tenant::AdmissionController /
  /// tenant::TenantScheduler) and must outlive the Telemetry reads; any
  /// pointer may be null (that column samples as 0). Same threading rule
  /// as register_queue: call during single-threaded assembly.
  void register_tenant(std::uint16_t tenant, const Counter* admitted,
                       const Counter* rejected, const Counter* payload_bytes,
                       const Counter* completions,
                       const Gauge* inflight_slots);

  /// Registers the adaptive policy's decision counters for delta sampling
  /// at window close (TelemetrySample::policy_*) plus its shedding-queues
  /// gauge for point sampling. Counters are component-owned
  /// (policy::AdaptivePolicy) and must outlive the reads; any pointer may
  /// be null. Single-threaded assembly, same rule as register_queue.
  void register_policy(const Counter* inline_decisions,
                       const Counter* dma_decisions, const Counter* rejects,
                       const Gauge* shedding_queues);

  /// Attaches the window observer (null detaches). Assembly-time only.
  void set_window_observer(WindowObserver* observer) noexcept {
    observer_ = observer;
  }

  // ---- hot-path hooks (relaxed atomics; any thread) ----

  void on_tlps(LinkDir dir, TlpKind kind, std::uint64_t tlps,
               std::uint64_t data_bytes, std::uint64_t wire_bytes) noexcept;
  void on_payload(std::uint64_t bytes) noexcept;
  void on_stage(TraceStage stage, Nanoseconds duration) noexcept;
  /// `entries` is the number of SQ slots the doorbell published — 1 on
  /// the unbatched path, the whole coalesced run on the batched path.
  void on_sq_doorbell(std::uint16_t qid, std::uint64_t entries = 1) noexcept;
  void on_cq_doorbell(std::uint16_t qid) noexcept;
  /// One completed command's wait/service breakdown (driver
  /// attribute_completion). Segment sums telescope into per-window deltas
  /// like every other cumulative counter.
  void on_wait(const LatencyBreakdown& breakdown) noexcept;

  // ---- window rolling ----

  /// Closes every window that `now` has moved past. The common case (still
  /// inside the current window) is one relaxed load.
  void advance_to(Nanoseconds now);
  /// advance_to(now), then closes the in-progress partial window so that
  /// sample sums reconcile exactly with cumulative counters. The next
  /// window starts at `now`.
  void flush(Nanoseconds now);
  /// Drops all samples and re-baselines deltas at `now` (the Testbed's
  /// reset_counters() analog — cumulative hooks keep counting upward).
  void clear(Nanoseconds now);

  // ---- consumption ----

  [[nodiscard]] std::vector<TelemetrySample> samples() const;
  [[nodiscard]] std::uint64_t windows_closed() const noexcept {
    return windows_closed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t windows_dropped() const noexcept {
    return windows_dropped_.load(std::memory_order_relaxed);
  }

  /// Sums flow cells over `samples` (conservation checks, summaries).
  [[nodiscard]] static std::array<std::array<FlowCell, kTlpKinds>, kLinkDirs>
  sum_flows(const std::vector<TelemetrySample>& samples);

  /// Merges adjacent windows until at most `max_points` remain. Sums
  /// (flows, payload, stages, doorbells) are preserved exactly; gauges
  /// keep the last-window value. Used to bound BENCH_*.json timeseries
  /// sections and bxmon tables.
  [[nodiscard]] static std::vector<TelemetrySample> downsample(
      std::vector<TelemetrySample> samples, std::size_t max_points);

  /// Deterministic TSV rendering of `samples` — the bxmon dump/ingest
  /// format. The header comment embeds `bytes_per_ns` so an ingesting
  /// bxmon can recompute utilization.
  [[nodiscard]] static std::string dump_tsv(
      const std::vector<TelemetrySample>& samples, double bytes_per_ns);

 private:
  struct AtomicFlow {
    std::atomic<std::uint64_t> tlps{0};
    std::atomic<std::uint64_t> data_bytes{0};
    std::atomic<std::uint64_t> wire_bytes{0};
  };
  /// Per-queue cumulative doorbell counters plus the sampled gauges.
  /// unique_ptr because atomics are immovable and the vector resizes at
  /// registration time.
  struct QueueSource {
    std::uint16_t qid = 0;
    const Gauge* sq_occupancy = nullptr;
    const Gauge* inflight = nullptr;
    std::atomic<std::uint64_t> sq_doorbells{0};
    std::atomic<std::uint64_t> sq_entries{0};
    std::atomic<std::uint64_t> cq_doorbells{0};
    std::uint64_t last_sq_doorbells = 0;  // under mutex_
    std::uint64_t last_sq_entries = 0;    // under mutex_
    std::uint64_t last_cq_doorbells = 0;  // under mutex_
  };

  void close_window_locked(Nanoseconds end);

  TelemetryConfig config_;
  double bytes_per_ns_ = 1.0;

  // Cumulative hot-path counters (relaxed; exact once quiesced).
  std::array<std::array<AtomicFlow, kTlpKinds>, kLinkDirs> flows_{};
  std::atomic<std::uint64_t> payload_bytes_{0};
  std::array<std::atomic<std::uint64_t>, kStageCount> stage_count_{};
  std::array<std::atomic<std::uint64_t>, kStageCount> stage_ns_{};
  std::atomic<std::uint64_t> wait_count_{0};
  std::array<std::atomic<std::uint64_t>, kWaitSegmentCount> wait_ns_{};
  /// Per-tenant sampled counters plus the last-seen values the window
  /// deltas telescope against (last_* under mutex_).
  struct TenantSource {
    std::uint16_t tenant = 0;
    const Counter* admitted = nullptr;
    const Counter* rejected = nullptr;
    const Counter* payload_bytes = nullptr;
    const Counter* completions = nullptr;
    const Gauge* inflight_slots = nullptr;
    std::uint64_t last_admitted = 0;
    std::uint64_t last_rejected = 0;
    std::uint64_t last_payload_bytes = 0;
    std::uint64_t last_completions = 0;
  };

  /// The adaptive policy's sampled counters (register_policy), with the
  /// last-seen values its window deltas telescope against (under mutex_).
  struct PolicySource {
    const Counter* inline_decisions = nullptr;
    const Counter* dma_decisions = nullptr;
    const Counter* rejects = nullptr;
    const Gauge* shedding_queues = nullptr;
    std::uint64_t last_inline = 0;
    std::uint64_t last_dma = 0;
    std::uint64_t last_rejects = 0;
  };

  /// Indexed by qid; slots for unregistered qids (e.g. the admin queue)
  /// are null and their doorbells are not tracked.
  std::vector<std::unique_ptr<QueueSource>> queues_;
  std::vector<TenantSource> tenants_;
  PolicySource policy_;
  bool policy_registered_ = false;
  WindowObserver* observer_ = nullptr;
  const Gauge* backlog_ = nullptr;

  /// End of the currently open window — the advance_to() fast-path guard.
  std::atomic<Nanoseconds> window_end_;
  std::atomic<std::uint64_t> windows_closed_{0};
  std::atomic<std::uint64_t> windows_dropped_{0};

  // Window-rolling state, all under mutex_.
  mutable std::mutex mutex_;
  Nanoseconds window_start_ = 0;
  std::uint64_t next_index_ = 0;
  std::array<std::array<FlowCell, kTlpKinds>, kLinkDirs> last_flows_{};
  std::uint64_t last_payload_bytes_ = 0;
  std::array<std::uint64_t, kStageCount> last_stage_count_{};
  std::array<std::uint64_t, kStageCount> last_stage_ns_{};
  std::uint64_t last_wait_count_ = 0;
  std::array<std::uint64_t, kWaitSegmentCount> last_wait_ns_{};
  std::deque<TelemetrySample> ring_;
};

}  // namespace bx::obs
