// Trace-driven protocol invariant checker.
//
// Walks a TraceRecorder snapshot in seq order and verifies the structural
// guarantees the paper's submission path relies on, as observable through
// the event stream alone:
//
//   1. Doorbell-before-fetch — per queue, the device never fetches more
//      ring slots than host doorbells have published (kDoorbell events
//      carry the published-entry count, so ring wraparound is handled by
//      counting, not by comparing tail values).
//   2. Queue-local inline adjacency — after an inline (non-OOO) command's
//      kSqeFetch, the next fetch-side events on that queue are exactly its
//      kChunkFetch events, at consecutive ring slots of the *same* SQ
//      (§3.3.2); nothing may interleave on that queue mid-transaction.
//   3. One completion per CID — every non-auxiliary kSubmit(qid, cid)
//      opens an obligation closed by exactly one kCompletion(qid, cid);
//      a second completion, a completion with no open submit, or a CID
//      reused while still in flight are violations. (BandSlim fragments
//      are auxiliary: they carry the protocol's cid 0 and never open an
//      obligation.)
//   4. Monotonic timestamps — event end times never decrease in record
//      order, and every interval has start <= end. (Optional: under real
//      OS threads the global seq and the clock are sampled separately, so
//      TSan runs disable this check.)
//   5. CQ doorbells trail completions — a kCqDoorbell on a queue never
//      outnumbers the completions posted to it.
//
// The checker is pure library code so tests AND the fuzzer can use it as
// an oracle over arbitrary schedules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace bx::obs {

struct TraceCheckOptions {
  /// Verify timestamp monotonicity (disable for OS-thread schedules).
  bool require_monotonic = true;
  /// Tolerate a completion recorded before its submit. The driver records
  /// kSubmit when the submission path returns — after the doorbell that
  /// publishes the command — so under OS threads a fast device can fetch,
  /// execute and record kCompletion first. When set, such a completion is
  /// held as a credit that the late kSubmit must consume; unmatched credits
  /// are still violations. Leave false for deterministic schedules.
  bool allow_submit_completion_race = false;
  /// Require every opened submit obligation to be completed by the end of
  /// the trace (set when the scenario drained before snapshotting).
  bool require_all_completed = true;
  /// SQ ring depth for exact slot-adjacency checks. 0 = unknown: a wrap is
  /// then only accepted when the next slot is 0.
  std::uint32_t queue_depth = 0;
};

struct TraceCheckResult {
  std::vector<std::string> violations;

  // Convenience tallies over the walked trace.
  std::uint64_t submits = 0;       // non-auxiliary kSubmit events
  std::uint64_t completions = 0;   // kCompletion events
  std::uint64_t sqe_fetches = 0;   // kSqeFetch events (incl. auxiliary)
  std::uint64_t chunk_fetches = 0; // kChunkFetch events
  std::uint64_t doorbells = 0;     // kDoorbell events

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] TraceCheckResult check_trace_invariants(
    const std::vector<TraceEvent>& events, const TraceCheckOptions& options);

/// One completed command's latency decomposition, as collected by a test
/// or harness from Completion::{latency_ns, breakdown}.
struct BreakdownSample {
  LatencyBreakdown breakdown;
  std::uint64_t latency_ns = 0;
};

/// Additivity invariant over a batch of completions: for every sample the
/// wait/service segments must sum EXACTLY to latency_ns (zero residual,
/// any queue depth, any path). Returns one violation string per failing
/// sample, indexed for diagnosis.
[[nodiscard]] std::vector<std::string> check_breakdown_invariants(
    const std::vector<BreakdownSample>& samples);

}  // namespace bx::obs
