#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

namespace bx::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::expose_counter(std::string_view name,
                                     const Counter* counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  exposed_counters_[std::string(name)] = counter;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = counters_.find(name); it != counters_.end()) {
    return it->second->value();
  }
  if (const auto it = exposed_counters_.find(name);
      it != exposed_counters_.end()) {
    return it->second->value();
  }
  return 0;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // std::map iteration is name-sorted, which keeps the dump deterministic;
  // merge owned and exposed counters into one sorted stream.
  std::vector<std::pair<std::string_view, std::uint64_t>> counter_rows;
  counter_rows.reserve(counters_.size() + exposed_counters_.size());
  for (const auto& [name, c] : counters_) {
    counter_rows.emplace_back(name, c->value());
  }
  for (const auto& [name, c] : exposed_counters_) {
    counter_rows.emplace_back(name, c->value());
  }
  std::sort(counter_rows.begin(), counter_rows.end());

  std::string out = "{";
  bool first = true;
  char entry[256];
  const auto append = [&](const char* text) {
    if (!first) out += ", ";
    out += text;
    first = false;
  };
  for (const auto& [name, value] : counter_rows) {
    std::snprintf(entry, sizeof(entry), "\"%s\": %llu",
                  std::string(name).c_str(),
                  static_cast<unsigned long long>(value));
    append(entry);
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(entry, sizeof(entry), "\"%s\": %lld", name.c_str(),
                  static_cast<long long>(gauge->value()));
    append(entry);
  }
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram snap = histogram->snapshot();
    std::snprintf(entry, sizeof(entry),
                  "\"%s\": {\"count\": %llu, \"mean_ns\": %.1f, "
                  "\"p50_ns\": %llu, \"p99_ns\": %llu, \"max_ns\": %llu}",
                  name.c_str(),
                  static_cast<unsigned long long>(snap.count()), snap.mean(),
                  static_cast<unsigned long long>(snap.percentile(50)),
                  static_cast<unsigned long long>(snap.percentile(99)),
                  static_cast<unsigned long long>(snap.max()));
    append(entry);
  }
  out += "}";
  return out;
}

std::string to_json(const MetricsRegistry& registry) {
  return registry.to_json();
}

}  // namespace bx::obs
