#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

namespace bx::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::expose_counter(std::string_view name,
                                     const Counter* counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  exposed_counters_[std::string(name)] = counter;
}

void MetricsRegistry::expose_gauge(std::string_view name, const Gauge* gauge) {
  std::lock_guard<std::mutex> lock(mutex_);
  exposed_gauges_[std::string(name)] = gauge;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = counters_.find(name); it != counters_.end()) {
    return it->second->value();
  }
  if (const auto it = exposed_counters_.find(name);
      it != exposed_counters_.end()) {
    return it->second->value();
  }
  return 0;
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second->value();
  }
  if (const auto it = exposed_gauges_.find(name);
      it != exposed_gauges_.end()) {
    return it->second->value();
  }
  return 0;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  // std::map iteration is name-sorted, which keeps consumers deterministic;
  // merge owned and exposed metrics into one sorted stream per family.
  snap.counters.reserve(counters_.size() + exposed_counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, c] : exposed_counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  std::sort(snap.counters.begin(), snap.counters.end());

  snap.gauges.reserve(gauges_.size() + exposed_gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, g] : exposed_gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  std::sort(snap.gauges.begin(), snap.gauges.end());

  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();

  std::string out = "{";
  bool first = true;
  char entry[256];
  const auto append = [&](const char* text) {
    if (!first) out += ", ";
    out += text;
    first = false;
  };
  for (const auto& [name, value] : snap.counters) {
    std::snprintf(entry, sizeof(entry), "\"%s\": %llu", name.c_str(),
                  static_cast<unsigned long long>(value));
    append(entry);
  }
  for (const auto& [name, value] : snap.gauges) {
    std::snprintf(entry, sizeof(entry), "\"%s\": %lld", name.c_str(),
                  static_cast<long long>(value));
    append(entry);
  }
  for (const auto& [name, histogram] : snap.histograms) {
    std::snprintf(entry, sizeof(entry),
                  "\"%s\": {\"count\": %llu, \"mean_ns\": %.1f, "
                  "\"p50_ns\": %llu, \"p99_ns\": %llu, \"max_ns\": %llu}",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram.count()),
                  histogram.mean(),
                  static_cast<unsigned long long>(histogram.percentile(50)),
                  static_cast<unsigned long long>(histogram.percentile(99)),
                  static_cast<unsigned long long>(histogram.max()));
    append(entry);
  }
  out += "}";
  return out;
}

std::string to_json(const MetricsRegistry& registry) {
  return registry.to_json();
}

}  // namespace bx::obs
