#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace bx::obs {

std::string_view stage_name(TraceStage stage) noexcept {
  switch (stage) {
    case TraceStage::kSubmit: return "submit";
    case TraceStage::kDoorbell: return "doorbell";
    case TraceStage::kSqeFetch: return "sqe_fetch";
    case TraceStage::kChunkFetch: return "chunk_fetch";
    case TraceStage::kPrpDma: return "prp_dma";
    case TraceStage::kSglDma: return "sgl_dma";
    case TraceStage::kNandIo: return "nand_io";
    case TraceStage::kExec: return "exec";
    case TraceStage::kReadChunkWrite: return "read_chunk";
    case TraceStage::kCompletion: return "completion";
    case TraceStage::kCqDoorbell: return "cq_doorbell";
    case TraceStage::kCount_: break;
  }
  return "?";
}

namespace {

/// Device-side primary stages whose durations make up a command's device
/// service time. kNandIo nests inside kExec and kDoorbell/kSubmit/
/// kCqDoorbell are host-side.
bool is_device_service_stage(TraceStage stage) noexcept {
  switch (stage) {
    case TraceStage::kSqeFetch:
    case TraceStage::kChunkFetch:
    case TraceStage::kPrpDma:
    case TraceStage::kSglDma:
    case TraceStage::kExec:
    case TraceStage::kReadChunkWrite:
    case TraceStage::kCompletion:
      return true;
    default:
      return false;
  }
}

}  // namespace

void TraceRecorder::store_event(const TraceEvent& event) {
  if (stored_.fetch_add(1, std::memory_order_relaxed) >=
      capacity_.load(std::memory_order_relaxed)) {
    stored_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = shards_[event.qid % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.events.push_back(event);
}

void TraceRecorder::record(TraceEvent event) {
  if (!enabled()) return;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    auto it = open_.find(command_key(event.qid, event.cid));
    if (it != open_.end()) {
      OpenCommand& open = it->second;
      if (is_device_service_stage(event.stage)) {
        DeviceReport& report = open.report;
        if (!report.valid) {
          report.valid = true;
          report.fetch_start = event.start;
        }
        if (event.end >= event.start) {
          report.service_ns +=
              static_cast<std::uint64_t>(event.end - event.start);
        }
        if (event.stage == TraceStage::kCompletion) {
          report.cqe_end = event.end;
        }
      }
      if (open.buffering) {
        open.buffered.push_back(event);
        return;
      }
    }
  }
  store_event(event);
}

void TraceRecorder::record_in_device_context(TraceEvent event) {
  if (!enabled()) return;
  if (device_context_valid_) {
    event.qid = device_qid_;
    event.cid = device_cid_;
  }
  record(event);
}

void TraceRecorder::begin_command(std::uint16_t qid, std::uint16_t cid,
                                  std::uint16_t tenant) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(table_mutex_);
  OpenCommand& open = open_[command_key(qid, cid)];
  open = OpenCommand{};
  open.tenant = tenant;
  open.buffering = sampling_.enabled;
}

void TraceRecorder::note_command_wait(std::uint16_t qid, std::uint16_t cid,
                                      std::uint64_t wait_ns) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(table_mutex_);
  auto it = open_.find(command_key(qid, cid));
  if (it != open_.end()) it->second.report.wait_ns += wait_ns;
}

DeviceReport TraceRecorder::finish_command(std::uint16_t qid,
                                           std::uint16_t cid, Nanoseconds now,
                                           Nanoseconds latency_ns) {
  DeviceReport report;
  commands_seen_.fetch_add(1, std::memory_order_relaxed);
  std::vector<TraceEvent> buffered;
  bool keep = true;
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    auto it = open_.find(command_key(qid, cid));
    if (it == open_.end()) {
      // Unknown (recorder cleared mid-flight, or bracketing disabled):
      // nothing was buffered, so nothing can be sampled out.
      commands_kept_.fetch_add(1, std::memory_order_relaxed);
      return report;
    }
    report = it->second.report;
    buffered = std::move(it->second.buffered);
    const bool buffering = it->second.buffering;
    open_.erase(it);
    if (buffering) {
      keep = sampling_.keep_threshold_ns > 0 &&
             latency_ns >= sampling_.keep_threshold_ns;
      if (!keep && sampling_.top_k > 0 && sampling_.window_ns > 0) {
        const std::uint64_t window =
            static_cast<std::uint64_t>(now) /
            static_cast<std::uint64_t>(sampling_.window_ns);
        if (window != topk_window_index_) {
          topk_window_index_ = window;
          topk_heap_.clear();
        }
        const auto min_heap = [](Nanoseconds a, Nanoseconds b) {
          return a > b;
        };
        if (topk_heap_.size() < sampling_.top_k) {
          topk_heap_.push_back(latency_ns);
          std::push_heap(topk_heap_.begin(), topk_heap_.end(), min_heap);
          keep = true;
        } else if (latency_ns > topk_heap_.front()) {
          std::pop_heap(topk_heap_.begin(), topk_heap_.end(), min_heap);
          topk_heap_.back() = latency_ns;
          std::push_heap(topk_heap_.begin(), topk_heap_.end(), min_heap);
          keep = true;
        }
      }
      if (!keep && sampling_.sample_every > 0) {
        keep = residual_counter_++ % sampling_.sample_every == 0;
      }
    }
  }
  if (keep) {
    commands_kept_.fetch_add(1, std::memory_order_relaxed);
    // Buffered events keep their original seq, so snapshot() interleaves
    // them correctly with everything stored while they were pending.
    for (const TraceEvent& event : buffered) store_event(event);
  } else {
    commands_sampled_out_.fetch_add(1, std::memory_order_relaxed);
    events_sampled_out_.fetch_add(buffered.size(),
                                  std::memory_order_relaxed);
  }
  return report;
}

void TraceRecorder::configure_sampling(const SamplingConfig& config) {
  std::lock_guard<std::mutex> lock(table_mutex_);
  sampling_ = config;
  topk_window_index_ = 0;
  topk_heap_.clear();
  residual_counter_ = 0;
}

SamplingConfig TraceRecorder::sampling_config() const {
  std::lock_guard<std::mutex> lock(table_mutex_);
  return sampling_;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> merged;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    merged.insert(merged.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return merged;
}

void TraceRecorder::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.events.clear();
  }
  stored_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    open_.clear();
    topk_window_index_ = 0;
    topk_heap_.clear();
    residual_counter_ = 0;
  }
  commands_seen_.store(0, std::memory_order_relaxed);
  commands_kept_.store(0, std::memory_order_relaxed);
  commands_sampled_out_.store(0, std::memory_order_relaxed);
  events_sampled_out_.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::dump(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96);
  char line[192];
  for (const TraceEvent& e : events) {
    std::snprintf(
        line, sizeof(line),
        "%8llu [%12lld %12lld] %-11s q%-3u cid%-5u ten%-3u slot=%-5u "
        "flags=%u aux=%llu bytes=%llu\n",
        static_cast<unsigned long long>(e.seq),
        static_cast<long long>(e.start), static_cast<long long>(e.end),
        std::string(stage_name(e.stage)).c_str(), e.qid, e.cid, e.tenant,
        e.slot, e.flags, static_cast<unsigned long long>(e.aux),
        static_cast<unsigned long long>(e.bytes));
    out += line;
  }
  return out;
}

StageBreakdown stage_breakdown(const std::vector<TraceEvent>& events) {
  StageBreakdown breakdown;
  for (const TraceEvent& e : events) {
    const auto index = static_cast<std::size_t>(e.stage);
    if (index >= kStageCount) continue;
    StageBreakdown::StageStats& stats = breakdown.stages[index];
    const std::uint64_t duration =
        e.end >= e.start ? static_cast<std::uint64_t>(e.end - e.start) : 0;
    ++stats.count;
    stats.total_ns += duration;
    stats.durations.record(duration);
  }
  return breakdown;
}

std::string to_json(const StageBreakdown& breakdown) {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageBreakdown::StageStats& stats = breakdown.stages[i];
    if (stats.count == 0) continue;
    char entry[256];
    std::snprintf(
        entry, sizeof(entry),
        "%s\"%s\": {\"count\": %llu, \"total_ns\": %llu, \"p50_ns\": %llu, "
        "\"p99_ns\": %llu}",
        first ? "" : ", ",
        std::string(stage_name(static_cast<TraceStage>(i))).c_str(),
        static_cast<unsigned long long>(stats.count),
        static_cast<unsigned long long>(stats.total_ns),
        static_cast<unsigned long long>(stats.durations.percentile(50)),
        static_cast<unsigned long long>(stats.durations.percentile(99)));
    out += entry;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace bx::obs
