#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace bx::obs {

std::string_view stage_name(TraceStage stage) noexcept {
  switch (stage) {
    case TraceStage::kSubmit: return "submit";
    case TraceStage::kDoorbell: return "doorbell";
    case TraceStage::kSqeFetch: return "sqe_fetch";
    case TraceStage::kChunkFetch: return "chunk_fetch";
    case TraceStage::kPrpDma: return "prp_dma";
    case TraceStage::kSglDma: return "sgl_dma";
    case TraceStage::kNandIo: return "nand_io";
    case TraceStage::kExec: return "exec";
    case TraceStage::kReadChunkWrite: return "read_chunk";
    case TraceStage::kCompletion: return "completion";
    case TraceStage::kCqDoorbell: return "cq_doorbell";
    case TraceStage::kCount_: break;
  }
  return "?";
}

void TraceRecorder::record(TraceEvent event) {
  if (!enabled()) return;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  if (stored_.fetch_add(1, std::memory_order_relaxed) >=
      capacity_.load(std::memory_order_relaxed)) {
    stored_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = shards_[event.qid % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.events.push_back(event);
}

void TraceRecorder::record_in_device_context(TraceEvent event) {
  if (!enabled()) return;
  if (device_context_valid_) {
    event.qid = device_qid_;
    event.cid = device_cid_;
  }
  record(event);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> merged;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    merged.insert(merged.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return merged;
}

void TraceRecorder::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.events.clear();
  }
  stored_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::dump(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96);
  char line[192];
  for (const TraceEvent& e : events) {
    std::snprintf(
        line, sizeof(line),
        "%8llu [%12lld %12lld] %-11s q%-3u cid%-5u ten%-3u slot=%-5u "
        "flags=%u aux=%llu bytes=%llu\n",
        static_cast<unsigned long long>(e.seq),
        static_cast<long long>(e.start), static_cast<long long>(e.end),
        std::string(stage_name(e.stage)).c_str(), e.qid, e.cid, e.tenant,
        e.slot, e.flags, static_cast<unsigned long long>(e.aux),
        static_cast<unsigned long long>(e.bytes));
    out += line;
  }
  return out;
}

StageBreakdown stage_breakdown(const std::vector<TraceEvent>& events) {
  StageBreakdown breakdown;
  for (const TraceEvent& e : events) {
    const auto index = static_cast<std::size_t>(e.stage);
    if (index >= kStageCount) continue;
    StageBreakdown::StageStats& stats = breakdown.stages[index];
    const std::uint64_t duration =
        e.end >= e.start ? static_cast<std::uint64_t>(e.end - e.start) : 0;
    ++stats.count;
    stats.total_ns += duration;
    stats.durations.record(duration);
  }
  return breakdown;
}

std::string to_json(const StageBreakdown& breakdown) {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageBreakdown::StageStats& stats = breakdown.stages[i];
    if (stats.count == 0) continue;
    char entry[256];
    std::snprintf(
        entry, sizeof(entry),
        "%s\"%s\": {\"count\": %llu, \"total_ns\": %llu, \"p50_ns\": %llu, "
        "\"p99_ns\": %llu}",
        first ? "" : ", ",
        std::string(stage_name(static_cast<TraceStage>(i))).c_str(),
        static_cast<unsigned long long>(stats.count),
        static_cast<unsigned long long>(stats.total_ns),
        static_cast<unsigned long long>(stats.durations.percentile(50)),
        static_cast<unsigned long long>(stats.durations.percentile(99)));
    out += entry;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace bx::obs
