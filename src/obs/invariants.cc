#include "obs/invariants.h"

#include <cstdio>
#include <map>
#include <set>
#include <utility>

namespace bx::obs {
namespace {

std::string describe(const TraceEvent& e) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "seq=%llu %s q%u cid=%u slot=%u flags=%u aux=%llu",
                static_cast<unsigned long long>(e.seq),
                std::string(stage_name(e.stage)).c_str(), e.qid, e.cid, e.slot,
                e.flags, static_cast<unsigned long long>(e.aux));
  return buf;
}

// Per-queue adjacency state: after a non-OOO inline kSqeFetch announcing N
// queue-local chunks, the next N fetch-side events on that queue must be
// its kChunkFetch events at consecutive ring slots.
struct PendingChunks {
  std::uint64_t remaining = 0;
  std::uint32_t next_slot = 0;  // expected ring index of the next chunk
  std::uint16_t cid = 0;
};

}  // namespace

std::string TraceCheckResult::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "submits=%llu completions=%llu sqe_fetches=%llu "
                "chunk_fetches=%llu doorbells=%llu violations=%zu",
                static_cast<unsigned long long>(submits),
                static_cast<unsigned long long>(completions),
                static_cast<unsigned long long>(sqe_fetches),
                static_cast<unsigned long long>(chunk_fetches),
                static_cast<unsigned long long>(doorbells),
                violations.size());
  return buf;
}

TraceCheckResult check_trace_invariants(const std::vector<TraceEvent>& events,
                                        const TraceCheckOptions& options) {
  TraceCheckResult result;
  const auto violate = [&result](const TraceEvent& e, const std::string& why) {
    if (result.violations.size() < 64) {
      result.violations.push_back(why + " at [" + describe(e) + "]");
    }
  };

  // Invariant 1 state: ring slots published by doorbells vs fetched by the
  // device, per queue. Both are prefix counts over seq order.
  std::map<std::uint16_t, std::uint64_t> published;
  std::map<std::uint16_t, std::uint64_t> fetched;
  // Invariant 2 state.
  std::map<std::uint16_t, PendingChunks> pending_chunks;
  // Invariant 3 state: (qid, cid) pairs with an open completion obligation.
  std::set<std::pair<std::uint16_t, std::uint16_t>> in_flight;
  // With allow_submit_completion_race: completions recorded ahead of their
  // submit, waiting to be consumed. Multiset-by-count since CIDs recycle.
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::uint64_t> early_done;
  // Invariant 5 state: completions posted vs CQ head doorbells, per queue.
  std::map<std::uint16_t, std::uint64_t> completed_per_q;
  std::map<std::uint16_t, std::uint64_t> cq_doorbells_per_q;

  std::uint64_t last_seq = 0;
  Nanoseconds last_end = 0;
  bool first = true;

  for (const TraceEvent& e : events) {
    // Snapshot ordering sanity: seq strictly increases.
    if (!first && e.seq <= last_seq) {
      violate(e, "trace not sorted by seq (snapshot corrupted)");
    }
    // Invariant 4: intervals are well-formed and end times never regress.
    if (e.start > e.end) {
      violate(e, "interval with start > end");
    }
    if (options.require_monotonic && !first && e.end < last_end) {
      violate(e, "end timestamp regressed vs previously recorded event");
    }
    last_seq = e.seq;
    if (e.end > last_end || first) last_end = e.end;
    first = false;

    const bool aux = (e.flags & kFlagAuxCommand) != 0;
    const bool ooo_cmd = (e.flags & kFlagOooCommand) != 0;
    const bool ooo_chunk = (e.flags & kFlagOooChunk) != 0;

    // A queue-local chunk burst may only be interrupted by host-side or
    // per-command device events of *other* queues; on this queue, device
    // fetch events must be exactly the announced chunks.
    const bool device_fetch_event = e.stage == TraceStage::kSqeFetch ||
                                    e.stage == TraceStage::kChunkFetch;
    if (device_fetch_event) {
      auto it = pending_chunks.find(e.qid);
      if (it != pending_chunks.end() && it->second.remaining > 0) {
        PendingChunks& pend = it->second;
        if (e.stage != TraceStage::kChunkFetch || ooo_chunk) {
          violate(e, "expected queue-local inline chunk fetch for cid=" +
                         std::to_string(pend.cid) + ", got something else");
          pending_chunks.erase(it);
        } else {
          if (e.slot != pend.next_slot &&
              !(options.queue_depth == 0 && e.slot == 0)) {
            violate(e, "inline chunk not adjacent: expected slot " +
                           std::to_string(pend.next_slot));
          }
          if (e.cid != pend.cid) {
            violate(e, "inline chunk cid mismatch: expected cid=" +
                           std::to_string(pend.cid));
          }
          --pend.remaining;
          pend.next_slot = options.queue_depth != 0
                               ? (e.slot + 1) % options.queue_depth
                               : e.slot + 1;
          if (pend.remaining == 0) pending_chunks.erase(it);
        }
      }
    }

    switch (e.stage) {
      case TraceStage::kSubmit: {
        if (!aux) {
          ++result.submits;
          const auto key = std::make_pair(e.qid, e.cid);
          if (options.allow_submit_completion_race) {
            if (auto it = early_done.find(key); it != early_done.end()) {
              if (--it->second == 0) early_done.erase(it);
              break;  // obligation already closed by the early completion
            }
          }
          if (!in_flight.insert(key).second) {
            violate(e, "cid resubmitted while still in flight");
          }
        }
        break;
      }
      case TraceStage::kDoorbell: {
        ++result.doorbells;
        published[e.qid] += e.aux;
        break;
      }
      case TraceStage::kSqeFetch: {
        ++result.sqe_fetches;
        // Invariant 1: the device may only fetch published slots.
        if (++fetched[e.qid] > published[e.qid]) {
          violate(e, "SQE fetched beyond published doorbell tail");
        }
        // Invariant 2: arm the adjacency state machine for queue-local
        // inline chunks (OOO commands stripe chunks anywhere).
        if (!ooo_cmd && e.aux > 0) {
          PendingChunks& pend = pending_chunks[e.qid];
          if (pend.remaining > 0) {
            violate(e, "new inline command fetched mid-chunk-burst");
          }
          pend.remaining = e.aux;
          pend.cid = e.cid;
          pend.next_slot = options.queue_depth != 0
                               ? (e.slot + 1) % options.queue_depth
                               : e.slot + 1;
        }
        break;
      }
      case TraceStage::kChunkFetch: {
        ++result.chunk_fetches;
        if (++fetched[e.qid] > published[e.qid]) {
          violate(e, "chunk fetched beyond published doorbell tail");
        }
        break;
      }
      case TraceStage::kCompletion: {
        ++result.completions;
        ++completed_per_q[e.qid];
        const auto key = std::make_pair(e.qid, e.cid);
        if (in_flight.erase(key) == 0) {
          if (options.allow_submit_completion_race) {
            ++early_done[key];
          } else {
            violate(e, "completion without a matching open submit");
          }
        }
        break;
      }
      case TraceStage::kCqDoorbell: {
        // Invariant 5: the host can only consume posted completions.
        if (++cq_doorbells_per_q[e.qid] > completed_per_q[e.qid]) {
          violate(e, "CQ head doorbell ahead of posted completions");
        }
        break;
      }
      default:
        break;
    }
  }

  for (const auto& [qid, pend] : pending_chunks) {
    if (pend.remaining > 0) {
      TraceEvent synthetic;
      synthetic.qid = qid;
      synthetic.cid = pend.cid;
      violate(synthetic, "trace ended mid inline chunk burst (" +
                             std::to_string(pend.remaining) +
                             " chunks outstanding)");
    }
  }
  for (const auto& [key, count] : early_done) {
    TraceEvent synthetic;
    synthetic.qid = key.first;
    synthetic.cid = key.second;
    violate(synthetic, "completion without a matching submit (" +
                           std::to_string(count) + " unconsumed)");
  }
  if (options.require_all_completed && !in_flight.empty()) {
    for (const auto& [qid, cid] : in_flight) {
      TraceEvent synthetic;
      synthetic.qid = qid;
      synthetic.cid = cid;
      violate(synthetic, "submitted command never completed");
    }
  }
  return result;
}

std::vector<std::string> check_breakdown_invariants(
    const std::vector<BreakdownSample>& samples) {
  std::vector<std::string> violations;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const std::string violation = check_breakdown_additivity(
        samples[i].breakdown, samples[i].latency_ns);
    if (!violation.empty()) {
      violations.push_back("sample " + std::to_string(i) + ": " + violation);
    }
  }
  return violations;
}

}  // namespace bx::obs
