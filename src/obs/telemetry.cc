#include "obs/telemetry.h"

#include <algorithm>
#include <cstdio>

namespace bx::obs {

namespace {

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

}  // namespace

std::string_view link_dir_name(LinkDir dir) noexcept {
  return dir == LinkDir::kDownstream ? "downstream" : "upstream";
}

std::string_view tlp_kind_name(TlpKind kind) noexcept {
  switch (kind) {
    case TlpKind::kMWr: return "mwr";
    case TlpKind::kMRd: return "mrd";
    case TlpKind::kCpl: return "cpl";
  }
  return "?";
}

FlowCell TelemetrySample::dir_total(LinkDir dir) const noexcept {
  FlowCell total;
  for (const FlowCell& cell : flow[static_cast<std::size_t>(dir)]) {
    total += cell;
  }
  return total;
}

std::uint64_t TelemetrySample::wire_bytes() const noexcept {
  return dir_total(LinkDir::kDownstream).wire_bytes +
         dir_total(LinkDir::kUpstream).wire_bytes;
}

double TelemetrySample::utilization(LinkDir dir,
                                    double bytes_per_ns) const noexcept {
  if (end_ns <= start_ns || bytes_per_ns <= 0.0) return 0.0;
  const double serialize_ns =
      double(dir_total(dir).wire_bytes) / bytes_per_ns;
  return serialize_ns / double(end_ns - start_ns);
}

double TelemetrySample::amplification() const noexcept {
  return payload_bytes == 0 ? 0.0
                            : double(wire_bytes()) / double(payload_bytes);
}

Telemetry::Telemetry(TelemetryConfig config)
    : config_(config), window_end_(config.window_ns) {}

void Telemetry::configure(const TelemetryConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  window_end_.store(window_start_ + config_.window_ns, kRelaxed);
}

void Telemetry::register_queue(std::uint16_t qid, const Gauge* sq_occupancy,
                               const Gauge* inflight) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queues_.size() <= qid) queues_.resize(qid + 1u);
  auto source = std::make_unique<QueueSource>();
  source->qid = qid;
  source->sq_occupancy = sq_occupancy;
  source->inflight = inflight;
  queues_[qid] = std::move(source);
}

void Telemetry::register_tenant(std::uint16_t tenant, const Counter* admitted,
                                const Counter* rejected,
                                const Counter* payload_bytes,
                                const Counter* completions,
                                const Gauge* inflight_slots) {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantSource source;
  source.tenant = tenant;
  source.admitted = admitted;
  source.rejected = rejected;
  source.payload_bytes = payload_bytes;
  source.completions = completions;
  source.inflight_slots = inflight_slots;
  for (TenantSource& existing : tenants_) {
    if (existing.tenant == tenant) {
      existing = source;  // re-registration replaces (fresh delta baseline)
      return;
    }
  }
  tenants_.push_back(source);
}

void Telemetry::register_policy(const Counter* inline_decisions,
                                const Counter* dma_decisions,
                                const Counter* rejects,
                                const Gauge* shedding_queues) {
  std::lock_guard<std::mutex> lock(mutex_);
  policy_ = PolicySource{};
  policy_.inline_decisions = inline_decisions;
  policy_.dma_decisions = dma_decisions;
  policy_.rejects = rejects;
  policy_.shedding_queues = shedding_queues;
  policy_registered_ = true;
}

void Telemetry::on_tlps(LinkDir dir, TlpKind kind, std::uint64_t tlps,
                        std::uint64_t data_bytes,
                        std::uint64_t wire_bytes) noexcept {
  AtomicFlow& cell =
      flows_[static_cast<std::size_t>(dir)][static_cast<std::size_t>(kind)];
  cell.tlps.fetch_add(tlps, kRelaxed);
  cell.data_bytes.fetch_add(data_bytes, kRelaxed);
  cell.wire_bytes.fetch_add(wire_bytes, kRelaxed);
}

void Telemetry::on_payload(std::uint64_t bytes) noexcept {
  payload_bytes_.fetch_add(bytes, kRelaxed);
}

void Telemetry::on_stage(TraceStage stage, Nanoseconds duration) noexcept {
  const auto index = static_cast<std::size_t>(stage);
  stage_count_[index].fetch_add(1, kRelaxed);
  stage_ns_[index].fetch_add(duration, kRelaxed);
}

void Telemetry::on_sq_doorbell(std::uint16_t qid,
                               std::uint64_t entries) noexcept {
  if (qid < queues_.size() && queues_[qid] != nullptr) {
    queues_[qid]->sq_doorbells.fetch_add(1, kRelaxed);
    queues_[qid]->sq_entries.fetch_add(entries, kRelaxed);
  }
}

void Telemetry::on_cq_doorbell(std::uint16_t qid) noexcept {
  if (qid < queues_.size() && queues_[qid] != nullptr) {
    queues_[qid]->cq_doorbells.fetch_add(1, kRelaxed);
  }
}

void Telemetry::on_wait(const LatencyBreakdown& breakdown) noexcept {
  wait_count_.fetch_add(1, kRelaxed);
  for (std::size_t i = 0; i < kWaitSegmentCount; ++i) {
    wait_ns_[i].fetch_add(breakdown.ns[i], kRelaxed);
  }
}

void Telemetry::close_window_locked(Nanoseconds end) {
  TelemetrySample sample;
  sample.index = next_index_++;
  sample.start_ns = window_start_;
  sample.end_ns = end;

  for (std::size_t dir = 0; dir < kLinkDirs; ++dir) {
    for (std::size_t kind = 0; kind < kTlpKinds; ++kind) {
      const AtomicFlow& cumulative = flows_[dir][kind];
      FlowCell now;
      now.tlps = cumulative.tlps.load(kRelaxed);
      now.data_bytes = cumulative.data_bytes.load(kRelaxed);
      now.wire_bytes = cumulative.wire_bytes.load(kRelaxed);
      FlowCell& last = last_flows_[dir][kind];
      sample.flow[dir][kind].tlps = now.tlps - last.tlps;
      sample.flow[dir][kind].data_bytes = now.data_bytes - last.data_bytes;
      sample.flow[dir][kind].wire_bytes = now.wire_bytes - last.wire_bytes;
      last = now;
    }
  }

  const std::uint64_t payload_now = payload_bytes_.load(kRelaxed);
  sample.payload_bytes = payload_now - last_payload_bytes_;
  last_payload_bytes_ = payload_now;

  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::uint64_t count_now = stage_count_[i].load(kRelaxed);
    const std::uint64_t ns_now = stage_ns_[i].load(kRelaxed);
    sample.stage_count[i] = count_now - last_stage_count_[i];
    sample.stage_ns[i] = ns_now - last_stage_ns_[i];
    last_stage_count_[i] = count_now;
    last_stage_ns_[i] = ns_now;
  }

  const std::uint64_t wait_count_now = wait_count_.load(kRelaxed);
  sample.wait_count = wait_count_now - last_wait_count_;
  last_wait_count_ = wait_count_now;
  for (std::size_t i = 0; i < kWaitSegmentCount; ++i) {
    const std::uint64_t ns_now = wait_ns_[i].load(kRelaxed);
    sample.wait_ns[i] = ns_now - last_wait_ns_[i];
    last_wait_ns_[i] = ns_now;
  }

  sample.backlog = backlog_ != nullptr ? backlog_->value() : 0;

  for (const auto& source : queues_) {
    if (source == nullptr) continue;
    QueueWindow qw;
    qw.qid = source->qid;
    qw.sq_occupancy =
        source->sq_occupancy != nullptr ? source->sq_occupancy->value() : 0;
    qw.inflight = source->inflight != nullptr ? source->inflight->value() : 0;
    const std::uint64_t sq_now = source->sq_doorbells.load(kRelaxed);
    const std::uint64_t entries_now = source->sq_entries.load(kRelaxed);
    const std::uint64_t cq_now = source->cq_doorbells.load(kRelaxed);
    qw.sq_doorbells = sq_now - source->last_sq_doorbells;
    qw.sq_entries = entries_now - source->last_sq_entries;
    qw.cq_doorbells = cq_now - source->last_cq_doorbells;
    source->last_sq_doorbells = sq_now;
    source->last_sq_entries = entries_now;
    source->last_cq_doorbells = cq_now;
    sample.queues.push_back(qw);
  }

  for (TenantSource& source : tenants_) {
    TenantWindow tw;
    tw.tenant = source.tenant;
    const std::uint64_t admitted_now =
        source.admitted != nullptr ? source.admitted->value() : 0;
    const std::uint64_t rejected_now =
        source.rejected != nullptr ? source.rejected->value() : 0;
    const std::uint64_t payload_now =
        source.payload_bytes != nullptr ? source.payload_bytes->value() : 0;
    const std::uint64_t completions_now =
        source.completions != nullptr ? source.completions->value() : 0;
    tw.admitted = admitted_now - source.last_admitted;
    tw.rejected = rejected_now - source.last_rejected;
    tw.payload_bytes = payload_now - source.last_payload_bytes;
    tw.completions = completions_now - source.last_completions;
    tw.inflight_slots =
        source.inflight_slots != nullptr ? source.inflight_slots->value() : 0;
    source.last_admitted = admitted_now;
    source.last_rejected = rejected_now;
    source.last_payload_bytes = payload_now;
    source.last_completions = completions_now;
    sample.tenants.push_back(tw);
  }

  if (policy_registered_) {
    const std::uint64_t inline_now = policy_.inline_decisions != nullptr
                                         ? policy_.inline_decisions->value()
                                         : 0;
    const std::uint64_t dma_now =
        policy_.dma_decisions != nullptr ? policy_.dma_decisions->value() : 0;
    const std::uint64_t rejects_now =
        policy_.rejects != nullptr ? policy_.rejects->value() : 0;
    sample.policy_inline = inline_now - policy_.last_inline;
    sample.policy_dma = dma_now - policy_.last_dma;
    sample.policy_rejects = rejects_now - policy_.last_rejects;
    sample.policy_shedding = policy_.shedding_queues != nullptr
                                 ? policy_.shedding_queues->value()
                                 : 0;
    policy_.last_inline = inline_now;
    policy_.last_dma = dma_now;
    policy_.last_rejects = rejects_now;
  }

  if (observer_ != nullptr) observer_->on_window(sample);

  ring_.push_back(std::move(sample));
  if (ring_.size() > config_.max_windows) {
    ring_.pop_front();
    windows_dropped_.fetch_add(1, kRelaxed);
  }
  windows_closed_.fetch_add(1, kRelaxed);

  window_start_ = end;
  window_end_.store(end + config_.window_ns, kRelaxed);
}

void Telemetry::advance_to(Nanoseconds now) {
  if (!config_.enabled) return;
  if (now < window_end_.load(kRelaxed)) return;  // fast path
  std::lock_guard<std::mutex> lock(mutex_);
  // Re-check under the lock: another thread may have rolled the window.
  while (now >= window_end_.load(kRelaxed)) {
    close_window_locked(window_start_ + config_.window_ns);
  }
}

void Telemetry::flush(Nanoseconds now) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  while (now >= window_end_.load(kRelaxed)) {
    close_window_locked(window_start_ + config_.window_ns);
  }
  // Close the in-progress partial window (delta residuals -> sample) so
  // sample sums match cumulative counters exactly. The window grid
  // restarts at `now`.
  if (now > window_start_) close_window_locked(now);
}

void Telemetry::clear(Nanoseconds now) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_index_ = 0;
  windows_closed_.store(0, kRelaxed);
  windows_dropped_.store(0, kRelaxed);
  // Re-baseline deltas at the current cumulative values: the hooks keep
  // counting upward, only the sampling restarts.
  for (std::size_t dir = 0; dir < kLinkDirs; ++dir) {
    for (std::size_t kind = 0; kind < kTlpKinds; ++kind) {
      const AtomicFlow& cumulative = flows_[dir][kind];
      last_flows_[dir][kind].tlps = cumulative.tlps.load(kRelaxed);
      last_flows_[dir][kind].data_bytes = cumulative.data_bytes.load(kRelaxed);
      last_flows_[dir][kind].wire_bytes = cumulative.wire_bytes.load(kRelaxed);
    }
  }
  last_payload_bytes_ = payload_bytes_.load(kRelaxed);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    last_stage_count_[i] = stage_count_[i].load(kRelaxed);
    last_stage_ns_[i] = stage_ns_[i].load(kRelaxed);
  }
  last_wait_count_ = wait_count_.load(kRelaxed);
  for (std::size_t i = 0; i < kWaitSegmentCount; ++i) {
    last_wait_ns_[i] = wait_ns_[i].load(kRelaxed);
  }
  for (const auto& source : queues_) {
    if (source == nullptr) continue;
    source->last_sq_doorbells = source->sq_doorbells.load(kRelaxed);
    source->last_sq_entries = source->sq_entries.load(kRelaxed);
    source->last_cq_doorbells = source->cq_doorbells.load(kRelaxed);
  }
  for (TenantSource& source : tenants_) {
    source.last_admitted =
        source.admitted != nullptr ? source.admitted->value() : 0;
    source.last_rejected =
        source.rejected != nullptr ? source.rejected->value() : 0;
    source.last_payload_bytes =
        source.payload_bytes != nullptr ? source.payload_bytes->value() : 0;
    source.last_completions =
        source.completions != nullptr ? source.completions->value() : 0;
  }
  if (policy_registered_) {
    policy_.last_inline = policy_.inline_decisions != nullptr
                              ? policy_.inline_decisions->value()
                              : 0;
    policy_.last_dma =
        policy_.dma_decisions != nullptr ? policy_.dma_decisions->value() : 0;
    policy_.last_rejects =
        policy_.rejects != nullptr ? policy_.rejects->value() : 0;
  }
  window_start_ = now;
  window_end_.store(now + config_.window_ns, kRelaxed);
}

std::vector<TelemetrySample> Telemetry::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::array<std::array<FlowCell, kTlpKinds>, kLinkDirs> Telemetry::sum_flows(
    const std::vector<TelemetrySample>& samples) {
  std::array<std::array<FlowCell, kTlpKinds>, kLinkDirs> total{};
  for (const TelemetrySample& sample : samples) {
    for (std::size_t dir = 0; dir < kLinkDirs; ++dir) {
      for (std::size_t kind = 0; kind < kTlpKinds; ++kind) {
        total[dir][kind] += sample.flow[dir][kind];
      }
    }
  }
  return total;
}

std::vector<TelemetrySample> Telemetry::downsample(
    std::vector<TelemetrySample> samples, std::size_t max_points) {
  if (max_points == 0 || samples.size() <= max_points) return samples;
  // Merge runs of ceil(n / max_points) adjacent windows. Sums accumulate;
  // gauges (occupancy, backlog) keep the run's final value, matching the
  // point-in-time semantics of a coarser sampling window.
  const std::size_t stride =
      (samples.size() + max_points - 1) / max_points;
  std::vector<TelemetrySample> merged;
  merged.reserve((samples.size() + stride - 1) / stride);
  for (std::size_t begin = 0; begin < samples.size(); begin += stride) {
    const std::size_t end = std::min(begin + stride, samples.size());
    TelemetrySample out = samples[end - 1];  // gauges + end_ns from the last
    out.index = merged.size();
    out.start_ns = samples[begin].start_ns;
    for (std::size_t i = begin; i + 1 < end; ++i) {
      const TelemetrySample& add = samples[i];
      for (std::size_t dir = 0; dir < kLinkDirs; ++dir) {
        for (std::size_t kind = 0; kind < kTlpKinds; ++kind) {
          out.flow[dir][kind] += add.flow[dir][kind];
        }
      }
      out.payload_bytes += add.payload_bytes;
      for (std::size_t s = 0; s < kStageCount; ++s) {
        out.stage_count[s] += add.stage_count[s];
        out.stage_ns[s] += add.stage_ns[s];
      }
      out.wait_count += add.wait_count;
      for (std::size_t s = 0; s < kWaitSegmentCount; ++s) {
        out.wait_ns[s] += add.wait_ns[s];
      }
      for (const QueueWindow& qw : add.queues) {
        for (QueueWindow& target : out.queues) {
          if (target.qid == qw.qid) {
            target.sq_doorbells += qw.sq_doorbells;
            target.sq_entries += qw.sq_entries;
            target.cq_doorbells += qw.cq_doorbells;
          }
        }
      }
      for (const TenantWindow& tw : add.tenants) {
        for (TenantWindow& target : out.tenants) {
          if (target.tenant == tw.tenant) {
            target.admitted += tw.admitted;
            target.rejected += tw.rejected;
            target.payload_bytes += tw.payload_bytes;
            target.completions += tw.completions;
          }
        }
      }
      out.policy_inline += add.policy_inline;
      out.policy_dma += add.policy_dma;
      out.policy_rejects += add.policy_rejects;
    }
    merged.push_back(std::move(out));
  }
  return merged;
}

std::string Telemetry::dump_tsv(const std::vector<TelemetrySample>& samples,
                                double bytes_per_ns) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "# bx-telemetry v1 bytes_per_ns=%.6f\n",
                bytes_per_ns);
  out += line;
  out +=
      "# index\tstart_ns\tend_ns"
      "\tmwr_tlps_down\tmwr_data_down\tmwr_wire_down"
      "\tmrd_tlps_down\tmrd_data_down\tmrd_wire_down"
      "\tcpl_tlps_down\tcpl_data_down\tcpl_wire_down"
      "\tmwr_tlps_up\tmwr_data_up\tmwr_wire_up"
      "\tmrd_tlps_up\tmrd_data_up\tmrd_wire_up"
      "\tcpl_tlps_up\tcpl_data_up\tcpl_wire_up"
      "\tpayload_bytes\tbacklog\n";
  for (const TelemetrySample& sample : samples) {
    std::snprintf(line, sizeof(line), "%llu\t%llu\t%llu",
                  static_cast<unsigned long long>(sample.index),
                  static_cast<unsigned long long>(sample.start_ns),
                  static_cast<unsigned long long>(sample.end_ns));
    out += line;
    for (std::size_t dir = 0; dir < kLinkDirs; ++dir) {
      for (std::size_t kind = 0; kind < kTlpKinds; ++kind) {
        const FlowCell& cell = sample.flow[dir][kind];
        std::snprintf(line, sizeof(line), "\t%llu\t%llu\t%llu",
                      static_cast<unsigned long long>(cell.tlps),
                      static_cast<unsigned long long>(cell.data_bytes),
                      static_cast<unsigned long long>(cell.wire_bytes));
        out += line;
      }
    }
    std::snprintf(line, sizeof(line), "\t%llu\t%lld\n",
                  static_cast<unsigned long long>(sample.payload_bytes),
                  static_cast<long long>(sample.backlog));
    out += line;
  }
  return out;
}

}  // namespace bx::obs
