// Structured command tracing for the simulated NVMe pipeline.
//
// Every instrumented layer (driver, controller, SSD executor) appends
// TraceEvents to one TraceRecorder owned by the Testbed. An event is an
// *interval* [start, end] of simulated time attributed to one pipeline
// stage of one command, keyed by (qid, cid). The "primary" stages tile a
// command's end-to-end latency with no gaps or overlaps, so summing the
// primary durations of a QD1 command reproduces Completion::latency_ns
// exactly (tests/trace_latency_accounting_test.cc asserts this).
// kDoorbell and kNandIo are nested annotation events: they overlap a
// primary interval and are excluded from latency accounting.
//
// At depth > 1 stage intervals alone cannot attribute a command's latency
// (most of it is waiting, not service). The recorder therefore also keeps
// a per-command attribution table — begin_command/finish_command bracket
// each I/O command, record() accumulates its device-stage service and
// completion times into a DeviceReport — from which the driver builds the
// obs::LatencyBreakdown carried on every Completion (obs/attribution.h).
// The same table drives tail-based sampling (SamplingConfig): buffer each
// command's events and keep only the interesting tails, with exact
// kept + sampled_out == seen accounting.
//
// Thread safety: the recorder is sharded by qid (shard mutex + vector),
// with a global atomic sequence number, so the PR-1 multi-submitter path
// stays clean under TSan. snapshot() merges shards in seq order. Device
// -side layers that do not know (qid, cid) — the SSD executor — read them
// from the recorder's device context, which the controller sets around
// executor dispatch; all device-side code runs under the Testbed firmware
// mutex, so the context needs no atomics.
//
// Determinism: events carry only simulated time and the seq counter, so
// two runs of the same seeded scenario produce byte-identical dump()
// output (tests/trace_golden_test.cc asserts this).
//
// Cost when disabled: configure with -DBX_OBS_TRACE=OFF and enabled() is
// a compile-time false — every instrumentation site is
// `if (tracer && tracer->enabled())`, which the compiler folds away.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "obs/attribution.h"

namespace bx::obs {

enum class TraceStage : std::uint8_t {
  kSubmit = 0,   // host: build + insert + doorbell, one per driver-level op
  kDoorbell,     // host: one SQ tail doorbell MMIO (annotation, in kSubmit)
  kSqeFetch,     // device: 64 B SQE DMA fetch + fetch firmware cost
  kChunkFetch,   // device: one inline-chunk slot fetch (+ copy/track cost)
  kPrpDma,       // device: PRP gather/scatter incl. list fetches + setup
  kSglDma,       // device: SGL gather/scatter incl. setup
  kNandIo,       // device: FTL/NAND or write-cache work (annotation, in kExec)
  kExec,         // device: executor dispatch + run (and BandSlim stream fw)
  kReadChunkWrite,  // device: inline read-chunk MWr emission (ByteExpress-R)
  kCompletion,   // device: CQE post firmware + CQE write + MSI-X
  kCqDoorbell,   // host: completion handling + CQ head doorbell MMIO
  kCount_,
};

inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(TraceStage::kCount_);

[[nodiscard]] std::string_view stage_name(TraceStage stage) noexcept;

/// Stages whose intervals partition a command's latency window. kDoorbell
/// and kNandIo are annotations nested inside primary intervals.
[[nodiscard]] constexpr bool is_primary_stage(TraceStage stage) noexcept {
  return stage != TraceStage::kDoorbell && stage != TraceStage::kNandIo;
}

// TraceEvent::flags bits.
/// Auxiliary command: a BandSlim fragment (cid is the protocol's 0, not a
/// real command id) or BandSlim stream-setup firmware work. Auxiliary
/// kSubmit/kSqeFetch events never open a completion obligation.
inline constexpr std::uint8_t kFlagAuxCommand = 1u << 0;
/// The command is an OOO-marked inline command (chunks are self-describing
/// and need not be queue-local).
inline constexpr std::uint8_t kFlagOooCommand = 1u << 1;
/// The chunk is a self-describing OOO chunk (carries payload_id, no cid).
inline constexpr std::uint8_t kFlagOooChunk = 1u << 2;
/// The submission's transfer method was changed by the driver (inline
/// request routed through PRP: feasibility fallback or a degraded queue) —
/// set on kSubmit so traffic accounting can explain the extra PRP bytes.
inline constexpr std::uint8_t kFlagMethodFallback = 1u << 3;
/// The submission's transfer method was chosen by the adaptive policy
/// (TransferMethod::kAuto resolved through driver::MethodPolicy) — set on
/// kSubmit so traces distinguish policy decisions from caller-pinned
/// methods (docs/POLICY.md).
inline constexpr std::uint8_t kFlagAutoPolicy = 1u << 4;

/// One interval of simulated time attributed to a pipeline stage. Field
/// meaning per stage (unused fields are zero):
///   kSubmit:     bytes=payload, aux=TransferMethod as int
///   kDoorbell:   slot=new tail value, aux=ring entries published
///   kSqeFetch:   slot=ring index, aux=expected queue-local chunk count,
///                bytes=inline length
///   kChunkFetch: slot=ring index, aux=chunk index within command,
///                bytes=chunk payload bytes
///   kPrpDma/kSglDma: bytes=payload length, aux=0 gather / 1 scatter
///   kNandIo:     bytes=bytes moved, aux=0 write / 1 read
///   kExec:       bytes=payload length
///   kCompletion: (none)
///   kCqDoorbell: slot=new CQ head value
struct TraceEvent {
  std::uint64_t seq = 0;    // global record order (filled by the recorder)
  Nanoseconds start = 0;    // sim-clock interval start
  Nanoseconds end = 0;      // sim-clock interval end (>= start)
  TraceStage stage = TraceStage::kSubmit;
  std::uint8_t flags = 0;
  std::uint16_t qid = 0;
  std::uint16_t cid = 0;
  /// Owning tenant of the command (0 = untenanted). Host-side events
  /// carry it from IoRequest::tenant; it survives into the Perfetto
  /// export as a slice arg (tests/exporters_test.cc).
  std::uint16_t tenant = 0;
  std::uint32_t slot = 0;
  std::uint64_t aux = 0;
  std::uint64_t bytes = 0;
};

/// Device-side residency of one in-flight command, accumulated passively
/// by the recorder from the stage events the controller/SSD layers already
/// record, and consumed exactly once by the driver when the command
/// completes. This is what lets the wait/service decomposition stay exact
/// at depth without threading state through the firmware: the recorder
/// sees every device event anyway.
struct DeviceReport {
  /// At least one device-stage event was observed for the command.
  bool valid = false;
  /// Start of the first device-stage event (the SQE fetch) — everything
  /// between the host's doorbell and this point is arbitration wait.
  Nanoseconds fetch_start = 0;
  /// End of the kCompletion event (CQE host-visible); 0 when the device
  /// never posted one (dropped completion, abort).
  Nanoseconds cqe_end = 0;
  /// Sum of device primary-stage event durations (fetch, chunk fetch,
  /// DMA, exec, read-chunk emission, completion post).
  std::uint64_t service_ns = 0;
  /// Reassembly/defer wait the controller noted explicitly
  /// (note_command_wait) — deferred-OOO chunks in flight, BandSlim
  /// fragment assembly.
  std::uint64_t wait_ns = 0;
};

/// Tail-based sampling policy for per-command event retention. Attribution
/// (begin/finish, DeviceReport) is always on; when `enabled` is set the
/// recorder additionally BUFFERS each open command's events and keeps them
/// only if the finished command is interesting: latency at or above
/// `keep_threshold_ns`, in the running top-k of its window, or picked by
/// the deterministic 1-in-`sample_every` residual sampler. Everything else
/// is discarded with exact accounting: commands_kept + commands_sampled_out
/// == commands_seen, always. Events of commands the recorder never saw
/// begin_command for (admin queue, aux commands) pass through unsampled.
struct SamplingConfig {
  bool enabled = false;
  /// Keep every command whose latency_ns >= this (0 disables the rule).
  Nanoseconds keep_threshold_ns = 0;
  /// Keep any command in the running top-k latencies of its window
  /// (0 disables the rule). "Running": membership is decided online at
  /// completion time against the commands finished so far in the window,
  /// so the kept set is a superset of the true top-k.
  std::uint32_t top_k = 0;
  /// Window length for the top-k rule.
  Nanoseconds window_ns = 1'000'000;
  /// Of the commands no rule kept, keep every Nth (0 keeps none).
  std::uint32_t sample_every = 0;
};

class TraceRecorder {
 public:
#ifdef BX_OBS_TRACE_DISABLED
  static constexpr bool kCompiledIn = false;
#else
  static constexpr bool kCompiledIn = true;
#endif

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  /// Folds to `false` at compile time when tracing is configured out; all
  /// instrumentation sites guard on this.
  [[nodiscard]] bool enabled() const noexcept {
    return kCompiledIn && enabled_.load(std::memory_order_relaxed);
  }

  /// Events kept before new ones are dropped (memory bound for very long
  /// benchmark runs); dropped events are counted, never silently lost.
  void set_capacity(std::uint64_t max_events) noexcept {
    capacity_.store(max_events, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Appends `event` (seq is assigned here). Safe from any thread.
  void record(TraceEvent event);

  /// Appends `event` with (qid, cid) filled from the device context — for
  /// device-side layers below the controller (e.g. the SSD executor).
  void record_in_device_context(TraceEvent event);

  /// The (qid, cid) the device firmware is currently executing. Set by the
  /// controller around executor dispatch; only touched under the firmware
  /// mutex, so plain fields suffice.
  void set_device_context(std::uint16_t qid, std::uint16_t cid) noexcept {
    device_qid_ = qid;
    device_cid_ = cid;
    device_context_valid_ = true;
  }
  void clear_device_context() noexcept { device_context_valid_ = false; }

  // ---- per-command attribution + tail-based sampling ----------------
  // The driver brackets every I/O command's life with begin_command /
  // finish_command; in between, record() transparently accumulates the
  // command's device-stage service into its table entry (and buffers the
  // events when sampling is enabled). finish_command returns the device
  // report and applies the keep/sample decision.

  void begin_command(std::uint16_t qid, std::uint16_t cid,
                     std::uint16_t tenant);
  /// Controller-noted wait (deferred-OOO reassembly, fragment assembly)
  /// attributed to WaitSegment::kReassembly. No-op for unknown commands.
  void note_command_wait(std::uint16_t qid, std::uint16_t cid,
                         std::uint64_t wait_ns);
  /// Closes the command's table entry, decides keep/sample using
  /// `latency_ns` against the sampling policy (`now` anchors the top-k
  /// window), flushes or discards its buffered events, and returns the
  /// accumulated device report. Unknown commands return {valid = false}
  /// and count as kept.
  DeviceReport finish_command(std::uint16_t qid, std::uint16_t cid,
                              Nanoseconds now, Nanoseconds latency_ns);

  void configure_sampling(const SamplingConfig& config);
  [[nodiscard]] SamplingConfig sampling_config() const;

  /// Exact sampling accounting: kept + sampled_out == seen, always.
  [[nodiscard]] std::uint64_t commands_seen() const noexcept {
    return commands_seen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t commands_kept() const noexcept {
    return commands_kept_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t commands_sampled_out() const noexcept {
    return commands_sampled_out_.load(std::memory_order_relaxed);
  }
  /// Buffered events discarded with their sampled-out commands (distinct
  /// from dropped(): those hit the capacity bound).
  [[nodiscard]] std::uint64_t events_sampled_out() const noexcept {
    return events_sampled_out_.load(std::memory_order_relaxed);
  }

  /// All events so far, merged across shards in seq order.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Drops all recorded events, open attribution entries and sampling
  /// accounting (seq keeps counting upward).
  void clear();

  [[nodiscard]] std::uint64_t events_recorded() const noexcept {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// Deterministic multi-line text rendering of a snapshot — what the
  /// golden tests diff byte-for-byte.
  [[nodiscard]] static std::string dump(const std::vector<TraceEvent>& events);

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };
  /// One open command in the attribution table, keyed (qid << 16) | cid.
  struct OpenCommand {
    std::uint16_t tenant = 0;
    bool buffering = false;
    DeviceReport report;
    std::vector<TraceEvent> buffered;
  };

  static constexpr std::uint32_t command_key(std::uint16_t qid,
                                             std::uint16_t cid) noexcept {
    return (std::uint32_t{qid} << 16) | cid;
  }

  /// Capacity-checked push into the event shards (seq already assigned).
  void store_event(const TraceEvent& event);

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> capacity_{1u << 20};
  std::atomic<std::uint64_t> stored_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::array<Shard, kShards> shards_;

  // Attribution table + sampling state. table_mutex_ is taken before a
  // shard mutex (flush path) and never the other way around.
  mutable std::mutex table_mutex_;
  std::unordered_map<std::uint32_t, OpenCommand> open_;
  SamplingConfig sampling_;
  std::uint64_t topk_window_index_ = 0;
  std::vector<Nanoseconds> topk_heap_;  // min-heap of kept window latencies
  std::uint64_t residual_counter_ = 0;
  std::atomic<std::uint64_t> commands_seen_{0};
  std::atomic<std::uint64_t> commands_kept_{0};
  std::atomic<std::uint64_t> commands_sampled_out_{0};
  std::atomic<std::uint64_t> events_sampled_out_{0};

  std::uint16_t device_qid_ = 0;
  std::uint16_t device_cid_ = 0;
  bool device_context_valid_ = false;
};

/// Per-stage latency distribution derived from a trace snapshot — the
/// "per-stage p50/p99" the benches export.
struct StageBreakdown {
  struct StageStats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    LatencyHistogram durations;
  };
  std::array<StageStats, kStageCount> stages{};

  [[nodiscard]] const StageStats& of(TraceStage stage) const noexcept {
    return stages[static_cast<std::size_t>(stage)];
  }
};

[[nodiscard]] StageBreakdown stage_breakdown(
    const std::vector<TraceEvent>& events);

/// JSON object keyed by stage name with count/total/p50/p99 per stage.
[[nodiscard]] std::string to_json(const StageBreakdown& breakdown);

}  // namespace bx::obs
