// Queue-depth-aware wait/service decomposition of a command's latency.
//
// At QD1 the primary trace stages tile a command's latency window, so the
// stage durations ARE the attribution (trace_latency_accounting_test). At
// depth they are not: most of a deep-queue command's life is spent waiting
// — for admission, in the reactor's MPSC ring, for SQ slots, under a
// coalesced doorbell, in controller arbitration, in OOO reassembly — and
// none of those waits is a stage interval. LatencyBreakdown decomposes
// `Completion::latency_ns` into eight wait/service segments that sum
// EXACTLY to the measured latency for every command at any depth
// (obs::check_breakdown_additivity enforces the invariant;
// tests/latency_attribution_test.cc asserts zero residual at QD 1/8/32).
//
// Segment semantics (host marks + device report, telescoped by
// make_additive so the sum is exact by construction):
//
//   kGateWait    admission-gate decision (tenant token bucket / budgets)
//   kRingWait    reactor MPSC-ring residency: post() -> drain pop
//   kSlotWait    SQ-slot backpressure: first publish attempt -> slots free
//   kBellHold    doorbell-coalescing hold: SQE pushed -> its bell rung
//   kArbWait     doorbell -> device fetch, plus any device residency not
//                covered by stage service or a noted reassembly wait
//                (WRR/RR arbitration, fault-injected completion delay)
//   kService     host SQE build/staging + device primary-stage service
//   kReassembly  deferred-OOO / BandSlim reassembly wait noted by the
//                controller; inline-read ring residency on the read path
//   kDelivery    CQE write -> host reap (CQ poll, doorbell, finish)
//
// Paths that end without a device report (timeout -> synthesized Abort
// Requested, dropped completions) book everything after the doorbell as
// kArbWait: the command demonstrably left the host and never came back.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace bx::obs {

enum class WaitSegment : std::uint8_t {
  kGateWait = 0,
  kRingWait,
  kSlotWait,
  kBellHold,
  kArbWait,
  kService,
  kReassembly,
  kDelivery,
  kCount_,
};

inline constexpr std::size_t kWaitSegmentCount =
    static_cast<std::size_t>(WaitSegment::kCount_);

/// Short stable label ("gate", "ring", ... "delivery") used for metric
/// names, telemetry rows, exporter tracks and bench report keys.
[[nodiscard]] std::string_view wait_segment_name(WaitSegment segment) noexcept;

struct LatencyBreakdown {
  std::array<std::uint64_t, kWaitSegmentCount> ns{};

  [[nodiscard]] std::uint64_t of(WaitSegment segment) const noexcept {
    return ns[static_cast<std::size_t>(segment)];
  }
  [[nodiscard]] std::uint64_t& of(WaitSegment segment) noexcept {
    return ns[static_cast<std::size_t>(segment)];
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t v : ns) total += v;
    return total;
  }
};

/// Builds a breakdown whose segments sum EXACTLY to `total_ns`. `want`
/// holds the independently measured segment durations (kArbWait is
/// ignored); each is granted from the remaining budget in a fixed order
/// (gate, ring, slot, bell, delivery, reassembly, service) and kArbWait
/// receives the exact remainder. On the healthy paths the marks telescope
/// and nothing is clamped; the budget walk only guards pathological
/// interleavings (e.g. an aux command recycling a live cid) so the
/// additivity invariant holds unconditionally.
[[nodiscard]] LatencyBreakdown make_additive(
    std::uint64_t total_ns,
    const std::array<std::uint64_t, kWaitSegmentCount>& want) noexcept;

/// Additivity invariant: every segment finite and the segment sum equal to
/// `latency_ns`, exactly. Returns an empty string when the invariant
/// holds, else a human-readable violation.
[[nodiscard]] std::string check_breakdown_additivity(
    const LatencyBreakdown& breakdown, std::uint64_t latency_ns);

/// JSON object keyed by segment name, e.g. {"gate": 0, ..., "delivery": 12}.
[[nodiscard]] std::string to_json(const LatencyBreakdown& breakdown);

}  // namespace bx::obs
