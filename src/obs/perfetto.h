// Perfetto / Chrome trace_event JSON export.
//
// Renders a TraceRecorder snapshot plus Telemetry counter windows into the
// legacy Chrome trace_event JSON format, which ui.perfetto.dev (and
// chrome://tracing) open directly:
//   * pid 1 "host": per-queue threads carrying kSubmit/kCqDoorbell slices
//     and kDoorbell instants,
//   * pid 2 "device": per-queue threads carrying the firmware stages
//     (kSqeFetch, kChunkFetch, kPrpDma, kSglDma, kNandIo, kExec,
//     kCompletion),
//   * pid 3 "link": counter tracks from the telemetry windows — per-kind
//     wire bytes by direction, utilization %, payload bytes, per-queue SQ
//     occupancy.
// All slices are complete ("X") events with microsecond ts/dur at
// nanosecond precision (%.3f); doorbells are instants ("i"). Events are
// emitted sorted by (start, seq), so the output is byte-identical across
// same-seed runs (tests/exporters_test.cc asserts this).
//
// check_perfetto_json() is a minimal structural validator for tests and
// bxmon: it does not parse full JSON, it scans the traceEvents array and
// checks the invariants a viewer depends on (ph present, X events carry
// ts/dur/pid/tid, ts monotonic, B/E balanced, every slice's pid/tid
// introduced by process_name/thread_name metadata).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.h"
#include "obs/trace.h"

namespace bx::obs {

/// Renders `events` + `samples` as a trace_event JSON document.
/// `bytes_per_ns` is the link rate used for the utilization track (pass
/// Telemetry::link_rate()).
[[nodiscard]] std::string to_perfetto_json(
    const std::vector<TraceEvent>& events,
    const std::vector<TelemetrySample>& samples, double bytes_per_ns);

/// Result of the structural check; `ok()` iff no error was found.
struct PerfettoCheck {
  std::string error;        // empty when structurally valid
  std::size_t slice_events = 0;    // "X"
  std::size_t instant_events = 0;  // "i"
  std::size_t counter_events = 0;  // "C"
  std::size_t metadata_events = 0; // "M"

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Validates the structural invariants described above. Accepts any
/// trace_event JSON with a traceEvents array, not just our exporter's.
[[nodiscard]] PerfettoCheck check_perfetto_json(std::string_view json);

}  // namespace bx::obs
