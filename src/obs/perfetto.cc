#include "obs/perfetto.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

namespace bx::obs {

namespace {

// Host-side stages render under pid 1, device-side under pid 2, the
// telemetry counter tracks under pid 3. tid = qid + 1 (tid 0 renders
// poorly in some viewers).
constexpr int kHostPid = 1;
constexpr int kDevicePid = 2;
constexpr int kLinkPid = 3;

bool is_host_stage(TraceStage stage) noexcept {
  return stage == TraceStage::kSubmit || stage == TraceStage::kDoorbell ||
         stage == TraceStage::kCqDoorbell;
}

void append_ts(std::string& out, const char* key, Nanoseconds ns) {
  char buffer[64];
  // Microseconds at nanosecond precision: exact, deterministic.
  std::snprintf(buffer, sizeof(buffer), "\"%s\": %llu.%03u", key,
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buffer;
}

void append_slice(std::string& out, const TraceEvent& event, bool& first) {
  const bool host = is_host_stage(event.stage);
  const int pid = host ? kHostPid : kDevicePid;
  const int tid = event.qid + 1;
  char buffer[256];
  if (!first) out += ",\n";
  first = false;
  out += "    {\"name\": \"";
  out += stage_name(event.stage);
  out += "\", \"cat\": ";
  out += host ? "\"host\"" : "\"device\"";
  if (event.stage == TraceStage::kDoorbell) {
    out += ", \"ph\": \"i\", \"s\": \"t\", ";
    append_ts(out, "ts", event.start);
  } else {
    out += ", \"ph\": \"X\", ";
    append_ts(out, "ts", event.start);
    out += ", ";
    append_ts(out, "dur", event.end - event.start);
  }
  std::snprintf(buffer, sizeof(buffer),
                ", \"pid\": %d, \"tid\": %d, \"args\": {\"seq\": %llu, "
                "\"cid\": %u, \"tenant\": %u, \"slot\": %u, \"aux\": %llu, "
                "\"bytes\": %llu, \"flags\": %u}}",
                pid, tid, static_cast<unsigned long long>(event.seq),
                unsigned(event.cid), unsigned(event.tenant),
                unsigned(event.slot),
                static_cast<unsigned long long>(event.aux),
                static_cast<unsigned long long>(event.bytes),
                unsigned(event.flags));
  out += buffer;
}

void append_counter(std::string& out, const char* name, Nanoseconds ts,
                    const std::string& args, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "    {\"name\": \"";
  out += name;
  out += "\", \"ph\": \"C\", ";
  append_ts(out, "ts", ts);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), ", \"pid\": %d, \"args\": {",
                kLinkPid);
  out += buffer;
  out += args;
  out += "}}";
}

void append_metadata(std::string& out, int pid, std::optional<int> tid,
                     const char* key, const std::string& name, bool& first) {
  if (!first) out += ",\n";
  first = false;
  char buffer[192];
  if (tid.has_value()) {
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"ph\": \"M\", \"pid\": %d, "
                  "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
                  key, pid, *tid, name.c_str());
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"ph\": \"M\", \"pid\": %d, "
                  "\"args\": {\"name\": \"%s\"}}",
                  key, pid, name.c_str());
  }
  out += buffer;
}

}  // namespace

std::string to_perfetto_json(const std::vector<TraceEvent>& events,
                             const std::vector<TelemetrySample>& samples,
                             double bytes_per_ns) {
  std::vector<TraceEvent> sorted(events);
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start != b.start ? a.start < b.start : a.seq < b.seq;
            });

  // (pid, qid) pairs that need thread_name metadata, in sorted order.
  std::set<std::pair<int, std::uint16_t>> threads;
  for (const TraceEvent& event : sorted) {
    threads.emplace(is_host_stage(event.stage) ? kHostPid : kDevicePid,
                    event.qid);
  }

  std::string out = "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";
  bool first = true;
  append_metadata(out, kHostPid, std::nullopt, "process_name", "host", first);
  append_metadata(out, kDevicePid, std::nullopt, "process_name", "device",
                  first);
  if (!samples.empty()) {
    append_metadata(out, kLinkPid, std::nullopt, "process_name", "link",
                    first);
  }
  for (const auto& [pid, qid] : threads) {
    append_metadata(out, pid, qid + 1, "thread_name",
                    "q" + std::to_string(qid), first);
  }

  for (const TraceEvent& event : sorted) append_slice(out, event, first);

  char args[256];
  for (const TelemetrySample& sample : samples) {
    const auto down = std::size_t(LinkDir::kDownstream);
    const auto up = std::size_t(LinkDir::kUpstream);
    for (std::size_t kind = 0; kind < kTlpKinds; ++kind) {
      std::snprintf(args, sizeof(args), "\"down\": %llu, \"up\": %llu",
                    static_cast<unsigned long long>(
                        sample.flow[down][kind].wire_bytes),
                    static_cast<unsigned long long>(
                        sample.flow[up][kind].wire_bytes));
      const std::string name =
          "link." +
          std::string(tlp_kind_name(static_cast<TlpKind>(kind))) +
          "_wire_bytes";
      append_counter(out, name.c_str(), sample.start_ns, args, first);
    }
    std::snprintf(args, sizeof(args), "\"down\": %.2f, \"up\": %.2f",
                  100.0 * sample.utilization(LinkDir::kDownstream,
                                             bytes_per_ns),
                  100.0 * sample.utilization(LinkDir::kUpstream,
                                             bytes_per_ns));
    append_counter(out, "link.utilization_pct", sample.start_ns, args, first);
    std::snprintf(args, sizeof(args), "\"value\": %llu",
                  static_cast<unsigned long long>(sample.payload_bytes));
    append_counter(out, "host.payload_bytes", sample.start_ns, args, first);
    std::snprintf(args, sizeof(args), "\"value\": %lld",
                  static_cast<long long>(sample.backlog));
    append_counter(out, "ctrl.backlog", sample.start_ns, args, first);
    if (sample.wait_count > 0) {
      // Wait-attribution track: per-window nanoseconds in each
      // obs::WaitSegment, summed over the completions of the window.
      std::string wait_args;
      for (std::size_t s = 0; s < kWaitSegmentCount; ++s) {
        char pair[48];
        std::snprintf(pair, sizeof(pair), "%s\"%s\": %llu",
                      s == 0 ? "" : ", ",
                      std::string(wait_segment_name(WaitSegment(s))).c_str(),
                      static_cast<unsigned long long>(sample.wait_ns[s]));
        wait_args += pair;
      }
      append_counter(out, "driver.wait_ns", sample.start_ns, wait_args, first);
    }
    for (const QueueWindow& qw : sample.queues) {
      std::snprintf(args, sizeof(args),
                    "\"sq_occupancy\": %lld, \"inflight\": %lld",
                    static_cast<long long>(qw.sq_occupancy),
                    static_cast<long long>(qw.inflight));
      const std::string name = "q" + std::to_string(qw.qid) + ".occupancy";
      append_counter(out, name.c_str(), sample.start_ns, args, first);
    }
    for (const TenantWindow& tw : sample.tenants) {
      std::snprintf(args, sizeof(args),
                    "\"admitted\": %llu, \"rejected\": %llu, "
                    "\"payload_bytes\": %llu, \"completions\": %llu, "
                    "\"inflight_slots\": %lld",
                    static_cast<unsigned long long>(tw.admitted),
                    static_cast<unsigned long long>(tw.rejected),
                    static_cast<unsigned long long>(tw.payload_bytes),
                    static_cast<unsigned long long>(tw.completions),
                    static_cast<long long>(tw.inflight_slots));
      const std::string name =
          "tenant.t" + std::to_string(tw.tenant) + ".service";
      append_counter(out, name.c_str(), sample.start_ns, args, first);
    }
  }

  out += "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Structural checker
// ---------------------------------------------------------------------------

namespace {

/// Scans one top-level JSON object body (between its braces) and returns
/// the raw value text of `key`, or nullopt. Depth- and string-aware; no
/// full JSON parse.
std::optional<std::string_view> object_field(std::string_view body,
                                             std::string_view key) {
  std::size_t i = 0;
  const auto skip_string = [&](std::size_t from) {
    std::size_t j = from + 1;  // past the opening quote
    while (j < body.size()) {
      if (body[j] == '\\') {
        j += 2;
      } else if (body[j] == '"') {
        return j + 1;
      } else {
        ++j;
      }
    }
    return j;
  };
  while (i < body.size()) {
    while (i < body.size() &&
           (std::isspace(static_cast<unsigned char>(body[i])) != 0 ||
            body[i] == ',')) {
      ++i;
    }
    if (i >= body.size() || body[i] != '"') break;
    const std::size_t key_start = i + 1;
    const std::size_t key_end_quote = skip_string(i) - 1;
    const std::string_view this_key =
        body.substr(key_start, key_end_quote - key_start);
    i = key_end_quote + 1;
    while (i < body.size() &&
           (std::isspace(static_cast<unsigned char>(body[i])) != 0 ||
            body[i] == ':')) {
      ++i;
    }
    // Capture the value: scalar until top-level ',', or a balanced
    // object/array/string.
    const std::size_t value_start = i;
    if (i < body.size() && body[i] == '"') {
      i = skip_string(i);
    } else if (i < body.size() && (body[i] == '{' || body[i] == '[')) {
      int depth = 0;
      while (i < body.size()) {
        if (body[i] == '"') {
          i = skip_string(i);
          continue;
        }
        if (body[i] == '{' || body[i] == '[') ++depth;
        if (body[i] == '}' || body[i] == ']') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
        ++i;
      }
    } else {
      while (i < body.size() && body[i] != ',') ++i;
    }
    if (this_key == key) {
      std::string_view value = body.substr(value_start, i - value_start);
      while (!value.empty() &&
             std::isspace(static_cast<unsigned char>(value.back())) != 0) {
        value.remove_suffix(1);
      }
      return value;
    }
  }
  return std::nullopt;
}

std::optional<std::string_view> string_field(std::string_view body,
                                             std::string_view key) {
  const auto raw = object_field(body, key);
  if (!raw.has_value() || raw->size() < 2 || raw->front() != '"' ||
      raw->back() != '"') {
    return std::nullopt;
  }
  return raw->substr(1, raw->size() - 2);
}

std::optional<double> number_field(std::string_view body,
                                   std::string_view key) {
  const auto raw = object_field(body, key);
  if (!raw.has_value() || raw->empty()) return std::nullopt;
  char* end = nullptr;
  const std::string text(*raw);
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return std::nullopt;
  return value;
}

}  // namespace

PerfettoCheck check_perfetto_json(std::string_view json) {
  PerfettoCheck result;
  const auto fail = [&result](std::string message) {
    if (result.error.empty()) result.error = std::move(message);
    return result;
  };

  const std::size_t array_key = json.find("\"traceEvents\"");
  if (array_key == std::string_view::npos) {
    return fail("no traceEvents array");
  }
  std::size_t i = json.find('[', array_key);
  if (i == std::string_view::npos) return fail("traceEvents is not an array");
  ++i;

  std::set<int> process_pids;
  std::set<std::pair<int, int>> thread_ids;
  std::map<std::pair<int, int>, int> open_begins;  // B/E nesting per thread
  bool have_slice_ts = false;
  double last_slice_ts = 0.0;

  while (i < json.size()) {
    while (i < json.size() &&
           (std::isspace(static_cast<unsigned char>(json[i])) != 0 ||
            json[i] == ',')) {
      ++i;
    }
    if (i >= json.size()) return fail("unterminated traceEvents array");
    if (json[i] == ']') break;
    if (json[i] != '{') return fail("non-object element in traceEvents");

    // Find the matching close brace (string-aware).
    std::size_t j = i;
    int depth = 0;
    while (j < json.size()) {
      const char c = json[j];
      if (c == '"') {
        ++j;
        while (j < json.size() && json[j] != '"') {
          j += json[j] == '\\' ? 2 : 1;
        }
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) break;
      }
      ++j;
    }
    if (j >= json.size()) return fail("unbalanced braces in traceEvents");
    const std::string_view body = json.substr(i + 1, j - i - 1);
    i = j + 1;

    const auto ph = string_field(body, "ph");
    if (!ph.has_value() || ph->empty()) return fail("event without ph");
    const auto pid = number_field(body, "pid");
    const auto tid = number_field(body, "tid");
    const auto ts = number_field(body, "ts");

    if (*ph == "M") {
      ++result.metadata_events;
      const auto name = string_field(body, "name");
      if (!name.has_value()) return fail("metadata event without name");
      if (!pid.has_value()) return fail("metadata event without pid");
      if (*name == "process_name") {
        process_pids.insert(int(*pid));
      } else if (*name == "thread_name") {
        if (!tid.has_value()) return fail("thread_name without tid");
        thread_ids.emplace(int(*pid), int(*tid));
      }
      continue;
    }

    if (*ph == "X" || *ph == "B" || *ph == "E" || *ph == "i") {
      if (!pid.has_value() || !tid.has_value()) {
        return fail("slice event without pid/tid");
      }
      if (!ts.has_value()) return fail("slice event without ts");
      if (process_pids.count(int(*pid)) == 0) {
        return fail("slice pid not introduced by process_name metadata");
      }
      if (thread_ids.count({int(*pid), int(*tid)}) == 0) {
        return fail("slice tid not introduced by thread_name metadata");
      }
      if (*ph == "X") {
        ++result.slice_events;
        const auto dur = number_field(body, "dur");
        if (!dur.has_value() || *dur < 0) return fail("X event without dur");
        if (have_slice_ts && *ts < last_slice_ts) {
          return fail("non-monotonic slice ts");
        }
        have_slice_ts = true;
        last_slice_ts = *ts;
      } else if (*ph == "B") {
        ++open_begins[{int(*pid), int(*tid)}];
      } else if (*ph == "E") {
        if (--open_begins[{int(*pid), int(*tid)}] < 0) {
          return fail("E event without matching B");
        }
      } else {
        ++result.instant_events;
      }
      continue;
    }

    if (*ph == "C") {
      ++result.counter_events;
      if (!ts.has_value()) return fail("counter event without ts");
      if (!pid.has_value()) return fail("counter event without pid");
      continue;
    }
    // Unknown phases are tolerated (the format has many); they just are
    // not validated.
  }

  for (const auto& [thread, open] : open_begins) {
    (void)thread;
    if (open != 0) return fail("unbalanced B/E events");
  }
  return result;
}

}  // namespace bx::obs
