// Prometheus text-exposition snapshot writer.
//
// Renders a MetricsSnapshot (plus, optionally, telemetry aggregates) in
// the Prometheus text exposition format, version 0.0.4: HELP/TYPE header
// lines followed by samples, names sanitized to the Prometheus charset
// with a `bx_` prefix, counters suffixed `_total`, histograms rendered as
// summaries (quantile-labelled samples plus `_sum`/`_count`).
//
// The simulation has no HTTP endpoint — the "scrape" is a file written at
// the end of a run (bxmon `prom=` flag, CI artifact). lint_prometheus()
// is the format test both the exporter tests and bxmon run over the
// output: name charset, HELP-before-TYPE-before-samples per family, no
// duplicate samples.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace bx::obs {

/// Renders `snapshot` (and `telemetry`'s window aggregates, when non-null
/// — flush() it first so totals reconcile) as text exposition.
[[nodiscard]] std::string to_prometheus_text(const MetricsSnapshot& snapshot,
                                             const Telemetry* telemetry);

/// Result of the exposition-format lint; `ok()` iff no violation found.
struct PrometheusLint {
  std::string error;  // empty when the exposition is well-formed
  std::size_t samples = 0;
  std::size_t families = 0;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Lints `text` against the exposition format rules described above.
[[nodiscard]] PrometheusLint lint_prometheus(std::string_view text);

}  // namespace bx::obs
