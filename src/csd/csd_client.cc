#include "csd/csd_client.h"

#include <cstring>

namespace bx::csd {

using driver::IoRequest;
using nvme::IoOpcode;

CsdClient::CsdClient(driver::NvmeDriver& driver, Options options)
    : driver_(driver), options_(options) {}

StatusOr<driver::Completion> CsdClient::run(IoRequest& request) {
  auto completion = driver_.execute(request, options_.qid);
  BX_RETURN_IF_ERROR(completion.status());
  last_ = *completion;
  return completion;
}

Status CsdClient::create_table(const TableSchema& schema) {
  const std::string text = schema.serialize();
  IoRequest request;
  request.opcode = IoOpcode::kVendorCsdFilter;
  request.method = options_.method;
  request.aux = static_cast<std::uint32_t>(CsdSubOp::kCreateTable);
  request.write_data = as_bytes(text);
  auto completion = run(request);
  BX_RETURN_IF_ERROR(completion.status());
  if (!completion->ok()) return internal_error("create_table rejected");
  return Status::ok();
}

Status CsdClient::append_rows(std::string_view table, ConstByteSpan rows) {
  if (table.empty() || table.size() > 255) {
    return invalid_argument("bad table name");
  }
  // Payload framing: [u8 name_len][name][row bytes].
  ByteVec payload;
  payload.reserve(1 + table.size() + rows.size());
  payload.push_back(static_cast<Byte>(table.size()));
  payload.insert(payload.end(), table.begin(), table.end());
  payload.insert(payload.end(), rows.begin(), rows.end());

  IoRequest request;
  request.opcode = IoOpcode::kVendorCsdFilter;
  request.method = options_.method;
  request.aux = static_cast<std::uint32_t>(CsdSubOp::kAppendRows);
  request.write_data = payload;
  auto completion = run(request);
  BX_RETURN_IF_ERROR(completion.status());
  if (!completion->ok()) return internal_error("append_rows rejected");
  return Status::ok();
}

StatusOr<std::uint32_t> CsdClient::filter(std::string_view task) {
  IoRequest request;
  request.opcode = IoOpcode::kVendorCsdFilter;
  request.method = options_.method;
  request.aux = static_cast<std::uint32_t>(CsdSubOp::kRunFilter);
  request.write_data = as_bytes(task);
  auto completion = run(request);
  BX_RETURN_IF_ERROR(completion.status());
  if (!completion->ok()) {
    return internal_error("filter task rejected by device");
  }
  return completion->dw0;
}

StatusOr<std::vector<double>> CsdClient::aggregate(std::string_view task) {
  auto matches = filter(task);
  BX_RETURN_IF_ERROR(matches.status());
  auto row = fetch_results(4096);
  BX_RETURN_IF_ERROR(row.status());
  if (row->size() % sizeof(double) != 0) {
    return internal_error("aggregate result is not a row of doubles");
  }
  std::vector<double> values(row->size() / sizeof(double));
  std::memcpy(values.data(), row->data(), row->size());
  return values;
}

StatusOr<ByteVec> CsdClient::fetch_results(std::uint32_t max_bytes) {
  ByteVec buffer(max_bytes);
  IoRequest request;
  request.opcode = IoOpcode::kVendorRawRead;
  request.method = driver::TransferMethod::kPrp;  // read path
  request.aux = kRawReadFilterResult;
  request.read_buffer = buffer;
  auto completion = run(request);
  BX_RETURN_IF_ERROR(completion.status());
  if (!completion->ok()) return internal_error("result fetch rejected");
  buffer.resize(completion->bytes_returned);
  return buffer;
}

}  // namespace bx::csd
