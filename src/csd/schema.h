// Table schemas for the CSD filter engine.
//
// §2.2.2's key observation: "the SSD already stores table schema", so the
// host only ships a predicate + table identifier. Schemas here are created
// once (a management command) and kept device-side; rows are fixed-width
// records derived from the column types.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace bx::csd {

enum class ColumnType : std::uint8_t {
  kInt64,
  kFloat64,
  kString,  // fixed width, NUL padded
};

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  std::uint32_t width = 8;  // bytes; 8 for numerics, declared for strings

  [[nodiscard]] bool operator==(const Column& other) const = default;
};

class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<Column> columns);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Column>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::uint32_t row_size() const noexcept { return row_size_; }

  /// Column index by name, or -1.
  [[nodiscard]] int column_index(std::string_view name) const noexcept;
  /// Byte offset of column `index` within a row.
  [[nodiscard]] std::uint32_t column_offset(int index) const noexcept;

  /// Text form: "name col:type[:width] col:type ..." with types i64 / f64 /
  /// strN. Round-trips through parse().
  [[nodiscard]] std::string serialize() const;
  static StatusOr<TableSchema> parse(std::string_view text);

  /// Derived schema containing only `columns`, in the given order (the
  /// SELECT-list projection). Fails on unknown columns; an empty list
  /// returns the full schema (SELECT *).
  [[nodiscard]] StatusOr<TableSchema> project(
      const std::vector<std::string>& columns) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::uint32_t> offsets_;
  std::uint32_t row_size_ = 0;
};

}  // namespace bx::csd
