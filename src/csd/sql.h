// SELECT-WHERE SQL subset: lexer, parser, and predicate evaluation.
//
// This is the in-device query front end for SQL predicate pushdown
// (§2.2.2). Two input forms are accepted, matching the paper's Figure 7
// experiment which sends either the *full SQL string* or just the
// *table-name + predicate segment*:
//   full:    SELECT a, b FROM particles WHERE energy > 1.5 AND id != 3
//   segment: particles energy > 1.5 AND id != 3
//
// Supported: column comparisons (=, !=, <>, <, <=, >, >=) against integer,
// float, string and date 'YYYY-MM-DD' literals (dates compare as ISO
// strings), BETWEEN a AND b (desugared to >= AND <=), IN (x, y, ...)
// (desugared to an OR chain), LIKE with '%' wildcards at either end
// (prefix / suffix / contains / exact), combined with AND / OR / NOT and
// parentheses.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"
#include "csd/row.h"
#include "csd/schema.h"

namespace bx::csd {

enum class CompareOp : std::uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,  // string pattern with optional leading/trailing '%'
};
enum class LogicOp : std::uint8_t { kAnd, kOr };

using Literal = std::variant<std::int64_t, double, std::string>;

struct Expr {
  enum class Kind : std::uint8_t { kCompare, kLogic, kNot };
  Kind kind = Kind::kCompare;

  // kCompare
  std::string column;
  int column_index = -1;  // resolved by bind()
  CompareOp op = CompareOp::kEq;
  Literal literal;

  // kLogic (lhs,rhs) / kNot (lhs only)
  LogicOp logic = LogicOp::kAnd;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
};

enum class AggregateFn : std::uint8_t { kCount, kSum, kMin, kMax, kAvg };

struct AggregateItem {
  AggregateFn fn = AggregateFn::kCount;
  std::string column;  // empty for COUNT(*)
};

struct Query {
  std::vector<std::string> select_columns;  // empty == SELECT *
  /// Aggregate select list (SELECT COUNT(*), SUM(x) ...). Mutually
  /// exclusive with plain columns — there is no GROUP BY.
  std::vector<AggregateItem> aggregates;
  std::string table;
  std::unique_ptr<Expr> where;  // null == no WHERE clause
};

/// Parses the full SELECT form.
StatusOr<Query> parse_query(std::string_view sql);

/// Parses the segment form: first token is the table name, the rest is the
/// predicate.
StatusOr<Query> parse_segment(std::string_view text);

/// Auto-detects the form: leading SELECT keyword -> full, else segment.
StatusOr<Query> parse_task(std::string_view text);

/// Resolves column names against the schema and checks literal/column type
/// compatibility. Must run before evaluate().
Status bind(Expr& expr, const TableSchema& schema);

/// Evaluates a bound predicate against one row.
[[nodiscard]] bool evaluate(const Expr& expr, const TableSchema& schema,
                            RowView row) noexcept;

/// Canonical text form of an expression (round-trip aid for tests).
std::string to_string(const Expr& expr);

}  // namespace bx::csd
