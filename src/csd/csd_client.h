// Host-side CSD pushdown API over NVMe passthrough.
//
// The filter task payload — the full SQL string or the table+predicate
// segment — is exactly what the paper's Figure 7 transfers with each
// method. Management operations (schema creation, row loading) ride the
// same vendor command with a sub-opcode in the aux field.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "csd/schema.h"
#include "driver/nvme_driver.h"

namespace bx::csd {

/// Sub-opcodes of kVendorCsdFilter, carried in the request aux field.
enum class CsdSubOp : std::uint32_t {
  kRunFilter = 0,
  kCreateTable = 1,
  kAppendRows = 2,
};

/// Raw-read source selector (aux of kVendorRawRead).
inline constexpr std::uint32_t kRawReadFilterResult = 1;

class CsdClient {
 public:
  struct Options {
    std::uint16_t qid = 1;
    driver::TransferMethod method = driver::TransferMethod::kPrp;
  };

  CsdClient(driver::NvmeDriver& driver, Options options);

  Status create_table(const TableSchema& schema);

  /// `rows` must be whole encoded rows of the table's schema.
  Status append_rows(std::string_view table, ConstByteSpan rows);

  /// Sends the pushdown task string; returns the device's match count.
  StatusOr<std::uint32_t> filter(std::string_view task);

  /// Runs an aggregate pushdown ("SELECT COUNT(*), SUM(x) FROM t WHERE
  /// ...") and returns the aggregate values in select-list order (every
  /// value as f64; COUNT is exact up to 2^53).
  StatusOr<std::vector<double>> aggregate(std::string_view task);

  /// Reads back up to `max_bytes` of the last filter's matching rows.
  StatusOr<ByteVec> fetch_results(std::uint32_t max_bytes);

  [[nodiscard]] const driver::Completion& last_completion() const noexcept {
    return last_;
  }
  void set_method(driver::TransferMethod method) noexcept {
    options_.method = method;
  }

 private:
  StatusOr<driver::Completion> run(driver::IoRequest& request);

  driver::NvmeDriver& driver_;
  Options options_;
  driver::Completion last_{};
};

}  // namespace bx::csd
