// Fixed-width row encoding/decoding against a TableSchema.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"
#include "csd/schema.h"

namespace bx::csd {

/// Builds one row. Columns may be set in any order; unset columns are zero.
class RowBuilder {
 public:
  explicit RowBuilder(const TableSchema& schema);

  RowBuilder& set_int(std::string_view column, std::int64_t value);
  RowBuilder& set_double(std::string_view column, double value);
  RowBuilder& set_string(std::string_view column, std::string_view value);

  /// The encoded row; resets the builder for the next row.
  [[nodiscard]] ByteVec take();
  [[nodiscard]] ConstByteSpan view() const noexcept { return row_; }

 private:
  int require(std::string_view column, ColumnType type) const;

  const TableSchema& schema_;
  ByteVec row_;
};

/// Read-only accessor over an encoded row.
class RowView {
 public:
  RowView(const TableSchema& schema, ConstByteSpan row) noexcept
      : schema_(schema), row_(row) {}

  [[nodiscard]] std::int64_t get_int(int column) const noexcept;
  [[nodiscard]] double get_double(int column) const noexcept;
  /// Trailing NUL padding stripped.
  [[nodiscard]] std::string_view get_string(int column) const noexcept;

 private:
  const TableSchema& schema_;
  ConstByteSpan row_;
};

}  // namespace bx::csd
