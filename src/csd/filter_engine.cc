#include "csd/filter_engine.h"

#include <cstring>

namespace bx::csd {

FilterEngine::FilterEngine(nand::Ftl& ftl, SimClock& clock, Config config)
    : ftl_(ftl),
      clock_(clock),
      config_(config),
      next_lpn_(config.lpn_base) {
  BX_ASSERT(config.lpn_count > 0);
  BX_ASSERT(config.lpn_base + config.lpn_count <= ftl.logical_pages());
}

StatusOr<std::uint64_t> FilterEngine::allocate_lpn() {
  if (next_lpn_ >= config_.lpn_base + config_.lpn_count) {
    return resource_exhausted("CSD LPN range exhausted");
  }
  return next_lpn_++;
}

Status FilterEngine::create_table(std::string_view schema_text) {
  auto schema = TableSchema::parse(schema_text);
  BX_RETURN_IF_ERROR(schema.status());
  if (schema->row_size() == 0 || schema->row_size() > ftl_.page_size()) {
    return invalid_argument("row size must be within one page");
  }
  if (tables_.find(schema->name()) != tables_.end()) {
    return already_exists("table '" + schema->name() + "' exists");
  }
  TableState state;
  state.rows_per_page = ftl_.page_size() / schema->row_size();
  state.schema = std::move(schema).value();
  const std::string name = state.schema.name();
  tables_.emplace(name, std::move(state));
  return Status::ok();
}

Status FilterEngine::append_rows(std::string_view table, ConstByteSpan rows) {
  const auto it = tables_.find(table);
  if (it == tables_.end()) {
    return not_found("unknown table '" + std::string(table) + "'");
  }
  TableState& state = it->second;
  const std::uint32_t row_size = state.schema.row_size();
  if (rows.size() % row_size != 0) {
    return invalid_argument("append size not a multiple of the row size");
  }

  const std::uint32_t page_bytes = state.rows_per_page * row_size;
  std::size_t offset = 0;
  while (offset < rows.size()) {
    const std::size_t take = std::min<std::size_t>(
        rows.size() - offset, page_bytes - state.tail.size());
    state.tail.insert(state.tail.end(), rows.begin() + offset,
                      rows.begin() + offset + take);
    offset += take;
    if (state.tail.size() == page_bytes) {
      auto lpn = allocate_lpn();
      BX_RETURN_IF_ERROR(lpn.status());
      BX_RETURN_IF_ERROR(ftl_.write(*lpn, state.tail,
                                    nand::NandFlash::Blocking::kBackground));
      state.lpns.push_back(*lpn);
      state.tail.clear();
    }
  }
  state.row_count += rows.size() / row_size;
  return Status::ok();
}

StatusOr<std::uint32_t> FilterEngine::run_filter(std::string_view task_text) {
  clock_.advance(config_.cpu_parse_base_ns +
                 config_.cpu_parse_per_byte_ns * task_text.size());
  auto query = parse_task(task_text);
  BX_RETURN_IF_ERROR(query.status());

  const auto it = tables_.find(query->table);
  if (it == tables_.end()) {
    return not_found("unknown table '" + query->table + "'");
  }
  const TableState& state = it->second;
  const TableSchema& schema = state.schema;

  if (query->where != nullptr) {
    BX_RETURN_IF_ERROR(bind(*query->where, schema));
  }

  // SELECT-list projection: matching rows are emitted with only the
  // selected columns (in list order); empty list == SELECT *.
  auto projected = schema.project(query->select_columns);
  BX_RETURN_IF_ERROR(projected.status());
  struct ColumnSlice {
    std::uint32_t offset;
    std::uint32_t width;
  };
  std::vector<ColumnSlice> slices;
  if (!query->select_columns.empty()) {
    slices.reserve(query->select_columns.size());
    for (const std::string& column : query->select_columns) {
      const int index = schema.column_index(column);
      slices.push_back(
          {schema.column_offset(index),
           schema.columns()[static_cast<std::size_t>(index)].width});
    }
  }

  if (!query->aggregates.empty()) {
    return run_aggregate(state, *query);
  }

  result_.clear();
  result_schema_ = std::move(projected).value();
  stats_ = FilterStats{};
  const std::uint32_t out_row_size = result_schema_.row_size();

  const Status scanned = scan_table(state, [&](ConstByteSpan row) {
    const bool match =
        query->where == nullptr ||
        evaluate(*query->where, schema, RowView(schema, row));
    if (!match) return;
    ++stats_.rows_matched;
    if (result_.size() + out_row_size <= config_.result_capacity_bytes) {
      if (slices.empty()) {
        result_.insert(result_.end(), row.begin(), row.end());
      } else {
        for (const ColumnSlice& slice : slices) {
          result_.insert(result_.end(), row.begin() + slice.offset,
                         row.begin() + slice.offset + slice.width);
        }
      }
    } else {
      stats_.result_truncated = true;
    }
  });
  BX_RETURN_IF_ERROR(scanned);

  return static_cast<std::uint32_t>(stats_.rows_matched);
}

Status FilterEngine::scan_table(
    const TableState& state,
    const std::function<void(ConstByteSpan)>& visit) {
  const std::uint32_t row_size = state.schema.row_size();
  ByteVec page(ftl_.page_size());
  std::uint64_t remaining = state.row_count;

  auto scan_rows = [&](ConstByteSpan data, std::uint64_t rows) {
    for (std::uint64_t r = 0; r < rows; ++r) {
      clock_.advance(config_.cpu_eval_per_row_ns);
      ++stats_.rows_scanned;
      visit(data.subspan(r * row_size, row_size));
    }
  };

  for (const std::uint64_t lpn : state.lpns) {
    BX_RETURN_IF_ERROR(ftl_.read(lpn, page));
    ++stats_.pages_read;
    const std::uint64_t rows =
        std::min<std::uint64_t>(state.rows_per_page, remaining);
    scan_rows(page, rows);
    remaining -= rows;
  }
  if (!state.tail.empty()) {
    scan_rows(state.tail, state.tail.size() / row_size);
  }
  return Status::ok();
}

StatusOr<std::uint32_t> FilterEngine::run_aggregate(const TableState& state,
                                                    const Query& query) {
  const TableSchema& schema = state.schema;

  // Validate and resolve aggregate inputs.
  struct Accumulator {
    AggregateFn fn;
    int column = -1;       // -1 for COUNT(*)
    bool is_float = false;
    double sum = 0;
    double min = 0;
    double max = 0;
    bool seen = false;
  };
  std::vector<Accumulator> accumulators;
  std::vector<Column> out_columns;
  for (const AggregateItem& item : query.aggregates) {
    Accumulator acc;
    acc.fn = item.fn;
    std::string out_name;
    if (item.column.empty()) {
      if (item.fn != AggregateFn::kCount) {
        return invalid_argument("only COUNT accepts '*'");
      }
      out_name = "count";
    } else {
      acc.column = schema.column_index(item.column);
      if (acc.column < 0) {
        return not_found("unknown aggregate column '" + item.column + "'");
      }
      const ColumnType type =
          schema.columns()[static_cast<std::size_t>(acc.column)].type;
      if (item.fn != AggregateFn::kCount &&
          type == ColumnType::kString) {
        return invalid_argument("aggregate over a string column");
      }
      acc.is_float = type == ColumnType::kFloat64;
      switch (item.fn) {
        case AggregateFn::kCount: out_name = "count_" + item.column; break;
        case AggregateFn::kSum: out_name = "sum_" + item.column; break;
        case AggregateFn::kMin: out_name = "min_" + item.column; break;
        case AggregateFn::kMax: out_name = "max_" + item.column; break;
        case AggregateFn::kAvg: out_name = "avg_" + item.column; break;
      }
    }
    // Repeated aggregates get positional suffixes so every output column
    // stays addressable by name.
    for (const Column& existing : out_columns) {
      if (existing.name == out_name) {
        out_name += "_" + std::to_string(out_columns.size());
        break;
      }
    }
    accumulators.push_back(acc);
    out_columns.push_back(Column{out_name, ColumnType::kFloat64, 8});
  }

  stats_ = FilterStats{};
  std::uint64_t matched = 0;

  const Status scanned = scan_table(state, [&](ConstByteSpan row) {
    const RowView view(schema, row);
    const bool match = query.where == nullptr ||
                       evaluate(*query.where, schema, view);
    if (!match) return;
    ++matched;
    for (Accumulator& acc : accumulators) {
      if (acc.column < 0 || acc.fn == AggregateFn::kCount) continue;
      const double value = acc.is_float
                               ? view.get_double(acc.column)
                               : double(view.get_int(acc.column));
      acc.sum += value;
      if (!acc.seen || value < acc.min) acc.min = value;
      if (!acc.seen || value > acc.max) acc.max = value;
      acc.seen = true;
    }
  });
  BX_RETURN_IF_ERROR(scanned);
  stats_.rows_matched = matched;

  // One output row of f64 values (COUNT is exact up to 2^53).
  result_.clear();
  result_schema_ = TableSchema(schema.name(), std::move(out_columns));
  RowBuilder builder(result_schema_);
  for (std::size_t i = 0; i < accumulators.size(); ++i) {
    const Accumulator& acc = accumulators[i];
    double value = 0;
    switch (acc.fn) {
      case AggregateFn::kCount: value = double(matched); break;
      case AggregateFn::kSum: value = acc.sum; break;
      case AggregateFn::kMin: value = acc.min; break;
      case AggregateFn::kMax: value = acc.max; break;
      case AggregateFn::kAvg:
        value = matched == 0 ? 0.0 : acc.sum / double(matched);
        break;
    }
    builder.set_double(result_schema_.columns()[i].name, value);
  }
  const ByteVec row = builder.take();
  result_.assign(row.begin(), row.end());
  return static_cast<std::uint32_t>(matched);
}

const TableSchema* FilterEngine::schema(std::string_view table) const {
  const auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : &it->second.schema;
}

std::uint64_t FilterEngine::row_count(std::string_view table) const {
  const auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.row_count;
}

}  // namespace bx::csd
