#include "csd/schema.h"

#include <charconv>

namespace bx::csd {

TableSchema::TableSchema(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  for (auto& column : columns_) {
    if (column.type != ColumnType::kString) column.width = 8;
    offsets_.push_back(row_size_);
    row_size_ += column.width;
  }
}

int TableSchema::column_index(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::uint32_t TableSchema::column_offset(int index) const noexcept {
  BX_ASSERT(index >= 0 && static_cast<std::size_t>(index) < offsets_.size());
  return offsets_[static_cast<std::size_t>(index)];
}

std::string TableSchema::serialize() const {
  std::string out = name_;
  for (const Column& column : columns_) {
    out += ' ';
    out += column.name;
    switch (column.type) {
      case ColumnType::kInt64: out += ":i64"; break;
      case ColumnType::kFloat64: out += ":f64"; break;
      case ColumnType::kString:
        out += ":str" + std::to_string(column.width);
        break;
    }
  }
  return out;
}

namespace {

std::vector<std::string_view> split_spaces(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < text.size() && text[end] != ' ') ++end;
    if (end > pos) out.push_back(text.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

}  // namespace

StatusOr<TableSchema> TableSchema::project(
    const std::vector<std::string>& columns) const {
  if (columns.empty()) return *this;
  std::vector<Column> projected;
  projected.reserve(columns.size());
  for (const std::string& name : columns) {
    const int index = column_index(name);
    if (index < 0) return not_found("unknown column '" + name + "'");
    projected.push_back(columns_[static_cast<std::size_t>(index)]);
  }
  return TableSchema(name_, std::move(projected));
}

StatusOr<TableSchema> TableSchema::parse(std::string_view text) {
  const auto tokens = split_spaces(text);
  if (tokens.size() < 2) {
    return invalid_argument("schema needs a table name and >=1 column");
  }
  std::vector<Column> columns;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const auto colon = token.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return invalid_argument("column must be name:type");
    }
    Column column;
    column.name.assign(token.substr(0, colon));
    const std::string_view type = token.substr(colon + 1);
    if (type == "i64") {
      column.type = ColumnType::kInt64;
    } else if (type == "f64") {
      column.type = ColumnType::kFloat64;
    } else if (type.starts_with("str")) {
      column.type = ColumnType::kString;
      std::uint32_t width = 0;
      const std::string_view digits = type.substr(3);
      const auto [ptr, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), width);
      if (ec != std::errc{} || ptr != digits.data() + digits.size() ||
          width == 0 || width > 4096) {
        return invalid_argument("bad string width in schema");
      }
      column.width = width;
    } else {
      return invalid_argument("unknown column type '" + std::string(type) +
                              "'");
    }
    columns.push_back(std::move(column));
  }
  return TableSchema(std::string(tokens[0]), std::move(columns));
}

}  // namespace bx::csd
