#include "csd/row.h"

#include <cstring>

namespace bx::csd {

RowBuilder::RowBuilder(const TableSchema& schema)
    : schema_(schema), row_(schema.row_size(), 0) {}

int RowBuilder::require(std::string_view column, ColumnType type) const {
  const int index = schema_.column_index(column);
  BX_ASSERT_MSG(index >= 0, "unknown column");
  BX_ASSERT_MSG(schema_.columns()[static_cast<std::size_t>(index)].type ==
                    type,
                "column type mismatch");
  return index;
}

RowBuilder& RowBuilder::set_int(std::string_view column, std::int64_t value) {
  const int index = require(column, ColumnType::kInt64);
  std::memcpy(row_.data() + schema_.column_offset(index), &value,
              sizeof(value));
  return *this;
}

RowBuilder& RowBuilder::set_double(std::string_view column, double value) {
  const int index = require(column, ColumnType::kFloat64);
  std::memcpy(row_.data() + schema_.column_offset(index), &value,
              sizeof(value));
  return *this;
}

RowBuilder& RowBuilder::set_string(std::string_view column,
                                   std::string_view value) {
  const int index = require(column, ColumnType::kString);
  const Column& spec = schema_.columns()[static_cast<std::size_t>(index)];
  BX_ASSERT_MSG(value.size() <= spec.width, "string exceeds column width");
  Byte* dst = row_.data() + schema_.column_offset(index);
  std::memset(dst, 0, spec.width);
  std::memcpy(dst, value.data(), value.size());
  return *this;
}

ByteVec RowBuilder::take() {
  ByteVec out(schema_.row_size(), 0);
  out.swap(row_);
  return out;
}

std::int64_t RowView::get_int(int column) const noexcept {
  std::int64_t value = 0;
  std::memcpy(&value, row_.data() + schema_.column_offset(column),
              sizeof(value));
  return value;
}

double RowView::get_double(int column) const noexcept {
  double value = 0;
  std::memcpy(&value, row_.data() + schema_.column_offset(column),
              sizeof(value));
  return value;
}

std::string_view RowView::get_string(int column) const noexcept {
  const Column& spec = schema_.columns()[static_cast<std::size_t>(column)];
  const auto* begin =
      reinterpret_cast<const char*>(row_.data()) +
      schema_.column_offset(column);
  std::size_t len = spec.width;
  while (len > 0 && begin[len - 1] == '\0') --len;
  return {begin, len};
}

}  // namespace bx::csd
