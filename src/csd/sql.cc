#include "csd/sql.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstring>

namespace bx::csd {

namespace {

// ------------------------------------------------------------------ lexer

enum class TokenType : std::uint8_t {
  kIdent,
  kInt,
  kFloat,
  kString,
  kOp,      // comparison operator
  kLParen,
  kRParen,
  kComma,
  kStar,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  std::int64_t int_value = 0;
  double float_value = 0;
  CompareOp op = CompareOp::kEq;
};

bool ident_equals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_spaces();
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(lex_ident());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        auto number = lex_number();
        BX_RETURN_IF_ERROR(number.status());
        tokens.push_back(std::move(number).value());
      } else if (c == '\'') {
        auto str = lex_string();
        BX_RETURN_IF_ERROR(str.status());
        tokens.push_back(std::move(str).value());
      } else {
        auto symbol = lex_symbol();
        BX_RETURN_IF_ERROR(symbol.status());
        tokens.push_back(std::move(symbol).value());
      }
    }
    tokens.push_back(Token{});  // kEnd
    return tokens;
  }

 private:
  void skip_spaces() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Token lex_ident() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.')) {
      ++pos_;
    }
    Token token;
    token.type = TokenType::kIdent;
    token.text.assign(text_.substr(start, pos_ - start));
    return token;
  }

  StatusOr<Token> lex_number() {
    const std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    bool is_float = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !is_float) {
        is_float = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view body = text_.substr(start, pos_ - start);
    Token token;
    token.text.assign(body);
    if (is_float) {
      token.type = TokenType::kFloat;
      token.float_value = std::strtod(token.text.c_str(), nullptr);
    } else {
      token.type = TokenType::kInt;
      const auto [ptr, ec] = std::from_chars(
          body.data(), body.data() + body.size(), token.int_value);
      if (ec != std::errc{} || ptr != body.data() + body.size()) {
        return invalid_argument("bad integer literal '" + token.text + "'");
      }
    }
    return token;
  }

  StatusOr<Token> lex_string() {
    ++pos_;  // opening quote
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
    if (pos_ >= text_.size()) {
      return invalid_argument("unterminated string literal");
    }
    Token token;
    token.type = TokenType::kString;
    token.text.assign(text_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return token;
  }

  StatusOr<Token> lex_symbol() {
    Token token;
    const char c = text_[pos_];
    const char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
    switch (c) {
      case '(': token.type = TokenType::kLParen; ++pos_; return token;
      case ')': token.type = TokenType::kRParen; ++pos_; return token;
      case ',': token.type = TokenType::kComma; ++pos_; return token;
      case '*': token.type = TokenType::kStar; ++pos_; return token;
      case '=':
        token.type = TokenType::kOp;
        token.op = CompareOp::kEq;
        ++pos_;
        return token;
      case '!':
        if (next == '=') {
          token.type = TokenType::kOp;
          token.op = CompareOp::kNe;
          pos_ += 2;
          return token;
        }
        break;
      case '<':
        token.type = TokenType::kOp;
        if (next == '=') {
          token.op = CompareOp::kLe;
          pos_ += 2;
        } else if (next == '>') {
          token.op = CompareOp::kNe;
          pos_ += 2;
        } else {
          token.op = CompareOp::kLt;
          ++pos_;
        }
        return token;
      case '>':
        token.type = TokenType::kOp;
        if (next == '=') {
          token.op = CompareOp::kGe;
          pos_ += 2;
        } else {
          token.op = CompareOp::kGt;
          ++pos_;
        }
        return token;
      case ';':
        ++pos_;
        token.type = TokenType::kEnd;
        return token;
      default:
        break;
    }
    return invalid_argument(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ----------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Query> parse_full() {
    Query query;
    BX_RETURN_IF_ERROR(expect_keyword("SELECT"));
    BX_RETURN_IF_ERROR(parse_select_list(query));
    BX_RETURN_IF_ERROR(expect_keyword("FROM"));
    if (peek().type != TokenType::kIdent) {
      return invalid_argument("expected table name after FROM");
    }
    query.table = take().text;
    if (is_keyword(peek(), "WHERE")) {
      take();
      auto where = parse_or();
      BX_RETURN_IF_ERROR(where.status());
      query.where = std::move(where).value();
    }
    BX_RETURN_IF_ERROR(expect_end());
    return query;
  }

  StatusOr<Query> parse_segment_form() {
    Query query;
    if (peek().type != TokenType::kIdent) {
      return invalid_argument("segment must start with a table name");
    }
    query.table = take().text;
    if (peek().type != TokenType::kEnd) {
      auto where = parse_or();
      BX_RETURN_IF_ERROR(where.status());
      query.where = std::move(where).value();
    }
    BX_RETURN_IF_ERROR(expect_end());
    return query;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t index =
        std::min(cursor_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }
  Token take() { return tokens_[std::min(cursor_++, tokens_.size() - 1)]; }

  static bool is_keyword(const Token& token, std::string_view word) {
    return token.type == TokenType::kIdent &&
           ident_equals(token.text, word);
  }

  Status expect_keyword(std::string_view word) {
    if (!is_keyword(peek(), word)) {
      return invalid_argument("expected keyword " + std::string(word));
    }
    take();
    return Status::ok();
  }

  Status expect_end() {
    if (peek().type != TokenType::kEnd) {
      return invalid_argument("unexpected trailing tokens near '" +
                              peek().text + "'");
    }
    return Status::ok();
  }

  static bool aggregate_keyword(const Token& token, AggregateFn& fn) {
    if (token.type != TokenType::kIdent) return false;
    if (ident_equals(token.text, "COUNT")) { fn = AggregateFn::kCount; }
    else if (ident_equals(token.text, "SUM")) { fn = AggregateFn::kSum; }
    else if (ident_equals(token.text, "MIN")) { fn = AggregateFn::kMin; }
    else if (ident_equals(token.text, "MAX")) { fn = AggregateFn::kMax; }
    else if (ident_equals(token.text, "AVG")) { fn = AggregateFn::kAvg; }
    else { return false; }
    return true;
  }

  Status parse_select_list(Query& query) {
    if (peek().type == TokenType::kStar) {
      take();
      return Status::ok();
    }
    for (;;) {
      if (peek().type != TokenType::kIdent) {
        return invalid_argument("expected column name in select list");
      }
      AggregateFn fn;
      if (aggregate_keyword(peek(), fn) &&
          peek(1).type == TokenType::kLParen) {
        take();  // function name
        take();  // '('
        AggregateItem item;
        item.fn = fn;
        if (peek().type == TokenType::kStar) {
          if (fn != AggregateFn::kCount) {
            return invalid_argument("only COUNT accepts '*'");
          }
          take();
        } else if (peek().type == TokenType::kIdent) {
          item.column = take().text;
        } else {
          return invalid_argument("expected column or '*' in aggregate");
        }
        if (peek().type != TokenType::kRParen) {
          return invalid_argument("expected ')' after aggregate");
        }
        take();
        query.aggregates.push_back(std::move(item));
      } else {
        query.select_columns.push_back(take().text);
      }
      if (peek().type != TokenType::kComma) break;
      take();
    }
    if (!query.aggregates.empty() && !query.select_columns.empty()) {
      return invalid_argument(
          "cannot mix aggregates and plain columns (no GROUP BY)");
    }
    return Status::ok();
  }

  StatusOr<std::unique_ptr<Expr>> parse_or() {
    auto lhs = parse_and();
    BX_RETURN_IF_ERROR(lhs.status());
    auto node = std::move(lhs).value();
    while (is_keyword(peek(), "OR")) {
      take();
      auto rhs = parse_and();
      BX_RETURN_IF_ERROR(rhs.status());
      auto parent = std::make_unique<Expr>();
      parent->kind = Expr::Kind::kLogic;
      parent->logic = LogicOp::kOr;
      parent->lhs = std::move(node);
      parent->rhs = std::move(rhs).value();
      node = std::move(parent);
    }
    return node;
  }

  StatusOr<std::unique_ptr<Expr>> parse_and() {
    auto lhs = parse_unary();
    BX_RETURN_IF_ERROR(lhs.status());
    auto node = std::move(lhs).value();
    while (is_keyword(peek(), "AND")) {
      take();
      auto rhs = parse_unary();
      BX_RETURN_IF_ERROR(rhs.status());
      auto parent = std::make_unique<Expr>();
      parent->kind = Expr::Kind::kLogic;
      parent->logic = LogicOp::kAnd;
      parent->lhs = std::move(node);
      parent->rhs = std::move(rhs).value();
      node = std::move(parent);
    }
    return node;
  }

  StatusOr<std::unique_ptr<Expr>> parse_unary() {
    if (is_keyword(peek(), "NOT")) {
      take();
      auto operand = parse_unary();
      BX_RETURN_IF_ERROR(operand.status());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      node->lhs = std::move(operand).value();
      return node;
    }
    if (peek().type == TokenType::kLParen) {
      take();
      auto inner = parse_or();
      BX_RETURN_IF_ERROR(inner.status());
      if (peek().type != TokenType::kRParen) {
        return invalid_argument("expected ')'");
      }
      take();
      return inner;
    }
    return parse_comparison();
  }

  StatusOr<Literal> parse_literal() {
    const Token& literal = peek();
    switch (literal.type) {
      case TokenType::kInt:
        return Literal{take().int_value};
      case TokenType::kFloat:
        return Literal{take().float_value};
      case TokenType::kString:
        return Literal{take().text};
      case TokenType::kIdent:
        // date 'YYYY-MM-DD' literals compare as ISO strings.
        if (ident_equals(literal.text, "DATE")) {
          take();
          if (peek().type != TokenType::kString) {
            return invalid_argument("expected string after DATE");
          }
          return Literal{take().text};
        }
        return invalid_argument("expected literal, got identifier '" +
                                literal.text + "'");
      default:
        return invalid_argument("expected literal");
    }
  }

  static std::unique_ptr<Expr> make_compare(const std::string& column,
                                            CompareOp op, Literal literal) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kCompare;
    node->column = column;
    node->op = op;
    node->literal = std::move(literal);
    return node;
  }

  StatusOr<std::unique_ptr<Expr>> parse_comparison() {
    if (peek().type != TokenType::kIdent) {
      return invalid_argument("expected column name, got '" + peek().text +
                              "'");
    }
    const std::string column = take().text;

    // col BETWEEN a AND b  ==>  col >= a AND col <= b
    if (is_keyword(peek(), "BETWEEN")) {
      take();
      auto low = parse_literal();
      BX_RETURN_IF_ERROR(low.status());
      BX_RETURN_IF_ERROR(expect_keyword("AND"));
      auto high = parse_literal();
      BX_RETURN_IF_ERROR(high.status());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kLogic;
      node->logic = LogicOp::kAnd;
      node->lhs = make_compare(column, CompareOp::kGe, std::move(*low));
      node->rhs = make_compare(column, CompareOp::kLe, std::move(*high));
      return node;
    }

    // col IN (a, b, ...)  ==>  col = a OR col = b OR ...
    if (is_keyword(peek(), "IN")) {
      take();
      if (peek().type != TokenType::kLParen) {
        return invalid_argument("expected '(' after IN");
      }
      take();
      std::unique_ptr<Expr> chain;
      for (;;) {
        auto literal = parse_literal();
        BX_RETURN_IF_ERROR(literal.status());
        auto equals =
            make_compare(column, CompareOp::kEq, std::move(*literal));
        if (chain == nullptr) {
          chain = std::move(equals);
        } else {
          auto parent = std::make_unique<Expr>();
          parent->kind = Expr::Kind::kLogic;
          parent->logic = LogicOp::kOr;
          parent->lhs = std::move(chain);
          parent->rhs = std::move(equals);
          chain = std::move(parent);
        }
        if (peek().type == TokenType::kComma) {
          take();
          continue;
        }
        break;
      }
      if (peek().type != TokenType::kRParen) {
        return invalid_argument("expected ')' to close IN list");
      }
      take();
      return chain;
    }

    // col LIKE 'pattern'
    if (is_keyword(peek(), "LIKE")) {
      take();
      if (peek().type != TokenType::kString) {
        return invalid_argument("expected string pattern after LIKE");
      }
      return make_compare(column, CompareOp::kLike, Literal{take().text});
    }

    if (peek().type != TokenType::kOp) {
      return invalid_argument("expected comparison operator after column '" +
                              column + "'");
    }
    const CompareOp op = take().op;
    auto literal = parse_literal();
    BX_RETURN_IF_ERROR(literal.status());
    return make_compare(column, op, std::move(*literal));
  }

  std::vector<Token> tokens_;
  std::size_t cursor_ = 0;
};

bool starts_with_select(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return text.size() - pos >= 6 &&
         ident_equals(text.substr(pos, 6), "SELECT");
}

}  // namespace

StatusOr<Query> parse_query(std::string_view sql) {
  auto tokens = Lexer(sql).run();
  BX_RETURN_IF_ERROR(tokens.status());
  return Parser(std::move(tokens).value()).parse_full();
}

StatusOr<Query> parse_segment(std::string_view text) {
  auto tokens = Lexer(text).run();
  BX_RETURN_IF_ERROR(tokens.status());
  return Parser(std::move(tokens).value()).parse_segment_form();
}

StatusOr<Query> parse_task(std::string_view text) {
  return starts_with_select(text) ? parse_query(text) : parse_segment(text);
}

Status bind(Expr& expr, const TableSchema& schema) {
  switch (expr.kind) {
    case Expr::Kind::kCompare: {
      expr.column_index = schema.column_index(expr.column);
      if (expr.column_index < 0) {
        return not_found("unknown column '" + expr.column + "'");
      }
      const ColumnType type =
          schema.columns()[static_cast<std::size_t>(expr.column_index)].type;
      const bool literal_is_string =
          std::holds_alternative<std::string>(expr.literal);
      if ((type == ColumnType::kString) != literal_is_string) {
        return invalid_argument("type mismatch on column '" + expr.column +
                                "'");
      }
      return Status::ok();
    }
    case Expr::Kind::kLogic:
      BX_RETURN_IF_ERROR(bind(*expr.lhs, schema));
      return bind(*expr.rhs, schema);
    case Expr::Kind::kNot:
      return bind(*expr.lhs, schema);
  }
  return internal_error("corrupt expression node");
}

namespace {

template <typename T>
bool compare(CompareOp op, T lhs, T rhs) noexcept {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
    case CompareOp::kLike: return false;  // strings only; handled separately
  }
  return false;
}

/// SQL LIKE with '%' wildcards at either end only:
/// 'abc%' prefix, '%abc' suffix, '%abc%' contains, 'abc' exact.
bool like_match(std::string_view value, std::string_view pattern) noexcept {
  const bool leading = !pattern.empty() && pattern.front() == '%';
  const bool trailing = pattern.size() > (leading ? 1u : 0u) &&
                        pattern.back() == '%';
  std::string_view needle = pattern;
  if (leading) needle.remove_prefix(1);
  if (trailing) needle.remove_suffix(1);
  if (leading && trailing) {
    return needle.empty() ||
           value.find(needle) != std::string_view::npos;
  }
  if (leading) {
    return value.size() >= needle.size() &&
           value.substr(value.size() - needle.size()) == needle;
  }
  if (trailing) {
    return value.substr(0, needle.size()) == needle;
  }
  return value == needle;
}

}  // namespace

bool evaluate(const Expr& expr, const TableSchema& schema,
              RowView row) noexcept {
  switch (expr.kind) {
    case Expr::Kind::kCompare: {
      const int index = expr.column_index;
      const ColumnType type =
          schema.columns()[static_cast<std::size_t>(index)].type;
      switch (type) {
        case ColumnType::kInt64: {
          const std::int64_t lhs = row.get_int(index);
          if (const auto* i = std::get_if<std::int64_t>(&expr.literal)) {
            return compare(expr.op, lhs, *i);
          }
          return compare(expr.op, double(lhs),
                         std::get<double>(expr.literal));
        }
        case ColumnType::kFloat64: {
          const double lhs = row.get_double(index);
          if (const auto* i = std::get_if<std::int64_t>(&expr.literal)) {
            return compare(expr.op, lhs, double(*i));
          }
          return compare(expr.op, lhs, std::get<double>(expr.literal));
        }
        case ColumnType::kString: {
          const std::string_view lhs = row.get_string(index);
          const std::string& rhs = std::get<std::string>(expr.literal);
          if (expr.op == CompareOp::kLike) return like_match(lhs, rhs);
          return compare<std::string_view>(expr.op, lhs, rhs);
        }
      }
      return false;
    }
    case Expr::Kind::kLogic: {
      const bool lhs = evaluate(*expr.lhs, schema, row);
      if (expr.logic == LogicOp::kAnd) {
        return lhs && evaluate(*expr.rhs, schema, row);
      }
      return lhs || evaluate(*expr.rhs, schema, row);
    }
    case Expr::Kind::kNot:
      return !evaluate(*expr.lhs, schema, row);
  }
  return false;
}

std::string to_string(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kCompare: {
      std::string op;
      switch (expr.op) {
        case CompareOp::kEq: op = "="; break;
        case CompareOp::kNe: op = "!="; break;
        case CompareOp::kLt: op = "<"; break;
        case CompareOp::kLe: op = "<="; break;
        case CompareOp::kGt: op = ">"; break;
        case CompareOp::kGe: op = ">="; break;
        case CompareOp::kLike: op = "LIKE"; break;
      }
      std::string literal;
      if (const auto* i = std::get_if<std::int64_t>(&expr.literal)) {
        literal = std::to_string(*i);
      } else if (const auto* d = std::get_if<double>(&expr.literal)) {
        literal = std::to_string(*d);
      } else {
        literal = "'" + std::get<std::string>(expr.literal) + "'";
      }
      return expr.column + " " + op + " " + literal;
    }
    case Expr::Kind::kLogic:
      return "(" + to_string(*expr.lhs) +
             (expr.logic == LogicOp::kAnd ? " AND " : " OR ") +
             to_string(*expr.rhs) + ")";
    case Expr::Kind::kNot:
      return "NOT (" + to_string(*expr.lhs) + ")";
  }
  return "?";
}

}  // namespace bx::csd
