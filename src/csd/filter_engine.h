// Device-side SQL filter engine (the CSD firmware of §2.2.2 / Figure 7).
//
// Tables live in the CSD's LPN range of the shared FTL, rows packed
// fixed-width into 4 KB pages; the tail page is buffered in device DRAM
// until full. A pushdown task (full SQL string or table+predicate segment)
// is parsed, bound against the device-resident schema, and evaluated over
// every row; matching rows are copied into a result buffer readable with
// the raw-read command.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "csd/row.h"
#include "csd/schema.h"
#include "csd/sql.h"
#include "nand/ftl.h"

namespace bx::csd {

class FilterEngine {
 public:
  struct Config {
    /// LPN range owned by the CSD tables within the shared FTL.
    std::uint64_t lpn_base = 0;
    std::uint64_t lpn_count = 0;

    std::uint32_t result_capacity_bytes = 1 << 20;

    // Device CPU costs.
    Nanoseconds cpu_parse_base_ns = 2'000;
    Nanoseconds cpu_parse_per_byte_ns = 10;
    Nanoseconds cpu_eval_per_row_ns = 120;
  };

  struct FilterStats {
    std::uint64_t rows_scanned = 0;
    std::uint64_t rows_matched = 0;
    std::uint64_t pages_read = 0;
    bool result_truncated = false;
  };

  FilterEngine(nand::Ftl& ftl, SimClock& clock, Config config);

  /// Registers a table from its text schema ("name col:type ...").
  Status create_table(std::string_view schema_text);

  /// Appends encoded rows (size must be a multiple of the row size).
  Status append_rows(std::string_view table, ConstByteSpan rows);

  /// Runs a pushdown task; returns the match count. The matching rows —
  /// projected to the task's SELECT list — are available via last_result()
  /// until the next filter run.
  StatusOr<std::uint32_t> run_filter(std::string_view task_text);

  [[nodiscard]] ConstByteSpan last_result() const noexcept {
    return result_;
  }
  /// Schema of the rows in last_result() (the projected SELECT list, or
  /// the full table schema for SELECT * / segment tasks).
  [[nodiscard]] const TableSchema& last_result_schema() const noexcept {
    return result_schema_;
  }
  [[nodiscard]] const FilterStats& last_stats() const noexcept {
    return stats_;
  }

  [[nodiscard]] const TableSchema* schema(std::string_view table) const;
  [[nodiscard]] std::uint64_t row_count(std::string_view table) const;

 private:
  struct TableState {
    TableSchema schema;
    std::vector<std::uint64_t> lpns;  // full pages, in order
    ByteVec tail;                     // partial page buffered in DRAM
    std::uint64_t row_count = 0;
    std::uint32_t rows_per_page = 0;
  };

  StatusOr<std::uint64_t> allocate_lpn();

  /// Streams every row of the table (NAND pages then the DRAM tail)
  /// through `visit`, charging page reads and per-row CPU.
  Status scan_table(const TableState& state,
                    const std::function<void(ConstByteSpan)>& visit);

  /// Aggregate select list (COUNT/SUM/MIN/MAX/AVG): emits one row of f64
  /// values into the result buffer.
  StatusOr<std::uint32_t> run_aggregate(const TableState& state,
                                        const Query& query);

  nand::Ftl& ftl_;
  SimClock& clock_;
  Config config_;

  std::map<std::string, TableState, std::less<>> tables_;
  std::uint64_t next_lpn_;
  ByteVec result_;
  TableSchema result_schema_;
  FilterStats stats_{};
};

}  // namespace bx::csd
