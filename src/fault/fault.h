// Seeded, policy-driven fault injection for the simulated transport.
//
// One FaultInjector is shared by the PCIe link and the controller (the
// Testbed creates it when the configured FaultPolicy has any nonzero
// probability). Two independent fault planes:
//
//  * Command-level faults (next_command_fault): drawn once per fetched
//    command on the device side, at most ONE fault per command. The
//    controller applies the drawn kind at the point where the command
//    would otherwise complete — corrupting an inline chunk (surfaces as
//    Data Transfer Error), substituting an error completion (fatal or
//    retryable), dropping the completion entirely (the host must time
//    out and Abort), or delaying it past the driver's deadline. Every
//    non-kNone draw increments `faults.injected`, which the acceptance
//    invariant ties to the driver-side classification counters:
//        faults.injected == faults.recovered + faults.degraded
//                           + faults.failed
//    (see docs/FAULTS.md). For that equality to hold exactly, each
//    injected fault must cost the driver exactly one failed attempt —
//    which is why delays default to longer than the driver timeout (a
//    delayed completion is always reaped as a timeout, then scrubbed by
//    the Abort) and why the reassembly/deferred TTLs are shorter than
//    the timeout (the device surfaces a retryable error before the host
//    gives up on its own).
//
//  * TLP replays (next_tlp_replay): drawn per link primitive. A replay
//    models the PCIe data-link layer retransmitting a TLP after an
//    LCRC/sequence error: it is invisible to both host and device logic
//    and consumes only wire bytes and time. Replays are counted in
//    `faults.tlp_replays` and deliberately NOT in `faults.injected` —
//    they never need recovery, so they sit outside the accounting
//    equality. Data-byte conservation invariants still hold because a
//    replay records zero data bytes and zero logical TLPs.
//
// Determinism: all draws come from one bx::Rng under a mutex, and every
// consumer runs under the Testbed firmware mutex (command draws) or the
// link's internal ordering (replay draws), so a fixed seed plus a fixed
// workload yields a byte-identical fault schedule. arm() lets tests
// force specific kinds for the next N draws without touching the RNG
// stream.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "obs/metrics.h"

namespace bx::fault {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  /// Flip a byte of one inline chunk so its CRC32-C check fails on the
  /// device; surfaces as a Data Transfer Error completion (retryable).
  kChunkCorrupt,
  /// Replace the completion with a fatal Internal Error status.
  kErrorCompletion,
  /// Replace the completion with Namespace Not Ready (retryable).
  kErrorRetryable,
  /// Never post the completion; the host must time out and Abort.
  kCompletionDrop,
  /// Post the completion only after FaultPolicy::delay_ns of simulated
  /// time. With the default delay > driver timeout this behaves like a
  /// drop that the host's Abort races against.
  kCompletionDelay,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// Per-draw probabilities. They are cumulative across one uniform draw,
/// so their sum must be <= 1.0 (the remainder is "no fault").
struct FaultPolicy {
  double chunk_corrupt = 0.0;
  double error_completion = 0.0;
  double error_retryable = 0.0;
  double completion_drop = 0.0;
  double completion_delay = 0.0;
  /// Sim-time a kCompletionDelay completion is held before posting.
  /// Default exceeds NvmeDriver::Config::command_timeout_ns so a
  /// delayed completion always costs the host a timeout (keeps the
  /// fault-accounting equality exact; see header comment).
  Nanoseconds delay_ns = 100'000'000;  // 100 ms
  /// Restrict command faults to inline (ByteExpress/OOO/BandSlim)
  /// commands; PRP/SGL commands then never draw (and never count).
  bool inline_only = false;
  /// Restrict command faults to one hardware queue (0 = all queues).
  /// Commands on other queues return kNone without consuming a draw, so
  /// a fault storm aimed at one tenant's queue cannot perturb either the
  /// fault schedule or the completions of its neighbors (the tenant
  /// isolation tests aim storms at the aggressor's queue this way).
  std::uint16_t qid_filter = 0;
  /// Per-link-primitive probability of a data-link TLP replay.
  double tlp_replay = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return chunk_corrupt > 0 || error_completion > 0 || error_retryable > 0 ||
           completion_drop > 0 || completion_delay > 0 || tlp_replay > 0;
  }
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultPolicy policy);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Draws the fault (if any) for one fetched command on queue `qid`.
  /// Armed faults are consumed first (they ignore the policy filters);
  /// otherwise one uniform draw is walked over the policy's cumulative
  /// thresholds. With `inline_only` set, non-inline commands return
  /// kNone without consuming a draw; with `qid_filter` set, so do
  /// commands on other queues. Every non-kNone result increments
  /// faults.injected and the per-kind counter.
  [[nodiscard]] FaultKind next_command_fault(bool inline_command,
                                             std::uint16_t qid = 0);

  /// Draws whether one link primitive suffers a data-link TLP replay.
  [[nodiscard]] bool next_tlp_replay();

  /// Forces the next `count` command draws to return `kind`, bypassing
  /// the RNG (deterministic single-fault tests).
  void arm(FaultKind kind, std::uint32_t count = 1);

  void set_policy(const FaultPolicy& policy);
  [[nodiscard]] FaultPolicy policy() const;

  /// Exposes faults.injected, faults.injected_<kind>, and
  /// faults.tlp_replays. In Prometheus text exposition the first
  /// renders as `bx_faults_injected_total`.
  void bind_metrics(obs::MetricsRegistry& registry) const;

  [[nodiscard]] std::uint64_t injected() const noexcept {
    return injected_.value();
  }
  [[nodiscard]] std::uint64_t tlp_replays() const noexcept {
    return tlp_replays_.value();
  }

 private:
  void count(FaultKind kind);

  mutable std::mutex mutex_;
  Rng rng_;
  FaultPolicy policy_;
  std::deque<FaultKind> armed_;

  obs::Counter injected_;
  obs::Counter injected_corrupt_;
  obs::Counter injected_error_;
  obs::Counter injected_error_retryable_;
  obs::Counter injected_drop_;
  obs::Counter injected_delay_;
  obs::Counter tlp_replays_;
};

}  // namespace bx::fault
