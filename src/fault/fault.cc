#include "fault/fault.h"

namespace bx::fault {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kChunkCorrupt:
      return "chunk_corrupt";
    case FaultKind::kErrorCompletion:
      return "error_completion";
    case FaultKind::kErrorRetryable:
      return "error_retryable";
    case FaultKind::kCompletionDrop:
      return "completion_drop";
    case FaultKind::kCompletionDelay:
      return "completion_delay";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultPolicy policy)
    : rng_(seed), policy_(policy) {}

FaultKind FaultInjector::next_command_fault(bool inline_command,
                                            std::uint16_t qid) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_.empty()) {
    FaultKind kind = armed_.front();
    armed_.pop_front();
    count(kind);
    return kind;
  }
  if (policy_.inline_only && !inline_command) {
    // Deliberately no RNG draw: whether a PRP command passes through must
    // not perturb the fault schedule of the inline commands around it.
    return FaultKind::kNone;
  }
  if (policy_.qid_filter != 0 && qid != policy_.qid_filter) {
    // Same rule: traffic on unfiltered queues must not perturb the fault
    // schedule of the targeted queue.
    return FaultKind::kNone;
  }
  const double draw = rng_.next_double();
  double threshold = 0.0;
  FaultKind kind = FaultKind::kNone;
  if (draw < (threshold += policy_.chunk_corrupt)) {
    kind = FaultKind::kChunkCorrupt;
  } else if (draw < (threshold += policy_.error_completion)) {
    kind = FaultKind::kErrorCompletion;
  } else if (draw < (threshold += policy_.error_retryable)) {
    kind = FaultKind::kErrorRetryable;
  } else if (draw < (threshold += policy_.completion_drop)) {
    kind = FaultKind::kCompletionDrop;
  } else if (draw < (threshold += policy_.completion_delay)) {
    kind = FaultKind::kCompletionDelay;
  }
  // Chunk corruption only has a CRC to trip on inline commands; for a
  // PRP/SGL command it degenerates to a plain Data Transfer Error
  // completion, which the controller applies identically.
  count(kind);
  return kind;
}

bool FaultInjector::next_tlp_replay() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (policy_.tlp_replay <= 0.0) {
    return false;
  }
  const bool replay = rng_.next_bool(policy_.tlp_replay);
  if (replay) {
    tlp_replays_.increment();
  }
  return replay;
}

void FaultInjector::arm(FaultKind kind, std::uint32_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint32_t i = 0; i < count; ++i) {
    armed_.push_back(kind);
  }
}

void FaultInjector::set_policy(const FaultPolicy& policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  policy_ = policy;
}

FaultPolicy FaultInjector::policy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return policy_;
}

void FaultInjector::bind_metrics(obs::MetricsRegistry& registry) const {
  registry.expose_counter("faults.injected", &injected_);
  registry.expose_counter("faults.injected_corrupt", &injected_corrupt_);
  registry.expose_counter("faults.injected_error", &injected_error_);
  registry.expose_counter("faults.injected_error_retryable",
                          &injected_error_retryable_);
  registry.expose_counter("faults.injected_drop", &injected_drop_);
  registry.expose_counter("faults.injected_delay", &injected_delay_);
  registry.expose_counter("faults.tlp_replays", &tlp_replays_);
}

void FaultInjector::count(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return;
    case FaultKind::kChunkCorrupt:
      injected_corrupt_.increment();
      break;
    case FaultKind::kErrorCompletion:
      injected_error_.increment();
      break;
    case FaultKind::kErrorRetryable:
      injected_error_retryable_.increment();
      break;
    case FaultKind::kCompletionDrop:
      injected_drop_.increment();
      break;
    case FaultKind::kCompletionDelay:
      injected_delay_.increment();
      break;
  }
  injected_.increment();
}

}  // namespace bx::fault
