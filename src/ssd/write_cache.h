// Device-DRAM write-back cache for the block namespace.
//
// Small block writes land in DRAM (cap-backed on the OpenSSD, hence
// durable) and are programmed to NAND in the background — the block-path
// analog of the KV engine's memtable, and the "NAND page buffer entry of
// normal block SSDs" §3.3.1 names as a destination for inline payloads.
// Reads are served from the cache when dirty, read-through otherwise.
// Eviction is FIFO write-back once the configured capacity is exceeded;
// an NVMe Flush drains everything.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "nand/ftl.h"

namespace bx::ssd {

class WriteCache {
 public:
  struct Config {
    std::size_t capacity_bytes = 4 << 20;
    /// DRAM copy cost per cached page write/hit.
    Nanoseconds dram_copy_ns = 300;
  };

  WriteCache(nand::Ftl& ftl, SimClock& clock, Config config);

  /// Absorbs one logical page into DRAM; evicts (writes back) the oldest
  /// dirty pages if over capacity.
  Status write(std::uint64_t lpn, ConstByteSpan data);

  /// Serves from the cache when dirty, otherwise reads through the FTL.
  Status read(std::uint64_t lpn, ByteSpan out);

  /// Writes back every dirty page (background NAND programs) and empties
  /// the cache.
  Status flush();

  [[nodiscard]] std::size_t dirty_pages() const noexcept {
    return pages_.size();
  }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_;
  }

 private:
  Status evict_oldest();

  nand::Ftl& ftl_;
  SimClock& clock_;
  Config config_;

  struct Entry {
    ByteVec data;
    std::list<std::uint64_t>::iterator order_it;
  };
  std::unordered_map<std::uint64_t, Entry> pages_;
  std::list<std::uint64_t> order_;  // oldest first

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace bx::ssd
