#include "ssd/write_cache.h"

#include <cstring>

namespace bx::ssd {

WriteCache::WriteCache(nand::Ftl& ftl, SimClock& clock, Config config)
    : ftl_(ftl), clock_(clock), config_(config) {
  BX_ASSERT(config.capacity_bytes >= ftl.page_size());
}

Status WriteCache::evict_oldest() {
  BX_ASSERT(!order_.empty());
  const std::uint64_t lpn = order_.front();
  const auto it = pages_.find(lpn);
  BX_ASSERT(it != pages_.end());
  // Background: eviction occupies a NAND die without stalling the host.
  BX_RETURN_IF_ERROR(ftl_.write(lpn, it->second.data,
                                nand::NandFlash::Blocking::kBackground));
  order_.pop_front();
  pages_.erase(it);
  ++evictions_;
  return Status::ok();
}

Status WriteCache::write(std::uint64_t lpn, ConstByteSpan data) {
  if (data.size() > ftl_.page_size()) {
    return invalid_argument("cache write exceeds page size");
  }
  clock_.advance(config_.dram_copy_ns);

  const auto it = pages_.find(lpn);
  if (it != pages_.end()) {
    // Rewrite in place; refresh FIFO position.
    it->second.data.assign(data.begin(), data.end());
    order_.erase(it->second.order_it);
    order_.push_back(lpn);
    it->second.order_it = std::prev(order_.end());
    return Status::ok();
  }

  order_.push_back(lpn);
  Entry entry;
  entry.data.assign(data.begin(), data.end());
  entry.order_it = std::prev(order_.end());
  pages_.emplace(lpn, std::move(entry));

  while (pages_.size() * ftl_.page_size() > config_.capacity_bytes) {
    BX_RETURN_IF_ERROR(evict_oldest());
  }
  return Status::ok();
}

Status WriteCache::read(std::uint64_t lpn, ByteSpan out) {
  const auto it = pages_.find(lpn);
  if (it != pages_.end()) {
    ++hits_;
    clock_.advance(config_.dram_copy_ns);
    const std::size_t take = std::min(out.size(), it->second.data.size());
    std::memcpy(out.data(), it->second.data.data(), take);
    if (take < out.size()) {
      std::memset(out.data() + take, 0, out.size() - take);
    }
    return Status::ok();
  }
  ++misses_;
  return ftl_.read(lpn, out);
}

Status WriteCache::flush() {
  while (!order_.empty()) {
    BX_RETURN_IF_ERROR(evict_oldest());
  }
  return Status::ok();
}

}  // namespace bx::ssd
