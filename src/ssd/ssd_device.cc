#include "ssd/ssd_device.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "common/logging.h"
#include "csd/csd_client.h"
#include "kv/kv_wire.h"

namespace bx::ssd {

using controller::ExecResult;
using nvme::GenericStatus;
using nvme::IoOpcode;
using nvme::StatusField;
using nvme::VendorStatus;

namespace {
constexpr std::uint32_t kBlockSize = 4096;

StatusField kv_error_status(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return StatusField::vendor(VendorStatus::kKvKeyNotFound);
    case StatusCode::kInvalidArgument:
      return StatusField::vendor(VendorStatus::kKvValueTooLarge);
    case StatusCode::kResourceExhausted:
      return StatusField::vendor(VendorStatus::kKvStoreFull);
    default:
      return StatusField::generic(GenericStatus::kInternalError);
  }
}

StatusField csd_error_status(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return StatusField::vendor(VendorStatus::kCsdUnknownTable);
    case StatusCode::kInvalidArgument:
      return StatusField::vendor(VendorStatus::kCsdParseError);
    default:
      return StatusField::generic(GenericStatus::kInternalError);
  }
}

}  // namespace

kv::KvEngine::Config SsdDevice::fill_kv_range(const Config& config,
                                              std::uint64_t base,
                                              std::uint64_t count) {
  kv::KvEngine::Config out = config.kv;
  out.lpn_base = base;
  out.lpn_count = count;
  return out;
}

csd::FilterEngine::Config SsdDevice::fill_csd_range(const Config& config,
                                                    std::uint64_t base,
                                                    std::uint64_t count) {
  csd::FilterEngine::Config out = config.csd;
  out.lpn_base = base;
  out.lpn_count = count;
  return out;
}

SsdDevice::SsdDevice(SimClock& clock, Config config)
    : clock_(clock),
      config_(config),
      nand_(config.geometry, config.nand_timing, clock),
      ftl_(nand_, config.ftl),
      block_pages_(static_cast<std::uint64_t>(
          double(ftl_.logical_pages()) * config.block_fraction)),
      kv_(ftl_, clock,
          fill_kv_range(config, block_pages_,
                        static_cast<std::uint64_t>(
                            double(ftl_.logical_pages()) *
                            config.kv_fraction))),
      filter_(ftl_, clock,
              fill_csd_range(
                  config,
                  block_pages_ + static_cast<std::uint64_t>(
                                     double(ftl_.logical_pages()) *
                                     config.kv_fraction),
                  ftl_.logical_pages() - block_pages_ -
                      static_cast<std::uint64_t>(
                          double(ftl_.logical_pages()) *
                          config.kv_fraction))),
      write_cache_(ftl_, clock, config.write_cache),
      scratch_(config.scratch_bytes, 0) {}

void SsdDevice::record_nand(Nanoseconds start, std::uint64_t bytes,
                            bool read) noexcept {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  obs::TraceEvent e;
  e.stage = obs::TraceStage::kNandIo;
  e.start = start;
  e.end = clock_.now();
  e.aux = read ? 1 : 0;
  e.bytes = bytes;
  tracer_->record_in_device_context(e);
}

ExecResult SsdDevice::execute(const nvme::SubmissionQueueEntry& sqe,
                              ConstByteSpan payload) {
  clock_.advance(config_.cpu_dispatch_ns);
  switch (sqe.io_opcode()) {
    case IoOpcode::kWrite:
      return do_block_write(sqe, payload);
    case IoOpcode::kRead:
      return do_block_read(sqe);
    case IoOpcode::kFlush:
      return do_flush();
    case IoOpcode::kVendorRawWrite:
      return do_raw_write(payload);
    case IoOpcode::kVendorRawRead:
      return do_raw_read(sqe);
    case IoOpcode::kVendorPartialWrite:
      return do_partial_write(sqe, payload);
    case IoOpcode::kVendorKvStore:
    case IoOpcode::kVendorKvRetrieve:
    case IoOpcode::kVendorKvDelete:
    case IoOpcode::kVendorKvExist:
    case IoOpcode::kVendorKvIterate:
      return do_kv(sqe, payload);
    case IoOpcode::kVendorCsdFilter:
      return do_csd(sqe, payload);
    default:
      return ExecResult::error(
          StatusField::generic(GenericStatus::kInvalidOpcode));
  }
}

ExecResult SsdDevice::do_block_write(const nvme::SubmissionQueueEntry& sqe,
                                     ConstByteSpan payload) {
  const auto fields = nvme::BlockIoFields::from(sqe);
  if (fields.slba + fields.block_count > block_pages_) {
    return ExecResult::error(
        StatusField::generic(GenericStatus::kLbaOutOfRange));
  }
  if (payload.size() != std::uint64_t{fields.block_count} * kBlockSize) {
    return ExecResult::error(
        StatusField::generic(GenericStatus::kDataTransferError));
  }
  const Nanoseconds nand_start = clock_.now();
  for (std::uint32_t i = 0; i < fields.block_count; ++i) {
    const ConstByteSpan block =
        payload.subspan(std::size_t{i} * kBlockSize, kBlockSize);
    const Status written =
        config_.enable_write_cache
            ? write_cache_.write(fields.slba + i, block)
            : ftl_.write(fields.slba + i, block,
                         nand::NandFlash::Blocking::kForeground);
    if (!written.is_ok()) {
      BX_LOG_WARN << "block write failed: " << written.to_string();
      return ExecResult::error(
          StatusField::generic(GenericStatus::kInternalError));
    }
  }
  record_nand(nand_start, payload.size(), /*read=*/false);
  return ExecResult::success();
}

ExecResult SsdDevice::do_block_read(const nvme::SubmissionQueueEntry& sqe) {
  const auto fields = nvme::BlockIoFields::from(sqe);
  if (fields.slba + fields.block_count > block_pages_) {
    return ExecResult::error(
        StatusField::generic(GenericStatus::kLbaOutOfRange));
  }
  ExecResult result;
  result.read_data.assign(std::size_t{fields.block_count} * kBlockSize, 0);
  const Nanoseconds nand_start = clock_.now();
  for (std::uint32_t i = 0; i < fields.block_count; ++i) {
    const ByteSpan block{
        result.read_data.data() + std::size_t{i} * kBlockSize, kBlockSize};
    const Status read = config_.enable_write_cache
                            ? write_cache_.read(fields.slba + i, block)
                            : ftl_.read(fields.slba + i, block);
    if (!read.is_ok() && read.code() != StatusCode::kNotFound) {
      return ExecResult::error(
          StatusField::generic(GenericStatus::kInternalError));
    }
    // Unwritten LBAs read back as zeroes, like a real SSD.
  }
  record_nand(nand_start, result.read_data.size(), /*read=*/true);
  return result;
}

ExecResult SsdDevice::do_partial_write(const nvme::SubmissionQueueEntry& sqe,
                                       ConstByteSpan payload) {
  const std::uint64_t lba =
      (std::uint64_t{sqe.cdw11} << 32) | sqe.cdw10;
  const std::uint32_t offset = nvme::VendorFields::from(sqe).aux >> 8;
  if (lba >= block_pages_) {
    return ExecResult::error(
        StatusField::generic(GenericStatus::kLbaOutOfRange));
  }
  if (payload.empty() ||
      std::uint64_t{offset} + payload.size() > kBlockSize) {
    return ExecResult::error(
        StatusField::generic(GenericStatus::kInvalidField));
  }

  // Read-modify-write in the device's page buffer: the host only shipped
  // the changed bytes.
  const Nanoseconds nand_start = clock_.now();
  ByteVec page(kBlockSize, 0);
  const Status read = config_.enable_write_cache
                          ? write_cache_.read(lba, page)
                          : ftl_.read(lba, page);
  if (!read.is_ok() && read.code() != StatusCode::kNotFound) {
    return ExecResult::error(
        StatusField::generic(GenericStatus::kInternalError));
  }
  std::memcpy(page.data() + offset, payload.data(), payload.size());
  const Status written =
      config_.enable_write_cache
          ? write_cache_.write(lba, page)
          : ftl_.write(lba, page, nand::NandFlash::Blocking::kForeground);
  if (!written.is_ok()) {
    return ExecResult::error(
        StatusField::generic(GenericStatus::kInternalError));
  }
  record_nand(nand_start, kBlockSize, /*read=*/false);
  return ExecResult::success();
}

ExecResult SsdDevice::do_flush() {
  Status flushed = kv_.flush();
  if (flushed.is_ok() && config_.enable_write_cache) {
    flushed = write_cache_.flush();
  }
  if (!flushed.is_ok()) {
    return ExecResult::error(
        StatusField::generic(GenericStatus::kInternalError));
  }
  nand_.drain();
  return ExecResult::success();
}

ExecResult SsdDevice::do_raw_write(ConstByteSpan payload) {
  const std::size_t take = std::min(payload.size(), scratch_.size());
  std::memcpy(scratch_.data(), payload.data(), take);
  scratch_valid_ = static_cast<std::uint32_t>(take);
  return ExecResult::success();
}

ExecResult SsdDevice::do_raw_read(const nvme::SubmissionQueueEntry& sqe) {
  const auto fields = nvme::VendorFields::from(sqe);
  const std::uint32_t selector = fields.aux >> 8;
  ConstByteSpan source;
  if (selector == 1) {
    source = filter_.last_result();
  } else {
    source = ConstByteSpan{scratch_.data(), scratch_valid_};
  }
  const std::uint32_t take = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(fields.data_length, source.size()));
  ExecResult result;
  result.read_data.assign(source.begin(), source.begin() + take);
  result.dw0 = static_cast<std::uint32_t>(source.size());
  return result;
}

ExecResult SsdDevice::do_kv(const nvme::SubmissionQueueEntry& sqe,
                            ConstByteSpan payload) {
  const auto key_fields = nvme::KvKeyFields::from(sqe);
  if (key_fields.key_len == 0 ||
      key_fields.key_len > nvme::KvKeyFields::kMaxKeyBytes) {
    return ExecResult::error(StatusField::vendor(VendorStatus::kKvKeyTooLarge));
  }
  const std::string_view key{
      reinterpret_cast<const char*>(key_fields.key), key_fields.key_len};
  const auto fields = nvme::VendorFields::from(sqe);

  switch (sqe.io_opcode()) {
    case IoOpcode::kVendorKvStore: {
      const Status stored = kv_.put(key, payload);
      if (!stored.is_ok()) return ExecResult::error(kv_error_status(stored));
      return ExecResult::success();
    }
    case IoOpcode::kVendorKvRetrieve: {
      auto value = kv_.get(key);
      if (!value.is_ok()) {
        return ExecResult::error(kv_error_status(value.status()));
      }
      ExecResult result;
      result.dw0 = static_cast<std::uint32_t>(value->size());
      result.read_data = std::move(value).value();
      return result;
    }
    case IoOpcode::kVendorKvDelete: {
      auto existed = kv_.del(key);
      if (!existed.is_ok()) {
        return ExecResult::error(kv_error_status(existed.status()));
      }
      return ExecResult::success(*existed ? 1 : 0);
    }
    case IoOpcode::kVendorKvExist: {
      auto exists = kv_.exist(key);
      if (!exists.is_ok()) {
        return ExecResult::error(kv_error_status(exists.status()));
      }
      return ExecResult::success(*exists ? 1 : 0);
    }
    case IoOpcode::kVendorKvIterate:
      return do_kv_iterate(sqe, key, fields);
    default:
      return ExecResult::error(
          StatusField::generic(GenericStatus::kInvalidOpcode));
  }
}

ExecResult SsdDevice::do_kv_iterate(const nvme::SubmissionQueueEntry& sqe,
                                    std::string_view key,
                                    const nvme::VendorFields& fields) {
  (void)sqe;
  const std::uint32_t aux = fields.aux >> 8;
  const auto subop = kv::wire::decode_iterate_subop(aux);
  const std::uint32_t param = kv::wire::decode_iterate_param(aux);

  auto serialize = [&](const std::vector<kv::KvEntry>& entries) {
    // [u8 klen][u16 vlen][key][value]..., truncated to the read length.
    ExecResult result;
    for (const kv::KvEntry& entry : entries) {
      const std::size_t need = 3 + entry.key.size() + entry.value.size();
      if (result.read_data.size() + need > fields.data_length) break;
      result.read_data.push_back(static_cast<Byte>(entry.key.size()));
      const auto vlen = static_cast<std::uint16_t>(entry.value.size());
      result.read_data.push_back(static_cast<Byte>(vlen & 0xff));
      result.read_data.push_back(static_cast<Byte>(vlen >> 8));
      result.read_data.insert(result.read_data.end(), entry.key.begin(),
                              entry.key.end());
      result.read_data.insert(result.read_data.end(), entry.value.begin(),
                              entry.value.end());
    }
    result.dw0 = static_cast<std::uint32_t>(result.read_data.size());
    return result;
  };

  switch (subop) {
    case kv::wire::IterateSubOp::kScan: {
      auto entries = kv_.scan(key, std::max<std::uint32_t>(param, 1));
      if (!entries.is_ok()) {
        return ExecResult::error(kv_error_status(entries.status()));
      }
      return serialize(*entries);
    }
    case kv::wire::IterateSubOp::kOpen: {
      auto id = kv_.iter_open(key);
      if (!id.is_ok()) return ExecResult::error(kv_error_status(id.status()));
      return ExecResult::success(*id);
    }
    case kv::wire::IterateSubOp::kNext: {
      auto id = kv::wire::iterator_id_from_key(as_bytes(key));
      if (!id.is_ok()) {
        return ExecResult::error(
            StatusField::generic(GenericStatus::kInvalidField));
      }
      auto entries = kv_.iter_next(*id, std::max<std::uint32_t>(param, 1));
      if (!entries.is_ok()) {
        return ExecResult::error(kv_error_status(entries.status()));
      }
      return serialize(*entries);
    }
    case kv::wire::IterateSubOp::kClose: {
      auto id = kv::wire::iterator_id_from_key(as_bytes(key));
      if (!id.is_ok()) {
        return ExecResult::error(
            StatusField::generic(GenericStatus::kInvalidField));
      }
      const Status closed = kv_.iter_close(*id);
      if (!closed.is_ok()) {
        return ExecResult::error(kv_error_status(closed));
      }
      return ExecResult::success();
    }
  }
  return ExecResult::error(StatusField::generic(GenericStatus::kInvalidField));
}

ExecResult SsdDevice::do_csd(const nvme::SubmissionQueueEntry& sqe,
                             ConstByteSpan payload) {
  const auto fields = nvme::VendorFields::from(sqe);
  const auto subop = static_cast<csd::CsdSubOp>(fields.aux >> 8);
  switch (subop) {
    case csd::CsdSubOp::kRunFilter: {
      auto matches = filter_.run_filter(
          std::string_view{reinterpret_cast<const char*>(payload.data()),
                           payload.size()});
      if (!matches.is_ok()) {
        return ExecResult::error(csd_error_status(matches.status()));
      }
      return ExecResult::success(*matches);
    }
    case csd::CsdSubOp::kCreateTable: {
      const Status created = filter_.create_table(
          std::string_view{reinterpret_cast<const char*>(payload.data()),
                           payload.size()});
      if (!created.is_ok()) {
        return ExecResult::error(csd_error_status(created));
      }
      return ExecResult::success();
    }
    case csd::CsdSubOp::kAppendRows: {
      if (payload.empty()) {
        return ExecResult::error(
            StatusField::vendor(VendorStatus::kCsdParseError));
      }
      const std::size_t name_len = payload[0];
      if (1 + name_len > payload.size()) {
        return ExecResult::error(
            StatusField::vendor(VendorStatus::kCsdParseError));
      }
      const std::string_view table{
          reinterpret_cast<const char*>(payload.data()) + 1, name_len};
      const Status appended =
          filter_.append_rows(table, payload.subspan(1 + name_len));
      if (!appended.is_ok()) {
        return ExecResult::error(csd_error_status(appended));
      }
      return ExecResult::success();
    }
  }
  return ExecResult::error(StatusField::generic(GenericStatus::kInvalidField));
}

}  // namespace bx::ssd
