// The assembled SSD: NAND array + FTL + KV engine + CSD filter engine +
// DRAM scratch, implementing the controller's CommandExecutor interface.
//
// The logical page space is partitioned between three tenants:
//   [0, block)               block-addressed namespace (kWrite/kRead)
//   [block, block+kv)        KV store runs
//   [block+kv, total)        CSD tables
// mirroring how the OpenSSD firmware dedicates regions to each service.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/sim_clock.h"
#include "controller/executor.h"
#include "csd/filter_engine.h"
#include "kv/kv_engine.h"
#include "nand/ftl.h"
#include "nand/nand_flash.h"
#include "obs/trace.h"
#include "ssd/write_cache.h"

namespace bx::ssd {

class SsdDevice : public controller::CommandExecutor {
 public:
  struct Config {
    nand::Geometry geometry{};
    nand::NandTiming nand_timing{};
    nand::Ftl::Config ftl{};

    /// Fractions of the logical space per tenant (rest goes to CSD).
    double block_fraction = 0.50;
    double kv_fraction = 0.30;

    kv::KvEngine::Config kv{};        // LPN range filled at construction
    csd::FilterEngine::Config csd{};  // LPN range filled at construction

    /// DRAM scratch region for the raw write/read microbenchmark commands
    /// — the "designated buffer" of §3.3.1.
    std::uint32_t scratch_bytes = 1 << 20;

    /// Optional write-back cache on the block path (absorbs block writes
    /// in DRAM, programs NAND in the background). Off by default so the
    /// block path exposes raw NAND timing.
    bool enable_write_cache = false;
    WriteCache::Config write_cache{};

    /// Firmware dispatch cost per command (opcode decode, request setup).
    Nanoseconds cpu_dispatch_ns = 200;
  };

  SsdDevice(SimClock& clock, Config config);

  controller::ExecResult execute(const nvme::SubmissionQueueEntry& sqe,
                                 ConstByteSpan payload) override;

  [[nodiscard]] nand::NandFlash& nand() noexcept { return nand_; }
  [[nodiscard]] nand::Ftl& ftl() noexcept { return ftl_; }
  [[nodiscard]] kv::KvEngine& kv_engine() noexcept { return kv_; }
  [[nodiscard]] csd::FilterEngine& filter_engine() noexcept {
    return filter_;
  }
  [[nodiscard]] std::uint64_t block_namespace_pages() const noexcept {
    return block_pages_;
  }
  /// The block-path write cache (valid only when enabled in the config).
  [[nodiscard]] WriteCache& write_cache() noexcept { return write_cache_; }

  /// Attaches the trace recorder; NAND/FTL work is reported as kNandIo
  /// events through the recorder's device context (the SSD does not know
  /// which (qid, cid) it is serving).
  void set_tracer(obs::TraceRecorder* tracer) noexcept { tracer_ = tracer; }

 private:
  /// Records a kNandIo annotation [start, now] via the device context.
  void record_nand(Nanoseconds start, std::uint64_t bytes,
                   bool read) noexcept;
  controller::ExecResult do_block_write(const nvme::SubmissionQueueEntry& sqe,
                                        ConstByteSpan payload);
  controller::ExecResult do_block_read(const nvme::SubmissionQueueEntry& sqe);
  controller::ExecResult do_flush();
  controller::ExecResult do_raw_write(ConstByteSpan payload);
  controller::ExecResult do_raw_read(const nvme::SubmissionQueueEntry& sqe);
  controller::ExecResult do_partial_write(
      const nvme::SubmissionQueueEntry& sqe, ConstByteSpan payload);
  controller::ExecResult do_kv(const nvme::SubmissionQueueEntry& sqe,
                               ConstByteSpan payload);
  controller::ExecResult do_kv_iterate(const nvme::SubmissionQueueEntry& sqe,
                                       std::string_view key,
                                       const nvme::VendorFields& fields);
  controller::ExecResult do_csd(const nvme::SubmissionQueueEntry& sqe,
                                ConstByteSpan payload);

  static kv::KvEngine::Config fill_kv_range(const Config& config,
                                            std::uint64_t base,
                                            std::uint64_t count);
  static csd::FilterEngine::Config fill_csd_range(const Config& config,
                                                  std::uint64_t base,
                                                  std::uint64_t count);

  SimClock& clock_;
  Config config_;
  nand::NandFlash nand_;
  nand::Ftl ftl_;
  std::uint64_t block_pages_;
  kv::KvEngine kv_;
  csd::FilterEngine filter_;
  WriteCache write_cache_;
  ByteVec scratch_;
  std::uint32_t scratch_valid_ = 0;
  obs::TraceRecorder* tracer_ = nullptr;
};

}  // namespace bx::ssd
