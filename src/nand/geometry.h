// NAND array geometry. Defaults approximate the Cosmos+ OpenSSD board
// (multi-channel, multi-way; the simulator uses a 4 KB mapped page, the
// device's LBA size).
#pragma once

#include <cstdint>

#include "common/sim_clock.h"

namespace bx::nand {

struct Geometry {
  std::uint32_t channels = 8;
  std::uint32_t ways = 4;           // dies per channel
  std::uint32_t blocks_per_die = 256;
  std::uint32_t pages_per_block = 256;
  std::uint32_t page_size = 4096;

  [[nodiscard]] std::uint32_t dies() const noexcept {
    return channels * ways;
  }
  [[nodiscard]] std::uint64_t total_blocks() const noexcept {
    return std::uint64_t{dies()} * blocks_per_die;
  }
  [[nodiscard]] std::uint64_t total_pages() const noexcept {
    return total_blocks() * pages_per_block;
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return total_pages() * page_size;
  }
};

/// Physical page address, flattened. Encoding: die-major so that
/// consecutive blocks of one die are contiguous.
struct PageAddress {
  std::uint32_t die = 0;
  std::uint32_t block = 0;  // within the die
  std::uint32_t page = 0;   // within the block

  [[nodiscard]] std::uint64_t flatten(const Geometry& g) const noexcept {
    return (std::uint64_t{die} * g.blocks_per_die + block) *
               g.pages_per_block +
           page;
  }
  static PageAddress unflatten(const Geometry& g,
                               std::uint64_t flat) noexcept {
    PageAddress a;
    a.page = static_cast<std::uint32_t>(flat % g.pages_per_block);
    flat /= g.pages_per_block;
    a.block = static_cast<std::uint32_t>(flat % g.blocks_per_die);
    a.die = static_cast<std::uint32_t>(flat / g.blocks_per_die);
    return a;
  }
};

/// Operation latencies (SLC-ish defaults in the OpenSSD's range).
struct NandTiming {
  Nanoseconds read_ns = 50'000;
  Nanoseconds program_ns = 400'000;
  Nanoseconds erase_ns = 3'000'000;
  /// Per-page transfer over the channel bus (shared per channel).
  Nanoseconds channel_transfer_ns = 10'000;
};

}  // namespace bx::nand
