#include "nand/nand_flash.h"

#include <algorithm>
#include <cstring>

namespace bx::nand {

NandFlash::NandFlash(const Geometry& geometry, const NandTiming& timing,
                     SimClock& clock)
    : geometry_(geometry),
      timing_(timing),
      clock_(clock),
      blocks_(geometry.total_blocks()),
      die_busy_until_(geometry.dies(), 0) {
  BX_ASSERT(geometry.dies() > 0);
  BX_ASSERT(geometry.page_size > 0);
}

std::size_t NandFlash::block_index(std::uint32_t die,
                                   std::uint32_t block) const noexcept {
  return std::size_t{die} * geometry_.blocks_per_die + block;
}

Status NandFlash::validate(const PageAddress& addr) const {
  if (addr.die >= geometry_.dies() ||
      addr.block >= geometry_.blocks_per_die ||
      addr.page >= geometry_.pages_per_block) {
    return out_of_range("NAND address out of geometry");
  }
  return Status::ok();
}

Nanoseconds NandFlash::occupy_die(std::uint32_t die, Nanoseconds duration,
                                  Blocking blocking) {
  const Nanoseconds start =
      std::max(clock_.now(), die_busy_until_[die]);
  const Nanoseconds end = start + duration;
  die_busy_until_[die] = end;
  if (blocking == Blocking::kForeground) clock_.advance_to(end);
  return end;
}

Status NandFlash::program(const PageAddress& addr, ConstByteSpan data,
                          Blocking blocking) {
  BX_RETURN_IF_ERROR(validate(addr));
  if (data.size() > geometry_.page_size) {
    return invalid_argument("program data exceeds page size");
  }
  if (is_bad_block(addr.die, addr.block)) {
    return data_loss("program failure: bad block");
  }
  BlockState& block = blocks_[block_index(addr.die, addr.block)];
  if (addr.page != block.next_page) {
    // NAND constraint: pages within a block must be programmed in order,
    // and a page cannot be reprogrammed without an erase.
    return failed_precondition("non-sequential program within block");
  }
  block.next_page = addr.page + 1;

  ByteVec stored(geometry_.page_size, 0xff);
  std::memcpy(stored.data(), data.data(), data.size());
  pages_[addr.flatten(geometry_)] = std::move(stored);

  occupy_die(addr.die, timing_.program_ns + timing_.channel_transfer_ns,
             blocking);
  ++programs_;
  return Status::ok();
}

Status NandFlash::read(const PageAddress& addr, ByteSpan out,
                       Blocking blocking) {
  BX_RETURN_IF_ERROR(validate(addr));
  if (out.size() > geometry_.page_size) {
    return invalid_argument("read size exceeds page size");
  }
  const auto it = pages_.find(addr.flatten(geometry_));
  if (it == pages_.end()) {
    return not_found("reading erased/unwritten page");
  }
  std::memcpy(out.data(), it->second.data(), out.size());
  occupy_die(addr.die, timing_.read_ns + timing_.channel_transfer_ns,
             blocking);
  ++reads_;
  return Status::ok();
}

Status NandFlash::erase_block(std::uint32_t die, std::uint32_t block,
                              Blocking blocking) {
  if (die >= geometry_.dies() || block >= geometry_.blocks_per_die) {
    return out_of_range("erase address out of geometry");
  }
  if (is_bad_block(die, block)) {
    return data_loss("erase failure: bad block");
  }
  BlockState& state = blocks_[block_index(die, block)];
  state.next_page = 0;
  ++state.erase_count;
  for (std::uint32_t page = 0; page < geometry_.pages_per_block; ++page) {
    pages_.erase(PageAddress{die, block, page}.flatten(geometry_));
  }
  occupy_die(die, timing_.erase_ns, blocking);
  ++erases_;
  return Status::ok();
}

bool NandFlash::is_programmed(const PageAddress& addr) const {
  return pages_.find(addr.flatten(geometry_)) != pages_.end();
}

void NandFlash::drain() {
  for (const Nanoseconds t : die_busy_until_) clock_.advance_to(t);
}

Nanoseconds NandFlash::busiest_die_free_at() const noexcept {
  Nanoseconds latest = 0;
  for (const Nanoseconds t : die_busy_until_) latest = std::max(latest, t);
  return latest;
}

void NandFlash::mark_bad_block(std::uint32_t die, std::uint32_t block) {
  bad_blocks_.insert(std::uint64_t{die} * geometry_.blocks_per_die + block);
}

bool NandFlash::is_bad_block(std::uint32_t die, std::uint32_t block) const {
  return bad_blocks_.count(std::uint64_t{die} * geometry_.blocks_per_die +
                           block) != 0;
}

std::uint32_t NandFlash::erase_count(std::uint32_t die,
                                     std::uint32_t block) const {
  return blocks_[block_index(die, block)].erase_count;
}

}  // namespace bx::nand
