// NAND flash array model.
//
// Models the constraints that make an FTL necessary — erase-before-program,
// sequential page programming within a block — plus per-die parallelism:
// every die keeps a `busy_until` timestamp, so foreground (blocking)
// operations wait for the die while background operations (KV flushes, GC)
// merely occupy it. Page contents are stored sparsely so large geometries
// cost only what is written.
//
// Failure injection: blocks can be marked bad (program/erase failures) to
// exercise the FTL's error paths.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "nand/geometry.h"

namespace bx::nand {

class NandFlash {
 public:
  NandFlash(const Geometry& geometry, const NandTiming& timing,
            SimClock& clock);

  /// Blocking behaviour of an operation: foreground ops advance the global
  /// clock to the operation's completion; background ops only occupy the
  /// die and let simulated time catch up when somebody waits on it.
  enum class Blocking { kForeground, kBackground };

  Status program(const PageAddress& addr, ConstByteSpan data,
                 Blocking blocking);
  Status read(const PageAddress& addr, ByteSpan out, Blocking blocking);
  Status erase_block(std::uint32_t die, std::uint32_t block,
                     Blocking blocking);

  /// True if the page has been programmed since the last erase.
  [[nodiscard]] bool is_programmed(const PageAddress& addr) const;

  /// Waits (advances the clock) until every die is idle.
  void drain();

  /// Simulated completion time of the busiest die.
  [[nodiscard]] Nanoseconds busiest_die_free_at() const noexcept;

  // --- failure injection ---
  void mark_bad_block(std::uint32_t die, std::uint32_t block);
  [[nodiscard]] bool is_bad_block(std::uint32_t die,
                                  std::uint32_t block) const;

  // --- statistics ---
  [[nodiscard]] std::uint64_t programs() const noexcept { return programs_; }
  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t erases() const noexcept { return erases_; }
  [[nodiscard]] std::uint32_t erase_count(std::uint32_t die,
                                          std::uint32_t block) const;

  [[nodiscard]] const Geometry& geometry() const noexcept {
    return geometry_;
  }
  [[nodiscard]] const NandTiming& timing() const noexcept { return timing_; }

 private:
  struct BlockState {
    std::uint32_t next_page = 0;  // sequential programming cursor
    std::uint32_t erase_count = 0;
  };

  Status validate(const PageAddress& addr) const;
  [[nodiscard]] std::size_t block_index(std::uint32_t die,
                                        std::uint32_t block) const noexcept;
  /// Occupies the die for `duration`; returns the operation's end time.
  Nanoseconds occupy_die(std::uint32_t die, Nanoseconds duration,
                         Blocking blocking);

  Geometry geometry_;
  NandTiming timing_;
  SimClock& clock_;

  std::vector<BlockState> blocks_;
  std::vector<Nanoseconds> die_busy_until_;
  std::unordered_map<std::uint64_t, ByteVec> pages_;  // flat addr -> data
  std::unordered_set<std::uint64_t> bad_blocks_;      // die*nblocks+block

  std::uint64_t programs_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t erases_ = 0;
};

}  // namespace bx::nand
