#include "nand/ftl.h"

#include <algorithm>

#include "common/logging.h"

namespace bx::nand {

Ftl::Ftl(NandFlash& nand, Config config) : nand_(nand), config_(config) {
  const Geometry& g = nand.geometry();
  BX_ASSERT(config.overprovision > 0.0 && config.overprovision < 1.0);
  BX_ASSERT(config.gc_threshold_blocks >= 1);
  BX_ASSERT_MSG(g.blocks_per_die > config.gc_threshold_blocks + 1,
                "geometry too small for GC headroom");

  logical_pages_ = static_cast<std::uint64_t>(
      double(g.total_pages()) * (1.0 - config.overprovision));
  map_.assign(logical_pages_, kUnmapped);
  valid_count_.assign(g.total_blocks(), 0);
  dies_.resize(g.dies());
  for (std::uint32_t die = 0; die < g.dies(); ++die) {
    DieState& state = dies_[die];
    state.free_blocks.reserve(g.blocks_per_die);
    // Reverse order so pop_back hands out block 0 first.
    for (std::uint32_t block = g.blocks_per_die; block-- > 0;) {
      if (!nand.is_bad_block(die, block)) {
        state.free_blocks.push_back(block);
      } else {
        ++retired_blocks_;
      }
    }
  }
}

std::size_t Ftl::block_slot(std::uint32_t die,
                            std::uint32_t block) const noexcept {
  return std::size_t{die} * nand_.geometry().blocks_per_die + block;
}

double Ftl::waf() const noexcept {
  return user_writes_ == 0
             ? 1.0
             : double(user_writes_ + gc_relocations_) / double(user_writes_);
}

std::uint32_t Ftl::free_blocks(std::uint32_t die) const {
  BX_ASSERT(die < dies_.size());
  return static_cast<std::uint32_t>(dies_[die].free_blocks.size());
}

bool Ftl::is_mapped(std::uint64_t lpn) const {
  return lpn < logical_pages_ && map_[lpn] != kUnmapped;
}

void Ftl::invalidate_phys(std::uint64_t flat_phys) {
  const PageAddress addr =
      PageAddress::unflatten(nand_.geometry(), flat_phys);
  const std::size_t slot = block_slot(addr.die, addr.block);
  BX_ASSERT(valid_count_[slot] > 0);
  --valid_count_[slot];
  reverse_.erase(flat_phys);
}

StatusOr<PageAddress> Ftl::allocate_page(std::uint32_t die, bool for_gc,
                                         NandFlash::Blocking blocking) {
  const Geometry& g = nand_.geometry();
  DieState& state = dies_[die];

  if (!for_gc && state.free_blocks.size() <= config_.gc_threshold_blocks &&
      (state.active_block == UINT32_MAX ||
       state.active_next_page >= g.pages_per_block)) {
    BX_RETURN_IF_ERROR(collect(die, blocking));
  }

  if (state.active_block == UINT32_MAX ||
      state.active_next_page >= g.pages_per_block) {
    if (state.free_blocks.empty()) {
      return resource_exhausted("die " + std::to_string(die) +
                                " has no free blocks");
    }
    state.active_block = state.free_blocks.back();
    state.free_blocks.pop_back();
    state.active_next_page = 0;
  }

  PageAddress addr{die, state.active_block, state.active_next_page};
  ++state.active_next_page;
  return addr;
}

Status Ftl::write(std::uint64_t lpn, ConstByteSpan data,
                  NandFlash::Blocking blocking) {
  if (lpn >= logical_pages_) return out_of_range("LPN beyond logical space");
  if (data.size() > page_size()) {
    return invalid_argument("data exceeds page size");
  }

  // Retry across blocks in case of program failures (bad-block retirement).
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::uint32_t die = rr_die_;
    rr_die_ = (rr_die_ + 1) % nand_.geometry().dies();
    auto addr = allocate_page(die, /*for_gc=*/false, blocking);
    BX_RETURN_IF_ERROR(addr.status());

    const Status programmed = nand_.program(*addr, data, blocking);
    if (!programmed.is_ok()) {
      if (programmed.code() == StatusCode::kDataLoss) {
        // Retire the failing block and try again elsewhere.
        BX_LOG_WARN << "retiring bad block die=" << addr->die
                    << " block=" << addr->block;
        nand_.mark_bad_block(addr->die, addr->block);
        ++retired_blocks_;
        dies_[addr->die].active_block = UINT32_MAX;
        continue;
      }
      return programmed;
    }

    if (map_[lpn] != kUnmapped) invalidate_phys(map_[lpn]);
    const std::uint64_t flat = addr->flatten(nand_.geometry());
    map_[lpn] = flat;
    reverse_[flat] = lpn;
    ++valid_count_[block_slot(addr->die, addr->block)];
    ++user_writes_;
    return Status::ok();
  }
  return data_loss("write failed: repeated program failures");
}

Status Ftl::read(std::uint64_t lpn, ByteSpan out) {
  if (lpn >= logical_pages_) return out_of_range("LPN beyond logical space");
  if (map_[lpn] == kUnmapped) return not_found("unmapped LPN");
  const PageAddress addr =
      PageAddress::unflatten(nand_.geometry(), map_[lpn]);
  return nand_.read(addr, out, NandFlash::Blocking::kForeground);
}

Status Ftl::trim(std::uint64_t lpn) {
  if (lpn >= logical_pages_) return out_of_range("LPN beyond logical space");
  if (map_[lpn] == kUnmapped) return Status::ok();
  invalidate_phys(map_[lpn]);
  map_[lpn] = kUnmapped;
  return Status::ok();
}

Status Ftl::collect(std::uint32_t die, NandFlash::Blocking blocking) {
  const Geometry& g = nand_.geometry();
  DieState& state = dies_[die];
  ++gc_runs_;

  // Greedy victim selection: the non-free, non-active block with the
  // fewest valid pages (ties go to the lower block number).
  std::uint32_t victim = UINT32_MAX;
  std::uint32_t victim_valid = UINT32_MAX;
  std::vector<bool> is_free(g.blocks_per_die, false);
  for (const std::uint32_t block : state.free_blocks) is_free[block] = true;
  for (std::uint32_t block = 0; block < g.blocks_per_die; ++block) {
    if (is_free[block] || block == state.active_block ||
        nand_.is_bad_block(die, block)) {
      continue;
    }
    const std::uint32_t valid = valid_count_[block_slot(die, block)];
    if (valid < victim_valid) {
      victim = block;
      victim_valid = valid;
    }
  }
  if (victim == UINT32_MAX) {
    return resource_exhausted("no GC victim available on die " +
                              std::to_string(die));
  }

  // Relocate the victim's valid pages into fresh allocations on this die.
  ByteVec buffer(g.page_size);
  for (std::uint32_t page = 0; page < g.pages_per_block; ++page) {
    const PageAddress src{die, victim, page};
    const std::uint64_t flat = src.flatten(g);
    const auto it = reverse_.find(flat);
    if (it == reverse_.end()) continue;
    const std::uint64_t lpn = it->second;
    BX_RETURN_IF_ERROR(nand_.read(src, buffer, blocking));
    auto dst = allocate_page(die, /*for_gc=*/true, blocking);
    BX_RETURN_IF_ERROR(dst.status());
    BX_RETURN_IF_ERROR(nand_.program(*dst, buffer, blocking));
    // Rewire the mapping.
    invalidate_phys(flat);
    const std::uint64_t new_flat = dst->flatten(g);
    map_[lpn] = new_flat;
    reverse_[new_flat] = lpn;
    ++valid_count_[block_slot(dst->die, dst->block)];
    ++gc_relocations_;
  }

  BX_ASSERT(valid_count_[block_slot(die, victim)] == 0);
  const Status erased = nand_.erase_block(die, victim, blocking);
  if (!erased.is_ok()) {
    if (erased.code() == StatusCode::kDataLoss) {
      nand_.mark_bad_block(die, victim);
      ++retired_blocks_;
      return Status::ok();  // data already moved; block just retires
    }
    return erased;
  }
  state.free_blocks.push_back(victim);
  return Status::ok();
}

}  // namespace bx::nand
