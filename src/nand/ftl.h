// Page-mapping flash translation layer with greedy garbage collection.
//
// Logical page numbers (4 KB) map to physical NAND pages. Writes are
// out-of-place: each die has an active block with a sequential program
// cursor; when a die runs low on free blocks, the block with the fewest
// valid pages is collected (valid pages relocated, block erased). Bad
// blocks reported by the NAND layer are retired on the spot and the write
// retried elsewhere.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "nand/nand_flash.h"

namespace bx::nand {

class Ftl {
 public:
  struct Config {
    /// Fraction of physical capacity withheld from the logical space.
    double overprovision = 0.125;
    /// GC starts when a die's free-block count drops to this.
    std::uint32_t gc_threshold_blocks = 2;
  };

  Ftl(NandFlash& nand, Config config);

  /// Logical pages exposed to upper layers.
  [[nodiscard]] std::uint64_t logical_pages() const noexcept {
    return logical_pages_;
  }
  [[nodiscard]] std::uint32_t page_size() const noexcept {
    return nand_.geometry().page_size;
  }

  /// Writes one logical page (data may be shorter than a page; the rest is
  /// padding). Blocking selects foreground (clock waits) vs background.
  Status write(std::uint64_t lpn, ConstByteSpan data,
               NandFlash::Blocking blocking);

  /// Reads one logical page (foreground).
  Status read(std::uint64_t lpn, ByteSpan out);

  /// Invalidates a mapping.
  Status trim(std::uint64_t lpn);

  [[nodiscard]] bool is_mapped(std::uint64_t lpn) const;

  // --- statistics ---
  [[nodiscard]] std::uint64_t user_writes() const noexcept {
    return user_writes_;
  }
  [[nodiscard]] std::uint64_t gc_relocations() const noexcept {
    return gc_relocations_;
  }
  [[nodiscard]] std::uint64_t gc_runs() const noexcept { return gc_runs_; }
  /// Write amplification factor: (user + GC writes) / user writes.
  [[nodiscard]] double waf() const noexcept;
  [[nodiscard]] std::uint32_t free_blocks(std::uint32_t die) const;
  [[nodiscard]] std::uint64_t retired_blocks() const noexcept {
    return retired_blocks_;
  }

 private:
  static constexpr std::uint64_t kUnmapped = UINT64_MAX;

  struct DieState {
    std::vector<std::uint32_t> free_blocks;
    std::uint32_t active_block = UINT32_MAX;
    std::uint32_t active_next_page = 0;
  };

  /// Physical page for the next write on `die`; runs GC when needed.
  /// for_gc suppresses recursive collection.
  StatusOr<PageAddress> allocate_page(std::uint32_t die, bool for_gc,
                                      NandFlash::Blocking blocking);
  Status collect(std::uint32_t die, NandFlash::Blocking blocking);
  void invalidate_phys(std::uint64_t flat_phys);
  [[nodiscard]] std::size_t block_slot(std::uint32_t die,
                                       std::uint32_t block) const noexcept;

  NandFlash& nand_;
  Config config_;
  std::uint64_t logical_pages_;

  std::vector<std::uint64_t> map_;                     // lpn -> flat phys
  std::unordered_map<std::uint64_t, std::uint64_t> reverse_;  // phys -> lpn
  std::vector<std::uint32_t> valid_count_;             // per block
  std::vector<DieState> dies_;
  std::uint32_t rr_die_ = 0;

  std::uint64_t user_writes_ = 0;
  std::uint64_t gc_relocations_ = 0;
  std::uint64_t gc_runs_ = 0;
  std::uint64_t retired_blocks_ = 0;
};

}  // namespace bx::nand
