#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace bx::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<ValuePtr> parse_document() {
    skip_ws();
    auto value = parse_value();
    if (!value.is_ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  Status error(const std::string& what) const {
    return invalid_argument("json: " + what + " at offset " +
                            std::to_string(pos_));
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  StatusOr<ValuePtr> parse_value() {
    if (depth_ > kMaxDepth) return error("nesting too deep");
    if (eof()) return error("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string_value();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        if (!consume_literal("null")) return error("bad literal");
        return std::make_shared<Value>();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        return error(std::string("unexpected character '") + c + "'");
    }
  }

  StatusOr<ValuePtr> parse_bool() {
    auto value = std::make_shared<Value>();
    value->kind = Kind::kBool;
    if (consume_literal("true")) {
      value->boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      value->boolean = false;
      return value;
    }
    return error("bad literal");
  }

  StatusOr<ValuePtr> parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return error("bad number");
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return error("bad number '" + token + "'");
    }
    auto value = std::make_shared<Value>();
    value->kind = Kind::kNumber;
    value->number = parsed;
    if (integral) {
      errno = 0;
      char* iend = nullptr;
      const long long exact = std::strtoll(token.c_str(), &iend, 10);
      if (iend == token.c_str() + token.size() && errno != ERANGE) {
        value->integer = static_cast<std::int64_t>(exact);
        value->is_integer = true;
      }
    }
    return value;
  }

  StatusOr<std::string> parse_string() {
    if (eof() || peek() != '"') return error("expected string");
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (eof()) return error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Bench reports are ASCII; decode BMP escapes as UTF-8 without
          // surrogate-pair handling (a lone surrogate is an input error).
          if (pos_ + 4 > text_.size()) return error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return error("bad \\u escape");
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            return error("unsupported surrogate escape");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default:
          return error("bad escape");
      }
    }
  }

  StatusOr<ValuePtr> parse_string_value() {
    auto text = parse_string();
    if (!text.is_ok()) return text.status();
    auto value = std::make_shared<Value>();
    value->kind = Kind::kString;
    value->string = std::move(*text);
    return value;
  }

  StatusOr<ValuePtr> parse_array() {
    ++pos_;  // '['
    ++depth_;
    auto value = std::make_shared<Value>();
    value->kind = Kind::kArray;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return value;
    }
    while (true) {
      skip_ws();
      auto item = parse_value();
      if (!item.is_ok()) return item;
      value->items.push_back(std::move(*item));
      skip_ws();
      if (eof()) return error("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') return error("expected ',' or ']'");
    }
    --depth_;
    return value;
  }

  StatusOr<ValuePtr> parse_object() {
    ++pos_;  // '{'
    ++depth_;
    auto value = std::make_shared<Value>();
    value->kind = Kind::kObject;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return value;
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.is_ok()) return key.status();
      skip_ws();
      if (eof() || text_[pos_++] != ':') return error("expected ':'");
      skip_ws();
      auto member = parse_value();
      if (!member.is_ok()) return member;
      // Duplicate keys: last wins (matches common parser behaviour).
      value->members[std::move(*key)] = std::move(*member);
      skip_ws();
      if (eof()) return error("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') return error("expected ',' or '}'");
    }
    --depth_;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

const Value* Value::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = members.find(std::string(key));
  if (it == members.end()) return nullptr;
  return it->second.get();
}

StatusOr<ValuePtr> parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

StatusOr<ValuePtr> parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found("json: cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace bx::json
