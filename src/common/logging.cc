#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace bx {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DBG";
    case LogLevel::kInfo: return "INF";
    case LogLevel::kWarn: return "WRN";
    case LogLevel::kError: return "ERR";
    case LogLevel::kOff: return "OFF";
  }
  return "???";
}

std::string_view basename_of(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void log_emit(LogLevel level, std::string_view file, int line,
              std::string_view message) {
  const std::string_view base = basename_of(file);
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %.*s:%d] %.*s\n", level_tag(level),
               static_cast<int>(base.size()), base.data(), line,
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail
}  // namespace bx
