// Minimal recursive-descent JSON reader for tooling (bxdiff, tests).
//
// The repo's bench reports (BENCH_*.json) are machine-written by
// bench_common.cc / microbench_multiqueue.cc, so this reader only needs
// honest RFC 8259 structure — objects, arrays, strings, numbers, bools,
// null — not streaming performance or byte-perfect round-tripping. Values
// are held in an owning tree; numbers keep their double value plus an
// exact int64 when the literal was integral. No external dependencies
// (the toolchain constraint that motivated writing this at all).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace bx::json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Kind : std::uint8_t {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

class Value {
 public:
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Exact integer value when the literal had no '.', 'e' or overflow.
  std::int64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<ValuePtr> items;                 // kArray
  std::map<std::string, ValuePtr> members;     // kObject (sorted keys)

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* get(std::string_view key) const;
  /// Convenience accessors returning a fallback on kind mismatch.
  [[nodiscard]] double number_or(double fallback) const noexcept {
    return is_number() ? number : fallback;
  }
  [[nodiscard]] std::string string_or(std::string fallback) const {
    return is_string() ? string : fallback;
  }
};

/// Parses one JSON document (leading/trailing whitespace tolerated).
/// Returns kInvalidArgument with a position-annotated message on error.
[[nodiscard]] StatusOr<ValuePtr> parse(std::string_view text);

/// Reads and parses a JSON file. kNotFound when the file cannot be read.
[[nodiscard]] StatusOr<ValuePtr> parse_file(const std::string& path);

}  // namespace bx::json
