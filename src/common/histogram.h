// Latency/size histograms with percentile queries.
//
// LatencyHistogram uses log-linear buckets (HdrHistogram-style: power-of-two
// ranges, 16 linear sub-buckets each) so percentiles stay within ~6% of the
// true value across nine decades without storing raw samples.
//
// Edge-case contract (tested by tests/common_test.cc):
//   * Every uint64 value maps to a real bucket — the top range group holds
//     values with the MSB at bit 63, so UINT64_MAX lands in the last
//     bucket, never out of range.
//   * The internal value sum saturates at UINT64_MAX instead of wrapping;
//     once saturated, mean() is a lower bound (percentiles, count, min and
//     max are unaffected). Reaching saturation needs ~2^64 total recorded
//     nanoseconds, far beyond any simulated run.
//   * percentile() of an empty histogram is 0, and p is clamped to
//     [0, 100]; p0/p100 return the exact observed min/max.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bx {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records `value` (`count` times). The value sum saturates at
  /// UINT64_MAX rather than wrapping — see the class comment.
  void record(std::uint64_t value) noexcept;
  void record_n(std::uint64_t value, std::uint64_t count) noexcept;
  void merge(const LatencyHistogram& other) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;

  /// Value at percentile p in [0, 100]. Returns 0 for an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;

  /// "n=... mean=... p50=... p99=... max=..." summary line.
  [[nodiscard]] std::string summary(std::string_view unit = "ns") const;

 private:
  static constexpr int kSubBucketBits = 4;  // 16 linear sub-buckets per decade
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kRanges = 64 - kSubBucketBits;

  static std::size_t bucket_index(std::uint64_t value) noexcept;
  static std::uint64_t bucket_midpoint(std::size_t index) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

/// Exact counter for small discrete domains (e.g. value-size buckets for the
/// Fig 1(a) distribution). Stores a dense vector up to `domain` and counts
/// overflow separately.
class ExactCounter {
 public:
  explicit ExactCounter(std::size_t domain);

  void record(std::uint64_t value) noexcept;
  [[nodiscard]] std::uint64_t count_of(std::uint64_t value) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  /// Fraction of recorded values that are <= `value`. Counts in-domain
  /// values only: overflow recordings (>= domain) never contribute, so
  /// cdf(UINT64_MAX) is total-overflow over total, not 1.0.
  [[nodiscard]] double cdf(std::uint64_t value) const noexcept;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace bx
