// Tiny key=value configuration store. Benchmarks and examples accept
// "key=value" command-line overrides (e.g. pcie.gen=4 nand.channels=8)
// without pulling in a flags library.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace bx {

class Config {
 public:
  Config() = default;

  /// Parses one "key=value" token.
  Status set_from_arg(std::string_view arg);

  /// Parses argv[1..), ignoring tokens without '='. Returns the first error.
  Status parse_args(int argc, const char* const* argv);

  void set(std::string key, std::string value);

  [[nodiscard]] bool contains(std::string_view key) const;

  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Sorted "key=value" lines, for reproducibility banners in bench output.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace bx
