#include "common/config.h"

#include <charconv>

namespace bx {

Status Config::set_from_arg(std::string_view arg) {
  const auto eq = arg.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return invalid_argument("expected key=value, got '" + std::string(arg) +
                            "'");
  }
  set(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
  return Status::ok();
}

Status Config::parse_args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.find('=') == std::string_view::npos) continue;
    BX_RETURN_IF_ERROR(set_from_arg(arg));
  }
  return Status::ok();
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::contains(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::string Config::get_string(std::string_view key,
                               std::string_view fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::string(fallback) : it->second;
}

std::int64_t Config::get_int(std::string_view key,
                             std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t value = 0;
  const std::string& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{}) return fallback;
  // Accept size suffixes: k/K, m/M, g/G (binary).
  if (ptr != s.data() + s.size()) {
    switch (*ptr) {
      case 'k': case 'K': value <<= 10; break;
      case 'm': case 'M': value <<= 20; break;
      case 'g': case 'G': value <<= 30; break;
      default: return fallback;
    }
  }
  return value;
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace bx
