#include "common/sim_clock.h"

// Header-only today; this TU anchors the target and reserves room for an
// event-queue extension without touching dependents.
