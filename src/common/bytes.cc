#include "common/bytes.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace bx {
namespace {

// Same mixer as splitmix64 — cheap and byte-position sensitive.
std::uint64_t mix(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Byte pattern_byte(std::uint64_t seed, std::size_t index) noexcept {
  const std::uint64_t word = mix(seed + (index / 8) * 0x9e3779b97f4a7c15ULL);
  return static_cast<Byte>(word >> ((index % 8) * 8));
}

}  // namespace

void fill_pattern(ByteSpan out, std::uint64_t seed) noexcept {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = pattern_byte(seed, i);
}

bool verify_pattern(ConstByteSpan data, std::uint64_t seed) noexcept {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != pattern_byte(seed, i)) return false;
  }
  return true;
}

std::string hex_dump(ConstByteSpan data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  for (std::size_t row = 0; row < n; row += 16) {
    char head[32];
    std::snprintf(head, sizeof(head), "%04zx: ", row);
    out += head;
    for (std::size_t col = 0; col < 16; ++col) {
      if (row + col < n) {
        char hex[4];
        std::snprintf(hex, sizeof(hex), "%02x ", data[row + col]);
        out += hex;
      } else {
        out += "   ";
      }
    }
    out += "|";
    for (std::size_t col = 0; col < 16 && row + col < n; ++col) {
      const Byte b = data[row + col];
      out += std::isprint(b) != 0 ? static_cast<char>(b) : '.';
    }
    out += "|\n";
  }
  if (data.size() > max_bytes) out += "... (truncated)\n";
  return out;
}

}  // namespace bx
