// CRC32-C (Castagnoli). Used by the value log and the out-of-order
// reassembly engine to validate payload integrity end to end.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace bx {

/// CRC32-C of `data`, optionally continuing from a previous crc.
[[nodiscard]] std::uint32_t crc32c(ConstByteSpan data,
                                   std::uint32_t seed = 0) noexcept;

}  // namespace bx
