// Deterministic pseudo-random sources for workload generation.
//
// Xoshiro256** is used instead of std::mt19937 because it is much faster,
// has a tiny state, and — unlike the distributions in <random> — the
// distributions implemented here are specified, so traces are reproducible
// across standard library implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace bx {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli draw.
  bool next_bool(double probability_true) noexcept;

  /// Fills `out` with pseudo-random bytes.
  void fill(void* out, std::size_t size) noexcept;

 private:
  std::uint64_t state_[4];
};

/// Zipfian distribution over [0, n) with exponent theta (YCSB-style,
/// theta in (0, 1); theta ~0.99 approximates heavy production skew).
/// Uses the Gray et al. rejection-free method with precomputed zeta.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed);

  std::uint64_t next() noexcept;
  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  Rng rng_;
};

/// Generalized Pareto distribution used by RocksDB's MixGraph benchmark to
/// model key/value sizes (Cao et al., FAST '20). Draws
///   x = location + scale * ((1-u)^(-shape) - 1) / shape
/// truncated to [min_value, max_value].
class ParetoGenerator {
 public:
  ParetoGenerator(double location, double scale, double shape,
                  std::uint64_t min_value, std::uint64_t max_value,
                  std::uint64_t seed);

  std::uint64_t next() noexcept;

 private:
  double location_;
  double scale_;
  double shape_;
  std::uint64_t min_value_;
  std::uint64_t max_value_;
  Rng rng_;
};

}  // namespace bx
