// Simulated time. Every modeled hardware action (TLP serialization, SQE
// insertion, NAND program, ...) advances a SimClock by a calibrated cost, so
// latency results are deterministic and independent of host machine speed.
//
// Components share a clock by reference; the Testbed owns the canonical one.
// The counter is atomic so multi-threaded ordering tests (many host threads
// submitting into shared SQs) are race-free; single-threaded benchmarks stay
// exactly deterministic.
#pragma once

#include <atomic>
#include <cstdint>

namespace bx {

using Nanoseconds = std::uint64_t;

class SimClock {
 public:
  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  [[nodiscard]] Nanoseconds now() const noexcept {
    return now_ns_.load(std::memory_order_relaxed);
  }

  /// Advances time by `delta` and returns the new now.
  Nanoseconds advance(Nanoseconds delta) noexcept {
    return now_ns_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }

  /// Moves time forward to `t` if it is in the future (no-op otherwise):
  /// used when independent engines each track their local completion time.
  void advance_to(Nanoseconds t) noexcept {
    Nanoseconds current = now_ns_.load(std::memory_order_relaxed);
    while (t > current &&
           !now_ns_.compare_exchange_weak(current, t,
                                          std::memory_order_relaxed)) {
    }
  }

  void reset() noexcept { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<Nanoseconds> now_ns_{0};
};

/// Measures a clock interval.
class ScopedTimer {
 public:
  explicit ScopedTimer(const SimClock& clock) noexcept
      : clock_(clock), start_(clock.now()) {}

  [[nodiscard]] Nanoseconds elapsed() const noexcept {
    return clock_.now() - start_;
  }

 private:
  const SimClock& clock_;
  Nanoseconds start_;
};

}  // namespace bx
