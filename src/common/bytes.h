// Byte-buffer helpers shared by the DMA, NVMe and workload layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bx {

using Byte = std::uint8_t;
using ByteSpan = std::span<Byte>;
using ConstByteSpan = std::span<const Byte>;
using ByteVec = std::vector<Byte>;

/// Rounds `value` up to the next multiple of `alignment` (a power of two).
constexpr std::uint64_t align_up(std::uint64_t value,
                                 std::uint64_t alignment) noexcept {
  return (value + alignment - 1) & ~(alignment - 1);
}

constexpr std::uint64_t align_down(std::uint64_t value,
                                   std::uint64_t alignment) noexcept {
  return value & ~(alignment - 1);
}

constexpr bool is_aligned(std::uint64_t value,
                          std::uint64_t alignment) noexcept {
  return (value & (alignment - 1)) == 0;
}

/// ceil(a / b) for b > 0.
constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Fills `out` with a deterministic pattern derived from `seed` so that
/// payloads can be verified end to end after transfer.
void fill_pattern(ByteSpan out, std::uint64_t seed) noexcept;

/// True iff `data` matches the pattern fill_pattern(seed) would produce.
[[nodiscard]] bool verify_pattern(ConstByteSpan data,
                                  std::uint64_t seed) noexcept;

/// Canonical hex dump ("0000: 00 01 02 ... |........|"), for diagnostics.
[[nodiscard]] std::string hex_dump(ConstByteSpan data,
                                   std::size_t max_bytes = 256);

/// Convenience: bytes of a string (no copy).
inline ConstByteSpan as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const Byte*>(s.data()), s.size()};
}

inline std::string to_string(ConstByteSpan data) {
  return {reinterpret_cast<const char*>(data.data()), data.size()};
}

}  // namespace bx
