#include "common/rng.h"

#include <cmath>
#include <cstring>

namespace bx {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  BX_ASSERT(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
  BX_ASSERT(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  return lo + next_below(span);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double probability_true) noexcept {
  return next_double() < probability_true;
}

void Rng::fill(void* out, std::size_t size) noexcept {
  auto* dst = static_cast<std::uint8_t*>(out);
  while (size >= sizeof(std::uint64_t)) {
    const std::uint64_t word = next();
    std::memcpy(dst, &word, sizeof(word));
    dst += sizeof(word);
    size -= sizeof(word);
  }
  if (size > 0) {
    const std::uint64_t word = next();
    std::memcpy(dst, &word, size);
  }
}

namespace {

double zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta,
                                   std::uint64_t seed)
    : n_(n), theta_(theta), zetan_(zeta(n, theta)), rng_(seed) {
  BX_ASSERT(n > 0);
  BX_ASSERT(theta > 0 && theta < 1);
  const double zeta2 = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfianGenerator::next() noexcept {
  const double u = rng_.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

ParetoGenerator::ParetoGenerator(double location, double scale, double shape,
                                 std::uint64_t min_value,
                                 std::uint64_t max_value, std::uint64_t seed)
    : location_(location),
      scale_(scale),
      shape_(shape),
      min_value_(min_value),
      max_value_(max_value),
      rng_(seed) {
  BX_ASSERT(min_value <= max_value);
  BX_ASSERT(scale > 0);
}

std::uint64_t ParetoGenerator::next() noexcept {
  const double u = rng_.next_double();
  double x;
  if (std::abs(shape_) < 1e-9) {
    x = location_ - scale_ * std::log(1.0 - u);  // exponential limit
  } else {
    x = location_ + scale_ * (std::pow(1.0 - u, -shape_) - 1.0) / shape_;
  }
  if (x < double(min_value_)) return min_value_;
  if (x > double(max_value_)) return max_value_;
  return static_cast<std::uint64_t>(x);
}

}  // namespace bx
