#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/status.h"

namespace bx {
namespace {

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) noexcept {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) noexcept {
  return a != 0 && b > UINT64_MAX / a ? UINT64_MAX : a * b;
}

}  // namespace

LatencyHistogram::LatencyHistogram()
    // +2 range groups: the linear sub-16 region plus the top range that
    // holds values with the MSB at bit 63.
    : buckets_(static_cast<std::size_t>(kRanges + 2) * kSubBuckets, 0) {}

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int range = msb - kSubBucketBits + 1;
  const auto sub = static_cast<std::size_t>(
      (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  // range <= 63 - kSubBucketBits + 1 = kRanges + 1, so the largest index
  // (UINT64_MAX's) is (kRanges + 2) * kSubBuckets - 1 — the final bucket
  // the constructor allocates. The BX_ASSERT in record_n backstops this.
  return static_cast<std::size_t>(range) * kSubBuckets + sub + kSubBuckets;
}

std::uint64_t LatencyHistogram::bucket_midpoint(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  index -= kSubBuckets;
  const int range = static_cast<int>(index / kSubBuckets);
  const std::uint64_t sub = index % kSubBuckets;
  const std::uint64_t base = (std::uint64_t{kSubBuckets} | sub)
                             << (range - 1);
  const std::uint64_t width = std::uint64_t{1} << (range - 1);
  return base + width / 2;
}

void LatencyHistogram::record(std::uint64_t value) noexcept {
  record_n(value, 1);
}

void LatencyHistogram::record_n(std::uint64_t value,
                                std::uint64_t count) noexcept {
  if (count == 0) return;
  const std::size_t index = bucket_index(value);
  BX_ASSERT(index < buckets_.size());
  buckets_[index] = saturating_add(buckets_[index], count);
  count_ = saturating_add(count_, count);
  sum_ = saturating_add(sum_, saturating_mul(value, count));
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] = saturating_add(buckets_[i], other.buckets_[i]);
  }
  count_ = saturating_add(count_, other.count_);
  sum_ = saturating_add(sum_, other.sum_);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

std::uint64_t LatencyHistogram::min() const noexcept {
  return count_ == 0 ? 0 : min_;
}

double LatencyHistogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / double(count_);
}

std::uint64_t LatencyHistogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // The extremes are tracked exactly.
  if (p == 0.0) return min();
  if (p == 100.0) return max_;
  const auto target = static_cast<std::uint64_t>(p / 100.0 * double(count_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target || (seen == target && seen == count_)) {
      // Clamp the bucket midpoint estimate to the observed extremes so
      // p0/p100 are exact.
      return std::clamp(bucket_midpoint(i), min(), max_);
    }
  }
  return max_;
}

std::string LatencyHistogram::summary(std::string_view unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f%.*s p50=%llu p95=%llu p99=%llu max=%llu%.*s",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<int>(unit.size()), unit.data(),
                static_cast<unsigned long long>(percentile(50)),
                static_cast<unsigned long long>(percentile(95)),
                static_cast<unsigned long long>(percentile(99)),
                static_cast<unsigned long long>(max()),
                static_cast<int>(unit.size()), unit.data());
  return buf;
}

ExactCounter::ExactCounter(std::size_t domain) : counts_(domain, 0) {}

void ExactCounter::record(std::uint64_t value) noexcept {
  ++total_;
  if (value < counts_.size()) {
    ++counts_[static_cast<std::size_t>(value)];
  } else {
    ++overflow_;
  }
}

std::uint64_t ExactCounter::count_of(std::uint64_t value) const noexcept {
  return value < counts_.size() ? counts_[static_cast<std::size_t>(value)] : 0;
}

double ExactCounter::cdf(std::uint64_t value) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  // value + 1 would wrap at UINT64_MAX; compare first instead.
  const std::uint64_t limit =
      value >= counts_.size() ? counts_.size() : value + 1;
  for (std::uint64_t i = 0; i < limit; ++i) below += counts_[i];
  return static_cast<double>(below) / double(total_);
}

}  // namespace bx
