// Minimal leveled logger. The simulator is deterministic and mostly silent;
// logging exists for debugging firmware/driver state machines (BX_LOG_DEBUG)
// and for surfacing misconfiguration (BX_LOG_WARN/ERROR). The level is a
// process-global atomic so tests can silence or amplify output.
#pragma once

#include <atomic>
#include <sstream>
#include <string_view>

namespace bx {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {

bool log_enabled(LogLevel level) noexcept;
void log_emit(LogLevel level, std::string_view file, int line,
              std::string_view message);

/// Builds one log line and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace bx

#define BX_LOG(level)                                  \
  if (!::bx::detail::log_enabled(level)) {             \
  } else                                               \
    ::bx::detail::LogLine(level, __FILE__, __LINE__)

#define BX_LOG_DEBUG BX_LOG(::bx::LogLevel::kDebug)
#define BX_LOG_INFO BX_LOG(::bx::LogLevel::kInfo)
#define BX_LOG_WARN BX_LOG(::bx::LogLevel::kWarn)
#define BX_LOG_ERROR BX_LOG(::bx::LogLevel::kError)
