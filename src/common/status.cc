#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace bx {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kAborted: return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace detail {

void die_on_bad_status_access(const Status& status) {
  std::fprintf(stderr, "FATAL: StatusOr accessed with error status: %s\n",
               status.to_string().c_str());
  std::abort();
}

void assert_failure(const char* expr, const char* file, int line,
                    const char* msg) {
  std::fprintf(stderr, "FATAL: assertion `%s` failed at %s:%d %s\n", expr,
               file, line, msg);
  std::abort();
}

}  // namespace detail
}  // namespace bx
