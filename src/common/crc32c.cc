#include "common/crc32c.h"

#include <array>

namespace bx {
namespace {

constexpr std::uint32_t kPolynomial = 0x82f63b78u;  // reflected CRC32-C

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(ConstByteSpan data, std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  for (const Byte b : data) {
    crc = kTable[(crc ^ b) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace bx
