// Status / StatusOr<T>: lightweight, exception-free error propagation used
// across the whole library. Modeled after the common absl idiom but kept
// dependency-free. Functions that can fail return Status (or StatusOr<T>
// when they also produce a value); hot-path invariant violations use
// BX_ASSERT which aborts, because a broken simulator invariant is a bug,
// not an environmental error.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace bx {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kAborted,
};

/// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
std::string_view status_code_name(StatusCode code) noexcept;

/// A success-or-error result. Cheap to copy on the OK path (no allocation).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Status& other) const noexcept {
    return code_ == other.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status out_of_range(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status data_loss(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status aborted(std::string msg) {
  return {StatusCode::kAborted, std::move(msg)};
}

/// Either a value of T or a non-OK Status. Accessing value() on an error
/// aborts; check is_ok() (or use value_or) first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : rep_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(rep_);
  }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(rep_);
  }

  [[nodiscard]] T& value() & {
    check_ok();
    return std::get<T>(rep_);
  }
  [[nodiscard]] const T& value() const& {
    check_ok();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    check_ok();
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(rep_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  void check_ok() const;
  std::variant<Status, T> rep_;
};

namespace detail {
[[noreturn]] void die_on_bad_status_access(const Status& status);
[[noreturn]] void assert_failure(const char* expr, const char* file, int line,
                                 const char* msg);
}  // namespace detail

template <typename T>
void StatusOr<T>::check_ok() const {
  if (!is_ok()) detail::die_on_bad_status_access(std::get<Status>(rep_));
}

}  // namespace bx

/// Abort with a diagnostic if a simulator invariant does not hold.
#define BX_ASSERT(expr)                                                    \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::bx::detail::assert_failure(#expr, __FILE__, __LINE__, "");         \
    }                                                                      \
  } while (0)

#define BX_ASSERT_MSG(expr, msg)                                           \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::bx::detail::assert_failure(#expr, __FILE__, __LINE__, (msg));      \
    }                                                                      \
  } while (0)

/// Propagate a non-OK Status to the caller.
#define BX_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::bx::Status bx_status_ = (expr);             \
    if (!bx_status_.is_ok()) return bx_status_;   \
  } while (0)
