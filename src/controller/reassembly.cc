#include "controller/reassembly.h"

#include <algorithm>
#include <cstring>

#include "common/crc32c.h"

namespace bx::controller {

namespace inw = nvme::inline_chunk;

ReassemblyEngine::ReassemblyEngine(Config config)
    : config_(config), slots_(config.slots) {
  BX_ASSERT(config.slots > 0);
  BX_ASSERT(config.max_chunks > 0);
}

ReassemblyEngine::Slot* ReassemblyEngine::find(
    std::uint32_t payload_id) noexcept {
  for (auto& slot : slots_) {
    if (slot.in_use && slot.payload_id == payload_id) return &slot;
  }
  return nullptr;
}

const ReassemblyEngine::Slot* ReassemblyEngine::find(
    std::uint32_t payload_id) const noexcept {
  for (const auto& slot : slots_) {
    if (slot.in_use && slot.payload_id == payload_id) return &slot;
  }
  return nullptr;
}

ReassemblyEngine::Slot* ReassemblyEngine::acquire(
    std::uint32_t payload_id, std::uint16_t total_chunks) noexcept {
  for (auto& slot : slots_) {
    if (!slot.in_use) {
      slot.in_use = true;
      slot.payload_id = payload_id;
      slot.total_chunks = total_chunks;
      slot.received = 0;
      slot.bitmap.assign((total_chunks + 63) / 64, 0);
      slot.staging.assign(
          std::size_t{total_chunks} * inw::kOooChunkCapacity, 0);
      return &slot;
    }
  }
  return nullptr;
}

Status ReassemblyEngine::accept(const inw::OooChunkHeader& header,
                                ConstByteSpan data, Nanoseconds now) {
  if (header.magic != inw::kOooChunkMagic) {
    return invalid_argument("bad chunk magic");
  }
  if (header.total_chunks == 0 || header.total_chunks > config_.max_chunks) {
    return invalid_argument("bad total chunk count");
  }
  if (header.chunk_no >= header.total_chunks) {
    return invalid_argument("chunk number out of range");
  }
  if (data.size() != header.data_len ||
      header.data_len > inw::kOooChunkCapacity) {
    return invalid_argument("chunk data length mismatch");
  }
  if (crc32c(data) != header.crc) {
    return data_loss("chunk CRC mismatch");
  }

  Slot* slot = find(header.payload_id);
  if (slot == nullptr) {
    slot = acquire(header.payload_id, header.total_chunks);
    if (slot == nullptr) {
      return resource_exhausted("all reassembly slots busy");
    }
  }
  if (slot->total_chunks != header.total_chunks) {
    return invalid_argument("inconsistent total chunk count for payload");
  }

  const std::size_t word = header.chunk_no / 64;
  const std::uint64_t bit = std::uint64_t{1} << (header.chunk_no % 64);
  if ((slot->bitmap[word] & bit) != 0) {
    return already_exists("duplicate chunk");
  }
  slot->bitmap[word] |= bit;
  ++slot->received;
  slot->last_update_ns = now;
  // Direct placement at the chunk's DRAM offset (§3.3.2) — no buffering of
  // out-of-order arrivals is needed.
  std::memcpy(slot->staging.data() +
                  std::size_t{header.chunk_no} * inw::kOooChunkCapacity,
              data.data(), data.size());
  return Status::ok();
}

bool ReassemblyEngine::complete(std::uint32_t payload_id) const noexcept {
  const Slot* slot = find(payload_id);
  return slot != nullptr && slot->received == slot->total_chunks;
}

StatusOr<ByteVec> ReassemblyEngine::take(std::uint32_t payload_id,
                                         std::uint64_t length) {
  Slot* slot = find(payload_id);
  if (slot == nullptr) return not_found("unknown payload id");
  if (slot->received != slot->total_chunks) {
    return failed_precondition("payload incomplete");
  }
  if (length > slot->staging.size()) {
    return invalid_argument("declared length exceeds received data");
  }
  ByteVec out(slot->staging.begin(),
              slot->staging.begin() + static_cast<std::ptrdiff_t>(length));
  slot->in_use = false;
  slot->staging.clear();
  slot->bitmap.clear();
  return out;
}

std::vector<std::uint32_t> ReassemblyEngine::evict_expired(Nanoseconds now) {
  std::vector<std::uint32_t> evicted;
  if (config_.ttl_ns == 0) return evicted;
  for (auto& slot : slots_) {
    if (slot.in_use && now > slot.last_update_ns &&
        now - slot.last_update_ns > config_.ttl_ns) {
      evicted.push_back(slot.payload_id);
      slot.in_use = false;
      slot.staging.clear();
      slot.bitmap.clear();
    }
  }
  return evicted;
}

void ReassemblyEngine::drop(std::uint32_t payload_id) noexcept {
  Slot* slot = find(payload_id);
  if (slot != nullptr) {
    slot->in_use = false;
    slot->staging.clear();
    slot->bitmap.clear();
  }
}

std::uint32_t ReassemblyEngine::in_flight() const noexcept {
  std::uint32_t count = 0;
  for (const auto& slot : slots_) count += slot.in_use ? 1 : 0;
  return count;
}

std::size_t ReassemblyEngine::tracking_sram_bytes() const noexcept {
  // Per slot: payload id (4) + counters (4) + bitmap words.
  std::size_t bytes = 0;
  for (const auto& slot : slots_) {
    bytes += 8 + slot.bitmap.size() * sizeof(std::uint64_t);
  }
  return bytes;
}

// -------------------------------------------------------- ReadReassembler

namespace inr = nvme::inline_read;

ReadReassembler::ReadReassembler(std::uint16_t qid, std::uint16_t cid,
                                 std::uint32_t declared_length)
    : qid_(qid), cid_(cid), declared_length_(declared_length) {
  BX_ASSERT(declared_length > 0);
  total_chunks_ =
      static_cast<std::uint16_t>(inr::read_chunks_for(declared_length));
  bitmap_.assign((total_chunks_ + 63u) / 64u, 0);
  staging_.assign(declared_length, 0);
}

Status ReadReassembler::accept(const nvme::SqSlot& slot) {
  if (!inr::is_read_chunk(slot)) {
    return invalid_argument("not a read chunk (stale or foreign slot)");
  }
  const inr::ReadChunkHeader header = inr::decode_read_header(slot);
  if (header.version != 1) {
    return invalid_argument("unknown read chunk version");
  }
  if (header.qid != qid_ || header.cid != cid_) {
    return invalid_argument("read chunk addressed to another command");
  }
  if (header.total_chunks != total_chunks_) {
    return invalid_argument("inconsistent total chunk count");
  }
  if (header.chunk_no >= total_chunks_) {
    return invalid_argument("chunk number out of range");
  }
  const std::uint32_t offset =
      std::uint32_t{header.chunk_no} * inr::kReadChunkCapacity;
  const std::uint32_t expected_len =
      std::min(inr::kReadChunkCapacity, declared_length_ - offset);
  if (header.data_len != expected_len) {
    return invalid_argument("chunk data length mismatch");
  }
  const ConstByteSpan data = inr::read_chunk_data(slot, header);
  if (crc32c(data) != header.crc) {
    return data_loss("read chunk CRC mismatch");
  }
  const std::size_t word = header.chunk_no / 64;
  const std::uint64_t bit = std::uint64_t{1} << (header.chunk_no % 64);
  if ((bitmap_[word] & bit) != 0) {
    return already_exists("duplicate read chunk");
  }
  bitmap_[word] |= bit;
  ++received_;
  std::memcpy(staging_.data() + offset, data.data(), data.size());
  return Status::ok();
}

StatusOr<ByteVec> ReadReassembler::take() {
  if (!complete()) {
    return failed_precondition("inline read payload incomplete");
  }
  return std::move(staging_);
}

}  // namespace bx::controller
