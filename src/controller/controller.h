// NVMe controller (device firmware) model — the get_nvme_cmd() side.
//
// Mirrors the Cosmos+ OpenSSD firmware structure the paper modified:
//   * SQ tail doorbells are polled in round-robin,
//   * each command is fetched with a 64-byte DMA read,
//   * the ByteExpress change sits in the fetch path: when a fetched command
//     carries a non-zero inline length (reserved CDW2), the controller
//     computes the chunk count and keeps fetching entries *from the same
//     SQ* until the payload is complete, never switching queues
//     mid-transaction (§3.3.2's queue-local ordering rule),
//   * PRP data DMA is page-granular (whole 4 KB pages cross the link no
//     matter the payload size — the amplification of Figures 1(b)/(c)),
//   * SGL data DMA is exact-sized (§5),
//   * BandSlim fragment commands are reassembled per stream,
//   * the §3.3.2 out-of-order identifier-based reassembly is implemented
//     behind Config::enable_ooo_reassembly.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/histogram.h"
#include "fault/fault.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "controller/executor.h"
#include "controller/reassembly.h"
#include "hostmem/dma_memory.h"
#include "nvme/queue.h"
#include "nvme/spec.h"
#include "nvme/timing.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "pcie/bar.h"
#include "pcie/link.h"

namespace bx::controller {

class Controller {
 public:
  struct Config {
    nvme::DeviceTimingModel timing{};
    std::uint16_t max_queues = 64;
    /// Firmware support switch: with ByteExpress disabled, a non-zero
    /// inline length is an invalid field (forward-compatibility tests).
    bool byteexpress_enabled = true;
    bool enable_ooo_reassembly = true;
    /// ByteExpress-R firmware support switch: with inline reads disabled
    /// the controller rejects kVendorReadRing advertisements (Invalid
    /// Field) and ignores the SQE inline-read marker, so the driver falls
    /// back to PRP/SGL reads (forward-compatibility tests).
    bool enable_inline_read = true;
    ReassemblyEngine::Config reassembly{};
    /// SQ entries fetched per chunk DMA read (1 = the paper's
    /// entry-at-a-time OpenSSD implementation; >1 is the batched-fetch
    /// ablation).
    std::uint32_t chunk_fetch_batch = 1;
    /// PRP data-transfer granularity in bytes. The Cosmos+ platform moves
    /// whole 4 KB pages (the paper's amplification); §5 notes some
    /// configurations support finer units (e.g. 512 B) — this knob models
    /// them for the page-granularity ablation. Must divide 4096.
    std::uint32_t prp_transfer_unit = 4096;
    /// MSI-X interrupt coalescing: post one interrupt per N completions on
    /// each CQ (1 = every CQE, the OpenSSD behaviour). The host driver
    /// also polls CQ memory, so correctness never depends on interrupts.
    std::uint32_t interrupt_coalescing = 1;
    /// Sim-time a deferred OOO command may wait for missing chunks before
    /// the firmware gives up and posts a retryable Data Transfer Error.
    /// Must stay below the driver's command timeout so the device fails
    /// the command before the host aborts it. Active only under fault
    /// injection — without an injector chunks are never lost. 0 disables.
    Nanoseconds deferred_ttl_ns = 1'000'000;  // 1 ms
    /// QoS arbitration (docs/TENANCY.md). Off keeps the legacy plain
    /// round-robin poll loop byte-identical (golden traces). On, the
    /// poll loop serves backlogged queues by smooth weighted round-robin
    /// over the weights set via set_queue_arbitration(), with
    /// urgent-class queues preempting normal ones up to the burst bound.
    bool wrr_arbitration = false;
    /// Consecutive urgent-class grants allowed while a normal-class
    /// queue is backlogged before one normal grant is forced (the
    /// urgent-preemption starvation bound).
    std::uint32_t urgent_burst_limit = 8;
  };

  Controller(DmaMemory& memory, pcie::PcieLink& link, pcie::BarSpace& bar,
             CommandExecutor& executor, Config config);

  /// Registers the admin queue pair (set by the host before enabling the
  /// controller, modeling the AQA/ASQ/ACQ registers).
  void set_admin_queue(std::uint64_t sq_addr, std::uint32_t sq_depth,
                       std::uint64_t cq_addr, std::uint32_t cq_depth);

  /// Size of namespace 1 in 4 KB blocks, reported by Identify Namespace.
  void set_namespace_blocks(std::uint64_t blocks) noexcept {
    namespace_blocks_ = blocks;
  }

  /// One firmware scheduling round: polls SQ tail doorbells round-robin and
  /// processes at most one command (with all of its chunks/fragments).
  /// Returns true if any work was done.
  bool poll_once();

  /// Drains all pending work.
  void run_until_idle();

  /// Fetch-stage cost (Table 1, controller column) of the most recent
  /// command: SQE fetch + inline chunk fetches, firmware and link time.
  [[nodiscard]] Nanoseconds last_fetch_cost() const noexcept {
    return last_fetch_cost_ns_;
  }
  [[nodiscard]] const LatencyHistogram& fetch_stage_histogram()
      const noexcept {
    return fetch_stage_hist_;
  }
  void reset_fetch_stats() noexcept { fetch_stage_hist_.reset(); }

  [[nodiscard]] const ReassemblyEngine& reassembly() const noexcept {
    return reassembly_;
  }

  /// Commands processed since construction.
  [[nodiscard]] std::uint64_t commands_processed() const noexcept {
    return commands_processed_.value();
  }
  /// Payload chunks fetched inline since construction.
  [[nodiscard]] std::uint64_t chunks_fetched() const noexcept {
    return chunks_fetched_.value();
  }
  /// The vendor transfer-stats log (also served via Get Log Page 0xC0).
  [[nodiscard]] nvme::TransferStatsLog transfer_stats() const noexcept;

  /// The vendor stage-stats log (also served via Get Log Page 0xC1):
  /// always-on per-stage firmware timing for I/O queues.
  [[nodiscard]] const nvme::StageStatsLog& stage_stats() const noexcept {
    return stage_log_;
  }

  /// Attaches the trace recorder; device-side stage events flow into it.
  void set_tracer(obs::TraceRecorder* tracer) noexcept { tracer_ = tracer; }

  /// Feeds I/O-queue stage intervals and the inline-chunk backlog gauge
  /// into the windowed sampler (pass nullptr to detach).
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
    if (telemetry_ != nullptr) telemetry_->set_backlog_gauge(&inline_backlog_);
  }

  /// Publishes the controller's counters into `metrics` as `ctrl.*`.
  void bind_metrics(obs::MetricsRegistry& metrics) const;

  /// Attaches the command-fault injector (pass nullptr to detach). With an
  /// injector attached the firmware also runs its recovery housekeeping
  /// (deferred-OOO TTL, reassembly TTL, delayed-completion release) at the
  /// top of every poll_once().
  void set_fault_injector(fault::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  // ---- QoS arbitration (Config::wrr_arbitration) ----

  /// Sets queue `qid`'s arbitration class: SWRR weight (>= 1) and the
  /// urgent flag. Survives CreateIoSq re-creation (keyed by qid, not by
  /// queue state). Call under the firmware mutex, like poll_once().
  void set_queue_arbitration(std::uint16_t qid, std::uint32_t weight,
                             bool urgent = false);

  /// Scheduling grants the poll loop has given queue `qid` (one per
  /// poll_once() that picked it; a grant may process a whole inline
  /// transaction). Counted in both arbitration modes — the WRR
  /// conformance tests measure long-run shares from these.
  [[nodiscard]] std::uint64_t grants(std::uint16_t qid) const noexcept {
    return qid < grants_.size() ? grants_[qid] : 0;
  }

 private:
  struct SqState {
    bool valid = false;
    std::uint64_t base = 0;
    std::uint32_t depth = 0;
    std::uint16_t cqid = 0;
    std::uint32_t head = 0;
  };
  struct CqState {
    bool valid = false;
    std::uint64_t base = 0;
    std::uint32_t depth = 0;
    std::uint32_t tail = 0;
    bool phase = true;
    std::uint32_t uncoalesced = 0;  // CQEs since the last interrupt
  };
  /// BandSlim per-stream assembly state.
  struct FragmentStream {
    nvme::SubmissionQueueEntry header{};
    std::uint16_t qid = 0;
    ByteVec buffer;
    std::uint32_t received = 0;
    std::uint32_t expected = 0;
  };
  /// An OOO inline command whose chunks have not all arrived yet.
  struct DeferredInline {
    nvme::SubmissionQueueEntry sqe{};
    std::uint16_t qid = 0;
    /// Sim-time after which the firmware stops waiting for chunks and
    /// posts a retryable error (0 = no deadline; set when an injector is
    /// attached).
    Nanoseconds deadline_ns = 0;
    /// Fault drawn for this command at fetch, applied when it completes.
    fault::FaultKind fault = fault::FaultKind::kNone;
    /// Sim-time the command entered the deferred list; the time until it
    /// leaves (reassembled or evicted) is reported to the TraceRecorder as
    /// the command's kReassembly wait (obs/attribution.h).
    Nanoseconds defer_start_ns = 0;
  };
  /// A completion the injector delayed; posted once sim-time passes
  /// release_ns (unless the host Aborts the command first).
  struct DelayedCompletion {
    std::uint16_t qid = 0;
    nvme::SubmissionQueueEntry sqe{};
    nvme::StatusField status{};
    std::uint32_t dw0 = 0;
    std::uint32_t dw1 = 0;
    Nanoseconds release_ns = 0;
  };
  /// ByteExpress-R: one queue's host-side inline-read completion ring, as
  /// advertised by the driver via kVendorReadRing. The cursor is the next
  /// slot the firmware will write; the driver's slot-reservation gate
  /// guarantees at most `slots` chunks are outstanding, so the firmware
  /// never overwrites a slot the host has not consumed.
  struct ReadRing {
    bool valid = false;
    std::uint64_t base = 0;
    std::uint32_t slots = 0;
    std::uint32_t cursor = 0;
  };
  /// A completion the injector dropped; remembered so a host Abort can
  /// confirm the command existed.
  struct LostCompletion {
    std::uint16_t qid = 0;
    std::uint16_t cid = 0;
  };

  /// Per-queue arbitration state, indexed by qid. Deliberately separate
  /// from SqState so a CreateIoSq re-creating a queue does not reset the
  /// tenant's configured class or its SWRR credit.
  struct QueueArb {
    std::uint32_t weight = 1;
    bool urgent = false;
    /// Smooth-WRR credit: each selection adds every backlogged
    /// candidate's weight to its credit, picks the max (tie -> lowest
    /// qid) and subtracts the candidates' weight sum from the winner —
    /// exact long-run proportional shares, deterministically.
    std::int64_t credit = 0;
  };

  [[nodiscard]] std::uint32_t available(std::uint16_t qid) const noexcept;

  /// WRR-mode queue selection: admin first, then urgent-class candidates
  /// up to the burst bound, SWRR within the chosen class. Returns -1
  /// when no queue is backlogged.
  [[nodiscard]] int pick_wrr();
  /// Serves one grant on `qid`: process_one + grant accounting + backlog
  /// gauge (the shared tail of both arbitration modes).
  void serve(std::uint16_t qid);

  /// DMA-fetches the SQ entry at the queue's head and advances the head.
  /// `chunk` selects the cheaper chunk-fetch firmware cost.
  nvme::SqSlot fetch_slot(std::uint16_t qid, bool chunk);

  void process_one(std::uint16_t qid);
  void handle_admin(const nvme::SubmissionQueueEntry& sqe);
  /// `sqe_slot` is the ring index the SQE was fetched from (trace events).
  void handle_io(std::uint16_t qid, const nvme::SubmissionQueueEntry& sqe,
                 std::uint32_t sqe_slot);
  void handle_ooo_chunk(const nvme::SqSlot& slot, std::uint16_t qid,
                        std::uint32_t ring_slot, Nanoseconds fetch_start);
  void handle_fragment(std::uint16_t qid,
                       const nvme::SubmissionQueueEntry& sqe);

  /// Runs the executor and sends the completion (including read-direction
  /// data return through the command's data pointer).
  void execute_and_complete(std::uint16_t qid,
                            const nvme::SubmissionQueueEntry& sqe,
                            ConstByteSpan payload);

  /// Gathers write-direction PRP/SGL data from host memory (charging DMA
  /// traffic); returns the payload bytes.
  StatusOr<ByteVec> gather_host_data(std::uint16_t qid,
                                     const nvme::SubmissionQueueEntry& sqe,
                                     std::uint64_t length);
  /// Returns read-direction data to the host through PRP/SGL.
  Status scatter_host_data(std::uint16_t qid,
                           const nvme::SubmissionQueueEntry& sqe,
                           ConstByteSpan data,
                           std::uint64_t declared_length);

  /// ByteExpress-R: true when this command's read payload should return
  /// inline through the queue's completion ring instead of PRP/SGL.
  [[nodiscard]] bool inline_read_eligible(
      std::uint16_t qid, const nvme::SubmissionQueueEntry& sqe,
      std::uint64_t data_len) const noexcept;
  /// Emits `data` as CRC-framed chunk MWr TLPs into the queue's completion
  /// ring and returns the CQE DW1 encoding (flag | first slot | chunks).
  std::uint32_t emit_inline_read(std::uint16_t qid,
                                 const nvme::SubmissionQueueEntry& sqe,
                                 ConstByteSpan data);

  /// Bytes a PRP data transaction moves for `length` payload bytes across
  /// `page_count` pages, honoring the configured transfer unit.
  [[nodiscard]] std::uint64_t prp_transfer_bytes(
      std::uint64_t length, std::size_t page_count) const noexcept;

  /// Diversion wrapper: consumes a pending completion fault (drop/delay)
  /// before delegating to post_completion_now.
  void post_completion(std::uint16_t qid,
                       const nvme::SubmissionQueueEntry& sqe,
                       nvme::StatusField status, std::uint32_t dw0,
                       std::uint32_t dw1 = 0);
  /// Builds and posts the CQE unconditionally (the original post path).
  void post_completion_now(std::uint16_t qid,
                           const nvme::SubmissionQueueEntry& sqe,
                           nvme::StatusField status, std::uint32_t dw0,
                           std::uint32_t dw1 = 0);

  /// Applies the fault drawn for a command at its completion point:
  /// kNone executes normally; corrupt/error kinds post the corresponding
  /// NVMe error status instead of executing; drop/delay kinds execute but
  /// divert the completion.
  void complete_with_fault(std::uint16_t qid,
                           const nvme::SubmissionQueueEntry& sqe,
                           ConstByteSpan payload, fault::FaultKind fault);

  /// Recovery housekeeping (runs when an injector is attached): releases
  /// due delayed completions, expires deferred OOO commands past their
  /// TTL, and reclaims stale reassembly slots. Returns true if any work
  /// was done.
  bool service_fault_recovery();

  /// Removes all firmware-side state of (sqid, cid) — lost or delayed
  /// completions and deferred OOO commands. Returns true when the command
  /// was found (Abort completion DW0 bit 0 clear).
  bool abort_command(std::uint16_t sqid, std::uint16_t cid);

  /// Accumulates a device-side stage interval into the 0xC1 stage log
  /// (I/O queues only) and forwards it to the tracer when enabled.
  void record_stage(const obs::TraceEvent& event);

  /// Executes any deferred OOO commands whose payloads completed.
  void drain_deferred();

  static std::uint64_t io_data_length(const nvme::SubmissionQueueEntry& sqe);
  static bool is_read_direction(nvme::IoOpcode opcode) noexcept;

  DmaMemory& memory_;
  pcie::PcieLink& link_;
  pcie::BarSpace& bar_;
  CommandExecutor& executor_;
  Config config_;

  std::vector<SqState> sqs_;
  std::vector<CqState> cqs_;
  std::uint16_t rr_cursor_ = 0;
  std::vector<QueueArb> arb_;
  std::vector<std::uint64_t> grants_;
  /// Consecutive urgent grants taken while a normal candidate waited.
  std::uint32_t urgent_run_ = 0;
  std::uint64_t namespace_blocks_ = 0;

  std::unordered_map<std::uint16_t, FragmentStream> streams_;
  std::unordered_map<std::uint8_t, std::uint32_t> features_;
  ReassemblyEngine reassembly_;
  std::vector<DeferredInline> deferred_;
  /// Per-qid inline-read completion rings (ByteExpress-R).
  std::vector<ReadRing> read_rings_;

  Nanoseconds last_fetch_cost_ns_ = 0;
  LatencyHistogram fetch_stage_hist_;
  // obs::Counter so bind_metrics() can expose the live counters without a
  // second source of truth; single-writer under the firmware mutex.
  obs::Counter commands_processed_;
  obs::Counter chunks_fetched_;
  obs::Counter bandslim_fragments_;
  obs::Counter prp_transactions_;
  obs::Counter sgl_transactions_;
  obs::Counter completions_posted_;
  obs::Counter ooo_reassembled_;
  obs::Counter completions_dropped_;
  obs::Counter completions_delayed_;
  obs::Counter deferred_evictions_;
  obs::Counter reassembly_evictions_;
  obs::Counter commands_aborted_;
  obs::Counter inline_read_completions_;
  obs::Counter inline_read_chunks_;

  nvme::StageStatsLog stage_log_;
  // Inline transfer work the firmware is still holding: open BandSlim
  // streams + deferred OOO commands + reassembly payloads in flight.
  // Updated by poll_once(); sampled by the telemetry windows.
  obs::Gauge inline_backlog_;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;

  fault::FaultInjector* injector_ = nullptr;
  std::vector<DelayedCompletion> delayed_;
  std::vector<LostCompletion> lost_;
  /// Payload ids whose next arriving OOO chunk gets one byte flipped
  /// (kChunkCorrupt drawn while the payload was still incomplete).
  std::unordered_set<std::uint32_t> corrupt_payloads_;
  /// Completion fault pending for the command currently completing; the
  /// post_completion wrapper consumes it.
  fault::FaultKind completion_fault_ = fault::FaultKind::kNone;
  /// kChunkCorrupt drawn for an inline-read command: the next
  /// emit_inline_read flips one payload byte after the CRC is computed,
  /// so the host-side CRC check must catch it.
  bool corrupt_next_read_chunk_ = false;
};

}  // namespace bx::controller
