// Identifier-based out-of-order chunk reassembly — the §3.3.2 future-work
// mechanism, implemented.
//
// When chunk fetching is not confined to a single SQ (multi-queue striping),
// chunks arrive in arbitrary order. Each chunk is self-describing
// (payload ID, chunk number, total count, CRC — see nvme/inline_wire.h), so
// the engine can place data directly at the right offset in its device-DRAM
// staging area. Matching the paper's SRAM-budget argument, the per-payload
// tracking state is only the ID, counters and a receive *bitmap*; the number
// of simultaneously tracked payloads is bounded (`slots`), and arrivals
// beyond that are rejected with a retryable error.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "nvme/inline_read_wire.h"
#include "nvme/inline_wire.h"

namespace bx::controller {

class ReassemblyEngine {
 public:
  struct Config {
    /// Maximum payloads tracked at once (SRAM budget).
    std::uint32_t slots = 64;
    /// Maximum chunks per payload the bitmap covers.
    std::uint32_t max_chunks = 1024;
    /// Sim-time a slot may sit without a new chunk before evict_expired()
    /// reclaims it. Must stay below the driver's command timeout so the
    /// device gives up (and frees the slot) before the host aborts. A
    /// value of 0 disables TTL eviction.
    Nanoseconds ttl_ns = 1'000'000;  // 1 ms
  };

  explicit ReassemblyEngine(Config config);

  /// Accepts one chunk. Returns kResourceExhausted when all slots are busy
  /// with other payloads, kDataLoss on CRC mismatch, kInvalidArgument on a
  /// malformed header, kAlreadyExists for a duplicate chunk (idempotently
  /// ignored — duplicates can occur after retries). `now` stamps the slot
  /// for TTL eviction; callers without a clock may pass 0.
  Status accept(const nvme::inline_chunk::OooChunkHeader& header,
                ConstByteSpan data, Nanoseconds now = 0);

  /// Reclaims every slot whose last chunk arrived more than ttl_ns before
  /// `now` — the fix for the slot leak where one lost chunk pinned a slot
  /// forever. Complete-but-untaken payloads expire too (their command was
  /// itself lost or aborted). Returns the evicted payload ids so the
  /// caller can fail any commands still waiting on them.
  std::vector<std::uint32_t> evict_expired(Nanoseconds now);

  /// True once every chunk of `payload_id` has arrived.
  [[nodiscard]] bool complete(std::uint32_t payload_id) const noexcept;

  /// Removes the payload and returns its first `length` bytes. Fails if the
  /// payload is unknown or incomplete.
  StatusOr<ByteVec> take(std::uint32_t payload_id, std::uint64_t length);

  /// Drops a payload's state (command aborted).
  void drop(std::uint32_t payload_id) noexcept;

  [[nodiscard]] std::uint32_t in_flight() const noexcept;

  /// Approximate SRAM bytes used by tracking state (not the DRAM staging):
  /// the quantity §3.3.2 argues stays small.
  [[nodiscard]] std::size_t tracking_sram_bytes() const noexcept;

 private:
  struct Slot {
    bool in_use = false;
    std::uint32_t payload_id = 0;
    std::uint16_t total_chunks = 0;
    std::uint16_t received = 0;
    Nanoseconds last_update_ns = 0;     // sim-time of the newest chunk
    std::vector<std::uint64_t> bitmap;  // 1 bit per chunk
    ByteVec staging;                    // device DRAM, not SRAM
  };

  Slot* find(std::uint32_t payload_id) noexcept;
  const Slot* find(std::uint32_t payload_id) const noexcept;
  Slot* acquire(std::uint32_t payload_id,
                std::uint16_t total_chunks) noexcept;

  Config config_;
  std::vector<Slot> slots_;
};

/// Driver-side counterpart of ReassemblyEngine for ByteExpress-R inline
/// read completions: validates and reassembles the chunk sequence the
/// controller wrote into one queue's host completion ring for a single
/// command. One instance covers one command (the ring is per-queue and
/// the CQE names the slot range, so no cross-command multiplexing is
/// needed); the bitmap still guards against duplicates and the header
/// checks catch every framing violation a stale or misdirected slot can
/// produce — including the CQE-arriving-before-the-last-chunk case, where
/// the slot still holds an old magic/cid/chunk_no.
class ReadReassembler {
 public:
  ReadReassembler(std::uint16_t qid, std::uint16_t cid,
                  std::uint32_t declared_length);

  /// Validates one ring slot and places its data. Returns
  /// kInvalidArgument on any framing violation (bad magic, wrong
  /// qid/cid, inconsistent totals, bad lengths), kDataLoss on CRC
  /// mismatch, kAlreadyExists for a duplicate chunk number.
  Status accept(const nvme::SqSlot& slot);

  [[nodiscard]] bool complete() const noexcept {
    return received_ == total_chunks_;
  }
  [[nodiscard]] std::uint16_t total_chunks() const noexcept {
    return total_chunks_;
  }
  [[nodiscard]] std::uint16_t received() const noexcept { return received_; }

  /// Returns the reassembled payload (exactly declared_length bytes).
  /// Fails with kFailedPrecondition while chunks are missing.
  StatusOr<ByteVec> take();

 private:
  std::uint16_t qid_ = 0;
  std::uint16_t cid_ = 0;
  std::uint32_t declared_length_ = 0;
  std::uint16_t total_chunks_ = 0;
  std::uint16_t received_ = 0;
  std::vector<std::uint64_t> bitmap_;
  ByteVec staging_;
};

}  // namespace bx::controller
