// Identifier-based out-of-order chunk reassembly — the §3.3.2 future-work
// mechanism, implemented.
//
// When chunk fetching is not confined to a single SQ (multi-queue striping),
// chunks arrive in arbitrary order. Each chunk is self-describing
// (payload ID, chunk number, total count, CRC — see nvme/inline_wire.h), so
// the engine can place data directly at the right offset in its device-DRAM
// staging area. Matching the paper's SRAM-budget argument, the per-payload
// tracking state is only the ID, counters and a receive *bitmap*; the number
// of simultaneously tracked payloads is bounded (`slots`), and arrivals
// beyond that are rejected with a retryable error.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "nvme/inline_wire.h"

namespace bx::controller {

class ReassemblyEngine {
 public:
  struct Config {
    /// Maximum payloads tracked at once (SRAM budget).
    std::uint32_t slots = 64;
    /// Maximum chunks per payload the bitmap covers.
    std::uint32_t max_chunks = 1024;
  };

  explicit ReassemblyEngine(Config config);

  /// Accepts one chunk. Returns kResourceExhausted when all slots are busy
  /// with other payloads, kDataLoss on CRC mismatch, kInvalidArgument on a
  /// malformed header, kAlreadyExists for a duplicate chunk (idempotently
  /// ignored — duplicates can occur after retries).
  Status accept(const nvme::inline_chunk::OooChunkHeader& header,
                ConstByteSpan data);

  /// True once every chunk of `payload_id` has arrived.
  [[nodiscard]] bool complete(std::uint32_t payload_id) const noexcept;

  /// Removes the payload and returns its first `length` bytes. Fails if the
  /// payload is unknown or incomplete.
  StatusOr<ByteVec> take(std::uint32_t payload_id, std::uint64_t length);

  /// Drops a payload's state (command aborted).
  void drop(std::uint32_t payload_id) noexcept;

  [[nodiscard]] std::uint32_t in_flight() const noexcept;

  /// Approximate SRAM bytes used by tracking state (not the DRAM staging):
  /// the quantity §3.3.2 argues stays small.
  [[nodiscard]] std::size_t tracking_sram_bytes() const noexcept;

 private:
  struct Slot {
    bool in_use = false;
    std::uint32_t payload_id = 0;
    std::uint16_t total_chunks = 0;
    std::uint16_t received = 0;
    std::vector<std::uint64_t> bitmap;  // 1 bit per chunk
    ByteVec staging;                    // device DRAM, not SRAM
  };

  Slot* find(std::uint32_t payload_id) noexcept;
  const Slot* find(std::uint32_t payload_id) const noexcept;
  Slot* acquire(std::uint32_t payload_id,
                std::uint16_t total_chunks) noexcept;

  Config config_;
  std::vector<Slot> slots_;
};

}  // namespace bx::controller
