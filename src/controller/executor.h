// The boundary between transport and semantics.
//
// The controller (fetch engine, DMA engine, CQE posting) is pure transport:
// it materializes each command's host->device payload — whether it arrived
// via PRP pages, an SGL descriptor, inline SQ chunks, or BandSlim fragments
// — and hands the command plus payload to a CommandExecutor. The SSD model
// (FTL + NAND + KV + CSD engines) implements this interface; tests plug in
// scripted executors.
#pragma once

#include "common/bytes.h"
#include "nvme/spec.h"

namespace bx::controller {

struct ExecResult {
  nvme::StatusField status{};
  /// Command-specific CQE DW0 (e.g. bytes returned, match count).
  std::uint32_t dw0 = 0;
  /// Device->host data for read-direction commands; the controller DMAs it
  /// back through the command's data pointer.
  ByteVec read_data;

  static ExecResult success(std::uint32_t dw0 = 0) {
    ExecResult r;
    r.dw0 = dw0;
    return r;
  }
  static ExecResult error(nvme::StatusField status) {
    ExecResult r;
    r.status = status;
    return r;
  }
};

class CommandExecutor {
 public:
  virtual ~CommandExecutor() = default;

  /// Executes one I/O command. `payload` is the fully assembled
  /// host->device data (empty for data-less and read-direction commands).
  /// Implementations advance the shared SimClock for their internal costs
  /// (NAND operations, device CPU work).
  virtual ExecResult execute(const nvme::SubmissionQueueEntry& sqe,
                             ConstByteSpan payload) = 0;
};

}  // namespace bx::controller
