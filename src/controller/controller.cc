#include "controller/controller.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "nvme/bandslim_wire.h"
#include "nvme/inline_read_wire.h"
#include "nvme/inline_wire.h"
#include "nvme/prp.h"
#include "nvme/sgl.h"

namespace bx::controller {

namespace inw = nvme::inline_chunk;
namespace inr = nvme::inline_read;
namespace bsw = nvme::bandslim;
using nvme::SubmissionQueueEntry;
using pcie::Direction;
using pcie::TrafficClass;

namespace {
constexpr std::uint64_t kDevicePage = 4096;
}  // namespace

std::uint64_t Controller::prp_transfer_bytes(
    std::uint64_t length, std::size_t page_count) const noexcept {
  const std::uint32_t unit = config_.prp_transfer_unit;
  // Unit-aligned, but never more than the whole-page transfer the walk
  // covers (nor less than the payload itself).
  const std::uint64_t aligned = align_up(length, unit);
  return std::min<std::uint64_t>(aligned, page_count * kDevicePage);
}

Controller::Controller(DmaMemory& memory, pcie::PcieLink& link,
                       pcie::BarSpace& bar, CommandExecutor& executor,
                       Config config)
    : memory_(memory),
      link_(link),
      bar_(bar),
      executor_(executor),
      config_(config),
      sqs_(config.max_queues),
      cqs_(config.max_queues),
      arb_(config.max_queues),
      grants_(config.max_queues, 0),
      reassembly_(config.reassembly),
      read_rings_(config.max_queues) {
  BX_ASSERT(config.max_queues >= 2);
  BX_ASSERT(config.max_queues <= bar.max_queues());
  BX_ASSERT(config.chunk_fetch_batch >= 1);
  BX_ASSERT_MSG(config.prp_transfer_unit >= 64 &&
                    kDevicePage % config.prp_transfer_unit == 0,
                "PRP transfer unit must be 64..4096 and divide 4096");
  BX_ASSERT(config.interrupt_coalescing >= 1);
}

void Controller::set_admin_queue(std::uint64_t sq_addr,
                                 std::uint32_t sq_depth,
                                 std::uint64_t cq_addr,
                                 std::uint32_t cq_depth) {
  sqs_[0] = SqState{true, sq_addr, sq_depth, /*cqid=*/0, /*head=*/0};
  cqs_[0] = CqState{true, cq_addr, cq_depth, /*tail=*/0, /*phase=*/true};
}

std::uint32_t Controller::available(std::uint16_t qid) const noexcept {
  const SqState& sq = sqs_[qid];
  if (!sq.valid) return 0;
  const std::uint32_t tail = bar_.sq_tail(qid);
  return (tail + sq.depth - sq.head) % sq.depth;
}

nvme::SqSlot Controller::fetch_slot(std::uint16_t qid, bool chunk) {
  SqState& sq = sqs_[qid];
  BX_ASSERT(sq.valid);
  // 64-byte DMA fetch from the SQ head (data travels host->device).
  link_.read(Direction::kDownstream, TrafficClass::kCommandFetch,
             nvme::kSqeSize);
  link_.clock().advance(chunk ? config_.timing.chunk_fetch_fw_ns
                              : config_.timing.cmd_fetch_fw_ns);
  nvme::SqSlot slot;
  memory_.read(sq.base + std::uint64_t{sq.head} * nvme::kSqeSize,
               {slot.raw, sizeof(slot.raw)});
  sq.head = (sq.head + 1) % sq.depth;
  return slot;
}

void Controller::set_queue_arbitration(std::uint16_t qid,
                                       std::uint32_t weight, bool urgent) {
  BX_ASSERT_MSG(qid < arb_.size(), "bad qid");
  BX_ASSERT_MSG(weight >= 1, "WRR weight must be >= 1");
  arb_[qid].weight = weight;
  arb_[qid].urgent = urgent;
}

void Controller::serve(std::uint16_t qid) {
  process_one(qid);
  ++grants_[qid];
  inline_backlog_.set(static_cast<std::int64_t>(
      streams_.size() + deferred_.size() + reassembly_.in_flight()));
}

int Controller::pick_wrr() {
  // The admin queue is latency-critical control plane (Abort during
  // fault recovery, queue management) and its traffic is sparse — it
  // bypasses arbitration entirely.
  if (available(0) > 0) return 0;

  const std::uint16_t n = config_.max_queues;
  bool any_urgent = false;
  bool any_normal = false;
  for (std::uint16_t qid = 1; qid < n; ++qid) {
    if (available(qid) == 0) continue;
    (arb_[qid].urgent ? any_urgent : any_normal) = true;
  }
  if (!any_urgent && !any_normal) return -1;

  // Urgent class preempts normal, but only urgent_burst_limit times in a
  // row while a normal queue is actually waiting — then one normal grant
  // is forced (the starvation bound tenant_isolation_test asserts).
  bool pick_urgent = any_urgent;
  if (any_urgent && any_normal) {
    if (urgent_run_ >= config_.urgent_burst_limit) {
      pick_urgent = false;
      urgent_run_ = 0;
    } else {
      ++urgent_run_;
    }
  } else if (any_normal) {
    urgent_run_ = 0;
  }

  // Smooth WRR within the chosen class: every candidate earns its weight,
  // the highest credit wins (tie -> lowest qid), the winner pays the
  // round's total. Long-run grant shares converge to the weight ratios
  // with bounded deviation, with a deterministic schedule.
  std::int64_t total = 0;
  int winner = -1;
  for (std::uint16_t qid = 1; qid < n; ++qid) {
    if (available(qid) == 0 || arb_[qid].urgent != pick_urgent) continue;
    arb_[qid].credit += arb_[qid].weight;
    total += arb_[qid].weight;
    if (winner < 0 || arb_[qid].credit > arb_[winner].credit) winner = qid;
  }
  BX_ASSERT(winner >= 0);
  arb_[winner].credit -= total;
  return winner;
}

bool Controller::poll_once() {
  // Recovery housekeeping runs only under fault injection: without an
  // injector no chunk is ever lost and no completion diverted, so the
  // healthy fast path (and its golden traces) stays byte-identical.
  const bool recovered = injector_ != nullptr && service_fault_recovery();

  if (config_.wrr_arbitration) {
    const int pick = pick_wrr();
    if (pick < 0) return recovered;
    serve(static_cast<std::uint16_t>(pick));
    return true;
  }

  const std::uint16_t n = config_.max_queues;
  for (std::uint16_t i = 0; i < n; ++i) {
    const auto qid = static_cast<std::uint16_t>((rr_cursor_ + i) % n);
    if (available(qid) > 0) {
      // Round-robin arbitration continues at the next queue. (During a
      // ByteExpress transaction process_one() itself stays queue-local.)
      rr_cursor_ = static_cast<std::uint16_t>((qid + 1) % n);
      serve(qid);
      return true;
    }
  }
  return recovered;
}

bool Controller::service_fault_recovery() {
  bool progress = false;
  const Nanoseconds now = link_.clock().now();

  for (std::size_t i = 0; i < delayed_.size();) {
    if (delayed_[i].release_ns <= now) {
      const DelayedCompletion d = delayed_[i];
      delayed_.erase(delayed_.begin() + static_cast<std::ptrdiff_t>(i));
      post_completion_now(d.qid, d.sqe, d.status, d.dw0, d.dw1);
      progress = true;
    } else {
      ++i;
    }
  }

  for (std::size_t i = 0; i < deferred_.size();) {
    if (deferred_[i].deadline_ns != 0 && now > deferred_[i].deadline_ns) {
      const DeferredInline item = deferred_[i];
      deferred_.erase(deferred_.begin() + static_cast<std::ptrdiff_t>(i));
      const std::uint32_t payload_id = inw::sqe_ooo_payload_id(item.sqe);
      reassembly_.drop(payload_id);
      corrupt_payloads_.erase(payload_id);
      deferred_evictions_.increment();
      commands_processed_.increment();
      if (tracer_ != nullptr && tracer_->enabled() &&
          now > item.defer_start_ns) {
        tracer_->note_command_wait(
            item.qid, item.sqe.cid,
            static_cast<std::uint64_t>(now - item.defer_start_ns));
      }
      // Retryable: the host re-sends the command and all of its chunks.
      post_completion(
          item.qid, item.sqe,
          nvme::StatusField::generic(nvme::GenericStatus::kDataTransferError),
          0);
      progress = true;
    } else {
      ++i;
    }
  }

  for (const std::uint32_t payload_id : reassembly_.evict_expired(now)) {
    corrupt_payloads_.erase(payload_id);
    reassembly_evictions_.increment();
    progress = true;
  }
  return progress;
}

void Controller::run_until_idle() {
  while (poll_once()) {
  }
}

void Controller::process_one(std::uint16_t qid) {
  const Nanoseconds fetch_start = link_.clock().now();
  const std::uint32_t sqe_slot = sqs_[qid].head;
  const nvme::SqSlot slot = fetch_slot(qid, /*chunk=*/false);

  if (qid != 0 && inw::is_ooo_chunk(slot)) {
    handle_ooo_chunk(slot, qid, sqe_slot, fetch_start);
    drain_deferred();
    return;
  }

  SubmissionQueueEntry sqe;
  std::memcpy(&sqe, slot.raw, sizeof(sqe));

  if (qid == 0) {
    obs::TraceEvent fetch;
    fetch.stage = obs::TraceStage::kSqeFetch;
    fetch.start = fetch_start;
    fetch.end = link_.clock().now();
    fetch.qid = qid;
    fetch.cid = sqe.cid;
    fetch.slot = sqe_slot;
    record_stage(fetch);
    handle_admin(sqe);
    commands_processed_.increment();
    return;
  }

  // Record the fetch stage for commands with no inline payload here; the
  // inline path extends the stage with its chunk fetches in handle_io().
  last_fetch_cost_ns_ = link_.clock().now() - fetch_start;

  if (sqe.io_opcode() == nvme::IoOpcode::kVendorBandSlimFragment) {
    obs::TraceEvent fetch;
    fetch.stage = obs::TraceStage::kSqeFetch;
    fetch.flags = obs::kFlagAuxCommand;
    fetch.start = fetch_start;
    fetch.end = link_.clock().now();
    fetch.qid = qid;
    fetch.cid = sqe.cid;
    fetch.slot = sqe_slot;
    record_stage(fetch);
    handle_fragment(qid, sqe);
    return;
  }

  if (bsw::is_fragmented_header(sqe)) {
    obs::TraceEvent fetch;
    fetch.stage = obs::TraceStage::kSqeFetch;
    fetch.start = fetch_start;
    fetch.end = link_.clock().now();
    fetch.qid = qid;
    fetch.cid = sqe.cid;
    fetch.slot = sqe_slot;
    record_stage(fetch);
    FragmentStream stream;
    stream.header = sqe;
    stream.qid = qid;
    stream.expected =
        static_cast<std::uint32_t>(io_data_length(sqe));
    stream.buffer.assign(stream.expected, 0);
    const ConstByteSpan embedded = bsw::header_embedded_payload(sqe);
    if (embedded.size() > stream.expected) {
      post_completion(qid, sqe,
                      nvme::StatusField::vendor(
                          nvme::VendorStatus::kFragmentProtocolError),
                      0);
      return;
    }
    std::memcpy(stream.buffer.data(), embedded.data(), embedded.size());
    stream.received = static_cast<std::uint32_t>(embedded.size());
    fetch_stage_hist_.record(last_fetch_cost_ns_);
    if (stream.received == stream.expected) {
      // Single-command case (sub-24 B payload): no reassembly state is
      // created, so no fragment-processing cost applies — this is what
      // keeps BandSlim competitive for tiny payloads (§3.2/§4.3).
      commands_processed_.increment();
      const fault::FaultKind fault =
          injector_ != nullptr
              ? injector_->next_command_fault(/*inline_command=*/true, qid)
              : fault::FaultKind::kNone;
      complete_with_fault(qid, sqe, stream.buffer, fault);
    } else {
      const Nanoseconds setup_start = link_.clock().now();
      link_.clock().advance(config_.timing.bandslim_fragment_fw_ns);
      obs::TraceEvent setup;
      setup.stage = obs::TraceStage::kExec;
      setup.flags = obs::kFlagAuxCommand;
      setup.start = setup_start;
      setup.end = link_.clock().now();
      setup.qid = qid;
      setup.cid = sqe.cid;
      record_stage(setup);
      const std::uint16_t stream_id = bsw::header_stream_id(sqe);
      streams_[stream_id] = std::move(stream);
    }
    return;
  }

  handle_io(qid, sqe, sqe_slot);
}

void Controller::handle_io(std::uint16_t qid,
                           const SubmissionQueueEntry& sqe,
                           std::uint32_t sqe_slot) {
  const Nanoseconds fetch_start = link_.clock().now() - last_fetch_cost_ns_;
  const std::uint64_t length = io_data_length(sqe);
  const std::uint32_t inline_len = sqe.inline_length();
  const bool sqe_ooo = inline_len > 0 && inw::sqe_is_ooo(sqe);

  {
    // The aux field announces the queue-local chunk fetches that will
    // follow, mirroring exactly the conditions guarding the chunk loop
    // below — the invariant checker's adjacency machine keys off it.
    std::uint32_t announced = 0;
    if (inline_len > 0 && config_.byteexpress_enabled &&
        inline_len == length && !sqe_ooo) {
      const std::uint32_t chunks = inw::raw_chunks_for(inline_len);
      if (available(qid) >= chunks) announced = chunks;
    }
    obs::TraceEvent fetch;
    fetch.stage = obs::TraceStage::kSqeFetch;
    if (sqe_ooo) fetch.flags = obs::kFlagOooCommand;
    fetch.start = fetch_start;
    fetch.end = link_.clock().now();
    fetch.qid = qid;
    fetch.cid = sqe.cid;
    fetch.slot = sqe_slot;
    fetch.aux = announced;
    fetch.bytes = inline_len;
    record_stage(fetch);
  }

  if (inline_len > 0) {
    if (!config_.byteexpress_enabled) {
      post_completion(
          qid, sqe,
          nvme::StatusField::generic(nvme::GenericStatus::kInvalidField), 0);
      commands_processed_.increment();
      return;
    }
    if (inline_len != length) {
      post_completion(qid, sqe,
                      nvme::StatusField::vendor(
                          nvme::VendorStatus::kInlineLengthMismatch),
                      0);
      commands_processed_.increment();
      return;
    }

    if (sqe_ooo) {
      if (!config_.enable_ooo_reassembly) {
        post_completion(
            qid, sqe,
            nvme::StatusField::generic(nvme::GenericStatus::kInvalidField),
            0);
        commands_processed_.increment();
        return;
      }
      const std::uint32_t payload_id = inw::sqe_ooo_payload_id(sqe);
      fetch_stage_hist_.record(last_fetch_cost_ns_);
      fault::FaultKind fault =
          injector_ != nullptr
              ? injector_->next_command_fault(/*inline_command=*/true, qid)
              : fault::FaultKind::kNone;
      if (reassembly_.complete(payload_id)) {
        auto payload = reassembly_.take(payload_id, inline_len);
        commands_processed_.increment();
        if (payload.is_ok()) ooo_reassembled_.increment();
        if (!payload.is_ok()) {
          post_completion(qid, sqe,
                          nvme::StatusField::vendor(
                              nvme::VendorStatus::kInlineLengthMismatch),
                          0);
          return;
        }
        // A kChunkCorrupt drawn after every chunk already passed its CRC
        // degenerates to the Data Transfer Error it would have caused.
        complete_with_fault(qid, sqe, *payload, fault);
      } else {
        if (fault == fault::FaultKind::kChunkCorrupt) {
          // Apply the corruption physically: the next chunk of this
          // payload gets a byte flipped, fails its CRC, and the deferred
          // command later times out into a retryable error.
          corrupt_payloads_.insert(payload_id);
          fault = fault::FaultKind::kNone;
        }
        const Nanoseconds deadline =
            injector_ != nullptr && config_.deferred_ttl_ns > 0
                ? link_.clock().now() + config_.deferred_ttl_ns
                : 0;
        deferred_.push_back(
            DeferredInline{sqe, qid, deadline, fault, link_.clock().now()});
      }
      return;
    }

    // Queue-local inline transfer (§3.3): the chunks MUST already sit in
    // this same SQ right behind the command — the host wrote them before
    // ringing the doorbell. Fetch them from this queue only.
    const std::uint32_t chunks = inw::raw_chunks_for(inline_len);
    if (available(qid) < chunks) {
      // The doorbell covered the command but not its chunks: host-side
      // protocol violation. Do not consume foreign entries.
      post_completion(qid, sqe,
                      nvme::StatusField::vendor(
                          nvme::VendorStatus::kInlineLengthMismatch),
                      0);
      commands_processed_.increment();
      return;
    }
    ByteVec payload(inline_len);
    std::uint64_t offset = 0;
    std::uint32_t fetched = 0;
    while (fetched < chunks) {
      const std::uint32_t batch =
          std::min(config_.chunk_fetch_batch, chunks - fetched);
      const Nanoseconds batch_start = link_.clock().now();
      // One DMA read covers `batch` consecutive SQ entries; firmware cost
      // is charged once per DMA operation.
      if (batch > 1) {
        // fetch_slot charges a single entry; emulate the batched DMA by
        // charging the extra wire bytes here and reading the extra slots.
        link_.read(Direction::kDownstream, TrafficClass::kCommandFetch,
                   std::uint64_t{batch - 1} * nvme::kSqeSize);
      }
      for (std::uint32_t i = 0; i < batch; ++i) {
        const Nanoseconds chunk_start =
            i == 0 ? batch_start : link_.clock().now();
        const std::uint32_t chunk_slot = sqs_[qid].head;
        nvme::SqSlot slot;
        if (i == 0) {
          slot = fetch_slot(qid, /*chunk=*/true);
        } else {
          SqState& sq = sqs_[qid];
          memory_.read(sq.base + std::uint64_t{sq.head} * nvme::kSqeSize,
                       {slot.raw, sizeof(slot.raw)});
          sq.head = (sq.head + 1) % sq.depth;
        }
        const std::uint64_t take =
            std::min<std::uint64_t>(inw::kRawChunkCapacity,
                                    inline_len - offset);
        link_.clock().advance(config_.timing.chunk_copy_ns);
        std::memcpy(payload.data() + offset, slot.raw,
                    static_cast<std::size_t>(take));
        offset += take;
        chunks_fetched_.increment();
        obs::TraceEvent chunk_event;
        chunk_event.stage = obs::TraceStage::kChunkFetch;
        chunk_event.start = chunk_start;
        chunk_event.end = link_.clock().now();
        chunk_event.qid = qid;
        chunk_event.cid = sqe.cid;
        chunk_event.slot = chunk_slot;
        chunk_event.aux = fetched + i;
        chunk_event.bytes = take;
        record_stage(chunk_event);
      }
      fetched += batch;
    }
    last_fetch_cost_ns_ = link_.clock().now() - fetch_start;
    fetch_stage_hist_.record(last_fetch_cost_ns_);
    commands_processed_.increment();
    // Drawn only after the chunk slots were consumed from the ring — a
    // faulted command must not desynchronize the queue-local protocol.
    const fault::FaultKind fault =
        injector_ != nullptr
            ? injector_->next_command_fault(/*inline_command=*/true, qid)
            : fault::FaultKind::kNone;
    complete_with_fault(qid, sqe, payload, fault);
    return;
  }

  fetch_stage_hist_.record(last_fetch_cost_ns_);
  commands_processed_.increment();

  // Native data path.
  ByteVec payload;
  if (length > 0 && !is_read_direction(sqe.io_opcode())) {
    auto gathered = gather_host_data(qid, sqe, length);
    if (!gathered.is_ok()) {
      post_completion(
          qid, sqe,
          nvme::StatusField::generic(nvme::GenericStatus::kDataTransferError),
          0);
      return;
    }
    payload = std::move(gathered).value();
  }
  // Drawn only for commands that reached their completion point, so every
  // counted fault costs the host exactly one failed attempt. A command
  // returning its payload over the inline-read ring counts as inline for
  // `inline_only` fault policies — the ring is the byte-granular path
  // those policies target.
  const bool inline_path = config_.enable_inline_read &&
                           inr::sqe_wants_inline_read(sqe) &&
                           read_rings_[qid].valid;
  const fault::FaultKind fault =
      injector_ != nullptr
          ? injector_->next_command_fault(inline_path, qid)
          : fault::FaultKind::kNone;
  complete_with_fault(qid, sqe, payload, fault);
}

void Controller::handle_ooo_chunk(const nvme::SqSlot& slot, std::uint16_t qid,
                                  std::uint32_t ring_slot,
                                  Nanoseconds fetch_start) {
  const auto header = inw::decode_ooo_header(slot);
  link_.clock().advance(config_.timing.reassembly_track_ns);
  ConstByteSpan data = inw::ooo_chunk_data(slot, header);
  ByteVec corrupted;
  if (injector_ != nullptr &&
      corrupt_payloads_.erase(header.payload_id) > 0) {
    // Injected kChunkCorrupt: flip one byte so the CRC32-C check rejects
    // the chunk; the payload stays incomplete until its TTL fires.
    corrupted.assign(data.begin(), data.end());
    if (!corrupted.empty()) corrupted[0] ^= 0xff;
    data = corrupted;
  }
  const Status status =
      reassembly_.accept(header, data, link_.clock().now());
  if (!status.is_ok() && status.code() != StatusCode::kAlreadyExists) {
    BX_LOG_WARN << "OOO chunk rejected: " << status.to_string();
  }
  chunks_fetched_.increment();
  obs::TraceEvent e;
  e.stage = obs::TraceStage::kChunkFetch;
  e.flags = obs::kFlagOooChunk;
  e.start = fetch_start;
  e.end = link_.clock().now();
  e.qid = qid;
  e.slot = ring_slot;
  e.aux = header.chunk_no;
  e.bytes = header.data_len;
  record_stage(e);
}

void Controller::handle_fragment(std::uint16_t qid,
                                 const SubmissionQueueEntry& sqe) {
  const bsw::Fragment fragment = bsw::decode_fragment(sqe);
  const Nanoseconds frag_start = link_.clock().now();
  link_.clock().advance(config_.timing.bandslim_fragment_fw_ns);
  bandslim_fragments_.increment();
  {
    obs::TraceEvent e;
    e.stage = obs::TraceStage::kExec;
    e.flags = obs::kFlagAuxCommand;
    e.start = frag_start;
    e.end = link_.clock().now();
    e.qid = qid;
    e.cid = sqe.cid;
    e.aux = fragment.index;
    e.bytes = fragment.length;
    record_stage(e);
  }

  auto it = streams_.find(fragment.stream_id);
  if (it == streams_.end()) {
    BX_LOG_WARN << "BandSlim fragment for unknown stream "
                << fragment.stream_id;
    return;
  }
  FragmentStream& stream = it->second;
  const ConstByteSpan data = bsw::fragment_payload(sqe, fragment);
  if (std::uint64_t{fragment.offset} + data.size() > stream.buffer.size()) {
    post_completion(stream.qid, stream.header,
                    nvme::StatusField::vendor(
                        nvme::VendorStatus::kFragmentProtocolError),
                    0);
    streams_.erase(it);
    return;
  }
  std::memcpy(stream.buffer.data() + fragment.offset, data.data(),
              data.size());
  stream.received += static_cast<std::uint32_t>(data.size());

  if (fragment.last) {
    if (stream.received != stream.expected) {
      post_completion(stream.qid, stream.header,
                      nvme::StatusField::vendor(
                          nvme::VendorStatus::kFragmentProtocolError),
                      0);
    } else {
      commands_processed_.increment();
      const fault::FaultKind fault =
          injector_ != nullptr
              ? injector_->next_command_fault(/*inline_command=*/true,
                                              stream.qid)
              : fault::FaultKind::kNone;
      complete_with_fault(stream.qid, stream.header, stream.buffer, fault);
    }
    streams_.erase(it);
  }
  (void)qid;
}

StatusOr<ByteVec> Controller::gather_host_data(
    std::uint16_t qid, const SubmissionQueueEntry& sqe,
    std::uint64_t length) {
  const Nanoseconds dma_start = link_.clock().now();
  const auto record_dma = [&](obs::TraceStage stage) {
    obs::TraceEvent e;
    e.stage = stage;
    e.start = dma_start;
    e.end = link_.clock().now();
    e.qid = qid;
    e.cid = sqe.cid;
    e.aux = 0;  // gather
    e.bytes = length;
    record_stage(e);
  };
  if (sqe.transfer_mode() == nvme::DataTransferMode::kSglData) {
    const auto descriptor = nvme::SglDescriptor::unpack(sqe.dptr1, sqe.dptr2);
    if (descriptor.type != nvme::SglDescriptorType::kDataBlock) {
      return invalid_argument("unsupported SGL descriptor type for write");
    }
    if (descriptor.length < length) {
      return invalid_argument("SGL descriptor shorter than data length");
    }
    link_.clock().advance(config_.timing.sgl_dma_setup_ns);
    sgl_transactions_.increment();
    // Fine-grained DMA: exactly the payload crosses the link (§5).
    link_.read(Direction::kDownstream, TrafficClass::kDataSgl, length);
    ByteVec payload(static_cast<std::size_t>(length));
    memory_.read(descriptor.address, payload);
    record_dma(obs::TraceStage::kSglDma);
    return payload;
  }

  // PRP: page-granular transfer.
  link_.clock().advance(config_.timing.prp_dma_setup_ns);
  prp_transactions_.increment();
  auto pages = nvme::PrpWalker::data_pages(
      sqe.dptr1, sqe.dptr2, length,
      [this](std::uint64_t list_addr, std::size_t entries) {
        // PRP list entries are themselves DMA-fetched, 64 B aligned.
        link_.read(Direction::kDownstream, TrafficClass::kPrpList,
                   align_up(entries * sizeof(std::uint64_t), 64));
        return nvme::read_prp_list_page(memory_, list_addr, entries);
      });
  BX_RETURN_IF_ERROR(pages.status());

  // The platform moves whole transfer units over PCIe regardless of the
  // payload size — at the default 4 KB unit this is the amplification of
  // Figures 1(b)/(c); §5's finer-grained configurations shrink the unit.
  link_.read(Direction::kDownstream, TrafficClass::kDataPrp,
             prp_transfer_bytes(length, pages->size()));
  record_dma(obs::TraceStage::kPrpDma);

  ByteVec payload(static_cast<std::size_t>(length));
  std::uint64_t copied = 0;
  for (std::size_t i = 0; i < pages->size() && copied < length; ++i) {
    const std::uint64_t addr = (*pages)[i];
    const std::uint64_t offset_in_page = i == 0 ? addr % kDevicePage : 0;
    const std::uint64_t take =
        std::min(kDevicePage - offset_in_page, length - copied);
    memory_.read(addr, {payload.data() + copied,
                        static_cast<std::size_t>(take)});
    copied += take;
  }
  return payload;
}

Status Controller::scatter_host_data(std::uint16_t qid,
                                     const SubmissionQueueEntry& sqe,
                                     ConstByteSpan data,
                                     std::uint64_t declared_length) {
  if (data.empty()) return Status::ok();
  const Nanoseconds dma_start = link_.clock().now();
  const auto record_dma = [&](obs::TraceStage stage, std::uint64_t bytes) {
    obs::TraceEvent e;
    e.stage = stage;
    e.start = dma_start;
    e.end = link_.clock().now();
    e.qid = qid;
    e.cid = sqe.cid;
    e.aux = 1;  // scatter
    e.bytes = bytes;
    record_stage(e);
  };
  if (sqe.transfer_mode() == nvme::DataTransferMode::kSglData) {
    const auto descriptor = nvme::SglDescriptor::unpack(sqe.dptr1, sqe.dptr2);
    if (descriptor.type == nvme::SglDescriptorType::kBitBucket) {
      // §5: bit buckets absorb read data — nothing crosses the link.
      return Status::ok();
    }
    if (descriptor.type != nvme::SglDescriptorType::kDataBlock) {
      return invalid_argument("unsupported SGL descriptor type for read");
    }
    const std::uint64_t send =
        std::min<std::uint64_t>(data.size(), descriptor.length);
    link_.clock().advance(config_.timing.sgl_dma_setup_ns);
    sgl_transactions_.increment();
    link_.post_write(Direction::kUpstream, TrafficClass::kDataSgl, send);
    memory_.write(descriptor.address,
                  data.subspan(0, static_cast<std::size_t>(send)));
    record_dma(obs::TraceStage::kSglDma, send);
    return Status::ok();
  }

  link_.clock().advance(config_.timing.prp_dma_setup_ns);
  prp_transactions_.increment();
  auto pages = nvme::PrpWalker::data_pages(
      sqe.dptr1, sqe.dptr2, declared_length,
      [this](std::uint64_t list_addr, std::size_t entries) {
        link_.read(Direction::kDownstream, TrafficClass::kPrpList,
                   align_up(entries * sizeof(std::uint64_t), 64));
        return nvme::read_prp_list_page(memory_, list_addr, entries);
      });
  BX_RETURN_IF_ERROR(pages.status());

  // Unit-granular upstream DMA, mirroring the write path.
  link_.post_write(Direction::kUpstream, TrafficClass::kDataPrp,
                   prp_transfer_bytes(declared_length, pages->size()));
  record_dma(obs::TraceStage::kPrpDma, declared_length);

  std::uint64_t copied = 0;
  const std::uint64_t total =
      std::min<std::uint64_t>(data.size(), declared_length);
  for (std::size_t i = 0; i < pages->size() && copied < total; ++i) {
    const std::uint64_t addr = (*pages)[i];
    const std::uint64_t offset_in_page = i == 0 ? addr % kDevicePage : 0;
    const std::uint64_t take =
        std::min(kDevicePage - offset_in_page, total - copied);
    memory_.write(addr, data.subspan(static_cast<std::size_t>(copied),
                                     static_cast<std::size_t>(take)));
    copied += take;
  }
  return Status::ok();
}

void Controller::execute_and_complete(std::uint16_t qid,
                                      const SubmissionQueueEntry& sqe,
                                      ConstByteSpan payload) {
  const Nanoseconds exec_start = link_.clock().now();
  if (tracer_ != nullptr) tracer_->set_device_context(qid, sqe.cid);
  ExecResult result = executor_.execute(sqe, payload);
  if (tracer_ != nullptr) tracer_->clear_device_context();
  {
    obs::TraceEvent e;
    e.stage = obs::TraceStage::kExec;
    e.start = exec_start;
    e.end = link_.clock().now();
    e.qid = qid;
    e.cid = sqe.cid;
    e.bytes = payload.size();
    record_stage(e);
  }

  std::uint32_t dw0 = result.dw0;
  std::uint32_t dw1 = 0;
  if (result.status.is_success() && !result.read_data.empty()) {
    const std::uint64_t declared = io_data_length(sqe);
    // Never return more than the host asked for: a KV value larger than
    // the destination buffer is clamped to the declared length exactly as
    // the scatter path clamps it (DW0 still reports the full size, so the
    // client can grow its buffer and retry).
    const std::uint64_t inline_len =
        std::min<std::uint64_t>(result.read_data.size(), declared);
    if (inline_read_eligible(qid, sqe, inline_len)) {
      // ByteExpress-R: the payload returns as chunk MWr TLPs into the
      // queue's completion ring; the CQE (below) carries the slot range.
      dw1 = emit_inline_read(
          qid, sqe,
          ConstByteSpan(result.read_data)
              .subspan(0, static_cast<std::size_t>(inline_len)));
    } else {
      const Status scattered =
          scatter_host_data(qid, sqe, result.read_data, declared);
      if (!scattered.is_ok()) {
        post_completion(
            qid, sqe,
            nvme::StatusField::generic(
                nvme::GenericStatus::kDataTransferError),
            0);
        return;
      }
    }
    if (dw0 == 0) {
      dw0 = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(result.read_data.size(), declared));
    }
  }
  post_completion(qid, sqe, result.status, dw0, dw1);
}

bool Controller::inline_read_eligible(
    std::uint16_t qid, const SubmissionQueueEntry& sqe,
    std::uint64_t data_len) const noexcept {
  if (!config_.enable_inline_read || !inr::sqe_wants_inline_read(sqe)) {
    return false;
  }
  const ReadRing& ring = read_rings_[qid];
  return ring.valid && data_len > 0 &&
         inr::read_chunks_for(data_len) <= ring.slots;
}

std::uint32_t Controller::emit_inline_read(std::uint16_t qid,
                                           const SubmissionQueueEntry& sqe,
                                           ConstByteSpan data) {
  ReadRing& ring = read_rings_[qid];
  const std::uint32_t chunks = inr::read_chunks_for(data.size());
  const std::uint32_t first_slot = ring.cursor;
  const Nanoseconds emit_start = link_.clock().now();
  std::uint64_t offset = 0;
  for (std::uint32_t i = 0; i < chunks; ++i) {
    const std::uint64_t take =
        std::min<std::uint64_t>(inr::kReadChunkCapacity, data.size() - offset);
    nvme::SqSlot slot = inr::encode_read_chunk(
        qid, sqe.cid, static_cast<std::uint16_t>(i),
        static_cast<std::uint16_t>(chunks),
        data.subspan(static_cast<std::size_t>(offset),
                     static_cast<std::size_t>(take)));
    if (corrupt_next_read_chunk_) {
      // Injected kChunkCorrupt: flip one payload byte after the CRC was
      // computed — the host-side CRC32-C check must reject the chunk.
      slot.raw[inr::kReadHeaderBytes] ^= 0xff;
      corrupt_next_read_chunk_ = false;
    }
    link_.clock().advance(config_.timing.chunk_copy_ns);
    // One 64-byte MWr TLP per ring slot — the symmetric counterpart of the
    // write path's per-slot chunk fetch, and the unit the reverse-direction
    // conservation tests count exactly.
    link_.post_write(Direction::kUpstream, TrafficClass::kDataInlineRead,
                     inr::kReadSlotBytes);
    memory_.write(ring.base + std::uint64_t{ring.cursor} * inr::kReadSlotBytes,
                  {slot.raw, sizeof(slot.raw)});
    ring.cursor = (ring.cursor + 1) % ring.slots;
    offset += take;
    inline_read_chunks_.increment();
  }
  inline_read_completions_.increment();
  obs::TraceEvent e;
  e.stage = obs::TraceStage::kReadChunkWrite;
  e.start = emit_start;
  e.end = link_.clock().now();
  e.qid = qid;
  e.cid = sqe.cid;
  e.slot = first_slot;
  e.aux = chunks;
  e.bytes = data.size();
  record_stage(e);
  return inr::encode_read_cqe_dw1(first_slot, chunks);
}

void Controller::complete_with_fault(std::uint16_t qid,
                                     const SubmissionQueueEntry& sqe,
                                     ConstByteSpan payload,
                                     fault::FaultKind fault) {
  switch (fault) {
    case fault::FaultKind::kNone:
      execute_and_complete(qid, sqe, payload);
      return;
    case fault::FaultKind::kChunkCorrupt:
      if (config_.enable_inline_read && inr::sqe_wants_inline_read(sqe) &&
          read_rings_[qid].valid) {
        // Inline-read command: apply the corruption physically to an
        // emitted chunk so the *host-side* CRC check has to catch it
        // (zero-undetected-corruption acceptance criterion). The host
        // rewrites the completion to a retryable Data Transfer Error.
        corrupt_next_read_chunk_ = true;
        execute_and_complete(qid, sqe, payload);
        corrupt_next_read_chunk_ = false;
        return;
      }
      // The device detected a CRC mismatch while assembling the payload:
      // the command fails without executing, retryably.
      post_completion(
          qid, sqe,
          nvme::StatusField::generic(nvme::GenericStatus::kDataTransferError),
          0);
      return;
    case fault::FaultKind::kErrorCompletion:
      post_completion(
          qid, sqe,
          nvme::StatusField::generic(nvme::GenericStatus::kInternalError), 0);
      return;
    case fault::FaultKind::kErrorRetryable:
      post_completion(
          qid, sqe,
          nvme::StatusField::generic(nvme::GenericStatus::kNamespaceNotReady),
          0);
      return;
    case fault::FaultKind::kCompletionDrop:
    case fault::FaultKind::kCompletionDelay:
      // The command executes normally; only its completion is diverted
      // (consumed by the post_completion wrapper). A later host retry
      // after the timeout re-executes the command — standard NVMe abort
      // -and-resubmit semantics.
      completion_fault_ = fault;
      execute_and_complete(qid, sqe, payload);
      completion_fault_ = fault::FaultKind::kNone;
      return;
  }
}

void Controller::post_completion(std::uint16_t qid,
                                 const SubmissionQueueEntry& sqe,
                                 nvme::StatusField status,
                                 std::uint32_t dw0, std::uint32_t dw1) {
  if (completion_fault_ == fault::FaultKind::kCompletionDrop) {
    completion_fault_ = fault::FaultKind::kNone;
    lost_.push_back(LostCompletion{qid, sqe.cid});
    completions_dropped_.increment();
    return;
  }
  if (completion_fault_ == fault::FaultKind::kCompletionDelay) {
    completion_fault_ = fault::FaultKind::kNone;
    const Nanoseconds delay =
        injector_ != nullptr ? injector_->policy().delay_ns : 0;
    delayed_.push_back(DelayedCompletion{qid, sqe, status, dw0, dw1,
                                         link_.clock().now() + delay});
    completions_delayed_.increment();
    return;
  }
  post_completion_now(qid, sqe, status, dw0, dw1);
}

void Controller::post_completion_now(std::uint16_t qid,
                                     const SubmissionQueueEntry& sqe,
                                     nvme::StatusField status,
                                     std::uint32_t dw0, std::uint32_t dw1) {
  const SqState& sq = sqs_[qid];
  BX_ASSERT(sq.valid);
  CqState& cq = cqs_[sq.cqid];
  BX_ASSERT_MSG(cq.valid, "completion queue not configured");

  nvme::CompletionQueueEntry cqe;
  cqe.dw0 = dw0;
  cqe.dw1 = dw1;
  cqe.sq_head = static_cast<std::uint16_t>(sq.head);
  cqe.sq_id = qid;
  cqe.cid = sqe.cid;
  cqe.set_status(status);
  cqe.set_phase(cq.phase);

  const Nanoseconds cpl_start = link_.clock().now();
  const std::uint64_t cqe_addr =
      cq.base + std::uint64_t{cq.tail} * nvme::kCqeSize;
  link_.clock().advance(config_.timing.cqe_post_fw_ns);
  link_.post_write(Direction::kUpstream, TrafficClass::kCompletion,
                   nvme::kCqeSize);
  cq.tail = (cq.tail + 1) % cq.depth;
  if (cq.tail == 0) cq.phase = !cq.phase;

  // MSI-X interrupt: a 4-byte posted write to the host, coalesced to one
  // per `interrupt_coalescing` completions.
  if (++cq.uncoalesced >= config_.interrupt_coalescing) {
    link_.post_write(Direction::kUpstream, TrafficClass::kInterrupt, 4);
    cq.uncoalesced = 0;
  }
  {
    obs::TraceEvent e;
    e.stage = obs::TraceStage::kCompletion;
    e.start = cpl_start;
    e.end = link_.clock().now();
    e.qid = qid;
    e.cid = sqe.cid;
    record_stage(e);
  }
  // The CQE becomes host-visible only after the kCompletion event is
  // recorded, so a concurrently polling host always observes the record
  // before it can reap the CQE (trace invariant 5 relies on this order).
  memory_.write_object(cqe_addr, cqe);
  completions_posted_.increment();
}

nvme::TransferStatsLog Controller::transfer_stats() const noexcept {
  nvme::TransferStatsLog log;
  log.commands_processed = commands_processed_.value();
  log.inline_chunks_fetched = chunks_fetched_.value();
  log.bandslim_fragments = bandslim_fragments_.value();
  log.prp_transactions = prp_transactions_.value();
  log.sgl_transactions = sgl_transactions_.value();
  log.completions_posted = completions_posted_.value();
  log.ooo_payloads_reassembled = ooo_reassembled_.value();
  log.fetch_stage_total_ns =
      static_cast<std::uint64_t>(fetch_stage_hist_.mean() *
                                 double(fetch_stage_hist_.count()));
  return log;
}

void Controller::bind_metrics(obs::MetricsRegistry& metrics) const {
  metrics.expose_counter("ctrl.commands_processed", &commands_processed_);
  metrics.expose_counter("ctrl.chunks_fetched", &chunks_fetched_);
  metrics.expose_counter("ctrl.bandslim_fragments", &bandslim_fragments_);
  metrics.expose_counter("ctrl.prp_transactions", &prp_transactions_);
  metrics.expose_counter("ctrl.sgl_transactions", &sgl_transactions_);
  metrics.expose_counter("ctrl.completions_posted", &completions_posted_);
  metrics.expose_counter("ctrl.ooo_reassembled", &ooo_reassembled_);
  metrics.expose_counter("ctrl.completions_dropped", &completions_dropped_);
  metrics.expose_counter("ctrl.completions_delayed", &completions_delayed_);
  metrics.expose_counter("ctrl.deferred_evictions", &deferred_evictions_);
  metrics.expose_counter("ctrl.reassembly_evictions",
                         &reassembly_evictions_);
  metrics.expose_counter("ctrl.commands_aborted", &commands_aborted_);
  metrics.expose_counter("ctrl.inline_read_completions",
                         &inline_read_completions_);
  metrics.expose_counter("ctrl.inline_read_chunks", &inline_read_chunks_);
  metrics.expose_gauge("ctrl.inline_backlog", &inline_backlog_);
}

void Controller::record_stage(const obs::TraceEvent& event) {
  // The 0xC1 stage log covers I/O queues only, so Get Log Page reads do
  // not perturb the statistics they return.
  if (event.qid != 0) {
    nvme::StageStatsLog::Entry* entry = nullptr;
    switch (event.stage) {
      case obs::TraceStage::kSqeFetch: entry = &stage_log_.sqe_fetch; break;
      case obs::TraceStage::kChunkFetch:
        entry = &stage_log_.chunk_fetch;
        break;
      case obs::TraceStage::kPrpDma: entry = &stage_log_.prp_dma; break;
      case obs::TraceStage::kSglDma: entry = &stage_log_.sgl_dma; break;
      case obs::TraceStage::kExec: entry = &stage_log_.exec; break;
      case obs::TraceStage::kReadChunkWrite:
        entry = &stage_log_.read_chunk;
        break;
      case obs::TraceStage::kCompletion:
        entry = &stage_log_.completion;
        break;
      default: break;
    }
    if (entry != nullptr) {
      ++entry->count;
      entry->total_ns += event.end - event.start;
    }
    if (telemetry_ != nullptr) {
      telemetry_->on_stage(event.stage, event.end - event.start);
    }
  }
  if (tracer_ != nullptr && tracer_->enabled()) tracer_->record(event);
}

bool Controller::abort_command(std::uint16_t sqid, std::uint16_t cid) {
  for (std::size_t i = 0; i < lost_.size(); ++i) {
    if (lost_[i].qid == sqid && lost_[i].cid == cid) {
      lost_.erase(lost_.begin() + static_cast<std::ptrdiff_t>(i));
      commands_aborted_.increment();
      return true;
    }
  }
  for (std::size_t i = 0; i < delayed_.size(); ++i) {
    if (delayed_[i].qid == sqid && delayed_[i].sqe.cid == cid) {
      // Scrubbed before release: the host is about to recycle this CID,
      // and a late CQE for the old incarnation must never surface.
      delayed_.erase(delayed_.begin() + static_cast<std::ptrdiff_t>(i));
      commands_aborted_.increment();
      return true;
    }
  }
  for (std::size_t i = 0; i < deferred_.size(); ++i) {
    if (deferred_[i].qid == sqid && deferred_[i].sqe.cid == cid) {
      const std::uint32_t payload_id =
          inw::sqe_ooo_payload_id(deferred_[i].sqe);
      reassembly_.drop(payload_id);
      corrupt_payloads_.erase(payload_id);
      deferred_.erase(deferred_.begin() + static_cast<std::ptrdiff_t>(i));
      commands_processed_.increment();
      commands_aborted_.increment();
      return true;
    }
  }
  return false;
}

void Controller::drain_deferred() {
  for (std::size_t i = 0; i < deferred_.size();) {
    const std::uint32_t payload_id =
        inw::sqe_ooo_payload_id(deferred_[i].sqe);
    if (reassembly_.complete(payload_id)) {
      const DeferredInline item = deferred_[i];
      deferred_.erase(deferred_.begin() + static_cast<std::ptrdiff_t>(i));
      // Report how long the command sat waiting for its striped chunks —
      // the host books it as the kReassembly segment of the breakdown.
      if (tracer_ != nullptr && tracer_->enabled() &&
          link_.clock().now() > item.defer_start_ns) {
        tracer_->note_command_wait(
            item.qid, item.sqe.cid,
            static_cast<std::uint64_t>(link_.clock().now() -
                                       item.defer_start_ns));
      }
      auto payload =
          reassembly_.take(payload_id, item.sqe.inline_length());
      commands_processed_.increment();
      if (payload.is_ok()) ooo_reassembled_.increment();
      if (!payload.is_ok()) {
        post_completion(item.qid, item.sqe,
                        nvme::StatusField::vendor(
                            nvme::VendorStatus::kInlineLengthMismatch),
                        0);
      } else {
        complete_with_fault(item.qid, item.sqe, *payload, item.fault);
      }
    } else {
      ++i;
    }
  }
}

std::uint64_t Controller::io_data_length(const SubmissionQueueEntry& sqe) {
  switch (sqe.io_opcode()) {
    case nvme::IoOpcode::kWrite:
    case nvme::IoOpcode::kRead: {
      const auto fields = nvme::BlockIoFields::from(sqe);
      return std::uint64_t{fields.block_count} * kDevicePage;
    }
    case nvme::IoOpcode::kFlush:
      return 0;
    default:
      return nvme::VendorFields::from(sqe).data_length;
  }
}

bool Controller::is_read_direction(nvme::IoOpcode opcode) noexcept {
  switch (opcode) {
    case nvme::IoOpcode::kRead:
    case nvme::IoOpcode::kVendorRawRead:
    case nvme::IoOpcode::kVendorKvRetrieve:
    case nvme::IoOpcode::kVendorKvIterate:
      return true;
    default:
      return false;
  }
}

void Controller::handle_admin(const SubmissionQueueEntry& sqe) {
  const auto opcode = static_cast<nvme::AdminOpcode>(sqe.opcode);
  nvme::StatusField status = nvme::StatusField::success();
  std::uint32_t dw0 = 0;

  switch (opcode) {
    case nvme::AdminOpcode::kCreateIoCq: {
      const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xffff);
      const std::uint32_t depth = (sqe.cdw10 >> 16) + 1;
      if (qid == 0 || qid >= config_.max_queues || cqs_[qid].valid ||
          sqe.dptr1 == 0 || depth < 2) {
        status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidField);
        break;
      }
      cqs_[qid] = CqState{true, sqe.dptr1, depth, 0, true};
      break;
    }
    case nvme::AdminOpcode::kCreateIoSq: {
      const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xffff);
      const std::uint32_t depth = (sqe.cdw10 >> 16) + 1;
      const auto cqid = static_cast<std::uint16_t>(sqe.cdw11 >> 16);
      if (qid == 0 || qid >= config_.max_queues || sqs_[qid].valid ||
          sqe.dptr1 == 0 || depth < 2 || cqid >= config_.max_queues ||
          !cqs_[cqid].valid) {
        status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidField);
        break;
      }
      sqs_[qid] = SqState{true, sqe.dptr1, depth, cqid, 0};
      break;
    }
    case nvme::AdminOpcode::kDeleteIoSq: {
      const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xffff);
      if (qid == 0 || qid >= config_.max_queues || !sqs_[qid].valid) {
        status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidField);
        break;
      }
      sqs_[qid].valid = false;
      read_rings_[qid].valid = false;
      break;
    }
    case nvme::AdminOpcode::kDeleteIoCq: {
      const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xffff);
      if (qid == 0 || qid >= config_.max_queues || !cqs_[qid].valid) {
        status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidField);
        break;
      }
      cqs_[qid].valid = false;
      break;
    }
    case nvme::AdminOpcode::kIdentify: {
      if (sqe.dptr1 == 0) {
        status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidField);
        break;
      }
      const auto cns = static_cast<nvme::IdentifyCns>(sqe.cdw10 & 0xff);
      ByteVec page(kDevicePage, 0);
      if (cns == nvme::IdentifyCns::kController) {
        // Identify Controller layout subset: SN @4, MN @24, FR @64,
        // NN @516, SGLS @536 (bit0: SGL supported).
        const char sn[] = "BXSIM0001";
        const char mn[] = "ByteExpress Simulated OpenSSD";
        const char fr[] = "1.0";
        std::memcpy(page.data() + 4, sn, sizeof(sn) - 1);
        std::memcpy(page.data() + 24, mn, sizeof(mn) - 1);
        std::memcpy(page.data() + 64, fr, sizeof(fr) - 1);
        const std::uint32_t nn = 1;  // one namespace
        std::memcpy(page.data() + 516, &nn, sizeof(nn));
        const std::uint32_t sgls = 1;
        std::memcpy(page.data() + 536, &sgls, sizeof(sgls));
      } else if (cns == nvme::IdentifyCns::kNamespace) {
        if (sqe.nsid != 1) {
          status = nvme::StatusField::generic(
              nvme::GenericStatus::kInvalidNamespace);
          break;
        }
        // Identify Namespace subset: NSZE @0, NCAP @8, NUSE @16 (u64
        // blocks), FLBAS @26 (we expose one 4 KB LBA format).
        const std::uint64_t nsze = namespace_blocks_;
        std::memcpy(page.data() + 0, &nsze, sizeof(nsze));
        std::memcpy(page.data() + 8, &nsze, sizeof(nsze));
        std::memcpy(page.data() + 16, &nsze, sizeof(nsze));
        page[26] = 0;  // LBA format 0
      } else {
        status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidField);
        break;
      }
      link_.post_write(Direction::kUpstream, TrafficClass::kDataPrp,
                       kDevicePage);
      memory_.write(sqe.dptr1, page);
      break;
    }
    case nvme::AdminOpcode::kGetLogPage: {
      if (sqe.dptr1 == 0) {
        status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidField);
        break;
      }
      const auto lid = static_cast<nvme::LogPageId>(sqe.cdw10 & 0xff);
      if (lid == nvme::LogPageId::kVendorTransferStats) {
        const nvme::TransferStatsLog log = transfer_stats();
        link_.post_write(Direction::kUpstream, TrafficClass::kDataPrp,
                         align_up(sizeof(log), 64));
        memory_.write_object(sqe.dptr1, log);
      } else if (lid == nvme::LogPageId::kVendorStageStats) {
        link_.post_write(Direction::kUpstream, TrafficClass::kDataPrp,
                         align_up(sizeof(stage_log_), 64));
        memory_.write_object(sqe.dptr1, stage_log_);
      } else {
        status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidField);
      }
      break;
    }
    case nvme::AdminOpcode::kSetFeatures: {
      const std::uint8_t fid = sqe.cdw10 & 0xff;
      if (fid == 0x07) {
        // Number of queues: echo the request, capped by max_queues-1.
        const std::uint16_t cap =
            static_cast<std::uint16_t>(config_.max_queues - 2);
        const std::uint16_t nsq =
            std::min<std::uint16_t>(sqe.cdw11 & 0xffff, cap);
        const std::uint16_t ncq =
            std::min<std::uint16_t>(sqe.cdw11 >> 16, cap);
        dw0 = (std::uint32_t{ncq} << 16) | nsq;
      }
      features_[fid] = sqe.cdw11;
      break;
    }
    case nvme::AdminOpcode::kGetFeatures: {
      const std::uint8_t fid = sqe.cdw10 & 0xff;
      const auto it = features_.find(fid);
      dw0 = it == features_.end() ? 0 : it->second;
      break;
    }
    case nvme::AdminOpcode::kVendorReadRing: {
      // ByteExpress-R ring advertisement: CDW10 = QID | (slots << 16),
      // DPTR1 = ring base. Rejected when the firmware has inline reads
      // disabled (the driver then degrades to PRP/SGL reads) or the
      // parameters are malformed. The slot count is capped by the CQE
      // DW1 encoding (15-bit first-slot field).
      const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xffff);
      const std::uint32_t slots = sqe.cdw10 >> 16;
      if (!config_.enable_inline_read || qid == 0 ||
          qid >= config_.max_queues || !sqs_[qid].valid || sqe.dptr1 == 0 ||
          slots < 2 || slots > (1u << 15)) {
        status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidField);
        break;
      }
      read_rings_[qid] = ReadRing{true, sqe.dptr1, slots, 0};
      break;
    }
    case nvme::AdminOpcode::kAbort: {
      const auto sqid = static_cast<std::uint16_t>(sqe.cdw10 & 0xffff);
      const auto cid = static_cast<std::uint16_t>(sqe.cdw10 >> 16);
      if (sqid == 0 || sqid >= config_.max_queues || !sqs_[sqid].valid) {
        status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidField);
        break;
      }
      // DW0 bit 0 clear = the command was found and aborted. The aborted
      // I/O command gets no CQE from us — the host driver synthesizes an
      // Abort Requested completion after this admin command succeeds.
      dw0 = abort_command(sqid, cid) ? 0 : 1;
      break;
    }
    default:
      status = nvme::StatusField::generic(nvme::GenericStatus::kInvalidOpcode);
      break;
  }

  post_completion(0, sqe, status, dw0);
}

}  // namespace bx::controller
