#include "pcie/traffic_counter.h"

#include <cstdio>

#include "common/status.h"

namespace bx::pcie {

std::string_view traffic_class_name(TrafficClass cls) noexcept {
  switch (cls) {
    case TrafficClass::kCommandFetch: return "cmd_fetch";
    case TrafficClass::kDataPrp: return "data_prp";
    case TrafficClass::kDataSgl: return "data_sgl";
    case TrafficClass::kPrpList: return "prp_list";
    case TrafficClass::kCompletion: return "completion";
    case TrafficClass::kDoorbell: return "doorbell";
    case TrafficClass::kInterrupt: return "interrupt";
    case TrafficClass::kDataInlineRead: return "data_inl_rd";
    case TrafficClass::kOther: return "other";
    case TrafficClass::kCount_: break;
  }
  return "?";
}

void TrafficCounter::record(Direction dir, TrafficClass cls,
                            std::uint64_t tlps, std::uint64_t data_bytes,
                            std::uint64_t wire_bytes) noexcept {
  const auto d = static_cast<std::size_t>(dir);
  const auto c = static_cast<std::size_t>(cls);
  BX_ASSERT(d < 2 && c < kClasses);
  AtomicCell& cell = cells_[d][c];
  cell.tlps.fetch_add(tlps, std::memory_order_relaxed);
  cell.data_bytes.fetch_add(data_bytes, std::memory_order_relaxed);
  cell.wire_bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
}

TrafficCell TrafficCounter::cell(Direction dir,
                                 TrafficClass cls) const noexcept {
  return cells_[static_cast<std::size_t>(dir)][static_cast<std::size_t>(cls)]
      .snapshot();
}

TrafficCell TrafficCounter::total(Direction dir) const noexcept {
  TrafficCell sum;
  for (const auto& cell : cells_[static_cast<std::size_t>(dir)]) {
    sum += cell.snapshot();
  }
  return sum;
}

TrafficCell TrafficCounter::total() const noexcept {
  TrafficCell sum = total(Direction::kDownstream);
  sum += total(Direction::kUpstream);
  return sum;
}

void TrafficCounter::reset() noexcept {
  for (auto& dir : cells_) {
    for (auto& cell : dir) {
      cell.tlps.store(0, std::memory_order_relaxed);
      cell.data_bytes.store(0, std::memory_order_relaxed);
      cell.wire_bytes.store(0, std::memory_order_relaxed);
    }
  }
}

std::string TrafficCounter::breakdown() const {
  std::string out =
      "class        direction   tlps         data_bytes     wire_bytes\n";
  char line[160];
  for (std::size_t d = 0; d < 2; ++d) {
    for (std::size_t c = 0; c < kClasses; ++c) {
      const TrafficCell cell = cells_[d][c].snapshot();
      if (cell.tlps == 0) continue;
      std::snprintf(
          line, sizeof(line), "%-12s %-11s %-12llu %-14llu %llu\n",
          std::string(traffic_class_name(static_cast<TrafficClass>(c)))
              .c_str(),
          d == 0 ? "host->dev" : "dev->host",
          static_cast<unsigned long long>(cell.tlps),
          static_cast<unsigned long long>(cell.data_bytes),
          static_cast<unsigned long long>(cell.wire_bytes));
      out += line;
    }
  }
  const TrafficCell sum = total();
  std::snprintf(line, sizeof(line), "%-12s %-11s %-12llu %-14llu %llu\n",
                "TOTAL", "both", static_cast<unsigned long long>(sum.tlps),
                static_cast<unsigned long long>(sum.data_bytes),
                static_cast<unsigned long long>(sum.wire_bytes));
  out += line;
  return out;
}

}  // namespace bx::pcie
