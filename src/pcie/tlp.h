// Transaction Layer Packet accounting model.
//
// The paper measures "PCIe traffic" with Intel PCM, i.e. bytes that actually
// cross the link including protocol overhead. We therefore account, per TLP:
//   framing (STP/END) + sequence number + TLP header + payload + LCRC,
// plus an amortized DLLP share (ACK/FC) per TLP. Sizes follow the PCIe base
// spec for Gen1/2 (8b/10b) framing; the small Gen3+ framing difference is
// below the fidelity the figures need and is absorbed by the DLLP share.
#pragma once

#include <cstdint>
#include <string_view>

namespace bx::pcie {

enum class TlpType : std::uint8_t {
  kMemoryWrite,  // posted MWr (data downstream or upstream)
  kMemoryRead,   // non-posted MRd request (no payload)
  kCompletion,   // CplD carrying read data
};

std::string_view tlp_type_name(TlpType type) noexcept;

/// Per-TLP overhead constants in bytes.
struct TlpOverhead {
  // 1B STP + 2B sequence + 4B LCRC + 1B END = 8B link framing.
  std::uint32_t framing = 8;
  // 4DW header (64-bit addressing) for memory requests.
  std::uint32_t mem_header = 16;
  // 3DW header for completions.
  std::uint32_t cpl_header = 12;
  // Amortized DLLP traffic (ACK/NAK + flow control) charged per TLP.
  std::uint32_t dllp_share = 8;
};

/// Wire bytes of one TLP of `type` carrying `payload_bytes` of data
/// (payload_bytes must be 0 for kMemoryRead).
std::uint32_t tlp_wire_bytes(TlpType type, std::uint32_t payload_bytes,
                             const TlpOverhead& overhead) noexcept;

}  // namespace bx::pcie
