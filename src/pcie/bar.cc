#include "pcie/bar.h"

namespace bx::pcie {

BarSpace::BarSpace(std::uint16_t max_queues)
    : max_queues_(max_queues),
      sq_tail_(new std::atomic<std::uint32_t>[max_queues]),
      cq_head_(new std::atomic<std::uint32_t>[max_queues]),
      sq_doorbell_writes_(new std::atomic<std::uint64_t>[max_queues]),
      cq_doorbell_writes_(new std::atomic<std::uint64_t>[max_queues]) {
  BX_ASSERT(max_queues >= 1);
  for (std::uint16_t i = 0; i < max_queues; ++i) {
    sq_tail_[i].store(0, std::memory_order_relaxed);
    cq_head_[i].store(0, std::memory_order_relaxed);
    sq_doorbell_writes_[i].store(0, std::memory_order_relaxed);
    cq_doorbell_writes_[i].store(0, std::memory_order_relaxed);
  }
}

std::uint32_t BarSpace::sq_tail(std::uint16_t qid) const noexcept {
  BX_ASSERT(qid < max_queues_);
  return sq_tail_[qid].load(std::memory_order_acquire);
}

std::uint32_t BarSpace::cq_head(std::uint16_t qid) const noexcept {
  BX_ASSERT(qid < max_queues_);
  return cq_head_[qid].load(std::memory_order_acquire);
}

void BarSpace::set_sq_tail(std::uint16_t qid, std::uint32_t value) noexcept {
  BX_ASSERT(qid < max_queues_);
  sq_doorbell_writes_[qid].fetch_add(1, std::memory_order_relaxed);
  sq_tail_[qid].store(value, std::memory_order_release);
}

void BarSpace::set_cq_head(std::uint16_t qid, std::uint32_t value) noexcept {
  BX_ASSERT(qid < max_queues_);
  cq_doorbell_writes_[qid].fetch_add(1, std::memory_order_relaxed);
  cq_head_[qid].store(value, std::memory_order_release);
}

std::uint64_t BarSpace::sq_doorbell_writes(std::uint16_t qid) const noexcept {
  BX_ASSERT(qid < max_queues_);
  return sq_doorbell_writes_[qid].load(std::memory_order_relaxed);
}

std::uint64_t BarSpace::cq_doorbell_writes(std::uint16_t qid) const noexcept {
  BX_ASSERT(qid < max_queues_);
  return cq_doorbell_writes_[qid].load(std::memory_order_relaxed);
}

}  // namespace bx::pcie
