#include "pcie/bar.h"

namespace bx::pcie {

BarSpace::BarSpace(std::uint16_t max_queues)
    : sq_tail_(max_queues, 0), cq_head_(max_queues, 0) {
  BX_ASSERT(max_queues >= 1);
}

std::uint32_t BarSpace::sq_tail(std::uint16_t qid) const noexcept {
  BX_ASSERT(qid < sq_tail_.size());
  return sq_tail_[qid];
}

std::uint32_t BarSpace::cq_head(std::uint16_t qid) const noexcept {
  BX_ASSERT(qid < cq_head_.size());
  return cq_head_[qid];
}

void BarSpace::set_sq_tail(std::uint16_t qid, std::uint32_t value) noexcept {
  BX_ASSERT(qid < sq_tail_.size());
  sq_tail_[qid] = value;
}

void BarSpace::set_cq_head(std::uint16_t qid, std::uint32_t value) noexcept {
  BX_ASSERT(qid < cq_head_.size());
  cq_head_[qid] = value;
}

}  // namespace bx::pcie
