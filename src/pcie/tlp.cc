#include "pcie/tlp.h"

#include "common/status.h"

namespace bx::pcie {

std::string_view tlp_type_name(TlpType type) noexcept {
  switch (type) {
    case TlpType::kMemoryWrite: return "MWr";
    case TlpType::kMemoryRead: return "MRd";
    case TlpType::kCompletion: return "CplD";
  }
  return "?";
}

std::uint32_t tlp_wire_bytes(TlpType type, std::uint32_t payload_bytes,
                             const TlpOverhead& overhead) noexcept {
  switch (type) {
    case TlpType::kMemoryWrite:
      return overhead.framing + overhead.mem_header + payload_bytes +
             overhead.dllp_share;
    case TlpType::kMemoryRead:
      BX_ASSERT(payload_bytes == 0);
      return overhead.framing + overhead.mem_header + overhead.dllp_share;
    case TlpType::kCompletion:
      return overhead.framing + overhead.cpl_header + payload_bytes +
             overhead.dllp_share;
  }
  return 0;
}

}  // namespace bx::pcie
