#include "pcie/link.h"

#include <cmath>

#include "common/bytes.h"

namespace bx::pcie {

double LinkConfig::bytes_per_ns() const noexcept {
  // Per-lane raw rates in GT/s and encoding efficiency.
  double gts = 0;
  double efficiency = 0;
  switch (generation) {
    case 1: gts = 2.5; efficiency = 0.8; break;   // 8b/10b
    case 2: gts = 5.0; efficiency = 0.8; break;   // 8b/10b
    case 3: gts = 8.0; efficiency = 128.0 / 130.0; break;
    case 4: gts = 16.0; efficiency = 128.0 / 130.0; break;
    case 5: gts = 32.0; efficiency = 128.0 / 130.0; break;
    default: gts = 5.0; efficiency = 0.8; break;
  }
  // GT/s * efficiency = Gbit/s per lane; /8 = GB/s = bytes per ns.
  return gts * efficiency / 8.0 * lanes;
}

PcieLink::PcieLink(const LinkConfig& config, SimClock& clock,
                   TrafficCounter& counter) noexcept
    : config_(config), clock_(clock), counter_(counter) {
  BX_ASSERT(config.lanes > 0);
  BX_ASSERT(config.max_payload_size >= 64);
}

Nanoseconds PcieLink::serialize_time(std::uint64_t wire_bytes) const noexcept {
  return static_cast<Nanoseconds>(
      std::llround(double(wire_bytes) / config_.bytes_per_ns()));
}

void PcieLink::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    tlps_metric_ = wire_bytes_metric_ = data_bytes_metric_ = nullptr;
    return;
  }
  tlps_metric_ = &metrics->counter("pcie.tlps");
  wire_bytes_metric_ = &metrics->counter("pcie.wire_bytes");
  data_bytes_metric_ = &metrics->counter("pcie.data_bytes");
}

void PcieLink::record(Direction dir, TrafficClass cls, std::uint64_t tlps,
                      std::uint64_t data_bytes,
                      std::uint64_t wire_bytes) noexcept {
  counter_.record(dir, cls, tlps, data_bytes, wire_bytes);
  if (tlps_metric_ != nullptr) {
    tlps_metric_->add(tlps);
    wire_bytes_metric_->add(wire_bytes);
    data_bytes_metric_->add(data_bytes);
  }
}

void PcieLink::telemetry_tlps(Direction dir, obs::TlpKind kind,
                              std::uint64_t tlps, std::uint64_t data_bytes,
                              std::uint64_t wire_bytes) noexcept {
  // pcie::Direction and obs::LinkDir share numeric values (bx_obs sits
  // below bx_pcie and cannot include this header).
  telemetry_->on_tlps(
      static_cast<obs::LinkDir>(static_cast<std::uint8_t>(dir)), kind, tlps,
      data_bytes, wire_bytes);
}

Nanoseconds PcieLink::maybe_replay(Direction dir, TrafficClass cls,
                                   obs::TlpKind kind,
                                   std::uint64_t wire_bytes) noexcept {
  if (injector_ == nullptr || !injector_->next_tlp_replay()) {
    return 0;
  }
  // The retransmitted TLP costs wire bytes and time only: no data bytes
  // and no logical TLP, so per-TLP/data-byte conservation checks see the
  // same logical traffic with or without replays.
  record(dir, cls, 0, 0, wire_bytes);
  if (telemetry_ != nullptr) {
    telemetry_tlps(dir, kind, 0, 0, wire_bytes);
  }
  return config_.propagation_ns + serialize_time(wire_bytes);
}

Nanoseconds PcieLink::post_write(Direction dir, TrafficClass cls,
                                 std::uint64_t data_bytes) noexcept {
  const std::uint32_t mps = config_.max_payload_size;
  const std::uint64_t tlps = data_bytes == 0 ? 1 : div_ceil(data_bytes, mps);
  std::uint64_t wire = 0;
  std::uint64_t remaining = data_bytes;
  for (std::uint64_t i = 0; i < tlps; ++i) {
    const auto chunk =
        static_cast<std::uint32_t>(remaining < mps ? remaining : mps);
    wire += tlp_wire_bytes(TlpType::kMemoryWrite, chunk, config_.overhead);
    remaining -= chunk;
  }
  record(dir, cls, tlps, data_bytes, wire);
  Nanoseconds t = config_.propagation_ns + serialize_time(wire);
  t += maybe_replay(
      dir, cls, obs::TlpKind::kMWr,
      tlp_wire_bytes(TlpType::kMemoryWrite,
                     static_cast<std::uint32_t>(
                         data_bytes < mps ? data_bytes : mps),
                     config_.overhead));
  clock_.advance(t);
  if (telemetry_ != nullptr) {
    telemetry_tlps(dir, obs::TlpKind::kMWr, tlps, data_bytes, wire);
    telemetry_->advance_to(clock_.now());
  }
  return t;
}

Nanoseconds PcieLink::read(Direction data_dir, TrafficClass cls,
                           std::uint64_t data_bytes) noexcept {
  BX_ASSERT(data_bytes > 0);
  const std::uint32_t mps = config_.max_payload_size;
  const std::uint32_t mrrs = config_.max_read_request_size;
  const Direction req_dir = data_dir == Direction::kUpstream
                                ? Direction::kDownstream
                                : Direction::kUpstream;

  // Read requests, split at MaxReadRequestSize.
  const std::uint64_t requests = div_ceil(data_bytes, mrrs);
  const std::uint64_t req_wire =
      requests * tlp_wire_bytes(TlpType::kMemoryRead, 0, config_.overhead);
  record(req_dir, cls, requests, 0, req_wire);

  // Completions with data, split at MaxPayloadSize.
  const std::uint64_t cpls = div_ceil(data_bytes, mps);
  std::uint64_t cpl_wire = 0;
  std::uint64_t remaining = data_bytes;
  for (std::uint64_t i = 0; i < cpls; ++i) {
    const auto chunk =
        static_cast<std::uint32_t>(remaining < mps ? remaining : mps);
    cpl_wire += tlp_wire_bytes(TlpType::kCompletion, chunk, config_.overhead);
    remaining -= chunk;
  }
  record(data_dir, cls, cpls, data_bytes, cpl_wire);

  // Round trip: request propagation + its serialization, then completion
  // propagation + serialization of the data stream.
  Nanoseconds t = 2 * config_.propagation_ns +
                  serialize_time(req_wire) + serialize_time(cpl_wire);
  t += maybe_replay(
      data_dir, cls, obs::TlpKind::kCpl,
      tlp_wire_bytes(TlpType::kCompletion,
                     static_cast<std::uint32_t>(
                         data_bytes < mps ? data_bytes : mps),
                     config_.overhead));
  clock_.advance(t);
  if (telemetry_ != nullptr) {
    telemetry_tlps(req_dir, obs::TlpKind::kMRd, requests, 0, req_wire);
    telemetry_tlps(data_dir, obs::TlpKind::kCpl, cpls, data_bytes, cpl_wire);
    telemetry_->advance_to(clock_.now());
  }
  return t;
}

Nanoseconds PcieLink::mmio_write32(TrafficClass cls) noexcept {
  return post_write(Direction::kDownstream, cls, 4);
}

}  // namespace bx::pcie
