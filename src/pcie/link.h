// Transaction-level PCIe link model.
//
// Every byte that crosses the simulated link goes through one of the three
// primitives here (post_write / read / mmio_write32). Each primitive:
//   * segments the transfer into TLPs per MaxPayloadSize / MaxReadRequestSize,
//   * accounts wire bytes (incl. header/framing/DLLP share) in the
//     TrafficCounter,
//   * returns the modeled link time, which the caller adds to its timeline.
//
// The link time of a transfer is propagation + serialization:
//   t = hops * prop_latency + wire_bytes / bytes_per_ns
// Reads pay the round trip (request out, completions back).
#pragma once

#include <cstdint>

#include "common/sim_clock.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "fault/fault.h"
#include "pcie/tlp.h"
#include "pcie/traffic_counter.h"

namespace bx::pcie {

struct LinkConfig {
  int generation = 2;       // PCIe 1..5 (paper testbed: Gen2)
  int lanes = 8;            // x8 (paper testbed)
  std::uint32_t max_payload_size = 256;       // MPS, bytes
  std::uint32_t max_read_request_size = 512;  // MRRS, bytes
  Nanoseconds propagation_ns = 150;  // one-way TLP propagation latency
  TlpOverhead overhead;

  /// Effective data rate of the configured link in bytes per nanosecond,
  /// after encoding (8b/10b for Gen1/2, 128b/130b for Gen3+).
  [[nodiscard]] double bytes_per_ns() const noexcept;
};

class PcieLink {
 public:
  PcieLink(const LinkConfig& config, SimClock& clock,
           TrafficCounter& counter) noexcept;

  /// Posted memory write of `data_bytes` (e.g. CQE write-back, MSI-X,
  /// MMIO-based byte interface). Advances the clock; returns elapsed time.
  Nanoseconds post_write(Direction dir, TrafficClass cls,
                         std::uint64_t data_bytes) noexcept;

  /// Memory read of `data_bytes`. `data_dir` is the direction the DATA
  /// (completions) travels — matching how PCM attributes read bandwidth —
  /// so a device DMA fetch of host memory uses kDownstream data with the
  /// MRd request accounted on the opposite direction. Advances the clock;
  /// returns the elapsed round-trip time.
  Nanoseconds read(Direction data_dir, TrafficClass cls,
                   std::uint64_t data_bytes) noexcept;

  /// 4-byte MMIO register write host->device (doorbells).
  Nanoseconds mmio_write32(TrafficClass cls) noexcept;

  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }
  [[nodiscard]] TrafficCounter& counter() noexcept { return counter_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }

  /// Wire time for `wire_bytes` at this link's rate, without side effects.
  [[nodiscard]] Nanoseconds serialize_time(std::uint64_t wire_bytes)
      const noexcept;

  /// Mirrors every record into `pcie.tlps` / `pcie.wire_bytes` /
  /// `pcie.data_bytes` counters of `metrics` (pass nullptr to detach).
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Feeds every TLP batch into `telemetry` by direction and kind
  /// (MWr/MRd/Cpl), and rolls its sampling window forward after each
  /// primitive advances the clock (pass nullptr to detach — the disabled
  /// cost is one pointer check per primitive).
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  /// Draws one data-link TLP replay per primitive from `injector` (pass
  /// nullptr to detach). A replay retransmits one TLP after an
  /// LCRC/sequence error: extra wire bytes and time, zero data bytes and
  /// zero logical TLPs, invisible to host and device logic — so the
  /// data-byte conservation invariants hold unchanged under replays.
  void set_fault_injector(fault::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

 private:
  /// Accounts one replayed TLP of `wire_bytes` when the injector fires;
  /// returns the extra link time (0 when it does not).
  Nanoseconds maybe_replay(Direction dir, TrafficClass cls, obs::TlpKind kind,
                           std::uint64_t wire_bytes) noexcept;
  void record(Direction dir, TrafficClass cls, std::uint64_t tlps,
              std::uint64_t data_bytes, std::uint64_t wire_bytes) noexcept;
  void telemetry_tlps(Direction dir, obs::TlpKind kind, std::uint64_t tlps,
                      std::uint64_t data_bytes,
                      std::uint64_t wire_bytes) noexcept;

  LinkConfig config_;
  SimClock& clock_;
  TrafficCounter& counter_;
  obs::Counter* tlps_metric_ = nullptr;
  obs::Counter* wire_bytes_metric_ = nullptr;
  obs::Counter* data_bytes_metric_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
};

}  // namespace bx::pcie
