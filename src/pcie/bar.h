// NVMe BAR0 register file: submission-queue tail and completion-queue head
// doorbells at the spec layout (0x1000 + (2*qid + is_cq) * stride).
//
// The driver writes doorbells through DoorbellWriter, which charges a 4-byte
// MMIO MWr TLP on the link and then updates the register; the controller
// observes new values by polling (matching the OpenSSD firmware, which polls
// SQ tail doorbells in round-robin).
//
// Concurrency: the registers are atomics because host submitter threads
// write doorbells while the controller polls them from whichever thread is
// pumping the device. A doorbell write is a release store and a poll is an
// acquire load, so ring entries written before the doorbell are visible to
// the device after it observes the new tail — the simulated analog of the
// write barrier the kernel driver issues before an MMIO doorbell.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "pcie/link.h"

namespace bx::pcie {

class BarSpace {
 public:
  /// `max_queues` counts queue IDs including the admin queue (qid 0).
  explicit BarSpace(std::uint16_t max_queues);

  [[nodiscard]] std::uint32_t sq_tail(std::uint16_t qid) const noexcept;
  [[nodiscard]] std::uint32_t cq_head(std::uint16_t qid) const noexcept;

  void set_sq_tail(std::uint16_t qid, std::uint32_t value) noexcept;
  void set_cq_head(std::uint16_t qid, std::uint32_t value) noexcept;

  /// Doorbell write counts per queue — observability for the concurrency
  /// stress harness ("exactly one doorbell per inline submission").
  [[nodiscard]] std::uint64_t sq_doorbell_writes(
      std::uint16_t qid) const noexcept;
  [[nodiscard]] std::uint64_t cq_doorbell_writes(
      std::uint16_t qid) const noexcept;

  [[nodiscard]] std::uint16_t max_queues() const noexcept {
    return max_queues_;
  }

 private:
  std::uint16_t max_queues_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> sq_tail_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> cq_head_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> sq_doorbell_writes_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cq_doorbell_writes_;
};

/// Host-side handle that pays the MMIO cost for each doorbell write.
class DoorbellWriter {
 public:
  DoorbellWriter(BarSpace& bar, PcieLink& link) noexcept
      : bar_(bar), link_(link) {}

  void ring_sq_tail(std::uint16_t qid, std::uint32_t tail) noexcept {
    link_.mmio_write32(TrafficClass::kDoorbell);
    bar_.set_sq_tail(qid, tail);
  }

  void ring_cq_head(std::uint16_t qid, std::uint32_t head) noexcept {
    link_.mmio_write32(TrafficClass::kDoorbell);
    bar_.set_cq_head(qid, head);
  }

 private:
  BarSpace& bar_;
  PcieLink& link_;
};

}  // namespace bx::pcie
