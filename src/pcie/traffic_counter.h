// PCM-style traffic counters: wire bytes and data bytes per direction, with
// a per-class breakdown so benchmarks can attribute traffic to command
// fetches, PRP data, inline chunks, completions, doorbells and interrupts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace bx::pcie {

enum class Direction : std::uint8_t {
  kDownstream = 0,  // host -> device (root complex transmit)
  kUpstream = 1,    // device -> host
};

/// What a transfer is for — the attribution axis of the traffic breakdown.
enum class TrafficClass : std::uint8_t {
  kCommandFetch = 0,  // 64 B SQE fetch (and ByteExpress chunk fetch)
  kDataPrp,           // page-granular PRP data DMA
  kDataSgl,           // SGL fine-grained data DMA
  kPrpList,           // PRP list page fetches (> 2 pages)
  kCompletion,        // 16 B CQE write-back
  kDoorbell,          // host MMIO doorbell write
  kInterrupt,         // MSI-X posted write
  kDataInlineRead,    // ByteExpress-R inline read chunk (dev -> host MWr)
  kOther,
  kCount_,
};

std::string_view traffic_class_name(TrafficClass cls) noexcept;

/// A read-side snapshot of one (direction, class) counter cell.
struct TrafficCell {
  std::uint64_t tlps = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t wire_bytes = 0;

  void add(std::uint64_t tlp_count, std::uint64_t data,
           std::uint64_t wire) noexcept {
    tlps += tlp_count;
    data_bytes += data;
    wire_bytes += wire;
  }
  TrafficCell& operator+=(const TrafficCell& other) noexcept {
    add(other.tlps, other.data_bytes, other.wire_bytes);
    return *this;
  }
};

/// Thread-safe and lock-free: record() sits on the hot path of every TLP,
/// and under multi-submitter load it is called from every host thread plus
/// whichever thread is pumping the device — so the cells are relaxed
/// atomics rather than a shared mutex. Readers snapshot cell by cell;
/// totals read while traffic is in flight are monotone lower bounds, and
/// exact once the system quiesces (which is when tests and benchmarks
/// read them).
class TrafficCounter {
 public:
  void record(Direction dir, TrafficClass cls, std::uint64_t tlps,
              std::uint64_t data_bytes, std::uint64_t wire_bytes) noexcept;

  [[nodiscard]] TrafficCell cell(Direction dir,
                                 TrafficClass cls) const noexcept;
  [[nodiscard]] TrafficCell total(Direction dir) const noexcept;
  [[nodiscard]] TrafficCell total() const noexcept;

  /// Wire bytes across both directions — the headline "PCIe traffic" the
  /// paper's figures report.
  [[nodiscard]] std::uint64_t total_wire_bytes() const noexcept {
    return total().wire_bytes;
  }
  [[nodiscard]] std::uint64_t total_data_bytes() const noexcept {
    return total().data_bytes;
  }

  void reset() noexcept;

  /// Multi-line per-class breakdown table.
  [[nodiscard]] std::string breakdown() const;

 private:
  static constexpr std::size_t kClasses =
      static_cast<std::size_t>(TrafficClass::kCount_);

  struct AtomicCell {
    std::atomic<std::uint64_t> tlps{0};
    std::atomic<std::uint64_t> data_bytes{0};
    std::atomic<std::uint64_t> wire_bytes{0};

    [[nodiscard]] TrafficCell snapshot() const noexcept {
      return {tlps.load(std::memory_order_relaxed),
              data_bytes.load(std::memory_order_relaxed),
              wire_bytes.load(std::memory_order_relaxed)};
    }
  };

  std::array<std::array<AtomicCell, kClasses>, 2> cells_{};
};

}  // namespace bx::pcie
