#include "kv/kv_engine.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace bx::kv {

KvEngine::KvEngine(nand::Ftl& ftl, SimClock& clock, Config config)
    : ftl_(ftl), clock_(clock), config_(config), next_lpn_(config.lpn_base) {
  BX_ASSERT(config.lpn_count > 0);
  BX_ASSERT(config.lpn_base + config.lpn_count <= ftl.logical_pages());
  BX_ASSERT(config.max_value_bytes + 4u + config.max_key_bytes <=
            ftl.page_size());
}

Status KvEngine::validate_key(std::string_view key) const {
  if (key.empty()) return invalid_argument("empty key");
  if (key.size() > config_.max_key_bytes) {
    return {StatusCode::kInvalidArgument, "key too large"};
  }
  return Status::ok();
}

Status KvEngine::put(std::string_view key, ConstByteSpan value) {
  BX_RETURN_IF_ERROR(validate_key(key));
  if (value.size() > config_.max_value_bytes) {
    return invalid_argument("value too large");
  }
  clock_.advance(config_.cpu_put_ns);
  memtable_.put(key, value, next_seq_++);
  ++puts_;
  return maybe_flush();
}

StatusOr<ByteVec> KvEngine::get(std::string_view key) {
  BX_RETURN_IF_ERROR(validate_key(key));
  clock_.advance(config_.cpu_get_ns);
  ++gets_;

  if (auto hit = memtable_.get(key); hit.has_value()) {
    if (hit->tombstone) return not_found("key deleted");
    return hit->value;
  }
  // Newest run first.
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (!it->covers(key)) continue;
    auto found = sstable_get(ftl_, *it, key);
    BX_RETURN_IF_ERROR(found.status());
    if (found->has_value()) {
      if ((*found)->tombstone) return not_found("key deleted");
      return (*found)->value;
    }
  }
  return not_found("key not found");
}

StatusOr<bool> KvEngine::del(std::string_view key) {
  BX_RETURN_IF_ERROR(validate_key(key));
  clock_.advance(config_.cpu_delete_ns);
  auto existing = exist(key);
  BX_RETURN_IF_ERROR(existing.status());
  memtable_.del(key, next_seq_++);
  BX_RETURN_IF_ERROR(maybe_flush());
  return *existing;
}

StatusOr<bool> KvEngine::exist(std::string_view key) {
  BX_RETURN_IF_ERROR(validate_key(key));
  clock_.advance(config_.cpu_exist_ns);
  if (auto hit = memtable_.get(key); hit.has_value()) {
    return !hit->tombstone;
  }
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (!it->covers(key)) continue;
    auto found = sstable_get(ftl_, *it, key);
    BX_RETURN_IF_ERROR(found.status());
    if (found->has_value()) return !(*found)->tombstone;
  }
  return false;
}

StatusOr<std::vector<KvEntry>> KvEngine::scan(std::string_view start,
                                              std::size_t limit) {
  // K-way merge across the memtable and every run. For each distinct key,
  // the newest source wins (memtable, then runs newest to oldest);
  // tombstones suppress output but still consume the key everywhere.
  struct RunCursor {
    const SstableMeta* run = nullptr;
    std::size_t pos = 0;

    [[nodiscard]] bool valid() const noexcept {
      return pos < run->index.size();
    }
    [[nodiscard]] std::string_view key() const noexcept {
      return run->index[pos].key;
    }
  };

  std::vector<RunCursor> cursors;  // runs_ order: oldest..newest
  cursors.reserve(runs_.size());
  for (const SstableMeta& run : runs_) {
    RunCursor cursor;
    cursor.run = &run;
    cursor.pos = static_cast<std::size_t>(
        std::lower_bound(run.index.begin(), run.index.end(), start,
                         [](const IndexEntry& e, std::string_view k) {
                           return e.key < k;
                         }) -
        run.index.begin());
    if (cursor.valid()) cursors.push_back(cursor);
  }
  auto mem_it = memtable_.seek(start);

  std::vector<KvEntry> out;
  while (out.size() < limit) {
    // Smallest key across all sources.
    std::string_view best;
    bool have = false;
    if (mem_it.valid()) {
      best = mem_it.entry().key;
      have = true;
    }
    for (const RunCursor& cursor : cursors) {
      if (cursor.valid() && (!have || cursor.key() < best)) {
        best = cursor.key();
        have = true;
      }
    }
    if (!have) break;

    // Newest version of `best` wins; every source holding it advances.
    KvEntry chosen;
    bool chosen_set = false;
    if (mem_it.valid() && mem_it.entry().key == best) {
      chosen = mem_it.entry();
      chosen_set = true;
      mem_it.next();
    }
    for (auto it = cursors.rbegin(); it != cursors.rend(); ++it) {
      if (!it->valid() || it->key() != best) continue;
      if (!chosen_set) {
        auto found = sstable_get(ftl_, *it->run, best);
        BX_RETURN_IF_ERROR(found.status());
        if (!found->has_value()) {
          return data_loss("index entry without record during scan");
        }
        chosen = std::move(**found);
        chosen_set = true;
      }
      ++it->pos;
    }
    BX_ASSERT(chosen_set);
    if (!chosen.tombstone) out.push_back(std::move(chosen));
  }
  return out;
}

StatusOr<std::uint32_t> KvEngine::iter_open(std::string_view start) {
  if (iterators_.size() >= config_.max_open_iterators) {
    return resource_exhausted("too many open iterators");
  }
  const std::uint32_t id = next_iterator_id_++;
  IteratorState state;
  state.next_key.assign(start);
  iterators_.emplace(id, std::move(state));
  return id;
}

StatusOr<std::vector<KvEntry>> KvEngine::iter_next(std::uint32_t id,
                                                   std::size_t count) {
  const auto it = iterators_.find(id);
  if (it == iterators_.end()) return not_found("unknown iterator id");
  IteratorState& state = it->second;
  if (state.exhausted || count == 0) return std::vector<KvEntry>{};

  auto batch = scan(state.next_key, count);
  BX_RETURN_IF_ERROR(batch.status());
  clock_.advance(config_.cpu_iter_per_entry_ns * batch->size());
  if (batch->size() < count) {
    state.exhausted = true;
  }
  if (!batch->empty()) {
    // Resume strictly after the last returned key: its immediate
    // lexicographic successor (key + '\0').
    state.next_key = batch->back().key;
    state.next_key.push_back('\0');
  }
  return batch;
}

Status KvEngine::iter_close(std::uint32_t id) {
  if (iterators_.erase(id) == 0) return not_found("unknown iterator id");
  return Status::ok();
}

Status KvEngine::maybe_flush() {
  if (memtable_.approximate_bytes() < config_.flush_threshold_bytes) {
    return Status::ok();
  }
  return flush();
}

StatusOr<std::vector<std::uint64_t>> KvEngine::allocate_lpns(
    std::uint32_t count) {
  if (count == 0) return std::vector<std::uint64_t>{};
  // First-fit over freed ranges.
  for (std::size_t i = 0; i < free_ranges_.size(); ++i) {
    auto& [base, len] = free_ranges_[i];
    if (len >= count) {
      std::vector<std::uint64_t> out(count);
      for (std::uint32_t j = 0; j < count; ++j) out[j] = base + j;
      base += count;
      len -= count;
      if (len == 0) {
        free_ranges_.erase(free_ranges_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      }
      return out;
    }
  }
  if (next_lpn_ + count > config_.lpn_base + config_.lpn_count) {
    return resource_exhausted("KV LPN range exhausted");
  }
  std::vector<std::uint64_t> out(count);
  for (std::uint32_t j = 0; j < count; ++j) out[j] = next_lpn_ + j;
  next_lpn_ += count;
  return out;
}

void KvEngine::release_run(const SstableMeta& meta) {
  for (std::uint32_t i = 0; i < meta.page_count; ++i) {
    const Status trimmed = ftl_.trim(meta.first_lpn + i);
    if (!trimmed.is_ok()) {
      BX_LOG_WARN << "trim failed: " << trimmed.to_string();
    }
  }
  if (meta.page_count > 0) {
    free_ranges_.emplace_back(meta.first_lpn, meta.page_count);
  }
}

Status KvEngine::flush() {
  if (memtable_.empty()) return Status::ok();

  SstableBuilder builder(ftl_.page_size());
  std::size_t entries = 0;
  for (auto it = memtable_.begin(); it.valid(); it.next()) {
    builder.add(it.entry());
    ++entries;
  }
  clock_.advance(config_.cpu_flush_per_entry_ns * entries);

  auto lpns = allocate_lpns(builder.pages_needed());
  BX_RETURN_IF_ERROR(lpns.status());
  // Background: the flush occupies NAND dies without stalling the host-
  // visible command (the memtable remains authoritative until swapped).
  auto meta = builder.finish(ftl_, *lpns, next_run_id_++,
                             nand::NandFlash::Blocking::kBackground);
  BX_RETURN_IF_ERROR(meta.status());
  runs_.push_back(std::move(meta).value());
  memtable_.clear();
  ++flushes_;

  if (runs_.size() > config_.max_runs) return compact();
  return Status::ok();
}

Status KvEngine::compact() {
  if (runs_.size() < 2) return Status::ok();
  ++compactions_;

  // Full merge of all runs, newest version wins, tombstones dropped (there
  // is nothing older for them to shadow after a full merge).
  std::map<std::string, KvEntry, std::less<>> merged;
  std::size_t scanned = 0;
  for (const SstableMeta& run : runs_) {  // oldest..newest: later overwrite
    auto all = sstable_read_all(ftl_, run);
    BX_RETURN_IF_ERROR(all.status());
    scanned += all->size();
    for (auto& entry : *all) merged[entry.key] = std::move(entry);
  }
  clock_.advance(config_.cpu_compact_per_entry_ns * scanned);

  SstableBuilder builder(ftl_.page_size());
  std::size_t kept = 0;
  for (auto& [key, entry] : merged) {
    if (entry.tombstone) continue;
    builder.add(entry);
    ++kept;
  }

  std::deque<SstableMeta> old_runs;
  old_runs.swap(runs_);

  if (kept > 0) {
    auto lpns = allocate_lpns(builder.pages_needed());
    BX_RETURN_IF_ERROR(lpns.status());
    auto meta = builder.finish(ftl_, *lpns, next_run_id_++,
                               nand::NandFlash::Blocking::kBackground);
    BX_RETURN_IF_ERROR(meta.status());
    runs_.push_back(std::move(meta).value());
  }
  for (const SstableMeta& run : old_runs) release_run(run);
  return Status::ok();
}

}  // namespace bx::kv
