// Wire conventions of the vendor KV iterate command, shared by the host
// client and the device dispatch.
//
// CDW13 layout (above the key-length byte): bits [9:8] = sub-operation,
// bits [31:10] = parameter (batch size / scan limit). The iterator id of
// kNext/kClose travels in the SQE key field as 4 little-endian bytes —
// iterators are device-side objects addressed like keys, exactly how the
// SYSTOR '23 KVSSD extends the NVMe-KV command set.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/bytes.h"
#include "common/status.h"
#include "nvme/spec.h"

namespace bx::kv::wire {

enum class IterateSubOp : std::uint8_t {
  kScan = 0,   // stateless: key = start, param = limit
  kOpen = 1,   // key = start key; CQE DW0 = iterator id
  kNext = 2,   // key = iterator id; param = max entries
  kClose = 3,  // key = iterator id
};

/// Builds the request-level aux value (the driver shifts it into CDW13).
inline std::uint32_t encode_iterate_aux(IterateSubOp subop,
                                        std::uint32_t param) noexcept {
  return (param << 2) | static_cast<std::uint32_t>(subop);
}

inline IterateSubOp decode_iterate_subop(std::uint32_t aux) noexcept {
  return static_cast<IterateSubOp>(aux & 0x3);
}
inline std::uint32_t decode_iterate_param(std::uint32_t aux) noexcept {
  return aux >> 2;
}

/// Packs an iterator id into a KV key field.
inline nvme::KvKeyFields iterator_id_key(std::uint32_t id) noexcept {
  nvme::KvKeyFields key;
  key.key_len = sizeof(id);
  std::memcpy(key.key, &id, sizeof(id));
  return key;
}

/// Reads an iterator id back out of the key bytes.
inline StatusOr<std::uint32_t> iterator_id_from_key(
    ConstByteSpan key) noexcept {
  if (key.size() != sizeof(std::uint32_t)) {
    return invalid_argument("iterator id key must be 4 bytes");
  }
  std::uint32_t id = 0;
  std::memcpy(&id, key.data(), sizeof(id));
  return id;
}

}  // namespace bx::kv::wire
