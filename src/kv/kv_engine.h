// Device-side key-value engine (the KV-SSD firmware the paper's Figure 6
// experiments run against — an LSM-style in-device store in the spirit of
// the iterator-extended OpenSSD KVSSD it cites).
//
// PUTs land in a DRAM memtable (durable on the cap-backed OpenSSD) and
// flush to NAND as sorted runs in the background; GETs check the memtable,
// then runs newest-to-oldest via their in-DRAM indexes (one NAND read per
// hit). Runs are merge-compacted when they pile up. Device-CPU costs are
// charged to the shared SimClock so Figure 6's NAND-on throughput reflects
// both transfer and firmware time.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "kv/memtable.h"
#include "kv/sstable.h"
#include "nand/ftl.h"

namespace bx::kv {

class KvEngine {
 public:
  struct Config {
    /// LPN range owned by the KV store within the shared FTL.
    std::uint64_t lpn_base = 0;
    std::uint64_t lpn_count = 0;

    std::size_t flush_threshold_bytes = 1 << 20;  // 1 MiB memtable
    std::size_t max_runs = 8;                     // compact beyond this

    std::uint8_t max_key_bytes = 16;       // NVMe-KV style SQE-resident keys
    std::uint32_t max_value_bytes = 4000;  // record must fit one page
    std::size_t max_open_iterators = 16;   // device SRAM budget

    // Device CPU costs (Arm firmware), charged per operation.
    Nanoseconds cpu_put_ns = 1'500;
    Nanoseconds cpu_get_ns = 2'000;
    Nanoseconds cpu_delete_ns = 1'200;
    Nanoseconds cpu_exist_ns = 800;
    Nanoseconds cpu_flush_per_entry_ns = 120;
    Nanoseconds cpu_compact_per_entry_ns = 250;
    Nanoseconds cpu_iter_per_entry_ns = 400;
  };

  KvEngine(nand::Ftl& ftl, SimClock& clock, Config config);

  Status put(std::string_view key, ConstByteSpan value);
  /// kNotFound if absent or deleted.
  StatusOr<ByteVec> get(std::string_view key);
  /// Returns true if the key existed.
  StatusOr<bool> del(std::string_view key);
  [[nodiscard]] StatusOr<bool> exist(std::string_view key);

  /// Up to `limit` live entries with key >= `start`, in key order.
  StatusOr<std::vector<KvEntry>> scan(std::string_view start,
                                      std::size_t limit);

  // --- stateful iterators (the SYSTOR '23 KVSSD's iterator interface,
  // which the paper's Figure 6 device implements) ---

  /// Opens an iterator positioned at the first key >= `start`; returns its
  /// id. Fails with kResourceExhausted when `max_open_iterators` are live.
  StatusOr<std::uint32_t> iter_open(std::string_view start);
  /// Returns up to `count` entries and advances the cursor. An exhausted
  /// iterator returns an empty batch (and stays open until closed).
  /// Iteration is cursor-consistent: each batch reflects live data.
  StatusOr<std::vector<KvEntry>> iter_next(std::uint32_t id,
                                           std::size_t count);
  Status iter_close(std::uint32_t id);
  [[nodiscard]] std::size_t open_iterators() const noexcept {
    return iterators_.size();
  }

  /// Forces the memtable to NAND (also used by NVMe flush).
  Status flush();

  // --- statistics / introspection ---
  [[nodiscard]] std::uint64_t puts() const noexcept { return puts_; }
  [[nodiscard]] std::uint64_t gets() const noexcept { return gets_; }
  [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }
  [[nodiscard]] std::size_t run_count() const noexcept {
    return runs_.size();
  }
  [[nodiscard]] std::size_t memtable_bytes() const noexcept {
    return memtable_.approximate_bytes();
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Status validate_key(std::string_view key) const;
  Status maybe_flush();
  Status compact();
  /// Allocates `count` contiguous LPNs from the engine's range.
  StatusOr<std::vector<std::uint64_t>> allocate_lpns(std::uint32_t count);
  void release_run(const SstableMeta& meta);

  nand::Ftl& ftl_;
  SimClock& clock_;
  Config config_;

  struct IteratorState {
    std::string next_key;  // resume position (inclusive)
    bool exhausted = false;
  };

  MemTable memtable_;
  std::deque<SstableMeta> runs_;  // oldest first
  std::unordered_map<std::uint32_t, IteratorState> iterators_;
  std::uint32_t next_iterator_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_run_id_ = 1;
  std::uint64_t next_lpn_;        // bump allocator within the range
  std::vector<std::pair<std::uint64_t, std::uint32_t>> free_ranges_;

  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace bx::kv
