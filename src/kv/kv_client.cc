#include "kv/kv_client.h"

#include <cstring>

#include "kv/kv_wire.h"

namespace bx::kv {

using driver::IoRequest;
using nvme::IoOpcode;

KvClient::KvClient(driver::NvmeDriver& driver, Options options)
    : driver_(driver), options_(options) {}

Status KvClient::fill_key(IoRequest& request, std::string_view key) {
  if (key.empty() || key.size() > nvme::KvKeyFields::kMaxKeyBytes) {
    return invalid_argument("key must be 1..16 bytes");
  }
  request.key.key_len = static_cast<std::uint8_t>(key.size());
  std::memcpy(request.key.key, key.data(), key.size());
  return Status::ok();
}

Status KvClient::put(std::string_view key, ConstByteSpan value) {
  IoRequest request;
  request.opcode = IoOpcode::kVendorKvStore;
  request.method = options_.method;
  request.write_data = value;
  BX_RETURN_IF_ERROR(fill_key(request, key));
  auto completion = driver_.execute(request, options_.qid);
  BX_RETURN_IF_ERROR(completion.status());
  last_ = *completion;
  if (!completion->ok()) {
    return internal_error("KV store failed: device status");
  }
  return Status::ok();
}

StatusOr<ByteVec> KvClient::get(std::string_view key) {
  ByteVec buffer(options_.get_buffer_bytes);
  for (int attempt = 0; attempt < 2; ++attempt) {
    IoRequest request;
    request.opcode = IoOpcode::kVendorKvRetrieve;
    request.method = options_.method;
    request.read_buffer = buffer;
    BX_RETURN_IF_ERROR(fill_key(request, key));
    auto completion = driver_.execute(request, options_.qid);
    BX_RETURN_IF_ERROR(completion.status());
    last_ = *completion;
    if (!completion->ok()) {
      const auto status = completion->status;
      if (status.type == nvme::StatusCodeType::kVendor &&
          status.code ==
              static_cast<std::uint8_t>(nvme::VendorStatus::kKvKeyNotFound)) {
        return not_found("key not found");
      }
      return internal_error("KV retrieve failed: device status");
    }
    // DW0 reports the full value size; retry with a bigger buffer if ours
    // was too small.
    if (completion->dw0 > buffer.size()) {
      buffer.resize(completion->dw0);
      continue;
    }
    buffer.resize(completion->dw0);
    return buffer;
  }
  return internal_error("value kept growing across retries");
}

StatusOr<bool> KvClient::del(std::string_view key) {
  IoRequest request;
  request.opcode = IoOpcode::kVendorKvDelete;
  request.method = options_.method;
  BX_RETURN_IF_ERROR(fill_key(request, key));
  auto completion = driver_.execute(request, options_.qid);
  BX_RETURN_IF_ERROR(completion.status());
  last_ = *completion;
  if (!completion->ok()) {
    return internal_error("KV delete failed: device status");
  }
  return completion->dw0 != 0;
}

StatusOr<bool> KvClient::exist(std::string_view key) {
  IoRequest request;
  request.opcode = IoOpcode::kVendorKvExist;
  request.method = options_.method;
  BX_RETURN_IF_ERROR(fill_key(request, key));
  auto completion = driver_.execute(request, options_.qid);
  BX_RETURN_IF_ERROR(completion.status());
  last_ = *completion;
  if (!completion->ok()) {
    return internal_error("KV exist failed: device status");
  }
  return completion->dw0 != 0;
}

namespace {

/// Parses the [u8 klen][u16 vlen][key][value]... stream.
std::vector<KvEntry> parse_entry_stream(const ByteVec& buffer,
                                        std::size_t end) {
  std::vector<KvEntry> out;
  std::size_t offset = 0;
  while (offset + 3 <= end) {
    const std::uint8_t key_len = buffer[offset];
    if (key_len == 0) break;
    std::uint16_t value_len = 0;
    std::memcpy(&value_len, buffer.data() + offset + 1, sizeof(value_len));
    if (offset + 3 + key_len + value_len > end) break;
    KvEntry entry;
    entry.key.assign(
        reinterpret_cast<const char*>(buffer.data()) + offset + 3, key_len);
    entry.value.assign(
        buffer.begin() + static_cast<std::ptrdiff_t>(offset + 3 + key_len),
        buffer.begin() +
            static_cast<std::ptrdiff_t>(offset + 3 + key_len + value_len));
    out.push_back(std::move(entry));
    offset += 3 + key_len + value_len;
  }
  return out;
}

}  // namespace

StatusOr<std::vector<KvEntry>> KvClient::scan(std::string_view start,
                                              std::uint32_t limit) {
  ByteVec buffer(64 * 1024);
  IoRequest request;
  request.opcode = IoOpcode::kVendorKvIterate;
  request.method = options_.method;
  request.read_buffer = buffer;
  request.aux = wire::encode_iterate_aux(wire::IterateSubOp::kScan, limit);
  BX_RETURN_IF_ERROR(fill_key(request, start));
  auto completion = driver_.execute(request, options_.qid);
  BX_RETURN_IF_ERROR(completion.status());
  last_ = *completion;
  if (!completion->ok()) {
    return internal_error("KV iterate failed: device status");
  }
  return parse_entry_stream(buffer, completion->bytes_returned);
}

StatusOr<std::uint32_t> KvClient::iter_open(std::string_view start) {
  IoRequest request;
  request.opcode = IoOpcode::kVendorKvIterate;
  request.method = options_.method;
  request.aux = wire::encode_iterate_aux(wire::IterateSubOp::kOpen, 0);
  BX_RETURN_IF_ERROR(fill_key(request, start));
  auto completion = driver_.execute(request, options_.qid);
  BX_RETURN_IF_ERROR(completion.status());
  last_ = *completion;
  if (!completion->ok()) return internal_error("iterator open rejected");
  return completion->dw0;
}

StatusOr<std::vector<KvEntry>> KvClient::iter_next(std::uint32_t id,
                                                   std::uint32_t count) {
  ByteVec buffer(64 * 1024);
  IoRequest request;
  request.opcode = IoOpcode::kVendorKvIterate;
  request.method = options_.method;
  request.read_buffer = buffer;
  request.aux = wire::encode_iterate_aux(wire::IterateSubOp::kNext, count);
  request.key = wire::iterator_id_key(id);
  auto completion = driver_.execute(request, options_.qid);
  BX_RETURN_IF_ERROR(completion.status());
  last_ = *completion;
  if (!completion->ok()) {
    const auto status = completion->status;
    if (status.type == nvme::StatusCodeType::kVendor &&
        status.code ==
            static_cast<std::uint8_t>(nvme::VendorStatus::kKvKeyNotFound)) {
      return not_found("unknown iterator");
    }
    return internal_error("iterator next rejected");
  }
  return parse_entry_stream(buffer, completion->bytes_returned);
}

Status KvClient::iter_close(std::uint32_t id) {
  IoRequest request;
  request.opcode = IoOpcode::kVendorKvIterate;
  request.method = options_.method;
  request.aux = wire::encode_iterate_aux(wire::IterateSubOp::kClose, 0);
  request.key = wire::iterator_id_key(id);
  auto completion = driver_.execute(request, options_.qid);
  BX_RETURN_IF_ERROR(completion.status());
  last_ = *completion;
  if (!completion->ok()) return not_found("unknown iterator");
  return Status::ok();
}

KvClient::RangeIterator& KvClient::RangeIterator::operator=(
    RangeIterator&& other) noexcept {
  if (this != &other) {
    if (client_ != nullptr) (void)client_->iter_close(id_);
    client_ = other.client_;
    id_ = other.id_;
    other.client_ = nullptr;
  }
  return *this;
}

KvClient::RangeIterator::~RangeIterator() {
  if (client_ != nullptr) (void)client_->iter_close(id_);
}

StatusOr<std::vector<KvEntry>> KvClient::RangeIterator::next(
    std::uint32_t count) {
  if (client_ == nullptr) return failed_precondition("iterator moved-from");
  return client_->iter_next(id_, count);
}

StatusOr<KvClient::RangeIterator> KvClient::range(std::string_view start) {
  auto id = iter_open(start);
  BX_RETURN_IF_ERROR(id.status());
  return RangeIterator(this, *id);
}

}  // namespace bx::kv
