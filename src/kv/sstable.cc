#include "kv/sstable.h"

#include <algorithm>
#include <cstring>

namespace bx::kv {

namespace {
constexpr std::uint32_t kRecordHeader = 4;  // key_len + flags + value_len
}  // namespace

std::uint32_t record_size(const KvEntry& entry) noexcept {
  return kRecordHeader + static_cast<std::uint32_t>(entry.key.size()) +
         static_cast<std::uint32_t>(entry.value.size());
}

SstableBuilder::SstableBuilder(std::uint32_t page_size)
    : page_size_(page_size) {
  BX_ASSERT(page_size >= 64);
}

void SstableBuilder::add(const KvEntry& entry) {
  BX_ASSERT_MSG(!entry.key.empty() && entry.key.size() <= 255,
                "key length out of range");
  BX_ASSERT_MSG(record_size(entry) <= page_size_,
                "record does not fit a page");
  BX_ASSERT_MSG(last_key_.empty() || entry.key > last_key_,
                "entries must be added in increasing key order");
  last_key_ = entry.key;

  const std::uint32_t size = record_size(entry);
  if (pages_.empty() || cursor_ + size > page_size_) {
    pages_.emplace_back(page_size_, 0);  // key_len 0 == page terminator
    cursor_ = 0;
  }
  ByteVec& page = pages_.back();
  page[cursor_] = static_cast<Byte>(entry.key.size());
  page[cursor_ + 1] = entry.tombstone ? 1 : 0;
  const auto value_len = static_cast<std::uint16_t>(entry.value.size());
  std::memcpy(page.data() + cursor_ + 2, &value_len, sizeof(value_len));
  std::memcpy(page.data() + cursor_ + kRecordHeader, entry.key.data(),
              entry.key.size());
  std::memcpy(page.data() + cursor_ + kRecordHeader + entry.key.size(),
              entry.value.data(), entry.value.size());

  IndexEntry index;
  index.key = entry.key;
  index.page = static_cast<std::uint32_t>(pages_.size() - 1);
  index.offset = static_cast<std::uint16_t>(cursor_);
  index.seq = entry.seq;
  index.tombstone = entry.tombstone;
  index_.push_back(std::move(index));

  cursor_ += size;
}

StatusOr<SstableMeta> SstableBuilder::finish(
    nand::Ftl& ftl, const std::vector<std::uint64_t>& lpns, std::uint64_t id,
    nand::NandFlash::Blocking blocking) {
  if (lpns.size() != pages_.size()) {
    return invalid_argument("LPN count does not match page count");
  }
  for (std::size_t i = 1; i < lpns.size(); ++i) {
    if (lpns[i] != lpns[0] + i) {
      return invalid_argument("run LPNs must be contiguous");
    }
  }
  for (std::size_t i = 0; i < pages_.size(); ++i) {
    BX_RETURN_IF_ERROR(ftl.write(lpns[i], pages_[i], blocking));
  }
  SstableMeta meta;
  meta.id = id;
  meta.first_lpn = lpns.empty() ? 0 : lpns.front();
  meta.page_count = static_cast<std::uint32_t>(pages_.size());
  meta.index = std::move(index_);
  // The engine hands out contiguous LPN ranges; record the first.
  return meta;
}

namespace {

/// Parses the record at `offset`; returns nullopt past the terminator.
std::optional<KvEntry> parse_record(ConstByteSpan page,
                                    std::uint32_t offset) {
  if (offset + kRecordHeader > page.size()) return std::nullopt;
  const std::uint8_t key_len = page[offset];
  if (key_len == 0) return std::nullopt;
  std::uint16_t value_len = 0;
  std::memcpy(&value_len, page.data() + offset + 2, sizeof(value_len));
  if (offset + kRecordHeader + key_len + value_len > page.size()) {
    return std::nullopt;
  }
  KvEntry entry;
  entry.tombstone = page[offset + 1] != 0;
  entry.key.assign(
      reinterpret_cast<const char*>(page.data() + offset + kRecordHeader),
      key_len);
  entry.value.assign(
      page.begin() + offset + kRecordHeader + key_len,
      page.begin() + offset + kRecordHeader + key_len + value_len);
  return entry;
}

}  // namespace

StatusOr<std::optional<KvEntry>> sstable_get(nand::Ftl& ftl,
                                             const SstableMeta& meta,
                                             std::string_view key) {
  const auto it = std::lower_bound(
      meta.index.begin(), meta.index.end(), key,
      [](const IndexEntry& entry, std::string_view k) {
        return entry.key < k;
      });
  if (it == meta.index.end() || it->key != key) {
    return std::optional<KvEntry>{};
  }
  ByteVec page(ftl.page_size());
  BX_RETURN_IF_ERROR(ftl.read(meta.first_lpn + it->page, page));
  auto entry = parse_record(page, it->offset);
  if (!entry.has_value() || entry->key != key) {
    return data_loss("index points at a corrupt record");
  }
  entry->seq = it->seq;
  return std::optional<KvEntry>{std::move(*entry)};
}

StatusOr<std::vector<KvEntry>> sstable_read_all(nand::Ftl& ftl,
                                                const SstableMeta& meta) {
  std::vector<KvEntry> out;
  out.reserve(meta.index.size());
  ByteVec page(ftl.page_size());
  std::uint32_t loaded_page = UINT32_MAX;
  for (const IndexEntry& index : meta.index) {
    if (index.page != loaded_page) {
      BX_RETURN_IF_ERROR(ftl.read(meta.first_lpn + index.page, page));
      loaded_page = index.page;
    }
    auto entry = parse_record(page, index.offset);
    if (!entry.has_value()) return data_loss("corrupt record during scan");
    entry->seq = index.seq;
    out.push_back(std::move(*entry));
  }
  return out;
}

}  // namespace bx::kv
