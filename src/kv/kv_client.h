// Host-side key-value API over NVMe passthrough (§2.1, Figure 2): the
// user-level library that encodes KV operations as vendor NVMe commands.
// The key (<= 16 bytes) rides inside the SQE; the value is the payload the
// transfer method under test moves.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "driver/nvme_driver.h"
#include "kv/memtable.h"

namespace bx::kv {

class KvClient {
 public:
  struct Options {
    std::uint16_t qid = 1;
    driver::TransferMethod method = driver::TransferMethod::kPrp;
    /// GET staging buffer; grown on demand if a value is larger.
    std::uint32_t get_buffer_bytes = 4096;
  };

  KvClient(driver::NvmeDriver& driver, Options options);

  Status put(std::string_view key, ConstByteSpan value);
  StatusOr<ByteVec> get(std::string_view key);
  /// True if the key existed before deletion.
  StatusOr<bool> del(std::string_view key);
  StatusOr<bool> exist(std::string_view key);
  /// Up to `limit` entries with key >= start (stateless one-shot scan).
  StatusOr<std::vector<KvEntry>> scan(std::string_view start,
                                      std::uint32_t limit);

  // --- stateful device-side iterators (SYSTOR '23 interface) ---

  StatusOr<std::uint32_t> iter_open(std::string_view start);
  StatusOr<std::vector<KvEntry>> iter_next(std::uint32_t id,
                                           std::uint32_t count);
  Status iter_close(std::uint32_t id);

  /// RAII handle over an open device iterator.
  class RangeIterator {
   public:
    RangeIterator(RangeIterator&& other) noexcept { *this = std::move(other); }
    RangeIterator& operator=(RangeIterator&& other) noexcept;
    RangeIterator(const RangeIterator&) = delete;
    RangeIterator& operator=(const RangeIterator&) = delete;
    ~RangeIterator();

    /// Next batch; empty once exhausted.
    StatusOr<std::vector<KvEntry>> next(std::uint32_t count);
    [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

   private:
    friend class KvClient;
    RangeIterator(KvClient* client, std::uint32_t id) noexcept
        : client_(client), id_(id) {}
    KvClient* client_ = nullptr;
    std::uint32_t id_ = 0;
  };

  /// Opens an RAII iterator at `start` (closed automatically).
  StatusOr<RangeIterator> range(std::string_view start);

  /// Completion of the most recent operation (latency, status).
  [[nodiscard]] const driver::Completion& last_completion() const noexcept {
    return last_;
  }
  void set_method(driver::TransferMethod method) noexcept {
    options_.method = method;
  }

 private:
  static Status fill_key(driver::IoRequest& request, std::string_view key);

  driver::NvmeDriver& driver_;
  Options options_;
  driver::Completion last_{};
};

}  // namespace bx::kv
