#include "kv/memtable.h"

#include "common/status.h"

namespace bx::kv {

MemTable::MemTable(std::uint64_t seed)
    : head_(std::make_unique<Node>()), rng_(seed) {
  head_->height = kMaxHeight;
}

int MemTable::random_height() {
  int height = 1;
  // p = 1/4 per extra level.
  while (height < kMaxHeight && (rng_.next() & 3) == 0) ++height;
  return height;
}

void MemTable::find_predecessors(std::string_view key,
                                 Node* result[kMaxHeight]) const {
  Node* node = head_.get();
  for (int level = kMaxHeight - 1; level >= 0; --level) {
    while (node->next[level] != nullptr &&
           node->next[level]->entry.key < key) {
      node = node->next[level];
    }
    result[level] = node;
  }
}

bool MemTable::put(std::string_view key, ConstByteSpan value,
                   std::uint64_t seq) {
  Node* preds[kMaxHeight];
  find_predecessors(key, preds);
  Node* existing = preds[0]->next[0];
  if (existing != nullptr && existing->entry.key == key) {
    bytes_ -= existing->entry.value.size();
    existing->entry.value.assign(value.begin(), value.end());
    existing->entry.seq = seq;
    existing->entry.tombstone = false;
    bytes_ += value.size();
    return false;
  }

  auto node = std::make_unique<Node>();
  node->entry.key.assign(key);
  node->entry.value.assign(value.begin(), value.end());
  node->entry.seq = seq;
  node->height = random_height();
  for (int level = 0; level < node->height; ++level) {
    node->next[level] = preds[level]->next[level];
    preds[level]->next[level] = node.get();
  }
  if (node->height > height_) height_ = node->height;
  bytes_ += key.size() + value.size() + sizeof(Node);
  ++count_;
  nodes_.push_back(std::move(node));
  return true;
}

void MemTable::del(std::string_view key, std::uint64_t seq) {
  // A tombstone is a put with the tombstone flag: it must shadow older
  // versions in flushed runs, so it cannot simply remove the node.
  put(key, {}, seq);
  Node* preds[kMaxHeight];
  find_predecessors(key, preds);
  Node* node = preds[0]->next[0];
  BX_ASSERT(node != nullptr && node->entry.key == key);
  node->entry.tombstone = true;
}

std::optional<KvEntry> MemTable::get(std::string_view key) const {
  Node* preds[kMaxHeight];
  find_predecessors(key, preds);
  const Node* node = preds[0]->next[0];
  if (node != nullptr && node->entry.key == key) return node->entry;
  return std::nullopt;
}

void MemTable::Iterator::next() noexcept {
  node_ = static_cast<const Node*>(node_)->next[0];
}

const KvEntry& MemTable::Iterator::entry() const noexcept {
  return static_cast<const Node*>(node_)->entry;
}

MemTable::Iterator MemTable::begin() const noexcept {
  return Iterator(head_->next[0]);
}

MemTable::Iterator MemTable::seek(std::string_view key) const noexcept {
  Node* preds[kMaxHeight];
  find_predecessors(key, preds);
  return Iterator(preds[0]->next[0]);
}

void MemTable::clear() {
  for (auto& next : head_->next) next = nullptr;
  nodes_.clear();
  height_ = 1;
  count_ = 0;
  bytes_ = 0;
}

}  // namespace bx::kv
