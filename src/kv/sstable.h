// Immutable sorted runs persisted through the FTL.
//
// Page format: records packed back-to-back, never spanning pages:
//   [u8 key_len][u8 flags][u16 value_len][key bytes][value bytes]
// flags bit0 = tombstone. A key_len of 0 terminates a page early.
//
// Like PinK, the index is kept wholly in device DRAM (one entry per
// record: key, page, offset), so a GET is one index lookup + one NAND page
// read.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "kv/memtable.h"
#include "nand/ftl.h"

namespace bx::kv {

struct IndexEntry {
  std::string key;
  std::uint32_t page = 0;    // page index within the run
  std::uint16_t offset = 0;  // byte offset within the page
  std::uint64_t seq = 0;
  bool tombstone = false;
};

struct SstableMeta {
  std::uint64_t id = 0;
  std::uint64_t first_lpn = 0;
  std::uint32_t page_count = 0;
  std::vector<IndexEntry> index;  // sorted by key

  [[nodiscard]] bool covers(std::string_view key) const noexcept {
    return !index.empty() && key >= index.front().key &&
           key <= index.back().key;
  }
};

/// Record-level size of one entry on a page.
std::uint32_t record_size(const KvEntry& entry) noexcept;

/// Builds one run from sorted entries. `lpns` must provide one logical page
/// per output page; `pages_needed` computes that count up front. Pages are
/// programmed through the FTL with the given blocking mode.
class SstableBuilder {
 public:
  explicit SstableBuilder(std::uint32_t page_size);

  /// Entries must arrive in strictly increasing key order.
  void add(const KvEntry& entry);

  [[nodiscard]] std::uint32_t pages_needed() const noexcept {
    return static_cast<std::uint32_t>(pages_.size());
  }
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return index_.size();
  }

  /// Writes the pages to `lpns[0..pages_needed)` and returns the metadata.
  StatusOr<SstableMeta> finish(nand::Ftl& ftl,
                               const std::vector<std::uint64_t>& lpns,
                               std::uint64_t id,
                               nand::NandFlash::Blocking blocking);

 private:
  std::uint32_t page_size_;
  std::vector<ByteVec> pages_;
  std::uint32_t cursor_ = 0;  // offset within the current page
  std::vector<IndexEntry> index_;
  std::string last_key_;
};

/// Point lookup in one run: index binary search + one page read.
/// Returns nullopt if the run does not contain the key.
StatusOr<std::optional<KvEntry>> sstable_get(nand::Ftl& ftl,
                                             const SstableMeta& meta,
                                             std::string_view key);

/// Reads every entry of the run in key order (compaction input).
StatusOr<std::vector<KvEntry>> sstable_read_all(nand::Ftl& ftl,
                                                const SstableMeta& meta);

}  // namespace bx::kv
