// In-device-DRAM memtable: a probabilistic skiplist keyed by byte strings.
//
// The KV engine batches incoming PUTs here (each PUT is individually
// persisted to the value-log semantics the paper's KV-SSD assumes —
// in-device DRAM on the OpenSSD is battery/cap-backed, so a memtable insert
// counts as durable) and flushes to NAND as sorted runs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace bx::kv {

struct KvEntry {
  std::string key;
  ByteVec value;
  std::uint64_t seq = 0;
  bool tombstone = false;
};

class MemTable {
 public:
  explicit MemTable(std::uint64_t seed = 0xbadc0ffee0ddf00dULL);

  /// Inserts or overwrites `key`. Returns true if the key was new.
  bool put(std::string_view key, ConstByteSpan value, std::uint64_t seq);

  /// Records a deletion (tombstone) for `key`.
  void del(std::string_view key, std::uint64_t seq);

  /// Latest state of `key`, including tombstones (callers must check).
  [[nodiscard]] std::optional<KvEntry> get(std::string_view key) const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t approximate_bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Ordered in-order iteration (for flush and scans).
  class Iterator {
   public:
    [[nodiscard]] bool valid() const noexcept { return node_ != nullptr; }
    void next() noexcept;
    [[nodiscard]] const KvEntry& entry() const noexcept;

   private:
    friend class MemTable;
    explicit Iterator(const void* node) noexcept : node_(node) {}
    const void* node_;
  };

  [[nodiscard]] Iterator begin() const noexcept;
  /// First entry with key >= `key`.
  [[nodiscard]] Iterator seek(std::string_view key) const noexcept;

  void clear();

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    KvEntry entry;
    int height = 1;
    Node* next[kMaxHeight] = {};
  };

  int random_height();
  /// Greatest node with key < `key` at every level; result[0]->next[0] is
  /// the candidate.
  void find_predecessors(std::string_view key,
                         Node* result[kMaxHeight]) const;

  std::unique_ptr<Node> head_;
  std::vector<std::unique_ptr<Node>> nodes_;  // ownership pool
  int height_ = 1;
  std::size_t count_ = 0;
  std::size_t bytes_ = 0;
  Rng rng_;
};

}  // namespace bx::kv
