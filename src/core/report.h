// Consolidated system report: one text snapshot of everything observable
// in a Testbed — link traffic by class, controller transfer statistics,
// NAND/FTL health, and the KV engine's LSM state. The examples print it;
// operators of a real deployment would scrape the same numbers from the
// vendor log page.
#pragma once

#include <string>

#include "core/testbed.h"

namespace bx::core {

std::string system_report(Testbed& testbed);

}  // namespace bx::core
