#include "core/stress.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <random>
#include <sstream>
#include <thread>

#include "common/bytes.h"
#include "core/testbed.h"
#include "nvme/bandslim_wire.h"
#include "nvme/inline_wire.h"
#include "nvme/queue.h"
#include "nvme/spec.h"

namespace bx::core {

namespace {

using driver::TransferMethod;

/// One planned submission: the payload is owned here so spans stay valid
/// from submit through the ring walk.
struct Op {
  std::uint16_t submitter = 0;
  std::uint16_t qid = 1;
  TransferMethod method = TransferMethod::kPrp;
  ByteVec payload;
  driver::Submitted handle{};
  bool submitted = false;
};

/// SQ slots one op occupies (the burst-budget unit).
std::uint32_t slots_for(TransferMethod method, std::uint64_t len) {
  switch (method) {
    case TransferMethod::kPrp:
    case TransferMethod::kSgl:
      return 1;
    case TransferMethod::kByteExpress:
      return 1 + nvme::inline_chunk::raw_chunks_for(len);
    case TransferMethod::kByteExpressOoo:
      return 1 + nvme::inline_chunk::ooo_chunks_for(len);
    case TransferMethod::kBandSlim:
      return nvme::bandslim::commands_for(len);
    case TransferMethod::kHybrid:
    case TransferMethod::kAuto:
      break;
  }
  BX_ASSERT_MSG(false, "hybrid/auto must be resolved before budgeting");
  return 0;
}

/// Mirrors NvmeDriver::resolve_method for the write-only ops the harness
/// issues (len >= 1 and <= max_inline, so only the hybrid switch matters).
TransferMethod effective_method(TransferMethod method, std::uint64_t len,
                                const driver::NvmeDriver::Config& config) {
  if (method == TransferMethod::kHybrid) {
    return len <= config.hybrid_threshold_bytes ? TransferMethod::kByteExpress
                                                : TransferMethod::kPrp;
  }
  return method;
}

constexpr int kTrafficClasses = static_cast<int>(pcie::TrafficClass::kCount_);

struct CellSnapshot {
  pcie::TrafficCell cells[2][kTrafficClasses];
};

CellSnapshot snapshot_traffic(pcie::TrafficCounter& traffic) {
  CellSnapshot snap;
  for (int d = 0; d < 2; ++d) {
    for (int c = 0; c < kTrafficClasses; ++c) {
      snap.cells[d][c] = traffic.cell(static_cast<pcie::Direction>(d),
                                      static_cast<pcie::TrafficClass>(c));
    }
  }
  return snap;
}

std::uint64_t data_delta(const CellSnapshot& before, const CellSnapshot& after,
                         pcie::Direction dir, pcie::TrafficClass cls) {
  const auto d = static_cast<int>(dir);
  const auto c = static_cast<int>(cls);
  return after.cells[d][c].data_bytes - before.cells[d][c].data_bytes;
}

nvme::TransferStatsLog stats_delta(const nvme::TransferStatsLog& before,
                                   const nvme::TransferStatsLog& after) {
  nvme::TransferStatsLog delta;
  delta.commands_processed = after.commands_processed - before.commands_processed;
  delta.inline_chunks_fetched =
      after.inline_chunks_fetched - before.inline_chunks_fetched;
  delta.bandslim_fragments = after.bandslim_fragments - before.bandslim_fragments;
  delta.prp_transactions = after.prp_transactions - before.prp_transactions;
  delta.sgl_transactions = after.sgl_transactions - before.sgl_transactions;
  delta.completions_posted =
      after.completions_posted - before.completions_posted;
  delta.ooo_payloads_reassembled =
      after.ooo_payloads_reassembled - before.ooo_payloads_reassembled;
  delta.fetch_stage_total_ns =
      after.fetch_stage_total_ns - before.fetch_stage_total_ns;
  return delta;
}

/// Collects the first invariant violation; later ones are dropped so the
/// report points at the root failure.
class FailureSink {
 public:
  void fail(const std::string& message) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (failed_) return;
    failed_ = true;
    message_ = message;
  }
  [[nodiscard]] bool failed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return failed_;
  }
  [[nodiscard]] std::string message() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return message_;
  }

 private:
  mutable std::mutex mutex_;
  bool failed_ = false;
  std::string message_;
};

/// Walks [start_tail, end_tail) of one queue's raw SQ memory and verifies
/// invariant 1 (layout): command/chunk adjacency for ByteExpress,
/// in-order offsets for BandSlim streams, one command slot per op.
void verify_ring_layout(Testbed& bed, std::uint16_t qid,
                        std::uint32_t start_tail,
                        const std::vector<Op*>& queue_ops,
                        FailureSink& sink) {
  nvme::SqRing& sq = bed.driver().sq_for_test(qid);
  const std::uint32_t depth = sq.depth();
  const std::uint32_t end_tail = sq.tail();
  const std::uint32_t walked = (end_tail + depth - start_tail) % depth;

  std::map<std::uint16_t, Op*> by_cid;
  std::uint64_t expected_slots = 0;
  for (Op* op : queue_ops) {
    by_cid[op->handle.cid] = op;
    expected_slots += slots_for(op->method, op->payload.size());
  }
  if (walked != expected_slots) {
    std::ostringstream msg;
    msg << "qid " << qid << ": ring advanced " << walked << " slots, ops need "
        << expected_slots;
    sink.fail(msg.str());
    return;
  }

  struct ChunkRun {
    Op* op = nullptr;
    std::uint32_t next = 0;
    std::uint32_t total = 0;
    std::size_t offset = 0;
    bool ooo = false;
    std::uint32_t payload_id = 0;
  };
  struct StreamRun {
    Op* op = nullptr;
    std::uint16_t next_index = 0;
    std::uint32_t next_offset = 0;
  };
  std::optional<ChunkRun> run;
  std::map<std::uint16_t, StreamRun> streams;
  std::size_t commands_seen = 0;

  const auto fail_at = [&](std::uint32_t index, const std::string& what) {
    std::ostringstream msg;
    msg << "qid " << qid << " slot " << index << ": " << what;
    sink.fail(msg.str());
  };

  for (std::uint32_t i = 0; i < walked; ++i) {
    const std::uint32_t index = (start_tail + i) % depth;
    nvme::SqSlot slot;
    bed.memory().read(sq.slot_addr(index), {slot.raw, sizeof(slot.raw)});

    if (run) {
      // Invariant 1a: the slots after a ByteExpress command are its chunks,
      // consecutive and byte-exact.
      const ConstByteSpan payload{run->op->payload.data(),
                                  run->op->payload.size()};
      if (run->ooo) {
        if (!nvme::inline_chunk::is_ooo_chunk(slot)) {
          return fail_at(index, "expected OOO chunk, found other slot");
        }
        const auto header = nvme::inline_chunk::decode_ooo_header(slot);
        if (header.payload_id != run->payload_id ||
            header.chunk_no != run->next ||
            header.total_chunks != run->total) {
          return fail_at(index, "OOO chunk header mismatch");
        }
        const auto data = nvme::inline_chunk::ooo_chunk_data(slot, header);
        if (data.size() !=
                std::min<std::size_t>(nvme::inline_chunk::kOooChunkCapacity,
                                      payload.size() - run->offset) ||
            std::memcmp(data.data(), payload.data() + run->offset,
                        data.size()) != 0) {
          return fail_at(index, "OOO chunk payload mismatch");
        }
        run->offset += data.size();
      } else {
        const std::size_t take =
            std::min<std::size_t>(nvme::inline_chunk::kRawChunkCapacity,
                                  payload.size() - run->offset);
        if (std::memcmp(slot.raw, payload.data() + run->offset, take) != 0) {
          return fail_at(index, "raw chunk payload mismatch");
        }
        run->offset += take;
      }
      if (++run->next == run->total) run.reset();
      continue;
    }

    nvme::SubmissionQueueEntry sqe;
    std::memcpy(&sqe, slot.raw, sizeof(sqe));

    if (sqe.opcode ==
        static_cast<std::uint8_t>(nvme::IoOpcode::kVendorBandSlimFragment)) {
      // Invariant 1b: fragments of one stream arrive in index/offset order
      // (other submitters' entries may interleave between them).
      const auto fragment = nvme::bandslim::decode_fragment(sqe);
      auto it = streams.find(fragment.stream_id);
      if (it == streams.end()) {
        return fail_at(index, "fragment before its BandSlim header");
      }
      StreamRun& stream = it->second;
      if (fragment.index != stream.next_index ||
          fragment.offset != stream.next_offset) {
        return fail_at(index, "BandSlim fragment out of order");
      }
      const auto data = nvme::bandslim::fragment_payload(sqe, fragment);
      if (fragment.offset + fragment.length > stream.op->payload.size() ||
          std::memcmp(data.data(),
                      stream.op->payload.data() + fragment.offset,
                      fragment.length) != 0) {
        return fail_at(index, "BandSlim fragment payload mismatch");
      }
      ++stream.next_index;
      stream.next_offset += fragment.length;
      continue;
    }

    // A real command: must belong to exactly one planned op.
    auto it = by_cid.find(sqe.cid);
    if (it == by_cid.end()) {
      return fail_at(index, "command slot with unknown cid");
    }
    Op* op = it->second;
    ++commands_seen;
    switch (op->method) {
      case TransferMethod::kByteExpress: {
        if (sqe.inline_length() != op->payload.size()) {
          return fail_at(index, "inline length mismatch");
        }
        run = ChunkRun{op, 0,
                       nvme::inline_chunk::raw_chunks_for(op->payload.size()),
                       0, false, 0};
        break;
      }
      case TransferMethod::kByteExpressOoo: {
        if (!nvme::inline_chunk::sqe_is_ooo(sqe)) {
          return fail_at(index, "OOO command not marked OOO");
        }
        run = ChunkRun{op, 0,
                       nvme::inline_chunk::ooo_chunks_for(op->payload.size()),
                       0, true, nvme::inline_chunk::sqe_ooo_payload_id(sqe)};
        break;
      }
      case TransferMethod::kBandSlim: {
        if (!nvme::bandslim::is_fragmented_header(sqe)) {
          return fail_at(index, "BandSlim command without header marker");
        }
        const std::uint16_t stream_id = nvme::bandslim::header_stream_id(sqe);
        const auto embedded = nvme::bandslim::header_embedded_payload(sqe);
        if (embedded.size() > op->payload.size() ||
            std::memcmp(embedded.data(), op->payload.data(),
                        embedded.size()) != 0) {
          return fail_at(index, "BandSlim embedded payload mismatch");
        }
        if (!streams
                 .emplace(stream_id,
                          StreamRun{op, 0,
                                    static_cast<std::uint32_t>(
                                        embedded.size())})
                 .second) {
          return fail_at(index, "duplicate BandSlim stream id in round");
        }
        break;
      }
      case TransferMethod::kPrp:
      case TransferMethod::kSgl:
        break;
      case TransferMethod::kHybrid:
      case TransferMethod::kAuto:
        return fail_at(index, "unresolved hybrid/auto op");
    }
  }

  if (run) {
    sink.fail("qid " + std::to_string(qid) +
              ": ring ended inside a chunk run");
    return;
  }
  if (commands_seen != queue_ops.size()) {
    sink.fail("qid " + std::to_string(qid) + ": walked " +
              std::to_string(commands_seen) + " commands, expected " +
              std::to_string(queue_ops.size()));
    return;
  }
  for (const auto& [stream_id, stream] : streams) {
    if (stream.next_offset != stream.op->payload.size()) {
      sink.fail("qid " + std::to_string(qid) + ": BandSlim stream " +
                std::to_string(stream_id) + " incomplete in ring");
      return;
    }
  }
}

}  // namespace

StressResult run_stress(const StressOptions& options) {
  StressResult result;
  if (options.submitters == 0 || options.io_queues == 0 ||
      options.rounds == 0 || options.methods.empty() ||
      options.max_payload_bytes == 0) {
    result.status = invalid_argument("bad stress options");
    result.failure = "bad stress options";
    return result;
  }

  // Small geometry keeps construction and NAND timing cheap; the stress
  // surface is the host path, not the flash back end.
  TestbedConfig config;
  config.driver.io_queue_count = options.io_queues;
  config.driver.io_queue_depth = options.queue_depth;
  config.ssd.geometry.channels = 2;
  config.ssd.geometry.ways = 2;
  config.ssd.geometry.blocks_per_die = 64;
  config.ssd.geometry.pages_per_block = 64;
  config.ssd.geometry.page_size = 4096;
  config.ssd.nand_timing.read_ns = 5'000;
  config.ssd.nand_timing.program_ns = 20'000;
  config.ssd.nand_timing.erase_ns = 100'000;
  config.ssd.nand_timing.channel_transfer_ns = 500;
  config.trace_enabled = options.capture_trace;
  Testbed bed(config);

  // Payloads must always be submittable with the planned method: cap at
  // the inline bound and what a ring burst can hold.
  const std::uint32_t inline_cap =
      std::min(config.driver.max_inline_bytes,
               (options.queue_depth - 5) *
                   nvme::inline_chunk::kOooChunkCapacity);
  const std::uint32_t payload_cap =
      std::min(options.max_payload_bytes, inline_cap);

  FailureSink sink;
  std::mt19937_64 rng(options.seed);

  const auto barred_doorbells = [&](bool cq) {
    std::uint64_t total = 0;
    for (std::uint16_t qid = 1; qid <= options.io_queues; ++qid) {
      total += cq ? bed.bar().cq_doorbell_writes(qid)
                  : bed.bar().sq_doorbell_writes(qid);
    }
    return total;
  };

  const nvme::TransferStatsLog run_stats_before =
      bed.controller().transfer_stats();
  const std::uint64_t run_sq_db_before = barred_doorbells(false);
  const std::uint64_t run_cq_db_before = barred_doorbells(true);
  const std::uint64_t run_wire_before = bed.traffic().total_wire_bytes();

  for (std::uint32_t round = 0; round < options.rounds && !sink.failed();
       ++round) {
    // ---- plan: seeded ops, budgeted so each queue's burst fits its ring
    // without the device fetching mid-burst.
    std::vector<std::unique_ptr<Op>> ops;
    std::vector<std::uint32_t> slots_used(options.io_queues + 1, 0);
    const std::uint32_t budget = options.queue_depth - 4;
    for (std::uint32_t i = 0; i < options.ops_per_round; ++i) {
      auto op = std::make_unique<Op>();
      op->submitter =
          static_cast<std::uint16_t>(rng() % options.submitters);
      op->qid = static_cast<std::uint16_t>(1 + rng() % options.io_queues);
      const TransferMethod requested =
          options.methods[rng() % options.methods.size()];
      const std::uint32_t len =
          1 + static_cast<std::uint32_t>(rng() % payload_cap);
      op->method = effective_method(requested, len, config.driver);
      op->payload.resize(len);
      const auto fill = static_cast<Byte>(rng());
      for (std::uint32_t b = 0; b < len; ++b) {
        op->payload[b] = static_cast<Byte>(fill + b * 7);
      }
      const std::uint32_t need = slots_for(op->method, len);
      if (slots_used[op->qid] + need > budget) continue;  // burst full
      slots_used[op->qid] += need;
      ops.push_back(std::move(op));
    }
    if (ops.empty()) continue;

    // ---- snapshot the observable state the invariants are checked against.
    std::vector<std::uint32_t> start_tails(options.io_queues + 1, 0);
    std::vector<std::uint64_t> sq_db_before(options.io_queues + 1, 0);
    std::vector<std::uint64_t> cq_db_before(options.io_queues + 1, 0);
    for (std::uint16_t qid = 1; qid <= options.io_queues; ++qid) {
      start_tails[qid] = bed.driver().sq_for_test(qid).tail();
      sq_db_before[qid] = bed.bar().sq_doorbell_writes(qid);
      cq_db_before[qid] = bed.bar().cq_doorbell_writes(qid);
    }
    const nvme::TransferStatsLog device_before =
        bed.controller().transfer_stats();
    const CellSnapshot traffic_before = snapshot_traffic(bed.traffic());

    // ---- submit phase. The unit of scheduling is a *batch*: with
    // batch_depth 1 every batch is a single op and goes through the
    // classic submit() path; with batch_depth > 1 each submitter's FIFO
    // list is cut into runs of consecutive same-queue ops (<= depth)
    // issued via submit_batch(), which coalesces their doorbells.
    const std::uint32_t batch_depth =
        std::max<std::uint32_t>(1, options.batch_depth);
    const auto submit_unit = [&](std::vector<Op*>& batch) {
      if (batch_depth <= 1) {
        Op& op = *batch.front();
        driver::IoRequest request;
        request.opcode = nvme::IoOpcode::kVendorRawWrite;
        request.method = op.method;
        request.write_data = {op.payload.data(), op.payload.size()};
        auto handle = bed.driver().submit(request, op.qid);
        if (!handle.is_ok()) {
          sink.fail("submit failed: " + handle.status().message());
          return;
        }
        op.handle = *handle;
        op.submitted = true;
        return;
      }
      std::vector<driver::IoRequest> requests;
      requests.reserve(batch.size());
      for (Op* op : batch) {
        driver::IoRequest request;
        request.opcode = nvme::IoOpcode::kVendorRawWrite;
        request.method = op->method;
        request.write_data = {op->payload.data(), op->payload.size()};
        requests.push_back(request);
      }
      auto batched = bed.driver().submit_batch(
          {requests.data(), requests.size()}, batch.front()->qid);
      if (!batched.is_ok()) {
        sink.fail("submit_batch failed: " + batched.status().message());
        return;
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i]->handle = batched->handles[i];
        batch[i]->submitted = true;
      }
    };
    const auto reap_op = [&](Op& op) {
      if (!op.submitted) return;
      auto completion = bed.driver().wait(op.handle);
      if (!completion.is_ok()) {
        sink.fail("wait failed: " + completion.status().message());
        return;
      }
      if (!completion->ok()) {
        sink.fail("device rejected a stress op");
      }
    };

    // Per-submitter FIFO work lists, then cut into batch units.
    std::vector<std::vector<Op*>> assigned(options.submitters);
    for (auto& op : ops) assigned[op->submitter].push_back(op.get());
    std::vector<std::vector<std::vector<Op*>>> units(options.submitters);
    for (std::uint16_t s = 0; s < options.submitters; ++s) {
      std::size_t i = 0;
      while (i < assigned[s].size()) {
        std::vector<Op*> batch{assigned[s][i++]};
        while (batch.size() < batch_depth && i < assigned[s].size() &&
               assigned[s][i]->qid == batch.front()->qid) {
          batch.push_back(assigned[s][i++]);
        }
        units[s].push_back(std::move(batch));
      }
    }

    // Invariant-2 expectation under coalescing: within one batch, each
    // maximal run of coalescable (non-BandSlim) commands shares exactly
    // one doorbell MWr; a BandSlim op breaks the run and rings once per
    // serialized command. Depth 1 degenerates to one bell per command.
    std::vector<std::uint64_t> expected_sq_db(options.io_queues + 1, 0);
    for (std::uint16_t s = 0; s < options.submitters; ++s) {
      for (const auto& batch : units[s]) {
        const std::uint16_t qid = batch.front()->qid;
        bool in_run = false;
        for (const Op* op : batch) {
          if (op->method == TransferMethod::kBandSlim) {
            expected_sq_db[qid] +=
                nvme::bandslim::commands_for(op->payload.size());
            in_run = false;
          } else if (!in_run) {
            ++expected_sq_db[qid];
            in_run = true;
          }
        }
      }
    }

    const auto verify_round_layout = [&] {
      for (std::uint16_t qid = 1; qid <= options.io_queues; ++qid) {
        std::vector<Op*> queue_ops;
        for (auto& op : ops) {
          if (op->qid == qid) queue_ops.push_back(op.get());
        }
        verify_ring_layout(bed, qid, start_tails[qid], queue_ops, sink);
      }
    };

    if (options.use_os_threads) {
      const auto phase = [&](auto& lists, const auto& step) {
        std::vector<std::thread> threads;
        threads.reserve(options.submitters);
        for (std::uint16_t s = 0; s < options.submitters; ++s) {
          threads.emplace_back([&, s] {
            for (auto& unit : lists[s]) {
              if (sink.failed()) return;
              step(unit);
            }
          });
        }
        for (auto& thread : threads) thread.join();
      };
      phase(units, [&](std::vector<Op*>& batch) { submit_unit(batch); });
      if (!sink.failed()) verify_round_layout();
      phase(assigned, [&](Op* op) { reap_op(*op); });
    } else {
      // Cooperative deterministic interleaving: the scheduler RNG picks
      // which submitter performs its next step.
      const auto drain = [&](auto& lists, const auto& step) {
        std::vector<std::size_t> cursor(options.submitters, 0);
        std::vector<std::uint16_t> live;
        for (std::uint16_t s = 0; s < options.submitters; ++s) {
          if (!lists[s].empty()) live.push_back(s);
        }
        while (!live.empty() && !sink.failed()) {
          const std::size_t pick = rng() % live.size();
          const std::uint16_t s = live[pick];
          step(lists[s][cursor[s]]);
          if (++cursor[s] == lists[s].size()) {
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
          }
        }
      };
      drain(units, [&](std::vector<Op*>& batch) { submit_unit(batch); });
      if (!sink.failed()) verify_round_layout();
      drain(assigned, [&](Op* op) { reap_op(*op); });
    }
    result.ops_submitted += ops.size();
    if (sink.failed()) break;
    result.ops_completed += ops.size();

    // ---- invariant 2: doorbell counts per queue. The expectation was
    // computed per batch above (coalesced accounting); commands still get
    // one CQ doorbell each — CQE reaping is not coalesced.
    for (std::uint16_t qid = 1; qid <= options.io_queues; ++qid) {
      const std::uint64_t expected_sq = expected_sq_db[qid];
      std::uint64_t commands = 0;
      for (const auto& op : ops) {
        if (op->qid == qid) ++commands;
      }
      const std::uint64_t got_sq =
          bed.bar().sq_doorbell_writes(qid) - sq_db_before[qid];
      const std::uint64_t got_cq =
          bed.bar().cq_doorbell_writes(qid) - cq_db_before[qid];
      if (got_sq != expected_sq) {
        sink.fail("qid " + std::to_string(qid) + ": " +
                  std::to_string(got_sq) + " SQ doorbells, expected " +
                  std::to_string(expected_sq));
      }
      if (got_cq != commands) {
        sink.fail("qid " + std::to_string(qid) + ": " +
                  std::to_string(got_cq) + " CQ doorbells, expected " +
                  std::to_string(commands));
      }
    }

    // ---- invariant 3: one completion per submission, nothing leaked.
    const nvme::TransferStatsLog device_after =
        bed.controller().transfer_stats();
    const nvme::TransferStatsLog round_delta =
        stats_delta(device_before, device_after);
    if (round_delta.completions_posted != ops.size()) {
      sink.fail("device posted " +
                std::to_string(round_delta.completions_posted) +
                " completions for " + std::to_string(ops.size()) + " ops");
    }
    for (std::uint16_t qid = 1; qid <= options.io_queues; ++qid) {
      if (bed.driver().pending_count_for_test(qid) != 0) {
        sink.fail("qid " + std::to_string(qid) +
                  ": pending entries leaked after reap");
      }
    }

    // ---- invariant 4: traffic-byte conservation against the device's
    // own statistics.
    const CellSnapshot traffic_after = snapshot_traffic(bed.traffic());
    using pcie::Direction;
    using pcie::TrafficClass;
    const auto delta = [&](Direction dir, TrafficClass cls) {
      return data_delta(traffic_before, traffic_after, dir, cls);
    };
    const std::uint64_t slots_fetched = round_delta.commands_processed +
                                        round_delta.inline_chunks_fetched +
                                        round_delta.bandslim_fragments;
    std::uint64_t expected_prp = 0;
    std::uint64_t expected_sgl = 0;
    std::uint64_t expected_slots = 0;
    for (const auto& op : ops) {
      expected_slots += slots_for(op->method, op->payload.size());
      if (op->method == TransferMethod::kPrp) {
        expected_prp += align_up(op->payload.size(), 4096);
      } else if (op->method == TransferMethod::kSgl) {
        expected_sgl += op->payload.size();
      }
    }
    struct Check {
      const char* name;
      std::uint64_t got;
      std::uint64_t want;
    };
    const std::uint64_t db_delta =
        (barred_doorbells(false) + barred_doorbells(true)) -
        (std::accumulate(sq_db_before.begin(), sq_db_before.end(),
                         std::uint64_t{0}) +
         std::accumulate(cq_db_before.begin(), cq_db_before.end(),
                         std::uint64_t{0}));
    const Check checks[] = {
        {"cmd-fetch bytes", delta(Direction::kDownstream,
                                  TrafficClass::kCommandFetch),
         64 * slots_fetched},
        {"fetched slots vs plan", slots_fetched, expected_slots},
        {"commands processed vs ops", round_delta.commands_processed,
         ops.size()},
        {"completion bytes",
         delta(Direction::kUpstream, TrafficClass::kCompletion),
         16 * round_delta.completions_posted},
        {"doorbell bytes",
         delta(Direction::kDownstream, TrafficClass::kDoorbell),
         4 * db_delta},
        {"PRP data bytes",
         delta(Direction::kDownstream, TrafficClass::kDataPrp), expected_prp},
        {"SGL data bytes",
         delta(Direction::kDownstream, TrafficClass::kDataSgl), expected_sgl},
    };
    for (const Check& check : checks) {
      if (check.got != check.want) {
        sink.fail(std::string("traffic conservation: ") + check.name +
                  " = " + std::to_string(check.got) + ", expected " +
                  std::to_string(check.want));
      }
    }
    if (config.controller.interrupt_coalescing == 1) {
      const std::uint64_t interrupts =
          delta(Direction::kUpstream, TrafficClass::kInterrupt);
      if (interrupts != 4 * round_delta.completions_posted) {
        sink.fail("traffic conservation: interrupt bytes = " +
                  std::to_string(interrupts) + ", expected " +
                  std::to_string(4 * round_delta.completions_posted));
      }
    }
  }

  result.sq_doorbells = barred_doorbells(false) - run_sq_db_before;
  result.cq_doorbells = barred_doorbells(true) - run_cq_db_before;
  result.wire_bytes = bed.traffic().total_wire_bytes() - run_wire_before;
  result.stats_delta =
      stats_delta(run_stats_before, bed.controller().transfer_stats());
  if (options.capture_trace) {
    result.trace_events = bed.trace().snapshot();
  }
  if (sink.failed()) {
    result.failure = sink.message();
    result.status = internal_error(result.failure);
  }
  return result;
}

FaultSweepResult run_fault_sweep(const FaultSweepOptions& options) {
  FaultSweepResult result;
  if (options.ops == 0 || options.max_payload_bytes == 0) {
    result.status = invalid_argument("bad fault-sweep options");
    result.failure = "bad fault-sweep options";
    return result;
  }
  if (!options.faults.any()) {
    result.status = invalid_argument("fault sweep needs a non-zero policy");
    result.failure = "fault sweep needs a non-zero policy";
    return result;
  }

  // Same small geometry as run_stress, plus recovery clocks tight enough
  // that every fault resolves within the sweep: device-side TTLs expire
  // well before the driver deadline, and the injector's completion delay
  // (default 100 ms) always out-waits the 2 ms timeout so a delayed CQE
  // exercises the abort path instead of racing the waiter.
  TestbedConfig config;
  config.driver.io_queue_count = 1;
  config.driver.io_queue_depth = 128;
  config.driver.command_timeout_ns = 2'000'000;
  config.driver.poll_idle_advance_ns = 1'000;
  config.driver.max_retries = 6;
  config.driver.retry_backoff_base_ns = 10'000;
  config.driver.retry_backoff_cap_ns = 200'000;
  config.driver.degrade_threshold = 4;
  config.driver.degrade_reprobe_ns = 1'000'000;
  config.controller.deferred_ttl_ns = 500'000;
  config.controller.reassembly.ttl_ns = 500'000;
  config.ssd.geometry.channels = 2;
  config.ssd.geometry.ways = 2;
  config.ssd.geometry.blocks_per_die = 64;
  config.ssd.geometry.pages_per_block = 64;
  config.ssd.geometry.page_size = 4096;
  config.ssd.nand_timing.read_ns = 5'000;
  config.ssd.nand_timing.program_ns = 20'000;
  config.ssd.nand_timing.erase_ns = 100'000;
  config.ssd.nand_timing.channel_transfer_ns = 500;
  config.trace_enabled = false;
  config.faults = options.faults;
  config.fault_seed = options.seed;
  Testbed bed(config);

  const std::uint32_t payload_cap = std::min(
      options.max_payload_bytes, config.driver.max_inline_bytes);

  FailureSink sink;
  std::mt19937_64 rng(options.seed);

  const auto doorbell_writes = [&] {
    // Include the admin queue (qid 0): timeout recovery rings its
    // doorbell for the Abort command.
    std::uint64_t total = 0;
    for (std::uint16_t qid = 0; qid <= config.driver.io_queue_count; ++qid) {
      total += bed.bar().sq_doorbell_writes(qid);
      total += bed.bar().cq_doorbell_writes(qid);
    }
    return total;
  };

  const nvme::TransferStatsLog stats_before =
      bed.controller().transfer_stats();
  const CellSnapshot traffic_before = snapshot_traffic(bed.traffic());
  const std::uint64_t db_before = doorbell_writes();

  const std::uint32_t batch_depth =
      std::max<std::uint32_t>(1, options.batch_depth);
  std::uint32_t issued = 0;
  while (issued < options.ops && !sink.failed()) {
    const std::uint32_t group =
        std::min(batch_depth, options.ops - issued);
    std::vector<ByteVec> payloads(group);
    std::vector<driver::IoRequest> requests(group);
    for (std::uint32_t g = 0; g < group; ++g) {
      const std::uint32_t len =
          1 + static_cast<std::uint32_t>(rng() % payload_cap);
      payloads[g].resize(len);
      const auto fill = static_cast<Byte>(rng());
      for (std::uint32_t b = 0; b < len; ++b) {
        payloads[g][b] = static_cast<Byte>(fill + b * 7);
      }
      requests[g].opcode = nvme::IoOpcode::kVendorRawWrite;
      requests[g].method = effective_method(options.method, len, config.driver);
      requests[g].write_data = {payloads[g].data(), payloads[g].size()};
    }
    result.ops_attempted += group;
    if (batch_depth <= 1) {
      auto completion = bed.driver().execute(requests[0], 1);
      if (!completion.is_ok()) {
        // execute() only fails this way on harness bugs (hang detection,
        // unknown cid) — every injected fault must come back as a
        // Completion with a device status.
        sink.fail("execute() error on op " + std::to_string(issued) + ": " +
                  completion.status().message());
        break;
      }
      if (completion->status.is_success()) {
        ++result.ops_ok;
      } else {
        ++result.ops_error;
      }
    } else {
      // Batched sweep: a fault on command k of the batch must resolve
      // through the same retry tail as execute(), leaving the other
      // group-1 commands untouched.
      auto completions = bed.driver().execute_batch(
          {requests.data(), requests.size()}, 1);
      if (!completions.is_ok()) {
        sink.fail("execute_batch() error at op " + std::to_string(issued) +
                  ": " + completions.status().message());
        break;
      }
      for (const driver::Completion& completion : *completions) {
        if (completion.status.is_success()) {
          ++result.ops_ok;
        } else {
          ++result.ops_error;
        }
      }
    }
    issued += group;
  }

  const obs::MetricsRegistry& metrics = bed.metrics();
  result.faults_injected = metrics.counter_value("faults.injected");
  result.faults_recovered = metrics.counter_value("faults.recovered");
  result.faults_degraded = metrics.counter_value("faults.degraded");
  result.faults_failed = metrics.counter_value("faults.failed");
  result.tlp_replays = metrics.counter_value("faults.tlp_replays");
  result.timeouts = metrics.counter_value("driver.timeouts");
  result.retries = metrics.counter_value("driver.retries");
  result.degradations = metrics.counter_value("driver.degradations");

  if (!sink.failed()) {
    // ---- invariant 1: every injected fault accounted for exactly once.
    const std::uint64_t accounted = result.faults_recovered +
                                    result.faults_degraded +
                                    result.faults_failed;
    if (result.faults_injected != accounted) {
      sink.fail("fault accounting: injected " +
                std::to_string(result.faults_injected) + " != recovered " +
                std::to_string(result.faults_recovered) + " + degraded " +
                std::to_string(result.faults_degraded) + " + failed " +
                std::to_string(result.faults_failed));
    }
    if (result.ops_error + result.ops_ok != result.ops_attempted) {
      sink.fail("op accounting does not cover every attempt");
    }

    // ---- invariant 2: nothing leaked.
    for (std::uint16_t qid = 1; qid <= config.driver.io_queue_count; ++qid) {
      if (bed.driver().pending_count_for_test(qid) != 0) {
        sink.fail("qid " + std::to_string(qid) +
                  ": pending entries leaked after sweep");
      }
    }

    // ---- invariant 3: structural traffic conservation. Retries refetch
    // and drops suppress CQEs, but both sides of each identity are
    // measured, so they hold for any fault schedule.
    const nvme::TransferStatsLog delta =
        stats_delta(stats_before, bed.controller().transfer_stats());
    const CellSnapshot traffic_after = snapshot_traffic(bed.traffic());
    using pcie::Direction;
    using pcie::TrafficClass;
    const auto traffic = [&](Direction dir, TrafficClass cls) {
      return data_delta(traffic_before, traffic_after, dir, cls);
    };
    const std::uint64_t slots_fetched = delta.commands_processed +
                                        delta.inline_chunks_fetched +
                                        delta.bandslim_fragments;
    struct Check {
      const char* name;
      std::uint64_t got;
      std::uint64_t want;
    };
    const Check checks[] = {
        {"cmd-fetch bytes",
         traffic(Direction::kDownstream, TrafficClass::kCommandFetch),
         64 * slots_fetched},
        {"completion bytes",
         traffic(Direction::kUpstream, TrafficClass::kCompletion),
         16 * delta.completions_posted},
        {"doorbell bytes",
         traffic(Direction::kDownstream, TrafficClass::kDoorbell),
         4 * (doorbell_writes() - db_before)},
    };
    for (const Check& check : checks) {
      if (check.got != check.want) {
        sink.fail(std::string("traffic conservation: ") + check.name +
                  " = " + std::to_string(check.got) + ", expected " +
                  std::to_string(check.want));
      }
    }
  }

  if (sink.failed()) {
    result.failure = sink.message();
    result.status = internal_error(result.failure);
  }
  return result;
}

}  // namespace bx::core
