// Deterministic concurrency stress harness for the multi-submitter host
// path.
//
// run_stress() drives a freshly-built Testbed through seeded rounds of
// randomized submissions: N logical submitters issue mixed
// inline/PRP/SGL/BandSlim writes across M I/O queues, then reap. Each
// round is sized so every burst fits its rings without mid-burst fetching,
// which lets the harness walk the raw SQ memory afterwards and check the
// paper's structural guarantees as hard invariants:
//
//   1. Ring layout — every ByteExpress command is immediately followed by
//      exactly its payload chunks (byte-exact), and BandSlim fragments of
//      a stream appear in order with the right offsets (§3.3 / §3.2).
//   2. Doorbells — exactly one SQ doorbell per inline submission (one per
//      BandSlim command), counted at the BAR register.
//   3. Completions — exactly one CQE per submission: every wait() returns
//      success, the device's completions_posted matches the op count, and
//      no pending entries leak.
//   4. Traffic conservation — PCIe byte counters exactly account for the
//      round against the controller's TransferStatsLog: 64 B per fetched
//      slot, 16 B per CQE, 4 B per MSI-X and per doorbell, page-aligned
//      PRP data, exact SGL data.
//
// Scheduling modes:
//   * cooperative (default): one OS thread; a seeded scheduler picks which
//     logical submitter steps next. Fully deterministic — the same seed
//     reproduces the identical interleaving, byte-identical
//     TransferStatsLog included (timing field and all).
//   * OS threads (use_os_threads): one thread per submitter, for running
//     the same schedule shape under ThreadSanitizer. Counters and
//     invariants still hold; only the timing stats become
//     schedule-dependent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "driver/request.h"
#include "fault/fault.h"
#include "nvme/spec.h"
#include "obs/trace.h"

namespace bx::core {

struct StressOptions {
  std::uint64_t seed = 0x5eed;
  /// Logical submitters (cooperative tasks or OS threads).
  std::uint16_t submitters = 8;
  std::uint16_t io_queues = 4;
  std::uint32_t queue_depth = 128;
  std::uint32_t rounds = 6;
  /// Submissions attempted per round; trimmed so each queue's burst fits
  /// its ring (an op that would overflow its queue's budget is skipped).
  std::uint32_t ops_per_round = 24;
  std::uint32_t max_payload_bytes = 2048;
  /// false: seeded cooperative interleaving on one OS thread
  /// (deterministic); true: real threads (for TSan).
  bool use_os_threads = false;
  /// 1: each op submitted individually (one doorbell per command, the
  /// PR 1 path). > 1: each submitter groups runs of up to batch_depth
  /// consecutive same-queue ops and issues them via submit_batch(), so a
  /// run of coalescable commands shares ONE doorbell MWr. Invariant 2's
  /// expected doorbell counts switch to the coalesced accounting.
  std::uint32_t batch_depth = 1;
  /// Record the full event trace of the run and return it in
  /// StressResult::trace_events (for the trace-invariant tests).
  bool capture_trace = false;
  std::vector<driver::TransferMethod> methods = {
      driver::TransferMethod::kPrp,          driver::TransferMethod::kSgl,
      driver::TransferMethod::kByteExpress,  driver::TransferMethod::kBandSlim,
      driver::TransferMethod::kByteExpressOoo,
  };
};

struct StressResult {
  /// First invariant violation (internal error), or OK.
  Status status = Status::ok();
  /// Human-readable description of the violation, empty when ok().
  std::string failure;

  std::uint64_t ops_submitted = 0;
  std::uint64_t ops_completed = 0;
  /// BAR doorbell writes across all I/O queues during the run.
  std::uint64_t sq_doorbells = 0;
  std::uint64_t cq_doorbells = 0;
  /// Total PCIe wire bytes the run generated.
  std::uint64_t wire_bytes = 0;
  /// Device-side statistics delta over the run — byte-identical between
  /// two cooperative runs with the same options.
  nvme::TransferStatsLog stats_delta{};
  /// Full event trace (only when StressOptions::capture_trace is set).
  std::vector<obs::TraceEvent> trace_events;

  [[nodiscard]] bool ok() const noexcept { return status.is_ok(); }
};

/// Builds a testbed per `options` and runs the full schedule. Never
/// throws; invariant violations come back in the result.
StressResult run_stress(const StressOptions& options);

// --- Fault-sweep stress mode -------------------------------------------
//
// run_fault_sweep() drives seeded execute() calls through a testbed with a
// fault injector attached (see docs/FAULTS.md) and recovery timing tuned
// tight enough that every fault resolves within the run. Afterwards it
// checks the sweep's hard invariants:
//
//   1. Accounting — every injected fault is accounted for exactly once:
//      faults.injected == faults.recovered + faults.degraded +
//      faults.failed (read back from the metrics registry, the same
//      counters bxmon and the Prometheus exporter publish).
//   2. No hangs, no leaks — every execute() returns (timeouts are bounded
//      by the driver deadline) and no pending entries survive the sweep.
//   3. Structural traffic conservation — identities that hold even under
//      retries and drops because both sides are measured: 64 B on the wire
//      per fetched slot, 16 B per posted CQE, 4 B per doorbell write.

struct FaultSweepOptions {
  std::uint64_t seed = 0xfa017;
  driver::TransferMethod method = driver::TransferMethod::kByteExpress;
  std::uint32_t ops = 64;
  std::uint32_t max_payload_bytes = 1024;
  /// 1: ops go through execute() one at a time. > 1: ops are issued in
  /// groups of batch_depth via execute_batch(), exercising the batched
  /// retry tail — a fault on command k of a batch must resolve without
  /// poisoning the other commands, with accounting still exact.
  std::uint32_t batch_depth = 1;
  /// Injection policy; the sweep builds the testbed with this policy and
  /// its own (short) recovery clocks. Leave delay_ns at the default so
  /// delayed completions always out-wait the driver timeout.
  fault::FaultPolicy faults{};
};

struct FaultSweepResult {
  /// First invariant violation (internal error), or OK.
  Status status = Status::ok();
  std::string failure;

  std::uint64_t ops_attempted = 0;
  /// execute() resolved to device success (possibly after retries).
  std::uint64_t ops_ok = 0;
  /// execute() surfaced a final device error Status to the caller.
  std::uint64_t ops_error = 0;

  /// Fault accounting, read back from the metrics registry.
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_recovered = 0;
  std::uint64_t faults_degraded = 0;
  std::uint64_t faults_failed = 0;
  std::uint64_t tlp_replays = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t degradations = 0;

  [[nodiscard]] bool ok() const noexcept { return status.is_ok(); }
};

/// Builds a faulted testbed per `options` and runs the sweep. Never
/// throws; invariant violations come back in the result.
FaultSweepResult run_fault_sweep(const FaultSweepOptions& options);

}  // namespace bx::core
