// Deterministic concurrency stress harness for the multi-submitter host
// path.
//
// run_stress() drives a freshly-built Testbed through seeded rounds of
// randomized submissions: N logical submitters issue mixed
// inline/PRP/SGL/BandSlim writes across M I/O queues, then reap. Each
// round is sized so every burst fits its rings without mid-burst fetching,
// which lets the harness walk the raw SQ memory afterwards and check the
// paper's structural guarantees as hard invariants:
//
//   1. Ring layout — every ByteExpress command is immediately followed by
//      exactly its payload chunks (byte-exact), and BandSlim fragments of
//      a stream appear in order with the right offsets (§3.3 / §3.2).
//   2. Doorbells — exactly one SQ doorbell per inline submission (one per
//      BandSlim command), counted at the BAR register.
//   3. Completions — exactly one CQE per submission: every wait() returns
//      success, the device's completions_posted matches the op count, and
//      no pending entries leak.
//   4. Traffic conservation — PCIe byte counters exactly account for the
//      round against the controller's TransferStatsLog: 64 B per fetched
//      slot, 16 B per CQE, 4 B per MSI-X and per doorbell, page-aligned
//      PRP data, exact SGL data.
//
// Scheduling modes:
//   * cooperative (default): one OS thread; a seeded scheduler picks which
//     logical submitter steps next. Fully deterministic — the same seed
//     reproduces the identical interleaving, byte-identical
//     TransferStatsLog included (timing field and all).
//   * OS threads (use_os_threads): one thread per submitter, for running
//     the same schedule shape under ThreadSanitizer. Counters and
//     invariants still hold; only the timing stats become
//     schedule-dependent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "driver/request.h"
#include "nvme/spec.h"
#include "obs/trace.h"

namespace bx::core {

struct StressOptions {
  std::uint64_t seed = 0x5eed;
  /// Logical submitters (cooperative tasks or OS threads).
  std::uint16_t submitters = 8;
  std::uint16_t io_queues = 4;
  std::uint32_t queue_depth = 128;
  std::uint32_t rounds = 6;
  /// Submissions attempted per round; trimmed so each queue's burst fits
  /// its ring (an op that would overflow its queue's budget is skipped).
  std::uint32_t ops_per_round = 24;
  std::uint32_t max_payload_bytes = 2048;
  /// false: seeded cooperative interleaving on one OS thread
  /// (deterministic); true: real threads (for TSan).
  bool use_os_threads = false;
  /// Record the full event trace of the run and return it in
  /// StressResult::trace_events (for the trace-invariant tests).
  bool capture_trace = false;
  std::vector<driver::TransferMethod> methods = {
      driver::TransferMethod::kPrp,          driver::TransferMethod::kSgl,
      driver::TransferMethod::kByteExpress,  driver::TransferMethod::kBandSlim,
      driver::TransferMethod::kByteExpressOoo,
  };
};

struct StressResult {
  /// First invariant violation (internal error), or OK.
  Status status = Status::ok();
  /// Human-readable description of the violation, empty when ok().
  std::string failure;

  std::uint64_t ops_submitted = 0;
  std::uint64_t ops_completed = 0;
  /// BAR doorbell writes across all I/O queues during the run.
  std::uint64_t sq_doorbells = 0;
  std::uint64_t cq_doorbells = 0;
  /// Total PCIe wire bytes the run generated.
  std::uint64_t wire_bytes = 0;
  /// Device-side statistics delta over the run — byte-identical between
  /// two cooperative runs with the same options.
  nvme::TransferStatsLog stats_delta{};
  /// Full event trace (only when StressOptions::capture_trace is set).
  std::vector<obs::TraceEvent> trace_events;

  [[nodiscard]] bool ok() const noexcept { return status.is_ok(); }
};

/// Builds a testbed per `options` and runs the full schedule. Never
/// throws; invariant violations come back in the result.
StressResult run_stress(const StressOptions& options);

}  // namespace bx::core
