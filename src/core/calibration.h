// Calibration anchors — one place to read (and override) every timing
// constant behind the paper's Table 1 and the Figure 5 shapes.
//
// The defaults live on the structs themselves (nvme/timing.h for protocol
// costs, nand/geometry.h for NAND, pcie/link.h for the Gen2 x8 link); this
// header re-exports them and provides the paper's testbed preset.
//
// Derivation of the key anchors (documented in EXPERIMENTS.md):
//   driver SQ submit        = sqe_insert (60 ns) + chunks * chunk_insert
//                             (35 ns)            ~ Table 1 left column
//   controller SQ fetch     = cmd_fetch_fw (1800 ns) + 64 B link RTT
//                             (~330 ns on Gen2 x8) + chunks *
//                             (chunk_fetch_fw 350 ns + link RTT ~330 ns)
//                                                 ~ Table 1 right column
//   PRP extra               = prp_build (120 ns) + prp_dma_setup (1800 ns)
//                             + 4 KB page DMA (~1.5 us on Gen2 x8)
// which lands PRP writes near 6 us flat below 4 KB, ByteExpress ~40 %
// below PRP at 32-64 B, and the crossover just past 256 B — the published
// shapes.
#pragma once

#include "nand/geometry.h"
#include "nvme/timing.h"
#include "pcie/link.h"

namespace bx::core {

/// The paper's testbed link: PCIe Gen2 x8 between a Xeon host and the
/// Cosmos+ OpenSSD.
inline pcie::LinkConfig paper_link_config() {
  pcie::LinkConfig config;
  config.generation = 2;
  config.lanes = 8;
  config.max_payload_size = 256;
  config.max_read_request_size = 512;
  return config;
}

inline nvme::HostTimingModel paper_host_timing() { return {}; }
inline nvme::DeviceTimingModel paper_device_timing() { return {}; }

}  // namespace bx::core
