#include "core/testbed.h"

namespace bx::core {

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      link_(config.link, clock_, traffic_),
      bar_(config.controller.max_queues) {
  device_ = std::make_unique<ssd::SsdDevice>(clock_, config.ssd);
  controller_ = std::make_unique<controller::Controller>(
      memory_, link_, bar_, *device_, config.controller);
  driver_ = std::make_unique<driver::NvmeDriver>(memory_, link_, bar_,
                                                 config.driver);

  // Observability wiring: one recorder/registry spanning every layer.
  trace_.set_enabled(config.trace_enabled);
  link_.set_metrics(&metrics_);
  device_->set_tracer(&trace_);
  controller_->set_tracer(&trace_);
  controller_->bind_metrics(metrics_);
  driver_->set_tracer(&trace_);
  driver_->bind_metrics(metrics_);

  // Adaptive kAuto selection: built only on request; metrics must bind
  // BEFORE init_io_queues() so register_queue() can expose the per-queue
  // policy.qN.congested gauges.
  if (config.policy_enabled) {
    policy::AdaptivePolicyConfig pconfig = config.policy;
    pconfig.max_inline_bytes = config.driver.max_inline_bytes;
    pconfig.link_bytes_per_ns = link_.config().bytes_per_ns();
    policy_ = std::make_unique<policy::AdaptivePolicy>(pconfig);
    policy_->bind_metrics(metrics_);
    driver_->set_method_policy(policy_.get());
  }

  // Fault injection: constructed only when the policy draws anything, so
  // healthy testbeds never take the recovery-housekeeping paths.
  if (config.faults.any()) {
    injector_ =
        std::make_unique<fault::FaultInjector>(config.fault_seed,
                                               config.faults);
    injector_->bind_metrics(metrics_);
    link_.set_fault_injector(injector_.get());
    controller_->set_fault_injector(injector_.get());
  }

  // Windowed sampler: components only get the pointer when telemetry is
  // enabled, so a disabled run pays one null check per link primitive.
  telemetry_.configure(config.telemetry);
  telemetry_.set_link_rate(link_.config().bytes_per_ns());
  obs::Telemetry* telemetry =
      config.telemetry.enabled ? &telemetry_ : nullptr;
  link_.set_telemetry(telemetry);
  controller_->set_telemetry(telemetry);
  driver_->set_telemetry(telemetry);
  // The policy learns on the window grid (EWMAs, hysteresis) and its
  // decision counters feed the per-window policy_* sample fields.
  if (policy_ != nullptr) policy_->attach_telemetry(telemetry_);

  const auto admin = driver_->admin_queue_info();
  controller_->set_admin_queue(admin.sq_addr, admin.sq_depth, admin.cq_addr,
                               admin.cq_depth);
  controller_->set_namespace_blocks(device_->block_namespace_pages());
  driver_->set_pump([this] {
    std::lock_guard<std::mutex> lock(firmware_mutex_);
    return controller_->poll_once();
  });

  const Status queues = driver_->init_io_queues();
  BX_ASSERT_MSG(queues.is_ok(), "I/O queue creation failed");
}

kv::KvClient Testbed::make_kv_client(driver::TransferMethod method,
                                     std::uint16_t qid) {
  kv::KvClient::Options options;
  options.qid = qid;
  options.method = method;
  return {*driver_, options};
}

csd::CsdClient Testbed::make_csd_client(driver::TransferMethod method,
                                        std::uint16_t qid) {
  csd::CsdClient::Options options;
  options.qid = qid;
  options.method = method;
  return {*driver_, options};
}

StatusOr<driver::Completion> Testbed::raw_write(
    ConstByteSpan payload, driver::TransferMethod method,
    std::uint16_t qid) {
  driver::IoRequest request;
  request.opcode = nvme::IoOpcode::kVendorRawWrite;
  request.method = method;
  request.write_data = payload;
  return driver_->execute(request, qid);
}

void Testbed::reset_counters() {
  traffic_.reset();
  controller_->reset_fetch_stats();
  trace_.clear();
  telemetry_.clear(clock_.now());
}

}  // namespace bx::core
