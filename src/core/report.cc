#include "core/report.h"

#include <cstdarg>
#include <cstdio>

namespace bx::core {

namespace {

void line(std::string& out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  out += buffer;
  out += '\n';
}

}  // namespace

std::string system_report(Testbed& testbed) {
  std::string out;
  line(out, "=== system report @ %llu ns ===",
       static_cast<unsigned long long>(testbed.clock().now()));

  out += "\n--- PCIe traffic ---\n";
  out += testbed.traffic().breakdown();

  const auto stats = testbed.controller().transfer_stats();
  out += "\n--- controller ---\n";
  line(out, "commands=%llu inline_chunks=%llu bandslim_fragments=%llu",
       static_cast<unsigned long long>(stats.commands_processed),
       static_cast<unsigned long long>(stats.inline_chunks_fetched),
       static_cast<unsigned long long>(stats.bandslim_fragments));
  line(out, "prp_dma=%llu sgl_dma=%llu completions=%llu ooo_reassembled=%llu",
       static_cast<unsigned long long>(stats.prp_transactions),
       static_cast<unsigned long long>(stats.sgl_transactions),
       static_cast<unsigned long long>(stats.completions_posted),
       static_cast<unsigned long long>(stats.ooo_payloads_reassembled));
  line(out, "fetch stage: %s",
       testbed.controller().fetch_stage_histogram().summary().c_str());

  auto& device = testbed.device();
  out += "\n--- NAND / FTL ---\n";
  line(out, "programs=%llu reads=%llu erases=%llu",
       static_cast<unsigned long long>(device.nand().programs()),
       static_cast<unsigned long long>(device.nand().reads()),
       static_cast<unsigned long long>(device.nand().erases()));
  line(out, "user_writes=%llu gc_relocations=%llu waf=%.2f retired=%llu",
       static_cast<unsigned long long>(device.ftl().user_writes()),
       static_cast<unsigned long long>(device.ftl().gc_relocations()),
       device.ftl().waf(),
       static_cast<unsigned long long>(device.ftl().retired_blocks()));

  auto& kv = device.kv_engine();
  out += "\n--- KV engine ---\n";
  line(out, "puts=%llu gets=%llu flushes=%llu compactions=%llu runs=%zu",
       static_cast<unsigned long long>(kv.puts()),
       static_cast<unsigned long long>(kv.gets()),
       static_cast<unsigned long long>(kv.flushes()),
       static_cast<unsigned long long>(kv.compactions()), kv.run_count());
  line(out, "memtable=%zu B, open_iterators=%zu", kv.memtable_bytes(),
       kv.open_iterators());
  return out;
}

}  // namespace bx::core
