// The assembled system: host memory, PCIe link, BAR space, SSD (NAND + FTL
// + KV + CSD), NVMe controller, and the host NVMe driver — wired together
// exactly like the paper's testbed (Xeon host <-> Cosmos+ OpenSSD over
// PCIe Gen2 x8).
//
// This is the top-level entry point of the library: construct a Testbed,
// pick a transfer method, and issue I/O through the driver or the KV/CSD
// clients. All simulated time and PCIe traffic is observable through
// clock() and traffic().
#pragma once

#include <memory>
#include <mutex>

#include "common/sim_clock.h"
#include "common/status.h"
#include "controller/controller.h"
#include "core/calibration.h"
#include "csd/csd_client.h"
#include "driver/nvme_driver.h"
#include "fault/fault.h"
#include "hostmem/dma_memory.h"
#include "kv/kv_client.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "pcie/bar.h"
#include "policy/adaptive_policy.h"
#include "pcie/link.h"
#include "pcie/traffic_counter.h"
#include "ssd/ssd_device.h"

namespace bx::core {

struct TestbedConfig {
  pcie::LinkConfig link = paper_link_config();
  driver::NvmeDriver::Config driver{};
  controller::Controller::Config controller{};
  ssd::SsdDevice::Config ssd{};
  /// Runtime switch for the end-to-end trace recorder (compile-time gate:
  /// -DBX_OBS_TRACE). Metrics and the 0xC1 stage log stay on regardless.
  bool trace_enabled = true;
  /// Windowed time-series sampler (PCM-style link telemetry). With
  /// `telemetry.enabled = false` no component receives a Telemetry
  /// pointer, so the hot-path cost is one null check per link primitive.
  obs::TelemetryConfig telemetry{};
  /// Seeded fault-injection policy (see docs/FAULTS.md). With the default
  /// all-zero policy no injector is constructed and no component takes a
  /// pointer, so healthy runs are byte-identical to a build without the
  /// fault subsystem.
  fault::FaultPolicy faults{};
  std::uint64_t fault_seed = 0x5eed;
  /// Adaptive method selection (TransferMethod::kAuto, docs/POLICY.md).
  /// When enabled an AdaptivePolicy is built and attached to the driver
  /// and telemetry; otherwise kAuto degrades to kHybrid semantics. The
  /// feasibility mirror (`policy.max_inline_bytes`) and link rate
  /// (`policy.link_bytes_per_ns`) are overwritten at assembly from the
  /// driver and link configs so they cannot drift.
  bool policy_enabled = false;
  policy::AdaptivePolicyConfig policy{};
};

class Testbed {
 public:
  /// Builds and attaches the full system (admin queue registered, I/O
  /// queues created through real admin commands). Aborts on setup failure
  /// — a testbed that failed to assemble is a programming error.
  explicit Testbed(TestbedConfig config = {});
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] driver::NvmeDriver& driver() noexcept { return *driver_; }
  [[nodiscard]] controller::Controller& controller() noexcept {
    return *controller_;
  }
  [[nodiscard]] ssd::SsdDevice& device() noexcept { return *device_; }
  [[nodiscard]] const ssd::SsdDevice& device() const noexcept {
    return *device_;
  }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] pcie::TrafficCounter& traffic() noexcept { return traffic_; }
  /// The end-to-end trace recorder all layers report into.
  [[nodiscard]] obs::TraceRecorder& trace() noexcept { return trace_; }
  /// The named-metrics registry every layer binds its counters into.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// The windowed link sampler (empty when config.telemetry.enabled is
  /// false — no hooks fire). Call telemetry().flush(clock().now()) before
  /// reading samples so the final partial window is closed.
  [[nodiscard]] obs::Telemetry& telemetry() noexcept { return telemetry_; }
  /// The fault injector, or nullptr when config.faults is all-zero.
  [[nodiscard]] fault::FaultInjector* fault_injector() noexcept {
    return injector_.get();
  }
  /// The adaptive kAuto policy, or nullptr when config.policy_enabled is
  /// false.
  [[nodiscard]] policy::AdaptivePolicy* method_policy() noexcept {
    return policy_.get();
  }
  [[nodiscard]] DmaMemory& memory() noexcept { return memory_; }
  [[nodiscard]] pcie::BarSpace& bar() noexcept { return bar_; }
  [[nodiscard]] pcie::PcieLink& link() noexcept { return link_; }
  [[nodiscard]] const TestbedConfig& config() const noexcept {
    return config_;
  }

  /// Host-side clients bound to this testbed.
  [[nodiscard]] kv::KvClient make_kv_client(
      driver::TransferMethod method, std::uint16_t qid = 1);
  [[nodiscard]] csd::CsdClient make_csd_client(
      driver::TransferMethod method, std::uint16_t qid = 1);

  /// One NAND-off microbenchmark write (device DRAM scratch only) — the
  /// §4.2 payload-sweep primitive.
  StatusOr<driver::Completion> raw_write(ConstByteSpan payload,
                                         driver::TransferMethod method,
                                         std::uint16_t qid = 1);

  /// Resets traffic counters, controller stage statistics and the trace
  /// buffer (the clock keeps running — simulated time is monotonic).
  void reset_counters();

 private:
  TestbedConfig config_;
  /// Declared before the components that record into them.
  obs::TraceRecorder trace_;
  obs::MetricsRegistry metrics_;
  obs::Telemetry telemetry_;
  /// The controller models ONE firmware core; concurrent host threads all
  /// pump through this lock so firmware state never races.
  std::mutex firmware_mutex_;
  SimClock clock_;
  DmaMemory memory_;
  pcie::TrafficCounter traffic_;
  pcie::PcieLink link_;
  pcie::BarSpace bar_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<policy::AdaptivePolicy> policy_;
  std::unique_ptr<ssd::SsdDevice> device_;
  std::unique_ptr<controller::Controller> controller_;
  std::unique_ptr<driver::NvmeDriver> driver_;
};

}  // namespace bx::core
