#include "core/measurement.h"

#include <cstdio>

#include "common/bytes.h"

namespace bx::core {

RunStats run_write_sweep(Testbed& testbed, driver::TransferMethod method,
                         std::uint32_t payload_size, std::uint64_t ops) {
  RunStats stats;
  stats.label = std::string(driver::transfer_method_name(method));
  stats.method = stats.label;
  stats.ops = ops;

  ByteVec payload(payload_size);
  fill_pattern(payload, payload_size);

  testbed.reset_counters();
  const auto traffic_before = testbed.traffic().total();
  const Nanoseconds start = testbed.clock().now();

  for (std::uint64_t i = 0; i < ops; ++i) {
    auto completion = testbed.raw_write(payload, method);
    BX_ASSERT_MSG(completion.is_ok() && completion->ok(),
                  "raw write failed during sweep");
    stats.latency.record(completion->latency_ns);
    stats.payload_bytes += payload_size;
  }

  stats.total_time_ns = testbed.clock().now() - start;
  const auto traffic_after = testbed.traffic().total();
  stats.wire_bytes = traffic_after.wire_bytes - traffic_before.wire_bytes;
  stats.data_bytes = traffic_after.data_bytes - traffic_before.data_bytes;
  return stats;
}

std::string stats_header() {
  return "method           payload     wireB/op     amp      mean_ns    "
         "p99_ns     Kops";
}

std::string format_stats_row(const RunStats& stats) {
  char line[192];
  std::snprintf(line, sizeof(line),
                "%-16s %-11llu %-12.1f %-8.2f %-10.0f %-10llu %.1f",
                stats.label.c_str(),
                static_cast<unsigned long long>(
                    stats.ops == 0 ? 0 : stats.payload_bytes / stats.ops),
                stats.wire_bytes_per_op(), stats.amplification(),
                stats.mean_latency_ns(),
                static_cast<unsigned long long>(stats.latency.percentile(99)),
                stats.kops());
  return line;
}

}  // namespace bx::core
