// Measurement helpers shared by the benchmark binaries: per-method write
// sweeps with traffic/latency accounting, matching how the paper reports
// its figures (PCIe bytes per op, average latency, throughput).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "core/testbed.h"
#include "driver/request.h"

namespace bx::core {

struct RunStats {
  std::string label;
  /// Canonical transfer-method name (transfer_method_name()) when the run
  /// measured one method; empty for mixed/unknown runs. Ends up as the
  /// "method" field of BENCH_*.json rows.
  std::string method;
  std::uint64_t ops = 0;
  std::uint64_t payload_bytes = 0;

  // PCIe traffic over the run (both directions).
  std::uint64_t wire_bytes = 0;
  std::uint64_t data_bytes = 0;

  Nanoseconds total_time_ns = 0;
  LatencyHistogram latency;

  [[nodiscard]] double wire_bytes_per_op() const noexcept {
    return ops == 0 ? 0.0 : double(wire_bytes) / double(ops);
  }
  [[nodiscard]] double mean_latency_ns() const noexcept {
    return latency.mean();
  }
  /// QD1 throughput in Kops/s of simulated time.
  [[nodiscard]] double kops() const noexcept {
    return total_time_ns == 0 ? 0.0
                              : double(ops) * 1e6 / double(total_time_ns);
  }
  /// Traffic amplification: wire bytes per payload byte.
  [[nodiscard]] double amplification() const noexcept {
    return payload_bytes == 0 ? 0.0
                              : double(wire_bytes) / double(payload_bytes);
  }
};

/// Runs `ops` NAND-off raw writes of `payload_size` bytes with `method`
/// and returns the aggregated stats. Aborts on I/O errors (benchmarks
/// must not silently measure failures).
RunStats run_write_sweep(Testbed& testbed, driver::TransferMethod method,
                         std::uint32_t payload_size, std::uint64_t ops);

/// Formats a stats row: label, payload, B/op, amplification, mean/percentile
/// latency, Kops.
std::string format_stats_row(const RunStats& stats);
std::string stats_header();

}  // namespace bx::core
