// BENCH_*.json report layout: schema_version, config block, per-row
// method + timeseries section. Tests the pure render_* functions from
// bench_common so report-consumer breakage shows up here, not in CI
// artifact diffing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace bx::bench {
namespace {

obs::TelemetrySample sample_at(std::uint64_t index, Nanoseconds start,
                               Nanoseconds end, std::uint64_t wire) {
  obs::TelemetrySample sample;
  sample.index = index;
  sample.start_ns = start;
  sample.end_ns = end;
  auto& mwr = sample.flow[std::size_t(obs::LinkDir::kDownstream)]
                         [std::size_t(obs::TlpKind::kMWr)];
  mwr.tlps = 1;
  mwr.data_bytes = wire > 32 ? wire - 32 : 0;
  mwr.wire_bytes = wire;
  sample.payload_bytes = wire / 2;
  return sample;
}

TEST(BenchReportTest, DocumentCarriesSchemaVersionAndConfig) {
  BenchEnv env;  // default knobs, no argv
  const std::string config_json = render_config_json(env);
  for (const char* key :
       {"\"seed\"", "\"pcie_gen\"", "\"pcie_lanes\"", "\"queues\"",
        "\"depth\"", "\"ops\"", "\"telemetry_window_ns\""}) {
    EXPECT_NE(config_json.find(key), std::string::npos) << key;
  }

  const std::string doc =
      render_report("fig5_payload_sweep", config_json, /*rows=*/{});
  EXPECT_NE(doc.find("\"bench\": \"fig5_payload_sweep\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_EQ(kReportSchemaVersion, 2);
  EXPECT_NE(doc.find("\"config\": {"), std::string::npos);
  EXPECT_NE(doc.find("\"rows\": ["), std::string::npos);
}

TEST(BenchReportTest, RowCarriesMethodStagesAndTimeseries) {
  core::RunStats stats;
  stats.label = "byteexpress/256B";
  stats.method = "byteexpress";
  stats.ops = 10;
  stats.payload_bytes = 2560;
  stats.wire_bytes = 4000;
  stats.data_bytes = 3000;
  stats.total_time_ns = 50'000;
  stats.latency.record(1'000);

  const obs::StageBreakdown breakdown = obs::stage_breakdown({});
  std::vector<obs::TelemetrySample> samples = {
      sample_at(0, 0, 10'000, 400),
      sample_at(1, 10'000, 20'000, 500),
  };
  const std::string row = render_report_row(
      stats, breakdown, /*trace_events_dropped=*/0, samples,
      /*bytes_per_ns=*/4.0);

  EXPECT_NE(row.find("\"label\": \"byteexpress/256B\""), std::string::npos);
  EXPECT_NE(row.find("\"method\": \"byteexpress\""), std::string::npos);
  EXPECT_NE(row.find("\"stages\": "), std::string::npos);
  EXPECT_NE(row.find("\"timeseries\": ["), std::string::npos);
  EXPECT_NE(row.find("\"down_mwr_wire\": 400"), std::string::npos);
  EXPECT_NE(row.find("\"down_mwr_wire\": 500"), std::string::npos);

  // Sampling defaults to all-zero when the caller passes no stats (the
  // legacy 5-argument call shape stays valid).
  EXPECT_NE(row.find("\"sampling\": {\"seen\": 0"), std::string::npos);
}

TEST(BenchReportTest, RowCarriesWaitsAttributionAndSampling) {
  core::RunStats stats;
  stats.label = "attr";
  stats.method = "byteexpress";
  stats.ops = 4;
  stats.total_time_ns = 10'000;
  stats.latency.record(2'500);

  std::vector<obs::TelemetrySample> samples = {
      sample_at(0, 0, 10'000, 400),
      sample_at(1, 10'000, 20'000, 500),
  };
  // Window-aggregated wait attribution: 3 + 1 completions, segments split
  // across windows must sum in the rendered block.
  samples[0].wait_count = 3;
  samples[0].wait_ns[std::size_t(obs::WaitSegment::kService)] = 6'000;
  samples[0].wait_ns[std::size_t(obs::WaitSegment::kBellHold)] = 250;
  samples[1].wait_count = 1;
  samples[1].wait_ns[std::size_t(obs::WaitSegment::kService)] = 1'500;
  samples[1].wait_ns[std::size_t(obs::WaitSegment::kDelivery)] = 40;

  SamplingStats sampling;
  sampling.seen = 100;
  sampling.kept = 12;
  sampling.sampled_out = 88;
  sampling.events_sampled_out = 704;

  const std::string row = render_report_row(
      stats, obs::stage_breakdown({}), /*trace_events_dropped=*/0, samples,
      /*bytes_per_ns=*/4.0, sampling);

  EXPECT_NE(row.find("\"waits\": {\"count\": 4"), std::string::npos);
  EXPECT_NE(row.find("\"service\": 7500"), std::string::npos);
  EXPECT_NE(row.find("\"bell\": 250"), std::string::npos);
  EXPECT_NE(row.find("\"delivery\": 40"), std::string::npos);
  EXPECT_NE(row.find("\"gate\": 0"), std::string::npos);
  EXPECT_NE(row.find("\"sampling\": {\"seen\": 100, \"kept\": 12, "
                     "\"sampled_out\": 88, \"events_sampled_out\": 704}"),
            std::string::npos);
}

TEST(BenchReportTest, TimeseriesDownsamplesToMaxPoints) {
  std::vector<obs::TelemetrySample> samples;
  std::uint64_t total_wire = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    samples.push_back(
        sample_at(i, Nanoseconds(i * 100), Nanoseconds((i + 1) * 100),
                  64 + i));
    total_wire += 64 + i;
  }
  const std::string json =
      render_timeseries_json(samples, /*bytes_per_ns=*/4.0,
                             /*max_points=*/16);

  std::size_t points = 0;
  for (std::size_t pos = json.find("\"start_ns\""); pos != std::string::npos;
       pos = json.find("\"start_ns\"", pos + 1)) {
    ++points;
  }
  EXPECT_LE(points, 16u);
  EXPECT_GT(points, 0u);

  // Downsampling preserves the wire-byte sum: re-add the rendered
  // down_mwr_wire values.
  std::uint64_t rendered_wire = 0;
  const std::string key = "\"down_mwr_wire\": ";
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + 1)) {
    rendered_wire += std::stoull(json.substr(pos + key.size()));
  }
  EXPECT_EQ(rendered_wire, total_wire);

  // Empty runs render an empty array, not invalid JSON.
  EXPECT_EQ(render_timeseries_json({}, 4.0), "[]");
}

}  // namespace
}  // namespace bx::bench
