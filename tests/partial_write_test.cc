// Sub-block partial writes (§3.3.1's "NAND page buffer entry of normal
// block SSDs"): the host ships only the changed bytes; the device does the
// read-modify-write. This is the block-SSD scenario where ByteExpress's
// inline transfer pays off most directly.
#include <gtest/gtest.h>

#include "core/testbed.h"
#include "test_util.h"

namespace bx {
namespace {

using core::Testbed;
using driver::IoRequest;
using driver::TransferMethod;
using nvme::IoOpcode;

ByteVec read_block(Testbed& testbed, std::uint64_t lba) {
  ByteVec out(4096);
  IoRequest read;
  read.opcode = IoOpcode::kRead;
  read.slba = lba;
  read.block_count = 1;
  read.read_buffer = out;
  auto completion = testbed.driver().execute(read, 1);
  EXPECT_TRUE(completion.is_ok() && completion->ok());
  return out;
}

void write_block(Testbed& testbed, std::uint64_t lba, ConstByteSpan data) {
  IoRequest write;
  write.opcode = IoOpcode::kWrite;
  write.slba = lba;
  write.block_count = 1;
  write.write_data = data;
  auto completion = testbed.driver().execute(write, 1);
  ASSERT_TRUE(completion.is_ok() && completion->ok());
}

driver::Completion partial_write(Testbed& testbed, std::uint64_t lba,
                                 std::uint32_t offset, ConstByteSpan data,
                                 TransferMethod method) {
  IoRequest request;
  request.opcode = IoOpcode::kVendorPartialWrite;
  request.slba = lba;
  request.aux = offset;
  request.write_data = data;
  request.method = method;
  auto completion = testbed.driver().execute(request, 1);
  EXPECT_TRUE(completion.is_ok());
  return completion.is_ok() ? *completion : driver::Completion{};
}

class PartialWriteMethods
    : public ::testing::TestWithParam<TransferMethod> {};

TEST_P(PartialWriteMethods, PatchesRegionAndPreservesRest) {
  Testbed testbed(test::small_testbed_config());
  ByteVec original(4096);
  fill_pattern(original, 1);
  write_block(testbed, 7, original);

  ByteVec patch(96);
  fill_pattern(patch, 2);
  const auto completion =
      partial_write(testbed, 7, 1000, patch, GetParam());
  ASSERT_TRUE(completion.ok());

  ByteVec expected = original;
  std::memcpy(expected.data() + 1000, patch.data(), patch.size());
  EXPECT_EQ(read_block(testbed, 7), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, PartialWriteMethods,
    ::testing::Values(TransferMethod::kPrp, TransferMethod::kSgl,
                      TransferMethod::kByteExpress,
                      TransferMethod::kBandSlim),
    [](const ::testing::TestParamInfo<TransferMethod>& info) {
      return std::string(driver::transfer_method_name(info.param));
    });

TEST(PartialWriteTest, PatchingUnwrittenBlockZeroFills) {
  Testbed testbed(test::small_testbed_config());
  ByteVec patch(64);
  fill_pattern(patch, 3);
  ASSERT_TRUE(partial_write(testbed, 9, 500, patch,
                            TransferMethod::kByteExpress)
                  .ok());
  const ByteVec block = read_block(testbed, 9);
  for (std::size_t i = 0; i < 500; ++i) ASSERT_EQ(block[i], 0);
  EXPECT_TRUE(verify_pattern(
      ConstByteSpan(block).subspan(500, patch.size()), 3));
  for (std::size_t i = 500 + patch.size(); i < 4096; ++i) {
    ASSERT_EQ(block[i], 0);
  }
}

TEST(PartialWriteTest, ValidationErrors) {
  Testbed testbed(test::small_testbed_config());
  ByteVec patch(64);
  // Offset + length beyond the block.
  EXPECT_FALSE(partial_write(testbed, 0, 4090, patch,
                             TransferMethod::kByteExpress)
                   .ok());
  // LBA out of range.
  EXPECT_FALSE(partial_write(testbed, 1ull << 40, 0, patch,
                             TransferMethod::kByteExpress)
                   .ok());
}

TEST(PartialWriteTest, InlinePatchMovesOnlyChangedBytes) {
  Testbed testbed(test::small_testbed_config());
  ByteVec original(4096);
  fill_pattern(original, 1);
  write_block(testbed, 3, original);

  ByteVec patch(64);
  fill_pattern(patch, 2);

  // PRP partial write: the 64 B patch still costs a full page of DMA.
  testbed.reset_counters();
  ASSERT_TRUE(partial_write(testbed, 3, 0, patch, TransferMethod::kPrp).ok());
  const std::uint64_t prp_down =
      testbed.traffic()
          .cell(pcie::Direction::kDownstream, pcie::TrafficClass::kDataPrp)
          .data_bytes;
  EXPECT_EQ(prp_down, 4096u);

  // ByteExpress partial write: only the patch rides the SQ.
  testbed.reset_counters();
  ASSERT_TRUE(
      partial_write(testbed, 3, 0, patch, TransferMethod::kByteExpress)
          .ok());
  EXPECT_EQ(testbed.traffic()
                .cell(pcie::Direction::kDownstream,
                      pcie::TrafficClass::kDataPrp)
                .data_bytes,
            0u);
  EXPECT_LT(testbed.traffic().total_wire_bytes(), 600u);
}

TEST(PartialWriteTest, WorksThroughWriteCache) {
  auto config = test::small_testbed_config();
  config.ssd.enable_write_cache = true;
  Testbed testbed(config);
  ByteVec original(4096);
  fill_pattern(original, 5);
  write_block(testbed, 2, original);

  ByteVec patch(32);
  fill_pattern(patch, 6);
  ASSERT_TRUE(partial_write(testbed, 2, 100, patch,
                            TransferMethod::kByteExpress)
                  .ok());
  EXPECT_EQ(testbed.device().nand().programs(), 0u);  // all in DRAM

  ByteVec expected = original;
  std::memcpy(expected.data() + 100, patch.data(), patch.size());
  EXPECT_EQ(read_block(testbed, 2), expected);
}

TEST(PartialWriteTest, InlinePatchFasterThanFullRewriteOnCachedBlock) {
  // With the block resident in the device write cache (hot data), the
  // read-modify-write is pure DRAM, so the inline patch's saved page
  // transfer shows up directly in latency.
  auto config = test::small_testbed_config();
  config.ssd.enable_write_cache = true;
  Testbed testbed(config);
  ByteVec block(4096);
  fill_pattern(block, 1);
  write_block(testbed, 0, block);  // now cached in device DRAM

  IoRequest full;
  full.opcode = IoOpcode::kWrite;
  full.slba = 0;
  full.block_count = 1;
  full.write_data = block;
  auto full_done = testbed.driver().execute(full, 1);
  ASSERT_TRUE(full_done.is_ok() && full_done->ok());

  ByteVec patch(64);
  fill_pattern(patch, 2);
  const auto inline_done =
      partial_write(testbed, 0, 0, patch, TransferMethod::kByteExpress);
  ASSERT_TRUE(inline_done.ok());

  EXPECT_LT(inline_done.latency_ns + 1000, full_done->latency_ns);
}

}  // namespace
}  // namespace bx
