// Unit tests for the common substrate: Status/StatusOr, RNG and
// distributions, histograms, the simulated clock, byte helpers, CRC32-C,
// and the key=value config store.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/bytes.h"
#include "common/config.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace bx {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = not_found("missing thing");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.to_string(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kAborted); ++code) {
    EXPECT_NE(status_code_name(static_cast<StatusCode>(code)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().is_ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = invalid_argument("nope");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.is_ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return out_of_range("boom"); };
  auto outer = [&]() -> Status {
    BX_RETURN_IF_ERROR(inner());
    return Status::ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

// -------------------------------------------------------------------- RNG

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversSmallDomains) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, FillProducesAllBytes) {
  Rng rng(8);
  ByteVec buffer(4096, 0);
  rng.fill(buffer.data(), buffer.size());
  std::set<Byte> seen(buffer.begin(), buffer.end());
  EXPECT_GT(seen.size(), 200u);  // essentially all byte values appear
}

TEST(ZipfianTest, SkewsTowardLowRanks) {
  ZipfianGenerator zipf(1000, 0.99, 42);
  std::uint64_t low = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (zipf.next() < 10) ++low;
  }
  // With theta=0.99 the top-10 ranks take well over a third of the mass.
  EXPECT_GT(low, draws / 3);
}

TEST(ZipfianTest, StaysInDomain) {
  ZipfianGenerator zipf(50, 0.8, 7);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.next(), 50u);
}

TEST(ParetoTest, RespectsBounds) {
  ParetoGenerator pareto(0.0, 25.45, 0.2615, 1, 4000, 3);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = pareto.next();
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 4000u);
  }
}

TEST(ParetoTest, MixGraphDefaultsMatchPaperDistribution) {
  // Figure 1(a) / §4.3: with db_bench MixGraph defaults, over 60% of
  // values are under 32 bytes.
  ParetoGenerator pareto(0.0, 25.45, 0.2615, 1, 4000, 11);
  const int draws = 100000;
  int under32 = 0;
  double sum = 0;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = pareto.next();
    if (v < 32) ++under32;
    sum += double(v);
  }
  EXPECT_GT(double(under32) / draws, 0.60);
  // Mean of GP(0, 25.45, 0.2615) is sigma/(1-k) ~ 34.5 bytes.
  EXPECT_NEAR(sum / draws, 34.5, 6.0);
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, EmptyIsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.percentile(50), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram hist;
  hist.record(1234);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.min(), 1234u);
  EXPECT_EQ(hist.max(), 1234u);
  EXPECT_EQ(hist.percentile(50), 1234u);
  EXPECT_DOUBLE_EQ(hist.mean(), 1234.0);
}

TEST(HistogramTest, PercentileAccuracyWithinBucketError) {
  LatencyHistogram hist;
  for (std::uint64_t v = 1; v <= 10000; ++v) hist.record(v);
  // Log-linear buckets with 16 sub-buckets: <= ~6.25% relative error.
  const std::uint64_t p50 = hist.percentile(50);
  EXPECT_NEAR(double(p50), 5000.0, 5000.0 * 0.07);
  const std::uint64_t p99 = hist.percentile(99);
  EXPECT_NEAR(double(p99), 9900.0, 9900.0 * 0.07);
}

TEST(HistogramTest, MergeCombinesCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_NEAR(a.mean(), 505.0, 1.0);
}

TEST(HistogramTest, ExtremePercentilesAreExact) {
  LatencyHistogram hist;
  hist.record(3);
  hist.record(7777777);
  EXPECT_EQ(hist.percentile(0), 3u);
  EXPECT_EQ(hist.percentile(100), 7777777u);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram hist;
  hist.record(5);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.percentile(99), 0u);
}

TEST(HistogramTest, HugeValuesDoNotOverflowBuckets) {
  LatencyHistogram hist;
  hist.record(UINT64_MAX / 2);
  hist.record(1);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.max(), UINT64_MAX / 2);
}

TEST(HistogramTest, EmptyPercentileClampsAndStaysZero) {
  LatencyHistogram hist;
  // Out-of-range p on an empty histogram: no UB, no crash, just 0.
  EXPECT_EQ(hist.percentile(-5.0), 0u);
  EXPECT_EQ(hist.percentile(0), 0u);
  EXPECT_EQ(hist.percentile(100), 0u);
  EXPECT_EQ(hist.percentile(250.0), 0u);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(HistogramTest, PercentileClampsOutOfRangeP) {
  LatencyHistogram hist;
  hist.record(10);
  hist.record(90);
  // p < 0 behaves as p0 (exact min), p > 100 as p100 (exact max).
  EXPECT_EQ(hist.percentile(-1.0), 10u);
  EXPECT_EQ(hist.percentile(101.0), 90u);
}

TEST(HistogramTest, Uint64MaxLandsInTopBucketExactly) {
  LatencyHistogram hist;
  hist.record(UINT64_MAX);
  hist.record(UINT64_MAX - 1);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.max(), UINT64_MAX);
  // Midpoint estimates clamp to the observed extremes, so percentiles of
  // top-bucket values never exceed uint64 range.
  EXPECT_EQ(hist.percentile(100), UINT64_MAX);
  EXPECT_GE(hist.percentile(50), UINT64_MAX - 1);
}

TEST(HistogramTest, SumSaturatesInsteadOfWrapping) {
  LatencyHistogram hist;
  // Two near-max values: the exact sum would wrap uint64; the histogram
  // pins it at UINT64_MAX and mean() degrades to a (huge) lower bound.
  hist.record(UINT64_MAX - 1);
  hist.record(UINT64_MAX - 1);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_GE(hist.mean(), double(UINT64_MAX) / 4.0);

  // Same for record_n's value*count product...
  LatencyHistogram bulk;
  bulk.record_n(UINT64_MAX / 2, 1000);
  EXPECT_EQ(bulk.count(), 1000u);
  EXPECT_GE(bulk.mean(), double(UINT64_MAX) / 1e4);

  // ...and for merge() of two saturated sums.
  hist.merge(bulk);
  EXPECT_EQ(hist.count(), 1002u);
  EXPECT_GE(hist.mean(), double(UINT64_MAX) / 1e4);
  EXPECT_EQ(hist.max(), UINT64_MAX - 1);
}

TEST(ExactCounterTest, CdfAtUint64MaxDoesNotWrap) {
  ExactCounter counter(10);
  counter.record(3);
  counter.record(9999);  // overflow bucket
  // In-domain values only: the overflow recording never contributes, even
  // at the top of the query range (value + 1 must not wrap to 0).
  EXPECT_NEAR(counter.cdf(UINT64_MAX), 0.5, 1e-9);
  EXPECT_NEAR(counter.cdf(3), 0.5, 1e-9);
  EXPECT_NEAR(counter.cdf(2), 0.0, 1e-9);
}

TEST(ExactCounterTest, CountsAndCdf) {
  ExactCounter counter(100);
  for (std::uint64_t v = 0; v < 50; ++v) counter.record(v);
  counter.record(999);  // overflow bucket
  EXPECT_EQ(counter.total(), 51u);
  EXPECT_EQ(counter.overflow(), 1u);
  EXPECT_EQ(counter.count_of(10), 1u);
  EXPECT_NEAR(counter.cdf(49), 50.0 / 51.0, 1e-9);
}

// -------------------------------------------------------------- SimClock

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance(10);
  clock.advance(5);
  EXPECT_EQ(clock.now(), 15u);
}

TEST(SimClockTest, AdvanceToOnlyMovesForward) {
  SimClock clock;
  clock.advance(100);
  clock.advance_to(50);  // no-op
  EXPECT_EQ(clock.now(), 100u);
  clock.advance_to(200);
  EXPECT_EQ(clock.now(), 200u);
}

TEST(SimClockTest, ConcurrentAdvanceIsLossless) {
  SimClock clock;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < kPerThread; ++i) clock.advance(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(clock.now(), std::uint64_t{kThreads} * kPerThread);
}

TEST(ScopedTimerTest, MeasuresElapsed) {
  SimClock clock;
  ScopedTimer timer(clock);
  clock.advance(42);
  EXPECT_EQ(timer.elapsed(), 42u);
}

// ------------------------------------------------------------------ bytes

TEST(BytesTest, AlignHelpers) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_down(65, 64), 64u);
  EXPECT_TRUE(is_aligned(4096, 4096));
  EXPECT_FALSE(is_aligned(4097, 4096));
  EXPECT_EQ(div_ceil(0, 64), 0u);
  EXPECT_EQ(div_ceil(1, 64), 1u);
  EXPECT_EQ(div_ceil(64, 64), 1u);
  EXPECT_EQ(div_ceil(65, 64), 2u);
}

TEST(BytesTest, PatternRoundTrips) {
  ByteVec buffer(777);
  fill_pattern(buffer, 42);
  EXPECT_TRUE(verify_pattern(buffer, 42));
  EXPECT_FALSE(verify_pattern(buffer, 43));
  buffer[500] ^= 1;
  EXPECT_FALSE(verify_pattern(buffer, 42));
}

TEST(BytesTest, PatternDependsOnPosition) {
  ByteVec buffer(64);
  fill_pattern(buffer, 7);
  // Verifying a shifted window must fail: the pattern is position-bound.
  EXPECT_FALSE(verify_pattern(ConstByteSpan(buffer).subspan(1), 7));
}

TEST(BytesTest, HexDumpFormatsAndTruncates) {
  ByteVec buffer(300, 0x41);  // 'A'
  const std::string dump = hex_dump(buffer, 32);
  EXPECT_NE(dump.find("0000: 41 41"), std::string::npos);
  EXPECT_NE(dump.find("|AAAAAAAAAAAAAAAA|"), std::string::npos);
  EXPECT_NE(dump.find("truncated"), std::string::npos);
}

TEST(BytesTest, StringSpanRoundTrip) {
  const std::string text = "hello nvme";
  EXPECT_EQ(to_string(as_bytes(text)), text);
}

// ----------------------------------------------------------------- CRC32C

TEST(Crc32cTest, KnownVector) {
  // Standard check value: crc32c("123456789") == 0xE3069283.
  const std::string data = "123456789";
  EXPECT_EQ(crc32c(as_bytes(data)), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(crc32c({}), 0u); }

TEST(Crc32cTest, DetectsCorruption) {
  ByteVec data(128);
  fill_pattern(data, 9);
  const std::uint32_t crc = crc32c(data);
  data[64] ^= 0x80;
  EXPECT_NE(crc32c(data), crc);
}

// ----------------------------------------------------------------- Logging

TEST(LoggingTest, LevelGatesEmission) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(detail::log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(detail::log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(detail::log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(detail::log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(detail::log_enabled(LogLevel::kError));
  set_log_level(before);
}

TEST(LoggingTest, MacroShortCircuitsWhenDisabled) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "costly";
  };
  BX_LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);  // stream expression never evaluated
  set_log_level(before);
}

// ------------------------------------------------------------------ Config

TEST(ConfigTest, ParsesTypes) {
  Config config;
  ASSERT_TRUE(config.set_from_arg("alpha=12").is_ok());
  ASSERT_TRUE(config.set_from_arg("beta=3.5").is_ok());
  ASSERT_TRUE(config.set_from_arg("gamma=true").is_ok());
  ASSERT_TRUE(config.set_from_arg("name=bench").is_ok());
  EXPECT_EQ(config.get_int("alpha", 0), 12);
  EXPECT_DOUBLE_EQ(config.get_double("beta", 0), 3.5);
  EXPECT_TRUE(config.get_bool("gamma", false));
  EXPECT_EQ(config.get_string("name", ""), "bench");
}

TEST(ConfigTest, FallbacksWhenMissingOrMalformed) {
  Config config;
  ASSERT_TRUE(config.set_from_arg("weird=zz").is_ok());
  EXPECT_EQ(config.get_int("missing", 7), 7);
  EXPECT_EQ(config.get_int("weird", 7), 7);
  EXPECT_FALSE(config.get_bool("weird", false));
}

TEST(ConfigTest, SizeSuffixes) {
  Config config;
  ASSERT_TRUE(config.set_from_arg("a=4k").is_ok());
  ASSERT_TRUE(config.set_from_arg("b=2M").is_ok());
  ASSERT_TRUE(config.set_from_arg("c=1g").is_ok());
  EXPECT_EQ(config.get_int("a", 0), 4096);
  EXPECT_EQ(config.get_int("b", 0), 2 << 20);
  EXPECT_EQ(config.get_int("c", 0), 1 << 30);
}

TEST(ConfigTest, RejectsMalformedArgs) {
  Config config;
  EXPECT_FALSE(config.set_from_arg("novalue").is_ok());
  EXPECT_FALSE(config.set_from_arg("=x").is_ok());
}

TEST(ConfigTest, ParseArgvSkipsNonAssignments) {
  Config config;
  const char* argv[] = {"prog", "positional", "k=v"};
  ASSERT_TRUE(config.parse_args(3, argv).is_ok());
  EXPECT_TRUE(config.contains("k"));
  EXPECT_FALSE(config.contains("positional"));
}

}  // namespace
}  // namespace bx
