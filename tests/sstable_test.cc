// SSTable build/read: record packing into pages, index lookups, tombstone
// persistence, full-run scans, and corrupt-input handling.
#include <gtest/gtest.h>

#include "kv/sstable.h"
#include "nand/ftl.h"

namespace bx::kv {
namespace {

nand::Geometry tiny_geometry() {
  nand::Geometry g;
  g.channels = 1;
  g.ways = 2;
  g.blocks_per_die = 16;
  g.pages_per_block = 16;
  g.page_size = 4096;
  return g;
}

class SstableFixture : public ::testing::Test {
 protected:
  SstableFixture()
      : nand_(tiny_geometry(), nand::NandTiming{}, clock_),
        ftl_(nand_, {.overprovision = 0.2, .gc_threshold_blocks = 2}) {}

  KvEntry entry(std::string key, std::size_t value_size, std::uint64_t seq,
                bool tombstone = false) {
    KvEntry e;
    e.key = std::move(key);
    e.value.resize(value_size);
    fill_pattern(e.value, seq);
    e.seq = seq;
    e.tombstone = tombstone;
    return e;
  }

  std::vector<std::uint64_t> lpns(std::uint64_t base, std::uint32_t count) {
    std::vector<std::uint64_t> out(count);
    for (std::uint32_t i = 0; i < count; ++i) out[i] = base + i;
    return out;
  }

  SimClock clock_;
  nand::NandFlash nand_;
  nand::Ftl ftl_;
};

TEST_F(SstableFixture, RecordSizeArithmetic) {
  EXPECT_EQ(record_size(entry("abcd", 100, 1)), 4u + 4u + 100u);
  EXPECT_EQ(record_size(entry("k", 0, 1, true)), 5u);
}

TEST_F(SstableFixture, BuildAndPointLookup) {
  SstableBuilder builder(4096);
  builder.add(entry("apple", 50, 1));
  builder.add(entry("banana", 60, 2));
  builder.add(entry("cherry", 70, 3));
  EXPECT_EQ(builder.entry_count(), 3u);
  EXPECT_EQ(builder.pages_needed(), 1u);

  auto meta = builder.finish(ftl_, lpns(0, 1), /*id=*/1,
                             nand::NandFlash::Blocking::kForeground);
  ASSERT_TRUE(meta.is_ok());

  auto found = sstable_get(ftl_, *meta, "banana");
  ASSERT_TRUE(found.is_ok());
  ASSERT_TRUE(found->has_value());
  EXPECT_EQ((*found)->key, "banana");
  EXPECT_EQ((*found)->value.size(), 60u);
  EXPECT_TRUE(verify_pattern((*found)->value, 2));
  EXPECT_EQ((*found)->seq, 2u);

  auto missing = sstable_get(ftl_, *meta, "durian");
  ASSERT_TRUE(missing.is_ok());
  EXPECT_FALSE(missing->has_value());
}

TEST_F(SstableFixture, CoversUsesKeyRange) {
  SstableBuilder builder(4096);
  builder.add(entry("bb", 8, 1));
  builder.add(entry("dd", 8, 2));
  auto meta = builder.finish(ftl_, lpns(0, 1), 1,
                             nand::NandFlash::Blocking::kForeground);
  ASSERT_TRUE(meta.is_ok());
  EXPECT_TRUE(meta->covers("bb"));
  EXPECT_TRUE(meta->covers("cc"));
  EXPECT_TRUE(meta->covers("dd"));
  EXPECT_FALSE(meta->covers("aa"));
  EXPECT_FALSE(meta->covers("ee"));
}

TEST_F(SstableFixture, RecordsNeverSpanPages) {
  SstableBuilder builder(4096);
  // Each record ~1.4 KB: three per page would need 4.2 KB, so two fit.
  for (int i = 0; i < 6; ++i) {
    builder.add(entry("key" + std::to_string(i), 1400, i + 1));
  }
  EXPECT_EQ(builder.pages_needed(), 3u);
  auto meta = builder.finish(ftl_, lpns(0, 3), 1,
                             nand::NandFlash::Blocking::kForeground);
  ASSERT_TRUE(meta.is_ok());
  for (int i = 0; i < 6; ++i) {
    auto found = sstable_get(ftl_, *meta, "key" + std::to_string(i));
    ASSERT_TRUE(found.is_ok() && found->has_value()) << i;
    EXPECT_TRUE(verify_pattern((*found)->value, std::uint64_t(i) + 1)) << i;
  }
}

TEST_F(SstableFixture, TombstonesPersist) {
  SstableBuilder builder(4096);
  builder.add(entry("dead", 0, 5, /*tombstone=*/true));
  builder.add(entry("live", 10, 6));
  auto meta = builder.finish(ftl_, lpns(0, 1), 1,
                             nand::NandFlash::Blocking::kForeground);
  ASSERT_TRUE(meta.is_ok());
  auto found = sstable_get(ftl_, *meta, "dead");
  ASSERT_TRUE(found.is_ok() && found->has_value());
  EXPECT_TRUE((*found)->tombstone);
}

TEST_F(SstableFixture, ReadAllReturnsEverythingInOrder) {
  SstableBuilder builder(4096);
  std::vector<std::string> keys;
  for (int i = 0; i < 40; ++i) {
    keys.push_back("k" + std::to_string(1000 + i));  // sorted as strings
    builder.add(entry(keys.back(), 300, i + 1));
  }
  auto meta = builder.finish(ftl_, lpns(0, builder.pages_needed()), 1,
                             nand::NandFlash::Blocking::kForeground);
  ASSERT_TRUE(meta.is_ok());
  auto all = sstable_read_all(ftl_, *meta);
  ASSERT_TRUE(all.is_ok());
  ASSERT_EQ(all->size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ((*all)[i].key, keys[i]);
    EXPECT_EQ((*all)[i].seq, i + 1);
  }
}

TEST_F(SstableFixture, FinishRejectsWrongLpnCount) {
  SstableBuilder builder(4096);
  builder.add(entry("a", 8, 1));
  auto meta = builder.finish(ftl_, lpns(0, 2), 1,
                             nand::NandFlash::Blocking::kForeground);
  EXPECT_FALSE(meta.is_ok());
}

TEST_F(SstableFixture, FinishRejectsNonContiguousLpns) {
  SstableBuilder builder(4096);
  for (int i = 0; i < 6; ++i) {
    builder.add(entry("key" + std::to_string(i), 1400, i + 1));
  }
  std::vector<std::uint64_t> scattered = {0, 2, 5};
  auto meta = builder.finish(ftl_, scattered, 1,
                             nand::NandFlash::Blocking::kForeground);
  EXPECT_FALSE(meta.is_ok());
}

TEST_F(SstableFixture, EmptyValueRecords) {
  SstableBuilder builder(4096);
  builder.add(entry("empty", 0, 1));
  auto meta = builder.finish(ftl_, lpns(0, 1), 1,
                             nand::NandFlash::Blocking::kForeground);
  ASSERT_TRUE(meta.is_ok());
  auto found = sstable_get(ftl_, *meta, "empty");
  ASSERT_TRUE(found.is_ok() && found->has_value());
  EXPECT_TRUE((*found)->value.empty());
  EXPECT_FALSE((*found)->tombstone);
}

}  // namespace
}  // namespace bx::kv
