// Exporter correctness: the Perfetto JSON passes its structural checker
// and is byte-identical across same-seed runs; the checker rejects
// malformed traces; the Prometheus exposition lints clean and the lint
// rejects malformed text; expose_gauge and the striped histogram behave.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "core/testbed.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"
#include "obs/prometheus.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tenant/scheduler.h"
#include "tenant/tenant.h"
#include "test_util.h"

namespace bx {
namespace {

using core::Testbed;
using driver::TransferMethod;
using obs::PerfettoCheck;
using obs::PrometheusLint;

constexpr TransferMethod kAllMethods[] = {
    TransferMethod::kPrp,           TransferMethod::kSgl,
    TransferMethod::kByteExpress,   TransferMethod::kByteExpressOoo,
    TransferMethod::kBandSlim,
};

/// A short deterministic run touching all five transfer methods, then a
/// flush so telemetry totals are final.
void run_five_methods(Testbed& bed) {
  ByteVec payload(320);
  fill_pattern(payload, 13);
  for (const TransferMethod method : kAllMethods) {
    for (int i = 0; i < 3; ++i) {
      auto completion = bed.raw_write(payload, method, 1);
      ASSERT_TRUE(completion.is_ok() && completion->ok());
    }
  }
  bed.telemetry().flush(bed.clock().now());
}

TEST(PerfettoTest, FiveMethodRunPassesStructuralCheck) {
  core::TestbedConfig config = test::small_testbed_config();
  config.telemetry.window_ns = 2'000;
  Testbed bed(config);
  run_five_methods(bed);

  const std::string json =
      obs::to_perfetto_json(bed.trace().snapshot(), bed.telemetry().samples(),
                            bed.telemetry().link_rate());
  const PerfettoCheck check = obs::check_perfetto_json(json);
  EXPECT_TRUE(check.ok()) << check.error;
  EXPECT_GT(check.slice_events, 0u);
  EXPECT_GT(check.instant_events, 0u) << "doorbell instants missing";
  EXPECT_GT(check.counter_events, 0u) << "telemetry counter tracks missing";
  EXPECT_GE(check.metadata_events, 3u) << "host/device/link process names";
}

// ByteExpress-R: an inline read renders its device-side chunk burst as a
// "read_chunk" slice on the device track, and the export still passes
// the structural checker (monotonic, properly nested, valid JSON).
TEST(PerfettoTest, InlineReadRendersReadChunkSlice) {
  core::TestbedConfig config = test::small_testbed_config();
  config.telemetry.window_ns = 2'000;
  Testbed bed(config);
  ByteVec payload(320);
  fill_pattern(payload, 13);
  auto seeded = bed.raw_write(payload, TransferMethod::kPrp, 1);
  ASSERT_TRUE(seeded.is_ok() && seeded->ok());
  ByteVec out(payload.size());
  driver::IoRequest read;
  read.opcode = nvme::IoOpcode::kVendorRawRead;
  read.read_buffer = out;
  auto completion = bed.driver().execute(read, 1);
  ASSERT_TRUE(completion.is_ok() && completion->ok());
  bed.telemetry().flush(bed.clock().now());

  const std::string json =
      obs::to_perfetto_json(bed.trace().snapshot(), bed.telemetry().samples(),
                            bed.telemetry().link_rate());
  const PerfettoCheck check = obs::check_perfetto_json(json);
  EXPECT_TRUE(check.ok()) << check.error;
  EXPECT_GT(check.slice_events, 0u);
  EXPECT_NE(json.find("\"read_chunk\""), std::string::npos)
      << "inline read chunk burst missing from the export";
}

TEST(PerfettoTest, SameSeedRunsRenderByteIdentical) {
  std::string renders[2];
  for (std::string& render : renders) {
    core::TestbedConfig config = test::small_testbed_config();
    config.telemetry.window_ns = 2'000;
    Testbed bed(config);
    run_five_methods(bed);
    render = obs::to_perfetto_json(bed.trace().snapshot(),
                                   bed.telemetry().samples(),
                                   bed.telemetry().link_rate());
  }
  EXPECT_EQ(renders[0], renders[1]);
}

// Tenant attribution must survive the export: submit slices carry the
// owning tenant id in their args, and each registered tenant's per-window
// service deltas render as a tenant.t<id>.service counter track.
TEST(PerfettoTest, TenantTagsSurviveExport) {
  core::TestbedConfig config = test::small_testbed_config(2);
  config.controller.wrr_arbitration = true;
  config.telemetry.window_ns = 2'000;
  Testbed bed(config);

  tenant::SchedulerConfig sched_config;
  tenant::TenantConfig t1;
  t1.id = 1;
  t1.hw_qid = 1;
  tenant::TenantConfig t2;
  t2.id = 2;
  t2.hw_qid = 2;
  sched_config.tenants = {t1, t2};
  tenant::TenantScheduler sched(bed, sched_config);
  // Drop the admin-setup trace (queue creation also records submits) so
  // the submit events below are exactly the tenant commands.
  bed.reset_counters();

  ByteVec payload(320);
  fill_pattern(payload, 13);
  for (int i = 0; i < 3; ++i) {
    for (const std::uint16_t tenant : {1, 2}) {
      auto completion = sched.execute_write(tenant, ConstByteSpan(payload),
                                            TransferMethod::kByteExpress);
      ASSERT_TRUE(completion.is_ok() && completion->ok());
    }
  }
  bed.telemetry().flush(bed.clock().now());

  const std::string json =
      obs::to_perfetto_json(bed.trace().snapshot(), bed.telemetry().samples(),
                            bed.telemetry().link_rate());
  const PerfettoCheck check = obs::check_perfetto_json(json);
  EXPECT_TRUE(check.ok()) << check.error;
  // Slice args attribute commands to their tenants.
  EXPECT_NE(json.find("\"tenant\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\": 2"), std::string::npos);
  // Per-tenant service counter tracks, one per registered tenant.
  EXPECT_NE(json.find("tenant.t1.service"), std::string::npos);
  EXPECT_NE(json.find("tenant.t2.service"), std::string::npos);
  EXPECT_NE(json.find("\"admitted\": "), std::string::npos);
  // Untenanted runs must not fabricate an attribution: every submit event
  // in this scenario belongs to tenant 1 or 2, and the trace itself says
  // so (checked against the raw events, not just the JSON text).
  int tagged_submits = 0;
  for (const obs::TraceEvent& event : bed.trace().snapshot()) {
    if (event.stage == obs::TraceStage::kSubmit) {
      EXPECT_TRUE(event.tenant == 1 || event.tenant == 2);
      ++tagged_submits;
    }
  }
  EXPECT_EQ(tagged_submits, 6);
}

TEST(PerfettoCheckerTest, RejectsMalformedTraces) {
  // No traceEvents array at all.
  EXPECT_FALSE(obs::check_perfetto_json("{}").ok());

  // Slice whose pid/tid were never introduced by metadata.
  EXPECT_FALSE(obs::check_perfetto_json(
                   R"({"traceEvents":[)"
                   R"({"name":"a","ph":"X","ts":1.0,"dur":2.0,)"
                   R"("pid":1,"tid":1}]})")
                   .ok());

  const std::string meta =
      R"({"name":"process_name","ph":"M","pid":1,)"
      R"("args":{"name":"host"}},)"
      R"({"name":"thread_name","ph":"M","pid":1,"tid":1,)"
      R"("args":{"name":"q1"}})";

  // X event without dur.
  EXPECT_FALSE(obs::check_perfetto_json(
                   R"({"traceEvents":[)" + meta +
                   R"(,{"name":"a","ph":"X","ts":1.0,"pid":1,"tid":1}]})")
                   .ok());

  // Event without a phase.
  EXPECT_FALSE(obs::check_perfetto_json(
                   R"({"traceEvents":[)" + meta +
                   R"(,{"name":"a","ts":1.0,"pid":1,"tid":1}]})")
                   .ok());

  // Unbalanced B without E.
  EXPECT_FALSE(obs::check_perfetto_json(
                   R"({"traceEvents":[)" + meta +
                   R"(,{"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1}]})")
                   .ok());

  // Non-monotonic slice timestamps.
  EXPECT_FALSE(
      obs::check_perfetto_json(
          R"({"traceEvents":[)" + meta +
          R"(,{"name":"a","ph":"X","ts":5.0,"dur":1.0,"pid":1,"tid":1})" +
          R"(,{"name":"b","ph":"X","ts":1.0,"dur":1.0,"pid":1,"tid":1}]})")
          .ok());

  // And the balanced/complete variant of the same skeleton passes.
  const PerfettoCheck good = obs::check_perfetto_json(
      R"({"traceEvents":[)" + meta +
      R"(,{"name":"a","ph":"X","ts":1.0,"dur":1.0,"pid":1,"tid":1}]})");
  EXPECT_TRUE(good.ok()) << good.error;
  EXPECT_EQ(good.slice_events, 1u);
  EXPECT_EQ(good.metadata_events, 2u);
}

TEST(PrometheusTest, SnapshotExpositionLintsClean) {
  core::TestbedConfig config = test::small_testbed_config();
  config.telemetry.window_ns = 2'000;
  Testbed bed(config);
  run_five_methods(bed);

  const std::string text =
      obs::to_prometheus_text(bed.metrics().snapshot(), &bed.telemetry());
  const PrometheusLint lint = obs::lint_prometheus(text);
  EXPECT_TRUE(lint.ok()) << lint.error;
  EXPECT_GT(lint.families, 0u);
  EXPECT_GT(lint.samples, lint.families);

  EXPECT_NE(text.find("# TYPE bx_telemetry_windows_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("bx_link_wire_bytes_total"), std::string::npos);
  EXPECT_NE(text.find("bx_payload_bytes_total"), std::string::npos);
  EXPECT_NE(text.find("bx_queue_sq_occupancy"), std::string::npos);

  // The telemetry-less variant is also valid exposition.
  const PrometheusLint bare =
      obs::lint_prometheus(obs::to_prometheus_text(bed.metrics().snapshot(),
                                                   /*telemetry=*/nullptr));
  EXPECT_TRUE(bare.ok()) << bare.error;
}

TEST(PrometheusLintTest, RejectsMalformedExposition) {
  // Sample without a TYPE header.
  EXPECT_FALSE(obs::lint_prometheus("bx_orphan_total 3\n").ok());

  // Invalid metric name (leading digit).
  EXPECT_FALSE(
      obs::lint_prometheus("# TYPE 9bad counter\n9bad 1\n").ok());

  // Duplicate sample line.
  EXPECT_FALSE(obs::lint_prometheus("# TYPE bx_x counter\n"
                                    "bx_x 1\n"
                                    "bx_x 2\n")
                   .ok());

  // Well-formed minimal family passes.
  const PrometheusLint good = obs::lint_prometheus(
      "# HELP bx_x a counter\n# TYPE bx_x counter\nbx_x 1\n");
  EXPECT_TRUE(good.ok()) << good.error;
  EXPECT_EQ(good.families, 1u);
  EXPECT_EQ(good.samples, 1u);
}

TEST(MetricsTest, ExposedGaugeRoundTripsThroughSnapshotAndJson) {
  obs::MetricsRegistry registry;
  obs::Gauge depth;
  registry.expose_gauge("driver.q1.sq_occupancy", &depth);
  depth.set(17);
  EXPECT_EQ(registry.gauge_value("driver.q1.sq_occupancy"), 17);

  const obs::MetricsSnapshot snapshot = registry.snapshot();
  bool found = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "driver.q1.sq_occupancy") {
      found = true;
      EXPECT_EQ(value, 17);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(registry.to_json().find("\"driver.q1.sq_occupancy\": 17"),
            std::string::npos);
}

TEST(MetricsTest, StripedHistogramKeepsExactCountsUnderThreads) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("test.latency");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.record(std::uint64_t(t) * kPerThread + i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(histogram.count(), std::uint64_t(kThreads) * kPerThread);
  const LatencyHistogram merged = histogram.snapshot();
  EXPECT_EQ(merged.count(), std::uint64_t(kThreads) * kPerThread);
}

}  // namespace
}  // namespace bx
