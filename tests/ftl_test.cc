// FTL: mapping correctness, out-of-place updates, GC under pressure
// (greedy victim selection, relocation preserving data), trim, WAF
// accounting, and bad-block retirement during writes.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "nand/ftl.h"

namespace bx::nand {
namespace {

Geometry tiny_geometry() {
  Geometry g;
  g.channels = 1;
  g.ways = 2;
  g.blocks_per_die = 10;
  g.pages_per_block = 8;
  g.page_size = 4096;
  return g;
}

NandTiming fast_timing() {
  NandTiming t;
  t.read_ns = 10;
  t.program_ns = 50;
  t.erase_ns = 200;
  t.channel_transfer_ns = 1;
  return t;
}

class FtlFixture : public ::testing::Test {
 protected:
  FtlFixture()
      : nand_(tiny_geometry(), fast_timing(), clock_),
        ftl_(nand_, {.overprovision = 0.25, .gc_threshold_blocks = 2}) {}

  ByteVec page_data(std::uint64_t seed) {
    ByteVec data(64);
    fill_pattern(data, seed);
    return data;
  }

  SimClock clock_;
  NandFlash nand_;
  Ftl ftl_;
};

TEST_F(FtlFixture, LogicalSpaceReflectsOverprovisioning) {
  // 160 physical pages * 0.75 = 120 logical.
  EXPECT_EQ(ftl_.logical_pages(), 120u);
  EXPECT_EQ(ftl_.page_size(), 4096u);
}

TEST_F(FtlFixture, WriteReadRoundTrip) {
  const ByteVec data = page_data(1);
  ASSERT_TRUE(ftl_.write(5, data, NandFlash::Blocking::kForeground).is_ok());
  EXPECT_TRUE(ftl_.is_mapped(5));
  ByteVec read(64);
  ASSERT_TRUE(ftl_.read(5, read).is_ok());
  EXPECT_EQ(read, data);
}

TEST_F(FtlFixture, OverwriteReturnsLatestData) {
  ASSERT_TRUE(ftl_.write(3, page_data(1),
                         NandFlash::Blocking::kForeground).is_ok());
  ASSERT_TRUE(ftl_.write(3, page_data(2),
                         NandFlash::Blocking::kForeground).is_ok());
  ByteVec read(64);
  ASSERT_TRUE(ftl_.read(3, read).is_ok());
  EXPECT_TRUE(verify_pattern(read, 2));
  EXPECT_EQ(ftl_.user_writes(), 2u);
}

TEST_F(FtlFixture, ReadUnmappedFails) {
  ByteVec read(64);
  EXPECT_EQ(ftl_.read(7, read).code(), StatusCode::kNotFound);
}

TEST_F(FtlFixture, OutOfRangeLpnRejected) {
  ByteVec data(64);
  EXPECT_EQ(ftl_.write(ftl_.logical_pages(), data,
                       NandFlash::Blocking::kForeground)
                .code(),
            StatusCode::kOutOfRange);
  ByteVec read(64);
  EXPECT_EQ(ftl_.read(ftl_.logical_pages(), read).code(),
            StatusCode::kOutOfRange);
}

TEST_F(FtlFixture, TrimUnmapsAndIsIdempotent) {
  ASSERT_TRUE(ftl_.write(9, page_data(9),
                         NandFlash::Blocking::kForeground).is_ok());
  ASSERT_TRUE(ftl_.trim(9).is_ok());
  EXPECT_FALSE(ftl_.is_mapped(9));
  ASSERT_TRUE(ftl_.trim(9).is_ok());  // second trim is a no-op
  ByteVec read(64);
  EXPECT_EQ(ftl_.read(9, read).code(), StatusCode::kNotFound);
}

TEST_F(FtlFixture, SustainedOverwritesTriggerGcAndPreserveData) {
  // Hammer a small working set far beyond physical capacity to force GC.
  std::map<std::uint64_t, std::uint64_t> truth;  // lpn -> seed
  Rng rng(7);
  for (int i = 0; i < 600; ++i) {
    const std::uint64_t lpn = rng.next_below(40);
    const std::uint64_t seed = rng.next();
    ASSERT_TRUE(ftl_.write(lpn, page_data(seed),
                           NandFlash::Blocking::kForeground)
                    .is_ok())
        << "write " << i;
    truth[lpn] = seed;
  }
  EXPECT_GT(ftl_.gc_runs(), 0u);
  EXPECT_GT(ftl_.gc_relocations(), 0u);
  EXPECT_GT(ftl_.waf(), 1.0);

  for (const auto& [lpn, seed] : truth) {
    ByteVec read(64);
    ASSERT_TRUE(ftl_.read(lpn, read).is_ok()) << "lpn " << lpn;
    EXPECT_TRUE(verify_pattern(read, seed)) << "lpn " << lpn;
  }
}

TEST_F(FtlFixture, ColdDataSurvivesGcOfHotBlocks) {
  // Write cold data once.
  for (std::uint64_t lpn = 0; lpn < 10; ++lpn) {
    ASSERT_TRUE(ftl_.write(lpn, page_data(lpn),
                           NandFlash::Blocking::kForeground).is_ok());
  }
  // Hammer one hot page to force GC cycles around the cold data.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(ftl_.write(50, page_data(1000 + i),
                           NandFlash::Blocking::kForeground).is_ok());
  }
  for (std::uint64_t lpn = 0; lpn < 10; ++lpn) {
    ByteVec read(64);
    ASSERT_TRUE(ftl_.read(lpn, read).is_ok());
    EXPECT_TRUE(verify_pattern(read, lpn)) << "cold lpn " << lpn;
  }
}

TEST_F(FtlFixture, WafStaysReasonableUnderUniformLoad) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ftl_.write(rng.next_below(ftl_.logical_pages()),
                           page_data(i), NandFlash::Blocking::kForeground)
                    .is_ok());
  }
  EXPECT_GE(ftl_.waf(), 1.0);
  EXPECT_LT(ftl_.waf(), 6.0);  // sane for 25% OP under uniform traffic
}

TEST_F(FtlFixture, BadBlockIsRetiredAndWriteRetried) {
  // Poison the first block every die would use, then write: the FTL must
  // transparently retire it and succeed elsewhere.
  nand_.mark_bad_block(0, 0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ftl_.write(std::uint64_t(i), page_data(i),
                           NandFlash::Blocking::kForeground)
                    .is_ok());
  }
  for (int i = 0; i < 20; ++i) {
    ByteVec read(64);
    ASSERT_TRUE(ftl_.read(std::uint64_t(i), read).is_ok());
    EXPECT_TRUE(verify_pattern(read, std::uint64_t(i)));
  }
}

TEST_F(FtlFixture, PreexistingBadBlocksExcludedAtInit) {
  NandFlash nand(tiny_geometry(), fast_timing(), clock_);
  nand.mark_bad_block(0, 0);
  nand.mark_bad_block(1, 5);
  Ftl ftl(nand, {.overprovision = 0.25, .gc_threshold_blocks = 2});
  EXPECT_EQ(ftl.retired_blocks(), 2u);
  EXPECT_EQ(ftl.free_blocks(0), 9u);
  EXPECT_EQ(ftl.free_blocks(1), 9u);
}

TEST_F(FtlFixture, CapacityExhaustionReportsError) {
  // Fill every logical page, then one more round of overwrites is fine,
  // but exceeding physical capacity with valid data cannot happen (logical
  // < physical); instead fill all logical pages and expect success.
  for (std::uint64_t lpn = 0; lpn < ftl_.logical_pages(); ++lpn) {
    ASSERT_TRUE(ftl_.write(lpn, page_data(lpn),
                           NandFlash::Blocking::kForeground)
                    .is_ok())
        << "lpn " << lpn;
  }
  // Every page is still readable.
  ByteVec read(64);
  ASSERT_TRUE(ftl_.read(ftl_.logical_pages() - 1, read).is_ok());
}

TEST_F(FtlFixture, OversizedWriteRejected) {
  ByteVec data(ftl_.page_size() + 1);
  EXPECT_EQ(
      ftl_.write(0, data, NandFlash::Blocking::kForeground).code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bx::nand
