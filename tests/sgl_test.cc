// SGL descriptor construction, packing into the SQE dptr pair, and the §5
// semantics (data block for fine-grained transfers, bit bucket for
// discarding read data).
#include <gtest/gtest.h>

#include "nvme/sgl.h"

namespace bx::nvme {
namespace {

TEST(SglTest, DataBlockRoundTripsThroughDptr) {
  auto descriptor = build_sgl_data_block(0xABCD000, 96);
  ASSERT_TRUE(descriptor.is_ok());
  const auto [low, high] = descriptor->pack();
  const SglDescriptor decoded = SglDescriptor::unpack(low, high);
  EXPECT_EQ(decoded.address, 0xABCD000u);
  EXPECT_EQ(decoded.length, 96u);
  EXPECT_EQ(decoded.type, SglDescriptorType::kDataBlock);
}

TEST(SglTest, BitBucketEncodesLengthOnly) {
  const SglDescriptor bucket = make_bit_bucket(512);
  EXPECT_EQ(bucket.type, SglDescriptorType::kBitBucket);
  EXPECT_EQ(bucket.address, 0u);
  EXPECT_EQ(bucket.length, 512u);
  const auto [low, high] = bucket.pack();
  EXPECT_EQ(SglDescriptor::unpack(low, high).type,
            SglDescriptorType::kBitBucket);
}

TEST(SglTest, RejectsNullAddress) {
  EXPECT_FALSE(build_sgl_data_block(0, 64).is_ok());
}

TEST(SglTest, RejectsZeroLength) {
  EXPECT_FALSE(build_sgl_data_block(0x1000, 0).is_ok());
}

TEST(SglTest, RejectsOversizedLength) {
  EXPECT_FALSE(
      build_sgl_data_block(0x1000, std::uint64_t{UINT32_MAX} + 1).is_ok());
}

TEST(SglTest, TypeLivesInHighNibble) {
  SglDescriptor descriptor;
  descriptor.address = 0x1234;
  descriptor.length = 1;
  descriptor.type = SglDescriptorType::kLastSegment;
  const auto [low, high] = descriptor.pack();
  EXPECT_EQ(low, 0x1234u);
  EXPECT_EQ((high >> 60) & 0xf,
            static_cast<std::uint64_t>(SglDescriptorType::kLastSegment));
  EXPECT_EQ(high & 0xffffffffu, 1u);
}

// Fine-grained lengths survive the round trip exactly — the property §5
// relies on (SGL can describe a 7-byte transfer, PRP cannot).
class SglLengths : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SglLengths, ExactLengthPreserved) {
  auto descriptor = build_sgl_data_block(0x4000, GetParam());
  ASSERT_TRUE(descriptor.is_ok());
  const auto [low, high] = descriptor->pack();
  EXPECT_EQ(SglDescriptor::unpack(low, high).length, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SglLengths,
                         ::testing::Values(1, 7, 32, 64, 100, 4095, 4096,
                                           4097, 1u << 20, UINT32_MAX));

}  // namespace
}  // namespace bx::nvme
