// Windowed telemetry sampler: window-grid semantics, exact conservation
// against the TrafficCounter under QD>1 multi-queue load, ring bounds,
// downsampling, reset semantics, the disabled path, and the TSV dump.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "core/testbed.h"
#include "driver/request.h"
#include "nvme/inline_read_wire.h"
#include "obs/telemetry.h"
#include "pcie/traffic_counter.h"
#include "test_util.h"

namespace bx {
namespace {

using core::Testbed;
using driver::TransferMethod;
using obs::LinkDir;
using obs::Telemetry;
using obs::TelemetryConfig;
using obs::TelemetrySample;
using obs::TlpKind;

TelemetryConfig tiny_config(Nanoseconds window_ns,
                            std::size_t max_windows = 1u << 16) {
  TelemetryConfig config;
  config.window_ns = window_ns;
  config.max_windows = max_windows;
  return config;
}

TEST(TelemetryWindowTest, AdvanceClosesExpiredWindowsOnTheGrid) {
  Telemetry telemetry(tiny_config(100));
  telemetry.on_tlps(LinkDir::kDownstream, TlpKind::kMWr, 2, 128, 192);
  telemetry.advance_to(50);  // still inside [0, 100): nothing closes
  EXPECT_EQ(telemetry.windows_closed(), 0u);

  telemetry.advance_to(250);  // closes [0,100) and [100,200)
  const std::vector<TelemetrySample> samples = telemetry.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].start_ns, 0);
  EXPECT_EQ(samples[0].end_ns, 100);
  EXPECT_EQ(samples[1].start_ns, 100);
  EXPECT_EQ(samples[1].end_ns, 200);
  // All traffic recorded before the first close lands in window 0.
  EXPECT_EQ(samples[0].of(LinkDir::kDownstream, TlpKind::kMWr).tlps, 2u);
  EXPECT_EQ(samples[0].of(LinkDir::kDownstream, TlpKind::kMWr).data_bytes,
            128u);
  EXPECT_EQ(samples[0].of(LinkDir::kDownstream, TlpKind::kMWr).wire_bytes,
            192u);
  EXPECT_EQ(samples[1].wire_bytes(), 0u);
}

TEST(TelemetryWindowTest, FlushClosesPartialWindowAndConservesSums) {
  Telemetry telemetry(tiny_config(100));
  telemetry.on_tlps(LinkDir::kDownstream, TlpKind::kMWr, 3, 100, 196);
  telemetry.advance_to(150);
  telemetry.on_tlps(LinkDir::kUpstream, TlpKind::kCpl, 1, 64, 92);
  telemetry.on_payload(300);
  telemetry.flush(150);  // partial window [100, 150)

  const std::vector<TelemetrySample> samples = telemetry.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples.back().start_ns, 100);
  EXPECT_EQ(samples.back().end_ns, 150);

  const auto totals = Telemetry::sum_flows(samples);
  EXPECT_EQ(totals[0][std::size_t(TlpKind::kMWr)].tlps, 3u);
  EXPECT_EQ(totals[0][std::size_t(TlpKind::kMWr)].wire_bytes, 196u);
  EXPECT_EQ(totals[1][std::size_t(TlpKind::kCpl)].data_bytes, 64u);
  std::uint64_t payload = 0;
  for (const TelemetrySample& s : samples) payload += s.payload_bytes;
  EXPECT_EQ(payload, 300u);
}

TEST(TelemetryWindowTest, RingCapDropsOldestAndCounts) {
  Telemetry telemetry(tiny_config(100, /*max_windows=*/4));
  telemetry.advance_to(1000);  // closes 10 empty windows
  EXPECT_EQ(telemetry.windows_closed(), 10u);
  EXPECT_EQ(telemetry.windows_dropped(), 6u);
  const std::vector<TelemetrySample> samples = telemetry.samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().index, 6u);
  EXPECT_EQ(samples.back().index, 9u);
}

TEST(TelemetryWindowTest, DownsamplePreservesSumsAndSpan) {
  Telemetry telemetry(tiny_config(10));
  for (int i = 0; i < 100; ++i) {
    telemetry.on_tlps(LinkDir::kDownstream, TlpKind::kMWr, 1,
                      std::uint64_t(i), std::uint64_t(i) + 32);
    telemetry.on_payload(std::uint64_t(i));
    telemetry.advance_to((i + 1) * 10);
  }
  const std::vector<TelemetrySample> full = telemetry.samples();
  ASSERT_EQ(full.size(), 100u);
  const std::vector<TelemetrySample> thin = Telemetry::downsample(full, 7);
  ASSERT_LE(thin.size(), 7u);
  EXPECT_EQ(thin.front().start_ns, full.front().start_ns);
  EXPECT_EQ(thin.back().end_ns, full.back().end_ns);

  const auto want = Telemetry::sum_flows(full);
  const auto got = Telemetry::sum_flows(thin);
  for (std::size_t dir = 0; dir < obs::kLinkDirs; ++dir) {
    for (std::size_t kind = 0; kind < obs::kTlpKinds; ++kind) {
      EXPECT_EQ(got[dir][kind].tlps, want[dir][kind].tlps);
      EXPECT_EQ(got[dir][kind].data_bytes, want[dir][kind].data_bytes);
      EXPECT_EQ(got[dir][kind].wire_bytes, want[dir][kind].wire_bytes);
    }
  }
  std::uint64_t want_payload = 0, got_payload = 0;
  for (const TelemetrySample& s : full) want_payload += s.payload_bytes;
  for (const TelemetrySample& s : thin) got_payload += s.payload_bytes;
  EXPECT_EQ(got_payload, want_payload);
}

TEST(TelemetryWindowTest, DumpTsvHasHeaderAndOneRowPerWindow) {
  Telemetry telemetry(tiny_config(100));
  telemetry.on_tlps(LinkDir::kUpstream, TlpKind::kMWr, 1, 16, 48);
  telemetry.flush(130);
  const std::string tsv = Telemetry::dump_tsv(telemetry.samples(), 4.0);
  EXPECT_NE(tsv.find("# bx-telemetry v1 bytes_per_ns=4.000000"),
            std::string::npos);
  EXPECT_NE(tsv.find("payload_bytes\tbacklog"), std::string::npos);
  std::size_t lines = 0;
  for (const char c : tsv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, telemetry.samples().size() + 2);  // 2 header comments
}

// --- testbed integration ---

/// Closed-loop driver load: `ops` inline writes at `qd` outstanding per
/// queue, round-robin over all I/O queues.
void run_closed_loop(Testbed& bed, std::uint64_t ops, std::uint32_t qd,
                     std::uint32_t payload_size, TransferMethod method) {
  const std::uint16_t queues = bed.config().driver.io_queue_count;
  ByteVec payload(payload_size);
  fill_pattern(payload, payload_size);
  driver::IoRequest request;
  request.opcode = nvme::IoOpcode::kVendorRawWrite;
  request.method = method;
  request.write_data = payload;

  std::vector<driver::Submitted> inflight;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto qid = static_cast<std::uint16_t>(1 + i % queues);
    auto handle = bed.driver().submit(request, qid);
    ASSERT_TRUE(handle.is_ok());
    inflight.push_back(*handle);
    if (inflight.size() >= std::size_t{qd} * queues) {
      auto completion = bed.driver().wait(inflight.front());
      ASSERT_TRUE(completion.is_ok() && completion->ok());
      inflight.erase(inflight.begin());
    }
  }
  for (const driver::Submitted& handle : inflight) {
    auto completion = bed.driver().wait(handle);
    ASSERT_TRUE(completion.is_ok() && completion->ok());
  }
}

// The tentpole acceptance check: a QD>1 multi-queue run yields >= 50
// windows whose per-direction sums reconcile *exactly* with the
// TrafficCounter, whose payload sums match what the host submitted, and
// whose per-queue doorbell deltas match the BAR write counts.
TEST(TelemetryTestbedTest, MultiQueueQd4ReconcilesExactly) {
  core::TestbedConfig config = test::small_testbed_config(/*io_queues=*/4);
  config.telemetry.window_ns = 2'000;
  Testbed bed(config);
  bed.reset_counters();  // re-baseline past the queue-creation traffic

  constexpr std::uint64_t kOps = 300;
  constexpr std::uint32_t kPayload = 256;
  run_closed_loop(bed, kOps, /*qd=*/4, kPayload,
                  TransferMethod::kByteExpress);

  bed.telemetry().flush(bed.clock().now());
  const std::vector<TelemetrySample> samples = bed.telemetry().samples();
  EXPECT_GE(samples.size(), 50u) << "window too coarse for this run";
  EXPECT_EQ(bed.telemetry().windows_dropped(), 0u);

  // Per-direction sums over all windows == TrafficCounter totals, exactly.
  const auto totals = Telemetry::sum_flows(samples);
  for (std::size_t dir = 0; dir < obs::kLinkDirs; ++dir) {
    const pcie::TrafficCell want =
        bed.traffic().total(static_cast<pcie::Direction>(dir));
    obs::FlowCell got;
    for (std::size_t kind = 0; kind < obs::kTlpKinds; ++kind) {
      got += totals[dir][kind];
    }
    EXPECT_EQ(got.tlps, want.tlps) << "dir " << dir;
    EXPECT_EQ(got.data_bytes, want.data_bytes) << "dir " << dir;
    EXPECT_EQ(got.wire_bytes, want.wire_bytes) << "dir " << dir;
  }

  // Payload accounting: every submitted byte shows up once.
  std::uint64_t payload = 0;
  for (const TelemetrySample& s : samples) payload += s.payload_bytes;
  EXPECT_EQ(payload, kOps * kPayload);

  // Doorbell deltas per queue == BAR register write counts. (reset_
  // counters() does not reset the BAR counters, so compare run deltas via
  // the telemetry re-baseline: sums start at zero after reset.)
  std::uint64_t sq_doorbells[5] = {};
  std::uint64_t cq_doorbells[5] = {};
  for (const TelemetrySample& s : samples) {
    for (const obs::QueueWindow& q : s.queues) {
      ASSERT_LE(q.qid, 4);
      sq_doorbells[q.qid] += q.sq_doorbells;
      cq_doorbells[q.qid] += q.cq_doorbells;
    }
  }
  std::uint64_t sq_total = 0;
  for (std::uint16_t qid = 1; qid <= 4; ++qid) {
    sq_total += sq_doorbells[qid];
    EXPECT_EQ(cq_doorbells[qid], kOps / 4)
        << "every command completes once on q" << qid;
  }
  EXPECT_EQ(sq_total, kOps) << "one SQ ring per inline command";
}

TEST(TelemetryTestbedTest, StageWindowsReconcileWithStageLog) {
  core::TestbedConfig config = test::small_testbed_config();
  config.telemetry.window_ns = 2'000;
  Testbed bed(config);

  ByteVec payload(200);
  fill_pattern(payload, 7);
  for (int i = 0; i < 25; ++i) {
    auto completion =
        bed.raw_write(payload, TransferMethod::kByteExpress, 1);
    ASSERT_TRUE(completion.is_ok() && completion->ok());
  }
  bed.telemetry().flush(bed.clock().now());

  const nvme::StageStatsLog& log = bed.controller().stage_stats();
  std::uint64_t fetch_count = 0, fetch_ns = 0, chunk_count = 0,
                completion_count = 0;
  for (const TelemetrySample& s : bed.telemetry().samples()) {
    fetch_count += s.stage_count[std::size_t(obs::TraceStage::kSqeFetch)];
    fetch_ns += s.stage_ns[std::size_t(obs::TraceStage::kSqeFetch)];
    chunk_count += s.stage_count[std::size_t(obs::TraceStage::kChunkFetch)];
    completion_count +=
        s.stage_count[std::size_t(obs::TraceStage::kCompletion)];
  }
  EXPECT_EQ(fetch_count, log.sqe_fetch.count);
  EXPECT_EQ(fetch_ns, log.sqe_fetch.total_ns);
  EXPECT_EQ(chunk_count, log.chunk_fetch.count);
  EXPECT_EQ(completion_count, log.completion.count);
}

// ByteExpress-R reverse-direction conservation: over a run of inline
// reads the windowed upstream MWr flows telescope exactly to the traffic
// counter, and decompose exactly into the three posted-write classes the
// read path emits — chunk MWrs into the completion ring, CQE write-backs
// and MSI-X interrupts. No read byte crosses upstream any other way.
TEST(TelemetryTestbedTest, InlineReadWindowsReconcileUpstreamMwrExactly) {
  namespace inr = nvme::inline_read;
  core::TestbedConfig config = test::small_testbed_config();
  config.telemetry.window_ns = 2'000;
  Testbed bed(config);

  constexpr std::uint32_t kPayload = 300;
  ByteVec payload(kPayload);
  fill_pattern(payload, 11);
  auto seeded = bed.raw_write(payload, TransferMethod::kPrp, 1);
  ASSERT_TRUE(seeded.is_ok() && seeded->ok());
  bed.reset_counters();

  constexpr std::uint64_t kOps = 40;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ByteVec out(kPayload);
    driver::IoRequest read;
    read.opcode = nvme::IoOpcode::kVendorRawRead;
    read.read_buffer = out;
    auto completion = bed.driver().execute(read, 1);
    ASSERT_TRUE(completion.is_ok() && completion->ok());
    ASSERT_EQ(out, payload);
  }
  bed.telemetry().flush(bed.clock().now());

  // Per-direction window sums == TrafficCounter totals, exactly.
  const auto totals = Telemetry::sum_flows(bed.telemetry().samples());
  for (std::size_t dir = 0; dir < obs::kLinkDirs; ++dir) {
    obs::FlowCell got;
    for (std::size_t kind = 0; kind < obs::kTlpKinds; ++kind) {
      got += totals[dir][kind];
    }
    const pcie::TrafficCell want =
        bed.traffic().total(static_cast<pcie::Direction>(dir));
    EXPECT_EQ(got.tlps, want.tlps) << "dir " << dir;
    EXPECT_EQ(got.data_bytes, want.data_bytes) << "dir " << dir;
    EXPECT_EQ(got.wire_bytes, want.wire_bytes) << "dir " << dir;
  }

  // The chunk class alone carries exactly chunks-per-read 64 B slots.
  const std::uint32_t chunks = inr::read_chunks_for(kPayload);
  const pcie::TrafficCell chunk_cell = bed.traffic().cell(
      pcie::Direction::kUpstream, pcie::TrafficClass::kDataInlineRead);
  EXPECT_EQ(chunk_cell.tlps, kOps * chunks);
  EXPECT_EQ(chunk_cell.data_bytes, kOps * chunks * inr::kReadSlotBytes);

  // Upstream MWr decomposition: chunks + CQEs + MSI-X, nothing else.
  const pcie::TrafficCell cqe_cell = bed.traffic().cell(
      pcie::Direction::kUpstream, pcie::TrafficClass::kCompletion);
  const pcie::TrafficCell msix_cell = bed.traffic().cell(
      pcie::Direction::kUpstream, pcie::TrafficClass::kInterrupt);
  const obs::FlowCell& up_mwr =
      totals[std::size_t(LinkDir::kUpstream)][std::size_t(TlpKind::kMWr)];
  EXPECT_EQ(up_mwr.tlps, chunk_cell.tlps + cqe_cell.tlps + msix_cell.tlps);
  EXPECT_EQ(up_mwr.data_bytes,
            chunk_cell.data_bytes + cqe_cell.data_bytes + msix_cell.data_bytes);
  EXPECT_EQ(up_mwr.wire_bytes,
            chunk_cell.wire_bytes + cqe_cell.wire_bytes + msix_cell.wire_bytes);
  // And the PRP scatter path stayed cold.
  EXPECT_EQ(bed.traffic()
                .cell(pcie::Direction::kUpstream, pcie::TrafficClass::kDataPrp)
                .tlps,
            0u);
}

TEST(TelemetryTestbedTest, ResetCountersRestartsSampling) {
  core::TestbedConfig config = test::small_testbed_config();
  config.telemetry.window_ns = 2'000;
  Testbed bed(config);

  ByteVec payload(128);
  fill_pattern(payload, 3);
  auto first = bed.raw_write(payload, TransferMethod::kPrp, 1);
  ASSERT_TRUE(first.is_ok() && first->ok());

  bed.reset_counters();
  EXPECT_TRUE(bed.telemetry().samples().empty());
  EXPECT_EQ(bed.telemetry().windows_closed(), 0u);

  auto second = bed.raw_write(payload, TransferMethod::kByteExpress, 1);
  ASSERT_TRUE(second.is_ok() && second->ok());
  bed.telemetry().flush(bed.clock().now());

  // Post-reset samples reconcile with the post-reset traffic counters.
  const auto totals = Telemetry::sum_flows(bed.telemetry().samples());
  for (std::size_t dir = 0; dir < obs::kLinkDirs; ++dir) {
    obs::FlowCell got;
    for (std::size_t kind = 0; kind < obs::kTlpKinds; ++kind) {
      got += totals[dir][kind];
    }
    const pcie::TrafficCell want =
        bed.traffic().total(static_cast<pcie::Direction>(dir));
    EXPECT_EQ(got.wire_bytes, want.wire_bytes) << "dir " << dir;
    EXPECT_EQ(got.tlps, want.tlps) << "dir " << dir;
  }
}

TEST(TelemetryTestbedTest, DisabledTelemetryStaysEmpty) {
  core::TestbedConfig config = test::small_testbed_config();
  config.telemetry.enabled = false;
  Testbed bed(config);

  ByteVec payload(512);
  fill_pattern(payload, 11);
  for (int i = 0; i < 5; ++i) {
    auto completion =
        bed.raw_write(payload, TransferMethod::kByteExpress, 1);
    ASSERT_TRUE(completion.is_ok() && completion->ok());
  }
  bed.telemetry().flush(bed.clock().now());
  EXPECT_TRUE(bed.telemetry().samples().empty());
  EXPECT_EQ(bed.telemetry().windows_closed(), 0u);
}

}  // namespace
}  // namespace bx
