// Self-test for the bxdiff perf-regression gate (tools/bxdiff_lib.cc) and
// the minimal JSON reader underneath it. The acceptance bar from the CI
// gate's point of view: two identical-seed reports diff clean, and an
// injected 10% latency slowdown is flagged.

#include <gtest/gtest.h>

#include <string>

#include "bxdiff_lib.h"
#include "common/json.h"

namespace bx {
namespace {

using tools::DiffConfig;
using tools::DiffReport;
using tools::diff_reports;

// ---------------------------------------------------------------------------
// JSON reader.

TEST(JsonTest, ParsesScalarsAndStructure) {
  const auto doc = json::parse(
      R"({"name": "x", "n": 42, "f": -2.5e1, "flag": true, "none": null,)"
      R"( "arr": [1, 2, 3], "nested": {"k": "v\n\t\"q\""}})");
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const json::Value& root = **doc;
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.get("name")->string, "x");
  EXPECT_TRUE(root.get("n")->is_integer);
  EXPECT_EQ(root.get("n")->integer, 42);
  EXPECT_DOUBLE_EQ(root.get("f")->number, -25.0);
  EXPECT_FALSE(root.get("f")->is_integer);
  EXPECT_TRUE(root.get("flag")->boolean);
  EXPECT_EQ(root.get("none")->kind, json::Kind::kNull);
  ASSERT_EQ(root.get("arr")->items.size(), 3U);
  EXPECT_EQ(root.get("arr")->items[1]->integer, 2);
  EXPECT_EQ(root.get("nested")->get("k")->string, "v\n\t\"q\"");
  EXPECT_EQ(root.get("absent"), nullptr);
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  const auto doc = json::parse(R"({"s": "a\u00e9\u20ac"})");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ((*doc)->get("s")->string, "a\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse("").is_ok());
  EXPECT_FALSE(json::parse("{").is_ok());
  EXPECT_FALSE(json::parse("{\"a\": }").is_ok());
  EXPECT_FALSE(json::parse("[1, 2,]").is_ok());
  EXPECT_FALSE(json::parse("nul").is_ok());
  EXPECT_FALSE(json::parse("{} trailing").is_ok());
  EXPECT_FALSE(json::parse("\"unterminated").is_ok());
  EXPECT_FALSE(json::parse("{\"s\": \"\\ud800\"}").is_ok());
}

TEST(JsonTest, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(json::parse(deep).is_ok());
}

// ---------------------------------------------------------------------------
// bxdiff on bench_common (schema 2) reports.

std::string schema2_report(double p99_scale, double kops_scale,
                           bool include_sgl_row) {
  char row[512];
  std::string out =
      "{\"bench\": \"ablation_read_path\", \"schema_version\": 2, "
      "\"config\": {}, \"rows\": [";
  std::snprintf(row, sizeof(row),
                "{\"label\": \"inline_512\", \"method\": \"byteexpress-r\", "
                "\"ops\": 20000, \"wire_bytes\": 4096000, "
                "\"mean_latency_ns\": 2100.0, \"p50_latency_ns\": 2000, "
                "\"p99_latency_ns\": %.1f, \"kops\": %.1f}",
                4000.0 * p99_scale, 480.0 * kops_scale);
  out += row;
  if (include_sgl_row) {
    out +=
        ", {\"label\": \"sgl_512\", \"method\": \"sgl\", \"ops\": 20000, "
        "\"wire_bytes\": 11264000, \"mean_latency_ns\": 3500.0, "
        "\"p50_latency_ns\": 3400, \"p99_latency_ns\": 6000, "
        "\"kops\": 300.0}";
  }
  out += "]}";
  return out;
}

DiffReport must_diff(const std::string& baseline, const std::string& candidate,
                     const DiffConfig& config = DiffConfig{}) {
  const auto base = json::parse(baseline);
  const auto cand = json::parse(candidate);
  EXPECT_TRUE(base.is_ok()) << base.status().to_string();
  EXPECT_TRUE(cand.is_ok()) << cand.status().to_string();
  auto report = diff_reports(**base, **cand, config);
  EXPECT_TRUE(report.is_ok()) << report.status().to_string();
  return *report;
}

TEST(BxdiffTest, IdenticalReportsDiffClean) {
  const std::string doc = schema2_report(1.0, 1.0, true);
  const DiffReport report = must_diff(doc, doc);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.regressions, 0U);
  EXPECT_EQ(report.improvements, 0U);
  EXPECT_TRUE(report.missing_rows.empty());
  EXPECT_GT(report.metrics_compared, 0U);
}

TEST(BxdiffTest, TenPercentSlowdownIsFlagged) {
  const DiffReport report = must_diff(schema2_report(1.0, 1.0, true),
                                      schema2_report(1.15, 1.0, true));
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.regressions, 1U);
  bool found = false;
  for (const auto& delta : report.deltas) {
    if (!delta.regressed) continue;
    found = true;
    EXPECT_EQ(delta.row_key, "inline_512/byteexpress-r");
    EXPECT_EQ(delta.metric, "p99_latency_ns");
    EXPECT_NEAR(delta.rel_change, 0.15, 1e-9);
  }
  EXPECT_TRUE(found);
  const std::string text = tools::render_diff_report(report, false);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
}

TEST(BxdiffTest, ThroughputDropIsFlaggedAndLatencyDropIsImprovement) {
  // kops is higher-is-better: a 20% drop regresses. p99 falling 20% at the
  // same time is an improvement, not a regression.
  const DiffReport report = must_diff(schema2_report(1.0, 1.0, true),
                                      schema2_report(0.8, 0.8, true));
  EXPECT_EQ(report.regressions, 1U);
  EXPECT_EQ(report.improvements, 1U);
  for (const auto& delta : report.deltas) {
    if (delta.regressed) {
      EXPECT_EQ(delta.metric, "kops");
    }
    if (delta.improved) {
      EXPECT_EQ(delta.metric, "p99_latency_ns");
    }
  }
}

TEST(BxdiffTest, SmallWobbleBelowThresholdIsClean) {
  // 3% movement is inside the default 10% threshold.
  const DiffReport report = must_diff(schema2_report(1.0, 1.0, true),
                                      schema2_report(1.03, 0.97, true));
  EXPECT_TRUE(report.clean());
}

TEST(BxdiffTest, AbsoluteFloorSuppressesTinyBaselines) {
  // 50% relative blowup on a 40 ns p50 is 20 ns of movement — below the
  // 50 ns floor, so deterministic-noise territory, not a regression.
  const std::string base =
      "{\"bench\": \"b\", \"schema_version\": 2, \"rows\": ["
      "{\"label\": \"tiny\", \"p50_latency_ns\": 40}]}";
  const std::string cand =
      "{\"bench\": \"b\", \"schema_version\": 2, \"rows\": ["
      "{\"label\": \"tiny\", \"p50_latency_ns\": 60}]}";
  EXPECT_TRUE(must_diff(base, cand).clean());
}

TEST(BxdiffTest, MissingRowFailsTheGate) {
  const DiffReport report = must_diff(schema2_report(1.0, 1.0, true),
                                      schema2_report(1.0, 1.0, false));
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.missing_rows.size(), 1U);
  EXPECT_EQ(report.missing_rows[0], "sgl_512/sgl");
}

TEST(BxdiffTest, NewCandidateRowIsInformationalOnly) {
  const DiffReport report = must_diff(schema2_report(1.0, 1.0, false),
                                      schema2_report(1.0, 1.0, true));
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.new_rows.size(), 1U);
  EXPECT_EQ(report.new_rows[0], "sgl_512/sgl");
}

TEST(BxdiffTest, BenchNameMismatchIsAnError) {
  const std::string a = "{\"bench\": \"a\", \"rows\": []}";
  const std::string b = "{\"bench\": \"b\", \"rows\": []}";
  const auto pa = json::parse(a);
  const auto pb = json::parse(b);
  ASSERT_TRUE(pa.is_ok() && pb.is_ok());
  EXPECT_FALSE(diff_reports(**pa, **pb, DiffConfig{}).is_ok());
}

// ---------------------------------------------------------------------------
// bxdiff on microbench_multiqueue (schema 1) scaling-sweep reports.

std::string sweep_report(double sim_ns_scale) {
  char row[256];
  std::string out =
      "{\n  \"schema_version\": 1,\n  \"bench\": \"microbench_multiqueue\",\n"
      "  \"config\": {\"ops_per_point\": 8192},\n  \"rows\": [\n";
  const int points[][2] = {{1, 1}, {1, 8}, {4, 8}};
  for (int i = 0; i < 3; ++i) {
    std::snprintf(row, sizeof(row),
                  "    {\"queues\": %d, \"depth\": %d, \"commands\": 8192, "
                  "\"sq_doorbells\": 1024, \"doorbells_per_op\": 0.125, "
                  "\"sim_ns\": %.0f, \"ops_per_sec\": %.1f}%s\n",
                  points[i][0], points[i][1], 5.0e6 * sim_ns_scale * (i + 1),
                  8192.0 / (5.0e-3 * sim_ns_scale * (i + 1)),
                  i < 2 ? "," : "");
    out += row;
  }
  out += "  ]\n}\n";
  return out;
}

TEST(BxdiffTest, SweepReportIdenticalDiffsClean) {
  const std::string doc = sweep_report(1.0);
  const DiffReport report = must_diff(doc, doc);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.metrics_compared, 9U);  // 3 rows x 3 metrics
}

TEST(BxdiffTest, SweepSlowdownFlagsSimNsAndOpsPerSec) {
  const DiffReport report = must_diff(sweep_report(1.0), sweep_report(1.12));
  EXPECT_FALSE(report.clean());
  // All three rows regress on both sim_ns (up) and ops_per_sec (down).
  EXPECT_EQ(report.regressions, 6U);
}

}  // namespace
}  // namespace bx
