// NAND flash model: geometry arithmetic, program/read/erase semantics and
// constraints, per-die timing overlap, bad-block injection.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "nand/nand_flash.h"

namespace bx::nand {
namespace {

Geometry tiny_geometry() {
  Geometry g;
  g.channels = 2;
  g.ways = 2;
  g.blocks_per_die = 8;
  g.pages_per_block = 16;
  g.page_size = 4096;
  return g;
}

NandTiming fast_timing() {
  NandTiming t;
  t.read_ns = 100;
  t.program_ns = 500;
  t.erase_ns = 2000;
  t.channel_transfer_ns = 10;
  return t;
}

class NandFixture : public ::testing::Test {
 protected:
  NandFixture() : nand_(tiny_geometry(), fast_timing(), clock_) {}

  SimClock clock_;
  NandFlash nand_;
};

TEST(GeometryTest, Arithmetic) {
  const Geometry g = tiny_geometry();
  EXPECT_EQ(g.dies(), 4u);
  EXPECT_EQ(g.total_blocks(), 32u);
  EXPECT_EQ(g.total_pages(), 512u);
  EXPECT_EQ(g.capacity_bytes(), 512u * 4096u);
}

TEST(GeometryTest, PageAddressFlattenRoundTrip) {
  const Geometry g = tiny_geometry();
  for (std::uint32_t die = 0; die < g.dies(); ++die) {
    for (std::uint32_t block : {0u, 3u, 7u}) {
      for (std::uint32_t page : {0u, 5u, 15u}) {
        const PageAddress addr{die, block, page};
        const PageAddress back =
            PageAddress::unflatten(g, addr.flatten(g));
        EXPECT_EQ(back.die, die);
        EXPECT_EQ(back.block, block);
        EXPECT_EQ(back.page, page);
      }
    }
  }
}

TEST(GeometryTest, FlattenIsDense) {
  const Geometry g = tiny_geometry();
  std::vector<bool> seen(g.total_pages(), false);
  for (std::uint32_t die = 0; die < g.dies(); ++die) {
    for (std::uint32_t block = 0; block < g.blocks_per_die; ++block) {
      for (std::uint32_t page = 0; page < g.pages_per_block; ++page) {
        const std::uint64_t flat = PageAddress{die, block, page}.flatten(g);
        ASSERT_LT(flat, seen.size());
        EXPECT_FALSE(seen[flat]);
        seen[flat] = true;
      }
    }
  }
}

TEST_F(NandFixture, ProgramReadRoundTrip) {
  ByteVec data(4096);
  fill_pattern(data, 1);
  ASSERT_TRUE(nand_.program({0, 0, 0}, data,
                            NandFlash::Blocking::kForeground).is_ok());
  ByteVec read(4096);
  ASSERT_TRUE(nand_.read({0, 0, 0}, read,
                         NandFlash::Blocking::kForeground).is_ok());
  EXPECT_EQ(read, data);
}

TEST_F(NandFixture, ShortProgramPadsWithOnes) {
  ByteVec data(100, 0x11);
  ASSERT_TRUE(nand_.program({0, 0, 0}, data,
                            NandFlash::Blocking::kForeground).is_ok());
  ByteVec read(4096);
  ASSERT_TRUE(nand_.read({0, 0, 0}, read,
                         NandFlash::Blocking::kForeground).is_ok());
  EXPECT_EQ(read[99], 0x11);
  EXPECT_EQ(read[100], 0xff);  // erased state
}

TEST_F(NandFixture, SequentialProgramConstraint) {
  ByteVec data(64);
  // Page 1 before page 0: forbidden.
  EXPECT_EQ(nand_.program({0, 0, 1}, data, NandFlash::Blocking::kForeground)
                .code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(nand_.program({0, 0, 0}, data,
                            NandFlash::Blocking::kForeground).is_ok());
  // Reprogramming page 0 without erase: forbidden.
  EXPECT_EQ(nand_.program({0, 0, 0}, data, NandFlash::Blocking::kForeground)
                .code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(nand_.program({0, 0, 1}, data,
                            NandFlash::Blocking::kForeground).is_ok());
}

TEST_F(NandFixture, EraseResetsBlock) {
  ByteVec data(64);
  ASSERT_TRUE(nand_.program({1, 2, 0}, data,
                            NandFlash::Blocking::kForeground).is_ok());
  EXPECT_TRUE(nand_.is_programmed({1, 2, 0}));
  ASSERT_TRUE(
      nand_.erase_block(1, 2, NandFlash::Blocking::kForeground).is_ok());
  EXPECT_FALSE(nand_.is_programmed({1, 2, 0}));
  EXPECT_EQ(nand_.erase_count(1, 2), 1u);
  // Programming restarts from page 0.
  EXPECT_TRUE(nand_.program({1, 2, 0}, data,
                            NandFlash::Blocking::kForeground).is_ok());
}

TEST_F(NandFixture, ReadingErasedPageFails) {
  ByteVec read(64);
  EXPECT_EQ(
      nand_.read({0, 0, 0}, read, NandFlash::Blocking::kForeground).code(),
      StatusCode::kNotFound);
}

TEST_F(NandFixture, OutOfGeometryRejected) {
  ByteVec data(64);
  EXPECT_EQ(nand_.program({4, 0, 0}, data, NandFlash::Blocking::kForeground)
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(nand_.erase_block(0, 8, NandFlash::Blocking::kForeground).code(),
            StatusCode::kOutOfRange);
}

TEST_F(NandFixture, OversizedProgramRejected) {
  ByteVec data(4097);
  EXPECT_EQ(nand_.program({0, 0, 0}, data, NandFlash::Blocking::kForeground)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(NandFixture, ForegroundOpAdvancesClock) {
  ByteVec data(64);
  const Nanoseconds before = clock_.now();
  ASSERT_TRUE(nand_.program({0, 0, 0}, data,
                            NandFlash::Blocking::kForeground).is_ok());
  EXPECT_EQ(clock_.now() - before, 510u);  // program 500 + transfer 10
}

TEST_F(NandFixture, BackgroundOpDoesNotStallClock) {
  ByteVec data(64);
  const Nanoseconds before = clock_.now();
  ASSERT_TRUE(nand_.program({0, 0, 0}, data,
                            NandFlash::Blocking::kBackground).is_ok());
  EXPECT_EQ(clock_.now(), before);
  EXPECT_EQ(nand_.busiest_die_free_at(), before + 510);
  nand_.drain();
  EXPECT_EQ(clock_.now(), before + 510);
}

TEST_F(NandFixture, DifferentDiesOverlapSameDieSerializes) {
  ByteVec data(64);
  // Two background programs on different dies end at the same time.
  ASSERT_TRUE(nand_.program({0, 0, 0}, data,
                            NandFlash::Blocking::kBackground).is_ok());
  ASSERT_TRUE(nand_.program({1, 0, 0}, data,
                            NandFlash::Blocking::kBackground).is_ok());
  EXPECT_EQ(nand_.busiest_die_free_at(), 510u);
  // Two on the same die serialize.
  ASSERT_TRUE(nand_.program({2, 0, 0}, data,
                            NandFlash::Blocking::kBackground).is_ok());
  ASSERT_TRUE(nand_.program({2, 0, 1}, data,
                            NandFlash::Blocking::kBackground).is_ok());
  EXPECT_EQ(nand_.busiest_die_free_at(), 1020u);
}

TEST_F(NandFixture, ForegroundWaitsForBusyDie) {
  ByteVec data(64);
  ASSERT_TRUE(nand_.program({0, 0, 0}, data,
                            NandFlash::Blocking::kBackground).is_ok());
  // A foreground read on the same die starts after the program finishes.
  ByteVec out(64);
  ASSERT_TRUE(
      nand_.read({0, 0, 0}, out, NandFlash::Blocking::kForeground).is_ok());
  EXPECT_EQ(clock_.now(), 510u + 110u);
}

TEST_F(NandFixture, BadBlockFailsProgramAndErase) {
  nand_.mark_bad_block(0, 3);
  EXPECT_TRUE(nand_.is_bad_block(0, 3));
  ByteVec data(64);
  EXPECT_EQ(nand_.program({0, 3, 0}, data, NandFlash::Blocking::kForeground)
                .code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(nand_.erase_block(0, 3, NandFlash::Blocking::kForeground).code(),
            StatusCode::kDataLoss);
  // Healthy blocks unaffected.
  EXPECT_TRUE(nand_.program({0, 4, 0}, data,
                            NandFlash::Blocking::kForeground).is_ok());
}

TEST_F(NandFixture, StatisticsAccumulate) {
  ByteVec data(64);
  ByteVec out(64);
  ASSERT_TRUE(nand_.program({0, 0, 0}, data,
                            NandFlash::Blocking::kForeground).is_ok());
  ASSERT_TRUE(nand_.read({0, 0, 0}, out,
                         NandFlash::Blocking::kForeground).is_ok());
  ASSERT_TRUE(
      nand_.erase_block(0, 0, NandFlash::Blocking::kForeground).is_ok());
  EXPECT_EQ(nand_.programs(), 1u);
  EXPECT_EQ(nand_.reads(), 1u);
  EXPECT_EQ(nand_.erases(), 1u);
}

}  // namespace
}  // namespace bx::nand
