// Traffic-byte conservation: every PCIe byte the TrafficCounter records
// must be exactly accounted for by the payloads transferred, for every
// transfer method. The link model is deterministic (MPS 256 / MRRS 512,
// fixed TLP overheads), so the expectations are computed independently
// from first principles — per TLP: MWr wire = 32 + payload, MRd = 32,
// CplD = 28 + payload — and compared cell by cell.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "core/stress.h"
#include "driver/nvme_driver.h"
#include "driver/request.h"
#include "obs/telemetry.h"
#include "core/testbed.h"
#include "nvme/bandslim_wire.h"
#include "nvme/inline_wire.h"
#include "test_util.h"

namespace bx {
namespace {

using core::Testbed;
using driver::TransferMethod;
using pcie::Direction;
using pcie::TrafficCell;
using pcie::TrafficClass;

constexpr std::uint32_t kMps = 256;   // paper link config MaxPayloadSize
constexpr std::uint32_t kMrrs = 512;  // MaxReadRequestSize
constexpr std::uint64_t kMwrOverhead = 32;  // framing+4DW header+DLLP
constexpr std::uint64_t kMrdWire = 32;
constexpr std::uint64_t kCplOverhead = 28;  // framing+3DW header+DLLP

/// SQ slots the device fetches for one command of `method` / `len`.
std::uint64_t slots_for(TransferMethod method, std::uint64_t len) {
  switch (method) {
    case TransferMethod::kPrp:
    case TransferMethod::kSgl:
      return 1;
    case TransferMethod::kByteExpress:
      return 1 + nvme::inline_chunk::raw_chunks_for(len);
    case TransferMethod::kByteExpressOoo:
      return 1 + nvme::inline_chunk::ooo_chunks_for(len);
    case TransferMethod::kBandSlim:
      return nvme::bandslim::commands_for(len);
    default:
      ADD_FAILURE() << "unsupported method";
      return 0;
  }
}

/// Expected state of one (direction, class) counter cell.
struct CellExpect {
  std::uint64_t tlps = 0;
  std::uint64_t data = 0;
  std::uint64_t wire = 0;
};

/// A DMA read of `bytes`: MRd requests on one side, CplD data on the other.
struct ReadExpect {
  CellExpect request;  // opposite the data direction
  CellExpect data;     // the data direction
};

ReadExpect expect_read(std::uint64_t bytes) {
  ReadExpect e;
  e.request.tlps = div_ceil(bytes, kMrrs);
  e.request.wire = e.request.tlps * kMrdWire;
  e.data.tlps = div_ceil(bytes, kMps);
  e.data.data = bytes;
  e.data.wire = bytes + e.data.tlps * kCplOverhead;
  return e;
}

CellExpect expect_write(std::uint64_t bytes) {
  CellExpect e;
  e.tlps = bytes == 0 ? 1 : div_ceil(bytes, kMps);
  e.data = bytes;
  e.wire = bytes + e.tlps * kMwrOverhead;
  return e;
}

constexpr int kClasses = static_cast<int>(TrafficClass::kCount_);

struct Snapshot {
  TrafficCell cells[2][kClasses];
  std::uint64_t sq_doorbells = 0;
  std::uint64_t cq_doorbells = 0;

  static Snapshot take(Testbed& bed, std::uint16_t qid) {
    Snapshot snap;
    for (int d = 0; d < 2; ++d) {
      for (int c = 0; c < kClasses; ++c) {
        snap.cells[d][c] = bed.traffic().cell(
            static_cast<Direction>(d), static_cast<TrafficClass>(c));
      }
    }
    snap.sq_doorbells = bed.bar().sq_doorbell_writes(qid);
    snap.cq_doorbells = bed.bar().cq_doorbell_writes(qid);
    return snap;
  }
};

void expect_cell_delta(const Snapshot& before, const Snapshot& after,
                       Direction dir, TrafficClass cls,
                       const CellExpect& want, const std::string& label) {
  const auto d = static_cast<int>(dir);
  const auto c = static_cast<int>(cls);
  EXPECT_EQ(after.cells[d][c].tlps - before.cells[d][c].tlps, want.tlps)
      << label << " TLP count";
  EXPECT_EQ(after.cells[d][c].data_bytes - before.cells[d][c].data_bytes,
            want.data)
      << label << " data bytes";
  EXPECT_EQ(after.cells[d][c].wire_bytes - before.cells[d][c].wire_bytes,
            want.wire)
      << label << " wire bytes";
}

struct Case {
  TransferMethod method;
  std::uint32_t len;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return std::string(driver::transfer_method_name(info.param.method)) + "_" +
         std::to_string(info.param.len);
}

class TrafficConservationTest : public testing::TestWithParam<Case> {};

TEST_P(TrafficConservationTest, EveryByteAccounted) {
  const auto [method, len] = GetParam();
  Testbed bed(test::small_testbed_config());
  constexpr std::uint16_t kQid = 1;

  ByteVec payload(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    payload[i] = static_cast<Byte>(i * 13 + 7);
  }

  const Snapshot before = Snapshot::take(bed, kQid);
  auto completion = bed.raw_write(payload, method, kQid);
  ASSERT_TRUE(completion.is_ok());
  ASSERT_TRUE(completion->ok());
  const Snapshot after = Snapshot::take(bed, kQid);

  const std::uint64_t slots = slots_for(method, len);

  // Command/chunk fetch: each slot is one 64 B DMA read.
  ReadExpect fetch;
  fetch.request.tlps = slots;  // one MRd per fetch_slot call
  fetch.request.wire = slots * kMrdWire;
  fetch.data.tlps = slots;
  fetch.data.data = slots * 64;
  fetch.data.wire = slots * (64 + kCplOverhead);
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kCommandFetch, fetch.data, "cmd-fetch");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kCommandFetch, fetch.request,
                    "cmd-fetch MRd");

  // Doorbells: one SQ ring per single-submit command (the inline
  // invariant: one ring covers the SQE and all its chunks), one CQ-head
  // ring for the CQE. Batched submissions coalesce further — see the
  // BatchedTrafficConservationTest cases below.
  const std::uint64_t sq_rings =
      method == TransferMethod::kBandSlim ? slots : 1;
  EXPECT_EQ(after.sq_doorbells - before.sq_doorbells, sq_rings);
  EXPECT_EQ(after.cq_doorbells - before.cq_doorbells, 1u);
  CellExpect doorbells;
  doorbells.tlps = sq_rings + 1;
  doorbells.data = 4 * (sq_rings + 1);
  doorbells.wire = (4 + kMwrOverhead) * (sq_rings + 1);
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kDoorbell, doorbells, "doorbell");

  // Exactly one 16 B CQE write-back and one 4 B MSI-X.
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kCompletion, expect_write(16), "CQE");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kInterrupt, expect_write(4), "MSI-X");

  // Data path: PRP moves page-aligned bytes, SGL exactly the payload,
  // inline methods move nothing outside the command stream.
  ReadExpect prp{}, sgl{};
  if (method == TransferMethod::kPrp) prp = expect_read(align_up(len, 4096));
  if (method == TransferMethod::kSgl) sgl = expect_read(len);
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kDataPrp, prp.data, "PRP data");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kDataPrp, prp.request, "PRP MRd");
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kDataSgl, sgl.data, "SGL data");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kDataSgl, sgl.request, "SGL MRd");

  // Nothing else may move: payloads here never need a PRP list
  // (<= 2 pages), writes never touch the inline-read completion ring,
  // and no other class is touched.
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kPrpList, {}, "PRP list");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kDataInlineRead, {}, "inline-read up");
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kDataInlineRead, {}, "inline-read down");
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kOther, {}, "other down");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kOther, {}, "other up");
}

INSTANTIATE_TEST_SUITE_P(
    Methods, TrafficConservationTest,
    testing::ValuesIn(std::vector<Case>{
        {TransferMethod::kPrp, 1},
        {TransferMethod::kPrp, 100},
        {TransferMethod::kPrp, 4000},
        {TransferMethod::kSgl, 1},
        {TransferMethod::kSgl, 100},
        {TransferMethod::kSgl, 1024},
        {TransferMethod::kSgl, 4000},
        {TransferMethod::kByteExpress, 1},
        {TransferMethod::kByteExpress, 64},
        {TransferMethod::kByteExpress, 65},
        {TransferMethod::kByteExpress, 256},
        {TransferMethod::kByteExpress, 4000},
        {TransferMethod::kByteExpressOoo, 1},
        {TransferMethod::kByteExpressOoo, 48},
        {TransferMethod::kByteExpressOoo, 49},
        {TransferMethod::kByteExpressOoo, 1024},
        {TransferMethod::kBandSlim, 1},
        {TransferMethod::kBandSlim, 24},
        {TransferMethod::kBandSlim, 25},
        {TransferMethod::kBandSlim, 72},
        {TransferMethod::kBandSlim, 4000},
    }),
    case_name);

// Additivity: running a mixed sequence produces exactly the sum of the
// per-op deltas — counters never lose or double-count bytes across ops.
TEST(TrafficConservationAdditivityTest, MixedSequenceSumsExactly) {
  const std::vector<Case> sequence = {
      {TransferMethod::kByteExpress, 200}, {TransferMethod::kPrp, 900},
      {TransferMethod::kBandSlim, 150},    {TransferMethod::kSgl, 333},
      {TransferMethod::kByteExpressOoo, 500},
  };

  // Per-op deltas measured on one testbed...
  Testbed solo(test::small_testbed_config());
  TrafficCell expected[2][kClasses] = {};
  for (const Case& item : sequence) {
    ByteVec payload(item.len, Byte{0x5a});
    const Snapshot before = Snapshot::take(solo, 1);
    auto completion = solo.raw_write(payload, item.method, 1);
    ASSERT_TRUE(completion.is_ok() && completion->ok());
    const Snapshot after = Snapshot::take(solo, 1);
    for (int d = 0; d < 2; ++d) {
      for (int c = 0; c < kClasses; ++c) {
        expected[d][c].add(
            after.cells[d][c].tlps - before.cells[d][c].tlps,
            after.cells[d][c].data_bytes - before.cells[d][c].data_bytes,
            after.cells[d][c].wire_bytes - before.cells[d][c].wire_bytes);
      }
    }
  }

  // ...must equal the whole-sequence delta on a fresh testbed.
  Testbed combined(test::small_testbed_config());
  const Snapshot before = Snapshot::take(combined, 1);
  for (const Case& item : sequence) {
    ByteVec payload(item.len, Byte{0x5a});
    auto completion = combined.raw_write(payload, item.method, 1);
    ASSERT_TRUE(completion.is_ok() && completion->ok());
  }
  const Snapshot after = Snapshot::take(combined, 1);
  for (int d = 0; d < 2; ++d) {
    for (int c = 0; c < kClasses; ++c) {
      EXPECT_EQ(after.cells[d][c].tlps - before.cells[d][c].tlps,
                expected[d][c].tlps)
          << "dir " << d << " class " << c;
      EXPECT_EQ(after.cells[d][c].data_bytes - before.cells[d][c].data_bytes,
                expected[d][c].data_bytes)
          << "dir " << d << " class " << c;
      EXPECT_EQ(after.cells[d][c].wire_bytes - before.cells[d][c].wire_bytes,
                expected[d][c].wire_bytes)
          << "dir " << d << " class " << c;
    }
  }
}

// The windowed telemetry sampler must account for the same bytes as the
// TrafficCounter: for every transfer method, the per-window MWr/MRd/Cpl
// sums (over all closed windows plus the flushed partial) equal the
// per-direction TrafficCounter totals exactly. Both observers hang off
// the same PcieLink primitives, so any drift means a window boundary
// dropped or double-counted a delta.
TEST(TelemetryConservationTest, WindowSumsMatchTrafficCountersPerMethod) {
  constexpr TransferMethod kMethods[] = {
      TransferMethod::kPrp,           TransferMethod::kSgl,
      TransferMethod::kByteExpress,   TransferMethod::kByteExpressOoo,
      TransferMethod::kBandSlim,
  };
  for (const TransferMethod method : kMethods) {
    core::TestbedConfig config = test::small_testbed_config();
    config.telemetry.window_ns = 1'000;  // many windows even at 20 ops
    Testbed bed(config);
    bed.reset_counters();  // re-baseline both observers past queue setup

    ByteVec payload(300);
    fill_pattern(payload, 0x5a);
    for (int i = 0; i < 20; ++i) {
      auto completion = bed.raw_write(payload, method, 1);
      ASSERT_TRUE(completion.is_ok() && completion->ok());
    }
    bed.telemetry().flush(bed.clock().now());

    const auto sums = obs::Telemetry::sum_flows(bed.telemetry().samples());
    ASSERT_GT(bed.telemetry().samples().size(), 1u);
    for (std::size_t dir = 0; dir < obs::kLinkDirs; ++dir) {
      obs::FlowCell window_total;
      for (std::size_t kind = 0; kind < obs::kTlpKinds; ++kind) {
        window_total += sums[dir][kind];
      }
      const TrafficCell counter_total =
          bed.traffic().total(static_cast<Direction>(dir));
      const std::string_view name = driver::transfer_method_name(method);
      EXPECT_EQ(window_total.tlps, counter_total.tlps)
          << name << " dir " << dir;
      EXPECT_EQ(window_total.data_bytes, counter_total.data_bytes)
          << name << " dir " << dir;
      EXPECT_EQ(window_total.wire_bytes, counter_total.wire_bytes)
          << name << " dir " << dir;
    }
    // MRd carries no data payload by construction; all read data rides
    // completions.
    EXPECT_EQ(sums[0][std::size_t(obs::TlpKind::kMRd)].data_bytes, 0u);
    EXPECT_EQ(sums[1][std::size_t(obs::TlpKind::kMRd)].data_bytes, 0u);
  }
}

// ------------------------------------------------- batched submissions
//
// A coalesced batch shares one SQ doorbell MWr across its whole run, so
// the doorbell class must account 1 + N rings (1 SQ + N CQ-head), not
// N + N. Everything else — fetch, CQE, MSI-X, data — stays strictly
// per-command.

driver::IoRequest make_batch_write(const ByteVec& payload,
                                   TransferMethod method) {
  driver::IoRequest request;
  request.opcode = nvme::IoOpcode::kVendorRawWrite;
  request.method = method;
  request.write_data = {payload.data(), payload.size()};
  return request;
}

/// N distinct MWr TLPs of `each` bytes apiece (CQEs and MSI-X vectors are
/// never merged, unlike expect_write's single large transfer).
CellExpect expect_writes(std::uint64_t count, std::uint64_t each) {
  CellExpect e;
  e.tlps = count;
  e.data = count * each;
  e.wire = count * (each + kMwrOverhead);
  return e;
}

TEST(BatchedTrafficConservationTest, CoalescedBatchEveryByteAccounted) {
  Testbed bed(test::small_testbed_config());
  constexpr std::uint16_t kQid = 1;
  const std::vector<Case> mix = {
      {TransferMethod::kByteExpress, 150},
      {TransferMethod::kPrp, 900},
      {TransferMethod::kSgl, 333},
      {TransferMethod::kByteExpressOoo, 500},
      {TransferMethod::kByteExpress, 60},
      {TransferMethod::kSgl, 1024},
  };
  std::vector<ByteVec> payloads;
  std::vector<driver::IoRequest> requests;
  for (const Case& item : mix) {
    payloads.emplace_back(item.len, Byte{0x5a});
  }
  for (std::size_t i = 0; i < mix.size(); ++i) {
    requests.push_back(make_batch_write(payloads[i], mix[i].method));
  }
  const auto n = static_cast<std::uint64_t>(mix.size());

  const Snapshot before = Snapshot::take(bed, kQid);
  auto completions = bed.driver().execute_batch(
      {requests.data(), requests.size()}, kQid);
  ASSERT_TRUE(completions.is_ok()) << completions.status().message();
  for (const driver::Completion& completion : *completions) {
    ASSERT_TRUE(completion.ok());
  }
  const Snapshot after = Snapshot::take(bed, kQid);

  // Fetch: one 64 B slot read per SQE or chunk, regardless of batching.
  std::uint64_t slots = 0;
  for (const Case& item : mix) slots += slots_for(item.method, item.len);
  ReadExpect fetch;
  fetch.request.tlps = slots;
  fetch.request.wire = slots * kMrdWire;
  fetch.data.tlps = slots;
  fetch.data.data = slots * 64;
  fetch.data.wire = slots * (64 + kCplOverhead);
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kCommandFetch, fetch.data, "cmd-fetch");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kCommandFetch, fetch.request,
                    "cmd-fetch MRd");

  // The whole coalescable batch shares ONE SQ doorbell; CQ-head rings
  // stay one per CQE.
  EXPECT_EQ(after.sq_doorbells - before.sq_doorbells, 1u);
  EXPECT_EQ(after.cq_doorbells - before.cq_doorbells, n);
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kDoorbell, expect_writes(1 + n, 4),
                    "doorbell");

  // One 16 B CQE and one 4 B MSI-X per command, as distinct TLPs.
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kCompletion, expect_writes(n, 16), "CQE");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kInterrupt, expect_writes(n, 4), "MSI-X");

  // Data classes sum per command exactly as in the single-submit cases.
  ReadExpect prp{}, sgl{};
  auto accumulate = [](ReadExpect& into, const ReadExpect& delta) {
    into.request.tlps += delta.request.tlps;
    into.request.wire += delta.request.wire;
    into.data.tlps += delta.data.tlps;
    into.data.data += delta.data.data;
    into.data.wire += delta.data.wire;
  };
  for (const Case& item : mix) {
    if (item.method == TransferMethod::kPrp) {
      accumulate(prp, expect_read(align_up(item.len, 4096)));
    }
    if (item.method == TransferMethod::kSgl) {
      accumulate(sgl, expect_read(item.len));
    }
  }
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kDataPrp, prp.data, "PRP data");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kDataPrp, prp.request, "PRP MRd");
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kDataSgl, sgl.data, "SGL data");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kDataSgl, sgl.request, "SGL MRd");
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kPrpList, {}, "PRP list");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kDataInlineRead, {}, "inline-read up");
  expect_cell_delta(before, after, Direction::kDownstream,
                    TrafficClass::kOther, {}, "other down");
  expect_cell_delta(before, after, Direction::kUpstream,
                    TrafficClass::kOther, {}, "other up");
}

// Batching is pure doorbell savings: the batched delta must equal the
// sum of single-submit deltas in every class except kDoorbell, where it
// saves exactly N-1 four-byte MWr TLPs.
TEST(BatchedTrafficConservationTest, BatchSavesExactlyNMinusOneDoorbells) {
  const std::vector<Case> mix = {
      {TransferMethod::kByteExpress, 200},
      {TransferMethod::kPrp, 900},
      {TransferMethod::kSgl, 333},
      {TransferMethod::kByteExpressOoo, 500},
  };
  const auto n = static_cast<std::uint64_t>(mix.size());

  // Single-submit reference deltas.
  Testbed solo(test::small_testbed_config());
  const Snapshot solo_before = Snapshot::take(solo, 1);
  for (const Case& item : mix) {
    ByteVec payload(item.len, Byte{0xc3});
    auto completion = solo.raw_write(payload, item.method, 1);
    ASSERT_TRUE(completion.is_ok() && completion->ok());
  }
  const Snapshot solo_after = Snapshot::take(solo, 1);

  // The same mix as one coalesced batch on a fresh testbed.
  Testbed batched(test::small_testbed_config());
  std::vector<ByteVec> payloads;
  std::vector<driver::IoRequest> requests;
  for (const Case& item : mix) {
    payloads.emplace_back(item.len, Byte{0xc3});
  }
  for (std::size_t i = 0; i < mix.size(); ++i) {
    requests.push_back(make_batch_write(payloads[i], mix[i].method));
  }
  const Snapshot batch_before = Snapshot::take(batched, 1);
  auto completions = batched.driver().execute_batch(
      {requests.data(), requests.size()}, 1);
  ASSERT_TRUE(completions.is_ok()) << completions.status().message();
  for (const driver::Completion& completion : *completions) {
    ASSERT_TRUE(completion.ok());
  }
  const Snapshot batch_after = Snapshot::take(batched, 1);

  EXPECT_EQ(solo_after.sq_doorbells - solo_before.sq_doorbells, n);
  EXPECT_EQ(batch_after.sq_doorbells - batch_before.sq_doorbells, 1u);
  EXPECT_EQ(batch_after.cq_doorbells - batch_before.cq_doorbells,
            solo_after.cq_doorbells - solo_before.cq_doorbells);

  const auto kBell = static_cast<int>(TrafficClass::kDoorbell);
  for (int d = 0; d < 2; ++d) {
    for (int c = 0; c < kClasses; ++c) {
      const std::uint64_t solo_tlps =
          solo_after.cells[d][c].tlps - solo_before.cells[d][c].tlps;
      const std::uint64_t solo_data = solo_after.cells[d][c].data_bytes -
                                      solo_before.cells[d][c].data_bytes;
      const std::uint64_t solo_wire = solo_after.cells[d][c].wire_bytes -
                                      solo_before.cells[d][c].wire_bytes;
      const std::uint64_t batch_tlps =
          batch_after.cells[d][c].tlps - batch_before.cells[d][c].tlps;
      const std::uint64_t batch_data = batch_after.cells[d][c].data_bytes -
                                       batch_before.cells[d][c].data_bytes;
      const std::uint64_t batch_wire = batch_after.cells[d][c].wire_bytes -
                                       batch_before.cells[d][c].wire_bytes;
      if (d == static_cast<int>(Direction::kDownstream) && c == kBell) {
        EXPECT_EQ(batch_tlps, solo_tlps - (n - 1)) << "doorbell TLPs";
        EXPECT_EQ(batch_data, solo_data - 4 * (n - 1)) << "doorbell data";
        EXPECT_EQ(batch_wire, solo_wire - (4 + kMwrOverhead) * (n - 1))
            << "doorbell wire";
      } else {
        EXPECT_EQ(batch_tlps, solo_tlps) << "dir " << d << " class " << c;
        EXPECT_EQ(batch_data, solo_data) << "dir " << d << " class " << c;
        EXPECT_EQ(batch_wire, solo_wire) << "dir " << d << " class " << c;
      }
    }
  }
}

// The harness-level conservation invariant (checked every round inside
// run_stress) holds for a longer randomized mixed run too.
TEST(TrafficConservationAdditivityTest, StressHarnessConservationHolds) {
  core::StressOptions options;
  options.seed = 0xc0ffee;
  options.rounds = 8;
  options.ops_per_round = 32;
  const core::StressResult result = core::run_stress(options);
  EXPECT_TRUE(result.ok()) << result.failure;
}

}  // namespace
}  // namespace bx
