// SQL front end: lexing/parsing of the full SELECT form and the segment
// form, operator coverage, precedence, binding, evaluation, and the Fig 4
// query strings.
#include <gtest/gtest.h>

#include "csd/sql.h"
#include "workload/query_set.h"

namespace bx::csd {
namespace {

TableSchema demo_schema() {
  return TableSchema("particles", {Column{"energy", ColumnType::kFloat64, 8},
                                   Column{"id", ColumnType::kInt64, 8},
                                   Column{"name", ColumnType::kString, 16}});
}

ByteVec make_row(const TableSchema& schema, double energy, std::int64_t id,
                 std::string_view name) {
  RowBuilder builder(schema);
  builder.set_double("energy", energy).set_int("id", id).set_string("name",
                                                                    name);
  return builder.take();
}

bool eval(std::string_view predicate_query, double energy, std::int64_t id,
          std::string_view name = "x") {
  auto query = parse_task(predicate_query);
  EXPECT_TRUE(query.is_ok()) << query.status().to_string() << " for "
                             << predicate_query;
  if (!query.is_ok()) return false;
  const TableSchema schema = demo_schema();
  EXPECT_NE(query->where, nullptr);
  const Status bound = bind(*query->where, schema);
  EXPECT_TRUE(bound.is_ok()) << bound.to_string();
  const ByteVec row = make_row(schema, energy, id, name);
  return evaluate(*query->where, schema, RowView(schema, row));
}

TEST(SqlParseTest, FullQueryShape) {
  auto query =
      parse_query("SELECT energy, id FROM particles WHERE energy > 1.5");
  ASSERT_TRUE(query.is_ok());
  EXPECT_EQ(query->table, "particles");
  ASSERT_EQ(query->select_columns.size(), 2u);
  EXPECT_EQ(query->select_columns[0], "energy");
  EXPECT_NE(query->where, nullptr);
}

TEST(SqlParseTest, SelectStar) {
  auto query = parse_query("SELECT * FROM t WHERE id = 1");
  ASSERT_TRUE(query.is_ok());
  EXPECT_TRUE(query->select_columns.empty());
}

TEST(SqlParseTest, NoWhereClause) {
  auto query = parse_query("SELECT * FROM t");
  ASSERT_TRUE(query.is_ok());
  EXPECT_EQ(query->where, nullptr);
}

TEST(SqlParseTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(parse_query("select * from t where id = 1").is_ok());
  EXPECT_TRUE(parse_query("SeLeCt * FrOm t WhErE id = 1").is_ok());
}

TEST(SqlParseTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(parse_query("SELECT * FROM t WHERE id = 1;").is_ok());
}

TEST(SqlParseTest, SegmentForm) {
  auto query = parse_segment("particles energy > 1.5 AND id != 3");
  ASSERT_TRUE(query.is_ok());
  EXPECT_EQ(query->table, "particles");
  ASSERT_NE(query->where, nullptr);
  EXPECT_EQ(query->where->kind, Expr::Kind::kLogic);
}

TEST(SqlParseTest, SegmentWithTableOnly) {
  auto query = parse_segment("particles");
  ASSERT_TRUE(query.is_ok());
  EXPECT_EQ(query->where, nullptr);
}

TEST(SqlParseTest, ParseTaskAutoDetects) {
  EXPECT_TRUE(parse_task("SELECT * FROM t WHERE id = 1").is_ok());
  auto segment = parse_task("t id = 1");
  ASSERT_TRUE(segment.is_ok());
  EXPECT_EQ(segment->table, "t");
  auto padded = parse_task("   select * from t where id = 1");
  ASSERT_TRUE(padded.is_ok());
  EXPECT_EQ(padded->table, "t");
}

TEST(SqlParseTest, Errors) {
  EXPECT_FALSE(parse_query("SELECT FROM t").is_ok());
  EXPECT_FALSE(parse_query("SELECT * t").is_ok());
  EXPECT_FALSE(parse_query("SELECT * FROM").is_ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t WHERE").is_ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t WHERE id >").is_ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t WHERE id 5").is_ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t WHERE (id = 1").is_ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t WHERE id = 'unclosed").is_ok());
  EXPECT_FALSE(parse_query("SELECT * FROM t WHERE id = 1 garbage").is_ok());
  EXPECT_FALSE(parse_segment("").is_ok());
}

TEST(SqlEvalTest, AllComparisonOperators) {
  EXPECT_TRUE(eval("particles id = 5", 0, 5));
  EXPECT_FALSE(eval("particles id = 5", 0, 6));
  EXPECT_TRUE(eval("particles id != 5", 0, 6));
  EXPECT_TRUE(eval("particles id <> 5", 0, 6));
  EXPECT_TRUE(eval("particles id < 5", 0, 4));
  EXPECT_FALSE(eval("particles id < 5", 0, 5));
  EXPECT_TRUE(eval("particles id <= 5", 0, 5));
  EXPECT_TRUE(eval("particles id > 5", 0, 6));
  EXPECT_FALSE(eval("particles id > 5", 0, 5));
  EXPECT_TRUE(eval("particles id >= 5", 0, 5));
}

TEST(SqlEvalTest, FloatAndMixedComparisons) {
  EXPECT_TRUE(eval("particles energy > 1.5", 1.6, 0));
  EXPECT_FALSE(eval("particles energy > 1.5", 1.5, 0));
  // Integer literal against float column and vice versa.
  EXPECT_TRUE(eval("particles energy >= 2", 2.0, 0));
  EXPECT_TRUE(eval("particles id < 5.5", 0, 5));
}

TEST(SqlEvalTest, NegativeNumbers) {
  EXPECT_TRUE(eval("particles id > -10", 0, -5));
  EXPECT_TRUE(eval("particles energy < -0.5", -0.6, 0));
}

TEST(SqlEvalTest, StringAndDateLiterals) {
  EXPECT_TRUE(eval("particles name = 'abc'", 0, 0, "abc"));
  EXPECT_FALSE(eval("particles name = 'abc'", 0, 0, "abd"));
  // Dates compare lexicographically as ISO strings.
  EXPECT_TRUE(eval("particles name <= date '1998-09-02'", 0, 0,
                   "1998-08-15"));
  EXPECT_FALSE(eval("particles name <= date '1998-09-02'", 0, 0,
                    "1998-09-03"));
}

TEST(SqlEvalTest, LogicalOperatorsAndPrecedence) {
  // AND binds tighter than OR: (id = 1) OR (id = 2 AND energy > 1).
  const char* q = "particles id = 1 OR id = 2 AND energy > 1";
  EXPECT_TRUE(eval(q, 0.0, 1));
  EXPECT_TRUE(eval(q, 2.0, 2));
  EXPECT_FALSE(eval(q, 0.5, 2));
  EXPECT_FALSE(eval(q, 2.0, 3));
}

TEST(SqlEvalTest, ParenthesesOverridePrecedence) {
  const char* q = "particles (id = 1 OR id = 2) AND energy > 1";
  EXPECT_FALSE(eval(q, 0.5, 1));
  EXPECT_TRUE(eval(q, 2.0, 1));
  EXPECT_TRUE(eval(q, 2.0, 2));
}

TEST(SqlEvalTest, NotOperator) {
  EXPECT_TRUE(eval("particles NOT id = 5", 0, 4));
  EXPECT_FALSE(eval("particles NOT id = 5", 0, 5));
  EXPECT_TRUE(eval("particles NOT (id = 5 OR id = 6)", 0, 7));
}

TEST(SqlEvalTest, BetweenDesugarsToRangeCheck) {
  EXPECT_TRUE(eval("particles id BETWEEN 3 AND 7", 0, 3));
  EXPECT_TRUE(eval("particles id BETWEEN 3 AND 7", 0, 5));
  EXPECT_TRUE(eval("particles id BETWEEN 3 AND 7", 0, 7));
  EXPECT_FALSE(eval("particles id BETWEEN 3 AND 7", 0, 2));
  EXPECT_FALSE(eval("particles id BETWEEN 3 AND 7", 0, 8));
  // Floats and composition with further conjuncts.
  EXPECT_TRUE(
      eval("particles energy BETWEEN 1.0 AND 2.0 AND id = 1", 1.5, 1));
  EXPECT_FALSE(
      eval("particles energy BETWEEN 1.0 AND 2.0 AND id = 1", 2.5, 1));
}

TEST(SqlEvalTest, InListDesugarsToEqualityChain) {
  EXPECT_TRUE(eval("particles id IN (1, 3, 5)", 0, 3));
  EXPECT_FALSE(eval("particles id IN (1, 3, 5)", 0, 4));
  EXPECT_TRUE(eval("particles id IN (7)", 0, 7));
  EXPECT_TRUE(eval("particles name IN ('aa', 'bb')", 0, 0, "bb"));
  EXPECT_FALSE(eval("particles name IN ('aa', 'bb')", 0, 0, "cc"));
}

TEST(SqlEvalTest, LikePatterns) {
  EXPECT_TRUE(eval("particles name LIKE 'foo%'", 0, 0, "foobar"));
  EXPECT_FALSE(eval("particles name LIKE 'foo%'", 0, 0, "barfoo"));
  EXPECT_TRUE(eval("particles name LIKE '%bar'", 0, 0, "foobar"));
  EXPECT_FALSE(eval("particles name LIKE '%bar'", 0, 0, "barfoo"));
  EXPECT_TRUE(eval("particles name LIKE '%oob%'", 0, 0, "foobar"));
  EXPECT_FALSE(eval("particles name LIKE '%xyz%'", 0, 0, "foobar"));
  EXPECT_TRUE(eval("particles name LIKE 'exact'", 0, 0, "exact"));
  EXPECT_FALSE(eval("particles name LIKE 'exact'", 0, 0, "exact!"));
  EXPECT_TRUE(eval("particles name LIKE '%'", 0, 0, "anything"));
}

TEST(SqlParseTest, AggregateSelectList) {
  auto query = parse_query(
      "SELECT COUNT(*), SUM(energy), MIN(id), MAX(id), AVG(energy) FROM "
      "particles WHERE id > 0");
  ASSERT_TRUE(query.is_ok()) << query.status().to_string();
  EXPECT_TRUE(query->select_columns.empty());
  ASSERT_EQ(query->aggregates.size(), 5u);
  EXPECT_EQ(query->aggregates[0].fn, AggregateFn::kCount);
  EXPECT_TRUE(query->aggregates[0].column.empty());
  EXPECT_EQ(query->aggregates[1].fn, AggregateFn::kSum);
  EXPECT_EQ(query->aggregates[1].column, "energy");
  EXPECT_EQ(query->aggregates[4].fn, AggregateFn::kAvg);
}

TEST(SqlParseTest, AggregateErrors) {
  EXPECT_FALSE(parse_query("SELECT SUM(*) FROM t").is_ok());
  EXPECT_FALSE(parse_query("SELECT COUNT( FROM t").is_ok());
  EXPECT_FALSE(parse_query("SELECT COUNT(*, id) FROM t").is_ok());
  // Mixing aggregates with plain columns (no GROUP BY) is rejected.
  EXPECT_FALSE(parse_query("SELECT COUNT(*), id FROM t").is_ok());
}

TEST(SqlParseTest, AggregateNamesRemainUsableAsColumns) {
  // COUNT/SUM/... are not reserved: without '(' they parse as columns.
  auto query = parse_query("SELECT count FROM t WHERE count > 1");
  ASSERT_TRUE(query.is_ok());
  ASSERT_EQ(query->select_columns.size(), 1u);
  EXPECT_EQ(query->select_columns[0], "count");
}

TEST(SqlParseTest, ExtendedPredicateErrors) {
  EXPECT_FALSE(parse_segment("t a BETWEEN 1").is_ok());
  EXPECT_FALSE(parse_segment("t a BETWEEN 1 2").is_ok());
  EXPECT_FALSE(parse_segment("t a IN 1, 2").is_ok());
  EXPECT_FALSE(parse_segment("t a IN (1, 2").is_ok());
  EXPECT_FALSE(parse_segment("t a IN ()").is_ok());
  EXPECT_FALSE(parse_segment("t a LIKE 5").is_ok());
}

TEST(SqlBindTest, LikeRequiresStringColumn) {
  const TableSchema schema = demo_schema();
  auto query = parse_segment("particles id LIKE 'x%'");
  ASSERT_TRUE(query.is_ok());
  EXPECT_EQ(bind(*query->where, schema).code(),
            StatusCode::kInvalidArgument);
}

TEST(SqlBindTest, UnknownColumnRejected) {
  auto query = parse_segment("particles bogus > 1");
  ASSERT_TRUE(query.is_ok());
  const TableSchema schema = demo_schema();
  EXPECT_EQ(bind(*query->where, schema).code(), StatusCode::kNotFound);
}

TEST(SqlBindTest, TypeMismatchRejected) {
  const TableSchema schema = demo_schema();
  auto string_vs_num = parse_segment("particles name > 5");
  ASSERT_TRUE(string_vs_num.is_ok());
  EXPECT_EQ(bind(*string_vs_num->where, schema).code(),
            StatusCode::kInvalidArgument);
  auto num_vs_string = parse_segment("particles id = 'five'");
  ASSERT_TRUE(num_vs_string.is_ok());
  EXPECT_EQ(bind(*num_vs_string->where, schema).code(),
            StatusCode::kInvalidArgument);
}

TEST(SqlToStringTest, RendersTree) {
  auto query = parse_segment("particles NOT (id = 1 OR energy > 2.5)");
  ASSERT_TRUE(query.is_ok());
  const std::string text = to_string(*query->where);
  EXPECT_NE(text.find("NOT"), std::string::npos);
  EXPECT_NE(text.find("OR"), std::string::npos);
  EXPECT_NE(text.find("id = 1"), std::string::npos);
}

// Every Fig 4 query string must parse in both forms and bind against its
// own schema — the exact payloads Figure 7 transfers.
class Fig4Queries : public ::testing::TestWithParam<int> {};

TEST_P(Fig4Queries, FullAndSegmentFormsParseAndBind) {
  const auto& cases = workload::fig4_query_set();
  const auto& query_case = cases[static_cast<std::size_t>(GetParam())];

  auto full = parse_task(query_case.full_sql);
  ASSERT_TRUE(full.is_ok()) << full.status().to_string();
  EXPECT_EQ(full->table, query_case.schema.name());
  ASSERT_NE(full->where, nullptr);
  EXPECT_TRUE(bind(*full->where, query_case.schema).is_ok());

  auto segment = parse_task(query_case.segment);
  ASSERT_TRUE(segment.is_ok()) << segment.status().to_string();
  EXPECT_EQ(segment->table, query_case.schema.name());
  ASSERT_NE(segment->where, nullptr);
  EXPECT_TRUE(bind(*segment->where, query_case.schema).is_ok());

  // Both forms must express the same predicate.
  EXPECT_EQ(to_string(*full->where), to_string(*segment->where));
}

INSTANTIATE_TEST_SUITE_P(All, Fig4Queries, ::testing::Range(0, 5));

}  // namespace
}  // namespace bx::csd
