// Unit tests for the NVMe wire structures: exact sizes, field encodings,
// the ByteExpress reserved-field semantics, status fields, and the KV key
// placement.
#include <gtest/gtest.h>

#include <cstring>

#include "nvme/spec.h"

namespace bx::nvme {
namespace {

TEST(SpecTest, StructSizesAreWireExact) {
  EXPECT_EQ(sizeof(SubmissionQueueEntry), 64u);
  EXPECT_EQ(sizeof(CompletionQueueEntry), 16u);
  EXPECT_EQ(sizeof(SqSlot), 64u);
  EXPECT_EQ(kChunkSize, 64u);
}

TEST(SpecTest, SqeFieldOffsets) {
  // The layout must match the spec so raw-byte chunk handling is sound.
  SubmissionQueueEntry sqe;
  auto* raw = reinterpret_cast<const Byte*>(&sqe);
  sqe.opcode = 0xAB;
  sqe.cid = 0x1234;
  sqe.nsid = 0xDEADBEEF;
  sqe.cdw2 = 0x11111111;
  EXPECT_EQ(raw[0], 0xAB);
  std::uint16_t cid;
  std::memcpy(&cid, raw + 2, 2);
  EXPECT_EQ(cid, 0x1234);
  std::uint32_t nsid;
  std::memcpy(&nsid, raw + 4, 4);
  EXPECT_EQ(nsid, 0xDEADBEEFu);
  std::uint32_t cdw2;
  std::memcpy(&cdw2, raw + 8, 4);
  EXPECT_EQ(cdw2, 0x11111111u);
}

TEST(SpecTest, TransferModeBitsInFlags) {
  SubmissionQueueEntry sqe;
  EXPECT_EQ(sqe.transfer_mode(), DataTransferMode::kPrp);
  sqe.set_transfer_mode(DataTransferMode::kSglData);
  EXPECT_EQ(sqe.transfer_mode(), DataTransferMode::kSglData);
  // PSDT lives in flags bits 7:6 and must not clobber the low bits.
  sqe.flags |= 0x3;
  sqe.set_transfer_mode(DataTransferMode::kPrp);
  EXPECT_EQ(sqe.flags & 0x3, 0x3);
  EXPECT_EQ(sqe.transfer_mode(), DataTransferMode::kPrp);
}

TEST(SpecTest, InlineLengthUsesReservedCdw2) {
  // §3.3.1: the payload length is re-encoded into a reserved field; zero
  // means "not ByteExpress".
  SubmissionQueueEntry sqe;
  EXPECT_EQ(sqe.inline_length(), 0u);
  sqe.set_inline_length(192);
  EXPECT_EQ(sqe.inline_length(), 192u);
  EXPECT_EQ(sqe.cdw2, 192u);
}

TEST(SpecTest, CqePhaseAndStatusCoexist) {
  CompletionQueueEntry cqe;
  cqe.set_status(StatusField::vendor(VendorStatus::kKvKeyNotFound));
  cqe.set_phase(true);
  EXPECT_TRUE(cqe.phase());
  EXPECT_EQ(cqe.status().type, StatusCodeType::kVendor);
  EXPECT_EQ(cqe.status().code,
            static_cast<std::uint8_t>(VendorStatus::kKvKeyNotFound));
  cqe.set_phase(false);
  EXPECT_FALSE(cqe.phase());
  EXPECT_EQ(cqe.status().code,
            static_cast<std::uint8_t>(VendorStatus::kKvKeyNotFound));
}

TEST(SpecTest, StatusFieldEncodeDecodeRoundTrip) {
  for (const auto type :
       {StatusCodeType::kGeneric, StatusCodeType::kCommandSpecific,
        StatusCodeType::kMediaError, StatusCodeType::kVendor}) {
    for (std::uint8_t code : {0, 1, 0x42, 0xff}) {
      const StatusField field{type, code};
      const StatusField decoded = StatusField::decode(field.encode());
      EXPECT_EQ(decoded.type, type);
      EXPECT_EQ(decoded.code, code);
    }
  }
}

TEST(SpecTest, SuccessPredicate) {
  EXPECT_TRUE(StatusField::success().is_success());
  EXPECT_FALSE(
      StatusField::generic(GenericStatus::kInvalidOpcode).is_success());
  EXPECT_FALSE(
      StatusField::vendor(VendorStatus::kKvKeyNotFound).is_success());
}

TEST(SpecTest, BlockIoFieldsRoundTrip) {
  SubmissionQueueEntry sqe;
  BlockIoFields fields;
  fields.slba = 0x1234567890ULL;
  fields.block_count = 16;
  fields.apply(sqe);
  const BlockIoFields decoded = BlockIoFields::from(sqe);
  EXPECT_EQ(decoded.slba, 0x1234567890ULL);
  EXPECT_EQ(decoded.block_count, 16u);
}

TEST(SpecTest, BlockCountIsZeroBasedOnTheWire) {
  SubmissionQueueEntry sqe;
  BlockIoFields fields;
  fields.block_count = 1;
  fields.apply(sqe);
  EXPECT_EQ(sqe.cdw12 & 0xffff, 0u);  // NLB is 0's based
}

TEST(SpecTest, VendorFieldsRoundTrip) {
  SubmissionQueueEntry sqe;
  VendorFields fields;
  fields.data_length = 777;
  fields.aux = 0xABCD00;
  fields.apply(sqe);
  const VendorFields decoded = VendorFields::from(sqe);
  EXPECT_EQ(decoded.data_length, 777u);
  EXPECT_EQ(decoded.aux, 0xABCD00u);
}

TEST(SpecTest, KvKeyFieldsRoundTrip) {
  SubmissionQueueEntry sqe;
  KvKeyFields key;
  key.key_len = 16;
  for (int i = 0; i < 16; ++i) key.key[i] = static_cast<Byte>(i + 1);
  key.apply(sqe);
  const KvKeyFields decoded = KvKeyFields::from(sqe);
  EXPECT_EQ(decoded.key_len, 16);
  EXPECT_EQ(std::memcmp(decoded.key, key.key, 16), 0);
}

TEST(SpecTest, KvKeyDoesNotTouchByteExpressOrDataFields) {
  SubmissionQueueEntry sqe;
  sqe.set_inline_length(128);
  sqe.cdw12 = 128;
  sqe.dptr1 = 0x1000;
  KvKeyFields key;
  key.key_len = 16;
  std::memset(key.key, 0xEE, 16);
  key.apply(sqe);
  EXPECT_EQ(sqe.inline_length(), 128u);
  EXPECT_EQ(sqe.cdw12, 128u);
  EXPECT_EQ(sqe.dptr1, 0x1000u);
}

TEST(SpecTest, KvKeyLenSharesCdw13WithAux) {
  SubmissionQueueEntry sqe;
  VendorFields vendor;
  vendor.aux = 0x42 << 8;
  vendor.apply(sqe);
  KvKeyFields key;
  key.key_len = 7;
  key.apply(sqe);
  EXPECT_EQ(sqe.cdw13 & 0xff, 7u);
  EXPECT_EQ(sqe.cdw13 >> 8, 0x42u);
}

TEST(SpecTest, OpcodeNames) {
  EXPECT_EQ(io_opcode_name(IoOpcode::kWrite), "write");
  EXPECT_EQ(io_opcode_name(IoOpcode::kVendorKvStore), "kv_store");
  EXPECT_EQ(io_opcode_name(IoOpcode::kVendorCsdFilter), "csd_filter");
  EXPECT_EQ(io_opcode_name(IoOpcode::kVendorBandSlimFragment),
            "bandslim_fragment");
  EXPECT_EQ(io_opcode_name(static_cast<IoOpcode>(0x55)), "unknown");
}

}  // namespace
}  // namespace bx::nvme
