// Failure injection across the stack: NAND bad blocks under the KV/block
// paths, protocol violations on the wire (inline length mismatch, orphan
// fragments, corrupt OOO chunks), and resource exhaustion behaviour.
#include <gtest/gtest.h>

#include <cstring>

#include "core/testbed.h"
#include "nvme/bandslim_wire.h"
#include "nvme/inline_wire.h"
#include "test_util.h"
#include "workload/mixgraph.h"

namespace bx {
namespace {

using core::Testbed;
using driver::IoRequest;
using driver::TransferMethod;
using nvme::IoOpcode;

TEST(NandFailureTest, BlockWritesSurviveBadBlocks) {
  auto config = test::small_testbed_config();
  Testbed testbed(config);
  // Poison a handful of blocks the FTL will want to use.
  for (std::uint32_t die = 0; die < 4; ++die) {
    testbed.device().nand().mark_bad_block(die, 0);
  }
  ByteVec data(4096);
  for (int i = 0; i < 40; ++i) {
    fill_pattern(data, i);
    IoRequest write;
    write.opcode = IoOpcode::kWrite;
    write.slba = std::uint64_t(i);
    write.block_count = 1;
    write.write_data = data;
    auto completion = testbed.driver().execute(write, 1);
    ASSERT_TRUE(completion.is_ok() && completion->ok()) << i;
  }
  for (int i = 0; i < 40; ++i) {
    ByteVec read_back(4096);
    IoRequest read;
    read.opcode = IoOpcode::kRead;
    read.slba = std::uint64_t(i);
    read.block_count = 1;
    read.read_buffer = read_back;
    auto completion = testbed.driver().execute(read, 1);
    ASSERT_TRUE(completion.is_ok() && completion->ok()) << i;
    EXPECT_TRUE(verify_pattern(read_back, i)) << i;
  }
  EXPECT_GT(testbed.device().ftl().retired_blocks(), 0u);
}

TEST(NandFailureTest, KvPutsSurviveBadBlocksDuringFlush) {
  auto config = test::small_testbed_config();
  config.ssd.kv.flush_threshold_bytes = 4096;
  Testbed testbed(config);
  testbed.device().nand().mark_bad_block(0, 1);
  testbed.device().nand().mark_bad_block(1, 1);

  auto client = testbed.make_kv_client(TransferMethod::kByteExpress);
  for (int i = 0; i < 200; ++i) {
    ByteVec value(100);
    fill_pattern(value, i);
    ASSERT_TRUE(client.put(workload::make_key(i), value).is_ok()) << i;
  }
  for (int i = 0; i < 200; ++i) {
    auto got = client.get(workload::make_key(i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_TRUE(verify_pattern(*got, i)) << i;
  }
}

// A command announcing more inline chunks than the doorbell covered is a
// host protocol violation; the controller must fail the command WITHOUT
// consuming entries that belong to later transactions.
TEST(ProtocolViolationTest, InlineLengthBeyondDoorbellRejected) {
  Testbed testbed(test::small_testbed_config());
  nvme::SqRing& sq = testbed.driver().sq_for_test(1);

  // Hand-craft a ByteExpress command claiming 4 chunks but push only the
  // command, then ring — the buggy-host scenario.
  nvme::SubmissionQueueEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(IoOpcode::kVendorRawWrite);
  sqe.cid = 0x77;
  sqe.set_inline_length(256);
  nvme::VendorFields fields;
  fields.data_length = 256;
  fields.apply(sqe);
  std::uint32_t tail;
  {
    std::lock_guard<std::mutex> lock(sq.lock());
    sq.push_slot({reinterpret_cast<const Byte*>(&sqe), sizeof(sqe)});
    tail = sq.tail();
  }
  pcie::DoorbellWriter doorbell(testbed.bar(), testbed.link());
  doorbell.ring_sq_tail(1, tail);

  const std::uint64_t before = testbed.controller().commands_processed();
  const std::uint64_t chunks_before = testbed.controller().chunks_fetched();
  testbed.controller().run_until_idle();
  // The command was processed (with an error CQE) and NO chunks were
  // consumed — the head advanced exactly one entry.
  EXPECT_EQ(testbed.controller().commands_processed(), before + 1);
  EXPECT_EQ(testbed.controller().chunks_fetched(), chunks_before);

  // Later traffic on the same queue is unaffected.
  ByteVec payload(128);
  fill_pattern(payload, 4);
  auto completion =
      testbed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
}

TEST(ProtocolViolationTest, ControllerWithoutByteExpressReportsInvalidField) {
  auto config = test::small_testbed_config();
  config.controller.byteexpress_enabled = false;
  Testbed strict(config);
  ByteVec payload(128);
  fill_pattern(payload, 1);
  auto completion = strict.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_FALSE(completion->ok());
  EXPECT_EQ(completion->status.code,
            static_cast<std::uint8_t>(nvme::GenericStatus::kInvalidField));
}

TEST(ProtocolViolationTest, OrphanBandSlimFragmentIsDroppedSafely) {
  Testbed testbed(test::small_testbed_config());
  nvme::SqRing& sq = testbed.driver().sq_for_test(1);

  nvme::bandslim::Fragment fragment;
  fragment.stream_id = 999;  // no such stream
  fragment.index = 0;
  fragment.offset = 0;
  fragment.length = 8;
  fragment.last = false;
  ByteVec data(8, 0xAB);
  const auto frag_sqe = nvme::bandslim::encode_fragment(fragment, 0, data);
  {
    std::lock_guard<std::mutex> lock(sq.lock());
    sq.push_slot({reinterpret_cast<const Byte*>(&frag_sqe),
                  sizeof(frag_sqe)});
  }
  // The next valid command's doorbell covers the orphan entry too; the
  // controller must consume the orphan (no CQE for it) and stay healthy.
  {
    ByteVec payload(32);
    fill_pattern(payload, 2);
    auto completion =
        testbed.raw_write(payload, TransferMethod::kByteExpress);
    ASSERT_TRUE(completion.is_ok());
    EXPECT_TRUE(completion->ok());
  }
  // The device is still fully functional afterwards.
  ByteVec payload(64);
  fill_pattern(payload, 3);
  auto completion = testbed.raw_write(payload, TransferMethod::kPrp);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
}

TEST(ProtocolViolationTest, TruncatedBandSlimStreamErrorsOnLastFragment) {
  // A fragment marked `last` whose accumulated bytes fall short of the
  // declared total must complete the header command with a protocol error.
  Testbed testbed(test::small_testbed_config());
  nvme::SqRing& sq = testbed.driver().sq_for_test(1);

  nvme::SubmissionQueueEntry header;
  header.opcode = static_cast<std::uint8_t>(IoOpcode::kVendorRawWrite);
  header.cid = 0x55;
  nvme::VendorFields fields;
  fields.data_length = 200;  // declares 200 bytes
  fields.apply(header);
  ByteVec head_payload(200);
  fill_pattern(head_payload, 1);
  nvme::bandslim::encode_header(header, /*stream_id=*/7, head_payload);

  nvme::bandslim::Fragment fragment;
  fragment.stream_id = 7;
  fragment.index = 0;
  fragment.offset = 24;
  fragment.length = 48;
  fragment.last = true;  // lies: 24+48 < 200
  const auto frag_sqe = nvme::bandslim::encode_fragment(
      fragment, 0, ConstByteSpan(head_payload).subspan(24, 48));

  {
    std::lock_guard<std::mutex> lock(sq.lock());
    sq.push_slot({reinterpret_cast<const Byte*>(&header), sizeof(header)});
    sq.push_slot({reinterpret_cast<const Byte*>(&frag_sqe),
                  sizeof(frag_sqe)});
  }
  // Let a following valid command's doorbell cover both entries; then the
  // violating header must complete with FragmentProtocolError while the
  // valid command succeeds. We detect it by the device staying healthy and
  // no crash — the CQE for cid 0x55 goes to the driver's "unknown cid"
  // warning path.
  ByteVec payload(32);
  fill_pattern(payload, 9);
  auto completion = testbed.raw_write(payload, TransferMethod::kPrp);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
}

TEST(ResourceTest, InlinePayloadLargerThanQueueFallsBackOrFailsCleanly) {
  // Queue depth 16 -> max 14 inline payload slots; a 4KB inline payload
  // (65 entries) can never fit. With fallback enabled the driver silently
  // uses PRP; with fallback disabled it reports a clean error instead of
  // deadlocking.
  auto with_fallback = test::small_testbed_config(1, 16);
  with_fallback.driver.max_inline_bytes = 8192;
  Testbed fallback_bed(with_fallback);
  ByteVec payload(4096);  // 65 entries > 14 usable slots
  fill_pattern(payload, 1);
  fallback_bed.reset_counters();
  auto completion =
      fallback_bed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
  EXPECT_EQ(fallback_bed.traffic()
                .cell(pcie::Direction::kDownstream,
                      pcie::TrafficClass::kDataPrp)
                .data_bytes,
            4096u);  // it went PRP

  auto strict = test::small_testbed_config(1, 16);
  strict.driver.max_inline_bytes = 8192;
  strict.driver.auto_fallback_to_prp = false;
  Testbed strict_bed(strict);
  IoRequest request;
  request.opcode = IoOpcode::kVendorRawWrite;
  request.method = TransferMethod::kByteExpress;
  request.write_data = payload;
  auto result = strict_bed.driver().submit(request, 1);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  // The system remains usable.
  auto recovered = strict_bed.raw_write(payload, TransferMethod::kPrp);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_TRUE(recovered->ok());
}

TEST(ResourceTest, KvStoreFullReportsVendorStatus) {
  // Shrink the KV LPN range to a handful of pages and fill it.
  auto config = test::small_testbed_config();
  config.ssd.kv_fraction = 0.002;  // ~30 pages of the tiny geometry
  config.ssd.kv.flush_threshold_bytes = 4096;
  Testbed testbed(config);
  auto client = testbed.make_kv_client(TransferMethod::kPrp);
  Status last = Status::ok();
  for (int i = 0; i < 5000 && last.is_ok(); ++i) {
    ByteVec value(1000);
    fill_pattern(value, i);
    last = client.put(workload::make_key(i), value);
  }
  EXPECT_FALSE(last.is_ok());  // eventually the KV range exhausts
}

TEST(CorruptChunkTest, OooCrcFailureDoesNotCompleteCommand) {
  // Build a striped OOO transfer by hand with one corrupted chunk: the
  // command must stay deferred (no completion), and the engine must flag
  // the CRC failure — then a clean retry succeeds.
  Testbed testbed(test::small_testbed_config());
  controller::ReassemblyEngine engine({.slots = 4, .max_chunks = 16});
  ByteVec payload(96);
  fill_pattern(payload, 1);
  auto good0 = nvme::inline_chunk::encode_ooo_chunk(
      1, 0, 2, ConstByteSpan(payload).subspan(0, 48));
  auto bad1 = nvme::inline_chunk::encode_ooo_chunk(
      1, 1, 2, ConstByteSpan(payload).subspan(48, 48));
  bad1.raw[20] ^= 0xff;  // corrupt data under the CRC

  const auto h0 = nvme::inline_chunk::decode_ooo_header(good0);
  ASSERT_TRUE(
      engine.accept(h0, nvme::inline_chunk::ooo_chunk_data(good0, h0))
          .is_ok());
  const auto h1 = nvme::inline_chunk::decode_ooo_header(bad1);
  EXPECT_EQ(engine.accept(h1, nvme::inline_chunk::ooo_chunk_data(bad1, h1))
                .code(),
            StatusCode::kDataLoss);
  EXPECT_FALSE(engine.complete(1));

  // Retransmission of the intact chunk completes the payload.
  auto retry = nvme::inline_chunk::encode_ooo_chunk(
      1, 1, 2, ConstByteSpan(payload).subspan(48, 48));
  const auto h2 = nvme::inline_chunk::decode_ooo_header(retry);
  ASSERT_TRUE(
      engine.accept(h2, nvme::inline_chunk::ooo_chunk_data(retry, h2))
          .is_ok());
  EXPECT_TRUE(engine.complete(1));
  EXPECT_EQ(*engine.take(1, payload.size()), payload);
}

}  // namespace
}  // namespace bx
