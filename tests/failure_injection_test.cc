// Failure injection across the stack: NAND bad blocks under the KV/block
// paths, protocol violations on the wire (inline length mismatch, orphan
// fragments, corrupt OOO chunks), resource exhaustion behaviour, and the
// seeded end-to-end fault sweeps (injector + driver recovery, see
// docs/FAULTS.md).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/stress.h"
#include "core/testbed.h"
#include "fault/fault.h"
#include "nvme/bandslim_wire.h"
#include "nvme/inline_wire.h"
#include "obs/invariants.h"
#include "test_util.h"
#include "workload/mixgraph.h"

namespace bx {
namespace {

using core::Testbed;
using driver::IoRequest;
using driver::TransferMethod;
using nvme::IoOpcode;

/// Wait/service additivity must survive every recovery path — retries,
/// timeout+Abort scrubs, inline→PRP degradation, even final-error
/// completions: the breakdown reports the final attempt and its segments
/// sum EXACTLY to latency_ns (obs::check_breakdown_invariants).
void expect_breakdown_additive(const driver::Completion& completion) {
  std::vector<obs::BreakdownSample> sample(1);
  sample[0].breakdown = completion.breakdown;
  sample[0].latency_ns = static_cast<std::uint64_t>(completion.latency_ns);
  for (const std::string& violation :
       obs::check_breakdown_invariants(sample)) {
    ADD_FAILURE() << violation;
  }
}

TEST(NandFailureTest, BlockWritesSurviveBadBlocks) {
  auto config = test::small_testbed_config();
  Testbed testbed(config);
  // Poison a handful of blocks the FTL will want to use.
  for (std::uint32_t die = 0; die < 4; ++die) {
    testbed.device().nand().mark_bad_block(die, 0);
  }
  ByteVec data(4096);
  for (int i = 0; i < 40; ++i) {
    fill_pattern(data, i);
    IoRequest write;
    write.opcode = IoOpcode::kWrite;
    write.slba = std::uint64_t(i);
    write.block_count = 1;
    write.write_data = data;
    auto completion = testbed.driver().execute(write, 1);
    ASSERT_TRUE(completion.is_ok() && completion->ok()) << i;
  }
  for (int i = 0; i < 40; ++i) {
    ByteVec read_back(4096);
    IoRequest read;
    read.opcode = IoOpcode::kRead;
    read.slba = std::uint64_t(i);
    read.block_count = 1;
    read.read_buffer = read_back;
    auto completion = testbed.driver().execute(read, 1);
    ASSERT_TRUE(completion.is_ok() && completion->ok()) << i;
    EXPECT_TRUE(verify_pattern(read_back, i)) << i;
  }
  EXPECT_GT(testbed.device().ftl().retired_blocks(), 0u);
}

TEST(NandFailureTest, KvPutsSurviveBadBlocksDuringFlush) {
  auto config = test::small_testbed_config();
  config.ssd.kv.flush_threshold_bytes = 4096;
  Testbed testbed(config);
  testbed.device().nand().mark_bad_block(0, 1);
  testbed.device().nand().mark_bad_block(1, 1);

  auto client = testbed.make_kv_client(TransferMethod::kByteExpress);
  for (int i = 0; i < 200; ++i) {
    ByteVec value(100);
    fill_pattern(value, i);
    ASSERT_TRUE(client.put(workload::make_key(i), value).is_ok()) << i;
  }
  for (int i = 0; i < 200; ++i) {
    auto got = client.get(workload::make_key(i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_TRUE(verify_pattern(*got, i)) << i;
  }
}

// A command announcing more inline chunks than the doorbell covered is a
// host protocol violation; the controller must fail the command WITHOUT
// consuming entries that belong to later transactions.
TEST(ProtocolViolationTest, InlineLengthBeyondDoorbellRejected) {
  Testbed testbed(test::small_testbed_config());
  nvme::SqRing& sq = testbed.driver().sq_for_test(1);

  // Hand-craft a ByteExpress command claiming 4 chunks but push only the
  // command, then ring — the buggy-host scenario.
  nvme::SubmissionQueueEntry sqe;
  sqe.opcode = static_cast<std::uint8_t>(IoOpcode::kVendorRawWrite);
  sqe.cid = 0x77;
  sqe.set_inline_length(256);
  nvme::VendorFields fields;
  fields.data_length = 256;
  fields.apply(sqe);
  std::uint32_t tail;
  {
    std::lock_guard<std::mutex> lock(sq.lock());
    sq.push_slot({reinterpret_cast<const Byte*>(&sqe), sizeof(sqe)});
    tail = sq.tail();
  }
  pcie::DoorbellWriter doorbell(testbed.bar(), testbed.link());
  doorbell.ring_sq_tail(1, tail);

  const std::uint64_t before = testbed.controller().commands_processed();
  const std::uint64_t chunks_before = testbed.controller().chunks_fetched();
  testbed.controller().run_until_idle();
  // The command was processed (with an error CQE) and NO chunks were
  // consumed — the head advanced exactly one entry.
  EXPECT_EQ(testbed.controller().commands_processed(), before + 1);
  EXPECT_EQ(testbed.controller().chunks_fetched(), chunks_before);

  // Later traffic on the same queue is unaffected.
  ByteVec payload(128);
  fill_pattern(payload, 4);
  auto completion =
      testbed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
}

TEST(ProtocolViolationTest, ControllerWithoutByteExpressReportsInvalidField) {
  auto config = test::small_testbed_config();
  config.controller.byteexpress_enabled = false;
  Testbed strict(config);
  ByteVec payload(128);
  fill_pattern(payload, 1);
  auto completion = strict.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_FALSE(completion->ok());
  EXPECT_EQ(completion->status.code,
            static_cast<std::uint8_t>(nvme::GenericStatus::kInvalidField));
}

TEST(ProtocolViolationTest, OrphanBandSlimFragmentIsDroppedSafely) {
  Testbed testbed(test::small_testbed_config());
  nvme::SqRing& sq = testbed.driver().sq_for_test(1);

  nvme::bandslim::Fragment fragment;
  fragment.stream_id = 999;  // no such stream
  fragment.index = 0;
  fragment.offset = 0;
  fragment.length = 8;
  fragment.last = false;
  ByteVec data(8, 0xAB);
  const auto frag_sqe = nvme::bandslim::encode_fragment(fragment, 0, data);
  {
    std::lock_guard<std::mutex> lock(sq.lock());
    sq.push_slot({reinterpret_cast<const Byte*>(&frag_sqe),
                  sizeof(frag_sqe)});
  }
  // The next valid command's doorbell covers the orphan entry too; the
  // controller must consume the orphan (no CQE for it) and stay healthy.
  {
    ByteVec payload(32);
    fill_pattern(payload, 2);
    auto completion =
        testbed.raw_write(payload, TransferMethod::kByteExpress);
    ASSERT_TRUE(completion.is_ok());
    EXPECT_TRUE(completion->ok());
  }
  // The device is still fully functional afterwards.
  ByteVec payload(64);
  fill_pattern(payload, 3);
  auto completion = testbed.raw_write(payload, TransferMethod::kPrp);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
}

TEST(ProtocolViolationTest, TruncatedBandSlimStreamErrorsOnLastFragment) {
  // A fragment marked `last` whose accumulated bytes fall short of the
  // declared total must complete the header command with a protocol error.
  Testbed testbed(test::small_testbed_config());
  nvme::SqRing& sq = testbed.driver().sq_for_test(1);

  nvme::SubmissionQueueEntry header;
  header.opcode = static_cast<std::uint8_t>(IoOpcode::kVendorRawWrite);
  header.cid = 0x55;
  nvme::VendorFields fields;
  fields.data_length = 200;  // declares 200 bytes
  fields.apply(header);
  ByteVec head_payload(200);
  fill_pattern(head_payload, 1);
  nvme::bandslim::encode_header(header, /*stream_id=*/7, head_payload);

  nvme::bandslim::Fragment fragment;
  fragment.stream_id = 7;
  fragment.index = 0;
  fragment.offset = 24;
  fragment.length = 48;
  fragment.last = true;  // lies: 24+48 < 200
  const auto frag_sqe = nvme::bandslim::encode_fragment(
      fragment, 0, ConstByteSpan(head_payload).subspan(24, 48));

  {
    std::lock_guard<std::mutex> lock(sq.lock());
    sq.push_slot({reinterpret_cast<const Byte*>(&header), sizeof(header)});
    sq.push_slot({reinterpret_cast<const Byte*>(&frag_sqe),
                  sizeof(frag_sqe)});
  }
  // Let a following valid command's doorbell cover both entries; then the
  // violating header must complete with FragmentProtocolError while the
  // valid command succeeds. We detect it by the device staying healthy and
  // no crash — the CQE for cid 0x55 goes to the driver's "unknown cid"
  // warning path.
  ByteVec payload(32);
  fill_pattern(payload, 9);
  auto completion = testbed.raw_write(payload, TransferMethod::kPrp);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
}

TEST(ResourceTest, InlinePayloadLargerThanQueueFallsBackOrFailsCleanly) {
  // Queue depth 16 -> max 14 inline payload slots; a 4KB inline payload
  // (65 entries) can never fit. With fallback enabled the driver silently
  // uses PRP; with fallback disabled it reports a clean error instead of
  // deadlocking.
  auto with_fallback = test::small_testbed_config(1, 16);
  with_fallback.driver.max_inline_bytes = 8192;
  Testbed fallback_bed(with_fallback);
  ByteVec payload(4096);  // 65 entries > 14 usable slots
  fill_pattern(payload, 1);
  fallback_bed.reset_counters();
  auto completion =
      fallback_bed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
  EXPECT_EQ(fallback_bed.traffic()
                .cell(pcie::Direction::kDownstream,
                      pcie::TrafficClass::kDataPrp)
                .data_bytes,
            4096u);  // it went PRP

  auto strict = test::small_testbed_config(1, 16);
  strict.driver.max_inline_bytes = 8192;
  strict.driver.auto_fallback_to_prp = false;
  Testbed strict_bed(strict);
  IoRequest request;
  request.opcode = IoOpcode::kVendorRawWrite;
  request.method = TransferMethod::kByteExpress;
  request.write_data = payload;
  auto result = strict_bed.driver().submit(request, 1);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  // The system remains usable.
  auto recovered = strict_bed.raw_write(payload, TransferMethod::kPrp);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_TRUE(recovered->ok());
}

TEST(ResourceTest, KvStoreFullReportsVendorStatus) {
  // Shrink the KV LPN range to a handful of pages and fill it.
  auto config = test::small_testbed_config();
  config.ssd.kv_fraction = 0.002;  // ~30 pages of the tiny geometry
  config.ssd.kv.flush_threshold_bytes = 4096;
  Testbed testbed(config);
  auto client = testbed.make_kv_client(TransferMethod::kPrp);
  Status last = Status::ok();
  for (int i = 0; i < 5000 && last.is_ok(); ++i) {
    ByteVec value(1000);
    fill_pattern(value, i);
    last = client.put(workload::make_key(i), value);
  }
  EXPECT_FALSE(last.is_ok());  // eventually the KV range exhausts
}

TEST(CorruptChunkTest, OooCrcFailureDoesNotCompleteCommand) {
  // Build a striped OOO transfer by hand with one corrupted chunk: the
  // command must stay deferred (no completion), and the engine must flag
  // the CRC failure — then a clean retry succeeds.
  Testbed testbed(test::small_testbed_config());
  controller::ReassemblyEngine engine({.slots = 4, .max_chunks = 16});
  ByteVec payload(96);
  fill_pattern(payload, 1);
  auto good0 = nvme::inline_chunk::encode_ooo_chunk(
      1, 0, 2, ConstByteSpan(payload).subspan(0, 48));
  auto bad1 = nvme::inline_chunk::encode_ooo_chunk(
      1, 1, 2, ConstByteSpan(payload).subspan(48, 48));
  bad1.raw[20] ^= 0xff;  // corrupt data under the CRC

  const auto h0 = nvme::inline_chunk::decode_ooo_header(good0);
  ASSERT_TRUE(
      engine.accept(h0, nvme::inline_chunk::ooo_chunk_data(good0, h0))
          .is_ok());
  const auto h1 = nvme::inline_chunk::decode_ooo_header(bad1);
  EXPECT_EQ(engine.accept(h1, nvme::inline_chunk::ooo_chunk_data(bad1, h1))
                .code(),
            StatusCode::kDataLoss);
  EXPECT_FALSE(engine.complete(1));

  // Retransmission of the intact chunk completes the payload.
  auto retry = nvme::inline_chunk::encode_ooo_chunk(
      1, 1, 2, ConstByteSpan(payload).subspan(48, 48));
  const auto h2 = nvme::inline_chunk::decode_ooo_header(retry);
  ASSERT_TRUE(
      engine.accept(h2, nvme::inline_chunk::ooo_chunk_data(retry, h2))
          .is_ok());
  EXPECT_TRUE(engine.complete(1));
  EXPECT_EQ(*engine.take(1, payload.size()), payload);
}

// ---- Seeded end-to-end fault sweeps ------------------------------------

fault::FaultPolicy mixed_fault_policy() {
  fault::FaultPolicy policy;
  policy.chunk_corrupt = 0.06;
  policy.error_completion = 0.03;
  policy.error_retryable = 0.06;
  policy.completion_drop = 0.03;
  policy.completion_delay = 0.03;
  policy.tlp_replay = 0.01;
  return policy;
}

class FaultSweepTest : public ::testing::TestWithParam<TransferMethod> {};

// Every transfer method survives a seeded mixed-fault sweep: every
// injected fault is accounted for (recovered, degraded, or surfaced as a
// final error), nothing hangs or leaks, and the structural traffic
// identities hold under retries and drops.
TEST_P(FaultSweepTest, EveryInjectedFaultAccounted) {
  core::FaultSweepOptions options;
  options.seed = 0xfa017;
  options.method = GetParam();
  options.ops = 48;
  options.faults = mixed_fault_policy();
  const core::FaultSweepResult result = core::run_fault_sweep(options);
  ASSERT_TRUE(result.ok()) << result.failure;
  EXPECT_EQ(result.ops_attempted, options.ops);
  // The policy is aggressive enough that a 48-op sweep always draws
  // faults (checked against the fixed seed).
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_EQ(result.faults_injected, result.faults_recovered +
                                        result.faults_degraded +
                                        result.faults_failed);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, FaultSweepTest,
    ::testing::Values(TransferMethod::kPrp, TransferMethod::kSgl,
                      TransferMethod::kByteExpress,
                      TransferMethod::kByteExpressOoo,
                      TransferMethod::kBandSlim),
    [](const ::testing::TestParamInfo<TransferMethod>& info) {
      return std::string(driver::transfer_method_name(info.param));
    });

// ---- Batched-path fault sweeps -----------------------------------------
//
// The same sweep driven through execute_batch(): a fault on command k of
// an N-command batch must resolve through the identical retry/degrade/
// fail semantics without poisoning the other N-1 commands, and the
// accounting identity stays exact.

class BatchedFaultSweepTest
    : public ::testing::TestWithParam<TransferMethod> {};

TEST_P(BatchedFaultSweepTest, AccountingExactUnderBatchedSubmission) {
  core::FaultSweepOptions options;
  options.seed = 0xfa017;
  options.method = GetParam();
  options.ops = 48;
  options.batch_depth = 6;  // 8 batches of 6
  options.faults = mixed_fault_policy();
  const core::FaultSweepResult result = core::run_fault_sweep(options);
  ASSERT_TRUE(result.ok()) << result.failure;
  EXPECT_EQ(result.ops_attempted, options.ops);
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_EQ(result.faults_injected, result.faults_recovered +
                                        result.faults_degraded +
                                        result.faults_failed);
  EXPECT_EQ(result.ops_ok + result.ops_error, result.ops_attempted);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, BatchedFaultSweepTest,
    ::testing::Values(TransferMethod::kPrp, TransferMethod::kSgl,
                      TransferMethod::kByteExpress,
                      TransferMethod::kByteExpressOoo,
                      TransferMethod::kBandSlim),
    [](const ::testing::TestParamInfo<TransferMethod>& info) {
      return std::string(driver::transfer_method_name(info.param));
    });

TEST(BatchedFaultSweepTest, SameSeedSameScheduleAtDepth8) {
  core::FaultSweepOptions options;
  options.seed = 0xdecaf;
  options.method = TransferMethod::kByteExpress;
  options.ops = 32;
  options.batch_depth = 8;
  options.faults = mixed_fault_policy();
  const core::FaultSweepResult a = core::run_fault_sweep(options);
  const core::FaultSweepResult b = core::run_fault_sweep(options);
  ASSERT_TRUE(a.ok()) << a.failure;
  ASSERT_TRUE(b.ok()) << b.failure;
  EXPECT_EQ(a.ops_ok, b.ops_ok);
  EXPECT_EQ(a.ops_error, b.ops_error);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faults_recovered, b.faults_recovered);
  EXPECT_EQ(a.faults_degraded, b.faults_degraded);
  EXPECT_EQ(a.faults_failed, b.faults_failed);
}

TEST(BatchedFaultSweepTest, DepthSweepKeepsAccountingExact) {
  for (const std::uint32_t depth : {2u, 4u, 8u}) {
    core::FaultSweepOptions options;
    options.seed = 0xfa017 + depth;
    options.method = TransferMethod::kByteExpress;
    options.ops = 32;
    options.batch_depth = depth;
    options.faults = mixed_fault_policy();
    const core::FaultSweepResult result = core::run_fault_sweep(options);
    ASSERT_TRUE(result.ok()) << "depth " << depth << ": " << result.failure;
    EXPECT_EQ(result.faults_injected, result.faults_recovered +
                                          result.faults_degraded +
                                          result.faults_failed)
        << "depth " << depth;
  }
}

TEST(FaultSweepTest, SameSeedSameSchedule) {
  core::FaultSweepOptions options;
  options.seed = 0xdecaf;
  options.method = TransferMethod::kByteExpressOoo;
  options.ops = 32;
  options.faults = mixed_fault_policy();
  const core::FaultSweepResult a = core::run_fault_sweep(options);
  const core::FaultSweepResult b = core::run_fault_sweep(options);
  ASSERT_TRUE(a.ok()) << a.failure;
  ASSERT_TRUE(b.ok()) << b.failure;
  EXPECT_EQ(a.ops_ok, b.ops_ok);
  EXPECT_EQ(a.ops_error, b.ops_error);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faults_recovered, b.faults_recovered);
  EXPECT_EQ(a.faults_degraded, b.faults_degraded);
  EXPECT_EQ(a.faults_failed, b.faults_failed);
  EXPECT_EQ(a.tlp_replays, b.tlp_replays);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retries, b.retries);
}

/// A testbed with a fault injector attached but a zeroed policy, so tests
/// can arm() specific faults deterministically.
core::TestbedConfig armed_testbed_config() {
  auto config = test::small_testbed_config();
  config.faults.completion_drop = 1.0;  // forces injector construction
  config.driver.command_timeout_ns = 2'000'000;
  config.driver.poll_idle_advance_ns = 1'000;
  config.driver.retry_backoff_base_ns = 10'000;
  config.controller.deferred_ttl_ns = 500'000;
  config.controller.reassembly.ttl_ns = 500'000;
  return config;
}

// One dropped CQE inside a 6-command batch: the faulted command times
// out, gets aborted and retried (recovered), and the other five commands
// complete untouched — no extra retries, nothing leaked.
TEST(BatchedFaultRecoveryTest, DroppedCqeOnOneCommandSparesTheRest) {
  Testbed bed(armed_testbed_config());
  bed.fault_injector()->set_policy({});
  bed.fault_injector()->arm(fault::FaultKind::kCompletionDrop);

  std::vector<ByteVec> payloads;
  std::vector<IoRequest> requests;
  for (int i = 0; i < 6; ++i) {
    payloads.emplace_back(100 + i * 20, static_cast<Byte>(0x30 + i));
  }
  for (const ByteVec& payload : payloads) {
    IoRequest request;
    request.opcode = IoOpcode::kVendorRawWrite;
    request.method = TransferMethod::kByteExpress;
    request.write_data = {payload.data(), payload.size()};
    requests.push_back(request);
  }
  auto completions = bed.driver().execute_batch(
      {requests.data(), requests.size()}, 1);
  ASSERT_TRUE(completions.is_ok()) << completions.status().message();
  ASSERT_EQ(completions->size(), 6u);
  for (const driver::Completion& completion : *completions) {
    EXPECT_TRUE(completion.ok()) << "the recovered command must succeed too";
    expect_breakdown_additive(completion);
  }
  const auto& metrics = bed.metrics();
  EXPECT_EQ(metrics.counter_value("faults.injected"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.recovered"), 1u);
  EXPECT_EQ(metrics.counter_value("driver.timeouts"), 1u);
  EXPECT_EQ(metrics.counter_value("driver.retries"), 1u)
      << "only the faulted command may retry";
  EXPECT_EQ(bed.driver().pending_count_for_test(1), 0u);
}

// A fatal error on one command of a batch surfaces on exactly that
// command; the other completions stay clean and the fault counts failed.
TEST(BatchedFaultRecoveryTest, FatalErrorPoisonsOnlyItsOwnCommand) {
  Testbed bed(armed_testbed_config());
  bed.fault_injector()->set_policy({});
  bed.fault_injector()->arm(fault::FaultKind::kErrorCompletion);

  std::vector<ByteVec> payloads(5, ByteVec(150, Byte{0x62}));
  std::vector<IoRequest> requests;
  for (const ByteVec& payload : payloads) {
    IoRequest request;
    request.opcode = IoOpcode::kVendorRawWrite;
    request.method = TransferMethod::kByteExpress;
    request.write_data = {payload.data(), payload.size()};
    requests.push_back(request);
  }
  auto completions = bed.driver().execute_batch(
      {requests.data(), requests.size()}, 1);
  ASSERT_TRUE(completions.is_ok()) << completions.status().message();
  int failed = 0;
  for (const driver::Completion& completion : *completions) {
    if (!completion.ok()) ++failed;
    expect_breakdown_additive(completion);  // error completions included
  }
  EXPECT_EQ(failed, 1) << "exactly the armed command fails";
  const auto& metrics = bed.metrics();
  EXPECT_EQ(metrics.counter_value("faults.injected"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.failed"), 1u);
  EXPECT_EQ(metrics.counter_value("driver.retries"), 0u);
  EXPECT_EQ(bed.driver().pending_count_for_test(1), 0u);
}

// Inline→PRP degradation tripping in the MIDDLE of a batch: every
// command of the batch is submitted inline before the first fault is
// observed, the consecutive-failure counter crosses degrade_threshold
// while later batch members are still outstanding, and their retries must
// re-resolve to PRP — the whole batch still completes, every fault is
// classified as degraded, and the degraded submits carry the fallback
// trace flag.
TEST(BatchedFaultRecoveryTest, MidBatchDegradationReroutesRemainderToPrp) {
  auto config = armed_testbed_config();
  config.faults = {};
  config.faults.inline_only = true;
  config.faults.chunk_corrupt = 1.0;  // every inline attempt faults
  config.driver.degrade_threshold = 2;
  config.driver.degrade_reprobe_ns = 10'000'000;
  Testbed bed(config);

  constexpr int kBatch = 6;
  std::vector<ByteVec> payloads;
  std::vector<IoRequest> requests;
  for (int i = 0; i < kBatch; ++i) {
    payloads.emplace_back(200 + i * 16, static_cast<Byte>(0x40 + i));
  }
  for (const ByteVec& payload : payloads) {
    IoRequest request;
    request.opcode = IoOpcode::kVendorRawWrite;
    request.method = TransferMethod::kByteExpress;
    request.write_data = {payload.data(), payload.size()};
    requests.push_back(request);
  }
  auto completions = bed.driver().execute_batch(
      {requests.data(), requests.size()}, 1);
  ASSERT_TRUE(completions.is_ok()) << completions.status().message();
  ASSERT_EQ(completions->size(), static_cast<std::size_t>(kBatch));
  for (const driver::Completion& completion : *completions) {
    EXPECT_TRUE(completion.ok())
        << "every batch member must resolve through the PRP reroute";
    expect_breakdown_additive(completion);  // exact across the degradation
  }

  const auto& metrics = bed.metrics();
  // The queue degraded while the batch was in flight. The whole batch was
  // submitted inline before the first fault was reaped, so commands
  // already in flight keep faulting and may re-trip the threshold — at
  // least one degradation, never more than batch/threshold.
  EXPECT_GE(metrics.counter_value("driver.degradations"), 1u);
  EXPECT_LE(metrics.counter_value("driver.degradations"),
            static_cast<std::uint64_t>(kBatch) / 2u);
  // With inline-only faults at p=1.0 no inline attempt can succeed, so
  // every injected fault resolves via the PRP fallback: the degraded
  // bucket holds ALL of them and nothing recovers inline or fails.
  EXPECT_GT(metrics.counter_value("faults.injected"), 0u);
  EXPECT_EQ(metrics.counter_value("faults.injected"),
            metrics.counter_value("faults.degraded"));
  EXPECT_EQ(metrics.counter_value("faults.recovered"), 0u);
  EXPECT_EQ(metrics.counter_value("faults.failed"), 0u);
  // All six commands landed over PRP in the end (one page each).
  EXPECT_EQ(bed.traffic()
                .cell(pcie::Direction::kDownstream,
                      pcie::TrafficClass::kDataPrp)
                .data_bytes,
            static_cast<std::uint64_t>(kBatch) * 4096u);
  // The rerouted submits are visible in the trace as method fallbacks.
  int fallback_submits = 0;
  for (const auto& event : bed.trace().snapshot()) {
    if (event.stage == obs::TraceStage::kSubmit &&
        (event.flags & obs::kFlagMethodFallback) != 0) {
      ++fallback_submits;
    }
  }
  EXPECT_EQ(fallback_submits, kBatch);
  EXPECT_EQ(bed.driver().pending_count_for_test(1), 0u);

  // Clear the fault and out-wait the re-probe window: the next batch goes
  // inline again (no new PRP bytes).
  bed.fault_injector()->set_policy({});
  bed.clock().advance(20'000'000);
  auto again = bed.driver().execute_batch(
      {requests.data(), requests.size()}, 1);
  ASSERT_TRUE(again.is_ok()) << again.status().message();
  for (const driver::Completion& completion : *again) {
    EXPECT_TRUE(completion.ok());
  }
  EXPECT_EQ(bed.traffic()
                .cell(pcie::Direction::kDownstream,
                      pcie::TrafficClass::kDataPrp)
                .data_bytes,
            static_cast<std::uint64_t>(kBatch) * 4096u)
      << "post-reprobe batch must not add PRP traffic";
}

// A dropped completion must be reaped by the driver's deadline: timeout,
// Abort to scrub the lost CQE, one retry, success — and the fault counts
// as recovered.
TEST(FaultRecoveryTest, DroppedCompletionTimesOutAbortsAndRetries) {
  Testbed bed(armed_testbed_config());
  ASSERT_NE(bed.fault_injector(), nullptr);
  bed.fault_injector()->set_policy({});
  bed.fault_injector()->arm(fault::FaultKind::kCompletionDrop);

  ByteVec payload(256);
  fill_pattern(payload, 5);
  auto completion = bed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
  expect_breakdown_additive(*completion);  // timeout + Abort + retry path

  const auto& metrics = bed.metrics();
  EXPECT_EQ(metrics.counter_value("faults.injected"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.injected_drop"), 1u);
  EXPECT_EQ(metrics.counter_value("driver.timeouts"), 1u);
  EXPECT_EQ(metrics.counter_value("driver.aborts_sent"), 1u);
  EXPECT_EQ(metrics.counter_value("driver.retries"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.recovered"), 1u);
  EXPECT_EQ(metrics.counter_value("ctrl.completions_dropped"), 1u);
  EXPECT_EQ(metrics.counter_value("ctrl.commands_aborted"), 1u);
  // The device stays healthy afterwards.
  auto again = bed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(again.is_ok());
  EXPECT_TRUE(again->ok());
}

// A delayed completion out-waits the driver deadline, so it behaves like
// a drop the Abort scrubs before it can land on a recycled CID.
TEST(FaultRecoveryTest, DelayedCompletionIsScrubbedByAbort) {
  Testbed bed(armed_testbed_config());
  bed.fault_injector()->set_policy({});
  bed.fault_injector()->arm(fault::FaultKind::kCompletionDelay);

  ByteVec payload(128);
  fill_pattern(payload, 6);
  auto completion = bed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
  expect_breakdown_additive(*completion);
  const auto& metrics = bed.metrics();
  EXPECT_EQ(metrics.counter_value("faults.injected_delay"), 1u);
  EXPECT_EQ(metrics.counter_value("driver.timeouts"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.recovered"), 1u);
  EXPECT_EQ(metrics.counter_value("ctrl.completions_delayed"), 1u);
}

// A fatal (non-retryable) error completion surfaces to the caller as the
// final device status and counts as a failed fault.
TEST(FaultRecoveryTest, FatalErrorCompletionSurfacesToCaller) {
  Testbed bed(armed_testbed_config());
  bed.fault_injector()->set_policy({});
  bed.fault_injector()->arm(fault::FaultKind::kErrorCompletion);

  ByteVec payload(64);
  fill_pattern(payload, 7);
  auto completion = bed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_FALSE(completion->ok());
  expect_breakdown_additive(*completion);  // additive even on final error
  EXPECT_EQ(completion->status.code,
            static_cast<std::uint8_t>(nvme::GenericStatus::kInternalError));
  const auto& metrics = bed.metrics();
  EXPECT_EQ(metrics.counter_value("faults.injected"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.failed"), 1u);
  EXPECT_EQ(metrics.counter_value("driver.retries"), 0u);
}

// N consecutive inline failures degrade the queue to PRP; the degraded
// attempt succeeds (inline_only faults skip PRP), and after the re-probe
// window the queue goes back to inline.
TEST(FaultRecoveryTest, ConsecutiveInlineFailuresDegradeToPrpThenReprobe) {
  auto config = armed_testbed_config();
  config.faults = {};
  config.faults.inline_only = true;
  config.faults.chunk_corrupt = 1.0;  // every inline command faults
  config.driver.degrade_threshold = 2;
  config.driver.degrade_reprobe_ns = 1'000'000;
  Testbed bed(config);

  ByteVec payload(256);
  fill_pattern(payload, 8);
  auto completion = bed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
  expect_breakdown_additive(*completion);  // inline→PRP degradation path

  const auto& metrics = bed.metrics();
  EXPECT_EQ(metrics.counter_value("driver.degradations"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.injected"), 2u);
  EXPECT_EQ(metrics.counter_value("faults.degraded"), 2u);
  EXPECT_EQ(metrics.counter_value("faults.recovered"), 0u);
  // The winning attempt went over PRP.
  EXPECT_EQ(bed.traffic()
                .cell(pcie::Direction::kDownstream,
                      pcie::TrafficClass::kDataPrp)
                .data_bytes,
            4096u);
  // The degraded submit is flagged in the trace.
  bool saw_fallback_flag = false;
  for (const auto& event : bed.trace().snapshot()) {
    if (event.stage == obs::TraceStage::kSubmit &&
        (event.flags & obs::kFlagMethodFallback) != 0) {
      saw_fallback_flag = true;
    }
  }
  EXPECT_TRUE(saw_fallback_flag);

  // After the re-probe window (and with the fault cleared) the queue
  // returns to inline: no new PRP bytes.
  bed.fault_injector()->set_policy({});
  bed.clock().advance(2'000'000);
  auto after = bed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(after.is_ok());
  EXPECT_TRUE(after->ok());
  EXPECT_EQ(bed.traffic()
                .cell(pcie::Direction::kDownstream,
                      pcie::TrafficClass::kDataPrp)
                .data_bytes,
            4096u);
}

// The silent inline->PRP feasibility fallback is observable: counter plus
// a flagged kSubmit trace event.
TEST(FaultRecoveryTest, FeasibilityFallbackEmitsCounterAndTraceFlag) {
  auto config = test::small_testbed_config(1, 16);
  config.driver.max_inline_bytes = 8192;
  Testbed bed(config);
  ByteVec payload(4096);  // 65 inline entries can never fit a 16-deep ring
  fill_pattern(payload, 9);
  auto completion = bed.raw_write(payload, TransferMethod::kByteExpress);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
  expect_breakdown_additive(*completion);
  EXPECT_EQ(bed.metrics().counter_value("driver.inline_fallback_prp"), 1u);
  bool saw_fallback_flag = false;
  for (const auto& event : bed.trace().snapshot()) {
    if (event.stage == obs::TraceStage::kSubmit &&
        (event.flags & obs::kFlagMethodFallback) != 0) {
      saw_fallback_flag = true;
    }
  }
  EXPECT_TRUE(saw_fallback_flag);
}

// ---- ByteExpress-R read-path fault sweeps ------------------------------

driver::IoRequest scratch_read(ByteVec& out) {
  driver::IoRequest read;
  read.opcode = IoOpcode::kVendorRawRead;
  read.read_buffer = out;
  read.method = TransferMethod::kPrp;
  return read;
}

// A corrupted inline-read chunk is caught by the HOST-side CRC, surfaces
// as a retryable Data Transfer Error, and the retry recovers byte-exact
// data — the zero-undetected-corruption guarantee, end to end.
TEST(ReadFaultRecoveryTest, CorruptReadChunkCaughtByHostCrcAndRetried) {
  Testbed bed(armed_testbed_config());
  bed.fault_injector()->set_policy({});
  ByteVec payload(200);
  fill_pattern(payload, 21);
  ASSERT_TRUE(bed.raw_write(payload, TransferMethod::kPrp).is_ok());

  bed.fault_injector()->arm(fault::FaultKind::kChunkCorrupt);
  ByteVec out(payload.size());
  auto completion = bed.driver().execute(scratch_read(out), 1);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
  EXPECT_EQ(out, payload);
  expect_breakdown_additive(*completion);  // host-CRC reject + retry

  const auto& metrics = bed.metrics();
  EXPECT_EQ(metrics.counter_value("driver.inline_read.crc_errors"), 1u);
  EXPECT_EQ(metrics.counter_value("driver.retries"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.injected"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.recovered"), 1u);
  EXPECT_EQ(bed.driver().pending_count_for_test(1), 0u);
}

// A dropped read completion leaves chunks stranded in the ring; the
// timeout/abort path must release the reserved slots and the retry must
// deliver exact data.
TEST(ReadFaultRecoveryTest, DroppedReadCompletionTimesOutAndRecovers) {
  Testbed bed(armed_testbed_config());
  bed.fault_injector()->set_policy({});
  ByteVec payload(150);
  fill_pattern(payload, 22);
  ASSERT_TRUE(bed.raw_write(payload, TransferMethod::kPrp).is_ok());

  bed.fault_injector()->arm(fault::FaultKind::kCompletionDrop);
  ByteVec out(payload.size());
  auto completion = bed.driver().execute(scratch_read(out), 1);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
  EXPECT_EQ(out, payload);
  expect_breakdown_additive(*completion);
  const auto& metrics = bed.metrics();
  EXPECT_EQ(metrics.counter_value("driver.timeouts"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.recovered"), 1u);
  EXPECT_EQ(bed.driver().pending_count_for_test(1), 0u);
}

TEST(ReadFaultRecoveryTest, DelayedReadCompletionIsScrubbedByAbort) {
  Testbed bed(armed_testbed_config());
  bed.fault_injector()->set_policy({});
  ByteVec payload(100);
  fill_pattern(payload, 23);
  ASSERT_TRUE(bed.raw_write(payload, TransferMethod::kPrp).is_ok());

  bed.fault_injector()->arm(fault::FaultKind::kCompletionDelay);
  ByteVec out(payload.size());
  auto completion = bed.driver().execute(scratch_read(out), 1);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
  EXPECT_EQ(out, payload);
  expect_breakdown_additive(*completion);
  const auto& metrics = bed.metrics();
  EXPECT_EQ(metrics.counter_value("faults.injected_delay"), 1u);
  EXPECT_EQ(metrics.counter_value("driver.timeouts"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.recovered"), 1u);
}

// N consecutive inline-read failures degrade the queue's READ path to
// PRP (the write path keeps its own independent counter); after the
// re-probe window reads return to the ring.
TEST(ReadFaultRecoveryTest, ConsecutiveReadFailuresDegradeToPrpThenReprobe) {
  auto config = armed_testbed_config();
  config.faults = {};
  config.faults.inline_only = true;
  config.faults.chunk_corrupt = 1.0;  // every ring-path command faults
  config.driver.degrade_threshold = 2;
  config.driver.degrade_reprobe_ns = 1'000'000;
  Testbed bed(config);

  ByteVec payload(200);
  fill_pattern(payload, 24);
  ASSERT_TRUE(bed.raw_write(payload, TransferMethod::kPrp).is_ok());

  ByteVec out(payload.size());
  auto completion = bed.driver().execute(scratch_read(out), 1);
  ASSERT_TRUE(completion.is_ok());
  EXPECT_TRUE(completion->ok());
  EXPECT_EQ(out, payload);
  expect_breakdown_additive(*completion);  // read-path degradation

  const auto& metrics = bed.metrics();
  EXPECT_EQ(metrics.counter_value("driver.inline_read.degradations"), 1u);
  EXPECT_EQ(metrics.counter_value("faults.injected"), 2u);
  EXPECT_EQ(metrics.counter_value("faults.degraded"), 2u);
  EXPECT_EQ(metrics.counter_value("faults.recovered"), 0u);
  EXPECT_EQ(metrics.counter_value("faults.failed"), 0u);
  // The winning attempt ran over PRP.
  EXPECT_GT(bed.traffic()
                .cell(pcie::Direction::kUpstream, pcie::TrafficClass::kDataPrp)
                .data_bytes,
            0u);

  // Past the re-probe window with the fault cleared, reads go inline
  // again.
  bed.fault_injector()->set_policy({});
  bed.clock().advance(2'000'000);
  const std::uint64_t inline_before =
      metrics.counter_value("driver.inline_read.completions");
  ByteVec again(payload.size());
  auto after = bed.driver().execute(scratch_read(again), 1);
  ASSERT_TRUE(after.is_ok() && after->ok());
  EXPECT_EQ(again, payload);
  EXPECT_EQ(metrics.counter_value("driver.inline_read.completions"),
            inline_before + 1);
}

// Seeded mixed-fault sweep over the read path: every injected fault is
// classified (recovered + degraded + failed), and NO completion that
// reports success ever carries corrupted bytes — the CRC catches every
// injected chunk corruption.
TEST(ReadFaultRecoveryTest, SeededReadSweepAccountsEveryFault) {
  auto config = armed_testbed_config();
  config.faults = {};
  config.faults.chunk_corrupt = 0.08;
  config.faults.error_retryable = 0.05;
  config.faults.error_completion = 0.02;
  config.faults.completion_drop = 0.03;
  config.faults.completion_delay = 0.03;
  config.fault_seed = 0xbead5;
  Testbed bed(config);

  ByteVec payload(300);
  fill_pattern(payload, 25);
  {
    // Seeded policies also hit the setup write; retry until it lands.
    bool wrote = false;
    for (int i = 0; i < 10 && !wrote; ++i) {
      auto completion = bed.raw_write(payload, TransferMethod::kPrp);
      wrote = completion.is_ok() && completion->ok();
    }
    ASSERT_TRUE(wrote);
  }

  int ok_ops = 0, error_ops = 0;
  for (int i = 0; i < 60; ++i) {
    ByteVec out(payload.size(), Byte{0});
    auto completion = bed.driver().execute(scratch_read(out), 1);
    ASSERT_TRUE(completion.is_ok()) << i;
    if (completion->ok()) {
      ++ok_ops;
      EXPECT_EQ(out, payload) << "undetected corruption at op " << i;
    } else {
      ++error_ops;
    }
  }
  EXPECT_EQ(ok_ops + error_ops, 60);

  const auto& metrics = bed.metrics();
  EXPECT_GT(metrics.counter_value("faults.injected"), 0u);
  EXPECT_EQ(metrics.counter_value("faults.injected"),
            metrics.counter_value("faults.recovered") +
                metrics.counter_value("faults.degraded") +
                metrics.counter_value("faults.failed"));
  EXPECT_EQ(bed.driver().pending_count_for_test(1), 0u);
}

// ---- Reassembly hardening ----------------------------------------------

TEST(ReassemblyHardeningTest, ExpiredSlotsAreEvictedAndReusable) {
  controller::ReassemblyEngine engine(
      {.slots = 1, .max_chunks = 8, .ttl_ns = 1'000});
  ByteVec chunk_data(32);
  fill_pattern(chunk_data, 1);
  auto chunk = nvme::inline_chunk::encode_ooo_chunk(7, 0, 2, chunk_data);
  const auto header = nvme::inline_chunk::decode_ooo_header(chunk);
  ASSERT_TRUE(engine
                  .accept(header,
                          nvme::inline_chunk::ooo_chunk_data(chunk, header),
                          /*now=*/100)
                  .is_ok());

  // Within the TTL nothing is evicted.
  EXPECT_TRUE(engine.evict_expired(1'000).empty());
  // Past the TTL the stale slot is reclaimed and reported.
  const auto evicted = engine.evict_expired(5'000);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 7u);

  // The slot is reusable: a fresh payload reassembles fine.
  ByteVec payload(40);
  fill_pattern(payload, 2);
  auto fresh = nvme::inline_chunk::encode_ooo_chunk(8, 0, 1, payload);
  const auto fresh_header = nvme::inline_chunk::decode_ooo_header(fresh);
  ASSERT_TRUE(
      engine
          .accept(fresh_header,
                  nvme::inline_chunk::ooo_chunk_data(fresh, fresh_header),
                  /*now=*/6'000)
          .is_ok());
  EXPECT_TRUE(engine.complete(8));
  EXPECT_EQ(*engine.take(8, payload.size()), payload);
}

// Regression: a chunk announcing zero or too many total chunks must be
// rejected before any bitmap state is touched.
TEST(ReassemblyHardeningTest, BadChunkTotalRejectedBeforeBitmap) {
  controller::ReassemblyEngine engine({.slots = 2, .max_chunks = 4});
  ByteVec data(16);
  fill_pattern(data, 3);

  auto zero_total = nvme::inline_chunk::encode_ooo_chunk(1, 0, 1, data);
  auto header = nvme::inline_chunk::decode_ooo_header(zero_total);
  header.total_chunks = 0;
  EXPECT_EQ(engine
                .accept(header,
                        nvme::inline_chunk::ooo_chunk_data(zero_total, header))
                .code(),
            StatusCode::kInvalidArgument);

  header.total_chunks = 5;  // > max_chunks
  header.chunk_no = 0;
  EXPECT_EQ(engine
                .accept(header,
                        nvme::inline_chunk::ooo_chunk_data(zero_total, header))
                .code(),
            StatusCode::kInvalidArgument);

  // No slot was consumed by either rejection.
  ByteVec payload(32);
  fill_pattern(payload, 4);
  auto good = nvme::inline_chunk::encode_ooo_chunk(2, 0, 1, payload);
  const auto good_header = nvme::inline_chunk::decode_ooo_header(good);
  ASSERT_TRUE(engine
                  .accept(good_header,
                          nvme::inline_chunk::ooo_chunk_data(good, good_header))
                  .is_ok());
  EXPECT_TRUE(engine.complete(2));
}

}  // namespace
}  // namespace bx
