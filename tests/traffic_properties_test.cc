// Property tests over the traffic and timing model: invariants that must
// hold for EVERY (method, size) combination, plus per-method structural
// laws (PRP step function, ByteExpress linearity, BandSlim fragment
// arithmetic). These pin the model against regressions that the
// figure-level shape tests might miss.
#include <gtest/gtest.h>

#include "core/testbed.h"
#include "test_util.h"

namespace bx {
namespace {

using core::Testbed;
using driver::TransferMethod;
using pcie::Direction;
using pcie::TrafficClass;

struct Probe {
  std::uint64_t wire = 0;
  std::uint64_t data = 0;
  Nanoseconds latency = 0;
  std::uint64_t down_data = 0;
};

Probe probe_write(Testbed& testbed, TransferMethod method,
                  std::uint32_t size) {
  ByteVec payload(size);
  fill_pattern(payload, size ^ 0xfeed);
  testbed.reset_counters();
  auto completion = testbed.raw_write(payload, method);
  EXPECT_TRUE(completion.is_ok() && completion->ok());
  Probe probe;
  probe.wire = testbed.traffic().total_wire_bytes();
  probe.data = testbed.traffic().total_data_bytes();
  probe.down_data = testbed.traffic().total(Direction::kDownstream).data_bytes;
  probe.latency = completion->latency_ns;
  return probe;
}

struct MethodSize {
  TransferMethod method;
  std::uint32_t size;
};

class UniversalLaws : public ::testing::TestWithParam<MethodSize> {};

TEST_P(UniversalLaws, WireCoversPayloadAndExceedsData) {
  Testbed testbed(test::small_testbed_config());
  const auto [method, size] = GetParam();
  const Probe probe = probe_write(testbed, method, size);
  // Conservation: at least the payload's bytes crossed downstream.
  EXPECT_GE(probe.down_data, size);
  // Wire bytes always exceed data bytes (headers, framing, DLLP share).
  EXPECT_GT(probe.wire, probe.data);
  // Latency is positive and bounded (< 10 ms for any single command).
  EXPECT_GT(probe.latency, 0u);
  EXPECT_LT(probe.latency, 10'000'000u);
}

TEST_P(UniversalLaws, RepeatedOpsAreIdenticallyPriced) {
  Testbed testbed(test::small_testbed_config());
  const auto [method, size] = GetParam();
  const Probe first = probe_write(testbed, method, size);
  const Probe second = probe_write(testbed, method, size);
  EXPECT_EQ(first.wire, second.wire);
  EXPECT_EQ(first.latency, second.latency);
}

std::vector<MethodSize> law_cases() {
  std::vector<MethodSize> cases;
  for (const TransferMethod method :
       {TransferMethod::kPrp, TransferMethod::kSgl,
        TransferMethod::kByteExpress, TransferMethod::kByteExpressOoo,
        TransferMethod::kBandSlim, TransferMethod::kHybrid}) {
    for (const std::uint32_t size : {1u, 24u, 64u, 100u, 256u, 4096u}) {
      cases.push_back({method, size});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Laws, UniversalLaws, ::testing::ValuesIn(law_cases()),
    [](const ::testing::TestParamInfo<MethodSize>& info) {
      return std::string(driver::transfer_method_name(info.param.method)) +
             "_" + std::to_string(info.param.size);
    });

// ---- per-method structural laws ----

TEST(PrpLaw, WireBytesAreAStepFunctionOfPages) {
  Testbed testbed(test::small_testbed_config());
  std::uint64_t previous = 0;
  for (std::uint32_t pages = 1; pages <= 4; ++pages) {
    // All sizes inside one page count cost the same...
    const Probe low =
        probe_write(testbed, TransferMethod::kPrp, (pages - 1) * 4096 + 1);
    const Probe high =
        probe_write(testbed, TransferMethod::kPrp, pages * 4096);
    EXPECT_EQ(low.wire, high.wire) << pages;
    // ...and each extra page costs strictly more.
    EXPECT_GT(low.wire, previous) << pages;
    previous = low.wire;
  }
}

TEST(ByteExpressLaw, WireBytesLinearInChunkCount) {
  Testbed testbed(test::small_testbed_config());
  // wire(n chunks) = base + n * per_chunk, exactly.
  const std::uint64_t w1 =
      probe_write(testbed, TransferMethod::kByteExpress, 64).wire;
  const std::uint64_t w2 =
      probe_write(testbed, TransferMethod::kByteExpress, 128).wire;
  const std::uint64_t w3 =
      probe_write(testbed, TransferMethod::kByteExpress, 192).wire;
  const std::uint64_t w8 =
      probe_write(testbed, TransferMethod::kByteExpress, 512).wire;
  const std::uint64_t per_chunk = w2 - w1;
  EXPECT_EQ(w3 - w2, per_chunk);
  EXPECT_EQ(w8, w1 + 7 * per_chunk);
  // Sub-chunk sizes round up to the same chunk count.
  EXPECT_EQ(probe_write(testbed, TransferMethod::kByteExpress, 65).wire, w2);
}

TEST(ByteExpressLaw, LatencyLinearInChunkCount) {
  Testbed testbed(test::small_testbed_config());
  const Nanoseconds l1 =
      probe_write(testbed, TransferMethod::kByteExpress, 64).latency;
  const Nanoseconds l2 =
      probe_write(testbed, TransferMethod::kByteExpress, 128).latency;
  const Nanoseconds l4 =
      probe_write(testbed, TransferMethod::kByteExpress, 256).latency;
  EXPECT_EQ(l4 - l2, 2 * (l2 - l1));
}

TEST(BandSlimLaw, WireBytesLinearInFragmentCount) {
  Testbed testbed(test::small_testbed_config());
  // Sizes chosen to hit exactly 1, 2, 3 fragment commands past the header.
  const std::uint64_t f1 =
      probe_write(testbed, TransferMethod::kBandSlim, 24 + 48).wire;
  const std::uint64_t f2 =
      probe_write(testbed, TransferMethod::kBandSlim, 24 + 96).wire;
  const std::uint64_t f3 =
      probe_write(testbed, TransferMethod::kBandSlim, 24 + 144).wire;
  EXPECT_EQ(f3 - f2, f2 - f1);
  // The single-command case is strictly cheaper than header+fragment.
  EXPECT_LT(probe_write(testbed, TransferMethod::kBandSlim, 24).wire, f1);
}

TEST(SglLaw, WireBytesAffineInPayload) {
  Testbed testbed(test::small_testbed_config());
  // Below one MPS (256 B), each added byte adds exactly one wire byte.
  const std::uint64_t w64 =
      probe_write(testbed, TransferMethod::kSgl, 64).wire;
  const std::uint64_t w128 =
      probe_write(testbed, TransferMethod::kSgl, 128).wire;
  EXPECT_EQ(w128 - w64, 64u);
}

TEST(HybridLaw, MatchesConstituentMethodsExactly) {
  auto config = test::small_testbed_config();
  config.driver.hybrid_threshold_bytes = 256;
  Testbed testbed(config);
  for (const std::uint32_t small : {32u, 256u}) {
    EXPECT_EQ(probe_write(testbed, TransferMethod::kHybrid, small).wire,
              probe_write(testbed, TransferMethod::kByteExpress, small).wire)
        << small;
  }
  for (const std::uint32_t large : {257u, 4096u}) {
    EXPECT_EQ(probe_write(testbed, TransferMethod::kHybrid, large).wire,
              probe_write(testbed, TransferMethod::kPrp, large).wire)
        << large;
  }
}

TEST(OooLaw, CostsExceedQueueLocalByHeaderTax) {
  Testbed testbed(test::small_testbed_config());
  for (const std::uint32_t size : {48u, 96u, 480u}) {
    const Probe local = probe_write(testbed, TransferMethod::kByteExpress,
                                    size);
    const Probe ooo =
        probe_write(testbed, TransferMethod::kByteExpressOoo, size);
    EXPECT_GE(ooo.wire, local.wire) << size;
    EXPECT_GT(ooo.latency, local.latency) << size;
  }
}

TEST(LinkLaw, TrafficIsIndependentOfLinkSpeed) {
  auto gen2 = test::small_testbed_config();
  gen2.link.generation = 2;
  auto gen5 = test::small_testbed_config();
  gen5.link.generation = 5;
  Testbed slow(gen2);
  Testbed fast(gen5);
  for (const TransferMethod method :
       {TransferMethod::kPrp, TransferMethod::kByteExpress}) {
    EXPECT_EQ(probe_write(slow, method, 300).wire,
              probe_write(fast, method, 300).wire);
    EXPECT_GT(probe_write(slow, method, 4096).latency,
              probe_write(fast, method, 4096).latency);
  }
}

}  // namespace
}  // namespace bx
